//! Offline shim for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the criterion API its benches use:
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, and
//! `Bencher::{iter, iter_with_setup}`. Measurement is real wall-clock:
//! each benchmark is calibrated to a per-sample budget, timed over
//! `sample_size` samples, and the median ns/iteration is reported
//! (plus throughput when configured). There are no plots, baselines,
//! or statistical regression tests.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput basis for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (e.g. FLOPs) processed per routine call.
    Elements(u64),
    /// Bytes processed per routine call.
    Bytes(u64),
}

/// Top-level driver handed to each `criterion_group!` target.
pub struct Criterion {
    /// Wall-clock budget per sample (calibration target).
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_budget: Duration::from_millis(20),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbench group: {name}");
        BenchmarkGroup {
            crit: self,
            _name: name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Ungrouped single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let budget = self.sample_budget;
        run_benchmark(&id.into(), 10, None, budget, f);
    }
}

/// A named set of benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    crit: &'a mut Criterion,
    _name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let budget = self.crit.sample_budget;
        run_benchmark(&id.into(), self.sample_size, self.throughput, budget, f);
        self
    }

    pub fn finish(self) {}
}

/// Times the routine the benchmark closure hands to [`Bencher::iter`].
pub struct Bencher {
    /// Iterations the routine must run this sample.
    iters: u64,
    /// Measured duration of those iterations.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        // Setup runs outside the timed region, once per iteration.
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    budget: Duration,
    mut f: F,
) {
    // Calibrate: grow the iteration count until one sample fills the
    // budget (or the routine alone exceeds it).
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= budget || iters >= 1 << 20 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            16
        } else {
            (budget.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
        };
        iters = iters.saturating_mul(grow);
    }

    let mut per_iter_ns: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(f64::total_cmp);
    let median = per_iter_ns[per_iter_ns.len() / 2];

    let time = human_time(median);
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (median * 1e-9);
            eprintln!(
                "  {id:<40} time: [{time}]  thrpt: [{}/s]",
                human_count(rate)
            );
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (median * 1e-9);
            eprintln!(
                "  {id:<40} time: [{time}]  thrpt: [{}B/s]",
                human_count(rate)
            );
        }
        None => eprintln!("  {id:<40} time: [{time}]"),
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn human_count(x: f64) -> String {
    if x < 1e3 {
        format!("{x:.1} ")
    } else if x < 1e6 {
        format!("{:.2} K", x / 1e3)
    } else if x < 1e9 {
        format!("{:.2} M", x / 1e6)
    } else {
        format!("{:.2} G", x / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut crit: $crate::Criterion = $cfg;
            $($target(&mut crit);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut crit = $crate::Criterion::default();
            $($target(&mut crit);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion {
            sample_budget: Duration::from_micros(200),
        };
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).throughput(Throughput::Elements(64));
        g.bench_function("sum", |b| {
            b.iter(|| (0..64u64).sum::<u64>());
        });
        g.bench_function("with_setup", |b| {
            b.iter_with_setup(
                || vec![1u8; 32],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
            );
        });
        g.finish();
    }
}
