//! Offline shim for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the proptest API its test suites use:
//! `proptest!` with `ProptestConfig`, `any`, ranges, tuples, `Just`,
//! `prop_oneof!`, `prop_map`/`prop_filter`, `collection::vec`, and the
//! `prop_assert*`/`prop_assume!` macros. Cases are generated from a
//! deterministic per-test RNG (splitmix64 seeded by the test path), so
//! runs are reproducible; there is no shrinking — a failing case panics
//! with the assertion message.

pub mod rng {
    /// Deterministic splitmix64 generator seeded from the test name.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary string (the expanded test path).
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a over the name, then splitmix to spread it.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            // Modulo bias is irrelevant for test-case generation.
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod test_runner {
    /// A failed (or assume-rejected) test case, carried as its message.
    pub type TestCaseError = String;

    /// The subset of proptest's config the workspace uses.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required per property.
        pub cases: u32,
        /// Cap on generate-and-reject attempts, as a multiple of `cases`.
        pub max_global_rejects: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }
}

pub mod strategy {
    use crate::rng::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A value generator. Unlike real proptest there is no shrinking
    /// tree: `generate` produces one value per call.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_filter` combinator: resamples until the predicate holds.
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..100_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 100000 consecutive samples",
                self.whence
            );
        }
    }

    /// A constant strategy.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a default whole-domain strategy (`any::<T>()`).
    pub trait ArbitraryValue {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident.$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Object-safe strategy view, for `prop_oneof!` unions.
    pub trait DynStrategy<V> {
        fn dyn_generate(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Boxing helper for `prop_oneof!`: going through the generic
    /// return type (rather than an `as` cast) lets integer literals in
    /// later arms unify with the union's value type.
    pub fn arm<S: Strategy + 'static>(s: S) -> Box<dyn DynStrategy<S::Value>> {
        Box::new(s)
    }

    /// Uniform choice among boxed arms (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<Box<dyn DynStrategy<V>>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<Box<dyn DynStrategy<V>>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let k = rng.below(self.arms.len() as u64) as usize;
            self.arms[k].dyn_generate(rng)
        }
    }
}

pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The per-case failure signal threaded out of a property body.
pub type TestCaseResult = Result<(), String>;

/// Sentinel for `prop_assume!` rejections (resample, don't fail).
pub const ASSUME_REJECTED: &str = "__proptest_assume_rejected__";

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::arm($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::ASSUME_REJECTED.to_string());
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)+), a, b
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a), stringify!($b), a
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}` ({})\n  both: {:?}",
                stringify!($a), stringify!($b), format!($($fmt)+), a
            ));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::rng::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut passed = 0u32;
                let mut attempts = 0u32;
                while passed < cfg.cases {
                    attempts += 1;
                    if attempts > cfg.cases.saturating_add(cfg.max_global_rejects) {
                        panic!(
                            "prop_assume! rejected too many cases ({} attempts for {} cases)",
                            attempts, cfg.cases
                        );
                    }
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err(e) if e == $crate::ASSUME_REJECTED => {}
                        ::std::result::Result::Err(e) => panic!(
                            "property '{}' failed at case {}:\n{}",
                            stringify!($name), passed, e
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i32..5, z in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn vec_sizes_respect_range(
            v in crate::collection::vec(any::<u64>(), 2..6),
            w in crate::collection::vec(Just(7u8), 4usize),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn oneof_and_map_compose(
            k in prop_oneof![Just(1u32), Just(2), (10u32..12).prop_map(|x| x * 2)],
        ) {
            prop_assert!(k == 1 || k == 2 || k == 20 || k == 22);
        }

        #[test]
        fn assume_resamples(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
