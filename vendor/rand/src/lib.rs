//! Offline shim for the `rand` crate.
//!
//! The workspace declares `rand` as a dev-dependency but no test or
//! bench currently imports it; this stub only satisfies dependency
//! resolution in the network-less build environment. A tiny
//! deterministic generator is provided in case a future test wants one.

/// Minimal xorshift64* generator.
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng { state: seed | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[cfg(test)]
mod tests {
    use super::SmallRng;

    #[test]
    fn deterministic_sequence() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
