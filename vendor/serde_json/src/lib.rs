//! Offline shim for the `serde_json` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the subset of the serde_json API its bench crate uses: the
//! [`Value`] tree, the [`json!`] macro (object/array literals with
//! expression leaves), indexing, `as_array`/`as_f64`/`as_u64`, and
//! [`to_string_pretty`]. Leaves convert through the [`ToJson`] trait
//! instead of serde's `Serialize`.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered object.
    Object(Vec<(String, Value)>),
}

/// A JSON number: integers stay exact, everything else is f64.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    U(u64),
    I(i64),
    F(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        self.as_f64() == other.as_f64()
    }
}

impl Number {
    fn as_f64(&self) -> f64 {
        match *self {
            Number::U(n) => n as f64,
            Number::I(n) => n as f64,
            Number::F(x) => x,
        }
    }
}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(n)) => Some(*n),
            Value::Number(Number::I(n)) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I(n)) => Some(*n),
            Value::Number(Number::U(n)) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Leaf conversion into [`Value`] (the shim's stand-in for `Serialize`).
pub trait ToJson {
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! to_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
    )*};
}
to_json_uint!(u8, u16, u32, u64, usize);

macro_rules! to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::I(*self as i64))
            }
        }
    )*};
}
to_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<K: AsRef<str>, T: ToJson> ToJson for BTreeMap<K, T> {
    fn to_json(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_json()))
                .collect(),
        )
    }
}

/// Build a [`Value`] from object/array literal syntax with expression
/// leaves, like serde_json's `json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt)* ]) => { $crate::json!(@array [] $($elem)*) };
    (@array [$($done:expr),*]) => { $crate::Value::Array(vec![$($done),*]) };
    (@array [$($done:expr),*] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json!(@array [$($done,)* $crate::json!($next)] $($($rest)*)?)
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::json!($val))),*
        ])
    };
    ($leaf:expr) => { $crate::ToJson::to_json(&$leaf) };
}

/// Error type for the (infallible) pretty printer.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serialize with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(value, 0, &mut out);
    Ok(out)
}

/// Serialize compactly.
pub fn to_string(value: &Value) -> Result<String, Error> {
    Ok(format!("{value}"))
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write_number(*n, f),
            Value::String(s) => write_escaped(s, f),
            Value::Array(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(o) => {
                f.write_str("{")?;
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(k, f)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_number(n: Number, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match n {
        Number::U(v) => write!(f, "{v}"),
        Number::I(v) => write!(f, "{v}"),
        Number::F(x) if x.is_finite() => {
            if x == x.trunc() && x.abs() < 1e15 {
                write!(f, "{x:.1}")
            } else {
                write!(f, "{x}")
            }
        }
        // JSON has no NaN/Inf; serde_json rejects them, we print null.
        Number::F(_) => f.write_str("null"),
    }
}

fn write_escaped(s: &str, f: &mut impl fmt::Write) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

fn write_pretty(value: &Value, depth: usize, out: &mut String) {
    use fmt::Write;
    let pad = "  ".repeat(depth);
    match value {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, v) in a.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                write_pretty(v, depth + 1, out);
                if i + 1 < a.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(o) if !o.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in o.iter().enumerate() {
                out.push_str(&pad);
                out.push_str("  ");
                let _ = write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, depth + 1, out);
                if i + 1 < o.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => {
            let _ = write!(out, "{other}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_indexing_and_accessors() {
        let v = json!({
            "name": "fpfpga",
            "stages": 12u32,
            "clock_mhz": 230.5,
            "tags": vec!["a".to_string(), "b".to_string()],
            "nested": json!({ "x": 1u32 }),
        });
        assert_eq!(v["name"], "fpfpga");
        assert_eq!(v["stages"].as_u64(), Some(12));
        assert_eq!(v["clock_mhz"].as_f64(), Some(230.5));
        assert_eq!(v["tags"].as_array().unwrap().len(), 2);
        assert_eq!(v["nested"]["x"].as_u64(), Some(1));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn pretty_roundtrip_shape() {
        let v = json!({ "a": [1u32, 2u32], "b": "x\"y" });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"a\": [\n"));
        assert!(s.contains("\\\""));
    }

    #[test]
    fn float_formatting_keeps_decimal_point() {
        assert_eq!(to_string(&json!(3.0f64)).unwrap(), "3.0");
        assert_eq!(to_string(&json!(0.25f64)).unwrap(), "0.25");
    }
}
