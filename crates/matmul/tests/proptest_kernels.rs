//! Property tests for the kernels: the cycle-accurate simulators must be
//! bit-identical to their order-faithful references for arbitrary
//! shapes, pipeline latencies and operand values, and the analytical
//! cycle models must match the simulators' counters exactly.

use fpfpga_matmul::block::BlockMatMul;
use fpfpga_matmul::dot::{interleaved_reference, DotProductUnit};
use fpfpga_matmul::matrix::Matrix;
use fpfpga_matmul::mvm::MvmEngine;
use fpfpga_matmul::pe::UnitBackend;
use fpfpga_matmul::reference::reference_matmul;
use fpfpga_matmul::schedule::Schedule;
use fpfpga_matmul::LinearArray;
use fpfpga_softfp::{FpFormat, RoundMode, SoftFloat};
use proptest::prelude::*;

const F: FpFormat = FpFormat::SINGLE;
const RM: RoundMode = RoundMode::NearestEven;

/// Random well-scaled f64s (avoid overflow noise; exactness is what we
/// test, and over/underflow cases are covered by the fpu suites).
fn val() -> impl Strategy<Value = f64> {
    (-1000.0f64..1000.0).prop_map(|x| x / 7.3)
}

fn matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(val(), n * n).prop_map(move |v| Matrix::from_f64(F, n, n, &v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn array_matches_reference(
        n in 2usize..10,
        lm in 2u32..10,
        la in 2u32..12,
        seed in any::<u64>(),
    ) {
        let a = Matrix::from_fn(F, n, n, |i, j| {
            (((seed.wrapping_mul(31).wrapping_add((i * n + j) as u64)) % 1000) as f64 - 500.0) / 37.0
        });
        let b = Matrix::from_fn(F, n, n, |i, j| {
            (((seed.wrapping_mul(17).wrapping_add((j * n + i) as u64)) % 1000) as f64 - 500.0) / 41.0
        });
        let (c, stats) = LinearArray::multiply(F, RM, lm, la, &a, &b, UnitBackend::Fast);
        prop_assert_eq!(c, reference_matmul(&a, &b, RM), "n={} lm={} la={}", n, lm, la);
        let sched = Schedule::new(n as u32, lm + la);
        prop_assert_eq!(stats.useful_macs, sched.useful_cycles() * n as u64);
        prop_assert_eq!(stats.pad_macs, sched.pad_cycles() * n as u64);
    }

    #[test]
    fn blocked_matches_flat(
        tiles in 2u32..4,
        b in prop_oneof![Just(2u32), Just(3), Just(4)],
        lm in 2u32..8,
        la in 2u32..8,
        seed in any::<u64>(),
    ) {
        let n = (tiles * b) as usize;
        let a = Matrix::from_fn(F, n, n, |i, j| {
            (((seed.wrapping_add((i * n + j) as u64 * 7)) % 997) as f64 - 498.0) / 53.0
        });
        let m = Matrix::from_fn(F, n, n, |i, j| {
            (((seed.wrapping_add((j * n + i) as u64 * 13)) % 991) as f64 - 495.0) / 59.0
        });
        let plan = BlockMatMul::square(n as u32, b, lm + la).unwrap();
        let (blocked, stats, _) = plan.run(F, RM, lm, la, &a, &m, UnitBackend::Fast).unwrap();
        let (flat, _) = LinearArray::multiply(F, RM, lm, la, &a, &m, UnitBackend::Fast);
        prop_assert_eq!(blocked, flat, "n={} b={}", n, b);
        prop_assert_eq!(stats.cycles, plan.total_cycles());
    }

    #[test]
    fn dot_matches_interleaved(
        xs in proptest::collection::vec(val(), 0..64),
        lm in 2u32..8,
        la in 2u32..12,
    ) {
        let x: Vec<u64> = xs.iter().map(|&v| SoftFloat::from_f64(F, v).bits()).collect();
        let y: Vec<u64> = xs.iter().rev().map(|&v| SoftFloat::from_f64(F, v * 0.5).bits()).collect();
        let mut unit = DotProductUnit::new(F, RM, lm, la);
        let (got, _) = unit.dot(&x, &y);
        prop_assert_eq!(got, interleaved_reference(F, RM, &x, &y, la as usize));
    }

    #[test]
    fn mvm_matches_reference(
        n in 2usize..12,
        m in 2usize..12,
        p in 1usize..6,
        lm in 2u32..6,
        la in 2u32..8,
        seed in any::<u64>(),
    ) {
        let a = Matrix::from_fn(F, n, m, |i, j| {
            (((seed.wrapping_add((i * m + j) as u64 * 11)) % 883) as f64 - 441.0) / 67.0
        });
        let x: Vec<u64> = (0..m)
            .map(|k| SoftFloat::from_f64(F, ((seed.wrapping_add(k as u64) % 771) as f64 - 385.0) / 71.0).bits())
            .collect();
        let eng = MvmEngine::new(F, RM, lm, la, p);
        let (y, _) = eng.multiply(&a, &x);
        prop_assert_eq!(y, eng.reference(&a, &x), "n={} m={} p={}", n, m, p);
    }

    /// Identity stream invariance: A·I = A for arbitrary latencies.
    #[test]
    fn identity_invariance(n in 2usize..9, lm in 2u32..9, la in 2u32..9, mat in matrix(5)) {
        let _ = n; // fixed 5x5 data, varying latencies
        let id = Matrix::identity(F, 5);
        let (c, _) = LinearArray::multiply(F, RM, lm, la, &mat, &id, UnitBackend::Fast);
        prop_assert_eq!(c, mat);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FIR: cycle-accurate equals order-faithful reference for random
    /// coefficients, depths and signals.
    #[test]
    fn fir_matches_reference(
        coeffs in proptest::collection::vec(-2.0f64..2.0, 1..10),
        stages in 1u32..10,
        xs in proptest::collection::vec(-100.0f64..100.0, 0..48),
    ) {
        use fpfpga_matmul::fir::{reference_fir, FirFilter};
        let bits: Vec<u64> = xs.iter().map(|&v| SoftFloat::from_f64(F, v).bits()).collect();
        let mut fir = FirFilter::new(F, RM, &coeffs, stages);
        let got = fir.filter(&bits);
        prop_assert_eq!(got, reference_fir(F, RM, &coeffs, &bits));
    }

    /// FFT: engine equals reference and pipeline depth never changes
    /// values, for random signals and sizes.
    #[test]
    fn fft_matches_reference(
        logn in 1u32..7,
        seed in any::<u64>(),
        lm in 2u32..9,
        la in 2u32..9,
    ) {
        use fpfpga_matmul::fft::{reference_fft, Cplx, FftEngine};
        let n = 1usize << logn;
        let x: Vec<Cplx> = (0..n)
            .map(|i| {
                let v = seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
                Cplx::from_f64(
                    F,
                    ((v % 2000) as f64 - 1000.0) / 97.0,
                    ((v / 2000 % 2000) as f64 - 1000.0) / 89.0,
                )
            })
            .collect();
        let eng = FftEngine::new(F, RM, lm, la);
        let (got, cycles) = eng.run(&x, false);
        prop_assert_eq!(&got, &reference_fft(F, RM, &x, false));
        prop_assert_eq!(cycles, eng.cycle_model(n));
    }

    /// LU: engine equals reference for random diagonally dominant
    /// matrices across PE counts and depths.
    #[test]
    fn lu_matches_reference(
        n in 2usize..9,
        p in 1u32..5,
        ds in 2u32..16,
        ms in 2u32..8,
        seed in any::<u64>(),
    ) {
        use fpfpga_matmul::lu::LuEngine;
        let a = Matrix::from_fn(F, n, n, |i, j| {
            if i == j {
                8.0 + i as f64
            } else {
                (((seed.wrapping_add((i * n + j) as u64 * 131)) % 997) as f64 - 498.0) / 313.0
            }
        });
        let eng = LuEngine::new(F, RM, ds, ms, p);
        let r = eng.factor(&a);
        prop_assert_eq!(&r.lu, &eng.reference(&a));
        prop_assert_eq!(r.cycles, eng.cycle_model(n));
    }
}
