//! Bit-equivalence of the multi-array blocked matmul against the serial
//! references, over random shapes (ragged, 1×N, N×1, empty-edge), block
//! sizes, array counts 1–8, thread counts 1–4, formats, and the special
//! values that raise exception flags. Values *and* flags must agree for
//! every combination — accumulation order per output tile is a pure
//! function of the plan, never of the array or thread count.
//!
//! The deterministic CI sweep honors `FPFPGA_MULTI_THREADS` so the
//! equivalence suite can be pinned to a specific thread count
//! (CI runs it at 2).

use fpfpga_matmul::block::BlockMatMul;
use fpfpga_matmul::matrix::Matrix;
use fpfpga_matmul::multi::{FnTiles, MultiMatMul};
use fpfpga_matmul::pe::UnitBackend;
use fpfpga_matmul::reference::reference_matmul_flags;
use fpfpga_matmul::PlanError;
use fpfpga_softfp::{FpFormat, PrecisionPolicy, RoundMode};
use proptest::prelude::*;

const RM: RoundMode = RoundMode::NearestEven;

/// Thread count for the deterministic sweeps: `FPFPGA_MULTI_THREADS`
/// when set (CI pins 2), otherwise 2.
fn ci_threads() -> usize {
    std::env::var("FPFPGA_MULTI_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

fn fmt_of(ix: u8) -> FpFormat {
    FpFormat::PAPER_PRECISIONS[ix as usize % FpFormat::PAPER_PRECISIONS.len()]
}

/// A seeded well-scaled matrix (splitmix so nearby seeds decorrelate).
fn seeded_matrix(fmt: FpFormat, rows: usize, cols: usize, mut seed: u64) -> Matrix {
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let entries: Vec<f64> = (0..rows * cols)
        .map(|_| ((next() % 2000) as f64 - 1000.0) / 77.0)
        .collect();
    Matrix::from_f64(fmt, rows, cols, &entries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Multi-array vs the order-faithful softfp reference: values and
    /// flags bit-identical for random (m, k, n, b, arrays, threads,
    /// format) draws — ragged edges included by construction (b rarely
    /// divides the dims).
    #[test]
    fn multi_matches_softfp_reference(
        m in 1u32..14,
        k in 1u32..14,
        n in 1u32..14,
        b in 1u32..7,
        lm in 2u32..7,
        la in 2u32..7,
        arrays in 1u32..9,
        threads in 1usize..5,
        fmt_ix in 0u8..3,
        seed in any::<u64>(),
    ) {
        let fmt = fmt_of(fmt_ix);
        let a = seeded_matrix(fmt, m as usize, k as usize, seed);
        let bm = seeded_matrix(fmt, k as usize, n as usize, seed ^ 0xABCD);
        let mm = MultiMatMul::new(m, k, n, b, lm + la, arrays).unwrap();
        let (c, stats) = mm.run(RM, lm, la, &a, &bm, UnitBackend::Fast, threads).unwrap();
        let (want, want_flags) = reference_matmul_flags(&a, &bm, RM);
        prop_assert_eq!(c, want, "m={} k={} n={} b={} arrays={} threads={}", m, k, n, b, arrays, threads);
        prop_assert_eq!(stats.flags, want_flags, "flags m={} k={} n={} b={}", m, k, n, b);
        prop_assert_eq!(stats.total.useful_macs, mm.plan.useful_macs());
        prop_assert_eq!(stats.total.pad_macs, mm.plan.pad_macs());
        prop_assert_eq!(stats.total.cycles, mm.plan.total_cycles());
    }

    /// The batched multi-array executor vs the per-cycle token-by-token
    /// blocked reference: values, flags AND summed stats identical.
    #[test]
    fn multi_matches_per_cycle_blocked_run(
        m in 1u32..11,
        k in 1u32..11,
        n in 1u32..11,
        b in 1u32..6,
        lm in 2u32..6,
        la in 2u32..6,
        arrays in 1u32..9,
        seed in any::<u64>(),
    ) {
        let fmt = FpFormat::SINGLE;
        let a = seeded_matrix(fmt, m as usize, k as usize, seed);
        let bm = seeded_matrix(fmt, k as usize, n as usize, seed ^ 0x5A5A);
        let plan = BlockMatMul::new(m, k, n, b, lm + la).unwrap();
        let (c_ref, s_ref, f_ref) = plan.run(fmt, RM, lm, la, &a, &bm, UnitBackend::Fast).unwrap();
        let mm = MultiMatMul { plan, arrays };
        let (c, stats) = mm.run(RM, lm, la, &a, &bm, UnitBackend::Fast, 2).unwrap();
        prop_assert_eq!(c, c_ref);
        prop_assert_eq!(stats.flags, f_ref);
        prop_assert_eq!(stats.total, s_ref, "summed stats m={} k={} n={} b={} arrays={}", m, k, n, b, arrays);
    }

    /// Per-array statistics are a pure function of the plan: identical
    /// across thread counts (1–4), so scheduling can never perturb the
    /// energy accounting.
    #[test]
    fn per_array_stats_are_thread_invariant(
        m in 1u32..12,
        k in 1u32..12,
        n in 1u32..12,
        b in 1u32..6,
        arrays in 1u32..9,
        seed in any::<u64>(),
    ) {
        let fmt = FpFormat::SINGLE;
        let a = seeded_matrix(fmt, m as usize, k as usize, seed);
        let bm = seeded_matrix(fmt, k as usize, n as usize, seed ^ 0xF00D);
        let mm = MultiMatMul::new(m, k, n, b, 9, arrays).unwrap();
        let (c1, s1) = mm.run(RM, 4, 5, &a, &bm, UnitBackend::Fast, 1).unwrap();
        for threads in [2usize, 3, 4] {
            let (c, s) = mm.run(RM, 4, 5, &a, &bm, UnitBackend::Fast, threads).unwrap();
            prop_assert_eq!(&c, &c1, "values at threads={}", threads);
            prop_assert_eq!(&s.per_array, &s1.per_array, "per-array stats at threads={}", threads);
            prop_assert_eq!(s.flags, s1.flags);
            prop_assert_eq!(s.tile_fetches, s1.tile_fetches);
        }
    }

    /// Mixed `PrecisionPolicy` draws through the serving layer's mixed
    /// kernel agree with the widened softfp reference on rectangular
    /// shapes — the multi-array PR must not disturb the mixed path.
    #[test]
    fn mixed_policy_rectangular_matches_reference(
        m in 1usize..10,
        k in 1usize..10,
        n in 1usize..10,
        fmt_ix in 0u8..3,
        wide in 0u8..2,
        seed in any::<u64>(),
    ) {
        let fmt = fmt_of(fmt_ix);
        let policy = if wide == 1 {
            PrecisionPolicy::mixed(fmt, FpFormat::DOUBLE)
        } else {
            PrecisionPolicy::uniform(fmt)
        };
        let a = seeded_matrix(fmt, m, k, seed);
        let bm = seeded_matrix(fmt, k, n, seed ^ 0xBEEF);
        let (c, flags) = fpfpga_matmul::mixed_matmul(policy, RM, &a, &bm);
        if policy.is_uniform() {
            let (want, want_flags) = reference_matmul_flags(&a, &bm, RM);
            prop_assert_eq!(c, want, "uniform degeneration m={} k={} n={}", m, k, n);
            prop_assert_eq!(flags, want_flags);
        } else {
            prop_assert_eq!(c.rows(), m);
            prop_assert_eq!(c.cols(), n);
        }
    }
}

/// Deterministic sweep of the edge shapes the fuzz ranges hit rarely:
/// 1×N, N×1, inner dim 1, dims smaller than the block, exact-multiple
/// dims (empty ragged edge), block of 1. Runs at the CI-pinned thread
/// count.
#[test]
fn edge_shapes_match_reference_at_ci_threads() {
    let threads = ci_threads();
    let shapes: &[(u32, u32, u32, u32)] = &[
        (1, 1, 1, 1),
        (1, 1, 1, 4),
        (1, 9, 1, 4),
        (1, 4, 9, 4),
        (9, 4, 1, 4),
        (5, 1, 5, 2),
        (8, 8, 8, 4),  // exact multiple: no ragged edge
        (8, 8, 8, 8),  // single tile
        (2, 3, 4, 16), // block larger than every dim
        (13, 7, 11, 3),
        (16, 1, 16, 5),
    ];
    for &(m, k, n, b) in shapes {
        for fmt in FpFormat::PAPER_PRECISIONS {
            let a = seeded_matrix(fmt, m as usize, k as usize, (m * 31 + k) as u64);
            let bm = seeded_matrix(fmt, k as usize, n as usize, (n * 17 + b) as u64);
            for arrays in [1u32, 3, 8] {
                let mm = MultiMatMul::new(m, k, n, b, 9, arrays).unwrap();
                let (c, stats) = mm
                    .run(RM, 4, 5, &a, &bm, UnitBackend::Fast, threads)
                    .unwrap();
                let (want, want_flags) = reference_matmul_flags(&a, &bm, RM);
                assert_eq!(c, want, "m={m} k={k} n={n} b={b} arrays={arrays} {fmt}");
                assert_eq!(stats.flags, want_flags, "m={m} k={k} n={n} b={b} {fmt}");
            }
        }
    }
}

/// Special values (inf, −inf, NaN, max-finite, −0) produce identical
/// values and flags on the multi path at the CI thread count.
#[test]
fn special_values_flags_match_at_ci_threads() {
    let threads = ci_threads();
    let fmt = FpFormat::SINGLE;
    let specials = [
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
        f32::MAX as f64,
        -0.0,
        1.5,
        f32::MIN_POSITIVE as f64 * 0.5, // denormal in SINGLE
    ];
    let a = Matrix::from_fn(fmt, 5, 5, |i, j| specials[(i * 5 + j) % specials.len()]);
    let b = Matrix::from_fn(fmt, 5, 5, |i, j| {
        specials[(i * 3 + 2 * j + 1) % specials.len()]
    });
    let (want, want_flags) = reference_matmul_flags(&a, &b, RM);
    for arrays in 1..=8u32 {
        for bs in [1u32, 2, 3, 5] {
            let mm = MultiMatMul::new(5, 5, 5, bs, 7, arrays).unwrap();
            let (c, stats) = mm
                .run(RM, 3, 4, &a, &b, UnitBackend::Fast, threads)
                .unwrap();
            assert_eq!(c, want, "arrays={arrays} b={bs}");
            assert_eq!(stats.flags, want_flags, "arrays={arrays} b={bs}");
        }
    }
    assert!(
        want_flags.invalid,
        "the special mix must exercise invalid (inf·0 / inf−inf / NaN)"
    );
}

/// Streaming executor: a problem much larger than 2·arrays tiles keeps
/// at most 2 resident tile buffers per array, at any thread count.
#[test]
fn streaming_peak_residency_is_bounded_by_2k() {
    let fmt = FpFormat::SINGLE;
    let (m, k, n, bs) = (50usize, 34usize, 42usize, 8u32);
    let gen_a = |i: usize, j: usize| (((i * 34 + j) as f32 * 0.013).sin().to_bits()) as u64;
    let gen_b = |i: usize, j: usize| (((i * 42 + j) as f32 * 0.017).cos().to_bits()) as u64;
    for arrays in [1u32, 2, 4, 8] {
        for threads in [1usize, 2, 4] {
            let a_src = FnTiles {
                rows: m,
                cols: k,
                format: fmt,
                gen: gen_a,
            };
            let b_src = FnTiles {
                rows: k,
                cols: n,
                format: fmt,
                gen: gen_b,
            };
            let mm = MultiMatMul::new(m as u32, k as u32, n as u32, bs, 9, arrays).unwrap();
            let (c, stats) = mm
                .run_streamed(RM, 4, 5, &a_src, &b_src, UnitBackend::Fast, threads)
                .unwrap();
            // 7×6 output tiles, 5 inner tiles — far more than 2·arrays
            // tile reads — yet residency stays ≤ 2 per array.
            assert!(
                stats.peak_resident_tiles <= 2 * arrays as usize,
                "arrays={arrays} threads={threads} peak={}",
                stats.peak_resident_tiles
            );
            assert_eq!(stats.tile_fetches, 2 * mm.plan.block_products());
            // And the result still matches the materialized reference.
            let a_mat =
                Matrix::from_bits(fmt, m, k, (0..m * k).map(|t| gen_a(t / k, t % k)).collect());
            let b_mat =
                Matrix::from_bits(fmt, k, n, (0..k * n).map(|t| gen_b(t / n, t % n)).collect());
            let (want, want_flags) = reference_matmul_flags(&a_mat, &b_mat, RM);
            assert_eq!(c, want, "arrays={arrays} threads={threads}");
            assert_eq!(stats.flags, want_flags);
        }
    }
}

/// The planner accepts arbitrary positive shapes and returns typed
/// errors — never panics — for the genuinely invalid ones (fuzzed wide,
/// zeros included).
#[test]
fn planner_never_panics_over_the_full_parameter_grid() {
    for m in 0..6u32 {
        for k in 0..6u32 {
            for n in 0..6u32 {
                for b in 0..5u32 {
                    for pl in 0..4u32 {
                        for arrays in 0..4u32 {
                            match MultiMatMul::new(m, k, n, b, pl, arrays) {
                                Ok(mm) => {
                                    assert!(m >= 1 && k >= 1 && n >= 1 && b >= 1 && pl >= 1);
                                    assert!(arrays >= 1);
                                    // The analytical model is total on valid plans.
                                    let _ = mm.plan.total_cycles();
                                    let _ = mm.plan.pad_macs();
                                    let _ = mm.plan.io_words();
                                }
                                Err(
                                    PlanError::ZeroDim(_)
                                    | PlanError::ZeroBlock
                                    | PlanError::ZeroLatency
                                    | PlanError::ZeroArrays,
                                ) => {
                                    assert!(
                                        m == 0
                                            || k == 0
                                            || n == 0
                                            || b == 0
                                            || pl == 0
                                            || arrays == 0
                                    );
                                }
                                Err(e) => panic!("unexpected error {e}"),
                            }
                        }
                    }
                }
            }
        }
    }
}
