//! Streaming vector kernels: AXPY, elementwise scale/add, and sum
//! reduction — the remaining "matrix and vector operations" of the
//! paper's application inventory.
//!
//! AXPY (`y ← α·x + y`) and the elementwise kernels are *map* workloads:
//! no dependence between elements, so any pipeline depth streams at one
//! element per cycle with zero padding — the easiest case of the paper's
//! latency-hiding discipline. The sum reduction reuses the dot-product
//! kernel's banked accumulator.

use crate::dot::DotProductUnit;
use fpfpga_fpu::mac::FusedMacUnit;
use fpfpga_fpu::sim::{DelayLineUnit, DelayOp, FpPipe};
use fpfpga_fpu::FusedMacDesign;
use fpfpga_softfp::{Flags, FpFormat, RoundMode, SoftFloat};

/// A streaming AXPY unit (`α·x + y` per cycle through one fused MAC).
pub struct AxpyUnit {
    alpha: u64,
    mac: FusedMacUnit,
    /// Cycles consumed.
    pub cycles: u64,
    /// Accumulated exception flags.
    pub flags: Flags,
}

impl AxpyUnit {
    /// A unit with scalar `alpha` and `mac_stages` pipeline stages.
    pub fn new(fmt: FpFormat, mode: RoundMode, alpha: f64, mac_stages: u32) -> AxpyUnit {
        AxpyUnit {
            alpha: SoftFloat::from_f64(fmt, alpha).bits(),
            mac: FusedMacDesign {
                format: fmt,
                round: mode,
            }
            .unit(mac_stages),
            cycles: 0,
            flags: Flags::NONE,
        }
    }

    /// Compute `α·x + y` elementwise, cycle-accurately. Returns the
    /// result and the cycles consumed (n + latency).
    pub fn run(&mut self, xs: &[u64], ys: &[u64]) -> (Vec<u64>, u64) {
        assert_eq!(xs.len(), ys.len());
        let start = self.cycles;
        let mut out = Vec::with_capacity(xs.len());
        let mut i = 0;
        while out.len() < xs.len() {
            let input = if i < xs.len() {
                let inp = Some((self.alpha, xs[i], ys[i]));
                i += 1;
                inp
            } else {
                None
            };
            self.cycles += 1;
            if let Some((v, f)) = self.mac.clock(input) {
                self.flags |= f;
                out.push(v);
            }
        }
        (out, self.cycles - start)
    }
}

/// Elementwise binary kernel (`x op y` per cycle through one pipe).
pub struct MapUnit {
    pipe: DelayLineUnit,
    /// Cycles consumed.
    pub cycles: u64,
    /// Accumulated exception flags.
    pub flags: Flags,
}

impl MapUnit {
    /// An elementwise adder (`x + y`).
    pub fn add(fmt: FpFormat, mode: RoundMode, stages: u32) -> MapUnit {
        MapUnit {
            pipe: DelayLineUnit::new(fmt, mode, DelayOp::Add, stages),
            cycles: 0,
            flags: Flags::NONE,
        }
    }

    /// An elementwise multiplier (`x · y`).
    pub fn mul(fmt: FpFormat, mode: RoundMode, stages: u32) -> MapUnit {
        MapUnit {
            pipe: DelayLineUnit::new(fmt, mode, DelayOp::Mul, stages),
            cycles: 0,
            flags: Flags::NONE,
        }
    }

    /// An elementwise divider (`x ÷ y`).
    pub fn div(fmt: FpFormat, mode: RoundMode, stages: u32) -> MapUnit {
        MapUnit {
            pipe: DelayLineUnit::new(fmt, mode, DelayOp::Div, stages),
            cycles: 0,
            flags: Flags::NONE,
        }
    }

    /// Stream two vectors through the pipe.
    pub fn run(&mut self, xs: &[u64], ys: &[u64]) -> (Vec<u64>, u64) {
        assert_eq!(xs.len(), ys.len());
        let start = self.cycles;
        let mut out = Vec::with_capacity(xs.len());
        let mut i = 0;
        while out.len() < xs.len() {
            let input = if i < xs.len() {
                let inp = Some((xs[i], ys[i]));
                i += 1;
                inp
            } else {
                None
            };
            self.cycles += 1;
            if let Some((v, f)) = self.pipe.clock(input) {
                self.flags |= f;
                out.push(v);
            }
        }
        (out, self.cycles - start)
    }
}

/// Sum reduction via the dot-product unit (`Σ x_i = x · 1⃗`, issued as
/// `x_i·1` products into the banked accumulator).
pub fn vector_sum(
    fmt: FpFormat,
    mode: RoundMode,
    mult_stages: u32,
    add_stages: u32,
    xs: &[u64],
) -> (u64, u64) {
    let one = SoftFloat::one(fmt).bits();
    let ones = vec![one; xs.len()];
    let mut unit = DotProductUnit::new(fmt, mode, mult_stages, add_stages);
    unit.dot(xs, &ones)
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FpFormat = FpFormat::SINGLE;
    const RM: RoundMode = RoundMode::NearestEven;

    fn vec_of(n: usize, f: impl Fn(usize) -> f64) -> Vec<u64> {
        (0..n)
            .map(|i| SoftFloat::from_f64(F, f(i)).bits())
            .collect()
    }

    #[test]
    fn axpy_matches_fused_reference() {
        let n = 40;
        let xs = vec_of(n, |i| (i as f64 * 0.3).sin());
        let ys = vec_of(n, |i| (i as f64 * 0.7).cos());
        let alpha = 2.5;
        for stages in [1u32, 4, 11] {
            let mut unit = AxpyUnit::new(F, RM, alpha, stages);
            let (got, cycles) = unit.run(&xs, &ys);
            let a = SoftFloat::from_f64(F, alpha).bits();
            for i in 0..n {
                let (want, _) = fpfpga_softfp::fma_bits(F, a, xs[i], ys[i], RM);
                assert_eq!(got[i], want, "i={i} stages={stages}");
            }
            assert_eq!(
                cycles,
                n as u64 + stages as u64,
                "one element per cycle + latency"
            );
        }
    }

    #[test]
    fn map_units_match_softfp() {
        let n = 25;
        let xs = vec_of(n, |i| i as f64 + 0.5);
        let ys = vec_of(n, |i| (i as f64 - 12.0) * 1.25 + 0.25);
        let (sums, _) = MapUnit::add(F, RM, 5).run(&xs, &ys);
        let (prods, _) = MapUnit::mul(F, RM, 4).run(&xs, &ys);
        let (quots, _) = MapUnit::div(F, RM, 20).run(&xs, &ys);
        for i in 0..n {
            assert_eq!(sums[i], fpfpga_softfp::add_bits(F, xs[i], ys[i], RM).0);
            assert_eq!(prods[i], fpfpga_softfp::mul_bits(F, xs[i], ys[i], RM).0);
            assert_eq!(quots[i], fpfpga_softfp::div_bits(F, xs[i], ys[i], RM).0);
        }
    }

    #[test]
    fn sum_reduction_close_to_f64() {
        let n = 200;
        let xs = vec_of(n, |i| (i as f64 * 0.11).sin());
        let (got, cycles) = vector_sum(F, RM, 5, 8, &xs);
        let exact: f64 = (0..n)
            .map(|i| SoftFloat::from_bits(F, xs[i]).to_f64())
            .sum();
        let got = SoftFloat::from_bits(F, got).to_f64();
        assert!((got - exact).abs() < 1e-4, "{got} vs {exact}");
        assert!(cycles < n as u64 + 150, "cycles = {cycles}");
    }

    #[test]
    fn axpy_overflow_raises_flags() {
        let xs = vec![SoftFloat::from_f64(F, f32::MAX as f64).bits(); 3];
        let ys = vec![0u64; 3];
        let mut unit = AxpyUnit::new(F, RM, 1e30, 4);
        let (_, _) = unit.run(&xs, &ys);
        assert!(unit.flags.overflow);
    }
}
