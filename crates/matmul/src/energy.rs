//! Energy modeling of the matmul architecture (Section 5, Figures 4-6).
//!
//! Each PE is split into the paper's four component classes — MAC,
//! Storage, I/O and Misc — and charged with the domain-specific
//! methodology: power × active time, with zero-padding cycles burning
//! MAC power for no useful work and idle (skew/drain) cycles costing
//! clock power only.

use crate::block::BlockMatMul;
use crate::perf::PeResources;
use crate::schedule::Schedule;
use crate::units::UnitSet;
use fpfpga_fabric::area::AreaCost;
use fpfpga_fabric::primitives::Primitive;
use fpfpga_fabric::tech::Tech;
use fpfpga_power::{ComponentClass, EnergyBill, PowerModel};

/// Switching activity assumed for active datapath logic.
const DATAPATH_ACTIVITY: f64 = 0.30;
/// Energy per word crossing the array's I/O boundary (nJ) — pad +
/// interconnect drivers for one bus transfer.
const IO_NJ_PER_WORD: f64 = 0.45;

/// The architecture point being charged.
#[derive(Clone, Debug)]
pub struct ArchitectureEnergy {
    /// The FP unit pair per PE.
    pub units: UnitSet,
    /// PE count (array size).
    pub p: u32,
    /// Per-PE resources.
    pub pe: PeResources,
    /// Clock the array runs at (MHz): the unit set's sustained rate.
    pub clock_mhz: f64,
    /// Power model.
    pub model: PowerModel,
    /// Optional time-proportional (quiescent/static) power in mW charged
    /// for the whole run. The paper *excludes* quiescent power from its
    /// unit measurements, so the default is 0; setting it lets the
    /// ablation benches explore when "less latency" really does mean
    /// "less energy" (the hedged claim around Figure 5).
    pub static_power_mw: f64,
}

/// A complete energy estimate for one run.
#[derive(Clone, Debug)]
pub struct EnergyReport {
    /// The itemized bill.
    pub bill: EnergyBill,
    /// Total cycles of the run.
    pub cycles: u64,
    /// Latency in microseconds.
    pub latency_us: f64,
    /// Zero-padding MAC issues (wasted work), summed over PEs.
    pub pad_macs: u64,
    /// Useful MAC issues, summed over PEs.
    pub useful_macs: u64,
    /// Slices of the whole array.
    pub slices: u32,
    /// Embedded multipliers of the whole array.
    pub bmults: u32,
    /// Block RAMs of the whole array.
    pub brams: u32,
}

impl EnergyReport {
    /// Total energy (nJ).
    pub fn total_nj(&self) -> f64 {
        self.bill.total_nj()
    }

    /// Energy attributable to zero padding: the MAC-class share of the
    /// pad fraction of issues.
    pub fn padding_energy_nj(&self) -> f64 {
        let total_macs = (self.pad_macs + self.useful_macs) as f64;
        if total_macs == 0.0 {
            return 0.0;
        }
        self.bill.class_nj(ComponentClass::Mac) * self.pad_macs as f64 / total_macs
    }
}

impl ArchitectureEnergy {
    /// An architecture of `p` PEs with column height `n`.
    pub fn new(units: UnitSet, p: u32, n: u32, tech: &Tech) -> ArchitectureEnergy {
        let pe = PeResources::new(&units, n, tech);
        let clock_mhz = units.clock_mhz();
        ArchitectureEnergy {
            units,
            p,
            pe,
            clock_mhz,
            model: PowerModel::virtex2pro(),
            static_power_mw: 0.0,
        }
    }

    /// Charge a time-proportional static/quiescent power term (mW).
    pub fn with_static_power(mut self, mw: f64) -> ArchitectureEnergy {
        self.static_power_mw = mw;
        self
    }

    /// Per-PE MAC area (the two FP units).
    fn mac_area(&self) -> AreaCost {
        AreaCost {
            luts: (self.units.adder.luts + self.units.multiplier.luts) as f64,
            ffs: (self.units.adder.ffs + self.units.multiplier.ffs) as f64,
            bmults: self.units.adder.bmults + self.units.multiplier.bmults,
            brams: 0,
            routing_slices: 0.0,
        }
    }

    /// Per-PE storage area (BRAM columns + delay registers).
    fn storage_area(&self, n: u32, tech: &Tech) -> AreaCost {
        let word = self.units.format.total_bits();
        let mut a = AreaCost::default();
        for _ in 0..2 {
            a += Primitive::BramBuffer {
                words: n.max(16),
                width: word,
            }
            .area(tech);
        }
        a += AreaCost::ffs((word * self.units.multiplier.stages) as f64);
        a
    }

    /// Per-PE control/misc area.
    fn misc_area(&self) -> AreaCost {
        let word = self.units.format.total_bits();
        AreaCost {
            luts: 40.0,
            ffs: (word + 34) as f64,
            ..Default::default()
        }
    }

    /// Charge one *flat* n×n multiplication on an n-PE array
    /// (Figures 4 and 5: `p = n`, storage height n).
    pub fn charge_flat(&self, n: u32, tech: &Tech) -> EnergyReport {
        assert_eq!(self.p, n, "flat design uses n PEs");
        let sched = Schedule::new(n, self.units.pl());
        let issue = sched.issue_cycles();
        let total = sched.total_cycles();
        // Every PE sees every issue slot (skewed by one cycle each, which
        // does not change the counts).
        let active_per_pe = issue;
        let idle_per_pe = total - issue;
        let pad_macs = sched.pad_cycles() * n as u64;
        let useful_macs = sched.useful_cycles() * n as u64;
        let io_words = // A stream + B load + C drain
            issue + (n as u64 * n as u64) * 2;
        self.charge(
            n,
            tech,
            total,
            active_per_pe,
            idle_per_pe,
            pad_macs,
            useful_macs,
            io_words,
        )
    }

    /// Charge a blocked N×N multiplication on a b-PE array (Figure 6).
    pub fn charge_blocked(&self, plan: &BlockMatMul, tech: &Tech) -> EnergyReport {
        assert_eq!(self.p, plan.b, "blocked design uses b PEs");
        let total = plan.total_cycles();
        let issue = plan.block_products() * plan.block_schedule().issue_cycles();
        let active_per_pe = issue;
        let idle_per_pe = total - issue;
        let pad_macs = plan.pad_macs();
        let useful_macs = plan.useful_macs();
        let io_words = plan.io_words();
        self.charge(
            plan.b,
            tech,
            total,
            active_per_pe,
            idle_per_pe,
            pad_macs,
            useful_macs,
            io_words,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn charge(
        &self,
        n: u32,
        tech: &Tech,
        total_cycles: u64,
        active_per_pe: u64,
        idle_per_pe: u64,
        pad_macs: u64,
        useful_macs: u64,
        io_words: u64,
    ) -> EnergyReport {
        let mut bill = EnergyBill::new();
        let f = self.clock_mhz;
        let p = self.p as f64;

        // MAC: active during every issue slot (padding included — that is
        // precisely the waste), idle-clocked during skew/drain.
        let mac = self.mac_area() * p;
        bill.charge(
            "MAC units",
            ComponentClass::Mac,
            &self.model,
            &mac,
            f,
            DATAPATH_ACTIVITY,
            active_per_pe,
            idle_per_pe,
        );

        // Storage: BRAMs accessed on useful slots; idle on pads (a pad
        // neither reads nor writes the column RAMs) and drains.
        let st = self.storage_area(n, tech) * p;
        let st_active = useful_macs / self.p as u64;
        bill.charge(
            "column RAM + delay regs",
            ComponentClass::Storage,
            &self.model,
            &st,
            f,
            DATAPATH_ACTIVITY,
            st_active,
            total_cycles - st_active,
        );

        // Misc: control counters and shift registers tick every cycle.
        let misc = self.misc_area() * p;
        bill.charge(
            "control / counters",
            ComponentClass::Misc,
            &self.model,
            &misc,
            f,
            DATAPATH_ACTIVITY,
            total_cycles,
            0,
        );

        // I/O: per-word transfer energy.
        bill.charge_raw(
            "array I/O",
            ComponentClass::Io,
            io_words as f64 * IO_NJ_PER_WORD,
        );

        // Optional quiescent term: mW × µs = nJ over the whole run.
        if self.static_power_mw > 0.0 {
            bill.charge_raw(
                "quiescent leakage",
                ComponentClass::Misc,
                self.static_power_mw * total_cycles as f64 / f,
            );
        }

        let area_total = self.pe.area * p;
        EnergyReport {
            cycles: total_cycles,
            latency_us: total_cycles as f64 / f,
            pad_macs,
            useful_macs,
            slices: area_total.slices(tech) as u32,
            bmults: area_total.bmults,
            brams: area_total.brams,
            bill,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::PipeliningLevel;
    use fpfpga_fabric::synthesis::SynthesisOptions;
    use fpfpga_softfp::FpFormat;

    fn arch(level: PipeliningLevel, p: u32, n: u32) -> ArchitectureEnergy {
        let tech = Tech::virtex2pro();
        let units = UnitSet::for_level(FpFormat::SINGLE, level, &tech, SynthesisOptions::SPEED);
        ArchitectureEnergy::new(units, p, n, &tech)
    }

    #[test]
    fn small_problems_waste_energy_with_deep_pipelines() {
        // Figure 4's message: at n = 10, PL = 25 pads 60% of slots.
        let tech = Tech::virtex2pro();
        let shallow = arch(PipeliningLevel::Minimum, 10, 10).charge_flat(10, &tech);
        let deep = arch(PipeliningLevel::Maximum, 10, 10).charge_flat(10, &tech);
        assert_eq!(shallow.pad_macs, 0);
        assert!(deep.pad_macs > 0);
        assert!(deep.padding_energy_nj() > 0.0);
        assert!(
            deep.padding_energy_nj() / deep.total_nj() > 0.2,
            "padding share = {}",
            deep.padding_energy_nj() / deep.total_nj()
        );
    }

    #[test]
    fn large_problems_favor_deep_pipelines() {
        // Figure 5's message: "even though the deeply pipelined
        // architecture consumes a lot of area, it might consume the
        // least energy due to less latency".
        let tech = Tech::virtex2pro();
        let n = 64;
        let shallow = arch(PipeliningLevel::Minimum, n, n).charge_flat(n, &tech);
        let deep = arch(PipeliningLevel::Maximum, n, n).charge_flat(n, &tech);
        assert!(deep.latency_us < shallow.latency_us, "deep must be faster");
        assert!(deep.slices > shallow.slices, "deep must be bigger");
    }

    #[test]
    fn energy_components_all_present() {
        let tech = Tech::virtex2pro();
        let rep = arch(PipeliningLevel::Moderate, 16, 16).charge_flat(16, &tech);
        for class in ComponentClass::ALL {
            assert!(rep.bill.class_nj(class) > 0.0, "{class:?} missing");
        }
        assert!(rep.total_nj() > 0.0);
    }

    #[test]
    fn blocked_energy_tracks_block_size() {
        // Figure 6: for fixed N, small b wastes energy on padding.
        let tech = Tech::virtex2pro();
        let n = 64u32;
        let level = PipeliningLevel::Maximum; // PL = 25
        let mut waste_fracs = Vec::new();
        for b in [4u32, 8, 16, 32] {
            let plan = BlockMatMul::square(n, b, level.pl()).unwrap();
            let a = arch(level, b, b);
            let rep = a.charge_blocked(&plan, &tech);
            waste_fracs.push(rep.padding_energy_nj() / rep.total_nj());
        }
        for w in waste_fracs.windows(2) {
            assert!(
                w[0] > w[1],
                "padding share must drop as b grows: {waste_fracs:?}"
            );
        }
    }

    #[test]
    fn static_power_rewards_speed() {
        // With a large enough time-proportional term, the deep-pipelined
        // design's latency advantage at big n turns into an energy win —
        // the regime the paper's "might consume the least energy due to
        // less latency" remark needs.
        let tech = Tech::virtex2pro();
        let n = 64;
        let energy_at = |level: PipeliningLevel, static_mw: f64| {
            let units = UnitSet::for_level(FpFormat::SINGLE, level, &tech, SynthesisOptions::SPEED);
            ArchitectureEnergy::new(units, n, n, &tech)
                .with_static_power(static_mw)
                .charge_flat(n, &tech)
                .total_nj()
        };
        // Dynamic-only: shallow wins on energy (documented divergence).
        assert!(
            energy_at(PipeliningLevel::Minimum, 0.0) < energy_at(PipeliningLevel::Maximum, 0.0)
        );
        // With a heavy static term the ordering flips.
        let heavy = 20_000.0; // 20 W of chip-level static/system power
        assert!(
            energy_at(PipeliningLevel::Maximum, heavy) < energy_at(PipeliningLevel::Minimum, heavy),
            "deep should win once time-proportional power dominates"
        );
    }

    #[test]
    fn latency_unit_conversion() {
        let tech = Tech::virtex2pro();
        let rep = arch(PipeliningLevel::Moderate, 8, 8).charge_flat(8, &tech);
        let a = arch(PipeliningLevel::Moderate, 8, 8);
        assert!((rep.latency_us - rep.cycles as f64 / a.clock_mhz).abs() < 1e-12);
    }
}
