//! 2-D convolution kernel — the paper's "image processing" motivation.
//!
//! A separable-row architecture: each kernel row is a transposed-form
//! FIR filter (see [`crate::fir`]); row filters run over the image rows
//! and a column combiner adds the `kh` partial images with a small adder
//! tree. All structural hazards are inherited from the FIR cells (none —
//! pure feed-forward), so the kernel streams one pixel per cycle per row
//! filter at any pipeline depth.
//!
//! Boundary policy: zero padding on all sides, `same` output size with
//! the kernel anchored at its centre (`kh/2`, `kw/2`).

use crate::fir::{reference_fir, FirFilter};
use crate::matrix::Matrix;
use fpfpga_softfp::{FpFormat, RoundMode, SoftFloat};

/// A 2-D convolution engine for a fixed kernel.
pub struct Conv2dEngine {
    fmt: FpFormat,
    mode: RoundMode,
    /// Kernel coefficients, row-major (kh × kw).
    kernel: Vec<Vec<f64>>,
    mac_stages: u32,
}

impl Conv2dEngine {
    /// An engine for `kernel` (kh × kw, each row same length) whose MACs
    /// have `mac_stages` stages.
    pub fn new(
        fmt: FpFormat,
        mode: RoundMode,
        kernel: &[Vec<f64>],
        mac_stages: u32,
    ) -> Conv2dEngine {
        assert!(!kernel.is_empty());
        let kw = kernel[0].len();
        assert!(
            kw >= 1 && kernel.iter().all(|r| r.len() == kw),
            "ragged kernel"
        );
        Conv2dEngine {
            fmt,
            mode,
            kernel: kernel.to_vec(),
            mac_stages,
        }
    }

    /// Convolve an image (`same` size, zero-padded), cycle-accurately in
    /// the row filters. Returns the output and total row-filter cycles.
    pub fn convolve(&self, image: &Matrix) -> (Matrix, u64) {
        let (h, w) = (image.rows(), image.cols());
        let kh = self.kernel.len();
        let kw = self.kernel[0].len();
        let (row_anchor, col_anchor) = (kh / 2, kw / 2);
        let mut out = Matrix::zero(self.fmt, h, w);
        let mut cycles = 0u64;

        // Partial images, one FIR pass per kernel row. Each row runs
        // col_anchor flush samples past its end so the centre-anchored
        // output exists at the right boundary.
        let mut partials: Vec<Vec<Vec<u64>>> = Vec::with_capacity(kh);
        for krow in &self.kernel {
            let mut partial = Vec::with_capacity(h);
            for i in 0..h {
                let mut row: Vec<u64> = (0..w).map(|j| image.get(i, j)).collect();
                row.extend(std::iter::repeat_n(0u64, col_anchor));
                let mut fir = FirFilter::new(self.fmt, self.mode, krow, self.mac_stages);
                let y = fir.filter(&row);
                cycles += fir.cycles;
                partial.push(y);
            }
            partials.push(partial);
        }

        // Column combine with the centre anchor: the row FIR's output at
        // column j weights x[j−c], so `same` semantics read column
        // j + kw/2; rows read i + kh/2 − r. Zero outside, summed in
        // ascending r — the adder-tree order.
        for i in 0..h {
            for j in 0..w {
                let src_j = j + col_anchor;
                let mut acc = SoftFloat::zero(self.fmt);
                for (r, partial) in partials.iter().enumerate() {
                    let src = i as i64 + row_anchor as i64 - r as i64;
                    if src >= 0 && (src as usize) < h {
                        let v = SoftFloat::from_bits(self.fmt, partial[src as usize][src_j]);
                        let (s, _) = acc.add(&v, self.mode);
                        acc = s;
                    }
                }
                out.set(i, j, acc.bits());
            }
        }
        (out, cycles)
    }

    /// Order-faithful reference (row FIR references + the same column
    /// combine order).
    pub fn reference(&self, image: &Matrix) -> Matrix {
        let (h, w) = (image.rows(), image.cols());
        let kh = self.kernel.len();
        let kw = self.kernel[0].len();
        let (row_anchor, col_anchor) = (kh / 2, kw / 2);
        let mut partials: Vec<Vec<Vec<u64>>> = Vec::with_capacity(kh);
        for krow in &self.kernel {
            let mut partial = Vec::with_capacity(h);
            for i in 0..h {
                let mut row: Vec<u64> = (0..w).map(|j| image.get(i, j)).collect();
                row.extend(std::iter::repeat_n(0u64, col_anchor));
                partial.push(reference_fir(self.fmt, self.mode, krow, &row));
            }
            partials.push(partial);
        }
        let mut out = Matrix::zero(self.fmt, h, w);
        for i in 0..h {
            for j in 0..w {
                let src_j = j + col_anchor;
                let mut acc = SoftFloat::zero(self.fmt);
                for (r, partial) in partials.iter().enumerate() {
                    let src = i as i64 + row_anchor as i64 - r as i64;
                    if src >= 0 && (src as usize) < h {
                        let v = SoftFloat::from_bits(self.fmt, partial[src as usize][src_j]);
                        let (s, _) = acc.add(&v, self.mode);
                        acc = s;
                    }
                }
                out.set(i, j, acc.bits());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FpFormat = FpFormat::SINGLE;
    const RM: RoundMode = RoundMode::NearestEven;

    fn image(h: usize, w: usize) -> Matrix {
        Matrix::from_fn(F, h, w, |i, j| ((i * w + j) as f64 * 0.13).sin())
    }

    #[test]
    fn engine_matches_reference_bit_exact() {
        let kernel = vec![
            vec![0.1, 0.2, 0.1],
            vec![0.2, 0.4, 0.2],
            vec![0.1, 0.2, 0.1],
        ];
        for stages in [1u32, 4, 9] {
            let eng = Conv2dEngine::new(F, RM, &kernel, stages);
            let img = image(7, 9);
            let (got, _) = eng.convolve(&img);
            assert_eq!(got, eng.reference(&img), "stages={stages}");
        }
    }

    #[test]
    fn identity_kernel_is_identity() {
        let kernel = vec![
            vec![0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 0.0],
        ];
        let eng = Conv2dEngine::new(F, RM, &kernel, 3);
        let img = image(5, 6);
        let (got, _) = eng.convolve(&img);
        // The centre tap of the FIR sits at delay 1 (h[1]); with the
        // anchor row the output equals the input exactly.
        assert_eq!(got, img);
    }

    #[test]
    fn matches_f64_convolution() {
        let kernel = vec![vec![0.25, 0.5, 0.25], vec![0.5, 1.0, 0.5]];
        let eng = Conv2dEngine::new(F, RM, &kernel, 5);
        let img = image(6, 8);
        let (got, _) = eng.convolve(&img);
        let (h, w) = (img.rows(), img.cols());
        let (row_anchor, col_anchor) = (1i64, 1i64); // kh/2, kw/2
        for i in 0..h {
            for j in 0..w {
                let mut want = 0.0f64;
                for (r, krow) in kernel.iter().enumerate() {
                    let src_i = i as i64 + row_anchor - r as i64;
                    if src_i < 0 || src_i >= h as i64 {
                        continue;
                    }
                    for (c, &kc) in krow.iter().enumerate() {
                        let src_j = j as i64 + col_anchor - c as i64;
                        if src_j < 0 || src_j >= w as i64 {
                            continue;
                        }
                        want += kc * img.get_f64(src_i as usize, src_j as usize);
                    }
                }
                let g = got.get_f64(i, j);
                assert!((g - want).abs() < 1e-5, "({i},{j}): {g} vs {want}");
            }
        }
    }

    #[test]
    fn single_row_kernel_is_anchored_row_fir() {
        let kernel = vec![vec![0.3, -0.6, 0.3]];
        let eng = Conv2dEngine::new(F, RM, &kernel, 4);
        let img = image(3, 16);
        let (got, _) = eng.convolve(&img);
        for i in 0..3 {
            let mut row: Vec<u64> = (0..16).map(|j| img.get(i, j)).collect();
            row.push(0); // the engine's flush column
            let want = reference_fir(F, RM, &kernel[0], &row);
            for j in 0..16 {
                // centre anchor: output j reads the FIR output at j+1
                assert_eq!(got.get(i, j), want[j + 1], "({i},{j})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "ragged kernel")]
    fn rejects_ragged_kernels() {
        Conv2dEngine::new(F, RM, &[vec![1.0, 2.0], vec![3.0]], 2);
    }
}
