//! Architectural design-space exploration.
//!
//! Section 5 closes with: "based upon the area, latency and energy
//! constraints, architectural choices can be made from Figure 5". This
//! module turns that remark into a tool: enumerate candidate
//! architectures (pipelining level × block size), evaluate each with the
//! energy/latency/resource models, filter by the designer's constraints
//! and return the Pareto-optimal set.

use crate::block::BlockMatMul;
use crate::energy::ArchitectureEnergy;
use crate::units::{PipeliningLevel, UnitSet};
use fpfpga_fabric::device::Device;
use fpfpga_fabric::synthesis::SynthesisOptions;
use fpfpga_fabric::tech::Tech;
use fpfpga_softfp::FpFormat;

/// Designer constraints; `None` means unconstrained.
#[derive(Clone, Copy, Debug, Default)]
pub struct Constraints {
    /// Maximum slices (e.g. the target device's capacity).
    pub max_slices: Option<u32>,
    /// Maximum latency in microseconds.
    pub max_latency_us: Option<f64>,
    /// Maximum energy in nanojoules.
    pub max_energy_nj: Option<f64>,
}

impl Constraints {
    /// Constrain to a device's slice capacity.
    pub fn for_device(device: &Device) -> Constraints {
        Constraints { max_slices: Some(device.slices), ..Default::default() }
    }

    fn admits(&self, c: &Candidate) -> bool {
        self.max_slices.is_none_or(|m| c.slices <= m)
            && self.max_latency_us.is_none_or(|m| c.latency_us <= m)
            && self.max_energy_nj.is_none_or(|m| c.energy_nj <= m)
    }
}

/// One evaluated architecture point.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Pipelining level of the FP units.
    pub level: PipeliningLevel,
    /// Block size (= PE count).
    pub b: u32,
    /// Array slices.
    pub slices: u32,
    /// End-to-end latency (µs).
    pub latency_us: f64,
    /// Total energy (nJ).
    pub energy_nj: f64,
    /// Fraction of MAC issues wasted on zero padding.
    pub pad_fraction: f64,
}

impl Candidate {
    /// True if `self` is at least as good as `other` on all three axes
    /// and strictly better on one (Pareto dominance).
    pub fn dominates(&self, other: &Candidate) -> bool {
        let le = self.slices <= other.slices
            && self.latency_us <= other.latency_us
            && self.energy_nj <= other.energy_nj;
        let lt = self.slices < other.slices
            || self.latency_us < other.latency_us
            || self.energy_nj < other.energy_nj;
        le && lt
    }
}

/// Exploration of blocked N×N matrix multiplication designs.
pub struct Explorer {
    /// Operand format.
    pub format: FpFormat,
    /// Problem size N.
    pub n: u32,
    /// Block sizes to consider (must divide N; non-dividing entries are
    /// skipped).
    pub block_sizes: Vec<u32>,
}

impl Explorer {
    /// An explorer over the standard block-size ladder.
    pub fn new(format: FpFormat, n: u32) -> Explorer {
        let block_sizes = [2u32, 4, 8, 16, 32, 64, 128]
            .into_iter()
            .filter(|&b| b <= n && n % b == 0)
            .collect();
        Explorer { format, n, block_sizes }
    }

    /// Evaluate every (level, b) candidate.
    pub fn candidates(&self, tech: &Tech, opts: SynthesisOptions) -> Vec<Candidate> {
        let mut out = Vec::new();
        for level in PipeliningLevel::ALL {
            let units = UnitSet::for_level(self.format, level, tech, opts);
            for &b in &self.block_sizes {
                let plan = BlockMatMul::new(self.n, b, units.pl());
                let arch = ArchitectureEnergy::new(units.clone(), b, b, tech);
                let rep = arch.charge_blocked(&plan, tech);
                out.push(Candidate {
                    level,
                    b,
                    slices: rep.slices,
                    latency_us: rep.latency_us,
                    energy_nj: rep.total_nj(),
                    pad_fraction: rep.pad_macs as f64
                        / (rep.pad_macs + rep.useful_macs).max(1) as f64,
                });
            }
        }
        out
    }

    /// The Pareto frontier of the candidates admitted by `constraints`,
    /// sorted by slices ascending.
    pub fn pareto(
        &self,
        constraints: &Constraints,
        tech: &Tech,
        opts: SynthesisOptions,
    ) -> Vec<Candidate> {
        let all = self.candidates(tech, opts);
        let admitted: Vec<&Candidate> = all.iter().filter(|c| constraints.admits(c)).collect();
        let mut frontier: Vec<Candidate> = admitted
            .iter()
            .filter(|c| !admitted.iter().any(|o| o.dominates(c)))
            .map(|c| (*c).clone())
            .collect();
        frontier.sort_by_key(|c| c.slices);
        frontier
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explorer() -> Explorer {
        Explorer::new(FpFormat::SINGLE, 64)
    }

    fn flow() -> (Tech, SynthesisOptions) {
        (Tech::virtex2pro(), SynthesisOptions::SPEED)
    }

    #[test]
    fn candidates_cover_the_grid() {
        let (tech, opts) = flow();
        let e = explorer();
        let c = e.candidates(&tech, opts);
        assert_eq!(c.len(), 3 * e.block_sizes.len());
    }

    #[test]
    fn frontier_is_mutually_nondominated() {
        let (tech, opts) = flow();
        let f = explorer().pareto(&Constraints::default(), &tech, opts);
        assert!(!f.is_empty());
        for a in &f {
            for b in &f {
                assert!(!a.dominates(b) || std::ptr::eq(a, b), "{a:?} dominates {b:?}");
            }
        }
    }

    #[test]
    fn frontier_never_contains_dominated_points() {
        let (tech, opts) = flow();
        let e = explorer();
        let all = e.candidates(&tech, opts);
        let f = e.pareto(&Constraints::default(), &tech, opts);
        for c in &f {
            assert!(!all.iter().any(|o| o.dominates(c)), "{c:?} is dominated");
        }
    }

    #[test]
    fn constraints_filter() {
        let (tech, opts) = flow();
        let e = explorer();
        let unconstrained = e.pareto(&Constraints::default(), &tech, opts);
        let tight = Constraints { max_slices: Some(10_000), ..Default::default() };
        let constrained = e.pareto(&tight, &tech, opts);
        assert!(constrained.iter().all(|c| c.slices <= 10_000));
        assert!(constrained.len() <= unconstrained.len() + 1);
        // An impossible constraint yields an empty frontier.
        let impossible = Constraints { max_latency_us: Some(1e-9), ..Default::default() };
        assert!(e.pareto(&impossible, &tech, opts).is_empty());
    }

    #[test]
    fn device_constraint_helper() {
        let c = Constraints::for_device(&Device::XC2VP30);
        assert_eq!(c.max_slices, Some(13_696));
    }

    #[test]
    fn small_blocks_pad_more() {
        let (tech, opts) = flow();
        let cands = explorer().candidates(&tech, opts);
        let deep_small = cands
            .iter()
            .find(|c| c.level == PipeliningLevel::Maximum && c.b == 4)
            .unwrap();
        let deep_big = cands
            .iter()
            .find(|c| c.level == PipeliningLevel::Maximum && c.b == 32)
            .unwrap();
        assert!(deep_small.pad_fraction > deep_big.pad_fraction);
        assert!(deep_small.pad_fraction > 0.5); // (25-4)/25 = 84% of slots
    }
}
