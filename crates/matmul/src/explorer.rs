//! Architectural design-space exploration.
//!
//! Section 5 closes with: "based upon the area, latency and energy
//! constraints, architectural choices can be made from Figure 5". This
//! module turns that remark into a tool: enumerate candidate
//! architectures (pipelining level × block size), evaluate each with the
//! energy/latency/resource models, filter by the designer's constraints
//! and return the Pareto-optimal set.

use crate::block::BlockMatMul;
use crate::energy::ArchitectureEnergy;
use crate::units::{PipeliningLevel, UnitSet};
use fpfpga_fabric::device::Device;
use fpfpga_fabric::synthesis::SynthesisOptions;
use fpfpga_fabric::tech::Tech;
use fpfpga_fpu::SweepCache;
use fpfpga_softfp::FpFormat;

/// Designer constraints; `None` means unconstrained.
#[derive(Clone, Copy, Debug, Default)]
pub struct Constraints {
    /// Maximum slices (e.g. the target device's capacity).
    pub max_slices: Option<u32>,
    /// Maximum latency in microseconds.
    pub max_latency_us: Option<f64>,
    /// Maximum energy in nanojoules.
    pub max_energy_nj: Option<f64>,
}

impl Constraints {
    /// Constrain to a device's slice capacity.
    pub fn for_device(device: &Device) -> Constraints {
        Constraints {
            max_slices: Some(device.slices),
            ..Default::default()
        }
    }

    fn admits(&self, c: &Candidate) -> bool {
        self.max_slices.is_none_or(|m| c.slices <= m)
            && self.max_latency_us.is_none_or(|m| c.latency_us <= m)
            && self.max_energy_nj.is_none_or(|m| c.energy_nj <= m)
    }
}

/// One evaluated architecture point.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Pipelining level of the FP units.
    pub level: PipeliningLevel,
    /// Block size (= PE count).
    pub b: u32,
    /// Array slices.
    pub slices: u32,
    /// End-to-end latency (µs).
    pub latency_us: f64,
    /// Total energy (nJ).
    pub energy_nj: f64,
    /// Fraction of MAC issues wasted on zero padding.
    pub pad_fraction: f64,
}

impl Candidate {
    /// True if `self` is at least as good as `other` on all three axes
    /// and strictly better on one (Pareto dominance).
    pub fn dominates(&self, other: &Candidate) -> bool {
        let le = self.slices <= other.slices
            && self.latency_us <= other.latency_us
            && self.energy_nj <= other.energy_nj;
        let lt = self.slices < other.slices
            || self.latency_us < other.latency_us
            || self.energy_nj < other.energy_nj;
        le && lt
    }
}

/// Exploration of blocked N×N matrix multiplication designs.
pub struct Explorer {
    /// Operand format.
    pub format: FpFormat,
    /// Problem size N.
    pub n: u32,
    /// Block sizes to consider (must divide N; non-dividing entries are
    /// skipped).
    pub block_sizes: Vec<u32>,
}

impl Explorer {
    /// An explorer over the standard block-size ladder.
    pub fn new(format: FpFormat, n: u32) -> Explorer {
        let block_sizes = [2u32, 4, 8, 16, 32, 64, 128]
            .into_iter()
            .filter(|&b| b <= n && n.is_multiple_of(b))
            .collect();
        Explorer {
            format,
            n,
            block_sizes,
        }
    }

    /// Evaluate every (level, b) candidate.
    pub fn candidates(&self, tech: &Tech, opts: SynthesisOptions) -> Vec<Candidate> {
        let mut out = Vec::new();
        for level in PipeliningLevel::ALL {
            let units = UnitSet::for_level(self.format, level, tech, opts);
            out.extend(self.evaluate_level(level, &units, tech));
        }
        out
    }

    /// Evaluate one pipelining level's column of the candidate grid.
    fn evaluate_level(
        &self,
        level: PipeliningLevel,
        units: &UnitSet,
        tech: &Tech,
    ) -> Vec<Candidate> {
        self.block_sizes
            .iter()
            .map(|&b| {
                let plan = BlockMatMul::square(self.n, b, units.pl())
                    .expect("explorer grid uses positive n, b, pl");
                let arch = ArchitectureEnergy::new(units.clone(), b, b, tech);
                let rep = arch.charge_blocked(&plan, tech);
                Candidate {
                    level,
                    b,
                    slices: rep.slices,
                    latency_us: rep.latency_us,
                    energy_nj: rep.total_nj(),
                    pad_fraction: rep.pad_macs as f64
                        / (rep.pad_macs + rep.useful_macs).max(1) as f64,
                }
            })
            .collect()
    }

    /// [`Explorer::candidates`] with the three pipelining levels fanned
    /// out over scoped threads, sharing one [`SweepCache`]. The adder
    /// and multiplier sweeps are the same for every level, so a cold
    /// cache records exactly two misses and a warm cache none —
    /// re-exploration performs zero synthesis.
    pub fn candidates_cached(
        &self,
        tech: &Tech,
        opts: SynthesisOptions,
        cache: &SweepCache,
    ) -> Vec<Candidate> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = PipeliningLevel::ALL
                .into_iter()
                .map(|level| {
                    let cache = cache.clone();
                    scope.spawn(move || {
                        let units =
                            UnitSet::for_level_cached(self.format, level, tech, opts, &cache);
                        self.evaluate_level(level, &units, tech)
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("level evaluation panicked"))
                .collect()
        })
    }

    /// The full exploration behind Figure 5's closing remark, memoized
    /// and fanned out: evaluate the (level × block size) grid through
    /// `cache`, filter by `constraints`, return the Pareto frontier
    /// sorted by slices ascending. Identical to
    /// [`Explorer::pareto`] on the same inputs.
    pub fn explore(
        &self,
        constraints: &Constraints,
        tech: &Tech,
        opts: SynthesisOptions,
        cache: &SweepCache,
    ) -> Vec<Candidate> {
        Explorer::frontier_of(self.candidates_cached(tech, opts, cache), constraints)
    }

    /// Pareto-filter `all` under `constraints`.
    fn frontier_of(all: Vec<Candidate>, constraints: &Constraints) -> Vec<Candidate> {
        let admitted: Vec<&Candidate> = all.iter().filter(|c| constraints.admits(c)).collect();
        let mut frontier: Vec<Candidate> = admitted
            .iter()
            .filter(|c| !admitted.iter().any(|o| o.dominates(c)))
            .map(|c| (*c).clone())
            .collect();
        frontier.sort_by_key(|c| c.slices);
        frontier
    }

    /// The Pareto frontier of the candidates admitted by `constraints`,
    /// sorted by slices ascending.
    pub fn pareto(
        &self,
        constraints: &Constraints,
        tech: &Tech,
        opts: SynthesisOptions,
    ) -> Vec<Candidate> {
        Explorer::frontier_of(self.candidates(tech, opts), constraints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn explorer() -> Explorer {
        Explorer::new(FpFormat::SINGLE, 64)
    }

    fn flow() -> (Tech, SynthesisOptions) {
        (Tech::virtex2pro(), SynthesisOptions::SPEED)
    }

    #[test]
    fn candidates_cover_the_grid() {
        let (tech, opts) = flow();
        let e = explorer();
        let c = e.candidates(&tech, opts);
        assert_eq!(c.len(), 3 * e.block_sizes.len());
    }

    #[test]
    fn frontier_is_mutually_nondominated() {
        let (tech, opts) = flow();
        let f = explorer().pareto(&Constraints::default(), &tech, opts);
        assert!(!f.is_empty());
        for a in &f {
            for b in &f {
                assert!(
                    !a.dominates(b) || std::ptr::eq(a, b),
                    "{a:?} dominates {b:?}"
                );
            }
        }
    }

    #[test]
    fn frontier_never_contains_dominated_points() {
        let (tech, opts) = flow();
        let e = explorer();
        let all = e.candidates(&tech, opts);
        let f = e.pareto(&Constraints::default(), &tech, opts);
        for c in &f {
            assert!(!all.iter().any(|o| o.dominates(c)), "{c:?} is dominated");
        }
    }

    #[test]
    fn constraints_filter() {
        let (tech, opts) = flow();
        let e = explorer();
        let unconstrained = e.pareto(&Constraints::default(), &tech, opts);
        let tight = Constraints {
            max_slices: Some(10_000),
            ..Default::default()
        };
        let constrained = e.pareto(&tight, &tech, opts);
        assert!(constrained.iter().all(|c| c.slices <= 10_000));
        assert!(constrained.len() <= unconstrained.len() + 1);
        // An impossible constraint yields an empty frontier.
        let impossible = Constraints {
            max_latency_us: Some(1e-9),
            ..Default::default()
        };
        assert!(e.pareto(&impossible, &tech, opts).is_empty());
    }

    #[test]
    fn device_constraint_helper() {
        let c = Constraints::for_device(&Device::XC2VP30);
        assert_eq!(c.max_slices, Some(13_696));
    }

    #[test]
    fn explore_matches_pareto_and_never_resynthesizes_warm() {
        let (tech, opts) = flow();
        let e = explorer();
        let cache = SweepCache::new();
        let cold = e.explore(&Constraints::default(), &tech, opts, &cache);
        assert_eq!(
            cache.misses(),
            2,
            "one adder + one multiplier sweep, shared by all levels"
        );
        let warm = e.explore(&Constraints::default(), &tech, opts, &cache);
        assert_eq!(
            cache.misses(),
            2,
            "warm exploration must perform zero synthesis"
        );
        assert!(cache.hits() >= 4);
        let plain = e.pareto(&Constraints::default(), &tech, opts);
        for frontier in [&cold, &warm] {
            assert_eq!(frontier.len(), plain.len());
            for (a, b) in plain.iter().zip(frontier.iter()) {
                assert_eq!((a.level, a.b, a.slices), (b.level, b.b, b.slices));
                assert_eq!(a.latency_us, b.latency_us);
                assert_eq!(a.energy_nj, b.energy_nj);
            }
        }
    }

    #[test]
    fn cached_candidates_match_plain() {
        let (tech, opts) = flow();
        let e = explorer();
        let cache = SweepCache::new();
        let cached = e.candidates_cached(&tech, opts, &cache);
        let plain = e.candidates(&tech, opts);
        assert_eq!(cached.len(), plain.len());
        for (a, b) in plain.iter().zip(cached.iter()) {
            assert_eq!((a.level, a.b, a.slices), (b.level, b.b, b.slices));
        }
    }

    #[test]
    fn small_blocks_pad_more() {
        let (tech, opts) = flow();
        let cands = explorer().candidates(&tech, opts);
        let deep_small = cands
            .iter()
            .find(|c| c.level == PipeliningLevel::Maximum && c.b == 4)
            .unwrap();
        let deep_big = cands
            .iter()
            .find(|c| c.level == PipeliningLevel::Maximum && c.b == 32)
            .unwrap();
        assert!(deep_small.pad_fraction > deep_big.pad_fraction);
        assert!(deep_small.pad_fraction > 0.5); // (25-4)/25 = 84% of slots
    }
}
