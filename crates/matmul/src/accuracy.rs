//! Numerical-accuracy instrumentation.
//!
//! The paper motivates floating point with applications that "demand
//! high numerical stability and accuracy"; this module measures it:
//! absolute/relative/ulp error statistics of any kernel output against
//! an `f64` baseline, so precision choices (including the custom formats
//! the cores support) can be made on evidence.

use crate::matrix::Matrix;
use fpfpga_softfp::{FpFormat, SoftFloat};

/// Error statistics of a value set against a baseline.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ErrorStats {
    /// Largest absolute error.
    pub max_abs: f64,
    /// Largest relative error (skipping baseline values below `tiny`).
    pub max_rel: f64,
    /// Largest error in units in the last place of the format.
    pub max_ulp: f64,
    /// Root-mean-square absolute error.
    pub rms: f64,
    /// Values compared.
    pub count: usize,
}

/// One ulp of `fmt` at the magnitude of `x`.
pub fn ulp_at(fmt: FpFormat, x: f64) -> f64 {
    if x == 0.0 {
        // ulp at the smallest normal
        return 2f64.powi(fmt.min_exp() - fmt.frac_bits() as i32);
    }
    let e = x.abs().log2().floor() as i32;
    let e = e.clamp(fmt.min_exp(), fmt.max_exp());
    2f64.powi(e - fmt.frac_bits() as i32)
}

/// Accumulating error measurement.
#[derive(Clone, Debug)]
pub struct ErrorMeter {
    fmt: FpFormat,
    tiny: f64,
    sum_sq: f64,
    stats: ErrorStats,
}

impl ErrorMeter {
    /// A meter for values in `fmt`; relative errors ignore baselines
    /// below `tiny`.
    pub fn new(fmt: FpFormat, tiny: f64) -> ErrorMeter {
        ErrorMeter {
            fmt,
            tiny,
            sum_sq: 0.0,
            stats: ErrorStats::default(),
        }
    }

    /// Record one (computed, baseline) pair.
    pub fn record(&mut self, got_bits: u64, baseline: f64) {
        let got = SoftFloat::from_bits(self.fmt, got_bits).to_f64();
        let abs = (got - baseline).abs();
        self.stats.max_abs = self.stats.max_abs.max(abs);
        if baseline.abs() > self.tiny {
            self.stats.max_rel = self.stats.max_rel.max(abs / baseline.abs());
        }
        self.stats.max_ulp = self.stats.max_ulp.max(abs / ulp_at(self.fmt, baseline));
        self.sum_sq += abs * abs;
        self.stats.count += 1;
    }

    /// Record a whole matrix against a baseline slice (row-major).
    pub fn record_matrix(&mut self, got: &Matrix, baseline: &[f64]) {
        assert_eq!(got.rows() * got.cols(), baseline.len());
        for i in 0..got.rows() {
            for j in 0..got.cols() {
                self.record(got.get(i, j), baseline[i * got.cols() + j]);
            }
        }
    }

    /// The statistics so far.
    pub fn stats(&self) -> ErrorStats {
        let mut s = self.stats;
        if s.count > 0 {
            s.rms = (self.sum_sq / s.count as f64).sqrt();
        }
        s
    }
}

/// Convenience: error statistics of a matmul result against its `f64`
/// baseline.
pub fn matmul_error(c: &Matrix, a: &Matrix, b: &Matrix) -> ErrorStats {
    let baseline = crate::reference::f64_matmul(a, b);
    let mut m = ErrorMeter::new(c.format(), 1e-300);
    m.record_matrix(c, &baseline);
    m.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_matmul;
    use fpfpga_softfp::RoundMode;

    #[test]
    fn ulp_at_known_points() {
        let f = FpFormat::SINGLE;
        assert_eq!(ulp_at(f, 1.0), 2f64.powi(-23));
        assert_eq!(ulp_at(f, 2.0), 2f64.powi(-22));
        assert_eq!(ulp_at(f, 3.9), 2f64.powi(-22));
        assert_eq!(ulp_at(f, 0.0), 2f64.powi(-126 - 23));
    }

    #[test]
    fn exact_values_have_zero_error() {
        let fmt = FpFormat::SINGLE;
        let mut m = ErrorMeter::new(fmt, 1e-30);
        for &x in &[1.0f64, -2.5, 1024.0, 0.0] {
            m.record(SoftFloat::from_f64(fmt, x).bits(), x);
        }
        let s = m.stats();
        assert_eq!(s.max_abs, 0.0);
        assert_eq!(s.max_ulp, 0.0);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn rounding_error_is_at_most_half_ulp() {
        let fmt = FpFormat::SINGLE;
        let mut m = ErrorMeter::new(fmt, 1e-30);
        for i in 1..500 {
            let x = i as f64 * 0.0137;
            m.record(SoftFloat::from_f64(fmt, x).bits(), x);
        }
        let s = m.stats();
        assert!(s.max_ulp <= 0.5 + 1e-9, "max ulp = {}", s.max_ulp);
        assert!(s.max_abs > 0.0);
    }

    #[test]
    fn matmul_error_ranks_formats() {
        let n = 8;
        let mk = |fmt: FpFormat| {
            let a = Matrix::from_fn(fmt, n, n, |i, j| ((i * n + j) as f64 * 0.3).sin());
            let b = Matrix::from_fn(fmt, n, n, |i, j| ((i + 2 * j) as f64 * 0.2).cos());
            let c = reference_matmul(&a, &b, RoundMode::NearestEven);
            matmul_error(&c, &a, &b).max_abs
        };
        let e32 = mk(FpFormat::SINGLE);
        let e48 = mk(FpFormat::FP48);
        let e64 = mk(FpFormat::DOUBLE);
        assert!(e32 > e48, "{e32} vs {e48}");
        assert!(e48 > e64 || e48 == 0.0, "{e48} vs {e64}");
    }

    #[test]
    fn truncation_doubles_the_error_bound() {
        let n = 10;
        let fmt = FpFormat::SINGLE;
        let a = Matrix::from_fn(fmt, n, n, |i, j| ((i * n + j) as f64 * 0.17).sin());
        let b = Matrix::from_fn(fmt, n, n, |i, j| ((i * 3 + j) as f64 * 0.23).cos());
        let ne = matmul_error(&reference_matmul(&a, &b, RoundMode::NearestEven), &a, &b);
        let tr = matmul_error(&reference_matmul(&a, &b, RoundMode::Truncate), &a, &b);
        assert!(tr.max_abs >= ne.max_abs, "truncation cannot beat nearest");
        assert!(tr.rms > ne.rms);
    }
}
