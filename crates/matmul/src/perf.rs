//! Whole-device performance: the paper's Section 4.2.
//!
//! "Designs for matrix multiplication for large sized matrices typically
//! occupy the whole device and contain many floating-point units. Hence
//! we analyze the performance of the complete device along with that of
//! the floating-point units."
//!
//! A PE is one adder + one multiplier + storage + control; the device is
//! filled with as many PEs as the binding resource allows, and sustained
//! performance is `2 · f · #PE` FLOP/s (one multiply and one add
//! completing per PE per cycle).

use crate::units::UnitSet;
use fpfpga_fabric::area::AreaCost;
use fpfpga_fabric::device::Device;
use fpfpga_fabric::primitives::Primitive;
use fpfpga_fabric::tech::Tech;

/// The resource bill of one processing element.
#[derive(Clone, Debug)]
pub struct PeResources {
    /// Combined area: FP units + storage + control.
    pub area: AreaCost,
    /// The unit set inside.
    pub units: UnitSet,
}

impl PeResources {
    /// Build the PE bill for a unit set and column height `n` (the
    /// storage is two BRAM-backed columns of `n` words plus the token /
    /// control shift registers).
    pub fn new(units: &UnitSet, n: u32, tech: &Tech) -> PeResources {
        let fmt = units.format;
        let word = fmt.total_bits();
        let mut area = AreaCost {
            luts: units.adder.luts as f64 + units.multiplier.luts as f64,
            ffs: units.adder.ffs as f64 + units.multiplier.ffs as f64,
            bmults: units.adder.bmults + units.multiplier.bmults,
            brams: units.adder.brams + units.multiplier.brams,
            routing_slices: 0.0,
        };
        // B column + C column in block RAM.
        for _ in 0..2 {
            let buf = Primitive::BramBuffer {
                words: n.max(16),
                width: word,
            };
            area += buf.area(tech);
        }
        // Token register, C-operand delay line (PL_mult deep), address
        // counters and the control shift registers the paper mentions.
        let token_bits = word + 2 * 16 + 2; // a + i + k + pad/valid
        area += AreaCost::ffs((token_bits + word * units.multiplier.stages) as f64);
        area += AreaCost::luts(40.0); // counters + muxes + decode glue
        PeResources {
            area,
            units: units.clone(),
        }
    }

    /// Slices of one PE.
    pub fn slices(&self, tech: &Tech) -> f64 {
        self.area.slices(tech)
    }
}

/// A device filled with PEs.
#[derive(Clone, Debug)]
pub struct DeviceFill {
    /// The device.
    pub device: Device,
    /// Per-PE resources.
    pub pe: PeResources,
    /// Number of PEs that fit.
    pub pe_count: u32,
    /// Achievable array clock (MHz): bounded by the unit set and by the
    /// congestion of a full device.
    pub clock_mhz: f64,
}

impl DeviceFill {
    /// Fill `device` with PEs built around `units`.
    ///
    /// 10% of slices are reserved for the array-level interconnect and
    /// I/O logic; the clock is derated by 8% for a full-device P&R (the
    /// paper's own architecture numbers are post-P&R at full utilization).
    pub fn new(device: Device, units: &UnitSet, n: u32, tech: &Tech) -> DeviceFill {
        let pe = PeResources::new(units, n, tech);
        let pe_count = device.fit(&pe.area, tech, 0.10);
        let clock_mhz = units.clock_mhz() * 0.92;
        DeviceFill {
            device,
            pe,
            pe_count,
            clock_mhz,
        }
    }

    /// Sustained GFLOPS: 2 FLOPs per PE per cycle.
    pub fn gflops(&self) -> f64 {
        2.0 * self.pe_count as f64 * self.clock_mhz / 1000.0
    }

    /// GFLOPS corrected for zero-padding waste at problem size `n_prob`
    /// (the useful fraction of issue slots).
    pub fn effective_gflops(&self, n_prob: u32) -> f64 {
        let pl = self.pe.units.pl();
        let period = n_prob.max(pl) as f64;
        self.gflops() * (n_prob as f64 / period)
    }

    /// Estimated dynamic power (W) of the filled device at `activity`.
    pub fn power_w(&self, activity: f64) -> f64 {
        let model = fpfpga_power::PowerModel::virtex2pro();
        let total = self.pe.area * self.pe_count as f64;
        model.power_mw(&total, self.clock_mhz, activity).total_mw() / 1000.0
    }

    /// GFLOPS per watt (the paper's performance-per-unit-power metric).
    pub fn gflops_per_watt(&self, activity: f64) -> f64 {
        self.gflops() / self.power_w(activity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::PipeliningLevel;
    use fpfpga_fabric::synthesis::SynthesisOptions;
    use fpfpga_softfp::FpFormat;

    fn fill(fmt: FpFormat) -> DeviceFill {
        let tech = Tech::virtex2pro();
        let units = UnitSet::for_level(
            fmt,
            PipeliningLevel::Maximum,
            &tech,
            SynthesisOptions::SPEED,
        );
        DeviceFill::new(Device::XC2VP125, &units, 64, &tech)
    }

    #[test]
    fn single_precision_reaches_paper_band() {
        // Abstract: "about 15 GFLOPS"; Section 4.2: "19.6 GFLOPS for
        // 32-bit matrix multiplication". Require the model to land in
        // that band.
        let f = fill(FpFormat::SINGLE);
        let g = f.gflops();
        assert!((12.0..25.0).contains(&g), "single-precision GFLOPS = {g}");
    }

    #[test]
    fn double_precision_reaches_paper_band() {
        // Abstract: "8 GFLOPS for double precision".
        let f = fill(FpFormat::DOUBLE);
        let g = f.gflops();
        assert!((5.0..12.0).contains(&g), "double-precision GFLOPS = {g}");
    }

    #[test]
    fn binding_resource_is_respected() {
        let tech = Tech::virtex2pro();
        let f = fill(FpFormat::SINGLE);
        let u = f.device.utilization(&f.pe.area, f.pe_count, &tech);
        assert!(u.slices <= 0.95);
        assert!(u.mult18x18s <= 1.0);
        assert!(u.brams <= 1.0);
        // one more PE must not fit
        let u1 = f.device.utilization(&f.pe.area, f.pe_count + 1, &tech);
        assert!(u1.slices > 0.90 || u1.mult18x18s > 1.0 || u1.brams > 1.0);
    }

    #[test]
    fn padding_reduces_effective_gflops() {
        let f = fill(FpFormat::SINGLE);
        let pl = f.pe.units.pl();
        assert!(f.effective_gflops(pl * 2) > f.effective_gflops(pl / 2));
        assert!((f.effective_gflops(1000) - f.gflops()).abs() < 1e-9);
    }

    #[test]
    fn power_is_device_scale() {
        // A nearly full XC2VP125 burns watts, not milliwatts.
        let f = fill(FpFormat::SINGLE);
        let p = f.power_w(0.3);
        assert!((1.0..30.0).contains(&p), "device power = {p} W");
    }

    #[test]
    fn pe_resources_include_everything() {
        let tech = Tech::virtex2pro();
        let units = UnitSet::for_level(
            FpFormat::SINGLE,
            PipeliningLevel::Moderate,
            &tech,
            SynthesisOptions::SPEED,
        );
        let pe = PeResources::new(&units, 64, &tech);
        assert_eq!(pe.area.brams, 2);
        assert_eq!(pe.area.bmults, 4); // single-precision multiplier
        assert!(pe.slices(&tech) > units.adder.slices as f64 * 0.8);
    }
}
