//! The processing element: one floating-point multiplier feeding one
//! floating-point adder, a block-RAM column of `B`, a block-RAM column
//! of accumulating `C`, and the shift registers that keep operands and
//! control aligned with the pipeline latencies.

use crate::schedule::Token;
use fpfpga_fpu::sim::{DelayLineUnit, DelayOp, FpPipe};
use fpfpga_softfp::{Flags, FpFormat, RoundMode};
use std::collections::VecDeque;

/// How to build the PE's floating-point pipes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnitBackend {
    /// Fast functional twin (softfp + delay line) — default for kernel
    /// runs; bit-identical to the structural simulator (property-tested
    /// in `fpfpga-fpu`).
    Fast,
    /// Full stage-by-stage structural simulation — slower; used by the
    /// cross-validation tests.
    Structural,
}

/// Per-PE activity counters for the energy model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeStats {
    /// Clock cycles this PE was clocked.
    pub cycles: u64,
    /// MAC issues carrying real data.
    pub useful_macs: u64,
    /// MAC issues that were zero padding (wasted energy).
    pub pad_macs: u64,
    /// Cycles with no MAC issue at all (bubbles: skew/drain).
    pub idle_cycles: u64,
    /// Block-RAM accesses (B read + C read + C write).
    pub bram_accesses: u64,
}

/// One processing element of the linear array.
pub struct ProcessingElement {
    fmt: FpFormat,
    /// Double-buffered columns of `B` owned by this PE, indexed by step
    /// `k`; the control token's bank bit selects which buffer a MAC
    /// reads, so the next block's column can load while tokens of the
    /// previous block are still in flight.
    b_banks: [Vec<u64>; 2],
    /// Accumulating column of `C`, indexed by row `i`.
    c_col: Vec<u64>,
    mult: Box<dyn FpPipe + Send>,
    add: Box<dyn FpPipe + Send>,
    /// Delays the `C` operand (and its control) to meet the product at
    /// the adder input.
    c_delay: VecDeque<Option<(u64, u32, bool)>>,
    /// Carries (row, pad) alongside the adder pipe for write-back.
    add_meta: VecDeque<Option<(u32, bool)>>,
    /// One-cycle output register passing the token to the next PE.
    token_out: Option<Token>,
    /// Accumulated exception flags (the exception side-band).
    pub flags: Flags,
    /// Activity counters.
    pub stats: PeStats,
    /// Scratch buffers reused across [`ProcessingElement::mac_step_batch`]
    /// calls so the batched kernel allocates nothing per step.
    scratch_pairs: Vec<(u64, u64)>,
    scratch_mul: Vec<(u64, Flags)>,
    scratch_add: Vec<(u64, Flags)>,
}

impl ProcessingElement {
    /// A PE for `n`-row columns with the given unit latencies.
    pub fn new(
        fmt: FpFormat,
        mode: RoundMode,
        mult_stages: u32,
        add_stages: u32,
        n: usize,
        backend: UnitBackend,
    ) -> ProcessingElement {
        let (mult, add): (Box<dyn FpPipe + Send>, Box<dyn FpPipe + Send>) = match backend {
            UnitBackend::Fast => (
                Box::new(DelayLineUnit::new(fmt, mode, DelayOp::Mul, mult_stages)),
                Box::new(DelayLineUnit::new(fmt, mode, DelayOp::Add, add_stages)),
            ),
            UnitBackend::Structural => (
                Box::new(
                    fpfpga_fpu::MultiplierDesign {
                        format: fmt,
                        round: mode,
                    }
                    .simulator(mult_stages),
                ),
                Box::new(
                    fpfpga_fpu::AdderDesign {
                        format: fmt,
                        round: mode,
                        force_priority_encoder: true,
                    }
                    .simulator(add_stages),
                ),
            ),
        };
        ProcessingElement {
            fmt,
            b_banks: [vec![0; n], vec![0; n]],
            c_col: vec![0; n],
            mult,
            add,
            c_delay: (0..mult_stages).map(|_| None).collect(),
            add_meta: (0..add_stages).map(|_| None).collect(),
            token_out: None,
            flags: Flags::NONE,
            stats: PeStats::default(),
            scratch_pairs: Vec::new(),
            scratch_mul: Vec::new(),
            scratch_add: Vec::new(),
        }
    }

    /// Load this PE's column of `B` into `bank` (entry per step `k`).
    pub fn load_b_column(&mut self, bank: bool, col: &[u64]) {
        let buf = &mut self.b_banks[bank as usize];
        assert_eq!(col.len(), buf.len(), "B column length");
        buf.copy_from_slice(col);
        self.stats.bram_accesses += col.len() as u64;
    }

    /// Clear the accumulator column.
    pub fn clear_c(&mut self) {
        self.c_col.fill(0);
    }

    /// Read out the accumulated `C` column.
    pub fn c_column(&self) -> &[u64] {
        &self.c_col
    }

    /// Combined MAC latency.
    pub fn pl(&self) -> u32 {
        self.mult.latency() + self.add.latency()
    }

    /// Number of rows (column height).
    pub fn n(&self) -> usize {
        self.c_col.len()
    }

    /// Advance one clock. `token` is the stream element arriving from
    /// the previous PE (or the driver); the return value is the token
    /// leaving this PE's output register toward the next one.
    pub fn clock(&mut self, token: Option<Token>) -> Option<Token> {
        self.stats.cycles += 1;

        // --- Write-back first (write-first BRAM forwarding): the sum
        // retiring from the adder this cycle must be visible to a read
        // of the same `C` entry issued this cycle — this is what makes
        // an inner period of exactly PL hazard-free, matching the
        // paper's "hazards only if the matrix size is *less than* the
        // number of pipeline stages".
        let retiring_meta = *self.add_meta.front().expect("meta line non-empty");
        if let (Some((s, sf)), Some((i, pad))) = (self.add.peek(), retiring_meta) {
            self.flags |= sf;
            if !pad {
                self.c_col[i as usize] = s;
                self.stats.bram_accesses += 1; // C write
            }
        }

        // --- MAC issue (stage a of the PE's local schedule).
        let issue = token.map(|t| {
            let (a, b, c) = if t.pad {
                (0u64, 0u64, 0u64)
            } else {
                self.stats.bram_accesses += 2; // B read + C read
                (
                    t.a,
                    self.b_banks[t.bank as usize][t.k as usize],
                    self.c_col[t.i as usize],
                )
            };
            if t.pad {
                self.stats.pad_macs += 1;
            } else {
                self.stats.useful_macs += 1;
            }
            (a, b, c, t.i, t.pad)
        });
        if issue.is_none() {
            self.stats.idle_cycles += 1;
        }

        // Multiplier pipe + C-operand delay line advance together.
        let product = self.mult.clock(issue.map(|(a, b, _, _, _)| (a, b)));
        self.c_delay
            .push_back(issue.map(|(_, _, c, i, pad)| (c, i, pad)));
        let c_meta = self.c_delay.pop_front().expect("delay line non-empty");

        // Adder issue when a product emerges.
        debug_assert_eq!(product.is_some(), c_meta.is_some(), "pipe alignment");
        let add_input = match (product, c_meta) {
            (Some((p, pf)), Some((c, i, pad))) => {
                self.flags |= pf;
                self.add_meta.push_back(Some((i, pad)));
                Some((p, c))
            }
            _ => {
                self.add_meta.push_back(None);
                None
            }
        };
        // Advance the adder; its retiring value was already written back
        // in the forwarding phase above.
        let sum = self.add.clock(add_input);
        let sum_meta = self.add_meta.pop_front().expect("meta line non-empty");
        debug_assert_eq!(sum.is_some(), sum_meta.is_some(), "adder alignment");
        debug_assert_eq!(sum_meta, retiring_meta, "peeked metadata matches retired");

        // Token output register (one-cycle skew to the next PE).
        std::mem::replace(&mut self.token_out, token)
    }

    /// The format this PE operates in.
    pub fn format(&self) -> FpFormat {
        self.fmt
    }

    /// Bulk execution of one schedule step: every row's MAC for column
    /// pass `k` runs through the pipes' batched fast path
    /// ([`FpPipe::run_batch`]) in two calls instead of `PL`·rows clocks.
    ///
    /// Valid exactly when the surrounding schedule is hazard-free — any
    /// two updates of the same `C` entry at least one padded period
    /// (≥ PL) apart, which is what `Schedule` guarantees by padding.
    /// Then results, flags and MAC/BRAM activity counts are
    /// bit-identical to per-cycle clocking; `pads` records the step's
    /// padding issues for the energy model.
    pub fn mac_step_batch(&mut self, bank: bool, k: usize, a_col: &[u64], pads: u64) {
        let bk = self.b_banks[bank as usize][k];
        self.scratch_pairs.clear();
        self.scratch_pairs.extend(a_col.iter().map(|&a| (a, bk)));
        self.scratch_mul.clear();
        self.mult
            .run_batch_into(&self.scratch_pairs, &mut self.scratch_mul);
        debug_assert_eq!(
            self.scratch_mul.len(),
            a_col.len(),
            "mult pipe was not empty"
        );
        self.scratch_pairs.clear();
        for (i, &(p, pf)) in self.scratch_mul.iter().enumerate() {
            self.flags |= pf;
            self.scratch_pairs.push((p, self.c_col[i]));
        }
        self.scratch_add.clear();
        self.add
            .run_batch_into(&self.scratch_pairs, &mut self.scratch_add);
        debug_assert_eq!(
            self.scratch_add.len(),
            a_col.len(),
            "add pipe was not empty"
        );
        for (i, &(s, sf)) in self.scratch_add.iter().enumerate() {
            self.flags |= sf;
            self.c_col[i] = s;
        }
        let n = a_col.len() as u64;
        self.stats.useful_macs += n;
        self.stats.pad_macs += pads;
        self.stats.bram_accesses += 3 * n; // B read + C read + C write per MAC
    }

    /// Charge `pads` padding issues without running the pipes: a
    /// padding slot computes `0·0 + 0` — exact, flag-free, and with no
    /// architectural effect — so a batched run only has to count it for
    /// the energy model.
    pub fn account_pad_issues(&mut self, pads: u64) {
        self.stats.pad_macs += pads;
    }

    /// Charge the clock/idle counters a batched run would have spent
    /// per-cycle: `total` clocks, of which `issues` carried a token.
    pub fn account_batched_cycles(&mut self, total: u64, issues: u64) {
        self.stats.cycles += total;
        self.stats.idle_cycles += total - issues;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(x: f32) -> u64 {
        x.to_bits() as u64
    }

    fn make_pe(n: usize) -> ProcessingElement {
        ProcessingElement::new(
            FpFormat::SINGLE,
            RoundMode::NearestEven,
            3,
            4,
            n,
            UnitBackend::Fast,
        )
    }

    #[test]
    fn single_mac_accumulates() {
        let mut pe = make_pe(2);
        pe.load_b_column(false, &[f(2.0), f(10.0)]);
        // token (i=0, k=0): c[0] += a·b[0] = 3·2
        pe.clock(Some(Token {
            a: f(3.0),
            i: 0,
            k: 0,
            pad: false,
            bank: false,
        }));
        for _ in 0..pe.pl() + 1 {
            pe.clock(None);
        }
        assert_eq!(f32::from_bits(pe.c_column()[0] as u32), 6.0);
        assert_eq!(pe.stats.useful_macs, 1);
    }

    #[test]
    fn accumulation_across_steps() {
        // c[0] += 3·2 (k=0) then += 5·10 (k=1), spaced ≥ PL apart.
        let mut pe = make_pe(2);
        pe.load_b_column(false, &[f(2.0), f(10.0)]);
        let pl = pe.pl() as usize;
        pe.clock(Some(Token {
            a: f(3.0),
            i: 0,
            k: 0,
            pad: false,
            bank: false,
        }));
        for _ in 0..pl {
            pe.clock(None);
        }
        pe.clock(Some(Token {
            a: f(5.0),
            i: 0,
            k: 1,
            pad: false,
            bank: false,
        }));
        for _ in 0..pl + 1 {
            pe.clock(None);
        }
        assert_eq!(f32::from_bits(pe.c_column()[0] as u32), 56.0);
    }

    #[test]
    fn hazard_manifests_without_padding() {
        // Issue two updates to the same c entry back-to-back (1 cycle
        // apart, far less than PL): the second reads a stale 0 and the
        // first write is lost — exactly the RAW hazard the paper pads
        // against.
        let mut pe = make_pe(2);
        pe.load_b_column(false, &[f(1.0), f(1.0)]);
        pe.clock(Some(Token {
            a: f(3.0),
            i: 0,
            k: 0,
            pad: false,
            bank: false,
        }));
        pe.clock(Some(Token {
            a: f(5.0),
            i: 0,
            k: 1,
            pad: false,
            bank: false,
        }));
        for _ in 0..2 * pe.pl() {
            pe.clock(None);
        }
        let got = f32::from_bits(pe.c_column()[0] as u32);
        assert_eq!(
            got, 5.0,
            "stale read: second MAC sees c=0, final write wins"
        );
        assert_ne!(got, 8.0, "8.0 would mean the hazard did not manifest");
    }

    #[test]
    fn pad_tokens_burn_pipes_but_not_state() {
        let mut pe = make_pe(2);
        pe.load_b_column(false, &[f(2.0), f(2.0)]);
        pe.clock(Some(Token {
            a: 0,
            i: 0,
            k: 0,
            pad: true,
            bank: false,
        }));
        for _ in 0..pe.pl() + 1 {
            pe.clock(None);
        }
        assert_eq!(pe.c_column()[0], 0);
        assert_eq!(pe.stats.pad_macs, 1);
        assert_eq!(pe.stats.useful_macs, 0);
    }

    #[test]
    fn token_passes_with_one_cycle_delay() {
        let mut pe = make_pe(1);
        pe.load_b_column(false, &[f(1.0)]);
        let t = Token {
            a: f(7.0),
            i: 0,
            k: 0,
            pad: false,
            bank: false,
        };
        let out0 = pe.clock(Some(t));
        assert!(out0.is_none());
        let out1 = pe.clock(None);
        assert_eq!(out1, Some(t));
    }

    #[test]
    fn structural_backend_matches_fast() {
        let run = |backend: UnitBackend| {
            let mut pe =
                ProcessingElement::new(FpFormat::SINGLE, RoundMode::NearestEven, 4, 5, 3, backend);
            pe.load_b_column(false, &[f(1.5), f(-2.0), f(0.25)]);
            let pl = pe.pl() as usize;
            for k in 0..3u32 {
                for i in 0..3u32 {
                    pe.clock(Some(Token {
                        a: f((i + k) as f32 * 0.5 - 1.0),
                        i,
                        k,
                        pad: false,
                        bank: false,
                    }));
                    // keep issues ≥ PL apart per row by spacing steps
                }
                for _ in 0..pl {
                    pe.clock(None);
                }
            }
            for _ in 0..pl + 2 {
                pe.clock(None);
            }
            pe.c_column().to_vec()
        };
        assert_eq!(run(UnitBackend::Fast), run(UnitBackend::Structural));
    }
}
