//! Block matrix multiplication (Section 5, Figure 6), generalized to
//! rectangular problems with ragged edges.
//!
//! "In \[5\], block matrix multiplication was employed for matrices with
//! large problem sizes. Block size b was used as a parameter while
//! performing design tradeoffs. In the floating-point architecture, for
//! small block sizes, zero padding has to be used to satisfy the latency
//! requirement."
//!
//! An M×K·K×N product is tiled into ⌈M/b⌉·⌈N/b⌉ output blocks; each
//! output block accumulates ⌈K/b⌉ b×b block products on a b-PE array.
//! Edge tiles whose real extent falls short of `b` are **explicitly
//! zero-padded** to the block size — exactly the paper's Section 5
//! padding discipline — and every padding slot is issued as a
//! [`Token::pad`](crate::schedule::Token) zero-operation, so it burns
//! pipeline cycles (which the energy model charges) without ever
//! touching `B`, `C` or the exception flags. The `C` block stays
//! resident in the PE block RAMs across the k-loop, so only `A` and `B`
//! blocks move — and every b×b block product pays the padded inner
//! period `max(b, PL)`.

use crate::array::{ArrayStats, LinearArray};
use crate::matrix::Matrix;
use crate::pe::UnitBackend;
use crate::schedule::Schedule;
use fpfpga_softfp::{Flags, FpFormat, RoundMode};

/// Why a blocked (or multi-array) matmul plan cannot be built. Typed so
/// the serving layer can refuse the request at submission
/// (`SubmitError::Invalid`) instead of a worker thread panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// A problem dimension (M, K or N) is zero.
    ZeroDim(&'static str),
    /// The block size is zero.
    ZeroBlock,
    /// The combined MAC latency is zero.
    ZeroLatency,
    /// The array count of a multi-array plan is zero.
    ZeroArrays,
    /// Operand shapes or formats do not match the plan.
    Shape(String),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::ZeroDim(which) => {
                write!(f, "matmul dimension {which} must be at least 1")
            }
            PlanError::ZeroBlock => write!(f, "block size must be at least 1"),
            PlanError::ZeroLatency => write!(f, "combined MAC latency must be at least 1"),
            PlanError::ZeroArrays => write!(f, "a multi-array plan needs at least 1 array"),
            PlanError::Shape(why) => write!(f, "operand mismatch: {why}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A blocked matmul plan for `C(M×N) = A(M×K) · B(K×N)` on a b-PE
/// array. Any positive M, K, N, b are accepted; ragged edges are
/// zero-padded tiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockMatMul {
    /// Output rows M.
    pub m: u32,
    /// Inner (contraction) dimension K.
    pub k: u32,
    /// Output columns N.
    pub n: u32,
    /// Block (and array) size b.
    pub b: u32,
    /// Combined MAC latency of the chosen unit set.
    pub pl: u32,
}

impl BlockMatMul {
    /// Plan an `M×K · K×N` product with block size `b`. Every positive
    /// shape is accepted — non-square, non-divisible sizes get
    /// zero-padded edge tiles — and invalid (zero) parameters return a
    /// typed [`PlanError`] instead of panicking.
    pub fn new(m: u32, k: u32, n: u32, b: u32, pl: u32) -> Result<BlockMatMul, PlanError> {
        if m == 0 {
            return Err(PlanError::ZeroDim("M"));
        }
        if k == 0 {
            return Err(PlanError::ZeroDim("K"));
        }
        if n == 0 {
            return Err(PlanError::ZeroDim("N"));
        }
        if b == 0 {
            return Err(PlanError::ZeroBlock);
        }
        if pl == 0 {
            return Err(PlanError::ZeroLatency);
        }
        Ok(BlockMatMul { m, k, n, b, pl })
    }

    /// The classic square plan of Figure 6: `N×N` with block size `b`.
    pub fn square(n: u32, b: u32, pl: u32) -> Result<BlockMatMul, PlanError> {
        BlockMatMul::new(n, n, n, b, pl)
    }

    /// Tile rows ⌈M/b⌉.
    pub fn tiles_m(&self) -> u32 {
        self.m.div_ceil(self.b)
    }

    /// Inner tile count ⌈K/b⌉.
    pub fn tiles_k(&self) -> u32 {
        self.k.div_ceil(self.b)
    }

    /// Tile columns ⌈N/b⌉.
    pub fn tiles_n(&self) -> u32 {
        self.n.div_ceil(self.b)
    }

    /// Real row extent of output-tile row `ti` (the last tile row may
    /// be ragged).
    pub fn tile_rows(&self, ti: usize) -> usize {
        Self::edge(self.m, self.b, ti)
    }

    /// Real k extent of inner tile `bk`.
    pub fn tile_steps(&self, bk: usize) -> usize {
        Self::edge(self.k, self.b, bk)
    }

    /// Real column extent of output-tile column `tj`.
    pub fn tile_cols(&self, tj: usize) -> usize {
        Self::edge(self.n, self.b, tj)
    }

    fn edge(total: u32, b: u32, idx: usize) -> usize {
        let start = idx as u64 * b as u64;
        ((total as u64).saturating_sub(start)).min(b as u64) as usize
    }

    /// The per-block schedule (with padding).
    pub fn block_schedule(&self) -> Schedule {
        Schedule::new(self.b, self.pl)
    }

    /// Number of b×b block products.
    pub fn block_products(&self) -> u64 {
        self.tiles_m() as u64 * self.tiles_k() as u64 * self.tiles_n() as u64
    }

    /// Number of output tiles (each drained once).
    pub fn output_tiles(&self) -> u64 {
        self.tiles_m() as u64 * self.tiles_n() as u64
    }

    /// Analytical total cycles: every block product streams one padded
    /// A block (issue cycles) back to back — the double-buffered `B`
    /// banks let block products chain without draining — plus one drain
    /// per output tile before its `C` block is read out. An output
    /// tile's drain is `p + PL + 1` where `p` is its real column count
    /// (ragged edge-column tiles instantiate fewer PEs).
    pub fn total_cycles(&self) -> u64 {
        let per_block = self.block_schedule().issue_cycles();
        let drain_total =
            self.tiles_m() as u64 * (self.n as u64 + self.tiles_n() as u64 * (self.pl as u64 + 1));
        self.block_products() * per_block + drain_total
    }

    /// Analytical padding *issue slots* across the whole computation:
    /// schedule slots that carry a zero-operation instead of a real
    /// `A` element (latency padding plus ragged-edge padding).
    pub fn pad_cycles(&self) -> u64 {
        let issue = self.block_products() * self.block_schedule().issue_cycles();
        let real = self.tiles_n() as u64 * self.m as u64 * self.k as u64;
        issue - real
    }

    /// Useful MAC issues: exactly M·K·N scalar MACs.
    pub fn useful_macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }

    /// Padding MAC issues summed over PEs: each block product issues
    /// `b·max(b,PL)` slots into its tile's `p` real-column PEs, of
    /// which only rows·steps carry data.
    pub fn pad_macs(&self) -> u64 {
        let per_block = self.block_schedule().issue_cycles();
        self.tiles_m() as u64 * self.tiles_k() as u64 * per_block * self.n as u64
            - self.useful_macs()
    }

    /// Fraction of issue slots wasted on padding.
    pub fn waste_fraction(&self) -> f64 {
        self.pad_cycles() as f64
            / (self.block_products() * self.block_schedule().issue_cycles()) as f64
    }

    /// Words crossing the array boundary: every A block streams
    /// b·period tokens, every B block loads its real columns at full
    /// height b, every C tile drains its real columns at full height b.
    pub fn io_words(&self) -> u64 {
        let a_words =
            self.block_products() * (self.b as u64 * self.block_schedule().tokens_per_step());
        let b_words = self.tiles_m() as u64 * self.tiles_k() as u64 * self.b as u64 * self.n as u64;
        let c_words = self.tiles_m() as u64 * self.b as u64 * self.n as u64;
        a_words + b_words + c_words
    }

    /// Check `a`/`b` against the plan's shapes and format.
    pub fn check_operands(&self, a: &Matrix, b: &Matrix) -> Result<(), PlanError> {
        if a.rows() != self.m as usize || a.cols() != self.k as usize {
            return Err(PlanError::Shape(format!(
                "A is {}×{}, plan expects {}×{}",
                a.rows(),
                a.cols(),
                self.m,
                self.k
            )));
        }
        if b.rows() != self.k as usize || b.cols() != self.n as usize {
            return Err(PlanError::Shape(format!(
                "B is {}×{}, plan expects {}×{}",
                b.rows(),
                b.cols(),
                self.k,
                self.n
            )));
        }
        if a.format() != b.format() {
            return Err(PlanError::Shape(format!(
                "operand formats differ: {:?} vs {:?}",
                a.format(),
                b.format()
            )));
        }
        Ok(())
    }

    /// Copy the zero-padded `b×b` tile of `src` whose top-left element
    /// is `(bi·b, bj·b)` into `dest`.
    pub fn copy_tile(src: &Matrix, bi: usize, bj: usize, b: usize, dest: &mut Matrix) {
        debug_assert_eq!((dest.rows(), dest.cols()), (b, b));
        for i in 0..b {
            let si = bi * b + i;
            for j in 0..b {
                let sj = bj * b + j;
                let bits = if si < src.rows() && sj < src.cols() {
                    src.get(si, sj)
                } else {
                    0
                };
                dest.set(i, j, bits);
            }
        }
    }

    /// Execute the plan cycle-accurately, token by token — the slow
    /// validated reference the batched multi-array executor
    /// ([`crate::multi::MultiMatMul`]) is property-tested against.
    /// Returns the product, the aggregate run statistics and the OR of
    /// all exception flags.
    #[allow(clippy::too_many_arguments)] // mirrors LinearArray::multiply's parameter list
    pub fn run(
        &self,
        fmt: FpFormat,
        mode: RoundMode,
        mult_stages: u32,
        add_stages: u32,
        a: &Matrix,
        b: &Matrix,
        backend: UnitBackend,
    ) -> Result<(Matrix, ArrayStats, Flags), PlanError> {
        assert_eq!(
            mult_stages + add_stages,
            self.pl,
            "unit latencies must sum to PL"
        );
        self.check_operands(a, b)?;
        let bs = self.b as usize;
        let (tm, tk, tn) = (
            self.tiles_m() as usize,
            self.tiles_k() as usize,
            self.tiles_n() as usize,
        );

        let mut c = Matrix::zero(fmt, self.m as usize, self.n as usize);
        let mut stats = ArrayStats::default();
        let mut flags = Flags::NONE;
        let mut a_buf = Matrix::zero(fmt, bs, bs);
        let mut b_buf = Matrix::zero(fmt, bs, bs);

        for ti in 0..tm {
            for tj in 0..tn {
                let rows = self.tile_rows(ti);
                let cols = self.tile_cols(tj);
                let mut arr =
                    LinearArray::new(fmt, mode, mult_stages, add_stages, cols, bs, backend);
                for bk in 0..tk {
                    let steps = self.tile_steps(bk);
                    Self::copy_tile(a, ti, bk, bs, &mut a_buf);
                    Self::copy_tile(b, bk, tj, bs, &mut b_buf);
                    // Double buffering: load the bank the previous block
                    // product is not reading, then stream against it.
                    let bank = bk % 2 == 1;
                    arr.load_b_tile(bank, &b_buf, cols);
                    arr.stream_a_tile_from_bank(&a_buf, rows, steps, bank);
                }
                arr.drain();
                let c_blk = arr.read_c();
                for i in 0..rows {
                    for j in 0..cols {
                        c.set(ti * bs + i, tj * bs + j, c_blk.get(i, j));
                    }
                }
                stats.merge(arr.stats());
                flags |= arr.flags();
            }
        }
        Ok((c, stats, flags))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{reference_matmul, reference_matmul_flags};

    const F: FpFormat = FpFormat::SINGLE;
    const RM: RoundMode = RoundMode::NearestEven;

    fn sample(rows: usize, cols: usize, seed: f64) -> Matrix {
        Matrix::from_fn(F, rows, cols, |i, j| {
            ((i * cols + j) as f64 * 0.13 + seed).cos() * 2.0
        })
    }

    #[test]
    fn blocked_equals_unblocked_reference() {
        // Blocked accumulation order equals the flat order when both go
        // ascending in k, so even the bits agree.
        let n = 8;
        let a = sample(n, n, 0.5);
        let b = sample(n, n, 1.5);
        for bs in [2u32, 4, 8] {
            let plan = BlockMatMul::square(n as u32, bs, 7).unwrap();
            let (c, _, _) = plan.run(F, RM, 3, 4, &a, &b, UnitBackend::Fast).unwrap();
            let want = reference_matmul(&a, &b, RM);
            assert_eq!(c, want, "block size {bs}");
        }
    }

    #[test]
    fn ragged_and_rectangular_equal_reference() {
        for (m, k, n, bs) in [
            (10u32, 3u32, 7u32, 4u32),
            (5, 5, 5, 3),
            (1, 9, 4, 4),
            (6, 1, 1, 8),
            (9, 9, 9, 2),
        ] {
            let a = sample(m as usize, k as usize, 0.25);
            let b = sample(k as usize, n as usize, 1.75);
            let plan = BlockMatMul::new(m, k, n, bs, 7).unwrap();
            let (c, stats, flags) = plan.run(F, RM, 3, 4, &a, &b, UnitBackend::Fast).unwrap();
            let (want, want_flags) = reference_matmul_flags(&a, &b, RM);
            assert_eq!(c, want, "m={m} k={k} n={n} b={bs}");
            assert_eq!(flags, want_flags, "m={m} k={k} n={n} b={bs}");
            assert_eq!(
                stats.cycles,
                plan.total_cycles(),
                "m={m} k={k} n={n} b={bs}"
            );
            assert_eq!(stats.useful_macs, plan.useful_macs());
            assert_eq!(stats.pad_macs, plan.pad_macs());
        }
    }

    #[test]
    fn small_blocks_pad() {
        let plan = BlockMatMul::square(16, 4, 19).unwrap();
        assert!(plan.pad_cycles() > 0);
        assert!((plan.waste_fraction() - (19.0 - 4.0) / 19.0).abs() < 1e-12);
        let big = BlockMatMul::square(16, 16, 19).unwrap(); // still padded: 16 < 19
        assert!(big.waste_fraction() > 0.0);
        let ok = BlockMatMul::square(64, 32, 19).unwrap();
        assert_eq!(ok.pad_cycles(), 0);
    }

    #[test]
    fn cycle_model_matches_simulation() {
        let n = 12u32;
        for (bs, pl, ms, asl) in [(4u32, 7u32, 3u32, 4u32), (6, 9, 4, 5), (12, 7, 3, 4)] {
            let plan = BlockMatMul::square(n, bs, pl).unwrap();
            let a = sample(n as usize, n as usize, 2.0);
            let b = sample(n as usize, n as usize, 3.0);
            let (_, stats, _) = plan.run(F, RM, ms, asl, &a, &b, UnitBackend::Fast).unwrap();
            assert_eq!(stats.cycles, plan.total_cycles(), "b={bs} pl={pl}");
            assert_eq!(stats.useful_macs, plan.useful_macs(), "b={bs}");
            // every pad issue slot becomes one pad MAC in each of the b PEs
            assert_eq!(stats.pad_macs, plan.pad_macs(), "b={bs} pl={pl}");
            assert_eq!(
                plan.pad_macs(),
                plan.pad_cycles() * bs as u64,
                "divisible square plans keep the legacy pad relation"
            );
        }
    }

    #[test]
    fn rectangular_cycle_model_matches_simulation() {
        for (m, k, n, bs, ms, asl) in [
            (10u32, 6u32, 14u32, 4u32, 3u32, 4u32),
            (7, 7, 7, 3, 4, 5),
            (3, 11, 2, 5, 2, 3),
            (16, 4, 9, 8, 9, 12),
        ] {
            let plan = BlockMatMul::new(m, k, n, bs, ms + asl).unwrap();
            let a = sample(m as usize, k as usize, 4.0);
            let b = sample(k as usize, n as usize, 5.0);
            let (_, stats, _) = plan.run(F, RM, ms, asl, &a, &b, UnitBackend::Fast).unwrap();
            assert_eq!(
                stats.cycles,
                plan.total_cycles(),
                "m={m} k={k} n={n} b={bs}"
            );
            assert_eq!(stats.useful_macs, plan.useful_macs());
            assert_eq!(stats.pad_macs, plan.pad_macs());
        }
    }

    #[test]
    fn padding_grows_as_blocks_shrink() {
        // "There is large amount of wasteful energy dissipation when the
        // block size is much smaller than the latency of the
        // floating-point units."
        let pl = 19;
        let mut last = 0u64;
        for bs in [16u32, 8, 4, 2] {
            let plan = BlockMatMul::square(32, bs, pl).unwrap();
            let waste = plan.pad_cycles();
            assert!(
                waste > last,
                "waste must grow as b shrinks: b={bs} waste={waste}"
            );
            last = waste;
        }
        assert!(
            BlockMatMul::square(32, 2, pl).unwrap().waste_fraction()
                > BlockMatMul::square(32, 16, pl).unwrap().waste_fraction()
        );
    }

    #[test]
    fn nondividing_block_plans_ragged_edges() {
        // The old constructor panicked here; now it plans 4 ragged-edge
        // tiles per side with a 1-wide remainder.
        let plan = BlockMatMul::square(10, 3, 7).unwrap();
        assert_eq!(plan.tiles_m(), 4);
        assert_eq!(plan.tile_rows(3), 1);
        assert_eq!(plan.useful_macs(), 1000);
    }

    #[test]
    fn zero_parameters_are_typed_errors() {
        assert_eq!(
            BlockMatMul::new(0, 3, 3, 2, 7),
            Err(PlanError::ZeroDim("M"))
        );
        assert_eq!(
            BlockMatMul::new(3, 0, 3, 2, 7),
            Err(PlanError::ZeroDim("K"))
        );
        assert_eq!(
            BlockMatMul::new(3, 3, 0, 2, 7),
            Err(PlanError::ZeroDim("N"))
        );
        assert_eq!(BlockMatMul::new(3, 3, 3, 0, 7), Err(PlanError::ZeroBlock));
        assert_eq!(BlockMatMul::new(3, 3, 3, 2, 0), Err(PlanError::ZeroLatency));
    }

    #[test]
    fn shape_mismatch_is_a_typed_error() {
        let plan = BlockMatMul::new(4, 4, 4, 2, 7).unwrap();
        let a = sample(4, 3, 0.0);
        let b = sample(4, 4, 1.0);
        match plan.run(F, RM, 3, 4, &a, &b, UnitBackend::Fast) {
            Err(PlanError::Shape(why)) => assert!(why.contains("A is 4×3"), "{why}"),
            other => panic!("expected shape error, got {other:?}"),
        }
    }
}
