//! Block matrix multiplication (Section 5, Figure 6).
//!
//! "In \[5\], block matrix multiplication was employed for matrices with
//! large problem sizes. Block size b was used as a parameter while
//! performing design tradeoffs. In the floating-point architecture, for
//! small block sizes, zero padding has to be used to satisfy the latency
//! requirement."
//!
//! An N×N product is tiled into (N/b)² output blocks; each output block
//! accumulates (N/b) b×b block products on a b-PE array. The `C` block
//! stays resident in the PE block RAMs across the k-loop, so only `A`
//! and `B` blocks move — and every b×b block product pays the padded
//! inner period `max(b, PL)`.

use crate::array::{ArrayStats, LinearArray};
use crate::matrix::Matrix;
use crate::pe::UnitBackend;
use crate::schedule::Schedule;
use fpfpga_softfp::{FpFormat, RoundMode};

/// A blocked matmul plan.
#[derive(Clone, Copy, Debug)]
pub struct BlockMatMul {
    /// Total problem size N.
    pub n: u32,
    /// Block (and array) size b; must divide N.
    pub b: u32,
    /// Combined MAC latency of the chosen unit set.
    pub pl: u32,
}

impl BlockMatMul {
    /// Create a plan. Panics unless `b` divides `n`.
    pub fn new(n: u32, b: u32, pl: u32) -> BlockMatMul {
        assert!(b >= 1 && n >= b && n.is_multiple_of(b), "b must divide n");
        BlockMatMul { n, b, pl }
    }

    /// The per-block schedule (with padding).
    pub fn block_schedule(&self) -> Schedule {
        Schedule::new(self.b, self.pl)
    }

    /// Number of b×b block products.
    pub fn block_products(&self) -> u64 {
        let t = (self.n / self.b) as u64;
        t * t * t
    }

    /// Analytical total cycles: every block product streams one A block
    /// (issue cycles) back to back — the double-buffered `B` banks let
    /// block products chain without draining — plus one drain per output
    /// tile before its `C` block is read out.
    pub fn total_cycles(&self) -> u64 {
        let per_block = self.block_schedule().issue_cycles();
        let tiles = ((self.n / self.b) as u64).pow(2);
        let drain_per_tile = self.b as u64 + self.pl as u64 + 1;
        self.block_products() * per_block + tiles * drain_per_tile
    }

    /// Analytical padding cycles across the whole computation.
    pub fn pad_cycles(&self) -> u64 {
        self.block_products() * self.block_schedule().pad_cycles()
    }

    /// Useful MAC issues (N³ / b per PE-visible stream slot × b PEs …
    /// = simply N³ scalar MACs).
    pub fn useful_macs(&self) -> u64 {
        (self.n as u64).pow(3)
    }

    /// Fraction of issue slots wasted on padding.
    pub fn waste_fraction(&self) -> f64 {
        self.pad_cycles() as f64
            / (self.block_products() * self.block_schedule().issue_cycles()) as f64
    }

    /// Words crossing the array boundary: every A block streams b·period
    /// tokens, every B block loads b², every C block drains b² once.
    pub fn io_words(&self) -> u64 {
        let t = (self.n / self.b) as u64;
        let a_words =
            self.block_products() * (self.b as u64 * self.block_schedule().tokens_per_step());
        let b_words = self.block_products() * (self.b as u64 * self.b as u64);
        let c_words = t * t * (self.b as u64 * self.b as u64);
        a_words + b_words + c_words
    }

    /// Execute the plan cycle-accurately. Suitable for small/medium N;
    /// the analytical model above is validated against this.
    #[allow(clippy::too_many_arguments)] // mirrors LinearArray::multiply's parameter list
    pub fn run(
        &self,
        fmt: FpFormat,
        mode: RoundMode,
        mult_stages: u32,
        add_stages: u32,
        a: &Matrix,
        b: &Matrix,
        backend: UnitBackend,
    ) -> (Matrix, ArrayStats) {
        assert_eq!(
            mult_stages + add_stages,
            self.pl,
            "unit latencies must sum to PL"
        );
        let n = self.n as usize;
        let bs = self.b as usize;
        assert_eq!(a.rows(), n);
        assert_eq!(b.rows(), n);
        let tiles = n / bs;

        let mut c = Matrix::zero(fmt, n, n);
        let mut arr = LinearArray::new(fmt, mode, mult_stages, add_stages, bs, bs, backend);
        let mut stats = ArrayStats::default();

        for bi in 0..tiles {
            for bj in 0..tiles {
                arr.clear_c();
                for bk in 0..tiles {
                    let a_blk = a.block(bi, bk, bs);
                    let b_blk = b.block(bk, bj, bs);
                    // Double buffering: load the bank the previous block
                    // product is not reading, then stream against it.
                    let bank = bk % 2 == 1;
                    arr.load_b(bank, &b_blk);
                    arr.stream_a_from_bank(&a_blk, bank);
                }
                arr.drain();
                let c_blk = arr.read_c();
                for i in 0..bs {
                    for j in 0..bs {
                        c.set(bi * bs + i, bj * bs + j, c_blk.get(i, j));
                    }
                }
            }
        }
        let s = arr.stats();
        stats.cycles = arr.cycles;
        stats.useful_macs = s.useful_macs;
        stats.pad_macs = s.pad_macs;
        stats.idle_cycles = s.idle_cycles;
        stats.bram_accesses = s.bram_accesses;
        (c, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_matmul;

    const F: FpFormat = FpFormat::SINGLE;
    const RM: RoundMode = RoundMode::NearestEven;

    fn sample(n: usize, seed: f64) -> Matrix {
        Matrix::from_fn(F, n, n, |i, j| {
            ((i * n + j) as f64 * 0.13 + seed).cos() * 2.0
        })
    }

    #[test]
    fn blocked_equals_unblocked_reference() {
        // Blocked accumulation order equals the flat order when both go
        // ascending in k, so even the bits agree.
        let n = 8;
        let a = sample(n, 0.5);
        let b = sample(n, 1.5);
        for bs in [2u32, 4, 8] {
            let plan = BlockMatMul::new(n as u32, bs, 7);
            let (c, _) = plan.run(F, RM, 3, 4, &a, &b, UnitBackend::Fast);
            let want = reference_matmul(&a, &b, RM);
            assert_eq!(c, want, "block size {bs}");
        }
    }

    #[test]
    fn small_blocks_pad() {
        let plan = BlockMatMul::new(16, 4, 19);
        assert!(plan.pad_cycles() > 0);
        assert!((plan.waste_fraction() - (19.0 - 4.0) / 19.0).abs() < 1e-12);
        let big = BlockMatMul::new(16, 16, 19); // still padded: 16 < 19
        assert!(big.waste_fraction() > 0.0);
        let ok = BlockMatMul::new(64, 32, 19);
        assert_eq!(ok.pad_cycles(), 0);
    }

    #[test]
    fn cycle_model_matches_simulation() {
        let n = 12u32;
        for (bs, pl, ms, asl) in [(4u32, 7u32, 3u32, 4u32), (6, 9, 4, 5), (12, 7, 3, 4)] {
            let plan = BlockMatMul::new(n, bs, pl);
            let a = sample(n as usize, 2.0);
            let b = sample(n as usize, 3.0);
            let (_, stats) = plan.run(F, RM, ms, asl, &a, &b, UnitBackend::Fast);
            assert_eq!(stats.cycles, plan.total_cycles(), "b={bs} pl={pl}");
            assert_eq!(stats.useful_macs, plan.useful_macs(), "b={bs}");
            // every pad issue slot becomes one pad MAC in each of the b PEs
            assert_eq!(
                stats.pad_macs,
                plan.pad_cycles() * bs as u64,
                "b={bs} pl={pl}"
            );
        }
    }

    #[test]
    fn padding_grows_as_blocks_shrink() {
        // "There is large amount of wasteful energy dissipation when the
        // block size is much smaller than the latency of the
        // floating-point units."
        let pl = 19;
        let mut last = 0u64;
        for bs in [16u32, 8, 4, 2] {
            let plan = BlockMatMul::new(32, bs, pl);
            let waste = plan.pad_cycles();
            assert!(
                waste > last,
                "waste must grow as b shrinks: b={bs} waste={waste}"
            );
            last = waste;
        }
        assert!(
            BlockMatMul::new(32, 2, pl).waste_fraction()
                > BlockMatMul::new(32, 16, pl).waste_fraction()
        );
    }

    #[test]
    #[should_panic(expected = "b must divide n")]
    fn rejects_nondividing_block() {
        BlockMatMul::new(10, 3, 7);
    }
}
