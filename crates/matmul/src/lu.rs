//! LU decomposition kernel — the follow-on architecture of the same
//! research group (Govindu, Choi, Prasanna, *"A High-Performance and
//! Energy-efficient Architecture for Floating-point based LU
//! Decomposition on FPGAs"*), built from this library's units.
//!
//! Per elimination step `k`:
//!
//! 1. a **divider** streams the column multipliers
//!    `l[i][k] = a[i][k] / a[k][k]` at one per cycle (the serial tail of
//!    the algorithm — digit-recurrence latency is paid once per step,
//!    not per element);
//! 2. an array of `p` **fused MAC** PEs streams the rank-1 update
//!    `a[i][j] ← fma(−l[i][k], a[k][j], a[i][j])` at one per PE per
//!    cycle. Every element is touched once per step, so the update is
//!    hazard-free at any pipeline depth — the same discipline as the
//!    matmul kernel with `n ≥ PL`.
//!
//! Doolittle form, no pivoting: intended for diagonally dominant or
//! pre-pivoted systems (the hardware the companion paper describes makes
//! the same assumption).

use crate::matrix::Matrix;
use fpfpga_fpu::mac::FusedMacUnit;
use fpfpga_fpu::sim::{DelayLineUnit, DelayOp, FpPipe};
use fpfpga_fpu::FusedMacDesign;
use fpfpga_softfp::{Flags, FpFormat, RoundMode, SoftFloat};

/// A cycle-accurate LU engine.
pub struct LuEngine {
    fmt: FpFormat,
    mode: RoundMode,
    /// Divider pipeline stages.
    pub div_stages: u32,
    /// Fused-MAC pipeline stages.
    pub mac_stages: u32,
    /// Update PEs.
    pub p: u32,
}

/// The result of a factorization run.
pub struct LuResult {
    /// L (unit diagonal, implicit) and U packed in one matrix.
    pub lu: Matrix,
    /// Total cycles.
    pub cycles: u64,
    /// Division operations.
    pub divs: u64,
    /// Fused MAC operations.
    pub macs: u64,
    /// Accumulated exception flags.
    pub flags: Flags,
}

impl LuEngine {
    /// Configure an engine.
    pub fn new(
        fmt: FpFormat,
        mode: RoundMode,
        div_stages: u32,
        mac_stages: u32,
        p: u32,
    ) -> LuEngine {
        assert!(p >= 1);
        LuEngine {
            fmt,
            mode,
            div_stages,
            mac_stages,
            p,
        }
    }

    /// Factor `a` in place (cycle-accurately). Panics on a zero pivot.
    pub fn factor(&self, a: &Matrix) -> LuResult {
        let n = a.rows();
        assert_eq!(a.cols(), n, "LU needs a square matrix");
        let mut m = a.clone();
        let mut cycles = 0u64;
        let mut divs = 0u64;
        let mut macs = 0u64;
        let mut flags = Flags::NONE;

        let mac_design = FusedMacDesign {
            format: self.fmt,
            round: self.mode,
        };

        for k in 0..n {
            let pivot = m.get(k, k);
            assert!(
                !SoftFloat::from_bits(self.fmt, pivot).is_zero(),
                "zero pivot at step {k} (no pivoting)"
            );
            let rows: Vec<usize> = (k + 1..n).collect();
            if rows.is_empty() {
                break;
            }

            // --- Phase 1: stream the column through the divider.
            let mut div = DelayLineUnit::new(self.fmt, self.mode, DelayOp::Div, self.div_stages);
            let mut ls: Vec<u64> = Vec::with_capacity(rows.len());
            let mut issued = 0usize;
            while ls.len() < rows.len() {
                cycles += 1;
                let input = rows.get(issued).map(|&i| {
                    issued += 1;
                    divs += 1;
                    (m.get(i, k), pivot)
                });
                if let Some((q, f)) = div.clock(input) {
                    flags |= f;
                    ls.push(q);
                }
            }
            for (&i, &l) in rows.iter().zip(&ls) {
                m.set(i, k, l);
            }

            // --- Phase 2: the rank-1 update on p PEs. Jobs are dealt
            // round-robin; each PE streams its share at one per cycle.
            let jobs: Vec<(usize, usize)> = rows
                .iter()
                .flat_map(|&i| (k + 1..n).map(move |j| (i, j)))
                .collect();
            let mut pes: Vec<FusedMacUnit> = (0..self.p)
                .map(|_| mac_design.unit(self.mac_stages))
                .collect();
            let mut tags: Vec<std::collections::VecDeque<(usize, usize)>> = (0..self.p)
                .map(|_| std::collections::VecDeque::new())
                .collect();
            let mut retired = 0usize;
            let mut next = 0usize;
            while retired < jobs.len() {
                cycles += 1;
                for (pe_idx, pe) in pes.iter_mut().enumerate() {
                    let input = if next < jobs.len() && next % self.p as usize == pe_idx {
                        let (i, j) = jobs[next];
                        next += 1;
                        macs += 1;
                        tags[pe_idx].push_back((i, j));
                        let row_i = rows.iter().position(|&r| r == i).expect("row in step");
                        let neg_l = ls[row_i] ^ (1u64 << self.fmt.sign_shift());
                        Some((neg_l, m.get(k, j), m.get(i, j)))
                    } else {
                        None
                    };
                    if let Some((v, f)) = pe.clock(input) {
                        flags |= f;
                        let (i, j) = tags[pe_idx].pop_front().expect("tag for retirement");
                        m.set(i, j, v);
                        retired += 1;
                    }
                }
            }
        }

        LuResult {
            lu: m,
            cycles,
            divs,
            macs,
            flags,
        }
    }

    /// Batched counterpart of [`LuEngine::factor`]: per elimination
    /// step, the divider column goes through one
    /// [`FpPipe::run_batch`] call and the whole rank-1 update through
    /// one [`FusedMacUnit::run_batch`] call. Every element is touched
    /// once per step, so the jobs within a step are independent and
    /// the results (values, flags, op counts, cycles) are
    /// bit-identical to the per-cycle simulation.
    pub fn factor_batched(&self, a: &Matrix) -> LuResult {
        let n = a.rows();
        assert_eq!(a.cols(), n, "LU needs a square matrix");
        let mut m = a.clone();
        let mut cycles = 0u64;
        let mut divs = 0u64;
        let mut macs = 0u64;
        let mut flags = Flags::NONE;

        let mac_design = FusedMacDesign {
            format: self.fmt,
            round: self.mode,
        };

        // One divider and one MAC shared by every step (a drained delay
        // line carries no state between batches), and per-step buffers
        // hoisted so the loop allocates nothing after the first pass.
        let mut div = DelayLineUnit::new(self.fmt, self.mode, DelayOp::Div, self.div_stages);
        let mut mac = mac_design.unit(self.mac_stages);
        let mut pairs: Vec<(u64, u64)> = Vec::new();
        let mut quotients: Vec<(u64, Flags)> = Vec::new();
        let mut ls: Vec<u64> = Vec::new();
        let mut jobs: Vec<(usize, usize)> = Vec::new();
        let mut inputs: Vec<(u64, u64, u64)> = Vec::new();
        let mut updates: Vec<(u64, Flags)> = Vec::new();

        for k in 0..n {
            let pivot = m.get(k, k);
            assert!(
                !SoftFloat::from_bits(self.fmt, pivot).is_zero(),
                "zero pivot at step {k} (no pivoting)"
            );
            let rows: Vec<usize> = (k + 1..n).collect();
            if rows.is_empty() {
                break;
            }
            let r = rows.len() as u64;

            // --- Phase 1: the column through the divider, in bulk.
            pairs.clear();
            pairs.extend(rows.iter().map(|&i| (m.get(i, k), pivot)));
            quotients.clear();
            div.run_batch_into(&pairs, &mut quotients);
            ls.clear();
            for &(q, f) in &quotients {
                flags |= f;
                ls.push(q);
            }
            for (&i, &l) in rows.iter().zip(&ls) {
                m.set(i, k, l);
            }
            divs += r;
            cycles += r + self.div_stages as u64;

            // --- Phase 2: the whole rank-1 update in one bulk call.
            jobs.clear();
            jobs.extend(rows.iter().flat_map(|&i| (k + 1..n).map(move |j| (i, j))));
            inputs.clear();
            inputs.extend(jobs.iter().map(|&(i, j)| {
                // `rows` is the contiguous range k+1..n, so row i sits
                // at index i - (k + 1) — no linear search needed.
                let neg_l = ls[i - (k + 1)] ^ (1u64 << self.fmt.sign_shift());
                (neg_l, m.get(k, j), m.get(i, j))
            }));
            updates.clear();
            mac.run_batch_into(&inputs, &mut updates);
            for (&(i, j), &(v, f)) in jobs.iter().zip(&updates) {
                flags |= f;
                m.set(i, j, v);
            }
            macs += jobs.len() as u64;
            cycles += issue_span(jobs.len() as u64, self.p as u64) + self.mac_stages as u64;
        }

        LuResult {
            lu: m,
            cycles,
            divs,
            macs,
            flags,
        }
    }

    /// Analytical cycle model (must equal the simulator's counter).
    pub fn cycle_model(&self, n: usize) -> u64 {
        let mut cycles = 0u64;
        for k in 0..n {
            let r = (n - k - 1) as u64;
            if r == 0 {
                break;
            }
            cycles += r + self.div_stages as u64; // divider stream + drain
                                                  // p jobs issue per cycle; the last one drains the MAC pipe.
            let jobs = r * r;
            cycles += issue_span(jobs, self.p as u64) + self.mac_stages as u64;
        }
        cycles
    }

    /// The engine's exact operation order in plain `SoftFloat` calls.
    pub fn reference(&self, a: &Matrix) -> Matrix {
        let n = a.rows();
        let mut m = a.clone();
        for k in 0..n {
            let pivot = m.get(k, k);
            for i in k + 1..n {
                let (l, _) = fpfpga_softfp::div_bits(self.fmt, m.get(i, k), pivot, self.mode);
                m.set(i, k, l);
            }
            for i in k + 1..n {
                let neg_l = m.get(i, k) ^ (1u64 << self.fmt.sign_shift());
                for j in k + 1..n {
                    let (v, _) = fpfpga_softfp::fma_bits(
                        self.fmt,
                        neg_l,
                        m.get(k, j),
                        m.get(i, j),
                        self.mode,
                    );
                    m.set(i, j, v);
                }
            }
        }
        m
    }
}

/// Cycles from the first issue to the last issue+1 when `jobs` are dealt
/// round-robin to `p` lanes (lane `t % p` issues at cycle `t/p`).
fn issue_span(jobs: u64, p: u64) -> u64 {
    jobs.div_ceil(p)
}

/// Reconstruct `L·U` (unit-diagonal L) for verification.
pub fn reconstruct(lu: &Matrix, mode: RoundMode) -> Matrix {
    let fmt = lu.format();
    let n = lu.rows();
    let mut c = Matrix::zero(fmt, n, n);
    for i in 0..n {
        for j in 0..n {
            let mut acc = SoftFloat::zero(fmt);
            for k in 0..=i.min(j) {
                let l = if k == i {
                    SoftFloat::one(fmt)
                } else {
                    SoftFloat::from_bits(fmt, lu.get(i, k))
                };
                let u = SoftFloat::from_bits(fmt, lu.get(k, j));
                let (r, _) = acc.mac(&l, &u, mode);
                acc = r;
            }
            c.set(i, j, acc.bits());
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FpFormat = FpFormat::SINGLE;
    const RM: RoundMode = RoundMode::NearestEven;

    fn dd_matrix(n: usize) -> Matrix {
        Matrix::from_fn(F, n, n, |i, j| {
            if i == j {
                12.0 + i as f64
            } else {
                ((i * n + j) as f64 * 0.23).sin()
            }
        })
    }

    #[test]
    fn matches_reference_bit_exact() {
        for (n, p, ds, ms) in [(4usize, 1u32, 5u32, 3u32), (8, 3, 12, 6), (10, 4, 20, 8)] {
            let a = dd_matrix(n);
            let eng = LuEngine::new(F, RM, ds, ms, p);
            let got = eng.factor(&a);
            assert_eq!(got.lu, eng.reference(&a), "n={n} p={p}");
        }
    }

    #[test]
    fn reconstructs_a() {
        let n = 12;
        let a = dd_matrix(n);
        let eng = LuEngine::new(F, RM, 16, 6, 4);
        let r = eng.factor(&a);
        let back = reconstruct(&r.lu, RM);
        assert!(
            back.max_abs_diff(&a) < 1e-4,
            "err = {}",
            back.max_abs_diff(&a)
        );
        assert_eq!(r.divs, (n * (n - 1) / 2) as u64);
        let expect_macs: u64 = (0..n).map(|k| ((n - k - 1) * (n - k - 1)) as u64).sum();
        assert_eq!(r.macs, expect_macs);
    }

    #[test]
    fn cycle_model_matches_simulation() {
        for (n, p, ds, ms) in [(4usize, 1u32, 4u32, 3u32), (8, 2, 10, 5), (9, 5, 7, 4)] {
            let a = dd_matrix(n);
            let eng = LuEngine::new(F, RM, ds, ms, p);
            let got = eng.factor(&a);
            assert_eq!(got.cycles, eng.cycle_model(n), "n={n} p={p}");
        }
    }

    #[test]
    fn more_pes_are_faster() {
        let n = 16;
        let a = dd_matrix(n);
        let slow = LuEngine::new(F, RM, 12, 6, 1).factor(&a).cycles;
        let fast = LuEngine::new(F, RM, 12, 6, 8).factor(&a).cycles;
        assert!(fast < slow / 2, "p=8 {fast} vs p=1 {slow}");
        // ... but the serial division chain bounds the speedup (Amdahl).
        let serial: u64 = (0..n).map(|k| (n - k - 1) as u64 + 12).sum();
        assert!(fast > serial, "cannot beat the divider tail");
    }

    #[test]
    fn pipeline_depths_do_not_change_values() {
        let a = dd_matrix(9);
        let x = LuEngine::new(F, RM, 5, 3, 2).factor(&a).lu;
        let y = LuEngine::new(F, RM, 30, 11, 2).factor(&a).lu;
        assert_eq!(x, y);
    }

    #[test]
    fn batched_matches_per_cycle_bit_exact() {
        for (n, p, ds, ms) in [
            (1usize, 1u32, 4u32, 3u32),
            (4, 1, 5, 3),
            (8, 3, 12, 6),
            (10, 4, 20, 8),
        ] {
            let a = dd_matrix(n);
            let eng = LuEngine::new(F, RM, ds, ms, p);
            let per_cycle = eng.factor(&a);
            let batched = eng.factor_batched(&a);
            assert_eq!(batched.lu, per_cycle.lu, "n={n} p={p}");
            assert_eq!(batched.cycles, per_cycle.cycles, "cycles n={n} p={p}");
            assert_eq!(batched.cycles, eng.cycle_model(n), "model n={n} p={p}");
            assert_eq!(batched.divs, per_cycle.divs, "divs n={n} p={p}");
            assert_eq!(batched.macs, per_cycle.macs, "macs n={n} p={p}");
            assert_eq!(batched.flags, per_cycle.flags, "flags n={n} p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "zero pivot")]
    fn zero_pivot_panics() {
        let mut a = dd_matrix(4);
        a.set(0, 0, 0);
        LuEngine::new(F, RM, 4, 3, 1).factor(&a);
    }
}
