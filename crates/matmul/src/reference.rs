//! Sequential reference implementations.
//!
//! [`reference_matmul`] accumulates in exactly the array's order
//! (ascending `k`, one rounded multiply + one rounded add per step), so
//! the cycle-accurate array must match it **bit for bit**. The `f64`
//! variant measures the numerical error of reduced-precision formats.

use crate::matrix::Matrix;
use fpfpga_softfp::{Flags, RoundMode, SoftFloat};

/// `C = A·B` with the array's accumulation order and rounding.
pub fn reference_matmul(a: &Matrix, b: &Matrix, mode: RoundMode) -> Matrix {
    reference_matmul_flags(a, b, mode).0
}

/// [`reference_matmul`] that also returns the OR of every MAC's
/// exception flags — the oracle the array's exception side-band (and
/// the multi-array executor's) is property-tested against.
pub fn reference_matmul_flags(a: &Matrix, b: &Matrix, mode: RoundMode) -> (Matrix, Flags) {
    let fmt = a.format();
    let (n, m, p) = (a.rows(), a.cols(), b.cols());
    assert_eq!(b.rows(), m, "inner dimensions must agree");
    let mut c = Matrix::zero(fmt, n, p);
    let mut flags = Flags::NONE;
    for i in 0..n {
        for j in 0..p {
            let mut acc = SoftFloat::zero(fmt);
            for k in 0..m {
                let x = SoftFloat::from_bits(fmt, a.get(i, k));
                let y = SoftFloat::from_bits(fmt, b.get(k, j));
                let (r, f) = acc.mac(&x, &y, mode);
                flags |= f;
                acc = r;
            }
            c.set(i, j, acc.bits());
        }
    }
    (c, flags)
}

/// `C = A·B` in native `f64` (error baseline).
pub fn f64_matmul(a: &Matrix, b: &Matrix) -> Vec<f64> {
    let (n, m, p) = (a.rows(), a.cols(), b.cols());
    assert_eq!(b.rows(), m, "inner dimensions must agree");
    let mut c = vec![0.0; n * p];
    for i in 0..n {
        for j in 0..p {
            let mut acc = 0.0f64;
            for k in 0..m {
                acc += a.get_f64(i, k) * b.get_f64(k, j);
            }
            c[i * p + j] = acc;
        }
    }
    c
}

/// Worst absolute error of `c` against the `f64` baseline of `a·b`.
pub fn error_vs_f64(c: &Matrix, a: &Matrix, b: &Matrix) -> f64 {
    let want = f64_matmul(a, b);
    let mut worst = 0.0f64;
    for i in 0..c.rows() {
        for j in 0..c.cols() {
            worst = worst.max((c.get_f64(i, j) - want[i * c.cols() + j]).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpfpga_softfp::FpFormat;

    #[test]
    fn identity_is_exact() {
        let a = Matrix::from_fn(FpFormat::SINGLE, 3, 3, |i, j| (i + 2 * j) as f64);
        let id = Matrix::identity(FpFormat::SINGLE, 3);
        let c = reference_matmul(&a, &id, RoundMode::NearestEven);
        assert_eq!(c, a);
    }

    #[test]
    fn small_known_product() {
        let a = Matrix::from_f64(FpFormat::SINGLE, 2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_f64(FpFormat::SINGLE, 2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let c = reference_matmul(&a, &b, RoundMode::NearestEven);
        assert_eq!(c.get_f64(0, 0), 19.0);
        assert_eq!(c.get_f64(0, 1), 22.0);
        assert_eq!(c.get_f64(1, 0), 43.0);
        assert_eq!(c.get_f64(1, 1), 50.0);
    }

    #[test]
    fn double_precision_is_near_f64() {
        let n = 6;
        let a = Matrix::from_fn(FpFormat::DOUBLE, n, n, |i, j| ((i * n + j) as f64).cos());
        let b = Matrix::from_fn(FpFormat::DOUBLE, n, n, |i, j| ((i + j) as f64).sin());
        let c = reference_matmul(&a, &b, RoundMode::NearestEven);
        assert!(error_vs_f64(&c, &a, &b) < 1e-14);
    }

    #[test]
    fn single_precision_error_is_single_sized() {
        let n = 8;
        let a = Matrix::from_fn(FpFormat::SINGLE, n, n, |i, j| ((i * n + j) as f64).cos());
        let b = Matrix::from_fn(FpFormat::SINGLE, n, n, |i, j| ((i + j) as f64).sin());
        let c = reference_matmul(&a, &b, RoundMode::NearestEven);
        let e = error_vs_f64(&c, &a, &b);
        assert!(e > 0.0, "single precision cannot be exact here");
        assert!(e < 1e-5, "error {e} too large for single precision");
    }

    #[test]
    fn rectangular_shapes() {
        let a = Matrix::from_f64(FpFormat::SINGLE, 2, 3, &[1., 0., 2., 0., 1., 3.]);
        let b = Matrix::from_f64(FpFormat::SINGLE, 3, 1, &[4., 5., 6.]);
        let c = reference_matmul(&a, &b, RoundMode::NearestEven);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 1);
        assert_eq!(c.get_f64(0, 0), 16.0);
        assert_eq!(c.get_f64(1, 0), 23.0);
    }
}
