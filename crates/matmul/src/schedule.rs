//! Scheduling: token streams and cycle accounting.
//!
//! The inner loop visits the n rows of a rank-1 update; a given `c[i][j]`
//! is touched once per inner period. To keep the accumulation
//! read-after-write hazard-free, the period must be at least the
//! combined multiplier + adder latency PL, so for `n < PL` the period is
//! padded with zero-operations to PL — the wasteful cycles the energy
//! study of Section 5 quantifies.

/// One control token travelling down the array with its `A` element.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// The `A` element (raw bits); zero for padding tokens.
    pub a: u64,
    /// Row index `i` (valid when `pad` is false).
    pub i: u32,
    /// Rank-1 step `k`.
    pub k: u32,
    /// True for a zero-padding slot.
    pub pad: bool,
    /// `B`-buffer bank select: the PEs double-buffer their `B` columns
    /// so the next block's `B` can be loaded while tokens of the
    /// previous block are still in flight (the double buffering of \[5\]).
    pub bank: bool,
}

/// The schedule of one n×n multiplication on an n-PE array with
/// combined MAC latency `pl`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Problem (and array) size n.
    pub n: u32,
    /// Combined multiplier + adder pipeline latency.
    pub pl: u32,
}

impl Schedule {
    /// Create a schedule. Panics on zero parameters — use
    /// [`Schedule::try_new`] where the inputs are not already validated
    /// (the serving layer goes through a checked
    /// [`BlockMatMul`](crate::block::BlockMatMul) plan).
    pub fn new(n: u32, pl: u32) -> Schedule {
        Schedule::try_new(n, pl).expect("invalid schedule parameters")
    }

    /// Checked constructor: zero `n` or `pl` is a typed
    /// [`PlanError`](crate::block::PlanError), not a panic.
    pub fn try_new(n: u32, pl: u32) -> Result<Schedule, crate::block::PlanError> {
        if n == 0 {
            return Err(crate::block::PlanError::ZeroDim("n"));
        }
        if pl == 0 {
            return Err(crate::block::PlanError::ZeroLatency);
        }
        Ok(Schedule { n, pl })
    }

    /// The padded inner period: `max(n, PL)` — "for smaller problem
    /// sizes, zero padding has to be used, to satisfy the latency
    /// constraint".
    pub fn padded_period(&self) -> u32 {
        self.n.max(self.pl)
    }

    /// Tokens issued per rank-1 step (including padding slots).
    pub fn tokens_per_step(&self) -> u64 {
        self.padded_period() as u64
    }

    /// Total issue cycles for the full multiplication (n steps).
    pub fn issue_cycles(&self) -> u64 {
        self.n as u64 * self.tokens_per_step()
    }

    /// Zero-padding cycles among them (pure waste).
    pub fn pad_cycles(&self) -> u64 {
        (self.padded_period() - self.n) as u64 * self.n as u64
    }

    /// Useful MAC issue cycles.
    pub fn useful_cycles(&self) -> u64 {
        self.issue_cycles() - self.pad_cycles()
    }

    /// Total latency in cycles until the last PE has written its last
    /// result: issue + array skew (p−1 = n−1 hops) + pipeline drain.
    pub fn total_cycles(&self) -> u64 {
        self.issue_cycles() + (self.n as u64 - 1) + self.pl as u64
    }

    /// Fraction of issue slots wasted on padding.
    pub fn waste_fraction(&self) -> f64 {
        self.pad_cycles() as f64 / self.issue_cycles() as f64
    }

    /// The token stream, in issue order.
    pub fn tokens(&self) -> impl Iterator<Item = Token> + '_ {
        let n = self.n;
        let period = self.padded_period();
        (0..n).flat_map(move |k| {
            (0..period).map(move |slot| Token {
                a: 0, // filled by the driver from A[i][k]
                i: slot.min(n - 1),
                k,
                pad: slot >= n,
                bank: false, // the driver selects the active bank
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_padding_when_n_exceeds_pl() {
        let s = Schedule::new(32, 19);
        assert_eq!(s.padded_period(), 32);
        assert_eq!(s.pad_cycles(), 0);
        assert_eq!(s.issue_cycles(), 32 * 32);
        assert_eq!(s.waste_fraction(), 0.0);
    }

    #[test]
    fn padding_when_n_below_pl() {
        let s = Schedule::new(10, 25);
        assert_eq!(s.padded_period(), 25);
        assert_eq!(s.pad_cycles(), 15 * 10);
        assert_eq!(s.issue_cycles(), 10 * 25);
        assert!((s.waste_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn total_includes_skew_and_drain() {
        let s = Schedule::new(8, 10);
        assert_eq!(s.total_cycles(), 8 * 10 + 7 + 10);
    }

    #[test]
    fn token_stream_structure() {
        let s = Schedule::new(3, 5);
        let tokens: Vec<Token> = s.tokens().collect();
        assert_eq!(tokens.len(), 15); // 3 steps × padded period 5
                                      // first period: rows 0,1,2 then two pads
        assert!(!tokens[0].pad && tokens[0].i == 0 && tokens[0].k == 0);
        assert!(!tokens[2].pad && tokens[2].i == 2);
        assert!(tokens[3].pad && tokens[4].pad);
        // second period starts at k=1
        assert_eq!(tokens[5].k, 1);
        assert!(!tokens[5].pad);
    }

    #[test]
    fn zero_parameters_are_typed_errors() {
        use crate::block::PlanError;
        assert_eq!(Schedule::try_new(0, 9), Err(PlanError::ZeroDim("n")));
        assert_eq!(Schedule::try_new(4, 0), Err(PlanError::ZeroLatency));
        assert!(Schedule::try_new(1, 1).is_ok());
    }

    #[test]
    fn useful_cycles_count_real_macs() {
        let s = Schedule::new(4, 9);
        assert_eq!(s.useful_cycles(), 16); // n² real MAC issues
    }
}
