//! Multi-array blocked matmul: tile an arbitrary `M×K · K×N` product
//! across several simulated linear arrays.
//!
//! Shen et al. (*"Towards a Multi-array Architecture for Accelerating
//! Large-scale Matrix Multiplication on FPGAs"*, PAPERS.md) partition
//! large products across multiple linear arrays with hierarchical
//! blocking; Merchant et al. show the same blocking discipline is what
//! makes the FP units pay off at scale. This module applies that to the
//! paper's Jang/Choi/Prasanna array: a [`BlockMatMul`] plan is split by
//! **output tile** — each b×b tile of `C` is produced start-to-finish by
//! exactly one array, accumulating its ⌈K/b⌉ block products in ascending
//! `k` order on a private array of `p = cols` PEs.
//!
//! Because an output tile never migrates between arrays and its
//! accumulation order is a pure function of the plan, the result —
//! values *and* exception flags — is bit-identical to the serial
//! [`LinearArray`] reference for every array count and thread count.
//! Tiles are assigned to arrays round-robin in row-major tile order
//! (again a pure function of the plan), and the per-array jobs run on
//! [`fpfpga_fpu::parallel_map_slice`], which preserves job order at any
//! thread count.
//!
//! Operands arrive through the [`TileSource`] trait, one zero-padded
//! b×b tile at a time: each array job owns exactly two resident tile
//! buffers (one `A`, one `B`) which it reuses across the whole job, so
//! an out-of-core problem streams through at ≤ 2 tiles resident per
//! array — never materializing a full operand. [`MatrixTiles`] adapts
//! an in-memory [`Matrix`]; [`FnTiles`] generates elements on the fly.

use crate::array::{ArrayStats, LinearArray};
use crate::block::{BlockMatMul, PlanError};
use crate::matrix::Matrix;
use crate::pe::UnitBackend;
use fpfpga_softfp::{Flags, FpFormat, RoundMode};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A source of zero-padded b×b operand tiles. Implementations must be
/// `Sync`: several array jobs read tiles concurrently.
pub trait TileSource: Sync {
    /// Real row count of the full operand.
    fn rows(&self) -> usize;
    /// Real column count of the full operand.
    fn cols(&self) -> usize;
    /// Element format.
    fn format(&self) -> FpFormat;
    /// Fill `dest` (a `b×b` matrix) with the tile whose top-left
    /// element is `(bi·b, bj·b)`. Slots beyond the real extent must be
    /// written as zero bits — the explicit zero padding of Section 5.
    fn read_tile(&self, bi: usize, bj: usize, b: usize, dest: &mut Matrix);
}

/// [`TileSource`] over an in-memory [`Matrix`].
pub struct MatrixTiles<'a>(pub &'a Matrix);

impl TileSource for MatrixTiles<'_> {
    fn rows(&self) -> usize {
        self.0.rows()
    }
    fn cols(&self) -> usize {
        self.0.cols()
    }
    fn format(&self) -> FpFormat {
        self.0.format()
    }
    fn read_tile(&self, bi: usize, bj: usize, b: usize, dest: &mut Matrix) {
        BlockMatMul::copy_tile(self.0, bi, bj, b, dest);
    }
}

/// [`TileSource`] that generates elements on demand from a closure —
/// the out-of-core path: the "operand" is never materialized, only the
/// requested b×b window is.
pub struct FnTiles<F> {
    /// Real row count of the virtual operand.
    pub rows: usize,
    /// Real column count of the virtual operand.
    pub cols: usize,
    /// Element format.
    pub format: FpFormat,
    /// `(i, j) -> raw bits` element generator.
    pub gen: F,
}

impl<F: Fn(usize, usize) -> u64 + Sync> TileSource for FnTiles<F> {
    fn rows(&self) -> usize {
        self.rows
    }
    fn cols(&self) -> usize {
        self.cols
    }
    fn format(&self) -> FpFormat {
        self.format
    }
    fn read_tile(&self, bi: usize, bj: usize, b: usize, dest: &mut Matrix) {
        for i in 0..b {
            let si = bi * b + i;
            for j in 0..b {
                let sj = bj * b + j;
                let bits = if si < self.rows && sj < self.cols {
                    (self.gen)(si, sj)
                } else {
                    0
                };
                dest.set(i, j, bits);
            }
        }
    }
}

/// Aggregate statistics of a multi-array run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiStats {
    /// Per-array run statistics, indexed by array — a pure function of
    /// the plan and array count (thread-count invariant).
    pub per_array: Vec<ArrayStats>,
    /// Sum across arrays; `total.cycles` equals the plan's
    /// [`BlockMatMul::total_cycles`] (total array-cycles of work, the
    /// quantity the energy model charges).
    pub total: ArrayStats,
    /// OR of every array's exception flags.
    pub flags: Flags,
    /// Operand tiles fetched from the [`TileSource`]s (2 per block
    /// product) — a pure function of the plan.
    pub tile_fetches: u64,
    /// High-water mark of concurrently resident operand tile buffers
    /// across all arrays. Each array job owns exactly 2, so this is
    /// ≤ `2 · arrays` at any thread count.
    pub peak_resident_tiles: usize,
}

impl MultiStats {
    /// Simulated wall-clock of the run: the busiest array's cycle
    /// count (arrays run concurrently; `total.cycles` is their sum).
    pub fn makespan_cycles(&self) -> u64 {
        self.per_array.iter().map(|s| s.cycles).max().unwrap_or(0)
    }
}

/// A blocked matmul plan fanned out over `arrays` linear arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MultiMatMul {
    /// The underlying (possibly ragged) tiling.
    pub plan: BlockMatMul,
    /// Number of simulated arrays the output tiles are dealt across.
    pub arrays: u32,
}

impl MultiMatMul {
    /// Plan an `M×K · K×N` product with block size `b` across `arrays`
    /// linear arrays. Accepts any positive shape; zero parameters are
    /// typed [`PlanError`]s.
    pub fn new(m: u32, k: u32, n: u32, b: u32, pl: u32, arrays: u32) -> Result<Self, PlanError> {
        if arrays == 0 {
            return Err(PlanError::ZeroArrays);
        }
        Ok(MultiMatMul {
            plan: BlockMatMul::new(m, k, n, b, pl)?,
            arrays,
        })
    }

    /// The output tiles (row-major `(ti, tj)` order) owned by array
    /// `r` — round-robin, a pure function of the plan and array count.
    pub fn tiles_of(&self, r: u32) -> Vec<(usize, usize)> {
        let tn = self.plan.tiles_n() as usize;
        (0..self.plan.output_tiles() as usize)
            .filter(|t| (t % self.arrays as usize) as u32 == r)
            .map(|t| (t / tn, t % tn))
            .collect()
    }

    /// Run against in-memory operands. Equivalent to
    /// [`MultiMatMul::run_streamed`] over [`MatrixTiles`].
    #[allow(clippy::too_many_arguments)] // mirrors LinearArray::multiply's parameter list
    pub fn run(
        &self,
        mode: RoundMode,
        mult_stages: u32,
        add_stages: u32,
        a: &Matrix,
        b: &Matrix,
        backend: UnitBackend,
        threads: usize,
    ) -> Result<(Matrix, MultiStats), PlanError> {
        self.plan.check_operands(a, b)?;
        self.run_streamed(
            mode,
            mult_stages,
            add_stages,
            &MatrixTiles(a),
            &MatrixTiles(b),
            backend,
            threads,
        )
    }

    /// Run against streamed operands: each array job holds exactly two
    /// resident tile buffers (one `A`, one `B`), reused across every
    /// block product it executes, so peak resident tiles ≤ 2·arrays no
    /// matter how large the problem is.
    ///
    /// Values, flags and per-array statistics are bit-identical for
    /// every thread count (including 0 = one worker per CPU) and equal
    /// to the serial [`BlockMatMul::run`] reference.
    #[allow(clippy::too_many_arguments)] // mirrors LinearArray::multiply's parameter list
    pub fn run_streamed<A: TileSource + ?Sized, B: TileSource + ?Sized>(
        &self,
        mode: RoundMode,
        mult_stages: u32,
        add_stages: u32,
        a: &A,
        b: &B,
        backend: UnitBackend,
        threads: usize,
    ) -> Result<(Matrix, MultiStats), PlanError> {
        assert_eq!(
            mult_stages + add_stages,
            self.plan.pl,
            "unit latencies must sum to PL"
        );
        let plan = self.plan;
        self.check_sources(a, b)?;
        let fmt = a.format();
        let bs = plan.b as usize;
        let tk = plan.tiles_k() as usize;

        let jobs: Vec<Vec<(usize, usize)>> = (0..self.arrays).map(|r| self.tiles_of(r)).collect();
        let resident = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let fetches = AtomicU64::new(0);

        let results = fpfpga_fpu::parallel_map_slice(threads, &jobs, |_, tiles| {
            let mut stats = ArrayStats::default();
            let mut flags = Flags::NONE;
            let mut out: Vec<(usize, usize, Matrix)> = Vec::with_capacity(tiles.len());
            if tiles.is_empty() {
                return (out, stats, flags);
            }
            // This job's only two resident operand tiles, reused for
            // every block product it executes.
            let now = resident.fetch_add(2, Ordering::SeqCst) + 2;
            peak.fetch_max(now, Ordering::SeqCst);
            let mut a_buf = Matrix::zero(fmt, bs, bs);
            let mut b_buf = Matrix::zero(fmt, bs, bs);
            for &(ti, tj) in tiles {
                let rows = plan.tile_rows(ti);
                let cols = plan.tile_cols(tj);
                let mut arr =
                    LinearArray::new(fmt, mode, mult_stages, add_stages, cols, bs, backend);
                for bk in 0..tk {
                    let steps = plan.tile_steps(bk);
                    a.read_tile(ti, bk, bs, &mut a_buf);
                    b.read_tile(bk, tj, bs, &mut b_buf);
                    fetches.fetch_add(2, Ordering::Relaxed);
                    let bank = bk % 2 == 1;
                    arr.load_b_tile(bank, &b_buf, cols);
                    arr.stream_a_tile_batched(&a_buf, rows, steps, bank);
                }
                arr.drain_batched();
                let c_blk = arr.read_c();
                let mut tile = Matrix::zero(fmt, rows, cols);
                for i in 0..rows {
                    for j in 0..cols {
                        tile.set(i, j, c_blk.get(i, j));
                    }
                }
                stats.merge(arr.stats());
                flags |= arr.flags();
                out.push((ti, tj, tile));
            }
            resident.fetch_sub(2, Ordering::SeqCst);
            (out, stats, flags)
        });

        let mut c = Matrix::zero(fmt, plan.m as usize, plan.n as usize);
        let mut multi = MultiStats {
            per_array: Vec::with_capacity(results.len()),
            total: ArrayStats::default(),
            flags: Flags::NONE,
            tile_fetches: fetches.load(Ordering::Relaxed),
            peak_resident_tiles: peak.load(Ordering::SeqCst),
        };
        for (tiles, stats, flags) in results {
            multi.per_array.push(stats);
            multi.total.merge(stats);
            multi.flags |= flags;
            for (ti, tj, tile) in tiles {
                for i in 0..tile.rows() {
                    for j in 0..tile.cols() {
                        c.set(ti * bs + i, tj * bs + j, tile.get(i, j));
                    }
                }
            }
        }
        Ok((c, multi))
    }

    fn check_sources<A: TileSource + ?Sized, B: TileSource + ?Sized>(
        &self,
        a: &A,
        b: &B,
    ) -> Result<(), PlanError> {
        let plan = &self.plan;
        if a.rows() != plan.m as usize || a.cols() != plan.k as usize {
            return Err(PlanError::Shape(format!(
                "A source is {}×{}, plan expects {}×{}",
                a.rows(),
                a.cols(),
                plan.m,
                plan.k
            )));
        }
        if b.rows() != plan.k as usize || b.cols() != plan.n as usize {
            return Err(PlanError::Shape(format!(
                "B source is {}×{}, plan expects {}×{}",
                b.rows(),
                b.cols(),
                plan.k,
                plan.n
            )));
        }
        if a.format() != b.format() {
            return Err(PlanError::Shape(format!(
                "operand formats differ: {:?} vs {:?}",
                a.format(),
                b.format()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_matmul_flags;

    const F: FpFormat = FpFormat::SINGLE;
    const RM: RoundMode = RoundMode::NearestEven;

    fn sample(rows: usize, cols: usize, seed: f64) -> Matrix {
        Matrix::from_fn(F, rows, cols, |i, j| {
            ((i * cols + j) as f64 * 0.29 + seed).sin() * 3.0
        })
    }

    #[test]
    fn tiles_partition_round_robin() {
        let mm = MultiMatMul::new(10, 4, 7, 3, 7, 3).unwrap();
        // 4×3 output tiles = 12 tiles over 3 arrays, 4 each.
        let mut seen = vec![];
        for r in 0..3 {
            let t = mm.tiles_of(r);
            assert_eq!(t.len(), 4);
            seen.extend(t);
        }
        seen.sort_unstable();
        let all: Vec<(usize, usize)> = (0..4).flat_map(|i| (0..3).map(move |j| (i, j))).collect();
        assert_eq!(seen, all);
    }

    #[test]
    fn multi_equals_serial_block_run() {
        let (m, k, n, bs) = (11u32, 6u32, 9u32, 4u32);
        let a = sample(m as usize, k as usize, 0.3);
        let b = sample(k as usize, n as usize, 1.1);
        let plan = BlockMatMul::new(m, k, n, bs, 7).unwrap();
        let (c_ref, s_ref, f_ref) = plan.run(F, RM, 3, 4, &a, &b, UnitBackend::Fast).unwrap();
        for arrays in [1u32, 2, 3, 8] {
            for threads in [1usize, 2, 4] {
                let mm = MultiMatMul::new(m, k, n, bs, 7, arrays).unwrap();
                let (c, stats) = mm
                    .run(RM, 3, 4, &a, &b, UnitBackend::Fast, threads)
                    .unwrap();
                assert_eq!(c, c_ref, "arrays={arrays} threads={threads}");
                assert_eq!(stats.flags, f_ref, "arrays={arrays} threads={threads}");
                assert_eq!(stats.total, s_ref, "arrays={arrays} threads={threads}");
            }
        }
    }

    #[test]
    fn flags_match_reference_on_specials() {
        // Overflow + invalid (inf · finite then inf − inf in the
        // accumulation) must come out identical to the serial oracle.
        let m = Matrix::from_f64(
            F,
            3,
            3,
            &[
                f32::MAX as f64,
                f64::INFINITY,
                1.0,
                -2.0,
                f32::MAX as f64,
                0.5,
                f64::NEG_INFINITY,
                3.0,
                4.0,
            ],
        );
        let (want, want_flags) = reference_matmul_flags(&m, &m, RM);
        let mm = MultiMatMul::new(3, 3, 3, 2, 7, 4).unwrap();
        let (c, stats) = mm.run(RM, 3, 4, &m, &m, UnitBackend::Fast, 2).unwrap();
        assert_eq!(c, want);
        assert_eq!(stats.flags, want_flags);
        assert!(want_flags.invalid || want_flags.overflow);
    }

    #[test]
    fn more_arrays_than_tiles() {
        let a = sample(3, 3, 0.1);
        let b = sample(3, 3, 0.2);
        let mm = MultiMatMul::new(3, 3, 3, 3, 7, 8).unwrap();
        let (c, stats) = mm.run(RM, 3, 4, &a, &b, UnitBackend::Fast, 2).unwrap();
        let (want, _) = reference_matmul_flags(&a, &b, RM);
        assert_eq!(c, want);
        // 1 output tile → 7 arrays idle with zero stats.
        assert_eq!(stats.per_array.len(), 8);
        assert_eq!(stats.per_array.iter().filter(|s| s.cycles > 0).count(), 1);
        assert!(stats.peak_resident_tiles <= 2);
    }

    #[test]
    fn zero_arrays_is_typed_error() {
        assert_eq!(
            MultiMatMul::new(4, 4, 4, 2, 7, 0),
            Err(PlanError::ZeroArrays)
        );
    }

    #[test]
    fn streamed_never_materializes_operands() {
        // 40×40 virtual operands, b=8, 4 arrays: resident tiles stay
        // ≤ 2·arrays while the full operands are never built by the
        // executor.
        let (m, k, n, bs, arrays) = (40usize, 40usize, 40usize, 8u32, 4u32);
        let gen_a = |i: usize, j: usize| (((i * 40 + j) as f32 * 0.01).sin().to_bits()) as u64;
        let gen_b = |i: usize, j: usize| (((i + 2 * j) as f32 * 0.02).cos().to_bits()) as u64;
        let a_src = FnTiles {
            rows: m,
            cols: k,
            format: F,
            gen: gen_a,
        };
        let b_src = FnTiles {
            rows: k,
            cols: n,
            format: F,
            gen: gen_b,
        };
        let mm = MultiMatMul::new(m as u32, k as u32, n as u32, bs, 9, arrays).unwrap();
        let (c, stats) = mm
            .run_streamed(RM, 4, 5, &a_src, &b_src, UnitBackend::Fast, 4)
            .unwrap();
        assert!(stats.peak_resident_tiles <= 2 * arrays as usize);
        assert_eq!(stats.tile_fetches, 2 * mm.plan.block_products());
        // Same result as materializing the operands first.
        let bits = |g: &dyn Fn(usize, usize) -> u64, rows: usize, cols: usize| {
            Matrix::from_bits(
                F,
                rows,
                cols,
                (0..rows * cols).map(|t| g(t / cols, t % cols)).collect(),
            )
        };
        let a_full = bits(&gen_a, m, k);
        let b_full = bits(&gen_b, k, n);
        let (want, _) = mm
            .run(RM, 4, 5, &a_full, &b_full, UnitBackend::Fast, 1)
            .unwrap();
        assert_eq!(c, want);
    }

    #[test]
    fn shape_mismatch_is_typed_error() {
        let mm = MultiMatMul::new(4, 4, 4, 2, 7, 2).unwrap();
        let a = sample(4, 5, 0.0);
        let b = sample(4, 4, 0.0);
        match mm.run(RM, 3, 4, &a, &b, UnitBackend::Fast, 1) {
            Err(PlanError::Shape(_)) => {}
            other => panic!("expected shape error, got {other:?}"),
        }
    }
}
