//! # fpfpga-matmul — floating-point matrix multiplication on FPGA
//!
//! The kernel of Section 4.2/5 of the paper: "a linear array of identical
//! PEs (Processing Elements), each of which contains a floating-point
//! adder and a floating-point multiplier", following the architecture and
//! algorithm of Jang, Choi and Prasanna, *"Area and Time Efficient
//! Implementation of Matrix Multiplication on FPGAs"* (FPT 2002).
//!
//! ## The algorithm
//!
//! `C = A·B` (n×n) is computed as n rank-1 updates. PE *j* owns column
//! *j* of `C` (in block RAM) and column *j* of `B`; the elements of `A`
//! stream through the array in a shift register, each accompanied by its
//! control token (row `i`, step `k`) — "the control signals also have to
//! be shifted using shift registers so that the correct schedule of
//! operations is maintained". At token (i, k), PE *j* computes
//! `c[i][j] += a[i][k] · b[k][j]` through its multiply-then-add pipeline.
//!
//! A given `c[i][j]` is updated once every inner-loop period; with
//! deeply pipelined units the read-after-write hazard appears exactly
//! when that period is shorter than the combined adder + multiplier
//! latency — "there will be read-after-write hazards only if the matrix
//! size is less than the number of pipeline stages". The scheduler pads
//! the inner loop with zero operations up to the combined latency
//! ("zero padding has to be used, to satisfy the above latency
//! constraint. This zero padding constitutes wasteful energy
//! dissipation"), and the energy model charges those cycles.
//!
//! ## Layers
//!
//! * [`matrix`] — a dense matrix of raw encodings in one format;
//! * [`schedule`] — token streams, padded periods, and cycle counting;
//! * [`pe`] / [`array`](mod@crate::array) — the cycle-accurate PE and linear array;
//! * [`block`] — block matrix multiplication for problem sizes larger
//!   than the array (block size `b` is the design parameter of Fig. 6),
//!   generalized to rectangular problems with zero-padded ragged edges;
//! * [`multi`] — the blocked plan fanned out across several linear
//!   arrays with streamed ([`multi::TileSource`]) operands;
//! * [`units`] — selection of the FP unit pair (min/moderate/max
//!   pipelining — the paper's PL = 10/19/25 sets);
//! * [`perf`] — whole-device performance: PE resources, device fill,
//!   GFLOPS (the paper's 4.2 numbers);
//! * [`energy`] — per-component energy of a run (Figures 4-6).

pub mod accuracy;
pub mod array;
pub mod block;
pub mod conv2d;
pub mod dot;
pub mod energy;
pub mod explorer;
pub mod fft;
pub mod fir;
pub mod lu;
pub mod matrix;
pub mod mixed;
pub mod multi;
pub mod mvm;
pub mod pe;
pub mod perf;
pub mod reference;
pub mod schedule;
pub mod units;
pub mod vector;

pub use accuracy::{ErrorMeter, ErrorStats};
pub use array::LinearArray;
pub use block::{BlockMatMul, PlanError};
pub use conv2d::Conv2dEngine;
pub use dot::DotProductUnit;
pub use energy::{ArchitectureEnergy, EnergyReport};
pub use explorer::{Candidate, Constraints, Explorer};
pub use fft::{ButterflyUnit, Cplx, FftEngine};
pub use fir::FirFilter;
pub use lu::LuEngine;
pub use matrix::Matrix;
pub use mixed::{mixed_dot, mixed_matmul, mixed_matmul_parallel, mixed_mvm, ErrorBudget, MixedDot};
pub use multi::{FnTiles, MatrixTiles, MultiMatMul, MultiStats, TileSource};
pub use mvm::MvmEngine;
pub use perf::{DeviceFill, PeResources};
pub use schedule::Schedule;
pub use units::{PipeliningLevel, UnitSet};
pub use vector::{AxpyUnit, MapUnit};
