//! Floating-point unit selection for the matmul PEs.
//!
//! Section 5 studies three unit sets — minimum, moderate and maximum
//! pipelining, with combined multiplier + adder latencies PL = 10, 19
//! and 25 (the `pl=10/19/25` curves of Figures 5 and 6). A [`UnitSet`]
//! couples the two implementation reports (area, clock) with the chosen
//! stage counts; the architecture's clock is the slower of the two
//! units (and of whatever the surrounding logic sustains — the paper's
//! single-precision array runs at 250 MHz).

use fpfpga_fabric::report::ImplementationReport;
use fpfpga_fabric::synthesis::SynthesisOptions;
use fpfpga_fabric::tech::Tech;
use fpfpga_fpu::generator::UnitOp;
use fpfpga_fpu::{AdderDesign, MultiplierDesign, SweepCache};
use fpfpga_softfp::FpFormat;

/// The paper's three pipelining levels for the Section 5 study.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PipeliningLevel {
    /// Minimum pipelining: PL = 10 (adder 5 + multiplier 5).
    Minimum,
    /// Moderate pipelining: PL = 19 (adder 10 + multiplier 9).
    Moderate,
    /// Maximum pipelining: PL = 25 (adder 14 + multiplier 11).
    Maximum,
}

impl PipeliningLevel {
    /// All three, in plotting order.
    pub const ALL: [PipeliningLevel; 3] = [
        PipeliningLevel::Minimum,
        PipeliningLevel::Moderate,
        PipeliningLevel::Maximum,
    ];

    /// (adder stages, multiplier stages).
    pub fn stage_split(&self) -> (u32, u32) {
        match self {
            PipeliningLevel::Minimum => (5, 5),
            PipeliningLevel::Moderate => (10, 9),
            PipeliningLevel::Maximum => (14, 11),
        }
    }

    /// Combined latency PL (the paper's figure labels).
    pub fn pl(&self) -> u32 {
        let (a, m) = self.stage_split();
        a + m
    }

    /// Label used in the figures.
    pub fn label(&self) -> String {
        format!("pl={}", self.pl())
    }
}

/// One adder + one multiplier implementation, as instantiated per PE.
#[derive(Clone, Debug)]
pub struct UnitSet {
    /// Operand format.
    pub format: FpFormat,
    /// The adder implementation.
    pub adder: ImplementationReport,
    /// The multiplier implementation.
    pub multiplier: ImplementationReport,
}

impl UnitSet {
    /// Build a unit set with explicit stage counts, evaluating both
    /// netlists through the fabric model.
    pub fn with_stages(
        format: FpFormat,
        adder_stages: u32,
        mult_stages: u32,
        tech: &Tech,
        opts: SynthesisOptions,
    ) -> UnitSet {
        let adder_sweep = AdderDesign::new(format).sweep(tech, opts);
        let mult_sweep = MultiplierDesign::new(format).sweep(tech, opts);
        let pick = |sweep: &[ImplementationReport], k: u32| {
            sweep
                .iter()
                .find(|r| r.stages == k.min(sweep.len() as u32))
                .expect("stage count within sweep")
                .clone()
        };
        UnitSet {
            format,
            adder: pick(&adder_sweep, adder_stages),
            multiplier: pick(&mult_sweep, mult_stages),
        }
    }

    /// [`UnitSet::with_stages`] through a [`SweepCache`]: the two depth
    /// sweeps are memoized, so building all three pipelining levels (or
    /// re-running an exploration) synthesizes each core once.
    pub fn with_stages_cached(
        format: FpFormat,
        adder_stages: u32,
        mult_stages: u32,
        tech: &Tech,
        opts: SynthesisOptions,
        cache: &SweepCache,
    ) -> UnitSet {
        let adder_sweep = cache.sweep(UnitOp::Add, format, tech, opts);
        let mult_sweep = cache.sweep(UnitOp::Mul, format, tech, opts);
        let pick = |sweep: &[ImplementationReport], k: u32| {
            sweep
                .iter()
                .find(|r| r.stages == k.min(sweep.len() as u32))
                .expect("stage count within sweep")
                .clone()
        };
        UnitSet {
            format,
            adder: pick(&adder_sweep, adder_stages),
            multiplier: pick(&mult_sweep, mult_stages),
        }
    }

    /// Build one of the paper's three Section-5 unit sets.
    pub fn for_level(
        format: FpFormat,
        level: PipeliningLevel,
        tech: &Tech,
        opts: SynthesisOptions,
    ) -> UnitSet {
        let (a, m) = level.stage_split();
        UnitSet::with_stages(format, a, m, tech, opts)
    }

    /// [`UnitSet::for_level`] through a [`SweepCache`].
    pub fn for_level_cached(
        format: FpFormat,
        level: PipeliningLevel,
        tech: &Tech,
        opts: SynthesisOptions,
        cache: &SweepCache,
    ) -> UnitSet {
        let (a, m) = level.stage_split();
        UnitSet::with_stages_cached(format, a, m, tech, opts, cache)
    }

    /// Combined MAC latency (PL): multiplier stages + adder stages.
    pub fn pl(&self) -> u32 {
        self.adder.stages + self.multiplier.stages
    }

    /// The clock both units sustain together (MHz).
    pub fn clock_mhz(&self) -> f64 {
        self.adder.clock_mhz.min(self.multiplier.clock_mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Tech {
        Tech::virtex2pro()
    }

    #[test]
    fn levels_have_paper_pl_values() {
        assert_eq!(PipeliningLevel::Minimum.pl(), 10);
        assert_eq!(PipeliningLevel::Moderate.pl(), 19);
        assert_eq!(PipeliningLevel::Maximum.pl(), 25);
        assert_eq!(PipeliningLevel::Maximum.label(), "pl=25");
    }

    #[test]
    fn unit_set_latency_matches_level() {
        for level in PipeliningLevel::ALL {
            let set = UnitSet::for_level(FpFormat::SINGLE, level, &tech(), SynthesisOptions::SPEED);
            assert_eq!(set.pl(), level.pl());
        }
    }

    #[test]
    fn deeper_sets_are_faster_and_bigger() {
        let t = tech();
        let min = UnitSet::for_level(
            FpFormat::SINGLE,
            PipeliningLevel::Minimum,
            &t,
            SynthesisOptions::SPEED,
        );
        let max = UnitSet::for_level(
            FpFormat::SINGLE,
            PipeliningLevel::Maximum,
            &t,
            SynthesisOptions::SPEED,
        );
        assert!(max.clock_mhz() > min.clock_mhz());
        assert!(
            max.adder.ffs + max.multiplier.ffs > min.adder.ffs + min.multiplier.ffs,
            "deeper pipelining must cost registers"
        );
    }

    #[test]
    fn single_precision_moderate_set_sustains_high_clock() {
        // The architecture the paper quotes runs single precision at
        // high rates; the maximum-pipelined set must sustain > 200 MHz.
        let set = UnitSet::for_level(
            FpFormat::SINGLE,
            PipeliningLevel::Maximum,
            &tech(),
            SynthesisOptions::SPEED,
        );
        assert!(set.clock_mhz() > 200.0, "clock = {}", set.clock_mhz());
    }
}
