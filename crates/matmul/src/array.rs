//! The linear array: n processing elements connected by token shift
//! registers, plus the stream driver.

use crate::matrix::Matrix;
use crate::pe::{PeStats, ProcessingElement, UnitBackend};
use crate::schedule::{Schedule, Token};
use fpfpga_softfp::{Flags, FpFormat, RoundMode};

/// A linear array of PEs computing `C = A·B` (with accumulation into
/// whatever `C` the PEs currently hold, enabling block composition).
pub struct LinearArray {
    fmt: FpFormat,
    pes: Vec<ProcessingElement>,
    mult_stages: u32,
    add_stages: u32,
    /// Total clock cycles consumed so far (across all calls).
    pub cycles: u64,
}

/// Aggregate run statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArrayStats {
    /// Clock cycles of the run.
    pub cycles: u64,
    /// Sum of per-PE useful MAC issues.
    pub useful_macs: u64,
    /// Sum of per-PE padding MAC issues.
    pub pad_macs: u64,
    /// Sum of per-PE idle cycles.
    pub idle_cycles: u64,
    /// Sum of per-PE BRAM accesses.
    pub bram_accesses: u64,
}

impl ArrayStats {
    /// Accumulate another run's counters into this one (used when a
    /// blocked plan sums the stats of its per-tile arrays).
    pub fn merge(&mut self, other: ArrayStats) {
        self.cycles += other.cycles;
        self.useful_macs += other.useful_macs;
        self.pad_macs += other.pad_macs;
        self.idle_cycles += other.idle_cycles;
        self.bram_accesses += other.bram_accesses;
    }
}

impl LinearArray {
    /// An array of `p` PEs holding `n`-row columns.
    pub fn new(
        fmt: FpFormat,
        mode: RoundMode,
        mult_stages: u32,
        add_stages: u32,
        p: usize,
        n: usize,
        backend: UnitBackend,
    ) -> LinearArray {
        LinearArray {
            fmt,
            pes: (0..p)
                .map(|_| ProcessingElement::new(fmt, mode, mult_stages, add_stages, n, backend))
                .collect(),
            mult_stages,
            add_stages,
            cycles: 0,
        }
    }

    /// Number of PEs.
    pub fn p(&self) -> usize {
        self.pes.len()
    }

    /// Combined MAC latency.
    pub fn pl(&self) -> u32 {
        self.mult_stages + self.add_stages
    }

    /// Load `B` (n×p) into `bank`: PE `j` receives column `j`. Loading
    /// the inactive bank is safe while tokens reading the other bank are
    /// still in flight (double buffering, as in \[5\]).
    pub fn load_b(&mut self, bank: bool, b: &Matrix) {
        assert_eq!(b.cols(), self.pes.len(), "B columns must match PE count");
        let n = b.rows();
        for (j, pe) in self.pes.iter_mut().enumerate() {
            let col: Vec<u64> = (0..n).map(|k| b.get(k, j)).collect();
            pe.load_b_column(bank, &col);
        }
    }

    /// Load the first `cols` columns of a zero-padded `b×b` tile of `B`
    /// into `bank` — ragged edge tiles instantiate only their real
    /// columns as PEs (`p = cols`), so the zero-padded columns beyond
    /// `cols` never exist in hardware and can never pollute the
    /// exception flags.
    pub fn load_b_tile(&mut self, bank: bool, b: &Matrix, cols: usize) {
        assert_eq!(cols, self.pes.len(), "tile columns must match PE count");
        assert!(b.cols() >= cols, "tile narrower than its real columns");
        let n = b.rows();
        for (j, pe) in self.pes.iter_mut().enumerate() {
            let col: Vec<u64> = (0..n).map(|k| b.get(k, j)).collect();
            pe.load_b_column(bank, &col);
        }
    }

    /// Issue one zero-padded `b×b` `A` tile against `bank`, cycle by
    /// cycle, where only the first `rows` rows and `steps` k-steps carry
    /// real data. Every other slot of the `b·max(b,PL)` issue window is
    /// a [`Token::pad`] zero-operation: it burns the pipes (charged by
    /// the energy model) but never reads `B`, writes `C` or raises
    /// flags. No drain — block products chain, as in
    /// [`LinearArray::stream_a_from_bank`].
    pub fn stream_a_tile_from_bank(
        &mut self,
        a: &Matrix,
        rows: usize,
        steps: usize,
        bank: bool,
    ) -> u64 {
        let b = a.rows();
        assert_eq!(a.cols(), b, "A tile must be square (zero-padded)");
        assert!(
            self.pes.iter().all(|pe| pe.n() == b),
            "PE column height mismatch"
        );
        assert!((1..=b).contains(&rows) && (1..=b).contains(&steps));
        let start = self.cycles;
        let period = (b as u32).max(self.pl()) as usize;
        for k in 0..b {
            for slot in 0..period {
                let real = slot < rows && k < steps;
                let token = Token {
                    a: if real { a.get(slot, k) } else { 0 },
                    i: slot.min(rows - 1) as u32,
                    k: k as u32,
                    pad: !real,
                    bank,
                };
                self.clock(Some(token));
            }
        }
        self.cycles - start
    }

    /// Batched twin of [`LinearArray::stream_a_tile_from_bank`]: the
    /// real MACs run through the pipes' bulk fast path, the pad slots
    /// are charged to the counters without simulating them (a zero
    /// operation touches no architectural state), and the cycle/idle
    /// accounting equals the per-cycle run's — so `C`, flags and stats
    /// are bit-identical.
    pub fn stream_a_tile_batched(
        &mut self,
        a: &Matrix,
        rows: usize,
        steps: usize,
        bank: bool,
    ) -> u64 {
        let b = a.rows();
        assert_eq!(a.cols(), b, "A tile must be square (zero-padded)");
        assert!(
            self.pes.iter().all(|pe| pe.n() == b),
            "PE column height mismatch"
        );
        assert!((1..=b).contains(&rows) && (1..=b).contains(&steps));
        let period = (b as u32).max(self.pl()) as u64;
        let pads_per_real_step = period - rows as u64;
        let mut a_col: Vec<u64> = Vec::with_capacity(rows);
        for k in 0..steps {
            a_col.clear();
            a_col.extend((0..rows).map(|i| a.get(i, k)));
            for pe in &mut self.pes {
                pe.mac_step_batch(bank, k, &a_col, pads_per_real_step);
            }
        }
        let all_pad_slots = (b - steps) as u64 * period;
        if all_pad_slots > 0 {
            for pe in &mut self.pes {
                pe.account_pad_issues(all_pad_slots);
            }
        }
        let issue = b as u64 * period;
        self.cycles += issue;
        for pe in &mut self.pes {
            pe.account_batched_cycles(issue, issue);
        }
        issue
    }

    /// Charge the drain a batched tile run needs (`p + PL + 1` cycles,
    /// no issues) without clocking — the batched pipes are already
    /// empty. Pairs with [`LinearArray::stream_a_tile_batched`] the way
    /// [`LinearArray::drain`] pairs with the per-cycle streams.
    pub fn drain_batched(&mut self) -> u64 {
        let drain = self.pes.len() as u64 + self.pl() as u64 + 1;
        self.cycles += drain;
        for pe in &mut self.pes {
            pe.account_batched_cycles(drain, 0);
        }
        drain
    }

    /// Zero all accumulators.
    pub fn clear_c(&mut self) {
        for pe in &mut self.pes {
            pe.clear_c();
        }
    }

    /// Advance the whole array one clock, feeding `token` into PE 0.
    pub fn clock(&mut self, token: Option<Token>) {
        self.cycles += 1;
        let mut t = token;
        for pe in &mut self.pes {
            t = pe.clock(t);
        }
    }

    /// Stream one `A` (n×n) through the array, accumulating
    /// `C += A · B_loaded`. Returns the cycles this run consumed.
    ///
    /// The inner period is padded to the combined MAC latency when
    /// `n < PL`, keeping the accumulation hazard-free.
    pub fn stream_a(&mut self, a: &Matrix) -> u64 {
        let start = self.cycles;
        self.stream_a_from_bank(a, false);
        self.drain();
        self.cycles - start
    }

    /// Issue one `A` stream against the `B` held in `bank`, *without*
    /// draining — in-flight operations keep running, so consecutive
    /// block products chain at full rate (accumulation stays hazard-free
    /// because any two updates of the same `C` entry are at least one
    /// padded period ≥ PL apart).
    pub fn stream_a_from_bank(&mut self, a: &Matrix, bank: bool) -> u64 {
        let n = a.rows();
        assert_eq!(a.cols(), n, "A must be square for this schedule");
        assert!(
            self.pes.iter().all(|pe| pe.n() == n),
            "PE column height mismatch"
        );
        let start = self.cycles;
        let sched = Schedule::new(n as u32, self.pl());
        for mut token in sched.tokens() {
            token.bank = bank;
            if !token.pad {
                token.a = a.get(token.i as usize, token.k as usize);
            }
            self.clock(Some(token));
        }
        self.cycles - start
    }

    /// [`LinearArray::stream_a`] through the PEs' batched fast path
    /// ([`crate::pe::ProcessingElement::mac_step_batch`]): the delay
    /// lines and token shift registers are bypassed, but the `C` matrix,
    /// exception flags and activity statistics come out bit-identical to
    /// per-cycle clocking, and the cycle count charged is exactly what
    /// the per-cycle run (issue + drain) would consume.
    pub fn stream_a_batched(&mut self, a: &Matrix) -> u64 {
        let n = a.rows();
        assert_eq!(a.cols(), n, "A must be square for this schedule");
        assert!(
            self.pes.iter().all(|pe| pe.n() == n),
            "PE column height mismatch"
        );
        let sched = Schedule::new(n as u32, self.pl());
        let pads_per_step = sched.padded_period() as u64 - n as u64;
        for k in 0..n {
            let a_col: Vec<u64> = (0..n).map(|i| a.get(i, k)).collect();
            for pe in &mut self.pes {
                pe.mac_step_batch(false, k, &a_col, pads_per_step);
            }
        }
        let total = sched.issue_cycles() + self.pes.len() as u64 + self.pl() as u64 + 1;
        self.cycles += total;
        for pe in &mut self.pes {
            pe.account_batched_cycles(total, sched.issue_cycles());
        }
        total
    }

    /// [`LinearArray::stream_a_batched`] fanned out over up to
    /// `threads` scoped workers ([`fpfpga_fpu::parallel_chunks_mut`]):
    /// every PE owns disjoint state (its `B` banks, `C` column, pipes,
    /// flags and counters), so each worker runs the complete k-loop for
    /// its contiguous PE chunk and the result — values, flags, stats,
    /// cycle accounting — is bit-identical for every thread count,
    /// including `1` (inline) and `0` (one worker per CPU).
    pub fn stream_a_batched_parallel(&mut self, a: &Matrix, threads: usize) -> u64 {
        let n = a.rows();
        assert_eq!(a.cols(), n, "A must be square for this schedule");
        assert!(
            self.pes.iter().all(|pe| pe.n() == n),
            "PE column height mismatch"
        );
        let sched = Schedule::new(n as u32, self.pl());
        let pads_per_step = sched.padded_period() as u64 - n as u64;
        // Hoist the column extraction once; all workers share the
        // read-only columns.
        let a_cols: Vec<Vec<u64>> = (0..n)
            .map(|k| (0..n).map(|i| a.get(i, k)).collect())
            .collect();
        fpfpga_fpu::parallel_chunks_mut(threads, &mut self.pes, |_, chunk| {
            for pe in chunk {
                for (k, a_col) in a_cols.iter().enumerate() {
                    pe.mac_step_batch(false, k, a_col, pads_per_step);
                }
            }
        });
        let total = sched.issue_cycles() + self.pes.len() as u64 + self.pl() as u64 + 1;
        self.cycles += total;
        for pe in &mut self.pes {
            pe.account_batched_cycles(total, sched.issue_cycles());
        }
        total
    }

    /// Drain the array: the last token must traverse all PEs and both
    /// pipes before `C` is complete.
    pub fn drain(&mut self) -> u64 {
        let drain = self.pes.len() as u64 + self.pl() as u64 + 1;
        for _ in 0..drain {
            self.clock(None);
        }
        drain
    }

    /// Read the accumulated `C` (n×p).
    pub fn read_c(&self) -> Matrix {
        let n = self.pes[0].n();
        let mut c = Matrix::zero(self.fmt, n, self.pes.len());
        for (j, pe) in self.pes.iter().enumerate() {
            for (i, &bits) in pe.c_column().iter().enumerate() {
                c.set(i, j, bits);
            }
        }
        c
    }

    /// One-shot `C = A·B` for n×n operands on an n-PE array.
    pub fn multiply(
        fmt: FpFormat,
        mode: RoundMode,
        mult_stages: u32,
        add_stages: u32,
        a: &Matrix,
        b: &Matrix,
        backend: UnitBackend,
    ) -> (Matrix, ArrayStats) {
        let n = a.rows();
        assert_eq!(a.cols(), n);
        assert_eq!(b.rows(), n);
        assert_eq!(b.cols(), n);
        let mut arr = LinearArray::new(fmt, mode, mult_stages, add_stages, n, n, backend);
        arr.load_b(false, b);
        arr.stream_a(a);
        let c = arr.read_c();
        (c, arr.stats())
    }

    /// [`LinearArray::multiply`] over the batched streaming path — same
    /// result, flags and statistics, much faster wall-clock (see the
    /// `stream_batch` bench).
    pub fn multiply_batched(
        fmt: FpFormat,
        mode: RoundMode,
        mult_stages: u32,
        add_stages: u32,
        a: &Matrix,
        b: &Matrix,
        backend: UnitBackend,
    ) -> (Matrix, ArrayStats) {
        let n = a.rows();
        assert_eq!(a.cols(), n);
        assert_eq!(b.rows(), n);
        assert_eq!(b.cols(), n);
        let mut arr = LinearArray::new(fmt, mode, mult_stages, add_stages, n, n, backend);
        arr.load_b(false, b);
        arr.stream_a_batched(a);
        let c = arr.read_c();
        (c, arr.stats())
    }

    /// [`LinearArray::multiply_batched`] with the k-loop fanned out
    /// over `threads` workers — same result, flags and statistics at
    /// every thread count.
    #[allow(clippy::too_many_arguments)]
    pub fn multiply_batched_parallel(
        fmt: FpFormat,
        mode: RoundMode,
        mult_stages: u32,
        add_stages: u32,
        a: &Matrix,
        b: &Matrix,
        backend: UnitBackend,
        threads: usize,
    ) -> (Matrix, ArrayStats) {
        let n = a.rows();
        assert_eq!(a.cols(), n);
        assert_eq!(b.rows(), n);
        assert_eq!(b.cols(), n);
        let mut arr = LinearArray::new(fmt, mode, mult_stages, add_stages, n, n, backend);
        arr.load_b(false, b);
        arr.stream_a_batched_parallel(a, threads);
        let c = arr.read_c();
        (c, arr.stats())
    }

    /// Aggregate statistics across PEs.
    pub fn stats(&self) -> ArrayStats {
        let mut s = ArrayStats {
            cycles: self.cycles,
            ..Default::default()
        };
        for pe in &self.pes {
            let PeStats {
                useful_macs,
                pad_macs,
                idle_cycles,
                bram_accesses,
                ..
            } = pe.stats;
            s.useful_macs += useful_macs;
            s.pad_macs += pad_macs;
            s.idle_cycles += idle_cycles;
            s.bram_accesses += bram_accesses;
        }
        s
    }

    /// OR of all PEs' exception flags.
    pub fn flags(&self) -> Flags {
        self.pes.iter().fold(Flags::NONE, |acc, pe| acc | pe.flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_matmul;

    const F: FpFormat = FpFormat::SINGLE;
    const RM: RoundMode = RoundMode::NearestEven;

    fn sample(n: usize, seed: f64) -> Matrix {
        Matrix::from_fn(F, n, n, |i, j| {
            ((i * n + j) as f64 * 0.37 + seed).sin() * 4.0
        })
    }

    #[test]
    fn identity_multiplication() {
        let a = sample(4, 0.0);
        let id = Matrix::identity(F, 4);
        let (c, _) = LinearArray::multiply(F, RM, 3, 4, &a, &id, UnitBackend::Fast);
        assert_eq!(c, a);
        let (c, _) = LinearArray::multiply(F, RM, 3, 4, &id, &a, UnitBackend::Fast);
        assert_eq!(c, a);
    }

    #[test]
    fn matches_reference_bit_exact() {
        for n in [2usize, 3, 5, 8] {
            let a = sample(n, 1.0);
            let b = sample(n, 2.0);
            let (c, _) = LinearArray::multiply(F, RM, 4, 5, &a, &b, UnitBackend::Fast);
            let want = reference_matmul(&a, &b, RM);
            assert_eq!(c, want, "n = {n}");
        }
    }

    #[test]
    fn deep_pipelines_still_correct_via_padding() {
        // n = 4 « PL = 21: without padding the accumulation would race.
        let a = sample(4, 3.0);
        let b = sample(4, 4.0);
        let (c, stats) = LinearArray::multiply(F, RM, 9, 12, &a, &b, UnitBackend::Fast);
        assert_eq!(c, reference_matmul(&a, &b, RM));
        assert!(stats.pad_macs > 0, "padding must have been injected");
        // per PE: (21-4) pads × 4 steps; × 4 PEs
        assert_eq!(stats.pad_macs, 17 * 4 * 4);
    }

    #[test]
    fn no_padding_when_large_enough() {
        let n = 12;
        let a = sample(n, 5.0);
        let b = sample(n, 6.0);
        let (c, stats) = LinearArray::multiply(F, RM, 4, 5, &a, &b, UnitBackend::Fast);
        assert_eq!(c, reference_matmul(&a, &b, RM));
        assert_eq!(stats.pad_macs, 0);
        assert_eq!(stats.useful_macs, (n * n * n) as u64);
    }

    #[test]
    fn cycle_count_matches_schedule_model() {
        let n = 8;
        let a = sample(n, 7.0);
        let b = sample(n, 8.0);
        let mut arr = LinearArray::new(F, RM, 4, 5, n, n, UnitBackend::Fast);
        arr.load_b(false, &b);
        let cycles = arr.stream_a(&a);
        let sched = Schedule::new(n as u32, 9);
        // issue + (p PEs + PL + 1) drain
        assert_eq!(cycles, sched.issue_cycles() + n as u64 + 9 + 1);
    }

    #[test]
    fn accumulation_across_streams() {
        // Streaming two A matrices against the same B accumulates:
        // C = (A1 + A2)·B.
        let n = 6;
        let a1 = sample(n, 9.0);
        let a2 = sample(n, 10.0);
        let b = sample(n, 11.0);
        let mut arr = LinearArray::new(F, RM, 3, 4, n, n, UnitBackend::Fast);
        arr.load_b(false, &b);
        arr.stream_a(&a1);
        arr.stream_a(&a2);
        let c = arr.read_c();
        // reference: accumulate in the same order (k of a1, then k of a2)
        let mut want = reference_matmul(&a1, &b, RM);
        for i in 0..n {
            for j in 0..n {
                let mut acc = fpfpga_softfp::SoftFloat::from_bits(F, want.get(i, j));
                for k in 0..n {
                    let x = fpfpga_softfp::SoftFloat::from_bits(F, a2.get(i, k));
                    let y = fpfpga_softfp::SoftFloat::from_bits(F, b.get(k, j));
                    let (r, _) = acc.mac(&x, &y, RM);
                    acc = r;
                }
                want.set(i, j, acc.bits());
            }
        }
        assert_eq!(c, want);
    }

    #[test]
    fn batched_stream_is_bit_identical_to_per_cycle() {
        for (n, lm, la) in [(2usize, 3u32, 4u32), (5, 4, 5), (8, 9, 12), (12, 4, 5)] {
            let a = sample(n, n as f64);
            let b = sample(n, n as f64 + 0.5);
            let (c_seq, s_seq) = LinearArray::multiply(F, RM, lm, la, &a, &b, UnitBackend::Fast);
            let (c_bat, s_bat) =
                LinearArray::multiply_batched(F, RM, lm, la, &a, &b, UnitBackend::Fast);
            assert_eq!(c_seq, c_bat, "values n={n} lm={lm} la={la}");
            assert_eq!(s_seq, s_bat, "stats n={n} lm={lm} la={la}");
        }
    }

    #[test]
    fn parallel_batched_is_thread_count_invariant() {
        for n in [3usize, 8, 12] {
            let a = sample(n, n as f64 + 0.25);
            let b = sample(n, n as f64 + 0.75);
            let (c_seq, s_seq) =
                LinearArray::multiply_batched(F, RM, 4, 5, &a, &b, UnitBackend::Fast);
            for threads in [0usize, 1, 2, 3, 7] {
                let (c_par, s_par) = LinearArray::multiply_batched_parallel(
                    F,
                    RM,
                    4,
                    5,
                    &a,
                    &b,
                    UnitBackend::Fast,
                    threads,
                );
                assert_eq!(c_seq, c_par, "values n={n} threads={threads}");
                assert_eq!(s_seq, s_par, "stats n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_batched_flags_match() {
        let a = Matrix::from_f64(F, 2, 2, &[f32::MAX as f64; 4]);
        let b = Matrix::from_f64(F, 2, 2, &[f32::MAX as f64; 4]);
        let mut arr = LinearArray::new(F, RM, 3, 4, 2, 2, UnitBackend::Fast);
        arr.load_b(false, &b);
        arr.stream_a_batched_parallel(&a, 2);
        assert!(arr.flags().overflow);
    }

    #[test]
    fn batched_stream_flags_match() {
        let a = Matrix::from_f64(F, 2, 2, &[f32::MAX as f64; 4]);
        let b = Matrix::from_f64(F, 2, 2, &[f32::MAX as f64; 4]);
        let run = |batched: bool| {
            let mut arr = LinearArray::new(F, RM, 3, 4, 2, 2, UnitBackend::Fast);
            arr.load_b(false, &b);
            if batched {
                arr.stream_a_batched(&a);
            } else {
                arr.stream_a(&a);
            }
            arr.flags()
        };
        assert_eq!(run(false), run(true));
        assert!(run(true).overflow);
    }

    #[test]
    fn flags_propagate_from_pes() {
        // Overflowing products raise flags visible at the array level.
        let a = Matrix::from_f64(F, 2, 2, &[f32::MAX as f64; 4]);
        let b = Matrix::from_f64(F, 2, 2, &[f32::MAX as f64; 4]);
        let mut arr = LinearArray::new(F, RM, 3, 4, 2, 2, UnitBackend::Fast);
        arr.load_b(false, &b);
        arr.stream_a(&a);
        assert!(arr.flags().overflow);
    }
}
