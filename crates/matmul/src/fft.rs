//! Radix-2 FFT kernel — the paper's signal-processing motivation
//! ("radar/sonar signal processing, image processing…") exercised on the
//! same floating-point units.
//!
//! The architecture is the classic iterative Cooley-Tukey dataflow: a
//! pipelined **butterfly unit** (4 multipliers + 6 adders computing
//! `X' = X + W·Y`, `Y' = X − W·Y` on complex operands) streams `n/2`
//! butterflies per stage for `log₂ n` stages. Within a stage every
//! butterfly touches distinct data, so the unit runs at initiation
//! interval 1 with no hazards; stages are separated by a pipeline drain
//! (the paper's latency-hiding constraint appears here as the *stage
//! barrier* instead of matmul's padded period).
//!
//! Numerics are bit-exact against [`reference_fft`], which performs the
//! identical operation order in `SoftFloat` arithmetic; accuracy is
//! validated against an `f64` FFT.

use crate::units::UnitSet;
use fpfpga_fabric::area::AreaCost;
use fpfpga_softfp::{Flags, FpFormat, RoundMode, SoftFloat};

/// A complex number as a pair of raw encodings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cplx {
    /// Real part (raw bits).
    pub re: u64,
    /// Imaginary part (raw bits).
    pub im: u64,
}

impl Cplx {
    /// From `f64` parts.
    pub fn from_f64(fmt: FpFormat, re: f64, im: f64) -> Cplx {
        Cplx {
            re: SoftFloat::from_f64(fmt, re).bits(),
            im: SoftFloat::from_f64(fmt, im).bits(),
        }
    }

    /// To `f64` parts.
    pub fn to_f64(&self, fmt: FpFormat) -> (f64, f64) {
        (
            SoftFloat::from_bits(fmt, self.re).to_f64(),
            SoftFloat::from_bits(fmt, self.im).to_f64(),
        )
    }

    /// Zero.
    pub fn zero() -> Cplx {
        Cplx { re: 0, im: 0 }
    }
}

/// One radix-2 butterfly in `SoftFloat` arithmetic — the exact operation
/// order the hardware unit performs: complex product `W·Y` (4 multiplies,
/// then `ac − bd` and `ad + bc`), then the sum and difference with `X`.
pub fn butterfly_softfp(
    fmt: FpFormat,
    mode: RoundMode,
    x: Cplx,
    y: Cplx,
    w: Cplx,
) -> (Cplx, Cplx, Flags) {
    use fpfpga_softfp::fastpath;
    let mut flags = Flags::NONE;
    let mut op = |r: (u64, Flags)| {
        flags |= r.1;
        r.0
    };
    // t = w * y — the 10 scalar ops go through the monomorphized
    // fast-lane dispatchers, which are bit-identical to the generic
    // `SoftFloat` path on every input.
    let ac = op(fastpath::mul_bits(fmt, w.re, y.re, mode));
    let bd = op(fastpath::mul_bits(fmt, w.im, y.im, mode));
    let ad = op(fastpath::mul_bits(fmt, w.re, y.im, mode));
    let bc = op(fastpath::mul_bits(fmt, w.im, y.re, mode));
    let t_re = op(fastpath::sub_bits(fmt, ac, bd, mode));
    let t_im = op(fastpath::add_bits(fmt, ad, bc, mode));
    // outputs
    let x_re = op(fastpath::add_bits(fmt, x.re, t_re, mode));
    let x_im = op(fastpath::add_bits(fmt, x.im, t_im, mode));
    let y_re = op(fastpath::sub_bits(fmt, x.re, t_re, mode));
    let y_im = op(fastpath::sub_bits(fmt, x.im, t_im, mode));
    (
        Cplx { re: x_re, im: x_im },
        Cplx { re: y_re, im: y_im },
        flags,
    )
}

/// A pipelined butterfly unit: latency = multiplier + 2 × adder stages
/// (product, complex combine, final add/sub), initiation interval 1.
pub struct ButterflyUnit {
    fmt: FpFormat,
    mode: RoundMode,
    /// One representative pipe per serial segment, used to realize the
    /// latency; values are computed bit-exactly at issue.
    line: std::collections::VecDeque<Option<(Cplx, Cplx, Flags)>>,
    latency: u32,
    /// Issues accepted.
    pub issues: u64,
    /// Cycles clocked.
    pub cycles: u64,
}

impl ButterflyUnit {
    /// A unit built from the given FP unit latencies.
    pub fn new(fmt: FpFormat, mode: RoundMode, mult_stages: u32, add_stages: u32) -> ButterflyUnit {
        let latency = mult_stages + 2 * add_stages;
        ButterflyUnit {
            fmt,
            mode,
            line: (0..latency).map(|_| None).collect(),
            latency,
            issues: 0,
            cycles: 0,
        }
    }

    /// Pipeline latency in cycles.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Advance one clock, optionally issuing a butterfly.
    pub fn clock(&mut self, input: Option<(Cplx, Cplx, Cplx)>) -> Option<(Cplx, Cplx, Flags)> {
        self.cycles += 1;
        let computed = input.map(|(x, y, w)| {
            self.issues += 1;
            butterfly_softfp(self.fmt, self.mode, x, y, w)
        });
        self.line.push_back(computed);
        self.line.pop_front().expect("line non-empty")
    }

    /// Batched counterpart of clocking one butterfly per cycle and then
    /// draining: retire everything in flight, compute the whole batch,
    /// and charge the same `issues + latency` cycles the per-cycle loop
    /// would. Bit-identical because in-flight butterflies never
    /// interact inside the delay line.
    pub fn run_batch(&mut self, inputs: &[(Cplx, Cplx, Cplx)]) -> Vec<(Cplx, Cplx, Flags)> {
        let mut out = Vec::with_capacity(self.line.len() + inputs.len());
        for slot in self.line.iter_mut() {
            if let Some(r) = slot.take() {
                out.push(r);
            }
        }
        self.cycles += inputs.len() as u64 + u64::from(self.latency);
        self.issues += inputs.len() as u64;
        out.extend(
            inputs
                .iter()
                .map(|&(x, y, w)| butterfly_softfp(self.fmt, self.mode, x, y, w)),
        );
        out
    }

    /// The resource bill: 4 multipliers + 6 adders at the given configs.
    pub fn area(units: &UnitSet) -> AreaCost {
        let m = AreaCost {
            luts: units.multiplier.luts as f64,
            ffs: units.multiplier.ffs as f64,
            bmults: units.multiplier.bmults,
            brams: units.multiplier.brams,
            routing_slices: 0.0,
        };
        let a = AreaCost {
            luts: units.adder.luts as f64,
            ffs: units.adder.ffs as f64,
            bmults: units.adder.bmults,
            brams: units.adder.brams,
            routing_slices: 0.0,
        };
        m * 4.0 + a * 6.0
    }
}

/// Bit-reverse permutation of indices below `n` (a power of two).
pub fn bit_reverse_permute(data: &mut [Cplx]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT size must be a power of two");
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            data.swap(i, j);
        }
    }
}

/// Twiddle factor `W_n^k = exp(−2πik/n)` (or its conjugate for the
/// inverse transform), rounded into `fmt`.
pub fn twiddle(fmt: FpFormat, k: usize, n: usize, inverse: bool) -> Cplx {
    let angle = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
    let angle = if inverse { -angle } else { angle };
    Cplx::from_f64(fmt, angle.cos(), angle.sin())
}

/// Reference FFT: identical butterfly order in `SoftFloat` arithmetic.
pub fn reference_fft(fmt: FpFormat, mode: RoundMode, input: &[Cplx], inverse: bool) -> Vec<Cplx> {
    let n = input.len();
    assert!(n.is_power_of_two());
    let mut data = input.to_vec();
    bit_reverse_permute(&mut data);
    let mut len = 2;
    while len <= n {
        for start in (0..n).step_by(len) {
            for k in 0..len / 2 {
                let w = twiddle(fmt, k, len, inverse);
                let (x, y) = (data[start + k], data[start + k + len / 2]);
                let (nx, ny, _) = butterfly_softfp(fmt, mode, x, y, w);
                data[start + k] = nx;
                data[start + k + len / 2] = ny;
            }
        }
        len *= 2;
    }
    data
}

/// Cycle-accurate FFT run on one butterfly unit. Returns the transform
/// and the cycles consumed.
pub struct FftEngine {
    fmt: FpFormat,
    mode: RoundMode,
    mult_stages: u32,
    add_stages: u32,
}

impl FftEngine {
    /// Configure an engine.
    pub fn new(fmt: FpFormat, mode: RoundMode, mult_stages: u32, add_stages: u32) -> FftEngine {
        FftEngine {
            fmt,
            mode,
            mult_stages,
            add_stages,
        }
    }

    /// Run an `n`-point FFT, streaming each stage's `n/2` butterflies
    /// through the unit at initiation interval 1, draining at the stage
    /// barrier (the in-place dataflow makes later butterflies of the
    /// *next* stage depend on this stage's results).
    pub fn run(&self, input: &[Cplx], inverse: bool) -> (Vec<Cplx>, u64) {
        let n = input.len();
        assert!(n.is_power_of_two() && n >= 2);
        let mut unit = ButterflyUnit::new(self.fmt, self.mode, self.mult_stages, self.add_stages);
        let mut data = input.to_vec();
        bit_reverse_permute(&mut data);

        let mut len = 2;
        while len <= n {
            // Issue all butterflies of this stage back to back.
            let mut jobs: Vec<(usize, usize)> = Vec::with_capacity(n / 2);
            for start in (0..n).step_by(len) {
                for k in 0..len / 2 {
                    jobs.push((start + k, start + k + len / 2));
                }
            }
            let mut retired = 0usize;
            let mut issued = 0usize;
            let mut inflight: std::collections::VecDeque<(usize, usize)> =
                std::collections::VecDeque::new();
            while retired < jobs.len() {
                let input = if issued < jobs.len() {
                    let (i, j) = jobs[issued];
                    let k = jobs[issued].0 % len; // position within the group
                    let w = twiddle(self.fmt, k, len, inverse);
                    issued += 1;
                    inflight.push_back((i, j));
                    Some((data[i], data[j], w))
                } else {
                    None
                };
                if let Some((nx, ny, _)) = unit.clock(input) {
                    let (i, j) = inflight.pop_front().expect("retire order");
                    data[i] = nx;
                    data[j] = ny;
                    retired += 1;
                }
            }
            len *= 2;
        }
        (data, unit.cycles)
    }

    /// Batched counterpart of [`FftEngine::run`]: each stage's `n/2`
    /// butterflies go through one [`ButterflyUnit::run_batch`] call.
    /// Within a stage every butterfly touches distinct indices, so the
    /// transform and the cycle count are bit-identical to the
    /// per-cycle simulation.
    pub fn run_batched(&self, input: &[Cplx], inverse: bool) -> (Vec<Cplx>, u64) {
        let n = input.len();
        assert!(n.is_power_of_two() && n >= 2);
        let mut unit = ButterflyUnit::new(self.fmt, self.mode, self.mult_stages, self.add_stages);
        let mut data = input.to_vec();
        bit_reverse_permute(&mut data);

        // Stage buffers reused across all log₂n stages.
        let mut jobs: Vec<(usize, usize)> = Vec::with_capacity(n / 2);
        let mut inputs: Vec<(Cplx, Cplx, Cplx)> = Vec::with_capacity(n / 2);
        let mut len = 2;
        while len <= n {
            jobs.clear();
            for start in (0..n).step_by(len) {
                for k in 0..len / 2 {
                    jobs.push((start + k, start + k + len / 2));
                }
            }
            inputs.clear();
            inputs.extend(jobs.iter().map(|&(i, j)| {
                let w = twiddle(self.fmt, i % len, len, inverse);
                (data[i], data[j], w)
            }));
            let results = unit.run_batch(&inputs);
            for (&(i, j), &(nx, ny, _)) in jobs.iter().zip(&results) {
                data[i] = nx;
                data[j] = ny;
            }
            len *= 2;
        }
        (data, unit.cycles)
    }

    /// Analytical cycle model: `log₂n` stages of `n/2` issues plus one
    /// pipeline drain per stage barrier.
    pub fn cycle_model(&self, n: usize) -> u64 {
        let stages = n.trailing_zeros() as u64;
        let latency = (self.mult_stages + 2 * self.add_stages) as u64;
        stages * (n as u64 / 2 + latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FpFormat = FpFormat::SINGLE;
    const RM: RoundMode = RoundMode::NearestEven;

    fn signal(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|i| Cplx::from_f64(F, (i as f64 * 0.37).sin(), (i as f64 * 0.21).cos() * 0.5))
            .collect()
    }

    /// Plain f64 DFT for accuracy checks.
    fn dft_f64(input: &[Cplx], inverse: bool) -> Vec<(f64, f64)> {
        let n = input.len();
        let sgn = if inverse { 1.0 } else { -1.0 };
        (0..n)
            .map(|k| {
                let mut re = 0.0;
                let mut im = 0.0;
                for (j, c) in input.iter().enumerate() {
                    let (xr, xi) = c.to_f64(F);
                    let ang = sgn * 2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                    re += xr * ang.cos() - xi * ang.sin();
                    im += xr * ang.sin() + xi * ang.cos();
                }
                (re, im)
            })
            .collect()
    }

    #[test]
    fn engine_matches_reference_bit_exact() {
        for n in [2usize, 4, 8, 16, 64] {
            let x = signal(n);
            let eng = FftEngine::new(F, RM, 5, 7);
            let (got, _) = eng.run(&x, false);
            let want = reference_fft(F, RM, &x, false);
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn matches_f64_dft() {
        let n = 32;
        let x = signal(n);
        let eng = FftEngine::new(F, RM, 7, 9);
        let (got, _) = eng.run(&x, false);
        let want = dft_f64(&x, false);
        for (g, (wr, wi)) in got.iter().zip(&want) {
            let (gr, gi) = g.to_f64(F);
            assert!((gr - wr).abs() < 1e-3, "{gr} vs {wr}");
            assert!((gi - wi).abs() < 1e-3, "{gi} vs {wi}");
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let n = 16;
        let mut x = vec![Cplx::zero(); n];
        x[0] = Cplx::from_f64(F, 1.0, 0.0);
        let eng = FftEngine::new(F, RM, 4, 5);
        let (got, _) = eng.run(&x, false);
        for g in &got {
            let (re, im) = g.to_f64(F);
            assert!((re - 1.0).abs() < 1e-6 && im.abs() < 1e-6, "({re}, {im})");
        }
    }

    #[test]
    fn forward_then_inverse_recovers_signal() {
        let n = 32;
        let x = signal(n);
        let eng = FftEngine::new(F, RM, 6, 8);
        let (fwd, _) = eng.run(&x, false);
        let (back, _) = eng.run(&fwd, true);
        // inverse lacks the 1/n scale: compare back/n against x
        for (b, orig) in back.iter().zip(&x) {
            let (br, bi) = b.to_f64(F);
            let (or_, oi) = orig.to_f64(F);
            assert!((br / n as f64 - or_).abs() < 1e-4, "{br} vs {or_}");
            assert!((bi / n as f64 - oi).abs() < 1e-4);
        }
    }

    #[test]
    fn cycle_model_matches_engine() {
        for n in [4usize, 16, 64] {
            let eng = FftEngine::new(F, RM, 5, 7);
            let (_, cycles) = eng.run(&signal(n), false);
            assert_eq!(cycles, eng.cycle_model(n), "n = {n}");
        }
    }

    #[test]
    fn latency_changes_cycles_not_values() {
        let x = signal(16);
        let shallow = FftEngine::new(F, RM, 2, 3).run(&x, false);
        let deep = FftEngine::new(F, RM, 9, 12).run(&x, false);
        assert_eq!(shallow.0, deep.0, "pipeline depth must not change values");
        assert!(
            deep.1 > shallow.1,
            "deep pipes pay more drain at stage barriers"
        );
    }

    #[test]
    fn batched_matches_per_cycle_bit_exact() {
        for n in [2usize, 4, 16, 64] {
            let x = signal(n);
            for inverse in [false, true] {
                let eng = FftEngine::new(F, RM, 5, 7);
                let (want, want_cycles) = eng.run(&x, inverse);
                let (got, got_cycles) = eng.run_batched(&x, inverse);
                assert_eq!(got, want, "n = {n} inverse = {inverse}");
                assert_eq!(got_cycles, want_cycles, "cycles n = {n}");
                assert_eq!(got_cycles, eng.cycle_model(n), "model n = {n}");
            }
        }
    }

    #[test]
    fn butterfly_unit_area_counts() {
        let tech = fpfpga_fabric::tech::Tech::virtex2pro();
        let units = UnitSet::with_stages(
            F,
            8,
            4,
            &tech,
            fpfpga_fabric::synthesis::SynthesisOptions::SPEED,
        );
        let a = ButterflyUnit::area(&units);
        assert_eq!(a.bmults, 4 * units.multiplier.bmults);
        assert!(a.luts > 4.0 * units.multiplier.luts as f64);
    }

    #[test]
    fn bit_reverse_is_involution() {
        let mut v = signal(16);
        let orig = v.clone();
        bit_reverse_permute(&mut v);
        assert_ne!(v, orig);
        bit_reverse_permute(&mut v);
        assert_eq!(v, orig);
    }
}
