//! Mixed-precision kernels: multiply narrow, accumulate wide.
//!
//! The paper fixes one format per core at design time; Merchant et al.'s
//! mixed-precision BLAS (and Arish & Sharma's run-time multi-precision IP
//! core) show the profitable configuration is usually *asymmetric* — a
//! cheap narrow multiplier feeding a wider accumulator, with data at rest
//! in a third (storage) format. These kernels implement that split on top
//! of the existing softfp fast lanes, driven by a
//! [`PrecisionPolicy`]:
//!
//! 1. operands are converted `storage → compute` (exact when widening),
//! 2. products are formed in the compute format via the batched fast
//!    lanes,
//! 3. each product is widened `compute → accumulate` (exact whenever the
//!    accumulate format covers the compute format's fields) and added
//!    into the running sum in the accumulate format,
//! 4. the final value is rounded `accumulate → storage`.
//!
//! For a **uniform** policy every conversion is the identity and
//! [`mixed_dot`] reproduces [`interleaved_reference`](crate::dot::interleaved_reference) — and therefore the
//! cycle-accurate [`DotProductUnit`](crate::dot::DotProductUnit) — bit
//! for bit. These functions are themselves the *serial references*: the
//! `_parallel` variants and the serving layer are tested bit-identical
//! against them for every worker count.

use crate::matrix::Matrix;
use fpfpga_softfp::{
    add_bits, convert, mul_pairs_batch, Flags, FpFormat, PrecisionPolicy, RoundMode, SoftFloat,
};

/// Result of a mixed-precision dot product.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MixedDot {
    /// Result bits in the policy's **storage** format.
    pub bits: u64,
    /// Exception flags accumulated across conversions, multiplies, adds
    /// and the final narrowing.
    pub flags: Flags,
    /// Cycle charge under the same model as
    /// [`DotProductUnit`](crate::dot::DotProductUnit): stream + drain of
    /// the two pipes, then one adder pass per pairwise-fold step. The
    /// format converters sit in-line with the streaming operands and add
    /// no cycles.
    pub cycles: u64,
}

/// Convert a slice of encodings between formats, accumulating flags.
fn convert_slice(src: FpFormat, bits: &[u64], dst: FpFormat, mode: RoundMode) -> (Vec<u64>, Flags) {
    let mut flags = Flags::NONE;
    let out = bits
        .iter()
        .map(|&b| {
            let (v, f) = convert::convert(src, b, dst, mode);
            flags |= f;
            v
        })
        .collect();
    (out, flags)
}

/// Mixed-precision dot product `x · y` with the banked accumulation
/// order of the hardware dot unit.
///
/// `x` and `y` are raw encodings in `policy.storage`. Products are
/// formed in `policy.compute`, widened to `policy.accumulate` and added
/// round-robin into `add_stages` partial accumulators (one per adder
/// pipeline stage, exactly as [`DotProductUnit`](crate::dot::DotProductUnit)
/// schedules them), which are then folded pairwise. The final sum is
/// rounded back to `policy.storage`.
///
/// With a uniform policy this is bit-identical to
/// [`interleaved_reference`](crate::dot::interleaved_reference).
pub fn mixed_dot(
    policy: PrecisionPolicy,
    mode: RoundMode,
    x: &[u64],
    y: &[u64],
    mult_stages: u32,
    add_stages: u32,
) -> MixedDot {
    assert_eq!(x.len(), y.len(), "vector lengths must agree");
    assert!(add_stages >= 1, "adder must have at least one stage");
    let mut flags = Flags::NONE;

    // storage -> compute
    let (xc, fx) = convert_slice(policy.storage, x, policy.compute, mode);
    let (yc, fy) = convert_slice(policy.storage, y, policy.compute, mode);
    flags |= fx;
    flags |= fy;

    // products in the compute format, via the monomorphized fast lane
    let pairs: Vec<(u64, u64)> = xc.into_iter().zip(yc).collect();
    let mut products: Vec<(u64, Flags)> = Vec::new();
    mul_pairs_batch(policy.compute, &pairs, mode, &mut products);

    // widen each product and accumulate round-robin in `add_stages` banks
    let la = add_stages as usize;
    let mut bank = vec![policy.accumulate.zero(); la];
    for (i, &(p, pf)) in products.iter().enumerate() {
        flags |= pf;
        let (wide, wf) = convert::convert(policy.compute, p, policy.accumulate, mode);
        flags |= wf;
        let (s, sf) = add_bits(policy.accumulate, bank[i % la], wide, mode);
        flags |= sf;
        bank[i % la] = s;
    }

    // pairwise fold (the hardware reuses the adder with a sequencer)
    let mut fold_adds = 0u64;
    let mut live = bank;
    while live.len() > 1 {
        let mut next = Vec::with_capacity(live.len().div_ceil(2));
        let mut i = 0;
        while i + 1 < live.len() {
            let (s, sf) = add_bits(policy.accumulate, live[i], live[i + 1], mode);
            flags |= sf;
            fold_adds += 1;
            next.push(s);
            i += 2;
        }
        if i < live.len() {
            next.push(live[i]);
        }
        live = next;
    }

    // accumulate -> storage
    let (bits, nf) = convert::convert(policy.accumulate, live[0], policy.storage, mode);
    flags |= nf;

    let cycles = pairs.len() as u64
        + mult_stages as u64
        + add_stages as u64
        + 1
        + fold_adds * (add_stages as u64 + 1);
    MixedDot {
        bits,
        flags,
        cycles,
    }
}

/// Mixed-precision `C = A·B`, sequential over `k` per element.
///
/// `a` and `b` must be in `policy.storage`; the result is too. Each
/// element is an independent mixed accumulation (product in `compute`,
/// widened into a single running sum in `accumulate`, rounded once to
/// `storage`), so the result is trivially independent of any row
/// partitioning — [`mixed_matmul_parallel`] is bit-identical for every
/// worker count.
pub fn mixed_matmul(
    policy: PrecisionPolicy,
    mode: RoundMode,
    a: &Matrix,
    b: &Matrix,
) -> (Matrix, Flags) {
    check_storage(policy, &[a, b]);
    let (n, m, p) = (a.rows(), a.cols(), b.cols());
    assert_eq!(b.rows(), m, "inner dimensions must agree");
    let mut c = Matrix::zero(policy.storage, n, p);
    let mut flags = Flags::NONE;
    for i in 0..n {
        let (row, rf) = mixed_matmul_row(policy, mode, a, b, i);
        flags |= rf;
        for (j, &bits) in row.iter().enumerate() {
            c.set(i, j, bits);
        }
    }
    (c, flags)
}

/// One row of the mixed matmul: the unit of parallel distribution.
fn mixed_matmul_row(
    policy: PrecisionPolicy,
    mode: RoundMode,
    a: &Matrix,
    b: &Matrix,
    i: usize,
) -> (Vec<u64>, Flags) {
    let (m, p) = (a.cols(), b.cols());
    let mut flags = Flags::NONE;
    // Convert row i of A once; B columns are converted per element (the
    // row is the parallel work unit, so no cross-row state is shared).
    let row_a: Vec<u64> = (0..m).map(|k| a.get(i, k)).collect();
    let (row_ac, af) = convert_slice(policy.storage, &row_a, policy.compute, mode);
    flags |= af;
    let mut out = Vec::with_capacity(p);
    for j in 0..p {
        let mut acc = policy.accumulate.zero();
        for (k, &ax) in row_ac.iter().enumerate() {
            let (bx, bf) = convert::convert(policy.storage, b.get(k, j), policy.compute, mode);
            flags |= bf;
            let (prod, pf) = SoftFloat::from_bits(policy.compute, ax)
                .mul(&SoftFloat::from_bits(policy.compute, bx), mode);
            flags |= pf;
            let (wide, wf) = convert::convert(policy.compute, prod.bits(), policy.accumulate, mode);
            flags |= wf;
            let (s, sf) = add_bits(policy.accumulate, acc, wide, mode);
            flags |= sf;
            acc = s;
        }
        let (bits, nf) = convert::convert(policy.accumulate, acc, policy.storage, mode);
        flags |= nf;
        out.push(bits);
    }
    (out, flags)
}

/// [`mixed_matmul`] with rows fanned out over `threads` scoped workers
/// (0 = one per CPU). Bit-identical to the serial kernel for every
/// thread count: rows are independent and reassembled in row order.
pub fn mixed_matmul_parallel(
    policy: PrecisionPolicy,
    mode: RoundMode,
    a: &Matrix,
    b: &Matrix,
    threads: usize,
) -> (Matrix, Flags) {
    check_storage(policy, &[a, b]);
    let (n, m, p) = (a.rows(), a.cols(), b.cols());
    assert_eq!(b.rows(), m, "inner dimensions must agree");
    let rows: Vec<usize> = (0..n).collect();
    let results = fpfpga_fpu::parallel::parallel_map_slice(threads, &rows, |_, &i| {
        mixed_matmul_row(policy, mode, a, b, i)
    });
    let mut c = Matrix::zero(policy.storage, n, p);
    let mut flags = Flags::NONE;
    for (i, (row, rf)) in results.into_iter().enumerate() {
        flags |= rf;
        for (j, bits) in row.into_iter().enumerate() {
            c.set(i, j, bits);
        }
    }
    (c, flags)
}

/// Mixed-precision matrix-vector multiply `y = A·x`: one [`mixed_dot`]
/// per row, so each row sees the banked accumulation order of the
/// hardware MVM engine's MAC bank.
///
/// Returns the result vector (in `policy.storage`), the accumulated
/// flags, and the cycle charge of the slowest row chain as if the rows
/// were issued back to back on one dot unit (the sum of per-row cycle
/// charges, matching the serial engine's accounting).
pub fn mixed_mvm(
    policy: PrecisionPolicy,
    mode: RoundMode,
    a: &Matrix,
    x: &[u64],
    mult_stages: u32,
    add_stages: u32,
) -> (Vec<u64>, Flags, u64) {
    check_storage(policy, &[a]);
    assert_eq!(a.cols(), x.len(), "dimension mismatch");
    let mut flags = Flags::NONE;
    let mut cycles = 0;
    let mut y = Vec::with_capacity(a.rows());
    for i in 0..a.rows() {
        let row: Vec<u64> = (0..a.cols()).map(|k| a.get(i, k)).collect();
        let r = mixed_dot(policy, mode, &row, x, mult_stages, add_stages);
        flags |= r.flags;
        cycles += r.cycles;
        y.push(r.bits);
    }
    (y, flags, cycles)
}

fn check_storage(policy: PrecisionPolicy, mats: &[&Matrix]) {
    for m in mats {
        assert_eq!(
            m.format(),
            policy.storage,
            "matrix format must equal the policy's storage format"
        );
    }
}

/// An accuracy budget for the auto-tuner: the largest error a caller
/// will accept, measured against a high-precision reference.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ErrorBudget {
    /// Maximum error in units in the last place of the *storage* format
    /// at the reference magnitude.
    MaxUlp(f64),
    /// Maximum relative error against the reference.
    MaxRelative(f64),
}

impl ErrorBudget {
    /// Does a measured error record satisfy this budget?
    pub fn accepts(&self, stats: &crate::accuracy::ErrorStats) -> bool {
        match *self {
            ErrorBudget::MaxUlp(limit) => stats.max_ulp <= limit,
            ErrorBudget::MaxRelative(limit) => stats.max_rel <= limit,
        }
    }
}

impl core::fmt::Display for ErrorBudget {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ErrorBudget::MaxUlp(u) => write!(f, "{u}ulp"),
            ErrorBudget::MaxRelative(r) => write!(f, "rel{r}"),
        }
    }
}

impl core::str::FromStr for ErrorBudget {
    type Err = String;

    /// Parse `"<N>ulp"` or `"rel<X>"` (e.g. `"4ulp"`, `"rel1e-6"`).
    fn from_str(s: &str) -> Result<ErrorBudget, String> {
        let bad = || format!("bad error budget {s:?} (expected e.g. \"4ulp\" or \"rel1e-6\")");
        if let Some(u) = s.strip_suffix("ulp") {
            let v: f64 = u.parse().map_err(|_| bad())?;
            if v >= 0.0 {
                return Ok(ErrorBudget::MaxUlp(v));
            }
            return Err(bad());
        }
        if let Some(r) = s.strip_prefix("rel") {
            let v: f64 = r.parse().map_err(|_| bad())?;
            if v >= 0.0 {
                return Ok(ErrorBudget::MaxRelative(v));
            }
            return Err(bad());
        }
        Err(bad())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::ErrorMeter;
    use crate::dot::{dot_f64, interleaved_reference};
    use crate::reference::f64_matmul;

    const RM: RoundMode = RoundMode::NearestEven;

    fn vecs(fmt: FpFormat, n: usize) -> (Vec<u64>, Vec<u64>) {
        let x = (0..n)
            .map(|i| SoftFloat::from_f64(fmt, (i as f64 * 0.37).sin()).bits())
            .collect();
        let y = (0..n)
            .map(|i| SoftFloat::from_f64(fmt, (i as f64 * 0.23).cos()).bits())
            .collect();
        (x, y)
    }

    #[test]
    fn uniform_policy_degenerates_to_interleaved_reference() {
        for fmt in FpFormat::PAPER_PRECISIONS {
            let (x, y) = vecs(fmt, 67);
            for la in [4u32, 9] {
                let got = mixed_dot(PrecisionPolicy::uniform(fmt), RM, &x, &y, 5, la);
                let want = interleaved_reference(fmt, RM, &x, &y, la as usize);
                assert_eq!(got.bits, want, "{fmt:?} la={la}");
            }
        }
    }

    #[test]
    fn uniform_cycle_charge_matches_dot_unit() {
        let fmt = FpFormat::SINGLE;
        let (x, y) = vecs(fmt, 64);
        for (lm, la) in [(3u32, 4u32), (7, 9)] {
            let mut unit = crate::dot::DotProductUnit::new(fmt, RM, lm, la);
            let (_, want_cycles) = unit.dot(&x, &y);
            let got = mixed_dot(PrecisionPolicy::uniform(fmt), RM, &x, &y, lm, la);
            assert_eq!(got.cycles, want_cycles, "lm={lm} la={la}");
        }
    }

    #[test]
    fn wide_accumulate_beats_uniform_on_dot_error() {
        let fmt = FpFormat::SINGLE;
        let (x, y) = vecs(fmt, 2048);
        let exact = dot_f64(fmt, &x, &y);
        let uni = mixed_dot(PrecisionPolicy::uniform(fmt), RM, &x, &y, 5, 9);
        let mix = mixed_dot(
            PrecisionPolicy::mixed(fmt, FpFormat::DOUBLE),
            RM,
            &x,
            &y,
            5,
            9,
        );
        let e_uni = (SoftFloat::from_bits(fmt, uni.bits).to_f64() - exact).abs();
        let e_mix = (SoftFloat::from_bits(fmt, mix.bits).to_f64() - exact).abs();
        assert!(e_mix <= e_uni, "mixed {e_mix} vs uniform {e_uni}");
    }

    #[test]
    fn mixed_matmul_parallel_is_bit_identical_for_any_worker_count() {
        let policy = PrecisionPolicy::new(FpFormat::SINGLE, FpFormat::DOUBLE, FpFormat::FP48);
        let a = Matrix::from_fn(policy.storage, 13, 9, |i, j| {
            ((i * 9 + j) as f64 * 0.21).sin()
        });
        let b = Matrix::from_fn(policy.storage, 9, 11, |i, j| {
            ((i * 2 + j) as f64 * 0.17).cos()
        });
        let (want, want_flags) = mixed_matmul(policy, RM, &a, &b);
        for threads in [1usize, 2, 3, 8] {
            let (got, got_flags) = mixed_matmul_parallel(policy, RM, &a, &b, threads);
            assert_eq!(got, want, "threads={threads}");
            assert_eq!(got_flags, want_flags, "threads={threads}");
        }
    }

    #[test]
    fn mixed_matmul_tracks_f64_closely_with_double_accumulate() {
        let fmt = FpFormat::SINGLE;
        let n = 24;
        let a = Matrix::from_fn(fmt, n, n, |i, j| ((i * n + j) as f64 * 0.13).sin());
        let b = Matrix::from_fn(fmt, n, n, |i, j| ((i + 3 * j) as f64 * 0.29).cos());
        let base = f64_matmul(&a, &b);
        let (c_uni, _) = mixed_matmul(PrecisionPolicy::uniform(fmt), RM, &a, &b);
        let (c_mix, _) = mixed_matmul(PrecisionPolicy::mixed(fmt, FpFormat::DOUBLE), RM, &a, &b);
        let mut m_uni = ErrorMeter::new(fmt, 1e-30);
        m_uni.record_matrix(&c_uni, &base);
        let mut m_mix = ErrorMeter::new(fmt, 1e-30);
        m_mix.record_matrix(&c_mix, &base);
        // With a double accumulator the accumulation itself is exact in
        // f64; what remains is one product rounding per term (at product
        // magnitude, ~1 here) plus the final narrowing.
        let bound = 0.5 * (n as f64 + 1.0) * crate::accuracy::ulp_at(fmt, 1.0);
        assert!(
            m_mix.stats().max_abs <= bound,
            "{:?} vs {bound}",
            m_mix.stats()
        );
        assert!(m_mix.stats().rms <= m_uni.stats().rms);
        assert!(m_mix.stats().max_abs <= m_uni.stats().max_abs);
    }

    #[test]
    fn mixed_mvm_rows_match_mixed_dot() {
        let policy = PrecisionPolicy::mixed(FpFormat::SINGLE, FpFormat::FP48);
        let a = Matrix::from_fn(policy.storage, 7, 33, |i, j| {
            ((i * 33 + j) as f64 * 0.11).sin()
        });
        let (x, _) = vecs(policy.storage, 33);
        let (y, _, _) = mixed_mvm(policy, RM, &a, &x, 5, 9);
        for (i, &got) in y.iter().enumerate() {
            let row: Vec<u64> = (0..33).map(|k| a.get(i, k)).collect();
            let want = mixed_dot(policy, RM, &row, &x, 5, 9);
            assert_eq!(got, want.bits, "row {i}");
        }
    }

    #[test]
    fn error_budget_parse_and_accept() {
        assert_eq!(
            "4ulp".parse::<ErrorBudget>().unwrap(),
            ErrorBudget::MaxUlp(4.0)
        );
        assert_eq!(
            "rel1e-6".parse::<ErrorBudget>().unwrap(),
            ErrorBudget::MaxRelative(1e-6)
        );
        for bad in ["", "ulp", "rel", "4", "-1ulp", "rel-2", "4 ulp"] {
            assert!(bad.parse::<ErrorBudget>().is_err(), "{bad:?}");
        }
        let stats = crate::accuracy::ErrorStats {
            max_ulp: 3.0,
            max_rel: 1e-7,
            ..Default::default()
        };
        assert!(ErrorBudget::MaxUlp(4.0).accepts(&stats));
        assert!(!ErrorBudget::MaxUlp(2.0).accepts(&stats));
        assert!(ErrorBudget::MaxRelative(1e-6).accepts(&stats));
        assert!(!ErrorBudget::MaxRelative(1e-8).accepts(&stats));
        // round trip of display
        assert_eq!("4ulp".parse::<ErrorBudget>().unwrap().to_string(), "4ulp");
    }

    #[test]
    fn storage_format_mismatch_panics() {
        let policy = PrecisionPolicy::uniform(FpFormat::SINGLE);
        let a = Matrix::zero(FpFormat::DOUBLE, 2, 2);
        let b = Matrix::zero(FpFormat::DOUBLE, 2, 2);
        let r = std::panic::catch_unwind(|| mixed_matmul(policy, RM, &a, &b));
        assert!(r.is_err());
    }
}
