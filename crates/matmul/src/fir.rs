//! FIR filter kernel — the classic streaming DSP workload of the
//! paper's application domain ("radar/sonar signal processing…").
//!
//! Architecture: the transposed-form systolic FIR. One MAC cell per tap;
//! each cycle every cell computes `acc_k = x·h_k + acc_{k+1}` and the
//! accumulator chain shifts one cell toward the output. In transposed
//! form there is **no recurrence on any single accumulator** — each
//! partial sum moves strictly forward — so deeply pipelined FP units need
//! no zero padding here; the pipeline depth only adds output latency.
//! This is the counterpoint to matmul's accumulation hazard, and the
//! reason the paper's "throughput not latency" unit-selection rule is
//! exactly right for FIR.
//!
//! Each cell's MAC is realized with the fused unit (one rounding), so
//! the reference is a fused-order convolution.

use fpfpga_fpu::mac::FusedMacUnit;
use fpfpga_fpu::FusedMacDesign;
use fpfpga_softfp::{FpFormat, RoundMode, SoftFloat};
use std::collections::VecDeque;

/// A cycle-accurate transposed-form FIR filter.
///
/// Retiming: in the classic transposed form the single register between
/// cells provides exactly the one-sample offset between neighbouring
/// taps. An `L`-stage MAC replaces that register with `L` cycles of
/// delay, so the broadcast input to cell `k` must be delayed by
/// `(n−1−k)·(L−1)` cycles to restore the alignment — the standard
/// retiming. The simulator keeps one skew line per cell and asserts the
/// alignment every cycle.
pub struct FirFilter {
    /// Tap coefficients, h[0] nearest the output.
    taps: Vec<u64>,
    /// One fused MAC per tap.
    cells: Vec<FusedMacUnit>,
    /// Input skew line per cell (length (n−1−k)·L).
    skew: Vec<VecDeque<Option<u64>>>,
    /// Accumulators travelling from cell k to cell k−1.
    carry: Vec<VecDeque<u64>>,
    mac_stages: u32,
    /// Cycles consumed.
    pub cycles: u64,
}

impl FirFilter {
    /// Build a filter from `f64` coefficients; each MAC has `mac_stages`
    /// pipeline stages.
    pub fn new(fmt: FpFormat, mode: RoundMode, coeffs: &[f64], mac_stages: u32) -> FirFilter {
        assert!(!coeffs.is_empty());
        assert!(mac_stages >= 1);
        let n = coeffs.len();
        let design = FusedMacDesign {
            format: fmt,
            round: mode,
        };
        FirFilter {
            taps: coeffs
                .iter()
                .map(|&h| SoftFloat::from_f64(fmt, h).bits())
                .collect(),
            cells: coeffs.iter().map(|_| design.unit(mac_stages)).collect(),
            skew: (0..n)
                .map(|k| {
                    let d = (n - 1 - k) as u32 * (mac_stages - 1);
                    (0..d).map(|_| None).collect()
                })
                .collect(),
            // The inter-cell accumulator register powers up at zero: the
            // first sample of each cell pairs with the zero history.
            carry: (0..n).map(|_| VecDeque::from([0u64])).collect(),
            mac_stages,
            cycles: 0,
        }
    }

    /// Number of taps.
    pub fn taps(&self) -> usize {
        self.taps.len()
    }

    /// Latency from sample `x[i]` to output `y[i]`: the head-tap skew
    /// plus one MAC traversal, `(n−1)·(L−1) + L` cycles.
    pub fn latency(&self) -> u64 {
        (self.taps.len() as u64 - 1) * (self.mac_stages as u64 - 1) + self.mac_stages as u64
    }

    /// Advance one cycle with an input sample (or a bubble); returns the
    /// output sample leaving cell 0, once the chain is primed.
    pub fn clock(&mut self, x: Option<u64>) -> Option<u64> {
        self.cycles += 1;
        let n = self.taps.len();
        let mut out = None;
        // Back to front: cell k+1 retires (and pushes its carry) before
        // cell k pops it in the same cycle — the register boundary.
        for k in (0..n).rev() {
            // Skewed input for this cell (empty line = no extra delay).
            self.skew[k].push_back(x);
            let xk = self.skew[k].pop_front().expect("skew line non-empty");
            let issue = match xk {
                Some(xv) => {
                    let acc = if k + 1 < n {
                        self.carry[k + 1]
                            .pop_front()
                            .expect("retimed carry present")
                    } else {
                        0 // the deepest cell starts each chain at +0
                    };
                    Some((xv, self.taps[k], acc))
                }
                None => None,
            };
            if let Some((v, _)) = self.cells[k].clock(issue) {
                if k == 0 {
                    out = Some(v);
                } else {
                    self.carry[k].push_back(v);
                }
            }
        }
        out
    }

    /// Filter a whole signal, returning the first `xs.len()` outputs
    /// (`y[i] = Σ_k h[k]·x[i−k]`, zero-padded history).
    pub fn filter(&mut self, xs: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(xs.len());
        for &x in xs {
            if let Some(y) = self.clock(Some(x)) {
                out.push(y);
            }
        }
        // Flush with zero samples until every real output has emerged.
        let deadline = 2 * self.latency() + self.taps.len() as u64 + 8 + xs.len() as u64;
        let mut waited = 0;
        while out.len() < xs.len() {
            if let Some(y) = self.clock(Some(0)) {
                out.push(y);
            }
            waited += 1;
            assert!(waited <= deadline, "flush did not converge");
        }
        out.truncate(xs.len());
        out
    }
}

/// Order-faithful reference: the transposed-form dataflow in `SoftFloat`
/// (fused MACs, accumulation from the deepest tap forward).
pub fn reference_fir(fmt: FpFormat, mode: RoundMode, coeffs: &[f64], xs: &[u64]) -> Vec<u64> {
    let taps: Vec<u64> = coeffs
        .iter()
        .map(|&h| SoftFloat::from_f64(fmt, h).bits())
        .collect();
    let n = taps.len();
    (0..xs.len())
        .map(|i| {
            // y[i] = fma(x[i-(n-1)], h[n-1], … fma(x[i], h[0]-order …))
            // transposed form accumulates from k = n-1 down to 0 with
            // x[i-k] entering at cell k.
            let mut acc = 0u64; // +0
            for k in (0..n).rev() {
                let x = if i >= k { xs[i - k] } else { 0 };
                let (r, _) = fpfpga_softfp::fma_bits(fmt, x, taps[k], acc, mode);
                acc = r;
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FpFormat = FpFormat::SINGLE;
    const RM: RoundMode = RoundMode::NearestEven;

    fn signal(n: usize) -> Vec<u64> {
        (0..n)
            .map(|i| SoftFloat::from_f64(F, (i as f64 * 0.4).sin()).bits())
            .collect()
    }

    #[test]
    fn impulse_response_is_the_taps() {
        let coeffs = [0.5, -0.25, 0.125, 1.0];
        let mut fir = FirFilter::new(F, RM, &coeffs, 3);
        let mut x = vec![0u64; 8];
        x[0] = SoftFloat::from_f64(F, 1.0).bits();
        let y = fir.filter(&x);
        for (i, &h) in coeffs.iter().enumerate() {
            let got = SoftFloat::from_bits(F, y[i]).to_f64();
            assert!((got - h).abs() < 1e-7, "y[{i}] = {got}, want {h}");
        }
        for &v in &y[coeffs.len()..] {
            assert_eq!(SoftFloat::from_bits(F, v).to_f64(), 0.0);
        }
    }

    #[test]
    fn matches_reference_bit_exact() {
        for stages in [1u32, 3, 7] {
            for taps in [1usize, 2, 5, 9] {
                let coeffs: Vec<f64> = (0..taps).map(|k| ((k + 1) as f64 * 0.3).cos()).collect();
                let xs = signal(32);
                let mut fir = FirFilter::new(F, RM, &coeffs, stages);
                let got = fir.filter(&xs);
                let want = reference_fir(F, RM, &coeffs, &xs);
                assert_eq!(got, want, "taps={taps} stages={stages}");
            }
        }
    }

    #[test]
    fn matches_f64_convolution() {
        let coeffs = [0.2f64, 0.3, 0.2, 0.15, 0.15];
        let xs = signal(64);
        let mut fir = FirFilter::new(F, RM, &coeffs, 5);
        let got = fir.filter(&xs);
        for i in 0..xs.len() {
            let want: f64 = coeffs
                .iter()
                .enumerate()
                .map(|(k, &h)| {
                    if i >= k {
                        h * SoftFloat::from_bits(F, xs[i - k]).to_f64()
                    } else {
                        0.0
                    }
                })
                .sum();
            let g = SoftFloat::from_bits(F, got[i]).to_f64();
            assert!((g - want).abs() < 1e-5, "y[{i}] = {g}, want {want}");
        }
    }

    #[test]
    fn no_padding_needed_at_any_depth() {
        // The transposed form has no accumulation recurrence: identical
        // outputs at every MAC depth, with only latency changing.
        let coeffs = [0.9, -0.4, 0.1];
        let xs = signal(24);
        let shallow = FirFilter::new(F, RM, &coeffs, 1).filter(&xs);
        let deep = FirFilter::new(F, RM, &coeffs, 12).filter(&xs);
        assert_eq!(shallow, deep);
    }

    #[test]
    fn throughput_is_one_sample_per_cycle() {
        let coeffs = [0.5f64; 8];
        let n = 128;
        let mut fir = FirFilter::new(F, RM, &coeffs, 6);
        let _ = fir.filter(&signal(n));
        // cycles = n + flush tail (bounded by the chain latency)
        assert!(fir.cycles >= n as u64);
        assert!(fir.cycles <= n as u64 + fir.latency() + coeffs.len() as u64 + 8);
    }
}
