//! Matrix-vector multiplication: `y = A·x` on a linear array.
//!
//! Each PE owns an interleaved set of matrix rows (`PE j` holds rows
//! `j, j+p, j+2p, …` in block RAM) and a [`DotProductUnit`][crate::dot::DotProductUnit]-style banked
//! accumulator; the vector `x` streams through the array once, and every
//! PE consumes each element against all of its rows' entries for that
//! column — one MAC per PE per cycle, the same full-utilization
//! discipline as the matmul kernel.
//!
//! Because one `x` element must feed `rows_per_pe` MACs, the stream
//! advances one column every `rows_per_pe` cycles: the architecture is
//! compute-bound (as MVM on FPGAs is memory-bound in practice, this is
//! the configuration that keeps every FP unit busy, which is the
//! regime the paper's throughput analysis assumes).

use crate::dot::interleaved_reference;
use crate::matrix::Matrix;
use fpfpga_fpu::sim::{DelayLineUnit, DelayOp, FpPipe};
use fpfpga_softfp::{Flags, FpFormat, RoundMode, SoftFloat};
use std::collections::VecDeque;

/// One MVM processing element: several matrix rows + a banked MAC.
struct MvmPe {
    /// Rows owned by this PE (row-major, one `Vec` per owned row).
    rows: Vec<Vec<u64>>,
    mult: DelayLineUnit,
    add: DelayLineUnit,
    /// bank[r][s]: partial sum s of owned row r.
    bank: Vec<Vec<u64>>,
    /// Delays each MAC's (row, slot) tag by the multiplier latency so it
    /// meets its product at the adder input.
    tag_line: VecDeque<Option<(usize, usize)>>,
    add_meta: VecDeque<Option<(usize, usize)>>,
    flags: Flags,
}

impl MvmPe {
    fn new(fmt: FpFormat, mode: RoundMode, lm: u32, la: u32, rows: Vec<Vec<u64>>) -> MvmPe {
        let banks = rows.len();
        MvmPe {
            rows,
            mult: DelayLineUnit::new(fmt, mode, DelayOp::Mul, lm),
            add: DelayLineUnit::new(fmt, mode, DelayOp::Add, la),
            bank: (0..banks).map(|_| vec![0; la as usize]).collect(),
            tag_line: (0..lm).map(|_| None).collect(),
            add_meta: (0..la).map(|_| None).collect(),
            flags: Flags::NONE,
        }
    }

    /// One clock: optionally issue the MAC (x element, column k, owned
    /// row index r).
    fn clock(&mut self, issue: Option<(u64, usize, usize)>) {
        let retiring = *self.add_meta.front().expect("meta non-empty");
        if let (Some((s, sf)), Some((r, slot))) = (self.add.peek(), retiring) {
            self.flags |= sf;
            self.bank[r][slot] = s;
        }
        let mult_in = issue.map(|(x, k, r)| (x, self.rows[r][k]));
        let product = self.mult.clock(mult_in);
        // The (row, slot) tag travels alongside: slot is chosen from the
        // issue column so each bank slot is revisited ≥ La cycles later.
        let tag = issue.map(|(_, k, r)| (r, k % self.bank[0].len()));
        // Delay the tag by the multiplier latency to meet the product.
        self.tag_line.push_back(tag);
        let tag_now = self.tag_line.pop_front().expect("tag line non-empty");
        debug_assert_eq!(product.is_some(), tag_now.is_some());
        let add_in = match (product, tag_now) {
            (Some((p, pf)), Some((r, slot))) => {
                self.flags |= pf;
                self.add_meta.push_back(Some((r, slot)));
                Some((p, self.bank[r][slot]))
            }
            _ => {
                self.add_meta.push_back(None);
                None
            }
        };
        self.add.clock(add_in);
        self.add_meta.pop_front();
    }
}

/// A matrix-vector engine of `p` PEs.
pub struct MvmEngine {
    fmt: FpFormat,
    mode: RoundMode,
    p: usize,
    lm: u32,
    la: u32,
}

impl MvmEngine {
    /// Configure an engine.
    pub fn new(
        fmt: FpFormat,
        mode: RoundMode,
        mult_stages: u32,
        add_stages: u32,
        p: usize,
    ) -> MvmEngine {
        assert!(p >= 1);
        MvmEngine {
            fmt,
            mode,
            p,
            lm: mult_stages,
            la: add_stages,
        }
    }

    /// Compute `y = A·x` cycle-accurately. Returns `(y, cycles)`.
    pub fn multiply(&self, a: &Matrix, x: &[u64]) -> (Vec<u64>, u64) {
        let n = a.rows();
        assert_eq!(a.cols(), x.len(), "dimension mismatch");
        // Distribute rows round-robin over PEs.
        let mut pes: Vec<MvmPe> = (0..self.p)
            .map(|j| {
                let rows: Vec<Vec<u64>> = (j..n)
                    .step_by(self.p)
                    .map(|i| (0..a.cols()).map(|k| a.get(i, k)).collect())
                    .collect();
                MvmPe::new(self.fmt, self.mode, self.lm, self.la, rows)
            })
            .collect();

        let rows_per_pe = n.div_ceil(self.p);
        let mut cycles = 0u64;
        // Stream: column k occupies rows_per_pe consecutive cycles; in
        // cycle (k, r) every PE MACs x[k] against its r-th owned row.
        // Hazard check: bank slot (r, k % La) is reused after exactly
        // rows_per_pe · La ≥ La cycles.
        for (k, &xk) in x.iter().enumerate() {
            for r in 0..rows_per_pe {
                cycles += 1;
                for pe in pes.iter_mut() {
                    let issue = if r < pe.rows.len() {
                        Some((xk, k, r))
                    } else {
                        None
                    };
                    pe.clock(issue);
                }
            }
        }
        // Drain.
        for _ in 0..(self.lm + self.la + 2) {
            cycles += 1;
            for pe in pes.iter_mut() {
                pe.clock(None);
            }
        }
        // Fold the banks (sequencer; charged at La cycles per fold level
        // per row — a small tail).
        let mut y = vec![0u64; n];
        for (j, pe) in pes.iter().enumerate() {
            for (r, bank) in pe.bank.iter().enumerate() {
                let i = j + r * self.p;
                let folded = fold_bank(self.fmt, self.mode, bank);
                y[i] = folded;
            }
        }
        cycles += (self.la as u64) * (self.la as f64).log2().ceil() as u64;
        (y, cycles)
    }

    /// [`MvmEngine::multiply`] through the pipes' batched fast path
    /// ([`FpPipe::run_batch`]): each matrix row computes its products in
    /// one bulk call and its round-robin accumulation in rounds of `La`
    /// independent adds — the exact per-cycle recurrence without the
    /// delay-line shuffle. Result bits and the cycle charge are
    /// identical to the per-cycle path.
    pub fn multiply_batched(&self, a: &Matrix, x: &[u64]) -> (Vec<u64>, u64) {
        let n = a.rows();
        assert_eq!(a.cols(), x.len(), "dimension mismatch");
        let la = self.la as usize;
        let mut mult = DelayLineUnit::new(self.fmt, self.mode, DelayOp::Mul, self.lm);
        let mut add = DelayLineUnit::new(self.fmt, self.mode, DelayOp::Add, self.la);
        let mut y = vec![0u64; n];
        // Per-row buffers hoisted out of the loop: one multiply batch,
        // `La`-wide accumulation rounds, no allocation per row.
        let mut pairs: Vec<(u64, u64)> = Vec::with_capacity(a.cols());
        let mut products: Vec<(u64, Flags)> = Vec::with_capacity(a.cols());
        let mut inputs: Vec<(u64, u64)> = Vec::with_capacity(la);
        let mut sums: Vec<(u64, Flags)> = Vec::with_capacity(la);
        let mut bank = vec![0u64; la];
        for (i, yi) in y.iter_mut().enumerate() {
            pairs.clear();
            pairs.extend((0..a.cols()).map(|k| (x[k], a.get(i, k))));
            products.clear();
            mult.run_batch_into(&pairs, &mut products);
            bank.fill(0);
            for round in products.chunks(la) {
                inputs.clear();
                inputs.extend(round.iter().enumerate().map(|(s, &(p, _))| (p, bank[s])));
                sums.clear();
                add.run_batch_into(&inputs, &mut sums);
                for (s, &(v, _)) in sums.iter().enumerate() {
                    bank[s] = v;
                }
            }
            *yi = fold_bank(self.fmt, self.mode, &bank);
        }
        // The same clock count the per-cycle array spends: stream +
        // drain + fold sequencer.
        let rows_per_pe = n.div_ceil(self.p) as u64;
        let cycles = a.cols() as u64 * rows_per_pe
            + (self.lm + self.la + 2) as u64
            + (self.la as u64) * (self.la as f64).log2().ceil() as u64;
        (y, cycles)
    }

    /// [`MvmEngine::multiply_batched`] with output rows fanned out over
    /// up to `threads` scoped workers: every row's computation is
    /// self-contained (its own product batch, accumulator bank and
    /// fold), so the result vector and cycle charge are bit-identical
    /// for every thread count. Each worker owns one pair of pipes plus
    /// one set of round buffers for its whole contiguous row chunk.
    pub fn multiply_batched_parallel(
        &self,
        a: &Matrix,
        x: &[u64],
        threads: usize,
    ) -> (Vec<u64>, u64) {
        let n = a.rows();
        assert_eq!(a.cols(), x.len(), "dimension mismatch");
        let la = self.la as usize;
        let mut y = vec![0u64; n];
        fpfpga_fpu::parallel_chunks_mut(threads, &mut y, |start, chunk| {
            let mut mult = DelayLineUnit::new(self.fmt, self.mode, DelayOp::Mul, self.lm);
            let mut add = DelayLineUnit::new(self.fmt, self.mode, DelayOp::Add, self.la);
            let mut pairs: Vec<(u64, u64)> = Vec::with_capacity(a.cols());
            let mut products: Vec<(u64, Flags)> = Vec::with_capacity(a.cols());
            let mut inputs: Vec<(u64, u64)> = Vec::with_capacity(la);
            let mut sums: Vec<(u64, Flags)> = Vec::with_capacity(la);
            let mut bank = vec![0u64; la];
            for (off, yi) in chunk.iter_mut().enumerate() {
                let i = start + off;
                pairs.clear();
                pairs.extend((0..a.cols()).map(|k| (x[k], a.get(i, k))));
                products.clear();
                mult.run_batch_into(&pairs, &mut products);
                bank.fill(0);
                for round in products.chunks(la) {
                    inputs.clear();
                    inputs.extend(round.iter().enumerate().map(|(s, &(p, _))| (p, bank[s])));
                    sums.clear();
                    add.run_batch_into(&inputs, &mut sums);
                    for (s, &(v, _)) in sums.iter().enumerate() {
                        bank[s] = v;
                    }
                }
                *yi = fold_bank(self.fmt, self.mode, &bank);
            }
        });
        let rows_per_pe = n.div_ceil(self.p) as u64;
        let cycles = a.cols() as u64 * rows_per_pe
            + (self.lm + self.la + 2) as u64
            + (self.la as u64) * (self.la as f64).log2().ceil() as u64;
        (y, cycles)
    }

    /// The reference with the engine's exact accumulation order.
    pub fn reference(&self, a: &Matrix, x: &[u64]) -> Vec<u64> {
        let n = a.rows();
        (0..n)
            .map(|i| {
                let row: Vec<u64> = (0..a.cols()).map(|k| a.get(i, k)).collect();
                interleaved_reference(self.fmt, self.mode, &row, x, self.la as usize)
            })
            .collect()
    }
}

/// Pairwise fold of a partial-sum bank (same order as the dot kernel).
fn fold_bank(fmt: FpFormat, mode: RoundMode, bank: &[u64]) -> u64 {
    let mut live: Vec<SoftFloat> = bank.iter().map(|&b| SoftFloat::from_bits(fmt, b)).collect();
    while live.len() > 1 {
        let mut next = Vec::with_capacity(live.len().div_ceil(2));
        let mut i = 0;
        while i + 1 < live.len() {
            let (s, _) = live[i].add(&live[i + 1], mode);
            next.push(s);
            i += 2;
        }
        if i < live.len() {
            next.push(live[i]);
        }
        live = next;
    }
    live[0].bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FpFormat = FpFormat::SINGLE;
    const RM: RoundMode = RoundMode::NearestEven;

    fn sample(n: usize, m: usize) -> (Matrix, Vec<u64>) {
        let a = Matrix::from_fn(F, n, m, |i, j| ((i * m + j) as f64 * 0.19).sin());
        let x: Vec<u64> = (0..m)
            .map(|k| SoftFloat::from_f64(F, (k as f64 * 0.31).cos()).bits())
            .collect();
        (a, x)
    }

    #[test]
    fn matches_interleaved_reference() {
        for (n, p) in [(6usize, 2usize), (8, 4), (9, 3), (5, 5), (7, 2)] {
            let (a, x) = sample(n, n);
            let eng = MvmEngine::new(F, RM, 4, 5, p);
            let (y, _) = eng.multiply(&a, &x);
            assert_eq!(y, eng.reference(&a, &x), "n={n} p={p}");
        }
    }

    #[test]
    fn batched_matches_per_cycle_bit_exact() {
        for (n, m, p) in [
            (6usize, 6usize, 2usize),
            (8, 8, 4),
            (9, 9, 3),
            (6, 10, 3),
            (5, 5, 5),
        ] {
            let (a, x) = sample(n, m);
            let eng = MvmEngine::new(F, RM, 4, 5, p);
            let (y_seq, c_seq) = eng.multiply(&a, &x);
            let (y_bat, c_bat) = eng.multiply_batched(&a, &x);
            assert_eq!(y_bat, y_seq, "values n={n} m={m} p={p}");
            assert_eq!(c_bat, c_seq, "cycles n={n} m={m} p={p}");
        }
    }

    #[test]
    fn parallel_batched_is_thread_count_invariant() {
        for (n, m, p) in [(6usize, 6usize, 2usize), (9, 9, 3), (6, 10, 3)] {
            let (a, x) = sample(n, m);
            let eng = MvmEngine::new(F, RM, 4, 5, p);
            let (y_seq, c_seq) = eng.multiply_batched(&a, &x);
            for threads in [0usize, 1, 2, 5] {
                let (y_par, c_par) = eng.multiply_batched_parallel(&a, &x, threads);
                assert_eq!(y_par, y_seq, "values n={n} m={m} threads={threads}");
                assert_eq!(c_par, c_seq, "cycles n={n} m={m} threads={threads}");
            }
        }
    }

    #[test]
    fn rectangular_matrices() {
        let (a, x) = sample(6, 10);
        let eng = MvmEngine::new(F, RM, 3, 6, 3);
        let (y, _) = eng.multiply(&a, &x);
        assert_eq!(y, eng.reference(&a, &x));
        assert_eq!(y.len(), 6);
    }

    #[test]
    fn close_to_f64() {
        let (a, x) = sample(16, 16);
        let eng = MvmEngine::new(F, RM, 7, 9, 4);
        let (y, _) = eng.multiply(&a, &x);
        for (i, &yi) in y.iter().enumerate() {
            let exact: f64 = (0..16)
                .map(|k| a.get_f64(i, k) * SoftFloat::from_bits(F, x[k]).to_f64())
                .sum();
            let got = SoftFloat::from_bits(F, yi).to_f64();
            assert!((got - exact).abs() < 1e-4, "row {i}: {got} vs {exact}");
        }
    }

    #[test]
    fn cycle_count_scales_with_work_per_pe() {
        let (a, x) = sample(16, 16);
        let fast = MvmEngine::new(F, RM, 4, 5, 16);
        let slow = MvmEngine::new(F, RM, 4, 5, 4);
        let (_, c_fast) = fast.multiply(&a, &x);
        let (_, c_slow) = slow.multiply(&a, &x);
        // 4 PEs do 4x the per-PE work of 16 PEs.
        assert!(c_slow > 3 * c_fast / 2, "c_slow={c_slow} c_fast={c_fast}");
    }
}
