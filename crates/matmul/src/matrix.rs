//! Dense matrices of raw floating-point encodings.

use fpfpga_softfp::{FpFormat, SoftFloat};

/// A dense n×m matrix of raw encodings in one format, row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    fmt: FpFormat,
    rows: usize,
    cols: usize,
    data: Vec<u64>,
}

impl Matrix {
    /// An all-zero matrix.
    pub fn zero(fmt: FpFormat, rows: usize, cols: usize) -> Matrix {
        Matrix {
            fmt,
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// The identity matrix.
    pub fn identity(fmt: FpFormat, n: usize) -> Matrix {
        let mut m = Matrix::zero(fmt, n, n);
        let one = SoftFloat::one(fmt).bits();
        for i in 0..n {
            m.set(i, i, one);
        }
        m
    }

    /// Build from raw bit patterns already encoded in `fmt`,
    /// row-major. The lossless constructor wire decoders need: no
    /// `f64` round-trip, every payload bit preserved.
    pub fn from_bits(fmt: FpFormat, rows: usize, cols: usize, data: Vec<u64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "entry count mismatch");
        Matrix {
            fmt,
            rows,
            cols,
            data,
        }
    }

    /// Build from `f64` entries (rounded to nearest into `fmt`).
    pub fn from_f64(fmt: FpFormat, rows: usize, cols: usize, entries: &[f64]) -> Matrix {
        assert_eq!(entries.len(), rows * cols, "entry count mismatch");
        Matrix {
            fmt,
            rows,
            cols,
            data: entries
                .iter()
                .map(|&x| SoftFloat::from_f64(fmt, x).bits())
                .collect(),
        }
    }

    /// Build from a generator function over (row, col).
    pub fn from_fn(
        fmt: FpFormat,
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(SoftFloat::from_f64(fmt, f(i, j)).bits());
            }
        }
        Matrix {
            fmt,
            rows,
            cols,
            data,
        }
    }

    /// Element access (raw bits).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element store (raw bits).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, bits: u64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = bits;
    }

    /// Element as `f64`.
    pub fn get_f64(&self, i: usize, j: usize) -> f64 {
        SoftFloat::from_bits(self.fmt, self.get(i, j)).to_f64()
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Format.
    pub fn format(&self) -> FpFormat {
        self.fmt
    }

    /// Raw data, row-major.
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// Maximum absolute elementwise difference from `other`, in `f64`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                worst = worst.max((self.get_f64(i, j) - other.get_f64(i, j)).abs());
            }
        }
        worst
    }

    /// An n×n sub-block view copied out: rows `bi·b..`, cols `bj·b..`,
    /// size `b` (must divide evenly).
    pub fn block(&self, bi: usize, bj: usize, b: usize) -> Matrix {
        let mut m = Matrix::zero(self.fmt, b, b);
        for i in 0..b {
            for j in 0..b {
                m.set(i, j, self.get(bi * b + i, bj * b + j));
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FpFormat = FpFormat::SINGLE;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_f64(F, 2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get_f64(0, 0), 1.0);
        assert_eq!(m.get_f64(1, 2), 6.0);
    }

    #[test]
    fn identity_diagonal() {
        let m = Matrix::identity(F, 4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get_f64(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_indexing() {
        let m = Matrix::from_fn(F, 3, 3, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.get_f64(2, 1), 21.0);
    }

    #[test]
    fn block_extraction() {
        let m = Matrix::from_fn(F, 4, 4, |i, j| (i * 4 + j) as f64);
        let b = m.block(1, 0, 2);
        assert_eq!(b.get_f64(0, 0), 8.0);
        assert_eq!(b.get_f64(1, 1), 13.0);
    }

    #[test]
    fn max_abs_diff_detects() {
        let a = Matrix::from_f64(F, 1, 2, &[1.0, 2.0]);
        let b = Matrix::from_f64(F, 1, 2, &[1.0, 2.5]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }
}
