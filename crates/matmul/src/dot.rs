//! Dot-product kernel: the other canonical "matrix and vector
//! operations" building block from the paper's application domain.
//!
//! A dot product is a *reduction*, so the deeply pipelined adder's
//! latency bites differently than in matmul: a single running
//! accumulator would stall `La` cycles per element. The classical fix —
//! used here — is a bank of `La` partial accumulators addressed
//! round-robin: each bank slot is touched once every `La` cycles, which
//! is exactly the adder's latency, so the recurrence is hazard-free at
//! full rate (the same "schedule around the latency" discipline the
//! paper applies to matmul). A final pairwise combine folds the bank.
//!
//! The accumulation *order* therefore differs from a sequential sum;
//! [`interleaved_reference`] reproduces it exactly, and the simulator is
//! tested bit-equal against it.

use fpfpga_fpu::sim::{DelayLineUnit, DelayOp, FpPipe};
use fpfpga_softfp::{Flags, FpFormat, RoundMode, SoftFloat};

/// Cycle-accurate dot-product unit: one multiplier pipe, one adder pipe,
/// a round-robin bank of `La` partial accumulators.
pub struct DotProductUnit {
    mult: DelayLineUnit,
    add: DelayLineUnit,
    /// Partial accumulators, one per adder stage.
    bank: Vec<u64>,
    /// Which bank slot the next retiring product accumulates into.
    issue_slot: usize,
    /// In-flight bookkeeping for the adder (slot index per operation).
    add_meta: std::collections::VecDeque<Option<usize>>,
    /// Accumulated exception flags.
    pub flags: Flags,
    /// Cycles consumed.
    pub cycles: u64,
}

impl DotProductUnit {
    /// A unit with the given pipeline depths.
    pub fn new(
        fmt: FpFormat,
        mode: RoundMode,
        mult_stages: u32,
        add_stages: u32,
    ) -> DotProductUnit {
        DotProductUnit {
            mult: DelayLineUnit::new(fmt, mode, DelayOp::Mul, mult_stages),
            add: DelayLineUnit::new(fmt, mode, DelayOp::Add, add_stages),
            bank: vec![0; add_stages as usize],
            issue_slot: 0,
            add_meta: (0..add_stages).map(|_| None).collect(),
            flags: Flags::NONE,
            cycles: 0,
        }
    }

    /// Adder latency (= bank size).
    pub fn la(&self) -> usize {
        self.bank.len()
    }

    fn clock(&mut self, input: Option<(u64, u64)>) {
        self.cycles += 1;
        // Write-back first (write-first forwarding, as in the matmul PE).
        let retiring = *self.add_meta.front().expect("meta non-empty");
        if let (Some((s, sf)), Some(slot)) = (self.add.peek(), retiring) {
            self.flags |= sf;
            self.bank[slot] = s;
        }
        // Multiply pipe advances; a retiring product issues an
        // accumulation into the next round-robin slot.
        let product = self.mult.clock(input);
        let add_input = product.map(|(p, pf)| {
            self.flags |= pf;
            let slot = self.issue_slot;
            self.issue_slot = (self.issue_slot + 1) % self.bank.len();
            self.add_meta.push_back(Some(slot));
            (p, self.bank[slot])
        });
        if add_input.is_none() {
            self.add_meta.push_back(None);
        }
        self.add.clock(add_input);
        self.add_meta.pop_front();
    }

    /// Compute `x · y` cycle-accurately. Returns the result bits and the
    /// cycles consumed (stream + drain + bank combine).
    pub fn dot(&mut self, x: &[u64], y: &[u64]) -> (u64, u64) {
        assert_eq!(x.len(), y.len(), "vector lengths must agree");
        let start = self.cycles;
        self.bank.fill(0);
        self.issue_slot = 0;
        for (&a, &b) in x.iter().zip(y) {
            self.clock(Some((a, b)));
        }
        // Drain both pipes.
        for _ in 0..(self.mult.latency() + self.add.latency() + 1) {
            self.clock(None);
        }
        // Fold the bank through the same adder pipe, pair by pair (the
        // hardware reuses the adder with a small sequencer; each fold
        // waits out the adder latency).
        let mut live = self.bank.clone();
        while live.len() > 1 {
            let mut next = Vec::with_capacity(live.len().div_ceil(2));
            let mut i = 0;
            while i + 1 < live.len() {
                // Issue the pair-add and wait for it (sequencer bubble).
                let mut out = None;
                let inp = Some((live[i], live[i + 1]));
                let mut first = true;
                while out.is_none() {
                    self.cycles += 1;
                    let product_stall = self.mult.clock(None);
                    debug_assert!(product_stall.is_none());
                    out = self.add.clock(if first { inp } else { None });
                    self.add_meta.push_back(None);
                    self.add_meta.pop_front();
                    first = false;
                }
                let (s, sf) = out.unwrap();
                self.flags |= sf;
                next.push(s);
                i += 2;
            }
            if i < live.len() {
                next.push(live[i]);
            }
            live = next;
        }
        (live[0], self.cycles - start)
    }

    /// [`DotProductUnit::dot`] through the pipes' batched fast path
    /// ([`FpPipe::run_batch`]): all products in one bulk call, then
    /// accumulation in rounds of `La` independent adds (one per bank
    /// slot — exactly the round-robin recurrence), then the same
    /// pairwise fold. Result bits, flags and the cycle charge are
    /// identical to the per-cycle path.
    pub fn dot_batched(&mut self, x: &[u64], y: &[u64]) -> (u64, u64) {
        assert_eq!(x.len(), y.len(), "vector lengths must agree");
        let start = self.cycles;
        self.bank.fill(0);
        let la = self.bank.len();
        let pairs: Vec<(u64, u64)> = x.iter().zip(y).map(|(&a, &b)| (a, b)).collect();
        let mut products = Vec::with_capacity(pairs.len());
        self.mult.run_batch_into(&pairs, &mut products);
        // Round buffers are reused across all `n / La` accumulation
        // rounds — the inner loop allocates nothing.
        let mut add_inputs: Vec<(u64, u64)> = Vec::with_capacity(la);
        let mut sums: Vec<(u64, Flags)> = Vec::with_capacity(la);
        for round in products.chunks(la) {
            add_inputs.clear();
            add_inputs.extend(round.iter().enumerate().map(|(s, &(p, pf))| {
                self.flags |= pf;
                (p, self.bank[s])
            }));
            sums.clear();
            self.add.run_batch_into(&add_inputs, &mut sums);
            for (s, &(v, sf)) in sums.iter().enumerate() {
                self.flags |= sf;
                self.bank[s] = v;
            }
        }
        self.issue_slot = pairs.len() % la;
        // Stream + drain, as the per-cycle path charges them.
        self.cycles +=
            pairs.len() as u64 + self.mult.latency() as u64 + self.add.latency() as u64 + 1;
        // Pairwise fold; each pair-add waits out the adder latency.
        let mut live = self.bank.clone();
        while live.len() > 1 {
            let mut next = Vec::with_capacity(live.len().div_ceil(2));
            let mut i = 0;
            while i + 1 < live.len() {
                sums.clear();
                self.add
                    .run_batch_into(&[(live[i], live[i + 1])], &mut sums);
                let (s, sf) = sums[0];
                self.flags |= sf;
                self.cycles += self.add.latency() as u64 + 1;
                next.push(s);
                i += 2;
            }
            if i < live.len() {
                next.push(live[i]);
            }
            live = next;
        }
        (live[0], self.cycles - start)
    }
}

/// The exact accumulation order of [`DotProductUnit::dot`]: products
/// land round-robin in `la` partial sums, which are then folded pairwise.
pub fn interleaved_reference(
    fmt: FpFormat,
    mode: RoundMode,
    x: &[u64],
    y: &[u64],
    la: usize,
) -> u64 {
    let mut bank = vec![SoftFloat::zero(fmt); la];
    for (i, (&a, &b)) in x.iter().zip(y).enumerate() {
        let (p, _) = SoftFloat::from_bits(fmt, a).mul(&SoftFloat::from_bits(fmt, b), mode);
        let (s, _) = bank[i % la].add(&p, mode);
        bank[i % la] = s;
    }
    let mut live = bank;
    while live.len() > 1 {
        let mut next = Vec::with_capacity(live.len().div_ceil(2));
        let mut i = 0;
        while i + 1 < live.len() {
            let (s, _) = live[i].add(&live[i + 1], mode);
            next.push(s);
            i += 2;
        }
        if i < live.len() {
            next.push(live[i]);
        }
        live = next;
    }
    live[0].bits()
}

/// `f64` reference for error measurement.
pub fn dot_f64(fmt: FpFormat, x: &[u64], y: &[u64]) -> f64 {
    x.iter()
        .zip(y)
        .map(|(&a, &b)| {
            SoftFloat::from_bits(fmt, a).to_f64() * SoftFloat::from_bits(fmt, b).to_f64()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FpFormat = FpFormat::SINGLE;
    const RM: RoundMode = RoundMode::NearestEven;

    fn vecs(n: usize) -> (Vec<u64>, Vec<u64>) {
        let x: Vec<u64> = (0..n)
            .map(|i| SoftFloat::from_f64(F, (i as f64 * 0.37).sin()).bits())
            .collect();
        let y: Vec<u64> = (0..n)
            .map(|i| SoftFloat::from_f64(F, (i as f64 * 0.23).cos()).bits())
            .collect();
        (x, y)
    }

    #[test]
    fn matches_interleaved_reference_bit_exact() {
        for (lm, la) in [(3u32, 4u32), (7, 9), (5, 12)] {
            for n in [1usize, 2, 7, 31, 64] {
                let (x, y) = vecs(n);
                let mut unit = DotProductUnit::new(F, RM, lm, la);
                let (got, _) = unit.dot(&x, &y);
                let want = interleaved_reference(F, RM, &x, &y, la as usize);
                assert_eq!(got, want, "n={n} lm={lm} la={la}");
            }
        }
    }

    #[test]
    fn batched_matches_per_cycle_bit_exact() {
        for (lm, la) in [(3u32, 4u32), (7, 9), (5, 12)] {
            for n in [0usize, 1, 2, 7, 31, 64] {
                let (x, y) = vecs(n);
                let mut seq = DotProductUnit::new(F, RM, lm, la);
                let mut bat = DotProductUnit::new(F, RM, lm, la);
                let (want, want_cycles) = seq.dot(&x, &y);
                let (got, got_cycles) = bat.dot_batched(&x, &y);
                assert_eq!(got, want, "value n={n} lm={lm} la={la}");
                assert_eq!(got_cycles, want_cycles, "cycles n={n} lm={lm} la={la}");
                assert_eq!(bat.flags, seq.flags, "flags n={n} lm={lm} la={la}");
            }
        }
    }

    #[test]
    fn close_to_f64() {
        let (x, y) = vecs(100);
        let mut unit = DotProductUnit::new(F, RM, 7, 9);
        let (got, _) = unit.dot(&x, &y);
        let exact = dot_f64(F, &x, &y);
        let got = SoftFloat::from_bits(F, got).to_f64();
        assert!((got - exact).abs() < 1e-4, "{got} vs {exact}");
    }

    #[test]
    fn empty_and_single() {
        let mut unit = DotProductUnit::new(F, RM, 4, 5);
        let (got, _) = unit.dot(&[], &[]);
        assert_eq!(got, 0);
        let x = [SoftFloat::from_f64(F, 3.0).bits()];
        let y = [SoftFloat::from_f64(F, 4.0).bits()];
        let (got, _) = unit.dot(&x, &y);
        assert_eq!(SoftFloat::from_bits(F, got).to_f64(), 12.0);
    }

    #[test]
    fn throughput_is_one_element_per_cycle() {
        // The streaming phase takes exactly n cycles; drain and combine
        // are bounded by the latencies, not by n.
        let n = 256;
        let (x, y) = vecs(n);
        let mut unit = DotProductUnit::new(F, RM, 7, 9);
        let (_, cycles) = unit.dot(&x, &y);
        let overhead = cycles - n as u64;
        assert!(overhead < 200, "fixed overhead = {overhead} cycles");
        // Doubling n adds exactly n cycles.
        let (x2, y2) = vecs(2 * n);
        let mut unit = DotProductUnit::new(F, RM, 7, 9);
        let (_, cycles2) = unit.dot(&x2, &y2);
        assert_eq!(cycles2 - cycles, n as u64);
    }

    #[test]
    fn deep_adders_change_order_not_accuracy() {
        let (x, y) = vecs(64);
        let exact = dot_f64(F, &x, &y);
        for la in [2u32, 5, 16] {
            let mut unit = DotProductUnit::new(F, RM, 4, la);
            let (got, _) = unit.dot(&x, &y);
            let got = SoftFloat::from_bits(F, got).to_f64();
            assert!((got - exact).abs() < 1e-4, "la={la}: {got} vs {exact}");
        }
    }

    #[test]
    fn flags_accumulate() {
        let big = SoftFloat::from_f64(F, f32::MAX as f64).bits();
        let mut unit = DotProductUnit::new(F, RM, 3, 4);
        let (_, _) = unit.dot(&[big, big], &[big, big]);
        assert!(unit.flags.overflow);
    }
}
