//! Property tests for the fabric's pipelining machinery over random
//! netlists: partition validity, conservation, monotonicity, and the
//! optimality of the balanced strategy.

use fpfpga_fabric::netlist::Netlist;
use fpfpga_fabric::pipeline::{pipeline, PipelineStrategy};
use fpfpga_fabric::primitives::Primitive;
use fpfpga_fabric::synthesis::SynthesisOptions;
use fpfpga_fabric::tech::Tech;
use fpfpga_fabric::timing;
use proptest::prelude::*;

/// A random primitive with bounded size.
fn primitive() -> impl Strategy<Value = Primitive> {
    prop_oneof![
        (2u32..64).prop_map(|bits| Primitive::Comparator { bits }),
        (2u32..64).prop_map(|bits| Primitive::Mux2 { bits }),
        (2u32..64).prop_map(|bits| Primitive::FixedAdder {
            bits,
            carry_ns_per_bit: 0.215
        }),
        (2u32..64).prop_map(|bits| Primitive::ConstAdder { bits }),
        (4u32..64, 1u32..7).prop_map(|(bits, levels)| Primitive::BarrelShifter { bits, levels }),
        (4u32..64, any::<bool>())
            .prop_map(|(bits, forced)| Primitive::PriorityEncoder { bits, forced }),
        (4u32..57).prop_map(|bits| Primitive::Mult18Tree { bits }),
        (4u32..40, 2u32..20).prop_map(|(bits, rows)| Primitive::DigitRecurrence { bits, rows }),
    ]
}

/// A random netlist of 1..8 components.
fn netlist() -> impl Strategy<Value = Netlist> {
    (
        proptest::collection::vec((primitive(), any::<bool>()), 1..8),
        8u32..64,
        0u32..12,
    )
        .prop_map(|(prims, out_w, sideband)| {
            let tech = Tech::virtex2pro();
            let mut n = Netlist::new("random", out_w, sideband);
            let mut any_critical = false;
            for (i, (p, parallel)) in prims.iter().enumerate() {
                let name = format!("c{i}");
                if *parallel && any_critical {
                    n.push_parallel(&name, p, &tech);
                } else {
                    n.push(&name, p, &tech);
                    any_critical = true;
                }
            }
            n
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Stage delays always sum to the critical-path delay (registers do
    /// not create or destroy combinational delay).
    #[test]
    fn partition_conserves_delay(n in netlist(), k in 1u32..40,
                                 strat in prop_oneof![
                                     Just(PipelineStrategy::Balanced),
                                     Just(PipelineStrategy::IterativeRefinement),
                                     Just(PipelineStrategy::EndLoaded)]) {
        let p = pipeline(&n, k, strat);
        let sum: f64 = p.stage_delays_ns.iter().sum();
        prop_assert!((sum - n.critical_delay_ns()).abs() < 1e-9);
        prop_assert_eq!(p.stage_delays_ns.len() as u32, p.stages);
        prop_assert!(p.stages <= n.max_stages().max(1));
        // cuts are strictly increasing and interior
        for w in p.cuts.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        if let (Some(&first), Some(&last)) = (p.cuts.first(), p.cuts.last()) {
            prop_assert!(first >= 1);
            prop_assert!(last < n.flat_atoms().len());
        }
    }

    /// The balanced partition is optimal: no other strategy beats it.
    #[test]
    fn balanced_is_minmax_optimal(n in netlist(), k in 1u32..24) {
        let b = pipeline(&n, k, PipelineStrategy::Balanced).worst_stage_ns();
        let i = pipeline(&n, k, PipelineStrategy::IterativeRefinement).worst_stage_ns();
        let e = pipeline(&n, k, PipelineStrategy::EndLoaded).worst_stage_ns();
        prop_assert!(b <= i + 1e-9);
        prop_assert!(b <= e + 1e-9);
        // ... and never better than the widest atom (the physical floor).
        let floor = n.flat_atoms().iter().map(|a| a.delay_ns).fold(0.0, f64::max);
        prop_assert!(b >= floor - 1e-9);
    }

    /// Deeper pipelines never lower the clock (balanced strategy).
    /// (Flip-flop count is *not* monotone in general: more, narrower
    /// cuts can cost fewer register bits than fewer, wider ones — so
    /// only a lower bound is asserted for it.)
    #[test]
    fn depth_monotonicity(n in netlist()) {
        let tech = Tech::virtex2pro();
        let mut last_clock = 0.0f64;
        let min_ffs = n.output_width + n.sideband_width; // output register floor
        for k in 1..=n.max_stages().min(24) {
            let r = timing::evaluate(&n, k, PipelineStrategy::Balanced, SynthesisOptions::SPEED, &tech);
            prop_assert!(r.clock_mhz >= last_clock - 1e-9, "k={}", k);
            prop_assert!(r.ffs >= min_ffs, "k={}", k);
            last_clock = r.clock_mhz;
        }
    }

    /// Tool objectives order consistently on any netlist: speed flow is
    /// never slower and never smaller than the area flow.
    #[test]
    fn objectives_order(n in netlist(), k in 1u32..16) {
        let tech = Tech::virtex2pro();
        let fast = timing::evaluate(&n, k, PipelineStrategy::Balanced, SynthesisOptions::SPEED, &tech);
        let small = timing::evaluate(&n, k, PipelineStrategy::Balanced, SynthesisOptions::AREA, &tech);
        prop_assert!(fast.clock_mhz >= small.clock_mhz - 1e-9);
        prop_assert!(fast.slices >= small.slices);
    }

    /// The same netlist on the older Virtex-E family is never faster.
    #[test]
    fn virtex_e_never_faster(n in netlist(), k in 1u32..16) {
        let new = timing::evaluate(&n, k, PipelineStrategy::Balanced, SynthesisOptions::SPEED,
                                   &Tech::virtex2pro());
        let old = timing::evaluate(&n, k, PipelineStrategy::Balanced, SynthesisOptions::SPEED,
                                   &Tech::virtex_e());
        prop_assert!(old.clock_mhz <= new.clock_mhz + 1e-9);
    }
}
