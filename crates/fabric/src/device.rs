//! Virtex-II Pro device catalogue.
//!
//! Resource counts follow the Xilinx Virtex-II Pro data sheet (DS083).
//! The paper targets the largest part, the XC2VP125, for its
//! whole-device matrix-multiplication numbers.

use crate::area::AreaCost;
use crate::tech::Tech;

/// An FPGA device: the resources available to fill with processing
/// elements.
#[derive(Clone, Debug, PartialEq)]
pub struct Device {
    /// Part name, e.g. "XC2VP125".
    pub name: &'static str,
    /// Logic slices (each two 4-LUTs and two flip-flops).
    pub slices: u32,
    /// 18×18 embedded multiplier blocks.
    pub mult18x18s: u32,
    /// 18 Kbit block RAMs.
    pub brams: u32,
    /// Embedded PowerPC 405 cores (unused by the kernels, listed for
    /// completeness of the platform-FPGA description in the paper's
    /// introduction).
    pub ppc_cores: u32,
}

impl Device {
    /// The paper's target: XC2VP125, speed grade -7, FF1696 package.
    pub const XC2VP125: Device = Device {
        name: "XC2VP125",
        slices: 55_616,
        mult18x18s: 556,
        brams: 556,
        ppc_cores: 4,
    };
    /// XC2VP100.
    pub const XC2VP100: Device = Device {
        name: "XC2VP100",
        slices: 44_096,
        mult18x18s: 444,
        brams: 444,
        ppc_cores: 2,
    };
    /// XC2VP70.
    pub const XC2VP70: Device = Device {
        name: "XC2VP70",
        slices: 33_088,
        mult18x18s: 328,
        brams: 328,
        ppc_cores: 2,
    };
    /// XC2VP50.
    pub const XC2VP50: Device = Device {
        name: "XC2VP50",
        slices: 23_616,
        mult18x18s: 232,
        brams: 232,
        ppc_cores: 2,
    };
    /// XC2VP30.
    pub const XC2VP30: Device = Device {
        name: "XC2VP30",
        slices: 13_696,
        mult18x18s: 136,
        brams: 136,
        ppc_cores: 2,
    };
    /// XC2VP20.
    pub const XC2VP20: Device = Device {
        name: "XC2VP20",
        slices: 9_280,
        mult18x18s: 88,
        brams: 88,
        ppc_cores: 2,
    };
    /// XC2VP7.
    pub const XC2VP7: Device = Device {
        name: "XC2VP7",
        slices: 4_928,
        mult18x18s: 44,
        brams: 44,
        ppc_cores: 1,
    };
    /// XC2VP4.
    pub const XC2VP4: Device = Device {
        name: "XC2VP4",
        slices: 3_008,
        mult18x18s: 28,
        brams: 28,
        ppc_cores: 1,
    };
    /// XC2VP2 — smallest of the family.
    pub const XC2VP2: Device = Device {
        name: "XC2VP2",
        slices: 1_408,
        mult18x18s: 12,
        brams: 12,
        ppc_cores: 0,
    };

    /// Whole catalogue, ascending by size.
    pub const CATALOG: [Device; 9] = [
        Device::XC2VP2,
        Device::XC2VP4,
        Device::XC2VP7,
        Device::XC2VP20,
        Device::XC2VP30,
        Device::XC2VP50,
        Device::XC2VP70,
        Device::XC2VP100,
        Device::XC2VP125,
    ];

    /// How many copies of a resource bill fit on the device, leaving
    /// `reserve_fraction` of the slices for interconnect, I/O logic and
    /// control (designs that "occupy the whole device" still route at
    /// ~85-90% slice utilization).
    pub fn fit(&self, unit: &AreaCost, tech: &Tech, reserve_fraction: f64) -> u32 {
        let usable_slices = (self.slices as f64 * (1.0 - reserve_fraction)).floor();
        let unit_slices = unit.slices(tech);
        let by_slices = if unit_slices > 0.0 {
            (usable_slices / unit_slices) as u32
        } else {
            u32::MAX
        };
        let by_mults = self.mult18x18s.checked_div(unit.bmults).unwrap_or(u32::MAX);
        let by_brams = self.brams.checked_div(unit.brams).unwrap_or(u32::MAX);
        by_slices.min(by_mults).min(by_brams)
    }

    /// Utilization fractions for `count` copies of `unit`.
    pub fn utilization(&self, unit: &AreaCost, count: u32, tech: &Tech) -> Utilization {
        let total = *unit * count as f64;
        Utilization {
            slices: total.slices(tech) / self.slices as f64,
            mult18x18s: total.bmults as f64 / self.mult18x18s as f64,
            brams: total.brams as f64 / self.brams as f64,
        }
    }
}

/// Fractional utilization of each resource class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Utilization {
    /// Slice utilization in [0, 1+].
    pub slices: f64,
    /// Embedded-multiplier utilization.
    pub mult18x18s: f64,
    /// Block-RAM utilization.
    pub brams: f64,
}

impl Utilization {
    /// The binding (largest) utilization.
    pub fn max(&self) -> f64 {
        self.slices.max(self.mult18x18s).max(self.brams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_by_slices() {
        for w in Device::CATALOG.windows(2) {
            assert!(w[0].slices < w[1].slices);
        }
    }

    #[test]
    fn xc2vp125_resources() {
        let d = Device::XC2VP125;
        assert_eq!(d.slices, 55_616);
        assert_eq!(d.mult18x18s, 556);
        assert_eq!(d.brams, 556);
    }

    #[test]
    fn fit_by_binding_resource() {
        let t = Tech::virtex2pro();
        // A unit needing 1000 LUTs (≈500 slices) and 4 BMULTs:
        let unit = AreaCost {
            luts: 1000.0,
            ffs: 0.0,
            bmults: 4,
            brams: 1,
            routing_slices: 0.0,
        };
        let d = Device::XC2VP125;
        let n = d.fit(&unit, &t, 0.10);
        // slices bound: 0.9·55616/500 ≈ 100; mult bound: 556/4 = 139.
        assert_eq!(n, 100);
        // With huge BMULT demand the multiplier becomes binding.
        let unit2 = AreaCost {
            luts: 100.0,
            ffs: 0.0,
            bmults: 16,
            brams: 0,
            routing_slices: 0.0,
        };
        assert_eq!(d.fit(&unit2, &t, 0.10), 556 / 16);
    }

    #[test]
    fn utilization_adds_up() {
        let t = Tech::virtex2pro();
        let unit = AreaCost {
            luts: 1112.32,
            ffs: 0.0,
            bmults: 2,
            brams: 2,
            routing_slices: 0.0,
        };
        let u = Device::XC2VP125.utilization(&unit, 100, &t);
        assert!((u.slices - 1.0).abs() < 0.01);
        assert!((u.mult18x18s - 200.0 / 556.0).abs() < 1e-12);
        assert!(u.max() >= u.brams);
    }

    #[test]
    fn zero_resource_units_do_not_bind() {
        let t = Tech::virtex2pro();
        let unit = AreaCost::luts(2.0);
        let n = Device::XC2VP2.fit(&unit, &t, 0.0);
        assert_eq!(n, 1408);
    }
}
