//! Pipeline register insertion.
//!
//! Two strategies are provided:
//!
//! * [`PipelineStrategy::IterativeRefinement`] — the paper's methodology:
//!   "After synthesize, place & route, we identify the critical path of
//!   the implementation. A new pipeline stage is then inserted to break
//!   down the critical path … We repeat this process until diminishing
//!   returns occur." Each step splits the currently-longest stage at its
//!   best internal atom boundary.
//! * [`PipelineStrategy::Balanced`] — an optimal min-max partition
//!   (dynamic program), the upper bound a perfect tool flow could reach.
//!   Used by the ablation bench to quantify how close the paper's greedy
//!   process gets.
//! * [`PipelineStrategy::EndLoaded`] — a deliberately naive placement
//!   (registers bunched at the back), the ablation's lower bound.

use crate::netlist::Netlist;
use crate::primitives::Atom;

/// Register-placement strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PipelineStrategy {
    /// The paper's iterative critical-path splitting.
    IterativeRefinement,
    /// Optimal min-max stage partition (dynamic programming).
    Balanced,
    /// Naive: cut as late as possible (each trailing atom its own stage).
    EndLoaded,
}

/// The result of pipelining a netlist into `stages` stages.
#[derive(Clone, Debug)]
pub struct Pipelined {
    /// Number of pipeline stages (= latency in cycles; the initiation
    /// interval is 1 — the cores accept an operand pair every cycle).
    pub stages: u32,
    /// Combinational delay of each stage (ns).
    pub stage_delays_ns: Vec<f64>,
    /// Flip-flops consumed by the inter-stage registers and the output
    /// register.
    pub register_ffs: u32,
    /// Atom-boundary cut positions (ascending, `stages - 1` entries):
    /// a cut at `c` places a register after flattened atom `c - 1`.
    pub cuts: Vec<usize>,
}

impl Pipelined {
    /// Worst-case stage delay (sets the clock).
    pub fn worst_stage_ns(&self) -> f64 {
        self.stage_delays_ns.iter().copied().fold(0.0, f64::max)
    }
}

/// Partition the netlist's critical path into `stages` pipeline stages.
///
/// `stages` is clamped to `[1, netlist.max_stages()]` — one stage means a
/// single output register (fully combinational core), the maximum is one
/// register after every atom.
pub fn pipeline(netlist: &Netlist, stages: u32, strategy: PipelineStrategy) -> Pipelined {
    let atoms = netlist.flat_atoms();
    assert!(
        !atoms.is_empty(),
        "netlist {} has no critical-path atoms",
        netlist.name
    );
    let k = stages.clamp(1, atoms.len() as u32) as usize;

    let cuts = match strategy {
        PipelineStrategy::Balanced => balanced_cuts(&atoms, k),
        PipelineStrategy::IterativeRefinement => iterative_cuts(&atoms, k),
        PipelineStrategy::EndLoaded => end_loaded_cuts(&atoms, k),
    };
    debug_assert_eq!(cuts.len(), k - 1);
    debug_assert!(cuts.windows(2).all(|w| w[0] < w[1]));

    // Stage delays and register widths from the chosen cut set.
    let mut stage_delays = Vec::with_capacity(k);
    let mut ffs = 0u64;
    let mut start = 0usize;
    for (i, &cut) in cuts.iter().chain(std::iter::once(&atoms.len())).enumerate() {
        let d: f64 = atoms[start..cut].iter().map(|a| a.delay_ns).sum();
        stage_delays.push(d);
        if i < cuts.len() {
            ffs += atoms[cut - 1].cut_width as u64;
        }
        start = cut;
    }
    // Output register: result bus + side band.
    ffs += (netlist.output_width + netlist.sideband_width) as u64;

    Pipelined {
        stages: k as u32,
        stage_delays_ns: stage_delays,
        register_ffs: ffs as u32,
        cuts,
    }
}

/// Optimal min-max partition of `atoms` into `k` contiguous groups.
/// O(n²·k) dynamic program — n is at most a few hundred.
fn balanced_cuts(atoms: &[Atom], k: usize) -> Vec<usize> {
    let n = atoms.len();
    let mut prefix = vec![0.0f64; n + 1];
    for (i, a) in atoms.iter().enumerate() {
        prefix[i + 1] = prefix[i] + a.delay_ns;
    }
    let seg = |i: usize, j: usize| prefix[j] - prefix[i]; // delay of atoms[i..j]

    // dp[j][i] = minimal worst-stage over atoms[0..i] split into j stages
    let mut dp = vec![vec![f64::INFINITY; n + 1]; k + 1];
    let mut choice = vec![vec![0usize; n + 1]; k + 1];
    for (i, first_stage) in dp[1].iter_mut().enumerate().skip(1) {
        *first_stage = seg(0, i);
    }
    for j in 2..=k {
        for i in j..=n {
            // last stage = atoms[c..i]
            for c in (j - 1)..i {
                let v = dp[j - 1][c].max(seg(c, i));
                if v < dp[j][i] - 1e-15 {
                    dp[j][i] = v;
                    choice[j][i] = c;
                }
            }
        }
    }
    let mut cuts = Vec::with_capacity(k - 1);
    let mut i = n;
    for j in (2..=k).rev() {
        let c = choice[j][i];
        cuts.push(c);
        i = c;
    }
    cuts.reverse();
    cuts
}

/// The paper's iterative refinement: repeatedly split the longest stage
/// at the internal boundary that minimizes the larger of the two halves.
fn iterative_cuts(atoms: &[Atom], k: usize) -> Vec<usize> {
    let n = atoms.len();
    let mut prefix = vec![0.0f64; n + 1];
    for (i, a) in atoms.iter().enumerate() {
        prefix[i + 1] = prefix[i] + a.delay_ns;
    }
    let seg = |i: usize, j: usize| prefix[j] - prefix[i];

    let mut cuts: Vec<usize> = Vec::new(); // sorted cut positions
    while cuts.len() < k - 1 {
        // Find the longest current stage.
        let mut bounds = Vec::with_capacity(cuts.len() + 2);
        bounds.push(0);
        bounds.extend_from_slice(&cuts);
        bounds.push(n);
        let (mut worst_i, mut worst_d) = (0usize, -1.0f64);
        for w in 0..bounds.len() - 1 {
            let d = seg(bounds[w], bounds[w + 1]);
            if d > worst_d {
                worst_d = d;
                worst_i = w;
            }
        }
        let (lo, hi) = (bounds[worst_i], bounds[worst_i + 1]);
        if hi - lo < 2 {
            // The longest stage is a single atom: splitting anything else
            // cannot reduce the critical path, but the requested depth
            // must still be honoured — split the longest splittable stage.
            let mut best: Option<(f64, usize)> = None;
            for w in 0..bounds.len() - 1 {
                let (l, h) = (bounds[w], bounds[w + 1]);
                if h - l >= 2 {
                    let d = seg(l, h);
                    if best.is_none_or(|(bd, _)| d > bd) {
                        best = Some((d, w));
                    }
                }
            }
            let Some((_, w)) = best else { break }; // fully cut
            let (l, h) = (bounds[w], bounds[w + 1]);
            let c = best_split(&prefix, l, h);
            cuts.push(c);
            cuts.sort_unstable();
            continue;
        }
        let c = best_split(&prefix, lo, hi);
        cuts.push(c);
        cuts.sort_unstable();
    }
    cuts
}

/// The internal cut of `[lo, hi)` minimizing max(left, right).
fn best_split(prefix: &[f64], lo: usize, hi: usize) -> usize {
    let seg = |i: usize, j: usize| prefix[j] - prefix[i];
    let mut best_c = lo + 1;
    let mut best_v = f64::INFINITY;
    for c in lo + 1..hi {
        let v = seg(lo, c).max(seg(c, hi));
        if v < best_v {
            best_v = v;
            best_c = c;
        }
    }
    best_c
}

/// Naive end-loaded placement: the last k−1 atom boundaries.
fn end_loaded_cuts(atoms: &[Atom], k: usize) -> Vec<usize> {
    let n = atoms.len();
    ((n - (k - 1))..n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;
    use crate::primitives::Primitive;
    use crate::tech::Tech;

    fn sample_netlist() -> Netlist {
        let t = Tech::virtex2pro();
        let mut n = Netlist::new("test", 32, 5);
        n.push(
            "adder",
            &Primitive::FixedAdder {
                bits: 54,
                carry_ns_per_bit: 0.215,
            },
            &t,
        );
        n.push(
            "shift",
            &Primitive::BarrelShifter {
                bits: 54,
                levels: 6,
            },
            &t,
        );
        n.push(
            "pe",
            &Primitive::PriorityEncoder {
                bits: 54,
                forced: true,
            },
            &t,
        );
        n
    }

    #[test]
    fn one_stage_is_whole_path() {
        let n = sample_netlist();
        let p = pipeline(&n, 1, PipelineStrategy::Balanced);
        assert_eq!(p.stages, 1);
        assert!((p.worst_stage_ns() - n.critical_delay_ns()).abs() < 1e-9);
        assert_eq!(p.register_ffs, 32 + 5); // output register only
    }

    #[test]
    fn stages_clamped_to_max() {
        let n = sample_netlist();
        let max = n.max_stages();
        let p = pipeline(&n, max + 50, PipelineStrategy::Balanced);
        assert_eq!(p.stages, max);
    }

    #[test]
    fn worst_stage_monotonically_improves() {
        let n = sample_netlist();
        let mut last = f64::INFINITY;
        for k in 1..=n.max_stages() {
            let p = pipeline(&n, k, PipelineStrategy::Balanced);
            assert!(p.worst_stage_ns() <= last + 1e-9, "stage {k} regressed");
            last = p.worst_stage_ns();
        }
    }

    #[test]
    fn balanced_never_worse_than_others() {
        let n = sample_netlist();
        for k in 1..=n.max_stages() {
            let b = pipeline(&n, k, PipelineStrategy::Balanced).worst_stage_ns();
            let i = pipeline(&n, k, PipelineStrategy::IterativeRefinement).worst_stage_ns();
            let e = pipeline(&n, k, PipelineStrategy::EndLoaded).worst_stage_ns();
            assert!(b <= i + 1e-9, "k={k}: balanced {b} vs iterative {i}");
            assert!(b <= e + 1e-9, "k={k}: balanced {b} vs end-loaded {e}");
        }
    }

    #[test]
    fn iterative_close_to_balanced() {
        // The paper's greedy methodology tracks the optimum within 2x on
        // realistic datapaths (earlier cuts are locked in, so shallow
        // depths can land ~40% off), and converges toward it with depth.
        let n = sample_netlist();
        for k in 2..=12 {
            let b = pipeline(&n, k, PipelineStrategy::Balanced).worst_stage_ns();
            let i = pipeline(&n, k, PipelineStrategy::IterativeRefinement).worst_stage_ns();
            assert!(i <= b * 2.0, "k={k}: iterative {i} vs balanced {b}");
        }
        let b12 = pipeline(&n, 12, PipelineStrategy::Balanced).worst_stage_ns();
        let i12 = pipeline(&n, 12, PipelineStrategy::IterativeRefinement).worst_stage_ns();
        assert!(i12 <= b12 * 1.35, "deep: iterative {i12} vs balanced {b12}");
    }

    #[test]
    fn register_ffs_grow_with_depth() {
        let n = sample_netlist();
        let shallow = pipeline(&n, 2, PipelineStrategy::Balanced).register_ffs;
        let deep = pipeline(&n, 12, PipelineStrategy::Balanced).register_ffs;
        assert!(deep > shallow * 3, "deep {deep} vs shallow {shallow}");
    }

    #[test]
    fn stage_delays_sum_to_total() {
        let n = sample_netlist();
        for k in [1, 3, 7] {
            let p = pipeline(&n, k, PipelineStrategy::IterativeRefinement);
            let sum: f64 = p.stage_delays_ns.iter().sum();
            assert!((sum - n.critical_delay_ns()).abs() < 1e-9);
        }
    }

    #[test]
    fn end_loaded_cut_positions() {
        let n = sample_netlist();
        let total_atoms = n.flat_atoms().len();
        let p = pipeline(&n, 3, PipelineStrategy::EndLoaded);
        // First stage holds everything except the last two atoms.
        assert_eq!(p.stage_delays_ns.len(), 3);
        let first: f64 = p.stage_delays_ns[0];
        let atoms = n.flat_atoms();
        let expect: f64 = atoms[..total_atoms - 2].iter().map(|a| a.delay_ns).sum();
        assert!((first - expect).abs() < 1e-9);
    }
}
