//! Technology calibration constants.
//!
//! All delay/area formulas in the fabric model read their coefficients
//! from a [`Tech`] value, so the whole model can be re-calibrated in one
//! place (and ablation benches can perturb single constants).
//!
//! The default constants model a Virtex-II Pro, speed grade -7, as driven
//! by ISE 5.2i, and are fitted to the anchor points the paper states in
//! prose (see each field's doc comment). The anchors are *throughput*
//! statements — "X can achieve Y MHz" — so delays here include typical
//! local routing; the flip-flop overhead (`t_ff_ns`) is added once per
//! pipeline stage by the timing model.

/// Calibration constants for the fabric's delay and area models.
#[derive(Clone, Debug, PartialEq)]
pub struct Tech {
    // ---- delays (ns) ----
    /// One 4-input LUT plus its local routing: the entry cost of any
    /// fabric logic level.
    pub t_lut_route_ns: f64,
    /// Carry-chain propagation per bit (MUXCY/XORCY). The paper's 54-bit
    /// adder needs 4 pipeline stages for 200 MHz, which anchors this at a
    /// value far above the raw silicon figure because it folds in the
    /// inter-chunk routing of a pipelined adder.
    pub t_carry_per_bit_ns: f64,
    /// Carry-chain propagation per bit for a pure comparator chain
    /// (MUXCY only, no sum XOR): anchored by "comparators of a bitwidth
    /// ≤ 11 can achieve 250 MHz" and "the [53-bit] mantissa comparator
    /// for double precision can achieve 220 MHz".
    pub t_cmp_per_bit_ns: f64,
    /// One barrel-shifter mux level (LUT mux + route): anchored by
    /// "three muxes in serial … more than 200 MHz can be achieved"
    /// and "higher frequencies require two-mux stages".
    pub t_mux_level_ns: f64,
    /// One level of a priority-encoder cascade.
    pub t_prienc_level_ns: f64,
    /// Combinational delay through an 18×18 embedded multiplier block.
    pub t_mult18_ns: f64,
    /// The embedded multiplier's optional internal register splits it in
    /// two; this is each half.
    pub t_mult18_half_ns: f64,
    /// Block-RAM access time (clock-to-out).
    pub t_bram_ns: f64,
    /// Flip-flop overhead per pipeline stage: clock-to-out + setup +
    /// clock skew. Sets the frequency asymptote of deep pipelining.
    pub t_ff_ns: f64,
    /// Global clock-network ceiling (MHz). "Recent FPGA devices …
    /// capable of achieving frequencies up to 300 MHz."
    pub f_max_mhz: f64,

    // ---- area ----
    /// Usable fraction of the flip-flops that sit unused in
    /// logic-occupied slices. Pipelining "can exploit the unused
    /// flipflops present in the slices … and cause only a moderate
    /// increase in area" — but placement never reaches all of them.
    pub free_ff_utilization: f64,
    /// LUTs consumed per skew/control register bit chain element when a
    /// pipelined adder must delay-balance its operands (SRL16s absorb
    /// most of it; this is the residual).
    pub skew_lut_per_bit: f64,

    // ---- tool behaviour ----
    /// Logic-replication area factor under a *speed* synthesis objective.
    pub speed_obj_area_factor: f64,
    /// Delay improvement factor under a *speed* synthesis objective.
    pub speed_obj_delay_factor: f64,
    /// Delay penalty factor under an *area* synthesis objective.
    pub area_obj_delay_factor: f64,
    /// Extra routing-only slices (fraction of logic slices) consumed when
    /// place-and-route runs with a speed objective.
    pub speed_par_slice_factor: f64,
    /// Delay factor for place-and-route with a speed objective.
    pub speed_par_delay_factor: f64,
}

impl Tech {
    /// Virtex-II Pro, speed grade -7, ISE 5.2i-era tools.
    pub const fn virtex2pro() -> Tech {
        Tech {
            t_lut_route_ns: 1.05,
            t_carry_per_bit_ns: 0.215,
            t_cmp_per_bit_ns: 0.017,
            t_mux_level_ns: 1.18,
            t_prienc_level_ns: 1.25,
            t_mult18_ns: 4.4,
            t_mult18_half_ns: 2.55,
            t_bram_ns: 2.6,
            t_ff_ns: 0.95,
            f_max_mhz: 320.0,
            free_ff_utilization: 0.60,
            skew_lut_per_bit: 0.0625, // one SRL16 LUT per 16 delayed bits
            speed_obj_area_factor: 1.14,
            speed_obj_delay_factor: 0.92,
            area_obj_delay_factor: 1.07,
            speed_par_slice_factor: 0.06,
            speed_par_delay_factor: 0.96,
        }
    }

    /// Clock rate (MHz) for a given worst-stage combinational delay.
    pub fn clock_mhz(&self, worst_stage_ns: f64) -> f64 {
        let period = worst_stage_ns + self.t_ff_ns;
        (1000.0 / period).min(self.f_max_mhz)
    }
}

impl Tech {
    /// Virtex-E, speed grade -8 — the previous device generation (the
    /// Quixilica datasheet numbers the paper cites were measured on
    /// VirtexE-8). No embedded multipliers existed yet: the multiplier
    /// tree constants here model a LUT-based partial-product array, and
    /// everything is roughly 40-60% slower.
    pub const fn virtex_e() -> Tech {
        Tech {
            t_lut_route_ns: 1.55,
            t_carry_per_bit_ns: 0.32,
            t_cmp_per_bit_ns: 0.028,
            t_mux_level_ns: 1.75,
            t_prienc_level_ns: 1.85,
            t_mult18_ns: 9.5,      // LUT-array multiplier segment
            t_mult18_half_ns: 5.0, // (no hard blocks on this family)
            t_bram_ns: 3.8,
            t_ff_ns: 1.35,
            f_max_mhz: 240.0,
            free_ff_utilization: 0.60,
            skew_lut_per_bit: 0.0625,
            speed_obj_area_factor: 1.14,
            speed_obj_delay_factor: 0.92,
            area_obj_delay_factor: 1.07,
            speed_par_slice_factor: 0.06,
            speed_par_delay_factor: 0.96,
        }
    }
}

impl Default for Tech {
    fn default() -> Tech {
        Tech::virtex2pro()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_includes_ff_overhead() {
        let t = Tech::virtex2pro();
        let f = t.clock_mhz(4.0);
        assert!((f - 1000.0 / 4.95).abs() < 1e-9);
    }

    #[test]
    fn clock_is_capped() {
        let t = Tech::virtex2pro();
        assert_eq!(t.clock_mhz(0.0), t.f_max_mhz);
    }

    #[test]
    fn virtex_e_is_uniformly_slower() {
        let old = Tech::virtex_e();
        let new = Tech::virtex2pro();
        assert!(old.t_lut_route_ns > new.t_lut_route_ns);
        assert!(old.t_carry_per_bit_ns > new.t_carry_per_bit_ns);
        assert!(old.t_ff_ns > new.t_ff_ns);
        assert!(old.f_max_mhz < new.f_max_mhz);
        // The Quixilica datasheet's "169 MFLOPS on VirtexE-8" adder is
        // plausible on this model: a moderately pipelined adder path of
        // ~4.5 ns/stage lands in the 150-200 MHz band.
        assert!((140.0..210.0).contains(&old.clock_mhz(4.5)));
    }

    // The prose anchors. These are the calibration contract: if a constant
    // changes, these tests say which paper statement broke.

    #[test]
    fn anchor_comparator_11bit_reaches_250mhz() {
        let t = Tech::virtex2pro();
        // comparator delay model: entry LUT + n bits of compare chain
        let d = t.t_lut_route_ns + 11.0 * t.t_cmp_per_bit_ns + 1.6; // + swap-path route
        assert!(t.clock_mhz(d) >= 250.0, "f = {}", t.clock_mhz(d));
    }

    #[test]
    fn anchor_three_mux_levels_reach_200mhz() {
        let t = Tech::virtex2pro();
        let d = 3.0 * t.t_mux_level_ns;
        assert!(t.clock_mhz(d) >= 200.0, "f = {}", t.clock_mhz(d));
        // ... and two-mux stages are needed for "higher" (≥ 280 MHz) rates
        let d2 = 2.0 * t.t_mux_level_ns;
        assert!(t.clock_mhz(d2) >= 280.0, "f = {}", t.clock_mhz(d2));
    }
}
