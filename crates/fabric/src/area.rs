//! Resource accounting: slices, LUTs, flip-flops, embedded multipliers
//! and block RAMs.
//!
//! Virtex-II Pro slices hold two 4-LUTs and two flip-flops each. The
//! model keeps LUTs and FFs as the primary quantities (they are what the
//! primitives generate) and derives slices with a packing model: logic
//! claims `ceil(luts/2)` slices whose spare flip-flops partially absorb
//! pipeline registers — the paper's observation that "pipelining can
//! exploit the unused flipflops present in the slices … and cause only a
//! moderate increase in area" — with the remainder spilling into
//! FF-only slices.

use crate::tech::Tech;
use core::ops::{Add, AddAssign, Mul};

/// A resource bill. LUT/FF counts are kept as `f64` internally because
/// model formulas are continuous; reports round up.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AreaCost {
    /// 4-input LUTs used for logic (including route-throughs).
    pub luts: f64,
    /// Flip-flops (pipeline registers, sync outputs, control).
    pub ffs: f64,
    /// Embedded 18×18 multiplier blocks.
    pub bmults: u32,
    /// 18 Kbit block RAMs.
    pub brams: u32,
    /// Extra slices used purely for routing (speed-objective P&R).
    pub routing_slices: f64,
}

impl AreaCost {
    /// A bill with only logic LUTs.
    pub fn luts(luts: f64) -> AreaCost {
        AreaCost {
            luts,
            ..Default::default()
        }
    }

    /// A bill with only flip-flops.
    pub fn ffs(ffs: f64) -> AreaCost {
        AreaCost {
            ffs,
            ..Default::default()
        }
    }

    /// Total slices under the packing model described at module level.
    pub fn slices(&self, tech: &Tech) -> f64 {
        let logic_slices = (self.luts / 2.0).ceil();
        let free_ffs = 2.0 * logic_slices * tech.free_ff_utilization;
        let spill_ffs = (self.ffs - free_ffs).max(0.0);
        logic_slices + (spill_ffs / 2.0).ceil() + self.routing_slices.ceil()
    }

    /// Rounded LUT count for reports.
    pub fn luts_rounded(&self) -> u32 {
        self.luts.ceil() as u32
    }

    /// Rounded FF count for reports.
    pub fn ffs_rounded(&self) -> u32 {
        self.ffs.ceil() as u32
    }
}

impl Add for AreaCost {
    type Output = AreaCost;
    fn add(self, rhs: AreaCost) -> AreaCost {
        AreaCost {
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            bmults: self.bmults + rhs.bmults,
            brams: self.brams + rhs.brams,
            routing_slices: self.routing_slices + rhs.routing_slices,
        }
    }
}

impl AddAssign for AreaCost {
    fn add_assign(&mut self, rhs: AreaCost) {
        *self = *self + rhs;
    }
}

impl Mul<f64> for AreaCost {
    type Output = AreaCost;
    /// Scale a bill by a replication count (for multi-unit architectures).
    fn mul(self, k: f64) -> AreaCost {
        AreaCost {
            luts: self.luts * k,
            ffs: self.ffs * k,
            bmults: (self.bmults as f64 * k).round() as u32,
            brams: (self.brams as f64 * k).round() as u32,
            routing_slices: self.routing_slices * k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Tech {
        Tech::virtex2pro()
    }

    #[test]
    fn logic_only_slices() {
        let a = AreaCost::luts(100.0);
        assert_eq!(a.slices(&tech()), 50.0);
    }

    #[test]
    fn ffs_absorb_into_free_slots_first() {
        // 100 LUTs → 50 slices → 100 FF slots, 60 usable at η=0.6.
        let mut a = AreaCost::luts(100.0);
        a.ffs = 60.0;
        assert_eq!(a.slices(&tech()), 50.0);
        a.ffs = 61.0;
        assert_eq!(a.slices(&tech()), 51.0);
        a.ffs = 100.0;
        assert_eq!(a.slices(&tech()), 70.0);
    }

    #[test]
    fn ff_only_design() {
        let a = AreaCost::ffs(64.0);
        assert_eq!(a.slices(&tech()), 32.0);
    }

    #[test]
    fn add_and_scale() {
        let a = AreaCost {
            luts: 10.0,
            ffs: 4.0,
            bmults: 1,
            brams: 2,
            routing_slices: 0.0,
        };
        let b = a + a;
        assert_eq!(b.luts, 20.0);
        assert_eq!(b.bmults, 2);
        let c = a * 3.0;
        assert_eq!(c.brams, 6);
        assert_eq!(c.ffs, 12.0);
    }

    #[test]
    fn routing_slices_count() {
        let mut a = AreaCost::luts(10.0);
        a.routing_slices = 3.2;
        assert_eq!(a.slices(&tech()), 5.0 + 4.0);
    }
}
