//! Arbitrary-precision (multi-limb) core models.
//!
//! The paper stops at double precision, but its methodology — describe
//! each subunit as delay atoms, insert registers, re-run timing —
//! extends mechanically to the wide formats the `softfp::limb` kernels
//! compute (f128, f256, arbitrary `e<E>f<F>`). This module builds the
//! same adder/multiplier/fma datapath netlists the ≤64-bit cores use,
//! with every bus width derived from the wide significand:
//!
//! * the mantissa multiplier becomes a multi-BMULT tree —
//!   `ceil(sig/17)²` embedded 18×18 blocks plus the fabric adder tree
//!   that sums the partial products (113-bit f128 significands take 49
//!   BMULTs, 237-bit f256 significands take 196);
//! * the alignment/normalization barrel shifters grow to
//!   `sig + GRS` data bits with `log2` mux levels, which is where the
//!   achievable clock goes first;
//! * carry chains lengthen linearly with limb count, so the pipeline
//!   depth needed to hold a target clock grows roughly linearly in
//!   limbs for the adder and superlinearly for the multiplier tree.
//!
//! [`ApFormat::depth_for_clock`] exposes that last relation directly:
//! the minimum pipeline depth at which the core sustains a requested
//! frequency — the number the serving layer uses to price `apfloat`
//! jobs.

use crate::netlist::Netlist;
use crate::primitives::{log2_ceil, Primitive};
use crate::report::ImplementationReport;
use crate::synthesis::SynthesisOptions;
use crate::tech::Tech;
use crate::timing;
use crate::PipelineStrategy;

/// Guard/round/sticky bits carried through the wide adder datapath
/// (same as the scalar cores).
const GRS_BITS: u32 = 3;

/// An arbitrary-precision floating-point geometry: `1 + exp_bits +
/// frac_bits` total encoding bits, significand `frac_bits + 1` wide.
/// Mirrors `fpfpga_softfp::limb::LimbFormat` without a crate
/// dependency (the fabric model only needs the widths).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ApFormat {
    /// Exponent field width in bits.
    pub exp_bits: u32,
    /// Fraction field width in bits (excluding the hidden one).
    pub frac_bits: u32,
}

impl ApFormat {
    /// IEEE 754 binary128: 15-bit exponent, 112-bit fraction.
    pub const F128: ApFormat = ApFormat {
        exp_bits: 15,
        frac_bits: 112,
    };

    /// A binary256-style format: 19-bit exponent, 236-bit fraction.
    pub const F256: ApFormat = ApFormat {
        exp_bits: 19,
        frac_bits: 236,
    };

    /// An arbitrary geometry.
    pub const fn new(exp_bits: u32, frac_bits: u32) -> ApFormat {
        ApFormat {
            exp_bits,
            frac_bits,
        }
    }

    /// Total encoding width (sign + exponent + fraction).
    pub const fn total_bits(self) -> u32 {
        1 + self.exp_bits + self.frac_bits
    }

    /// Significand width including the hidden bit.
    pub const fn sig_bits(self) -> u32 {
        self.frac_bits + 1
    }

    /// 64-bit limbs per encoding (the software kernels' storage unit,
    /// and the natural word granularity of the wide register files).
    pub const fn limbs(self) -> u32 {
        self.total_bits().div_ceil(64)
    }

    /// 18×18 embedded multiplier blocks consumed by the mantissa
    /// multiplier tree: `ceil(sig/17)²` partial products.
    pub const fn bmults(self) -> u32 {
        let n = self.sig_bits().div_ceil(17);
        n * n
    }

    /// The wide adder/subtractor netlist: the scalar adder's dataflow
    /// (compare/swap → align → add → normalize → round) with every bus
    /// at the wide significand width.
    pub fn adder_netlist(self, tech: &Tech) -> Netlist {
        let sig = self.sig_bits();
        let wide = sig + GRS_BITS;
        let mut n = Netlist::new(
            &format!("apfloat e{}f{} adder", self.exp_bits, self.frac_bits),
            self.total_bits(),
            self.exp_bits + 6,
        );
        n.push(
            "mantissa comparator",
            &Primitive::Comparator { bits: sig },
            tech,
        )
        .push_parallel(
            "exponent comparator",
            &Primitive::Comparator {
                bits: self.exp_bits,
            },
            tech,
        )
        .push("swap mux", &Primitive::Mux2 { bits: sig }, tech)
        .push(
            "align shifter",
            &Primitive::BarrelShifter {
                bits: wide,
                levels: log2_ceil(wide),
            },
            tech,
        )
        .push(
            "mantissa adder",
            &Primitive::FixedAdder {
                bits: wide,
                carry_ns_per_bit: tech.t_carry_per_bit_ns,
            },
            tech,
        )
        .push("carry shift mux", &Primitive::Mux2 { bits: wide }, tech)
        .push(
            "priority encoder",
            &Primitive::PriorityEncoder {
                bits: wide,
                forced: true,
            },
            tech,
        )
        .push(
            "normalize shifter",
            &Primitive::BarrelShifter {
                bits: wide,
                levels: log2_ceil(wide),
            },
            tech,
        )
        .push(
            "mantissa round adder",
            &Primitive::ConstAdder { bits: sig },
            tech,
        )
        .push_parallel(
            "exponent adjust",
            &Primitive::ConstAdder {
                bits: self.exp_bits,
            },
            tech,
        );
        n
    }

    /// The wide multiplier netlist: multi-BMULT mantissa tree, exponent
    /// add/bias-subtract in parallel, small normalize, round.
    pub fn multiplier_netlist(self, tech: &Tech) -> Netlist {
        let sig = self.sig_bits();
        let mut n = Netlist::new(
            &format!("apfloat e{}f{} multiplier", self.exp_bits, self.frac_bits),
            self.total_bits(),
            self.exp_bits + 6,
        );
        n.push(
            "mantissa multiplier tree",
            &Primitive::Mult18Tree { bits: sig },
            tech,
        )
        .push_parallel(
            "exponent adder",
            &Primitive::FixedAdder {
                bits: self.exp_bits + 1,
                carry_ns_per_bit: tech.t_carry_per_bit_ns,
            },
            tech,
        )
        .push("normalize mux", &Primitive::Mux2 { bits: sig + 1 }, tech)
        .push(
            "mantissa round adder",
            &Primitive::ConstAdder { bits: sig },
            tech,
        );
        n
    }

    /// The wide fused multiply-add netlist: the multiplier tree feeding
    /// a triple-width align/add/normalize tail (the product is `2·sig`
    /// wide and the addend anchors up to `sig` above it).
    pub fn fma_netlist(self, tech: &Tech) -> Netlist {
        let sig = self.sig_bits();
        let acc = 2 * sig + GRS_BITS;
        let mut n = Netlist::new(
            &format!("apfloat e{}f{} fma", self.exp_bits, self.frac_bits),
            self.total_bits(),
            self.exp_bits + 6,
        );
        n.push(
            "mantissa multiplier tree",
            &Primitive::Mult18Tree { bits: sig },
            tech,
        )
        .push_parallel(
            "exponent adder",
            &Primitive::FixedAdder {
                bits: self.exp_bits + 1,
                carry_ns_per_bit: tech.t_carry_per_bit_ns,
            },
            tech,
        )
        .push(
            "addend align shifter",
            &Primitive::BarrelShifter {
                bits: acc,
                levels: log2_ceil(acc),
            },
            tech,
        )
        .push(
            "accumulator adder",
            &Primitive::FixedAdder {
                bits: acc,
                carry_ns_per_bit: tech.t_carry_per_bit_ns,
            },
            tech,
        )
        .push(
            "priority encoder",
            &Primitive::PriorityEncoder {
                bits: acc,
                forced: true,
            },
            tech,
        )
        .push(
            "normalize shifter",
            &Primitive::BarrelShifter {
                bits: acc,
                levels: log2_ceil(acc),
            },
            tech,
        )
        .push(
            "mantissa round adder",
            &Primitive::ConstAdder { bits: sig },
            tech,
        );
        n
    }

    /// Pipeline-depth sweep of one wide core (the Figure-2 methodology
    /// applied past double precision).
    pub fn sweep(
        self,
        netlist: &Netlist,
        opts: SynthesisOptions,
        tech: &Tech,
    ) -> Vec<ImplementationReport> {
        timing::sweep_stages(netlist, PipelineStrategy::IterativeRefinement, opts, tech)
    }

    /// Minimum pipeline depth at which `netlist` sustains `clock_mhz`,
    /// with its report — or `None` if no depth reaches it. This is the
    /// "depth as a function of limb count" relation: sweep it over
    /// formats of growing width at a fixed clock target.
    pub fn depth_for_clock(
        self,
        netlist: &Netlist,
        opts: SynthesisOptions,
        tech: &Tech,
        clock_mhz: f64,
    ) -> Option<ImplementationReport> {
        self.sweep(netlist, opts, tech)
            .into_iter()
            .find(|r| r.clock_mhz >= clock_mhz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Tech {
        Tech::default()
    }

    #[test]
    fn bmult_counts_scale_quadratically_with_width() {
        assert_eq!(ApFormat::new(8, 23).bmults(), 4); // f32: 24-bit sig
        assert_eq!(ApFormat::new(11, 52).bmults(), 16); // f64: 53-bit sig
        assert_eq!(ApFormat::F128.bmults(), 49); // 113-bit sig → 7²
        assert_eq!(ApFormat::F256.bmults(), 196); // 237-bit sig → 14²
        assert_eq!(ApFormat::F128.limbs(), 2);
        assert_eq!(ApFormat::F256.limbs(), 4);
    }

    #[test]
    fn multiplier_area_reports_the_tree_bmults() {
        let t = tech();
        let fmt = ApFormat::F128;
        let reports = fmt.sweep(&fmt.multiplier_netlist(&t), SynthesisOptions::default(), &t);
        assert!(!reports.is_empty());
        for r in &reports {
            assert_eq!(r.bmults, fmt.bmults());
        }
    }

    #[test]
    fn deeper_pipelines_raise_the_clock_monotonically_enough() {
        // The sweep's best clock at high depth must beat the 1-stage
        // clock by a wide margin for every wide core.
        let t = tech();
        for fmt in [ApFormat::F128, ApFormat::F256] {
            for nl in [
                fmt.adder_netlist(&t),
                fmt.multiplier_netlist(&t),
                fmt.fma_netlist(&t),
            ] {
                let reports = fmt.sweep(&nl, SynthesisOptions::default(), &t);
                let first = reports.first().unwrap().clock_mhz;
                let best = reports.iter().map(|r| r.clock_mhz).fold(0.0, f64::max);
                assert!(
                    best > 2.0 * first,
                    "{}: pipelining only {first:.1} -> {best:.1} MHz",
                    nl.name
                );
            }
        }
    }

    #[test]
    fn depth_to_hold_a_clock_grows_with_limb_count() {
        // The headline scaling law: at a fixed clock target, wider
        // formats need deeper adder pipelines.
        let t = tech();
        let opts = SynthesisOptions::default();
        let target = 100.0;
        let mut last_depth = 0;
        for fmt in [
            ApFormat::new(11, 52),
            ApFormat::F128,
            ApFormat::F256,
            ApFormat::new(23, 488), // 8-limb format
        ] {
            let nl = fmt.adder_netlist(&t);
            let r = fmt
                .depth_for_clock(&nl, opts, &t, target)
                .unwrap_or_else(|| panic!("{}: {target} MHz unreachable", nl.name));
            assert!(
                r.stages >= last_depth,
                "{}: depth {} < previous {}",
                nl.name,
                r.stages,
                last_depth
            );
            last_depth = r.stages;
        }
        assert!(last_depth > 1, "widest format should need real pipelining");
    }
}
