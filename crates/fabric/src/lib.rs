//! # fpfpga-fabric — analytical model of an FPGA fabric (Virtex-II Pro class)
//!
//! The paper implements its floating-point cores in VHDL, synthesizes them
//! with Xilinx ISE 5.2i and places-and-routes them on a Virtex-II Pro
//! XC2VP125-7. That toolchain (and the silicon) is unavailable here, so
//! this crate is the substitute substrate: a *calibrated analytical model*
//! of the device family and of the synthesis / place-and-route process,
//! detailed enough to reproduce every quantity the paper reports —
//! slices, LUTs, flip-flops, achievable clock rate, and their variation
//! with the number of pipeline stages and with tool optimization
//! objectives.
//!
//! ## Model structure
//!
//! * [`tech`] — the calibration constants (primitive delays and area
//!   formulas). Anchored on the figures the paper states in prose:
//!   comparators of ≤ 11 bits reach 250 MHz and take n/2 slices; barrel
//!   shifters take (n·log₂n)/2 slices and need ≤ 3 mux levels per stage
//!   for 200 MHz; a 54-bit fixed-point adder reaches 200 MHz with 4
//!   pipeline stages; a 54-bit multiplier needs 7 stages for 200 MHz.
//! * [`primitives`] — each hardware subunit (comparator, adder, barrel
//!   shifter, priority encoder, embedded-multiplier tree, …) described as
//!   a sequence of **delay atoms**: indivisible combinational segments
//!   between which a pipeline register may legally be inserted, each
//!   annotated with the bus width a register at that point would have to
//!   latch.
//! * [`netlist`] — a datapath as an ordered chain of components (with
//!   fast side-paths contributing area but not delay), the granularity at
//!   which the FPU cores are assembled.
//! * [`pipeline`] — register insertion: the paper's iterative
//!   "synthesize, find critical path, break it" methodology plus an
//!   optimal balanced partition for comparison.
//! * [`synthesis`] — speed/area optimization objectives for the synthesis
//!   and place-and-route steps, which the paper stresses give "vastly
//!   different results".
//! * [`timing`] / [`area`] — stage delay → clock rate, and the
//!   slice/LUT/FF accounting including the paper's observation that
//!   pipelining can exploit flip-flops already present in occupied slices.
//! * [`device`] — the Virtex-II Pro catalog with resource counts, used to
//!   fill a device with processing elements for the matmul kernel.

pub mod apfloat;
pub mod area;
pub mod device;
pub mod netlist;
pub mod pipeline;
pub mod primitives;
pub mod report;
pub mod synthesis;
pub mod tech;
pub mod timing;

pub use apfloat::ApFormat;
pub use area::AreaCost;
pub use device::Device;
pub use netlist::{Component, Netlist};
pub use pipeline::{PipelineStrategy, Pipelined};
pub use primitives::Primitive;
pub use report::ImplementationReport;
pub use synthesis::{Objective, SynthesisOptions};
pub use tech::Tech;
