//! Datapath netlists.
//!
//! A [`Netlist`] is an ordered chain of [`Component`]s, each built from
//! one primitive (or custom atoms). The floating-point cores of the paper
//! are, at this granularity, linear chains: the multiplier's exponent
//! adder and the adder's sign/exception logic run *in parallel* with the
//! mantissa path and finish earlier, so such components are marked
//! off-critical-path — they contribute area and register width but not
//! delay.

use crate::area::AreaCost;
use crate::primitives::{Atom, Primitive};
use crate::tech::Tech;

/// One subunit instance in a datapath.
#[derive(Clone, Debug)]
pub struct Component {
    /// Human-readable subunit name ("mantissa swapper", "align shifter"…).
    pub name: String,
    /// Delay atoms in dataflow order.
    pub atoms: Vec<Atom>,
    /// Resource bill, excluding pipeline registers.
    pub area: AreaCost,
    /// Whether this component sits on the main (mantissa) path. Parallel
    /// side-path components are faster than the segment of main path they
    /// overlap, so they never set the critical path.
    pub on_critical_path: bool,
}

impl Component {
    /// Build a component from a primitive.
    pub fn from_primitive(name: &str, p: &Primitive, tech: &Tech) -> Component {
        Component {
            name: name.to_string(),
            atoms: p.atoms(tech),
            area: p.area(tech),
            on_critical_path: true,
        }
    }

    /// Build an off-critical-path (parallel) component from a primitive.
    pub fn parallel(name: &str, p: &Primitive, tech: &Tech) -> Component {
        Component {
            on_critical_path: false,
            ..Component::from_primitive(name, p, tech)
        }
    }

    /// Total combinational delay of this component.
    pub fn delay_ns(&self) -> f64 {
        self.atoms.iter().map(|a| a.delay_ns).sum()
    }
}

/// A datapath: components in dataflow order plus interface widths.
#[derive(Clone, Debug)]
pub struct Netlist {
    /// Descriptive name ("fp32 adder", "fp64 multiplier"…).
    pub name: String,
    /// Components in dataflow order.
    pub components: Vec<Component>,
    /// Width of the result bus (always registered at the output).
    pub output_width: u32,
    /// Side-band bits (sign, exponent-in-flight, exception flags, DONE)
    /// that every pipeline register must additionally latch.
    pub sideband_width: u32,
}

impl Netlist {
    /// Create an empty netlist.
    pub fn new(name: &str, output_width: u32, sideband_width: u32) -> Netlist {
        Netlist {
            name: name.to_string(),
            components: Vec::new(),
            output_width,
            sideband_width,
        }
    }

    /// Append a component on the main path.
    pub fn push(&mut self, name: &str, p: &Primitive, tech: &Tech) -> &mut Self {
        self.components
            .push(Component::from_primitive(name, p, tech));
        self
    }

    /// Append a parallel (off-critical-path) component.
    pub fn push_parallel(&mut self, name: &str, p: &Primitive, tech: &Tech) -> &mut Self {
        self.components.push(Component::parallel(name, p, tech));
        self
    }

    /// Base area: the sum over components, excluding pipeline registers.
    pub fn base_area(&self) -> AreaCost {
        self.components
            .iter()
            .fold(AreaCost::default(), |acc, c| acc + c.area)
    }

    /// Total unpipelined combinational delay of the critical path.
    pub fn critical_delay_ns(&self) -> f64 {
        self.components
            .iter()
            .filter(|c| c.on_critical_path)
            .map(Component::delay_ns)
            .sum()
    }

    /// Flatten the critical path into a single atom sequence for the
    /// pipeliner. Every atom's cut width is widened by the side band.
    pub fn flat_atoms(&self) -> Vec<Atom> {
        self.components
            .iter()
            .filter(|c| c.on_critical_path)
            .flat_map(|c| c.atoms.iter())
            .map(|a| Atom::new(a.delay_ns, a.cut_width + self.sideband_width))
            .collect()
    }

    /// Number of legal register positions (atom boundaries, excluding the
    /// mandatory output register): the maximum pipeline depth is
    /// `max_stages() = flat_atoms().len()`.
    pub fn max_stages(&self) -> u32 {
        self.flat_atoms().len() as u32
    }

    /// A human-readable component table: name, path role, delay, LUTs —
    /// the "generated design report" of the netlist.
    pub fn component_table(&self) -> String {
        use core::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} ({} components, critical path {:.2} ns):",
            self.name,
            self.components.len(),
            self.critical_delay_ns()
        );
        let _ = writeln!(
            s,
            "  {:<28} {:>9} {:>11} {:>8} {:>7}",
            "component", "path", "delay (ns)", "LUTs", "BMULTs"
        );
        for c in &self.components {
            let _ = writeln!(
                s,
                "  {:<28} {:>9} {:>11.2} {:>8} {:>7}",
                c.name,
                if c.on_critical_path {
                    "critical"
                } else {
                    "parallel"
                },
                c.delay_ns(),
                c.area.luts_rounded(),
                c.area.bmults,
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Tech {
        Tech::virtex2pro()
    }

    fn sample() -> Netlist {
        let t = tech();
        let mut n = Netlist::new("sample", 32, 6);
        n.push("cmp", &Primitive::Comparator { bits: 8 }, &t);
        n.push(
            "shift",
            &Primitive::BarrelShifter {
                bits: 24,
                levels: 5,
            },
            &t,
        );
        n.push_parallel(
            "exp add",
            &Primitive::FixedAdder {
                bits: 8,
                carry_ns_per_bit: 0.215,
            },
            &t,
        );
        n
    }

    #[test]
    fn base_area_sums_components() {
        let n = sample();
        let a = n.base_area();
        assert_eq!(a.luts, 8.0 + 24.0 * 5.0 + 8.0);
    }

    #[test]
    fn critical_path_excludes_parallel() {
        let n = sample();
        let t = tech();
        let expect = Primitive::Comparator { bits: 8 }.total_delay_ns(&t)
            + Primitive::BarrelShifter {
                bits: 24,
                levels: 5,
            }
            .total_delay_ns(&t);
        assert!((n.critical_delay_ns() - expect).abs() < 1e-12);
    }

    #[test]
    fn flat_atoms_carry_sideband() {
        let n = sample();
        let atoms = n.flat_atoms();
        assert_eq!(atoms.len(), 1 + 5); // comparator + 5 mux levels
                                        // first shifter atom: 24 data + 4 remaining shift bits + 6 sideband
        assert_eq!(atoms[1].cut_width, 24 + 4 + 6);
    }

    #[test]
    fn max_stages_counts_atom_boundaries() {
        assert_eq!(sample().max_stages(), 6);
    }
}
