//! Implementation evaluation: netlist + pipeline depth + tool objectives
//! → clock rate and resource bill.
//!
//! This is the model's substitute for "synthesize, place & route, read
//! the timing report": the single entry point the FPU analysis sweeps
//! call for every (precision, stages, objective) combination.

use crate::netlist::Netlist;
use crate::pipeline::{pipeline, PipelineStrategy, Pipelined};
use crate::report::ImplementationReport;
use crate::synthesis::SynthesisOptions;
use crate::tech::Tech;

/// Evaluate one implementation point.
pub fn evaluate(
    netlist: &Netlist,
    stages: u32,
    strategy: PipelineStrategy,
    opts: SynthesisOptions,
    tech: &Tech,
) -> ImplementationReport {
    let piped = pipeline(netlist, stages, strategy);
    evaluate_pipelined(netlist, &piped, opts, tech)
}

/// Evaluate with an already-computed pipeline partition.
pub fn evaluate_pipelined(
    netlist: &Netlist,
    piped: &Pipelined,
    opts: SynthesisOptions,
    tech: &Tech,
) -> ImplementationReport {
    let delay_factor = opts.delay_factor(tech);
    let worst_ns = piped.worst_stage_ns() * delay_factor;
    let clock_mhz = tech.clock_mhz(worst_ns);

    let mut area = netlist.base_area();
    area.luts *= opts.lut_factor(tech);
    area.ffs += piped.register_ffs as f64;
    // Routing-only slices are charged on the logic-slice footprint.
    let logic_slices = area.slices(tech);
    area.routing_slices += logic_slices * opts.routing_slice_factor(tech);
    let slices = area.slices(tech);

    ImplementationReport {
        name: netlist.name.clone(),
        stages: piped.stages,
        slices: slices as u32,
        luts: area.luts_rounded(),
        ffs: area.ffs_rounded(),
        bmults: area.bmults,
        brams: area.brams,
        clock_mhz,
        worst_stage_ns: worst_ns,
    }
}

/// Sweep pipeline depth from 1 to the netlist's maximum and return the
/// report for every depth — the data behind the paper's Figure 2.
pub fn sweep_stages(
    netlist: &Netlist,
    strategy: PipelineStrategy,
    opts: SynthesisOptions,
    tech: &Tech,
) -> Vec<ImplementationReport> {
    (1..=netlist.max_stages())
        .map(|k| evaluate(netlist, k, strategy, opts, tech))
        .collect()
}

/// Pick the implementation with the best frequency/area ratio — the
/// paper's "optimal" configuration ("the implementation reaches highest
/// freq/area ratio").
pub fn optimal(reports: &[ImplementationReport]) -> &ImplementationReport {
    reports
        .iter()
        .max_by(|a, b| {
            a.freq_per_area()
                .partial_cmp(&b.freq_per_area())
                .expect("freq/area is finite")
        })
        .expect("non-empty sweep")
}

/// Pick the implementation with the highest clock rate, breaking ties
/// toward fewer stages (the paper's "max" column).
pub fn max_frequency(reports: &[ImplementationReport]) -> &ImplementationReport {
    reports
        .iter()
        .max_by(|a, b| {
            (a.clock_mhz, std::cmp::Reverse(a.stages))
                .partial_cmp(&(b.clock_mhz, std::cmp::Reverse(b.stages)))
                .expect("clock is finite")
        })
        .expect("non-empty sweep")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::Primitive;

    fn netlist() -> Netlist {
        let t = Tech::virtex2pro();
        let mut n = Netlist::new("test path", 32, 5);
        n.push(
            "adder",
            &Primitive::FixedAdder {
                bits: 54,
                carry_ns_per_bit: 0.215,
            },
            &t,
        );
        n.push(
            "pe",
            &Primitive::PriorityEncoder {
                bits: 54,
                forced: true,
            },
            &t,
        );
        n.push(
            "shift",
            &Primitive::BarrelShifter {
                bits: 54,
                levels: 6,
            },
            &t,
        );
        n
    }

    #[test]
    fn deeper_is_never_slower() {
        let t = Tech::virtex2pro();
        let n = netlist();
        let sweep = sweep_stages(&n, PipelineStrategy::Balanced, SynthesisOptions::SPEED, &t);
        for w in sweep.windows(2) {
            assert!(w[1].clock_mhz >= w[0].clock_mhz - 1e-9);
            assert!(w[1].ffs >= w[0].ffs);
        }
    }

    #[test]
    fn freq_area_curve_rises_then_falls() {
        // The headline shape of Figure 2: throughput/area improves with
        // moderate pipelining and dips once frequency saturates while
        // register area keeps growing.
        let t = Tech::virtex2pro();
        let n = netlist();
        let sweep = sweep_stages(&n, PipelineStrategy::Balanced, SynthesisOptions::SPEED, &t);
        let ratios: Vec<f64> = sweep.iter().map(|r| r.freq_per_area()).collect();
        let peak = ratios.iter().copied().fold(0.0, f64::max);
        let peak_idx = ratios.iter().position(|&r| r == peak).unwrap();
        assert!(peak_idx > 0, "peak should not be the unpipelined point");
        assert!(peak_idx < ratios.len() - 1, "peak should not be max depth");
        assert!(
            *ratios.last().unwrap() < peak * 0.98,
            "deep pipelining should show diminishing freq/area"
        );
    }

    #[test]
    fn speed_objective_trades_area_for_clock() {
        let t = Tech::virtex2pro();
        let n = netlist();
        let fast = evaluate(
            &n,
            4,
            PipelineStrategy::Balanced,
            SynthesisOptions::SPEED,
            &t,
        );
        let small = evaluate(
            &n,
            4,
            PipelineStrategy::Balanced,
            SynthesisOptions::AREA,
            &t,
        );
        assert!(fast.clock_mhz > small.clock_mhz);
        assert!(fast.slices > small.slices);
    }

    #[test]
    fn optimal_and_max_selection() {
        let t = Tech::virtex2pro();
        let n = netlist();
        let sweep = sweep_stages(&n, PipelineStrategy::Balanced, SynthesisOptions::SPEED, &t);
        let opt = optimal(&sweep);
        let max = max_frequency(&sweep);
        assert!(max.clock_mhz >= opt.clock_mhz);
        assert!(opt.freq_per_area() >= max.freq_per_area());
    }

    #[test]
    fn report_consistency() {
        let t = Tech::virtex2pro();
        let n = netlist();
        let r = evaluate(
            &n,
            6,
            PipelineStrategy::IterativeRefinement,
            SynthesisOptions::SPEED,
            &t,
        );
        assert_eq!(r.stages, 6);
        assert!(r.clock_mhz > 0.0 && r.clock_mhz <= t.f_max_mhz);
        assert!(r.slices > 0);
        assert!((r.freq_per_area() - r.clock_mhz / r.slices as f64).abs() < 1e-12);
    }
}
