//! Implementation reports — the row format of the paper's Tables 1-4.

use core::fmt;

/// One implementation point: what a synthesis + place-and-route run
/// reports for a given netlist at a given pipeline depth.
#[derive(Clone, Debug, PartialEq)]
pub struct ImplementationReport {
    /// Netlist name.
    pub name: String,
    /// Number of pipeline stages (= latency in cycles at initiation
    /// interval 1).
    pub stages: u32,
    /// Occupied slices.
    pub slices: u32,
    /// 4-input LUTs.
    pub luts: u32,
    /// Flip-flops.
    pub ffs: u32,
    /// Embedded 18×18 multipliers.
    pub bmults: u32,
    /// Block RAMs.
    pub brams: u32,
    /// Achievable clock rate (MHz).
    pub clock_mhz: f64,
    /// Worst-stage combinational delay (ns), after tool derating.
    pub worst_stage_ns: f64,
}

impl ImplementationReport {
    /// The paper's metric: clock rate per slice (MHz/slice).
    pub fn freq_per_area(&self) -> f64 {
        self.clock_mhz / self.slices as f64
    }

    /// Throughput in MFLOPS for a single unit (one result per cycle).
    pub fn mflops(&self) -> f64 {
        self.clock_mhz
    }

    /// Latency in nanoseconds.
    pub fn latency_ns(&self) -> f64 {
        self.stages as f64 * 1000.0 / self.clock_mhz
    }
}

impl fmt::Display for ImplementationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} stages, {} slices ({} LUTs, {} FFs), {:.1} MHz, {:.4} MHz/slice",
            self.name,
            self.stages,
            self.slices,
            self.luts,
            self.ffs,
            self.clock_mhz,
            self.freq_per_area()
        )?;
        if self.bmults > 0 {
            write!(f, ", {} BMULTs", self.bmults)?;
        }
        if self.brams > 0 {
            write!(f, ", {} BRAMs", self.brams)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ImplementationReport {
        ImplementationReport {
            name: "fp32 adder".into(),
            stages: 10,
            slices: 500,
            luts: 800,
            ffs: 600,
            bmults: 0,
            brams: 0,
            clock_mhz: 250.0,
            worst_stage_ns: 3.05,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = sample();
        assert!((r.freq_per_area() - 0.5).abs() < 1e-12);
        assert_eq!(r.mflops(), 250.0);
        assert!((r.latency_ns() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn display_contains_key_fields() {
        let s = sample().to_string();
        assert!(s.contains("10 stages"));
        assert!(s.contains("500 slices"));
        assert!(s.contains("250.0 MHz"));
    }
}
