//! Primitive subunit models.
//!
//! Each primitive describes itself as a sequence of **delay atoms** — the
//! indivisible combinational segments between which the pipeliner may
//! insert a register — plus a resource bill. The atom widths record how
//! many bits a pipeline register cut at that point must latch (including
//! any operand-skew registers a cut inside an arithmetic chain implies),
//! which is what makes deep pipelining progressively area-hungry, exactly
//! as the paper reports.
//!
//! Area formulas follow the paper's prose where it gives them:
//! comparators and adders take about n/2 slices (≈ n LUTs) for n bits;
//! barrel shifters take about (n·log₂ n)/2 slices.

use crate::area::AreaCost;
use crate::tech::Tech;

/// An indivisible combinational segment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Atom {
    /// Combinational delay through the segment (ns), local routing
    /// included.
    pub delay_ns: f64,
    /// Bus width (bits) a pipeline register inserted *after* this atom
    /// must latch — data bits plus any operand-skew registers.
    pub cut_width: u32,
}

impl Atom {
    /// Convenience constructor.
    pub fn new(delay_ns: f64, cut_width: u32) -> Atom {
        Atom {
            delay_ns,
            cut_width,
        }
    }
}

/// Bit-granularity at which carry chains may be cut. Finer granularity
/// barely changes results but slows the partition search.
const CARRY_CHUNK_BITS: u32 = 6;

/// The catalogue of hardware subunits the floating-point cores are built
/// from (Section 3 of the paper).
#[derive(Clone, Debug, PartialEq)]
pub enum Primitive {
    /// An n-bit unsigned comparator (MUXCY chain). Used for the
    /// exponent-zero check in the denormalizer, the exponent comparator
    /// and the mantissa comparator of the swapper.
    Comparator { bits: u32 },
    /// An n-bit 2:1 multiplexer (the swapper's mantissa mux, the
    /// pre-normalizer's 1-bit shift mux).
    Mux2 { bits: u32 },
    /// An n-bit fixed-point adder/subtractor (Xilinx library-core style,
    /// pipelineable in carry chunks). `carry_ns_per_bit` lets callers
    /// distinguish the routing-heavy standalone mantissa adder (use
    /// `tech.t_carry_per_bit_ns`) from the compact adders inside a
    /// multiplier tree.
    FixedAdder { bits: u32, carry_ns_per_bit: f64 },
    /// An n-bit +constant adder (the rounding module's incrementers).
    ConstAdder { bits: u32 },
    /// A barrel shifter over `bits` data bits with `levels` mux levels
    /// (usually ceil(log2(bits))). Alignment and normalization shifters.
    BarrelShifter { bits: u32, levels: u32 },
    /// A priority encoder over n bits (the normalizer's leading-one
    /// detector). `forced` models the tool-forced structured synthesis
    /// the paper describes for 54-bit operands (split into two smaller
    /// encoders plus an adder and muxes).
    PriorityEncoder { bits: u32, forced: bool },
    /// An n×n-bit unsigned multiplier mapped to 18×18 embedded multiplier
    /// blocks plus a fabric adder tree (Xilinx library-core style).
    Mult18Tree { bits: u32 },
    /// A digit-recurrence (SRT radix-2) divider/square-root array over
    /// `bits`-wide operands producing `rows` result digits: one
    /// carry-save subtract + digit-select row per digit. The natural
    /// pipelining granularity is one row per stage.
    DigitRecurrence { bits: u32, rows: u32 },
    /// An XOR of two 1-bit signs plus small glue.
    SignLogic,
    /// Explicit registers (synchronous outputs, control staging).
    Register { bits: u32 },
    /// A block-RAM backed buffer (matmul PE storage), `words` entries of
    /// `width` bits.
    BramBuffer { words: u32, width: u32 },
}

impl Primitive {
    /// The delay atoms of this primitive, in dataflow order.
    pub fn atoms(&self, tech: &Tech) -> Vec<Atom> {
        match *self {
            Primitive::Comparator { bits } => {
                vec![Atom::new(
                    tech.t_lut_route_ns + bits as f64 * tech.t_cmp_per_bit_ns,
                    // result is one bit, but a cut here usually also
                    // latches the compared operands for the next stage:
                    1 + 2 * bits,
                )]
            }
            Primitive::Mux2 { bits } => vec![Atom::new(tech.t_mux_level_ns, bits)],
            Primitive::FixedAdder {
                bits,
                carry_ns_per_bit,
            } => carry_chain_atoms(tech, bits, carry_ns_per_bit, bits + 1),
            Primitive::ConstAdder { bits } => {
                // Constant adders have a shorter chain (half-adders).
                carry_chain_atoms(tech, bits, 0.10, bits + 1)
            }
            Primitive::BarrelShifter { bits, levels } => {
                // One atom per mux level; a cut after level i must latch
                // the data bus plus the not-yet-consumed shift-amount bits.
                (0..levels)
                    .map(|i| Atom::new(tech.t_mux_level_ns, bits + (levels - 1 - i)))
                    .collect()
            }
            Primitive::PriorityEncoder { bits, forced } => {
                let sel_bits = log2_ceil(bits.max(2));
                if forced {
                    // Tool-forced split: two half-width encoders in
                    // parallel, then a small adder + mux combine stage.
                    let half = tech.t_lut_route_ns + sel_bits as f64 * 0.40;
                    let combine = tech.t_lut_route_ns + 3.0 * 0.22;
                    vec![
                        Atom::new(half, bits + sel_bits),
                        Atom::new(combine, sel_bits),
                    ]
                } else {
                    // Monolithic cascade: the "critical subunit for large
                    // bitwidths" the paper warns about.
                    vec![Atom::new(
                        tech.t_lut_route_ns + sel_bits as f64 * tech.t_prienc_level_ns,
                        sel_bits,
                    )]
                }
            }
            Primitive::Mult18Tree { bits } => mult_tree_atoms(tech, bits),
            Primitive::DigitRecurrence { bits, rows } => {
                // Each row: carry-save subtract (no carry chain) + the
                // digit-selection logic on the top bits, then routing to
                // the next row. A register cut latches the carry-save
                // partial remainder pair, the divisor/radicand and the
                // digits produced so far.
                (0..rows)
                    .map(|r| Atom::new(tech.t_lut_route_ns + 1.25, 3 * bits + (rows - r)))
                    .collect()
            }
            Primitive::SignLogic => vec![Atom::new(0.35, 1)],
            Primitive::Register { bits } => vec![Atom::new(0.0, bits)],
            Primitive::BramBuffer { width, .. } => vec![Atom::new(tech.t_bram_ns, width)],
        }
    }

    /// Resource bill (LUTs/FFs/BMULTs/BRAMs) of this primitive,
    /// excluding pipeline registers (those are charged by the pipeliner
    /// from the cut widths).
    pub fn area(&self, _tech: &Tech) -> AreaCost {
        match *self {
            // "Comparators take about n/2 slices for a bitwidth of n"
            // → ≈ n LUTs at 2 LUTs/slice.
            Primitive::Comparator { bits } => AreaCost::luts(bits as f64),
            Primitive::Mux2 { bits } => AreaCost::luts(bits as f64),
            // "It takes about n/2 slices for a bitwidth of n excluding
            // pipelining."
            Primitive::FixedAdder { bits, .. } => AreaCost::luts(bits as f64),
            Primitive::ConstAdder { bits } => AreaCost::luts(bits as f64 * 0.75),
            // "Takes up about n·log(n)/2 slices for a bitwidth of n."
            Primitive::BarrelShifter { bits, levels } => {
                AreaCost::luts(bits as f64 * levels as f64)
            }
            Primitive::PriorityEncoder { bits, forced } => {
                AreaCost::luts(bits as f64 * if forced { 1.25 } else { 0.95 })
            }
            Primitive::Mult18Tree { bits } => {
                let n = bits.div_ceil(17);
                let pp = n * n;
                // Tree adders: widths grow from ~2·17 toward 2·bits.
                let tree_luts: f64 = (0..log2_ceil(pp.max(2)))
                    .map(|lvl| (bits as f64 + 17.0 * (lvl + 1) as f64).min(2.0 * bits as f64))
                    .sum();
                AreaCost {
                    luts: tree_luts,
                    bmults: pp,
                    ..Default::default()
                }
            }
            Primitive::DigitRecurrence { bits, rows } => {
                // CSA (2 LUTs per 2 bits ≈ bits) + digit select + divisor
                // mux per row.
                AreaCost::luts(bits as f64 * 1.5 * rows as f64)
            }
            Primitive::SignLogic => AreaCost::luts(2.0),
            Primitive::Register { bits } => AreaCost::ffs(bits as f64),
            Primitive::BramBuffer { words, width } => {
                // 18Kbit blocks; usable capacity depends on aspect ratio,
                // model 16Kbit usable.
                let bits_total = words as u64 * width as u64;
                AreaCost {
                    brams: (bits_total as f64 / 16_384.0).ceil().max(1.0) as u32,
                    luts: 4.0, // address counters handled by caller; glue only
                    ..Default::default()
                }
            }
        }
    }

    /// Total combinational delay (sum of atoms) — handy for tests.
    pub fn total_delay_ns(&self, tech: &Tech) -> f64 {
        self.atoms(tech).iter().map(|a| a.delay_ns).sum()
    }
}

/// Atoms of a pipelineable n-bit carry chain. A cut after bit position p
/// must latch the p finished low bits *and* the 2·(n−p) unconsumed
/// operand bits (delay-balancing skew registers) plus the carry — this is
/// what makes deeply pipelined wide adders area-expensive.
fn carry_chain_atoms(tech: &Tech, bits: u32, carry_ns_per_bit: f64, _out_width: u32) -> Vec<Atom> {
    let chunks = bits.div_ceil(CARRY_CHUNK_BITS);
    let mut atoms = Vec::with_capacity(chunks as usize);
    let mut done = 0u32;
    for c in 0..chunks {
        let chunk_bits = CARRY_CHUNK_BITS.min(bits - done);
        done += chunk_bits;
        let mut delay = chunk_bits as f64 * carry_ns_per_bit;
        if c == 0 {
            delay += tech.t_lut_route_ns; // chain entry LUT + route
        }
        let remaining = bits - done;
        let cut_width = done + 2 * remaining + 1;
        atoms.push(Atom::new(delay, cut_width));
    }
    atoms
}

/// Atoms of an n×n multiplier on 18×18 blocks: the block itself (split by
/// its optional internal register) followed by the partial-product adder
/// tree, each tree level a compact carry chain cuttable at chunk
/// granularity.
fn mult_tree_atoms(tech: &Tech, bits: u32) -> Vec<Atom> {
    let n = bits.div_ceil(17);
    let pp = n * n;
    let mut atoms = vec![
        Atom::new(tech.t_mult18_half_ns, 2 * bits),
        Atom::new(tech.t_mult18_half_ns, 2 * bits),
    ];
    if pp > 1 {
        let levels = log2_ceil(pp);
        for lvl in 0..levels {
            let width = (bits + 17 * (lvl + 1)).min(2 * bits);
            // Entry LUT + compact in-tree carry (no chunk-interface
            // routing, hence the low per-bit figure).
            let chunks = width.div_ceil(CARRY_CHUNK_BITS * 2);
            for c in 0..chunks {
                let chunk_bits = (CARRY_CHUNK_BITS * 2).min(width - c * CARRY_CHUNK_BITS * 2);
                let mut delay = chunk_bits as f64 * 0.05;
                if c == 0 {
                    delay += tech.t_lut_route_ns;
                }
                atoms.push(Atom::new(delay, 2 * bits));
            }
        }
    }
    atoms
}

/// ceil(log2(x)) for x >= 1.
pub fn log2_ceil(x: u32) -> u32 {
    assert!(x >= 1);
    32 - (x - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tech() -> Tech {
        Tech::virtex2pro()
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(16), 4);
        assert_eq!(log2_ceil(17), 5);
        assert_eq!(log2_ceil(54), 6);
    }

    #[test]
    fn comparator_single_atom() {
        let p = Primitive::Comparator { bits: 11 };
        let atoms = p.atoms(&tech());
        assert_eq!(atoms.len(), 1);
        assert!(atoms[0].delay_ns < 2.0);
    }

    #[test]
    fn adder_atoms_cover_all_bits() {
        let p = Primitive::FixedAdder {
            bits: 54,
            carry_ns_per_bit: tech().t_carry_per_bit_ns,
        };
        let atoms = p.atoms(&tech());
        assert_eq!(atoms.len(), 9); // 54 / 6
        let total: f64 = atoms.iter().map(|a| a.delay_ns).sum();
        assert!((total - (tech().t_lut_route_ns + 54.0 * tech().t_carry_per_bit_ns)).abs() < 1e-9);
        // Last cut (after all bits) latches just the sum + carry.
        assert_eq!(atoms.last().unwrap().cut_width, 55);
        // An early cut is much wider (skew registers).
        assert!(atoms[0].cut_width > 100);
    }

    #[test]
    fn anchor_54bit_adder_4_stages_200mhz() {
        // The paper: "a 54bit adder/subtractor can achieve 200 MHz with 4
        // pipelining stages".
        let t = tech();
        let p = Primitive::FixedAdder {
            bits: 54,
            carry_ns_per_bit: t.t_carry_per_bit_ns,
        };
        let total = p.total_delay_ns(&t);
        let per_stage = total / 4.0; // ideal balanced split
        assert!(
            t.clock_mhz(per_stage) >= 200.0,
            "4-stage 54-bit adder = {} MHz",
            t.clock_mhz(per_stage)
        );
        // ... and not with 2 stages.
        assert!(t.clock_mhz(total / 2.0) < 200.0);
    }

    #[test]
    fn shifter_levels_and_area() {
        let p = Primitive::BarrelShifter {
            bits: 54,
            levels: 6,
        };
        let atoms = p.atoms(&tech());
        assert_eq!(atoms.len(), 6);
        // area ≈ n·log n LUTs (n·log n / 2 slices)
        assert_eq!(p.area(&tech()).luts, 54.0 * 6.0);
        // shift-amount bits retire level by level
        assert_eq!(atoms[0].cut_width, 54 + 5);
        assert_eq!(atoms[5].cut_width, 54);
    }

    #[test]
    fn priority_encoder_forced_is_faster_per_atom() {
        let t = tech();
        let mono = Primitive::PriorityEncoder {
            bits: 54,
            forced: false,
        };
        let split = Primitive::PriorityEncoder {
            bits: 54,
            forced: true,
        };
        let worst_mono = mono
            .atoms(&t)
            .iter()
            .map(|a| a.delay_ns)
            .fold(0.0, f64::max);
        let worst_split = split
            .atoms(&t)
            .iter()
            .map(|a| a.delay_ns)
            .fold(0.0, f64::max);
        assert!(worst_split < worst_mono);
        // Forced split of the 54-bit encoder sustains > 200 MHz per atom.
        assert!(
            t.clock_mhz(worst_split) > 200.0,
            "{}",
            t.clock_mhz(worst_split)
        );
        // Monolithic does not.
        assert!(t.clock_mhz(worst_mono) < 200.0);
        // The structured version costs more area.
        assert!(split.area(&t).luts > mono.area(&t).luts);
    }

    #[test]
    fn mult_bmult_counts() {
        let t = tech();
        assert_eq!(Primitive::Mult18Tree { bits: 24 }.area(&t).bmults, 4);
        assert_eq!(Primitive::Mult18Tree { bits: 37 }.area(&t).bmults, 9);
        assert_eq!(Primitive::Mult18Tree { bits: 54 }.area(&t).bmults, 16);
        assert_eq!(Primitive::Mult18Tree { bits: 17 }.area(&t).bmults, 1);
    }

    #[test]
    fn anchor_54bit_multiplier_7_stages_200mhz() {
        // The paper: "for the 54bit fixed-point multiplication, seven
        // pipelining stages are required to achieve a frequency of 200MHz".
        let t = tech();
        let p = Primitive::Mult18Tree { bits: 54 };
        let total = p.total_delay_ns(&t);
        assert!(
            t.clock_mhz(total / 7.0) >= 200.0,
            "7-stage 54-bit mult = {} MHz (total {total} ns)",
            t.clock_mhz(total / 7.0)
        );
        assert!(
            t.clock_mhz(total / 5.0) < 200.0,
            "5-stage 54-bit mult = {} MHz should be < 200",
            t.clock_mhz(total / 5.0)
        );
    }

    #[test]
    fn single_bmult_has_no_tree() {
        let t = tech();
        let atoms = Primitive::Mult18Tree { bits: 17 }.atoms(&t);
        assert_eq!(atoms.len(), 2); // just the two block halves
    }

    #[test]
    fn digit_recurrence_rows() {
        let t = tech();
        let p = Primitive::DigitRecurrence { bits: 26, rows: 27 };
        let atoms = p.atoms(&t);
        assert_eq!(atoms.len(), 27);
        // One row per stage sustains a high clock...
        assert!(t.clock_mhz(atoms[0].delay_ns) > 250.0);
        // ...but the unpipelined array is very slow.
        assert!(t.clock_mhz(p.total_delay_ns(&t)) < 20.0);
        // and each cut is wide (carry-save pair + divisor + digits).
        assert!(atoms[0].cut_width > 3 * 26);
    }

    #[test]
    fn bram_capacity() {
        let t = tech();
        let p = Primitive::BramBuffer {
            words: 512,
            width: 64,
        };
        assert_eq!(p.area(&t).brams, 2);
        let p = Primitive::BramBuffer {
            words: 16,
            width: 32,
        };
        assert_eq!(p.area(&t).brams, 1);
    }
}
