//! Synthesis and place-and-route optimization objectives.
//!
//! The paper repeatedly stresses that "using a different optimization
//! objective (speed or area) for the synthesis and place and route tool
//! gives vastly different results": a speed objective replicates logic to
//! cut logic levels (more LUTs), and a speed-driven router burns slices
//! purely on routing. This module models both knobs.

use crate::tech::Tech;

/// A tool optimization objective.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Optimize for clock rate at the cost of area.
    Speed,
    /// Optimize for area at the cost of clock rate.
    Area,
}

/// The tool-flow configuration for one implementation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SynthesisOptions {
    /// Synthesis objective (logic replication vs sharing).
    pub synthesis: Objective,
    /// Place-and-route objective (routing effort vs packing).
    pub par: Objective,
}

impl SynthesisOptions {
    /// Speed everywhere — what the paper uses for its throughput numbers.
    pub const SPEED: SynthesisOptions = SynthesisOptions {
        synthesis: Objective::Speed,
        par: Objective::Speed,
    };

    /// Area everywhere.
    pub const AREA: SynthesisOptions = SynthesisOptions {
        synthesis: Objective::Area,
        par: Objective::Area,
    };

    /// Combinational-delay scale factor from both tool stages.
    pub fn delay_factor(&self, tech: &Tech) -> f64 {
        let synth = match self.synthesis {
            Objective::Speed => tech.speed_obj_delay_factor,
            Objective::Area => tech.area_obj_delay_factor,
        };
        let par = match self.par {
            Objective::Speed => tech.speed_par_delay_factor,
            Objective::Area => 1.0,
        };
        synth * par
    }

    /// LUT-count scale factor (synthesis-stage logic replication).
    pub fn lut_factor(&self, tech: &Tech) -> f64 {
        match self.synthesis {
            Objective::Speed => tech.speed_obj_area_factor,
            Objective::Area => 1.0,
        }
    }

    /// Routing-only slice overhead as a fraction of logic slices
    /// (P&R-stage effect: "more slices being used only for routing").
    pub fn routing_slice_factor(&self, tech: &Tech) -> f64 {
        match self.par {
            Objective::Speed => tech.speed_par_slice_factor,
            Objective::Area => 0.0,
        }
    }
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions::SPEED
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_is_faster_and_bigger() {
        let t = Tech::virtex2pro();
        assert!(SynthesisOptions::SPEED.delay_factor(&t) < SynthesisOptions::AREA.delay_factor(&t));
        assert!(SynthesisOptions::SPEED.lut_factor(&t) > SynthesisOptions::AREA.lut_factor(&t));
        assert!(SynthesisOptions::SPEED.routing_slice_factor(&t) > 0.0);
        assert_eq!(SynthesisOptions::AREA.routing_slice_factor(&t), 0.0);
    }

    #[test]
    fn mixed_objectives_are_between() {
        let t = Tech::virtex2pro();
        let mixed = SynthesisOptions {
            synthesis: Objective::Speed,
            par: Objective::Area,
        };
        let d = mixed.delay_factor(&t);
        assert!(d >= SynthesisOptions::SPEED.delay_factor(&t));
        assert!(d <= SynthesisOptions::AREA.delay_factor(&t));
    }
}
