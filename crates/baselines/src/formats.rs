//! Custom-format interface conversion.
//!
//! "Some of the commercial floating-point cores use a custom format with
//! conversion to and from the IEEE754 standard at interfaces to other
//! resources in the system. … Hence, due to a lower area, their
//! Frequency/Area metric is sometimes better than ours."
//!
//! This module models both halves of that trade:
//!
//! * the *hardware* cost of a pair of converters (IEEE→custom on each
//!   input, custom→IEEE on the output), estimated with the fabric
//!   primitives (shifters + small adders, like a degenerate FP datapath);
//! * the *numerical* cost: operands squeezed through a narrower custom
//!   mantissa are double-rounded.

use fpfpga_fabric::area::AreaCost;
use fpfpga_fabric::netlist::Netlist;
use fpfpga_fabric::primitives::{log2_ceil, Primitive};
use fpfpga_fabric::tech::Tech;
use fpfpga_softfp::convert::convert;
use fpfpga_softfp::{Flags, FpFormat, RoundMode};

/// A vendor's internal custom format paired with the IEEE format it
/// stands in for.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CustomFormat {
    /// The IEEE interface format.
    pub ieee: FpFormat,
    /// The internal custom format (typically a wider exponent and a
    /// slightly narrower stored mantissa, self-normalizing designs).
    pub custom: FpFormat,
}

impl CustomFormat {
    /// A representative commercial 32-bit custom format: 10-bit exponent,
    /// 21-bit stored fraction (32 bits total including sign).
    pub fn commercial32() -> CustomFormat {
        CustomFormat {
            ieee: FpFormat::SINGLE,
            custom: FpFormat::new(10, 21),
        }
    }

    /// Convert an IEEE encoding into the custom format.
    pub fn to_custom(&self, bits: u64, mode: RoundMode) -> (u64, Flags) {
        convert(self.ieee, bits, self.custom, mode)
    }

    /// Convert a custom encoding back to IEEE.
    pub fn to_ieee(&self, bits: u64, mode: RoundMode) -> (u64, Flags) {
        convert(self.custom, bits, self.ieee, mode)
    }

    /// Run `op` in the custom domain: convert both operands in, apply,
    /// convert back — the numerical behaviour of a custom-format core
    /// embedded in an IEEE system.
    pub fn through_custom(
        &self,
        a: u64,
        b: u64,
        mode: RoundMode,
        op: impl Fn(FpFormat, u64, u64, RoundMode) -> (u64, Flags),
    ) -> (u64, Flags) {
        let (ca, f1) = self.to_custom(a, mode);
        let (cb, f2) = self.to_custom(b, mode);
        let (cr, f3) = op(self.custom, ca, cb, mode);
        let (r, f4) = self.to_ieee(cr, mode);
        (r, f1 | f2 | f3 | f4)
    }

    /// The netlist of one direction of conversion hardware: an exponent
    /// re-bias adder and a mantissa shifter/rounder.
    pub fn converter_netlist(&self, tech: &Tech) -> Netlist {
        let wide = self.ieee.sig_bits().max(self.custom.sig_bits());
        let exp = self.ieee.exp_bits().max(self.custom.exp_bits());
        let mut n = Netlist::new("format converter", self.ieee.total_bits(), exp + 2);
        n.push(
            "mantissa shifter",
            &Primitive::BarrelShifter {
                bits: wide,
                levels: log2_ceil(wide),
            },
            tech,
        );
        n.push("round adder", &Primitive::ConstAdder { bits: wide }, tech);
        n.push_parallel(
            "exponent re-bias",
            &Primitive::FixedAdder {
                bits: exp,
                carry_ns_per_bit: tech.t_carry_per_bit_ns,
            },
            tech,
        );
        n
    }

    /// Slice cost of the three converters a binary operator needs
    /// (two inputs + one output).
    pub fn integration_area(&self, tech: &Tech) -> AreaCost {
        let one = self.converter_netlist(tech).base_area();
        one * 3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpfpga_softfp::{add_bits, mul_bits};

    #[test]
    fn roundtrip_is_lossy_for_narrower_mantissa() {
        let cf = CustomFormat::commercial32();
        let x = 1.000_000_6f32; // needs all 23 fraction bits
        let (c, _) = cf.to_custom(x.to_bits() as u64, RoundMode::NearestEven);
        let (back, flags) = cf.to_ieee(c, RoundMode::NearestEven);
        assert_ne!(back as u32, x.to_bits(), "21-bit mantissa must lose bits");
        assert!(flags.inexact || f32::from_bits(back as u32) != x);
    }

    #[test]
    fn roundtrip_exact_for_representable() {
        let cf = CustomFormat::commercial32();
        for x in [1.0f32, 0.5, -3.25, 1024.0] {
            let (c, f) = cf.to_custom(x.to_bits() as u64, RoundMode::NearestEven);
            assert!(!f.any(), "{x}");
            let (back, _) = cf.to_ieee(c, RoundMode::NearestEven);
            assert_eq!(f32::from_bits(back as u32), x);
        }
    }

    #[test]
    fn through_custom_add_is_close_but_not_exact() {
        let cf = CustomFormat::commercial32();
        let (a, b) = (1.234_567_8f32, 9.876_543_f32);
        let (r, _) = cf.through_custom(
            a.to_bits() as u64,
            b.to_bits() as u64,
            RoundMode::NearestEven,
            add_bits,
        );
        let got = f32::from_bits(r as u32);
        let want = a + b;
        assert!((got - want).abs() < 1e-4 * want.abs(), "{got} vs {want}");
    }

    #[test]
    fn through_custom_mul_loses_precision_vs_ieee() {
        let cf = CustomFormat::commercial32();
        let mut divergences = 0;
        for i in 0..100 {
            let a = 1.0f32 + i as f32 * 1.272_829e-3;
            let b = 3.0f32 - i as f32 * 0.7e-3;
            let (r, _) = cf.through_custom(
                a.to_bits() as u64,
                b.to_bits() as u64,
                RoundMode::NearestEven,
                mul_bits,
            );
            if r as u32 != (a * b).to_bits() {
                divergences += 1;
            }
        }
        assert!(
            divergences > 50,
            "custom-format pipeline should usually differ: {divergences}"
        );
    }

    #[test]
    fn conversion_hardware_is_not_free() {
        let tech = Tech::virtex2pro();
        let cf = CustomFormat::commercial32();
        let a = cf.integration_area(&tech);
        assert!(
            a.slices(&tech) > 100.0,
            "3 converters cost real slices: {}",
            a.slices(&tech)
        );
    }

    #[test]
    fn wider_exponent_extends_range() {
        // The custom format's 10-bit exponent represents values single
        // precision overflows on.
        let cf = CustomFormat::commercial32();
        let big = f32::MAX.to_bits() as u64;
        let (c1, _) = cf.to_custom(big, RoundMode::NearestEven);
        let (sq, f) = mul_bits(cf.custom, c1, c1, RoundMode::NearestEven);
        assert!(
            !f.overflow,
            "custom exponent range should absorb the square"
        );
        // ... but converting back overflows to IEEE infinity.
        let (back, f) = cf.to_ieee(sq, RoundMode::NearestEven);
        assert!(f.overflow);
        assert_eq!(back, FpFormat::SINGLE.pos_inf());
    }
}
