//! Assembling the paper's comparisons: Table 3 (32-bit vs Nallatech /
//! Quixilica), Table 4 (64-bit vs NEU, with power) and the Section 4.2
//! processor comparison.

use crate::cpu::Processor;
use crate::vendor::VendorCore;
use fpfpga_fabric::area::AreaCost;
use fpfpga_fabric::report::ImplementationReport;
use fpfpga_fabric::synthesis::SynthesisOptions;
use fpfpga_fabric::tech::Tech;
use fpfpga_fpu::analysis::CoreSweep;
use fpfpga_power::PowerModel;
use fpfpga_softfp::FpFormat;

/// One row of a unit-comparison table.
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// Implementation name ("USC", "Nallatech" …).
    pub who: String,
    /// Pipeline stages.
    pub stages: u32,
    /// Slices.
    pub slices: u32,
    /// Clock (MHz).
    pub clock_mhz: f64,
    /// MHz/slice.
    pub freq_per_area: f64,
    /// Power at 100 MHz (mW), where modeled (Table 4 only).
    pub power_mw: Option<f64>,
}

impl ComparisonRow {
    fn from_usc(r: &ImplementationReport, power_mw: Option<f64>) -> ComparisonRow {
        ComparisonRow {
            who: "USC".into(),
            stages: r.stages,
            slices: r.slices,
            clock_mhz: r.clock_mhz,
            freq_per_area: r.freq_per_area(),
            power_mw,
        }
    }

    fn from_vendor(c: &VendorCore) -> ComparisonRow {
        ComparisonRow {
            who: c.kind.name().into(),
            stages: c.stages,
            slices: c.slices,
            clock_mhz: c.clock_mhz,
            freq_per_area: c.freq_per_area(),
            power_mw: c.power_mw_100mhz,
        }
    }
}

/// Table 3: 32-bit units, USC vs Nallatech vs Quixilica.
#[derive(Clone, Debug)]
pub struct Table3 {
    /// Adder rows (USC, Nallatech, Quixilica).
    pub adders: Vec<ComparisonRow>,
    /// Multiplier rows.
    pub multipliers: Vec<ComparisonRow>,
}

impl Table3 {
    /// Build the table with the USC cores at their max-frequency point
    /// (the configuration the paper quotes against the vendors).
    pub fn build(tech: &Tech, opts: SynthesisOptions) -> Table3 {
        let add = CoreSweep::adder(FpFormat::SINGLE, tech, opts);
        let mul = CoreSweep::multiplier(FpFormat::SINGLE, tech, opts);
        Table3 {
            adders: vec![
                ComparisonRow::from_usc(add.fastest(), None),
                ComparisonRow::from_vendor(&VendorCore::NALLATECH_ADD32),
                ComparisonRow::from_vendor(&VendorCore::QUIXILICA_ADD32),
            ],
            multipliers: vec![
                ComparisonRow::from_usc(mul.fastest(), None),
                ComparisonRow::from_vendor(&VendorCore::NALLATECH_MUL32),
                ComparisonRow::from_vendor(&VendorCore::QUIXILICA_MUL32),
            ],
        }
    }
}

/// Table 4: 64-bit units, USC vs the NEU parameterized library, with
/// power at 100 MHz.
#[derive(Clone, Debug)]
pub struct Table4 {
    /// Adder rows (USC, NEU).
    pub adders: Vec<ComparisonRow>,
    /// Multiplier rows.
    pub multipliers: Vec<ComparisonRow>,
}

impl Table4 {
    /// Build the table; USC power comes from the XPower-style model at
    /// 100 MHz, NEU power from their published figures.
    pub fn build(tech: &Tech, opts: SynthesisOptions) -> Table4 {
        let model = PowerModel::virtex2pro();
        let power = |r: &ImplementationReport| {
            let area = AreaCost {
                luts: r.luts as f64,
                ffs: r.ffs as f64,
                bmults: r.bmults,
                brams: r.brams,
                routing_slices: 0.0,
            };
            Some(model.power_mw(&area, 100.0, 0.3).total_mw())
        };
        let add = CoreSweep::adder(FpFormat::DOUBLE, tech, opts);
        let mul = CoreSweep::multiplier(FpFormat::DOUBLE, tech, opts);
        let (ua, um) = (add.fastest(), mul.fastest());
        Table4 {
            adders: vec![
                ComparisonRow::from_usc(ua, power(ua)),
                ComparisonRow::from_vendor(&VendorCore::NEU_ADD64),
            ],
            multipliers: vec![
                ComparisonRow::from_usc(um, power(um)),
                ComparisonRow::from_vendor(&VendorCore::NEU_MUL64),
            ],
        }
    }
}

/// The Section 4.2 processor comparison.
#[derive(Clone, Debug)]
pub struct ProcessorComparison {
    /// FPGA sustained GFLOPS.
    pub fpga_gflops: f64,
    /// FPGA dynamic power (W).
    pub fpga_power_w: f64,
    /// The processors compared against.
    pub processors: Vec<Processor>,
}

impl ProcessorComparison {
    /// Build from a device-level GFLOPS/power estimate.
    pub fn new(fpga_gflops: f64, fpga_power_w: f64) -> ProcessorComparison {
        ProcessorComparison {
            fpga_gflops,
            fpga_power_w,
            processors: vec![Processor::PENTIUM4_2_54GHZ, Processor::G4_1GHZ],
        }
    }

    /// GFLOPS speedup over processor `p` (single precision, sustained).
    pub fn speedup_over(&self, p: &Processor) -> f64 {
        self.fpga_gflops / p.sustained_gflops_single()
    }

    /// GFLOPS/W advantage over processor `p`.
    pub fn efficiency_gain_over(&self, p: &Processor) -> f64 {
        (self.fpga_gflops / self.fpga_power_w) / p.gflops_per_watt_single()
    }
}

/// How many MHz/slice rows beat the reference row — used to check the
/// paper's remark that the low-area vendor cores sometimes win that
/// metric.
pub fn vendor_beats_usc_on_freq_area(table: &Table3) -> bool {
    let usc = table.adders[0]
        .freq_per_area
        .min(table.multipliers[0].freq_per_area);
    table.adders[1..]
        .iter()
        .chain(&table.multipliers[1..])
        .any(|r| r.freq_per_area > usc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t3() -> Table3 {
        Table3::build(&Tech::virtex2pro(), SynthesisOptions::SPEED)
    }

    fn t4() -> Table4 {
        Table4::build(&Tech::virtex2pro(), SynthesisOptions::SPEED)
    }

    #[test]
    fn usc_wins_absolute_clock_in_table3() {
        let t = t3();
        for rows in [&t.adders, &t.multipliers] {
            let usc = &rows[0];
            for v in &rows[1..] {
                assert!(
                    usc.clock_mhz > v.clock_mhz,
                    "USC {} vs {} {}",
                    usc.clock_mhz,
                    v.who,
                    v.clock_mhz
                );
            }
        }
    }

    #[test]
    fn vendors_sometimes_win_freq_per_area() {
        // "due to a lower area, their Frequency/Area metric is sometimes
        // better than ours"
        assert!(vendor_beats_usc_on_freq_area(&t3()));
    }

    #[test]
    fn usc_dominates_neu_in_table4() {
        let t = t4();
        for rows in [&t.adders, &t.multipliers] {
            assert!(
                rows[0].clock_mhz > 2.0 * rows[1].clock_mhz,
                "USC should be >2x NEU clock"
            );
        }
    }

    #[test]
    fn table4_has_power_numbers() {
        let t = t4();
        for rows in [&t.adders, &t.multipliers] {
            for r in rows {
                let p = r.power_mw.expect("table 4 reports power");
                assert!((10.0..600.0).contains(&p), "{}: {p} mW", r.who);
            }
        }
    }

    #[test]
    fn processor_ratios_in_paper_band() {
        // With ~19.6 GFLOPS and ~8 W the paper's 6×/3×/6× claims hold.
        let cmp = ProcessorComparison::new(19.6, 8.0);
        let p4 = cmp.speedup_over(&Processor::PENTIUM4_2_54GHZ);
        let g4 = cmp.speedup_over(&Processor::G4_1GHZ);
        assert!((5.0..7.5).contains(&p4), "P4 speedup = {p4}");
        assert!((2.4..3.6).contains(&g4), "G4 speedup = {g4}");
        let eff = cmp.efficiency_gain_over(&Processor::G4_1GHZ);
        assert!((4.5..8.0).contains(&eff), "GFLOPS/W gain = {eff}");
    }
}
