//! # fpfpga-baselines — the comparison targets of Section 4
//!
//! The paper compares its cores against commercial and academic FPGA
//! floating-point cores (Tables 3 and 4) and its matmul kernel against
//! general-purpose processors (Section 4.2). None of those artifacts are
//! available as code, so this crate models them from their published
//! characteristics:
//!
//! * [`vendor`] — Nallatech and Quixilica 32-bit cores and the
//!   Northeastern University parameterized library (Belanović & Leeser,
//!   FPL 2002) 64-bit cores, with datasheet-era pipeline depth, area and
//!   clock figures. The commercial cores "use custom formats and require
//!   additional modules to perform format conversions at interfaces" —
//!   [`formats`] models both the conversion hardware and its numerical
//!   cost (double rounding through the narrower custom format).
//! * [`cpu`] — Pentium 4 (2.53 GHz) and PowerPC G4 (1 GHz) sustained
//!   matrix-multiply performance and power, for the paper's "6×
//!   improvement over the Pentium 4, 3× over the G4" and "up to 6×
//!   GFLOPS/W" claims.
//! * [`comparison`] — assembles Table 3, Table 4 and the Section 4.2
//!   processor comparison from this crate plus the `fpfpga-fpu` sweeps.

pub mod comparison;
pub mod cpu;
pub mod formats;
pub mod vendor;

pub use comparison::{ProcessorComparison, Table3, Table4};
pub use cpu::Processor;
pub use vendor::{VendorCore, VendorKind};
