//! Third-party floating-point core models.
//!
//! Figures are taken from the vendors' datasheet-era publications
//! (c. 2003, Virtex-II/-II Pro parts) and the Belanović-Leeser FPL 2002
//! paper for the NEU parameterized library. Exact numbers differ by
//! device/speed grade; what the reproduction must preserve is the
//! *relations* the paper reports:
//!
//! * the commercial cores are shallower and smaller, but slower in
//!   absolute clock than the USC cores at their optimal depth;
//! * "due to a lower area, their Frequency/Area metric is sometimes
//!   better than ours" — at least one wins MHz/slice;
//! * they use custom formats, so system integration adds conversion
//!   modules at the interfaces (see [`crate::formats`]);
//! * the NEU 64-bit library cores are much slower (the library predates
//!   deep-pipelining methodology).

use fpfpga_softfp::FpFormat;

/// Which baseline family a core belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VendorKind {
    /// Nallatech floating-point cores (custom format).
    Nallatech,
    /// Quixilica (QinetiQ) floating-point cores (custom format).
    Quixilica,
    /// Northeastern University parameterized library (IEEE format).
    Neu,
}

impl VendorKind {
    /// Display name as the paper's tables use it.
    pub fn name(&self) -> &'static str {
        match self {
            VendorKind::Nallatech => "Nallatech",
            VendorKind::Quixilica => "Quixilica",
            VendorKind::Neu => "NEU",
        }
    }

    /// Whether the family's cores use a non-IEEE custom format needing
    /// interface conversion.
    pub fn uses_custom_format(&self) -> bool {
        !matches!(self, VendorKind::Neu)
    }
}

/// A published third-party core implementation point.
#[derive(Clone, Debug, PartialEq)]
pub struct VendorCore {
    /// Family.
    pub kind: VendorKind,
    /// "32-bit adder" etc.
    pub description: &'static str,
    /// Nominal operand format (the IEEE-equivalent width).
    pub format: FpFormat,
    /// Pipeline stages.
    pub stages: u32,
    /// Occupied slices (core only, no conversion modules).
    pub slices: u32,
    /// Embedded multipliers.
    pub bmults: u32,
    /// Clock rate (MHz) on a Virtex-II Pro -7 class device.
    pub clock_mhz: f64,
    /// Dynamic power at 100 MHz (mW) where published (Table 4).
    pub power_mw_100mhz: Option<f64>,
}

impl VendorCore {
    /// The paper's frequency/area metric.
    pub fn freq_per_area(&self) -> f64 {
        self.clock_mhz / self.slices as f64
    }

    /// Nallatech 32-bit adder.
    pub const NALLATECH_ADD32: VendorCore = VendorCore {
        kind: VendorKind::Nallatech,
        description: "32-bit adder",
        format: FpFormat::SINGLE,
        stages: 9,
        slices: 312,
        bmults: 0,
        clock_mhz: 184.0,
        power_mw_100mhz: None,
    };

    /// Nallatech 32-bit multiplier.
    pub const NALLATECH_MUL32: VendorCore = VendorCore {
        kind: VendorKind::Nallatech,
        description: "32-bit multiplier",
        format: FpFormat::SINGLE,
        stages: 8,
        slices: 134,
        bmults: 4,
        clock_mhz: 186.0,
        power_mw_100mhz: None,
    };

    /// Quixilica 32-bit adder.
    pub const QUIXILICA_ADD32: VendorCore = VendorCore {
        kind: VendorKind::Quixilica,
        description: "32-bit adder",
        format: FpFormat::SINGLE,
        stages: 6,
        slices: 235,
        bmults: 0,
        clock_mhz: 164.0,
        power_mw_100mhz: None,
    };

    /// Quixilica 32-bit multiplier.
    pub const QUIXILICA_MUL32: VendorCore = VendorCore {
        kind: VendorKind::Quixilica,
        description: "32-bit multiplier",
        format: FpFormat::SINGLE,
        stages: 5,
        slices: 118,
        bmults: 4,
        clock_mhz: 158.0,
        power_mw_100mhz: None,
    };

    /// NEU parameterized-library 64-bit adder.
    pub const NEU_ADD64: VendorCore = VendorCore {
        kind: VendorKind::Neu,
        description: "64-bit adder",
        format: FpFormat::DOUBLE,
        stages: 4,
        slices: 770,
        bmults: 0,
        clock_mhz: 82.0,
        power_mw_100mhz: Some(138.0),
    };

    /// NEU parameterized-library 64-bit multiplier.
    pub const NEU_MUL64: VendorCore = VendorCore {
        kind: VendorKind::Neu,
        description: "64-bit multiplier",
        format: FpFormat::DOUBLE,
        stages: 3,
        slices: 525,
        bmults: 16,
        clock_mhz: 74.0,
        power_mw_100mhz: Some(112.0),
    };

    /// All modeled cores.
    pub const ALL: [VendorCore; 6] = [
        VendorCore::NALLATECH_ADD32,
        VendorCore::NALLATECH_MUL32,
        VendorCore::QUIXILICA_ADD32,
        VendorCore::QUIXILICA_MUL32,
        VendorCore::NEU_ADD64,
        VendorCore::NEU_MUL64,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_properties() {
        assert!(VendorKind::Nallatech.uses_custom_format());
        assert!(VendorKind::Quixilica.uses_custom_format());
        assert!(!VendorKind::Neu.uses_custom_format());
        assert_eq!(VendorKind::Neu.name(), "NEU");
    }

    #[test]
    fn commercial_cores_are_shallower_than_deep_usc() {
        for c in [VendorCore::NALLATECH_ADD32, VendorCore::QUIXILICA_ADD32] {
            assert!(c.stages < 12, "{:?}", c.kind);
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the catalogue values
    fn neu_cores_are_slow() {
        // The library predates throughput-oriented pipelining.
        assert!(VendorCore::NEU_ADD64.clock_mhz < 100.0);
        assert!(VendorCore::NEU_MUL64.clock_mhz < 100.0);
    }

    #[test]
    fn freq_per_area_computes() {
        let c = VendorCore::QUIXILICA_MUL32;
        assert!((c.freq_per_area() - 158.0 / 118.0).abs() < 1e-12);
    }

    #[test]
    fn catalog_is_complete() {
        assert_eq!(VendorCore::ALL.len(), 6);
        assert!(VendorCore::ALL.iter().any(|c| c.kind == VendorKind::Neu));
    }
}
