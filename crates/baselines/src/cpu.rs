//! General-purpose processor baselines (Section 4.2).
//!
//! "Using our designs, a Xilinx Virtex-II Pro XC2VP125 device is able to
//! achieve 19.6 GFLOPS for 32-bit matrix multiplication. This is a 6X
//! improvement over the 2.54 GHz Pentium 4 processor, and a 3X
//! improvement over the 1 GHz G4 processor \[3\]."
//!
//! Sustained matrix-multiply figures are used (vendor-published GEMM
//! benchmarks of the era), not theoretical peaks — the paper's ratios
//! only make sense against sustained numbers.

/// A general-purpose processor model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Processor {
    /// Marketing name.
    pub name: &'static str,
    /// Core clock (GHz).
    pub clock_ghz: f64,
    /// Peak single-precision FLOPs per cycle (SIMD width × issue).
    pub peak_flops_per_cycle_single: f64,
    /// Peak double-precision FLOPs per cycle.
    pub peak_flops_per_cycle_double: f64,
    /// Sustained fraction of peak on blocked GEMM.
    pub gemm_efficiency: f64,
    /// Typical power under load (W).
    pub power_w: f64,
}

impl Processor {
    /// Intel Pentium 4 "Northwood", 2.54 GHz: SSE does 4 single (2
    /// double) FLOPs per cycle; GEMM sustains about a third of that on
    /// this microarchitecture.
    pub const PENTIUM4_2_54GHZ: Processor = Processor {
        name: "Pentium 4 (2.54 GHz)",
        clock_ghz: 2.54,
        peak_flops_per_cycle_single: 4.0,
        peak_flops_per_cycle_double: 2.0,
        gemm_efficiency: 0.32,
        power_w: 59.8,
    };

    /// Motorola PowerPC G4 (7455), 1 GHz: AltiVec does 8 single FLOPs
    /// per cycle (4-wide FMA); the scalar FPU gives 2 double FLOPs per
    /// cycle (FMA). GEMM sustains well on its short pipeline.
    pub const G4_1GHZ: Processor = Processor {
        name: "PowerPC G4 (1 GHz)",
        clock_ghz: 1.0,
        peak_flops_per_cycle_single: 8.0,
        peak_flops_per_cycle_double: 2.0,
        gemm_efficiency: 0.80,
        power_w: 15.0,
    };

    /// Peak single-precision GFLOPS.
    pub fn peak_gflops_single(&self) -> f64 {
        self.clock_ghz * self.peak_flops_per_cycle_single
    }

    /// Sustained single-precision GEMM GFLOPS.
    pub fn sustained_gflops_single(&self) -> f64 {
        self.peak_gflops_single() * self.gemm_efficiency
    }

    /// Peak double-precision GFLOPS.
    pub fn peak_gflops_double(&self) -> f64 {
        self.clock_ghz * self.peak_flops_per_cycle_double
    }

    /// Sustained double-precision GEMM GFLOPS.
    pub fn sustained_gflops_double(&self) -> f64 {
        self.peak_gflops_double() * self.gemm_efficiency
    }

    /// Sustained single-precision GFLOPS per watt.
    pub fn gflops_per_watt_single(&self) -> f64 {
        self.sustained_gflops_single() / self.power_w
    }
}

/// A native Rust blocked GEMM, so the repository also carries a *runnable*
/// CPU baseline (useful for sanity checks; absolute numbers depend on the
/// host, which is why the comparisons use the era-correct models above).
pub fn native_sgemm(n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    assert_eq!(c.len(), n * n);
    const BS: usize = 32;
    c.fill(0.0);
    for ib in (0..n).step_by(BS) {
        for kb in (0..n).step_by(BS) {
            for jb in (0..n).step_by(BS) {
                for i in ib..(ib + BS).min(n) {
                    for k in kb..(kb + BS).min(n) {
                        let aik = a[i * n + k];
                        let (crow, brow) = (&mut c[i * n..i * n + n], &b[k * n..k * n + n]);
                        for j in jb..(jb + BS).min(n) {
                            crow[j] += aik * brow[j];
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p4_sustained_matches_paper_ratio() {
        // 19.6 GFLOPS FPGA / 6 ≈ 3.3 GFLOPS on the P4.
        let p4 = Processor::PENTIUM4_2_54GHZ;
        let s = p4.sustained_gflops_single();
        assert!((3.0..3.6).contains(&s), "P4 sustained = {s}");
    }

    #[test]
    fn g4_sustained_matches_paper_ratio() {
        // 19.6 / 3 ≈ 6.5 GFLOPS on the G4.
        let g4 = Processor::G4_1GHZ;
        let s = g4.sustained_gflops_single();
        assert!((6.0..7.0).contains(&s), "G4 sustained = {s}");
    }

    #[test]
    fn peaks_exceed_sustained() {
        for p in [Processor::PENTIUM4_2_54GHZ, Processor::G4_1GHZ] {
            assert!(p.peak_gflops_single() > p.sustained_gflops_single());
            assert!(p.peak_gflops_double() >= p.sustained_gflops_double());
        }
    }

    #[test]
    fn native_sgemm_correct() {
        let n = 17; // non-multiple of the block size
        let a: Vec<f32> = (0..n * n).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..n * n).map(|i| (i as f32 * 0.11).cos()).collect();
        let mut c = vec![0.0f32; n * n];
        native_sgemm(n, &a, &b, &mut c);
        for i in 0..n {
            for j in 0..n {
                let want: f32 = (0..n).map(|k| a[i * n + k] * b[k * n + j]).sum();
                assert!((c[i * n + j] - want).abs() < 1e-3, "({i},{j})");
            }
        }
    }

    #[test]
    fn gflops_per_watt_ordering() {
        // The G4 was the efficiency king among 2003 GPPs.
        assert!(
            Processor::G4_1GHZ.gflops_per_watt_single()
                > Processor::PENTIUM4_2_54GHZ.gflops_per_watt_single()
        );
    }
}
