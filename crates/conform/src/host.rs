//! The host-hardware oracle.
//!
//! Every scalar operation is evaluated on the machine's own FPU
//! (SSE/AVX scalar instructions on x86_64), with the IEEE exception
//! flags harvested from the MXCSR status bits around the operation. The
//! conformance harness compares `fpfpga-softfp`'s full-IEEE mode against
//! these results bit for bit — result *and* flags.
//!
//! ## Flag capture
//!
//! On x86_64 the capture sequence is: clear the MXCSR exception bits
//! (and optionally switch the rounding-control field to round-toward-
//! zero), pin the operands behind [`core::hint::black_box`] so the
//! compiler cannot fold or hoist the operation outside the window,
//! evaluate, pin the result, read MXCSR back, restore the caller's
//! MXCSR. The denormal-operand bit (`DE`) is x86-specific side
//! information with no IEEE 754 counterpart and is masked out.
//!
//! On other architectures the same operations run through plain Rust
//! arithmetic and [`flags_supported`] reports `false`; the harness then
//! compares results only.
//!
//! ## Tininess
//!
//! x86 SSE detects tininess *after* rounding with unbounded exponent
//! range and raises the underflow flag only when the delivered result is
//! also inexact. `softfp`'s IEEE mode implements the same convention
//! (see `fpfpga_softfp::exceptions`); the probe test
//! `underflow_is_after_rounding` below pins the host to it.

use fpfpga_softfp::{Flags, RoundMode};

/// True when this build can harvest hardware exception flags.
pub const fn flags_supported() -> bool {
    cfg!(target_arch = "x86_64")
}

/// True when this build can evaluate fused multiply-add in hardware
/// inside the flag-capture window (x86_64 with the FMA extension).
pub fn fma_flags_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
// `_mm_getcsr`/`_mm_setcsr` are deprecated in favour of inline asm, but
// they remain the only stable-Rust way to reach MXCSR and are exactly
// the semantics we need.
#[allow(deprecated)]
mod mxcsr {
    use core::arch::x86_64::{_mm_getcsr, _mm_setcsr};
    use fpfpga_softfp::{Flags, RoundMode};
    use std::hint::black_box;

    /// MXCSR status bits: IE, DE, ZE, OE, UE, PE.
    const STATUS: u32 = 0x3f;
    /// Rounding-control field (bits 13–14); `0b11` = toward zero.
    const RC_MASK: u32 = 0b11 << 13;
    const RC_ZERO: u32 = 0b11 << 13;

    fn to_flags(status: u32) -> Flags {
        Flags {
            invalid: status & 0x01 != 0,
            // 0x02 is DE (denormal operand): x86-only, no IEEE analogue.
            div_by_zero: status & 0x04 != 0,
            overflow: status & 0x08 != 0,
            underflow: status & 0x10 != 0,
            inexact: status & 0x20 != 0,
        }
    }

    /// Run `op` with cleared exception flags (and the requested rounding
    /// mode), returning its value and the flags it raised.
    ///
    /// `op` receives its operands through `black_box`, so it MUST fetch
    /// them itself via the closure's captures being passed through
    /// [`pin`]; see the callers in the parent module.
    pub fn capture<R>(mode: RoundMode, op: impl FnOnce() -> R) -> (R, Flags) {
        unsafe {
            let saved = _mm_getcsr();
            let mut csr = saved & !STATUS;
            if mode == RoundMode::Truncate {
                csr = (csr & !RC_MASK) | RC_ZERO;
            }
            _mm_setcsr(csr);
            let r = op();
            let status = _mm_getcsr() & STATUS;
            _mm_setcsr(saved);
            (r, to_flags(status))
        }
    }

    /// Operand pin: a volatile identity the optimizer cannot see through,
    /// sequenced after the MXCSR write by its own volatility.
    #[inline(always)]
    pub fn pin<T: Copy>(v: T) -> T {
        black_box(v)
    }

    /// Hardware fused multiply-add via the FMA3 scalar instruction.
    ///
    /// # Safety
    /// Caller must have verified the `fma` CPU feature.
    #[target_feature(enable = "fma")]
    pub unsafe fn fmadd_f32(a: f32, b: f32, c: f32) -> f32 {
        use core::arch::x86_64::{_mm_cvtss_f32, _mm_fmadd_ss, _mm_set_ss};
        _mm_cvtss_f32(_mm_fmadd_ss(_mm_set_ss(a), _mm_set_ss(b), _mm_set_ss(c)))
    }

    /// # Safety
    /// Caller must have verified the `fma` CPU feature.
    #[target_feature(enable = "fma")]
    pub unsafe fn fmadd_f64(a: f64, b: f64, c: f64) -> f64 {
        use core::arch::x86_64::{_mm_cvtsd_f64, _mm_fmadd_sd, _mm_set_sd};
        _mm_cvtsd_f64(_mm_fmadd_sd(_mm_set_sd(a), _mm_set_sd(b), _mm_set_sd(c)))
    }
}

/// A host evaluation: the hardware's result bits and, where the platform
/// supports capture, the exception flags it raised.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostEval {
    /// Raw result encoding (`f32` results zero-extended into the `u64`).
    pub bits: u64,
    /// Captured IEEE flags; `None` when the platform cannot provide them.
    pub flags: Option<Flags>,
}

macro_rules! host_binop {
    ($name:ident, $ty:ty, $width:ident, $apply:expr) => {
        /// Evaluate on the host FPU, capturing flags where supported.
        pub fn $name(a: u64, b: u64, mode: RoundMode) -> HostEval {
            let (x, y) = (<$ty>::from_bits(a as $width), <$ty>::from_bits(b as $width));
            #[cfg(target_arch = "x86_64")]
            {
                let f: fn($ty, $ty) -> $ty = $apply;
                let (r, flags) = mxcsr::capture(mode, || {
                    let r = f(mxcsr::pin(x), mxcsr::pin(y));
                    mxcsr::pin(r)
                });
                HostEval {
                    bits: r.to_bits() as u64,
                    flags: Some(flags),
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                let f: fn($ty, $ty) -> $ty = $apply;
                let _ = mode; // non-default rounding needs hardware control
                HostEval {
                    bits: f(x, y).to_bits() as u64,
                    flags: None,
                }
            }
        }
    };
}

host_binop!(add_f32, f32, u32, |x, y| x + y);
host_binop!(sub_f32, f32, u32, |x, y| x - y);
host_binop!(mul_f32, f32, u32, |x, y| x * y);
host_binop!(div_f32, f32, u32, |x, y| x / y);
host_binop!(add_f64, f64, u64, |x, y| x + y);
host_binop!(sub_f64, f64, u64, |x, y| x - y);
host_binop!(mul_f64, f64, u64, |x, y| x * y);
host_binop!(div_f64, f64, u64, |x, y| x / y);

/// Host square root (`sqrtss`/`sqrtsd` on x86_64).
pub fn sqrt_f32(a: u64, mode: RoundMode) -> HostEval {
    let x = f32::from_bits(a as u32);
    #[cfg(target_arch = "x86_64")]
    {
        let (r, flags) = mxcsr::capture(mode, || mxcsr::pin(mxcsr::pin(x).sqrt()));
        HostEval {
            bits: r.to_bits() as u64,
            flags: Some(flags),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = mode;
        HostEval {
            bits: x.sqrt().to_bits() as u64,
            flags: None,
        }
    }
}

/// Host square root, double precision.
pub fn sqrt_f64(a: u64, mode: RoundMode) -> HostEval {
    let x = f64::from_bits(a);
    #[cfg(target_arch = "x86_64")]
    {
        let (r, flags) = mxcsr::capture(mode, || mxcsr::pin(mxcsr::pin(x).sqrt()));
        HostEval {
            bits: r.to_bits(),
            flags: Some(flags),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = mode;
        HostEval {
            bits: x.sqrt().to_bits(),
            flags: None,
        }
    }
}

/// Host fused multiply-add.
///
/// With the FMA extension the scalar `vfmadd` instruction runs inside
/// the capture window; without it the result comes from
/// [`f32::mul_add`] (libm, correctly rounded) and flags are withheld,
/// since libm's internal arithmetic pollutes the status register.
pub fn fma_f32(a: u64, b: u64, c: u64, mode: RoundMode) -> HostEval {
    let (x, y, z) = (
        f32::from_bits(a as u32),
        f32::from_bits(b as u32),
        f32::from_bits(c as u32),
    );
    #[cfg(target_arch = "x86_64")]
    if fma_flags_supported() {
        let (r, flags) = mxcsr::capture(mode, || unsafe {
            mxcsr::pin(mxcsr::fmadd_f32(
                mxcsr::pin(x),
                mxcsr::pin(y),
                mxcsr::pin(z),
            ))
        });
        return HostEval {
            bits: r.to_bits() as u64,
            flags: Some(flags),
        };
    }
    let _ = mode;
    HostEval {
        bits: x.mul_add(y, z).to_bits() as u64,
        flags: None,
    }
}

/// Host fused multiply-add, double precision.
pub fn fma_f64(a: u64, b: u64, c: u64, mode: RoundMode) -> HostEval {
    let (x, y, z) = (f64::from_bits(a), f64::from_bits(b), f64::from_bits(c));
    #[cfg(target_arch = "x86_64")]
    if fma_flags_supported() {
        let (r, flags) = mxcsr::capture(mode, || unsafe {
            mxcsr::pin(mxcsr::fmadd_f64(
                mxcsr::pin(x),
                mxcsr::pin(y),
                mxcsr::pin(z),
            ))
        });
        return HostEval {
            bits: r.to_bits(),
            flags: Some(flags),
        };
    }
    let _ = mode;
    HostEval {
        bits: x.mul_add(y, z).to_bits(),
        flags: None,
    }
}

/// Host narrowing conversion `f64 → f32` (`cvtsd2ss`).
pub fn narrow_f64_f32(a: u64, mode: RoundMode) -> HostEval {
    let x = f64::from_bits(a);
    #[cfg(target_arch = "x86_64")]
    {
        let (r, flags) = mxcsr::capture(mode, || mxcsr::pin(mxcsr::pin(x) as f32));
        HostEval {
            bits: r.to_bits() as u64,
            flags: Some(flags),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = mode;
        HostEval {
            bits: (x as f32).to_bits() as u64,
            flags: None,
        }
    }
}

/// Host widening conversion `f32 → f64` (`cvtss2sd`; exact, mode ignored
/// by the hardware).
pub fn widen_f32_f64(a: u64) -> HostEval {
    let x = f32::from_bits(a as u32);
    #[cfg(target_arch = "x86_64")]
    {
        let (r, flags) =
            mxcsr::capture(RoundMode::NearestEven, || mxcsr::pin(mxcsr::pin(x) as f64));
        HostEval {
            bits: r.to_bits(),
            flags: Some(flags),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        HostEval {
            bits: (x as f64).to_bits(),
            flags: None,
        }
    }
}

/// Host ordered comparison (`None` for unordered, i.e. a NaN operand).
/// Flags are not captured: Rust's comparison lowering is free to use
/// several compare instructions, so the status side-band is not a single
/// instruction's worth of signal.
pub fn compare_f32(a: u64, b: u64) -> Option<core::cmp::Ordering> {
    f32::from_bits(a as u32).partial_cmp(&f32::from_bits(b as u32))
}

/// Host ordered comparison, double precision.
pub fn compare_f64(a: u64, b: u64) -> Option<core::cmp::Ordering> {
    f64::from_bits(a).partial_cmp(&f64::from_bits(b))
}

/// Convenience: host flags of an op already known exact and in range
/// (used by probe tests).
pub fn no_flags() -> Option<Flags> {
    if flags_supported() {
        Some(Flags::NONE)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpfpga_softfp::Flags;

    fn b32(x: f32) -> u64 {
        x.to_bits() as u64
    }
    fn b64(x: f64) -> u64 {
        x.to_bits()
    }

    #[test]
    fn exact_add_raises_nothing() {
        let e = add_f32(b32(1.5), b32(2.25), RoundMode::NearestEven);
        assert_eq!(f32::from_bits(e.bits as u32), 3.75);
        assert_eq!(e.flags, no_flags());
    }

    #[test]
    fn inexact_add_raises_pe() {
        let e = add_f32(b32(0.1), b32(0.2), RoundMode::NearestEven);
        if let Some(f) = e.flags {
            assert_eq!(f, Flags::inexact());
        }
    }

    #[test]
    fn overflow_raises_oe_and_pe() {
        let e = mul_f32(b32(f32::MAX), b32(2.0), RoundMode::NearestEven);
        assert_eq!(f32::from_bits(e.bits as u32), f32::INFINITY);
        if let Some(f) = e.flags {
            assert!(f.overflow && f.inexact, "{f:?}");
        }
    }

    #[test]
    fn truncate_overflow_saturates_to_max_finite() {
        let e = mul_f32(b32(f32::MAX), b32(2.0), RoundMode::Truncate);
        assert_eq!(f32::from_bits(e.bits as u32), f32::MAX);
        if let Some(f) = e.flags {
            assert!(f.overflow && f.inexact, "{f:?}");
        }
    }

    #[test]
    fn div_by_zero_raises_ze_only() {
        let e = div_f32(b32(3.0), b32(0.0), RoundMode::NearestEven);
        assert_eq!(f32::from_bits(e.bits as u32), f32::INFINITY);
        if let Some(f) = e.flags {
            assert_eq!(f, Flags::div_by_zero());
        }
    }

    #[test]
    fn invalid_on_zero_over_zero() {
        let e = div_f32(b32(0.0), b32(0.0), RoundMode::NearestEven);
        assert!(f32::from_bits(e.bits as u32).is_nan());
        if let Some(f) = e.flags {
            assert_eq!(f, Flags::invalid());
        }
    }

    #[test]
    fn snan_raises_invalid_qnan_does_not() {
        let snan = 0x7f80_0001u64;
        let qnan = 0x7fc0_0000u64;
        let e = add_f32(snan, b32(1.0), RoundMode::NearestEven);
        assert!(f32::from_bits(e.bits as u32).is_nan());
        if let Some(f) = e.flags {
            assert!(f.invalid, "sNaN operand must raise invalid");
        }
        let e = add_f32(qnan, b32(1.0), RoundMode::NearestEven);
        if let Some(f) = e.flags {
            assert!(!f.invalid, "quiet NaN propagation raises nothing");
        }
    }

    /// Pins the host's tininess convention: a result whose pre-rounding
    /// magnitude is below the smallest normal but which rounds up *to*
    /// the smallest normal is not tiny (tininess after rounding), so no
    /// underflow is raised — only inexact.
    #[test]
    fn underflow_is_after_rounding() {
        // (1 + 2^-23)·2^-126 × (1 − 2^-23) = (1 − 2^-46)·2^-126: the
        // delivered result rounds up to min normal, and rounding at
        // unbounded precision carries up to 2^-126 too — so the value is
        // not tiny and only inexact is raised.
        let a = f32::from_bits(0x0080_0001);
        let b = 1.0 - f32::EPSILON; // 1 - 2^-23
        let e = mul_f32(b32(a), b32(b), RoundMode::NearestEven);
        assert_eq!(f32::from_bits(e.bits as u32), f32::MIN_POSITIVE);
        if let Some(f) = e.flags {
            assert!(f.inexact, "{f:?}");
            assert!(
                !f.underflow,
                "after-rounding tininess: round-up to min normal is not tiny ({f:?})"
            );
        }
    }

    /// The counterpart boundary: (1 − 2^-24)·2^-126 *also* delivers the
    /// smallest normal (the coarser denormal rounding promotes it), but
    /// at unbounded precision it stays below 2^-126 — tiny — so the host
    /// raises underflow as well as inexact. softfp's
    /// `regress_underflow_when_denormal_rounding_promotes_but_value_was_tiny`
    /// mirrors this exact case.
    #[test]
    fn underflow_raised_even_when_promoted_to_min_normal() {
        let a = 1.0 - f32::EPSILON / 2.0; // 1 - 2^-24
        let e = mul_f32(b32(a), b32(f32::MIN_POSITIVE), RoundMode::NearestEven);
        assert_eq!(f32::from_bits(e.bits as u32), f32::MIN_POSITIVE);
        if let Some(f) = e.flags {
            assert!(f.underflow && f.inexact, "{f:?}");
        }
    }

    #[test]
    fn underflow_raised_when_tiny_and_inexact() {
        let a = f32::MIN_POSITIVE;
        let third = 1.0f32 / 3.0;
        let e = mul_f32(b32(a), b32(third), RoundMode::NearestEven);
        let r = f32::from_bits(e.bits as u32);
        assert!(r > 0.0 && !r.is_normal(), "expected a denormal, got {r}");
        if let Some(f) = e.flags {
            assert!(f.underflow && f.inexact, "{f:?}");
        }
    }

    #[test]
    fn exact_denormal_result_is_not_underflow() {
        let e = mul_f32(b32(f32::MIN_POSITIVE), b32(0.5), RoundMode::NearestEven);
        let r = f32::from_bits(e.bits as u32);
        assert!(r > 0.0 && !r.is_normal());
        if let Some(f) = e.flags {
            assert_eq!(f, Flags::NONE, "exact denormal delivery raises nothing");
        }
    }

    #[test]
    fn sqrt_negative_is_invalid() {
        let e = sqrt_f32(b32(-4.0), RoundMode::NearestEven);
        assert!(f32::from_bits(e.bits as u32).is_nan());
        if let Some(f) = e.flags {
            assert_eq!(f, Flags::invalid());
        }
    }

    #[test]
    fn fma_basic_and_flags() {
        let e = fma_f32(b32(2.0), b32(3.0), b32(4.0), RoundMode::NearestEven);
        assert_eq!(f32::from_bits(e.bits as u32), 10.0);
        if fma_flags_supported() {
            assert_eq!(e.flags, no_flags());
        }
    }

    #[test]
    fn fma_zero_times_inf_is_invalid() {
        let e = fma_f32(
            b32(0.0),
            b32(f32::INFINITY),
            b32(1.0),
            RoundMode::NearestEven,
        );
        assert!(f32::from_bits(e.bits as u32).is_nan());
        if fma_flags_supported() {
            assert!(e.flags.unwrap().invalid);
        }
    }

    /// Probe: what does hardware FMA do for 0 × ∞ + qNaN? IEEE 754-2019
    /// §7.2 leaves the invalid signal implementation-defined here; the
    /// harness must mirror whatever this host does, so pin it.
    #[test]
    fn fma_zero_times_inf_plus_qnan_probe() {
        let qnan = 0x7fc0_0000u64;
        let e = fma_f32(b32(0.0), b32(f32::INFINITY), qnan, RoundMode::NearestEven);
        assert!(f32::from_bits(e.bits as u32).is_nan());
        if fma_flags_supported() {
            // x86 vfmadd propagates the quiet NaN without signaling.
            assert!(
                !e.flags.unwrap().invalid,
                "host signals invalid for 0*inf+qNaN: {:?}",
                e.flags
            );
        }
    }

    #[test]
    fn truncate_mode_rounds_toward_zero() {
        let e = div_f32(b32(1.0), b32(3.0), RoundMode::Truncate);
        let n = div_f32(b32(1.0), b32(3.0), RoundMode::NearestEven);
        assert!(f32::from_bits(e.bits as u32) < f32::from_bits(n.bits as u32));
        let e = div_f32(b32(-1.0), b32(3.0), RoundMode::Truncate);
        let n = div_f32(b32(-1.0), b32(3.0), RoundMode::NearestEven);
        assert!(f32::from_bits(e.bits as u32) > f32::from_bits(n.bits as u32));
    }

    #[test]
    fn f64_paths_work() {
        let e = add_f64(b64(1.5), b64(2.25), RoundMode::NearestEven);
        assert_eq!(f64::from_bits(e.bits), 3.75);
        let e = sqrt_f64(b64(2.0), RoundMode::NearestEven);
        assert_eq!(f64::from_bits(e.bits), 2.0f64.sqrt());
        let e = fma_f64(b64(2.0), b64(3.0), b64(4.0), RoundMode::NearestEven);
        assert_eq!(f64::from_bits(e.bits), 10.0);
    }

    #[test]
    fn conversions() {
        let e = narrow_f64_f32(b64(1.0e300), RoundMode::NearestEven);
        assert_eq!(f32::from_bits(e.bits as u32), f32::INFINITY);
        if let Some(f) = e.flags {
            assert!(f.overflow && f.inexact, "{f:?}");
        }
        let e = widen_f32_f64(b32(1.5));
        assert_eq!(f64::from_bits(e.bits), 1.5);
        assert_eq!(e.flags, no_flags());
    }

    #[test]
    fn mxcsr_is_restored() {
        // Raise everything, then verify the ambient status is untouched
        // by successive captures.
        let before = add_f32(b32(1.0), b32(1.0), RoundMode::NearestEven);
        let _ = div_f32(b32(0.0), b32(0.0), RoundMode::Truncate);
        let after = add_f32(b32(1.0), b32(1.0), RoundMode::NearestEven);
        assert_eq!(before, after);
    }
}
