//! The differential comparisons: softfp (IEEE and flush-to-zero modes)
//! against the host hardware, and the staged `fpfpga-fpu` pipelines
//! against softfp.
//!
//! Comparison policy:
//!
//! * Non-NaN results must match **bit for bit**; NaN results are
//!   compared by NaN-ness only (payload placement is ISA-specific —
//!   softfp's own §6.2 payload rules are pinned by unit tests in
//!   `fpfpga_softfp::ieee` instead).
//! * Exception flags must match exactly wherever the host can deliver
//!   them ([`crate::host::HostEval::flags`] is `Some`); the fpu-vs-softfp
//!   sweep always compares flags.
//! * The flush-to-zero sweep restricts itself to the semantic domain the
//!   paper's cores define: no NaN or denormal operands, and any case
//!   where either side underflows or the host produces a NaN/denormal is
//!   skipped (those are the documented, deliberate deviations).

use crate::corpus::{special_values, CaseGen, Rng64};
use crate::host::{self, HostEval};
use fpfpga_softfp::ieee;
use fpfpga_softfp::{Flags, FpFormat, RoundMode};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Process-wide switch forcing [`eval_ftz`] through the monomorphized
/// `softfp::fastpath` kernels for the ops that have a fast lane
/// (add/sub/mul/fma). Settable programmatically ([`set_force_fastpath`])
/// or via the `FPUCONFORM_FASTPATH` environment variable (any value but
/// `0`); the sweeps must produce byte-identical reports either way —
/// that equivalence is exactly what a forced conformance run checks.
static FORCE_FASTPATH: AtomicBool = AtomicBool::new(false);
static FASTPATH_ENV: OnceLock<bool> = OnceLock::new();

/// Force (or stop forcing) the fast-lane kernels in [`eval_ftz`].
pub fn set_force_fastpath(on: bool) {
    FORCE_FASTPATH.store(on, Ordering::Relaxed);
}

/// True when the fast lane is forced, by flag or by environment.
pub fn fastpath_forced() -> bool {
    FORCE_FASTPATH.load(Ordering::Relaxed)
        || *FASTPATH_ENV
            .get_or_init(|| std::env::var_os("FPUCONFORM_FASTPATH").is_some_and(|v| v != *"0"))
}

/// Process-wide switch routing [`eval_ftz`] add/sub/mul/fma through the
/// `softfp::simd` one-shot dispatchers, which honor the active
/// [`SimdPolicy`](fpfpga_softfp::simd::SimdPolicy) — so a sweep under
/// `--simd wide` exercises the real vector datapath (broadcast batch,
/// classify-then-partition fixup) case by case. Settable
/// programmatically ([`set_force_simd`]) or via the `FPUCONFORM_SIMD`
/// environment variable (any value but `0`). Takes precedence over the
/// fast-lane switch; sweeps must stay byte-identical in every mode.
static FORCE_SIMD: AtomicBool = AtomicBool::new(false);
static SIMD_ENV: OnceLock<bool> = OnceLock::new();

/// Force (or stop forcing) the SIMD dispatchers in [`eval_ftz`].
pub fn set_force_simd(on: bool) {
    FORCE_SIMD.store(on, Ordering::Relaxed);
}

/// True when the SIMD dispatchers are forced, by flag or by environment.
pub fn simd_forced() -> bool {
    FORCE_SIMD.load(Ordering::Relaxed)
        || *SIMD_ENV.get_or_init(|| std::env::var_os("FPUCONFORM_SIMD").is_some_and(|v| v != *"0"))
}

/// An operation under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Square root (unary).
    Sqrt,
    /// Fused multiply-add (ternary).
    Fma,
    /// Format conversion: single widens to double, double narrows to
    /// single (unary).
    Convert,
    /// Ordered comparison (result is an ordering code, not an encoding).
    Compare,
}

impl Op {
    /// Every op, in canonical order.
    pub const ALL: [Op; 8] = [
        Op::Add,
        Op::Sub,
        Op::Mul,
        Op::Div,
        Op::Sqrt,
        Op::Fma,
        Op::Convert,
        Op::Compare,
    ];

    /// Canonical lower-case name (CLI token).
    pub fn name(self) -> &'static str {
        match self {
            Op::Add => "add",
            Op::Sub => "sub",
            Op::Mul => "mul",
            Op::Div => "div",
            Op::Sqrt => "sqrt",
            Op::Fma => "fma",
            Op::Convert => "convert",
            Op::Compare => "compare",
        }
    }

    /// Parse a CLI token.
    pub fn parse(s: &str) -> Option<Op> {
        Op::ALL.into_iter().find(|o| o.name() == s)
    }

    /// Number of operands.
    pub fn arity(self) -> usize {
        match self {
            Op::Sqrt | Op::Convert => 1,
            Op::Fma => 3,
            _ => 2,
        }
    }
}

/// Canonical short name for a format (CLI token / corpus token).
///
/// Thin wrapper over [`FpFormat::canonical_name`] — the single grammar
/// shared by the `fpuconform`, `fpuserve` and `fpugen` CLIs.
pub fn format_name(fmt: FpFormat) -> String {
    fmt.canonical_name()
}

/// Parse a format token produced by [`format_name`].
///
/// Thin wrapper over `FpFormat`'s [`FromStr`](core::str::FromStr) impl.
pub fn parse_format(s: &str) -> Option<FpFormat> {
    s.parse().ok()
}

/// Mode token.
pub fn mode_name(mode: RoundMode) -> &'static str {
    match mode {
        RoundMode::NearestEven => "rne",
        RoundMode::Truncate => "rtz",
    }
}

/// Parse a mode token.
pub fn parse_mode(s: &str) -> Option<RoundMode> {
    match s {
        "rne" => Some(RoundMode::NearestEven),
        "rtz" => Some(RoundMode::Truncate),
        _ => None,
    }
}

/// One concrete test case: an op with its format, rounding mode and
/// operand encodings (unused operands are zero).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Case {
    /// Operation.
    pub op: Op,
    /// Operand (and, except for `Convert`, result) format.
    pub fmt: FpFormat,
    /// Rounding mode.
    pub mode: RoundMode,
    /// First operand.
    pub a: u64,
    /// Second operand (binary and ternary ops).
    pub b: u64,
    /// Third operand (fma).
    pub c: u64,
}

/// Ordering code used to report `Compare` results through the same
/// `u64` channel as encodings: 0 = less, 1 = equal, 2 = greater,
/// 3 = unordered.
pub fn ordering_code(ord: Option<core::cmp::Ordering>) -> u64 {
    match ord {
        Some(core::cmp::Ordering::Less) => 0,
        Some(core::cmp::Ordering::Equal) => 1,
        Some(core::cmp::Ordering::Greater) => 2,
        None => 3,
    }
}

/// A detected divergence: the case, what we computed, what the
/// reference computed.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The failing case.
    pub case: Case,
    /// Our result bits (or ordering code) and flags.
    pub ours: (u64, Flags),
    /// Reference result bits (or ordering code) and flags (when
    /// available).
    pub reference: (u64, Option<Flags>),
    /// Which sweep produced it.
    pub against: &'static str,
}

/// The result format of a case (differs from the operand format only
/// for `Convert`).
pub fn result_format(case: &Case) -> FpFormat {
    if case.op == Op::Convert {
        if case.fmt == FpFormat::DOUBLE {
            FpFormat::SINGLE
        } else {
            FpFormat::DOUBLE
        }
    } else {
        case.fmt
    }
}

/// Evaluate a case in softfp's full-IEEE mode.
pub fn eval_ieee(case: &Case) -> (u64, Flags) {
    let Case {
        op,
        fmt,
        mode,
        a,
        b,
        c,
    } = *case;
    match op {
        Op::Add => ieee::ieee_add(fmt, a, b, mode),
        Op::Sub => ieee::ieee_sub(fmt, a, b, mode),
        Op::Mul => ieee::ieee_mul(fmt, a, b, mode),
        Op::Div => ieee::ieee_div(fmt, a, b, mode),
        Op::Sqrt => ieee::ieee_sqrt(fmt, a, mode),
        Op::Fma => ieee::ieee_fma(fmt, a, b, c, mode),
        Op::Convert => ieee::ieee_convert(fmt, a, result_format(case), mode),
        Op::Compare => {
            let (ord, flags) = ieee::ieee_compare(fmt, a, b);
            (ordering_code(ord), flags)
        }
    }
}

/// Evaluate a case on the host hardware. Only meaningful for the two
/// native formats.
pub fn eval_host(case: &Case) -> HostEval {
    let Case {
        op, mode, a, b, c, ..
    } = *case;
    let single = case.fmt == FpFormat::SINGLE;
    match op {
        Op::Add if single => host::add_f32(a, b, mode),
        Op::Add => host::add_f64(a, b, mode),
        Op::Sub if single => host::sub_f32(a, b, mode),
        Op::Sub => host::sub_f64(a, b, mode),
        Op::Mul if single => host::mul_f32(a, b, mode),
        Op::Mul => host::mul_f64(a, b, mode),
        Op::Div if single => host::div_f32(a, b, mode),
        Op::Div => host::div_f64(a, b, mode),
        Op::Sqrt if single => host::sqrt_f32(a, mode),
        Op::Sqrt => host::sqrt_f64(a, mode),
        Op::Fma if single => host::fma_f32(a, b, c, mode),
        Op::Fma => host::fma_f64(a, b, c, mode),
        Op::Convert if single => host::widen_f32_f64(a),
        Op::Convert => host::narrow_f64_f32(a, mode),
        Op::Compare => {
            let ord = if single {
                host::compare_f32(a, b)
            } else {
                host::compare_f64(a, b)
            };
            HostEval {
                bits: ordering_code(ord),
                flags: None,
            }
        }
    }
}

/// Bit-exact result comparison with the NaN-ness exemption.
pub fn results_match(res_fmt: FpFormat, op: Op, got: u64, want: u64) -> bool {
    got == want || (op != Op::Compare && ieee::is_nan(res_fmt, got) && ieee::is_nan(res_fmt, want))
}

/// Check one case in IEEE mode against the host. `None` means agreement.
pub fn check_case(case: &Case) -> Option<Divergence> {
    let ours = eval_ieee(case);
    let reference = eval_host(case);
    let res_fmt = result_format(case);
    let bits_ok = results_match(res_fmt, case.op, ours.0, reference.bits);
    let flags_ok = match reference.flags {
        Some(h) => ours.1 == h,
        None => true,
    };
    if bits_ok && flags_ok {
        None
    } else {
        Some(Divergence {
            case: *case,
            ours,
            reference: (reference.bits, reference.flags),
            against: "host",
        })
    }
}

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Ops to sweep.
    pub ops: Vec<Op>,
    /// Formats to sweep (host sweeps silently keep only f32/f64).
    pub formats: Vec<FpFormat>,
    /// Random samples per (op, format, mode) combination, on top of the
    /// exhaustive special-value cross product.
    pub samples: u64,
    /// Seed for the random corpus.
    pub seed: u64,
    /// At most this many divergences are *stored* per combination
    /// (all are counted).
    pub max_divergences: usize,
    /// Worker threads the sweeps shard over (0 = one per CPU). Sharding
    /// is at (op, format, mode)-combination granularity and every
    /// combination derives its own seed, so the report is byte-identical
    /// for every thread count.
    pub threads: usize,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            ops: Op::ALL.to_vec(),
            formats: vec![FpFormat::SINGLE, FpFormat::FP48, FpFormat::DOUBLE],
            samples: 20_000,
            seed: 1,
            max_divergences: 8,
            threads: 1,
        }
    }
}

/// Outcome of one (op, format, mode) combination.
#[derive(Clone, Debug)]
pub struct OpReport {
    /// Operation.
    pub op: Op,
    /// Operand format.
    pub fmt: FpFormat,
    /// Rounding mode.
    pub mode: RoundMode,
    /// Cases evaluated (after domain masking).
    pub cases: u64,
    /// Cases skipped by domain masking (flush-to-zero sweep only).
    pub skipped: u64,
    /// Total divergences counted.
    pub divergences: u64,
    /// First few divergences, for reporting/shrinking.
    pub examples: Vec<Divergence>,
}

/// Aggregated sweep outcome.
#[derive(Clone, Debug, Default)]
pub struct SweepReport {
    /// Per-combination reports.
    pub reports: Vec<OpReport>,
}

impl SweepReport {
    /// Total cases across the sweep.
    pub fn total_cases(&self) -> u64 {
        self.reports.iter().map(|r| r.cases).sum()
    }

    /// Total divergences across the sweep.
    pub fn total_divergences(&self) -> u64 {
        self.reports.iter().map(|r| r.divergences).sum()
    }

    /// All stored example divergences.
    pub fn examples(&self) -> impl Iterator<Item = &Divergence> {
        self.reports.iter().flat_map(|r| r.examples.iter())
    }
}

const MODES: [RoundMode; 2] = [RoundMode::NearestEven, RoundMode::Truncate];

fn derived_seed(base: u64, op: Op, fmt: FpFormat, mode: RoundMode) -> u64 {
    let mut h = Rng64::new(base ^ ((op as u64) << 8) ^ ((fmt.exp_bits() as u64) << 16));
    h.next_u64() ^ ((fmt.frac_bits() as u64) << 32) ^ (mode == RoundMode::Truncate) as u64
}

/// Generate the case stream for one combination: the exhaustive
/// special-value cross product (squared for binary ops; the special
/// square × specials diagonal slices for ternary) followed by `samples`
/// biased random draws.
fn cases_for(
    op: Op,
    fmt: FpFormat,
    mode: RoundMode,
    samples: u64,
    seed: u64,
    mut visit: impl FnMut(Case),
) {
    let specials = special_values(fmt);
    let case = |a, b, c| Case {
        op,
        fmt,
        mode,
        a,
        b,
        c,
    };
    match op.arity() {
        1 => {
            for &a in &specials {
                visit(case(a, 0, 0));
            }
        }
        2 => {
            for &a in &specials {
                for &b in &specials {
                    visit(case(a, b, 0));
                }
            }
        }
        _ => {
            // Full cube is ~70³ ≈ 350k per combination — run the three
            // axis-aligned squares through zero/one/inf anchors plus the
            // rotated diagonal cube instead.
            let n = specials.len();
            let anchors = [0u64, fmt.pack(false, fmt.bias() as u64, 0), fmt.pos_inf()];
            for &a in &specials {
                for &b in &specials {
                    for c in anchors {
                        visit(case(a, b, c));
                    }
                }
            }
            for i in 0..n {
                for j in 0..n {
                    visit(case(specials[i], specials[j], specials[(i + j) % n]));
                }
            }
        }
    }
    let mut gen = CaseGen::new(fmt, derived_seed(seed, op, fmt, mode));
    for _ in 0..samples {
        let (a, b, c) = match op.arity() {
            1 => (gen.value(), 0, 0),
            2 => {
                let (a, b) = gen.pair();
                (a, b, 0)
            }
            _ => gen.triple(),
        };
        visit(case(a, b, c));
    }
}

/// The (op, format, mode) combinations a sweep covers, in canonical
/// (report) order. Each combination derives its own corpus seed, so
/// they can be evaluated independently on any thread.
fn combos(config: &SweepConfig, host_only: bool) -> Vec<(Op, FpFormat, RoundMode)> {
    let mut out = Vec::new();
    for &op in &config.ops {
        for &fmt in &config.formats {
            if host_only && fmt != FpFormat::SINGLE && fmt != FpFormat::DOUBLE {
                continue; // the host has no hardware for custom formats
            }
            for mode in MODES {
                out.push((op, fmt, mode));
            }
        }
    }
    out
}

/// Sweep softfp's IEEE mode against the host for every requested op ×
/// native format × rounding mode, sharded over `config.threads` scoped
/// workers (combination granularity; byte-identical at any count).
pub fn run_ieee_sweep(config: &SweepConfig) -> SweepReport {
    let combos = combos(config, true);
    let reports = fpfpga_fpu::parallel_map_slice(config.threads, &combos, |_, &(op, fmt, mode)| {
        let mut r = OpReport {
            op,
            fmt,
            mode,
            cases: 0,
            skipped: 0,
            divergences: 0,
            examples: Vec::new(),
        };
        cases_for(op, fmt, mode, config.samples, config.seed, |case| {
            r.cases += 1;
            if let Some(d) = check_case(&case) {
                r.divergences += 1;
                if r.examples.len() < config.max_divergences {
                    r.examples.push(d);
                }
            }
        });
        r
    });
    SweepReport { reports }
}

/// True when `bits` is a NaN or denormal encoding in `fmt` — outside the
/// flush-to-zero cores' input domain.
fn outside_ftz_domain(fmt: FpFormat, bits: u64) -> bool {
    let (_, e, m) = fmt.unpack_fields(bits);
    m != 0 && (e == fmt.inf_biased_exp() || e == 0)
}

/// Evaluate a case with the paper-faithful flush-to-zero ops. When the
/// SIMD dispatch is forced ([`simd_forced`]), add/sub/mul/fma route
/// through the `softfp::simd` one-shot dispatchers under the active
/// policy; otherwise, when the fast lane is forced
/// ([`fastpath_forced`]), they route through the monomorphized
/// `softfp::fastpath` dispatchers instead of the generic unpacked path.
/// div/sqrt/convert/compare have no fast or vector lane and always use
/// the generic implementations.
pub fn eval_ftz(case: &Case) -> (u64, Flags) {
    let Case {
        op,
        fmt,
        mode,
        a,
        b,
        c,
    } = *case;
    if simd_forced() {
        use fpfpga_softfp::simd;
        match op {
            Op::Add => return simd::add_bits(fmt, a, b, mode),
            Op::Sub => return simd::sub_bits(fmt, a, b, mode),
            Op::Mul => return simd::mul_bits(fmt, a, b, mode),
            Op::Fma => return simd::fma_bits(fmt, a, b, c, mode),
            _ => {}
        }
    }
    if fastpath_forced() {
        use fpfpga_softfp::fastpath;
        match op {
            Op::Add => return fastpath::add_bits(fmt, a, b, mode),
            Op::Sub => return fastpath::sub_bits(fmt, a, b, mode),
            Op::Mul => return fastpath::mul_bits(fmt, a, b, mode),
            Op::Fma => return fastpath::fma_bits(fmt, a, b, c, mode),
            _ => {}
        }
    }
    match op {
        Op::Add => fpfpga_softfp::add_bits(fmt, a, b, mode),
        Op::Sub => fpfpga_softfp::sub_bits(fmt, a, b, mode),
        Op::Mul => fpfpga_softfp::mul_bits(fmt, a, b, mode),
        Op::Div => fpfpga_softfp::div_bits(fmt, a, b, mode),
        Op::Sqrt => fpfpga_softfp::sqrt_bits(fmt, a, mode),
        Op::Fma => fpfpga_softfp::fma_bits(fmt, a, b, c, mode),
        Op::Convert => fpfpga_softfp::convert::convert(fmt, a, result_format(case), mode),
        Op::Compare => {
            let ord = fpfpga_softfp::compare::compare(fmt, a, b);
            (ordering_code(Some(ord)), Flags::NONE)
        }
    }
}

/// Sweep the flush-to-zero layer against the host on the common
/// semantic domain (no NaNs or denormals in, no NaN/denormal/underflow
/// cases out — those deviations are deliberate and documented).
pub fn run_ftz_sweep(config: &SweepConfig) -> SweepReport {
    let combos = combos(config, true);
    let reports = fpfpga_fpu::parallel_map_slice(config.threads, &combos, |_, &(op, fmt, mode)| {
        let mut r = OpReport {
            op,
            fmt,
            mode,
            cases: 0,
            skipped: 0,
            divergences: 0,
            examples: Vec::new(),
        };
        cases_for(op, fmt, mode, config.samples, config.seed ^ 0xf72, |case| {
            let operands = [case.a, case.b, case.c];
            if operands[..case.op.arity()]
                .iter()
                .any(|&x| outside_ftz_domain(fmt, x))
            {
                r.skipped += 1;
                return;
            }
            let ours = eval_ftz(&case);
            let reference = eval_host(&case);
            let res_fmt = result_format(&case);
            // Deliberate-deviation masking.
            if case.op != Op::Compare
                && (ieee::is_nan(res_fmt, reference.bits)
                    || outside_ftz_domain(res_fmt, reference.bits)
                    || ours.1.underflow
                    || reference.flags.is_some_and(|f| f.underflow))
            {
                r.skipped += 1;
                return;
            }
            r.cases += 1;
            let flags_ok = match (case.op, reference.flags) {
                (Op::Compare, _) | (_, None) => true,
                // FTZ invalid handling substitutes values, so only
                // the non-invalid cases compare flags exactly.
                (_, Some(h)) => ours.1 == h,
            };
            if ours.0 != reference.bits || !flags_ok {
                r.divergences += 1;
                if r.examples.len() < config.max_divergences {
                    r.examples.push(Divergence {
                        case,
                        ours,
                        reference: (reference.bits, reference.flags),
                        against: "host-ftz",
                    });
                }
            }
        });
        r
    });
    SweepReport { reports }
}

/// Sweep the staged `fpfpga-fpu` pipeline units against softfp across
/// **every** pipeline depth of each unit's legal range, for all
/// requested formats (custom formats included — this sweep needs no
/// host hardware).
pub fn run_fpu_sweep(config: &SweepConfig) -> SweepReport {
    use fpfpga_fpu::prelude::*;

    let pipeline_ops = [Op::Add, Op::Sub, Op::Mul, Op::Div, Op::Sqrt];
    let pipeline_config = SweepConfig {
        ops: config
            .ops
            .iter()
            .copied()
            .filter(|op| pipeline_ops.contains(op))
            .collect(),
        ..config.clone()
    };
    let combos = combos(&pipeline_config, false);
    let reports = fpfpga_fpu::parallel_map_slice(config.threads, &combos, |_, &(op, fmt, mode)| {
        {
            let stage_range: u32 = match op {
                Op::Div => 39,
                Op::Sqrt => 29,
                _ => 23,
            };
            let per_stage = (config.samples / stage_range as u64).max(8);
            let specials = special_values(fmt);
            let mut r = OpReport {
                op,
                fmt,
                mode,
                cases: 0,
                skipped: 0,
                divergences: 0,
                examples: Vec::new(),
            };
            let mut gen = CaseGen::new(fmt, derived_seed(config.seed ^ 0xf9a, op, fmt, mode));
            for stages in 1..=stage_range {
                let mut unit = match op {
                    Op::Add => AdderDesign {
                        format: fmt,
                        round: mode,
                        force_priority_encoder: true,
                    }
                    .simulator(stages),
                    Op::Sub => AdderDesign {
                        format: fmt,
                        round: mode,
                        force_priority_encoder: true,
                    }
                    .simulator(stages)
                    .with_subtract(true),
                    Op::Mul => MultiplierDesign {
                        format: fmt,
                        round: mode,
                    }
                    .simulator(stages),
                    Op::Div => DividerDesign {
                        format: fmt,
                        round: mode,
                    }
                    .simulator(stages),
                    _ => SqrtDesign {
                        format: fmt,
                        round: mode,
                    }
                    .simulator(stages),
                };
                let mut run = |a: u64, b: u64| {
                    let mut out = unit.clock(Some((a, b)));
                    let mut guard = 0;
                    while out.is_none() {
                        out = unit.clock(None);
                        guard += 1;
                        assert!(guard <= unit.latency() + 1, "pipeline never produced");
                    }
                    let (got, gf) = out.unwrap();
                    let case = Case {
                        op,
                        fmt,
                        mode,
                        a,
                        b,
                        c: 0,
                    };
                    let (want, wf) = eval_ftz(&case);
                    r.cases += 1;
                    if got != want || gf != wf {
                        r.divergences += 1;
                        if r.examples.len() < config.max_divergences {
                            r.examples.push(Divergence {
                                case,
                                ours: (got, gf),
                                reference: (want, Some(wf)),
                                against: "softfp-fpu",
                            });
                        }
                    }
                };
                // A rotated slice of the special-value square plus the
                // random tranche, at every single stage count.
                let n = specials.len();
                for (i, &a) in specials.iter().enumerate() {
                    let b = specials[(i + stages as usize) % n];
                    run(a, if op == Op::Sqrt { 0 } else { b });
                }
                for _ in 0..per_stage {
                    let (a, b) = gen.pair();
                    run(a, if op == Op::Sqrt { 0 } else { b });
                }
            }
            r
        }
    });
    SweepReport { reports }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_tokens_roundtrip() {
        for op in Op::ALL {
            assert_eq!(Op::parse(op.name()), Some(op));
        }
        assert_eq!(Op::parse("bogus"), None);
    }

    #[test]
    fn format_tokens_roundtrip() {
        for fmt in [
            FpFormat::SINGLE,
            FpFormat::FP48,
            FpFormat::DOUBLE,
            FpFormat::new(6, 17),
        ] {
            assert_eq!(parse_format(&format_name(fmt)), Some(fmt));
        }
    }

    #[test]
    fn specials_cross_product_is_clean_for_add() {
        let config = SweepConfig {
            ops: vec![Op::Add],
            formats: vec![FpFormat::SINGLE],
            samples: 500,
            ..SweepConfig::default()
        };
        let report = run_ieee_sweep(&config);
        assert_eq!(
            report.total_divergences(),
            0,
            "{:?}",
            report.examples().next()
        );
        assert!(report.total_cases() > 5_000);
    }

    #[test]
    fn ftz_sweep_masks_its_deviations() {
        let config = SweepConfig {
            ops: vec![Op::Mul, Op::Compare],
            formats: vec![FpFormat::SINGLE],
            samples: 2_000,
            ..SweepConfig::default()
        };
        let report = run_ftz_sweep(&config);
        assert_eq!(
            report.total_divergences(),
            0,
            "{:?}",
            report.examples().next()
        );
    }

    #[test]
    fn host_sweeps_are_thread_count_invariant() {
        let base = SweepConfig {
            ops: vec![Op::Add, Op::Mul],
            formats: vec![FpFormat::SINGLE],
            samples: 300,
            ..SweepConfig::default()
        };
        let want_ieee = format!("{:?}", run_ieee_sweep(&base));
        let want_ftz = format!("{:?}", run_ftz_sweep(&base));
        for threads in [2usize, 5, 0] {
            let cfg = SweepConfig {
                threads,
                ..base.clone()
            };
            let got = format!("{:?}", run_ieee_sweep(&cfg));
            assert_eq!(got, want_ieee, "ieee threads={threads}");
            let got = format!("{:?}", run_ftz_sweep(&cfg));
            assert_eq!(got, want_ftz, "ftz threads={threads}");
        }
    }

    #[test]
    fn fpu_sweep_is_thread_count_invariant() {
        let base = SweepConfig {
            ops: vec![Op::Add, Op::Mul],
            formats: vec![FpFormat::SINGLE],
            samples: 100,
            ..SweepConfig::default()
        };
        let want = format!("{:?}", run_fpu_sweep(&base));
        for threads in [3usize, 0] {
            let cfg = SweepConfig {
                threads,
                ..base.clone()
            };
            assert_eq!(
                format!("{:?}", run_fpu_sweep(&cfg)),
                want,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn forced_fastpath_report_is_byte_identical() {
        // The whole point of the fast lane: forcing it through every
        // sweep combination must not change a single byte of the report.
        let cfg = SweepConfig {
            ops: vec![Op::Add, Op::Sub, Op::Mul, Op::Fma],
            formats: vec![FpFormat::SINGLE],
            samples: 500,
            ..SweepConfig::default()
        };
        let plain = format!("{:?}", run_ftz_sweep(&cfg));
        set_force_fastpath(true);
        let forced = format!("{:?}", run_ftz_sweep(&cfg));
        set_force_fastpath(false);
        assert_eq!(plain, forced);
    }

    #[test]
    fn forced_simd_report_is_byte_identical_in_every_policy() {
        use fpfpga_softfp::simd::{set_simd_policy, SimdPolicy};
        // Divergence-free dispatch: every SIMD policy must reproduce the
        // plain sweep report byte for byte.
        let cfg = SweepConfig {
            ops: vec![Op::Add, Op::Sub, Op::Mul, Op::Fma],
            formats: vec![FpFormat::SINGLE, FpFormat::DOUBLE],
            samples: 500,
            ..SweepConfig::default()
        };
        let plain = format!("{:?}", run_ftz_sweep(&cfg));
        set_force_simd(true);
        for policy in [
            SimdPolicy::ForceScalar,
            SimdPolicy::ForceWide,
            SimdPolicy::Auto,
        ] {
            set_simd_policy(policy);
            let forced = format!("{:?}", run_ftz_sweep(&cfg));
            assert_eq!(plain, forced, "policy {policy:?}");
        }
        set_simd_policy(SimdPolicy::Auto);
        set_force_simd(false);
        assert_eq!(plain, format!("{:?}", run_ftz_sweep(&cfg)));
    }
}
