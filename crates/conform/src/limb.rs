//! Wide-format (multi-limb) conformance sweep.
//!
//! The scalar sweeps in [`crate::diff`] can compare against the host
//! because f32/f64 exist in hardware. Beyond 64 bits there is no host
//! to defer to, so the wide sweep is differential against the
//! `BigFloat` oracle in `fpfpga_softfp::limb::oracle` — an exact
//! integer-arithmetic evaluator with a single explicit rounding step
//! that shares *no* code with the kernels' align/add/normalize/round
//! datapath. Structure mirrors the scalar harness: an exhaustive
//! special-value cross product per (op, format, mode), then seeded
//! boundary-biased random sampling, sharded over scoped threads with
//! per-combination seeds so reports are byte-identical at any thread
//! count.
//!
//! Divergences render as one-line reproducers in the same grammar as
//! the scalar corpus, with each operand printed as one full-width hex
//! encoding:
//!
//! ```text
//! add f128 rne 0x3fff0000000000000000000000000001 0xbffe0000000000000000000000000000
//! ```
//!
//! Checked-in wide reproducers live in `tests/conform_corpus/limb/`
//! (a subdirectory, so the scalar corpus replay — which parses every
//! `*.txt` with the 64-bit grammar — does not trip over them).

use crate::corpus::Rng64;
use crate::diff::{mode_name, parse_mode, Op};
use fpfpga_softfp::limb::oracle::{oracle_add, oracle_fma, oracle_mul, oracle_sub};
use fpfpga_softfp::limb::{limb_add, limb_fma, limb_mul, limb_sub, Big, LimbFormat};
use fpfpga_softfp::{Flags, RoundMode};

/// The ops that have limb kernels (no div/sqrt datapath yet).
pub const LIMB_OPS: [Op; 4] = [Op::Add, Op::Sub, Op::Mul, Op::Fma];

const MODES: [RoundMode; 2] = [RoundMode::NearestEven, RoundMode::Truncate];

/// One wide-format test case. Operands are full encodings as
/// little-endian limb vectors of exactly `fmt.limbs()` limbs (unused
/// operands are all-zero vectors).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LimbCase {
    /// Operation (one of [`LIMB_OPS`]).
    pub op: Op,
    /// Operand and result format.
    pub fmt: LimbFormat,
    /// Rounding mode.
    pub mode: RoundMode,
    /// First operand.
    pub a: Vec<u64>,
    /// Second operand.
    pub b: Vec<u64>,
    /// Third operand (fma only).
    pub c: Vec<u64>,
}

/// Evaluate a case through the limb kernels.
pub fn eval_limb(case: &LimbCase) -> (Vec<u64>, Flags) {
    let (f, m) = (case.fmt, case.mode);
    match case.op {
        Op::Add => limb_add(f, &case.a, &case.b, m),
        Op::Sub => limb_sub(f, &case.a, &case.b, m),
        Op::Mul => limb_mul(f, &case.a, &case.b, m),
        Op::Fma => limb_fma(f, &case.a, &case.b, &case.c, m),
        other => unreachable!("op {other:?} has no limb kernel"),
    }
}

/// Evaluate a case through the exact-arithmetic oracle.
pub fn eval_limb_oracle(case: &LimbCase) -> (Vec<u64>, Flags) {
    let (f, m) = (case.fmt, case.mode);
    match case.op {
        Op::Add => oracle_add(f, &case.a, &case.b, m),
        Op::Sub => oracle_sub(f, &case.a, &case.b, m),
        Op::Mul => oracle_mul(f, &case.a, &case.b, m),
        Op::Fma => oracle_fma(f, &case.a, &case.b, &case.c, m),
        other => unreachable!("op {other:?} has no limb oracle"),
    }
}

/// A kernel/oracle disagreement.
#[derive(Clone, Debug)]
pub struct LimbDivergence {
    /// The diverging case.
    pub case: LimbCase,
    /// Kernel result (bits, flags).
    pub ours: (Vec<u64>, Flags),
    /// Oracle result (bits, flags).
    pub reference: (Vec<u64>, Flags),
}

/// Compare kernel and oracle on one case.
pub fn check_limb_case(case: &LimbCase) -> Option<LimbDivergence> {
    let ours = eval_limb(case);
    let reference = eval_limb_oracle(case);
    if ours == reference {
        None
    } else {
        Some(LimbDivergence {
            case: case.clone(),
            ours,
            reference,
        })
    }
}

/// The wide-format special-value set: the same encoding classes the
/// scalar [`crate::corpus::special_values`] enumerates, rebuilt with
/// multi-limb fractions (limb-boundary-straddling payloads included,
/// which have no scalar analogue).
pub fn limb_special_values(fmt: LimbFormat) -> Vec<Vec<u64>> {
    let f = fmt.frac_bits() as u64;
    let one_bit = |i: u64| Big::from_u64(1).shl(i);
    let ones = |n: u64| Big::from_u64(1).shl(n).sub(&Big::from_u64(1));
    let frac_mask = ones(f);
    let bias = fmt.bias() as u64;

    // (biased exponent, fraction) magnitude classes.
    let mut fields: Vec<(u64, Big)> = vec![
        (0, Big::zero()),                                  // +0
        (0, Big::from_u64(1)),                             // smallest denormal
        (0, Big::from_u64(2)),                             //
        (0, frac_mask.shr_sticky(1).0),                    // mid denormal
        (0, frac_mask.clone()),                            // largest denormal
        (0, one_bit(f - 1)),                               // denormal, top fraction bit only
        (0, one_bit(63)),                                  // denormal payload at the limb edge
        (0, one_bit(64)),                                  // ... and just past it
        (1, Big::zero()),                                  // smallest normal
        (1, Big::from_u64(1)),                             //
        (1, frac_mask.clone()),                            // last value of the first binade
        (2, Big::zero()),                                  // second binade
        (bias - 1, frac_mask.clone()),                     // largest value below 1
        (bias, Big::zero()),                               // 1
        (bias, Big::from_u64(1)),                          // 1 + ulp
        (bias, one_bit(f - 1)),                            // 1.5
        (bias + 1, Big::zero()),                           // 2
        (bias, frac_mask.clone()),                         // just under 2
        (bias + f, Big::zero()),                           // 2^f: odd/even integer cliff
        (bias + f, Big::from_u64(1)),                      //
        (bias + f + 1, Big::zero()),                       // 2^(f+1)
        (bias.saturating_sub(f), Big::zero()),             // 2^-f (or deep denormal zero)
        (bias, Big::from_u64(0b0101)),                     // sticky-tail pattern
        (bias, one_bit(f.min(64)).sub(&Big::from_u64(1))), // low limb all ones
        (bias + 3, frac_mask.sub(&Big::from_u64(1))),      // even lsb, ones above
        (fmt.max_biased_exp(), frac_mask.clone()),         // max finite
        (fmt.max_biased_exp(), frac_mask.sub(&Big::from_u64(1))),
        (fmt.max_biased_exp(), Big::zero()), // top binade start
        (fmt.max_biased_exp() - 1, frac_mask.clone()),
        (fmt.inf_biased_exp(), Big::zero()), // infinity
        // NaNs: canonical quiet, payloads at both limb extremes,
        // signaling with low / limb-straddling / maximal payloads.
        (fmt.inf_biased_exp(), one_bit(f - 1)),
        (fmt.inf_biased_exp(), one_bit(f - 1).or(&Big::from_u64(1))),
        (fmt.inf_biased_exp(), frac_mask.clone()),
        (fmt.inf_biased_exp(), Big::from_u64(1)), // sNaN
        (fmt.inf_biased_exp(), one_bit(f - 1).sub(&Big::from_u64(1))), // sNaN, max payload
        (fmt.inf_biased_exp(), one_bit(64)),      // sNaN straddling limb 0/1
    ];
    // Mid-exponent tie patterns around the halfway fraction, and the
    // fraction split across the high limbs only (no scalar analogue).
    fields.push((bias + 2, one_bit(f / 2)));
    if f > 64 {
        fields.push((bias, frac_mask.sub(&one_bit(64).sub(&Big::from_u64(1)))));
    }

    let mut out: Vec<Vec<u64>> = Vec::with_capacity(fields.len() * 2);
    for (e, frac) in fields.drain(..) {
        let frac = frac.mask_low(f).to_limbs_fixed(fmt.limbs());
        out.push(fmt.pack_parts(false, e, &frac));
        out.push(fmt.pack_parts(true, e, &frac));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Seeded boundary-biased generator for wide encodings, mirroring the
/// scalar [`crate::corpus::CaseGen`] distribution: a slice of uniform
/// raw encodings, the rest with exponents clustered at the cliffs and
/// low-entropy fraction patterns (all-ones runs, single bits, dense
/// low-limb noise) that stress carry chains across limb boundaries.
pub struct LimbCaseGen {
    fmt: LimbFormat,
    rng: Rng64,
    specials: Vec<Vec<u64>>,
}

impl LimbCaseGen {
    /// New generator for `fmt` with the given stream seed.
    pub fn new(fmt: LimbFormat, seed: u64) -> LimbCaseGen {
        LimbCaseGen {
            fmt,
            rng: Rng64::new(seed),
            specials: limb_special_values(fmt),
        }
    }

    fn below(&mut self, n: u64) -> u64 {
        self.rng.next_u64() % n
    }

    fn biased_exp(&mut self) -> u64 {
        let fmt = self.fmt;
        match self.below(8) {
            0 => 0,                                    // denormal
            1 => 1 + self.below(3),                    // bottom of normals
            2 => fmt.max_biased_exp() - self.below(3), // overflow cliff
            3 => fmt.inf_biased_exp(),                 // inf/NaN
            // Cluster around the bias so binary-op exponents overlap.
            4 | 5 => (fmt.bias() as u64).saturating_sub(self.below(2 * 64)) + self.below(64),
            _ => self.below(fmt.inf_biased_exp()),
        }
    }

    fn biased_frac(&mut self) -> Big {
        let f = self.fmt.frac_bits() as u64;
        let ones = |n: u64| Big::from_u64(1).shl(n).sub(&Big::from_u64(1));
        match self.below(8) {
            0 => Big::zero(),
            1 => ones(f),
            2 => Big::from_u64(1).shl(self.below(f)), // single bit anywhere
            3 => ones(1 + self.below(f)),             // low run of ones
            4 => ones(f).sub(&ones(1 + self.below(f - 1))), // high run of ones
            5 => Big::from_u64(self.rng.next_u64()),  // dense low-limb noise
            _ => {
                // Uniform noise across every limb.
                let limbs: Vec<u64> = (0..self.fmt.limbs()).map(|_| self.rng.next_u64()).collect();
                Big::from_limbs(&limbs).mask_low(f)
            }
        }
    }

    /// Draw one encoding.
    pub fn value(&mut self) -> Vec<u64> {
        if self.below(8) == 0 {
            let i = self.below(self.specials.len() as u64) as usize;
            return self.specials[i].clone();
        }
        let sign = self.below(2) == 1;
        let exp = self.biased_exp();
        let frac = self.biased_frac().to_limbs_fixed(self.fmt.limbs());
        self.fmt.pack_parts(sign, exp, &frac)
    }

    /// Draw a binary-op operand pair. Half the pairs share an exponent
    /// neighborhood so add/sub exercise alignment and cancellation
    /// rather than the trivial dominant-operand path.
    pub fn pair(&mut self) -> (Vec<u64>, Vec<u64>) {
        let a = self.value();
        if self.below(2) == 0 {
            return (a, self.value());
        }
        let (sign_a, exp_a, _) = self.fmt.unpack_parts(&a);
        let near = exp_a
            .saturating_add(self.below(5))
            .saturating_sub(2)
            .clamp(0, self.fmt.inf_biased_exp() - 1);
        let sign = if self.below(2) == 0 { sign_a } else { !sign_a };
        let frac = self.biased_frac().to_limbs_fixed(self.fmt.limbs());
        (a, self.fmt.pack_parts(sign, near, &frac))
    }

    /// Draw an fma triple (pair plus an addend near the product scale).
    pub fn triple(&mut self) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let (a, b) = self.pair();
        if self.below(2) == 0 {
            return (a, b, self.value());
        }
        // Addend near a·b's exponent, for catastrophic-cancellation fmas.
        let (sa, ea, _) = self.fmt.unpack_parts(&a);
        let (sb, eb, _) = self.fmt.unpack_parts(&b);
        let bias = self.fmt.bias() as u64;
        let pe = (ea + eb)
            .saturating_sub(bias)
            .saturating_add(self.below(5))
            .saturating_sub(2)
            .clamp(0, self.fmt.inf_biased_exp() - 1);
        let frac = self.biased_frac().to_limbs_fixed(self.fmt.limbs());
        let sign = (sa != sb) ^ (self.below(4) != 0); // mostly cancelling
        (a, b, self.fmt.pack_parts(sign, pe, &frac))
    }
}

/// Render a wide case as a one-line reproducer: operands are single
/// full-width hex encodings (most-significant nibble first).
pub fn render_limb_case(case: &LimbCase) -> String {
    let mut line = format!(
        "{} {} {} {}",
        case.op.name(),
        case.fmt.canonical_name(),
        mode_name(case.mode),
        hex_encoding(case.fmt, &case.a)
    );
    if case.op.arity() >= 2 {
        line.push(' ');
        line.push_str(&hex_encoding(case.fmt, &case.b));
    }
    if case.op.arity() >= 3 {
        line.push(' ');
        line.push_str(&hex_encoding(case.fmt, &case.c));
    }
    line
}

fn hex_encoding(fmt: LimbFormat, bits: &[u64]) -> String {
    let digits = (fmt.total_bits() as usize).div_ceil(4);
    let mut s = String::with_capacity(digits + 2);
    for &limb in bits.iter().rev() {
        s.push_str(&format!("{limb:016x}"));
    }
    let s = &s[s.len() - digits..];
    format!("0x{s}")
}

fn parse_hex_encoding(fmt: LimbFormat, token: &str) -> Option<Vec<u64>> {
    let digits = token.strip_prefix("0x")?;
    if digits.is_empty() || digits.len() > (fmt.total_bits() as usize).div_ceil(4) {
        return None;
    }
    let padded = format!("{:0>width$}", digits, width = fmt.limbs() * 16);
    let mut limbs = Vec::with_capacity(fmt.limbs());
    for i in (0..fmt.limbs()).rev() {
        limbs.push(u64::from_str_radix(&padded[i * 16..(i + 1) * 16], 16).ok()?);
    }
    if !fmt.is_canonical(&limbs) {
        return None;
    }
    Some(limbs)
}

/// Parse a wide corpus line. Blank lines and `#` comments yield `None`.
pub fn parse_limb_case(line: &str) -> Option<LimbCase> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let mut tok = line.split_whitespace();
    let op = Op::parse(tok.next()?)?;
    if !LIMB_OPS.contains(&op) {
        return None;
    }
    let fmt: LimbFormat = tok.next()?.parse().ok()?;
    let mode = parse_mode(tok.next()?)?;
    let a = parse_hex_encoding(fmt, tok.next()?)?;
    let b = if op.arity() >= 2 {
        parse_hex_encoding(fmt, tok.next()?)?
    } else {
        fmt.zero()
    };
    let c = if op.arity() >= 3 {
        parse_hex_encoding(fmt, tok.next()?)?
    } else {
        fmt.zero()
    };
    Some(LimbCase {
        op,
        fmt,
        mode,
        a,
        b,
        c,
    })
}

/// Complexity measure for greedy shrinking: total set bits, then the
/// numeric value (compared via `Big`).
fn complexity(bits: &[u64]) -> (u32, Big) {
    (
        bits.iter().map(|l| l.count_ones()).sum(),
        Big::from_limbs(bits),
    )
}

/// Candidate simplifications for one wide operand — the limb analogue
/// of the scalar shrinker's moves (toward zero/one, clear fraction
/// tails, pull the exponent to the bias, clear the sign), plus
/// whole-limb clearing, which is the move that matters at 4 limbs.
fn limb_candidates(fmt: LimbFormat, bits: &[u64]) -> Vec<Vec<u64>> {
    let (sign, exp, frac) = fmt.unpack_parts(bits);
    let bias = fmt.bias() as u64;
    let fb = fmt.frac_bits() as u64;
    let frac_big = Big::from_limbs(&frac);
    let pack = |s: bool, e: u64, f: &Big| fmt.pack_parts(s, e, &f.to_limbs_fixed(fmt.limbs()));

    let mut out = vec![
        fmt.zero(),
        pack(false, bias, &Big::zero()), // one
        pack(sign, exp, &Big::zero()),
    ];
    // Clear whole fraction limbs from the bottom up.
    for limb in 0..fmt.limbs() {
        let mut cleared = frac.clone();
        for l in cleared.iter_mut().take(limb + 1) {
            *l = 0;
        }
        out.push(pack(sign, exp, &Big::from_limbs(&cleared)));
    }
    // Keep only the top 1/2/4/8 fraction bits.
    for keep in [1u64, 2, 4, 8] {
        if keep < fb {
            let (kept, _) = frac_big.shr_sticky(fb - keep);
            out.push(pack(sign, exp, &kept.shl(fb - keep)));
        }
    }
    // Keep only the fraction LSB.
    out.push(pack(sign, exp, &frac_big.mask_low(1)));
    // Pull the exponent halfway toward the bias, then all the way.
    if exp != bias && exp != 0 && exp != fmt.inf_biased_exp() {
        let towards = (exp + bias) / 2;
        if towards != exp {
            out.push(pack(sign, towards, &frac_big));
        }
        out.push(pack(sign, bias, &frac_big));
    }
    // Clear the sign.
    if sign {
        out.push(pack(false, exp, &frac_big));
    }
    out.retain(|c| c != bits);
    out
}

/// Greedily minimize a failing wide case with `still_fails` as the
/// oracle, accepting a candidate only when it strictly decreases the
/// complexity measure (termination) and the failure survives.
pub fn minimize_limb_with(
    case: &LimbCase,
    mut still_fails: impl FnMut(&LimbCase) -> bool,
) -> LimbCase {
    let mut best = case.clone();
    let arity = case.op.arity();
    loop {
        let mut improved = false;
        for slot in 0..arity {
            let bits = match slot {
                0 => best.a.clone(),
                1 => best.b.clone(),
                _ => best.c.clone(),
            };
            for cand in limb_candidates(best.fmt, &bits) {
                if complexity(&cand) >= complexity(&bits) {
                    continue;
                }
                let mut trial = best.clone();
                match slot {
                    0 => trial.a = cand,
                    1 => trial.b = cand,
                    _ => trial.c = cand,
                }
                if still_fails(&trial) {
                    best = trial;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Minimize a kernel/oracle divergence.
pub fn minimize_limb(case: &LimbCase) -> LimbCase {
    minimize_limb_with(case, |c| check_limb_case(c).is_some())
}

/// Wide-sweep parameters.
#[derive(Clone, Debug)]
pub struct LimbSweepConfig {
    /// Ops to sweep (silently intersected with [`LIMB_OPS`]).
    pub ops: Vec<Op>,
    /// Wide formats to sweep.
    pub formats: Vec<LimbFormat>,
    /// Random samples per (op, format, mode) combination, on top of the
    /// exhaustive special-value cross product.
    pub samples: u64,
    /// Seed for the random corpus.
    pub seed: u64,
    /// At most this many divergences stored per combination.
    pub max_divergences: usize,
    /// Worker threads (0 = one per CPU); byte-identical at any count.
    pub threads: usize,
}

impl Default for LimbSweepConfig {
    fn default() -> LimbSweepConfig {
        LimbSweepConfig {
            ops: LIMB_OPS.to_vec(),
            formats: vec![LimbFormat::F128, LimbFormat::F256],
            samples: 20_000,
            seed: 1,
            max_divergences: 8,
            threads: 1,
        }
    }
}

/// Outcome of one (op, format, mode) combination.
#[derive(Clone, Debug)]
pub struct LimbOpReport {
    /// Operation.
    pub op: Op,
    /// Format.
    pub fmt: LimbFormat,
    /// Rounding mode.
    pub mode: RoundMode,
    /// Cases evaluated.
    pub cases: u64,
    /// Total divergences counted.
    pub divergences: u64,
    /// First few divergences, for reporting/shrinking.
    pub examples: Vec<LimbDivergence>,
}

/// Aggregated wide-sweep outcome.
#[derive(Clone, Debug, Default)]
pub struct LimbSweepReport {
    /// Per-combination reports.
    pub reports: Vec<LimbOpReport>,
}

impl LimbSweepReport {
    /// Total cases across the sweep.
    pub fn total_cases(&self) -> u64 {
        self.reports.iter().map(|r| r.cases).sum()
    }

    /// Total divergences across the sweep.
    pub fn total_divergences(&self) -> u64 {
        self.reports.iter().map(|r| r.divergences).sum()
    }

    /// All stored example divergences.
    pub fn examples(&self) -> impl Iterator<Item = &LimbDivergence> {
        self.reports.iter().flat_map(|r| r.examples.iter())
    }
}

fn derived_seed(base: u64, op: Op, fmt: LimbFormat, mode: RoundMode) -> u64 {
    let mut h = Rng64::new(base ^ ((op as u64) << 8) ^ ((fmt.exp_bits() as u64) << 16));
    h.next_u64() ^ ((fmt.frac_bits() as u64) << 32) ^ (mode == RoundMode::Truncate) as u64
}

/// Generate the case stream for one combination: the exhaustive
/// special-value cross product (squared for binary ops; anchor squares
/// plus the rotated diagonal for fma, as in the scalar sweep) followed
/// by `samples` biased random draws.
fn limb_cases_for(
    op: Op,
    fmt: LimbFormat,
    mode: RoundMode,
    samples: u64,
    seed: u64,
    mut visit: impl FnMut(LimbCase),
) {
    let specials = limb_special_values(fmt);
    let case = |a: Vec<u64>, b: Vec<u64>, c: Vec<u64>| LimbCase {
        op,
        fmt,
        mode,
        a,
        b,
        c,
    };
    if op.arity() == 2 {
        for a in &specials {
            for b in &specials {
                visit(case(a.clone(), b.clone(), fmt.zero()));
            }
        }
    } else {
        let n = specials.len();
        let one = fmt.pack_parts(false, fmt.bias() as u64, &fmt.zero());
        let anchors = [fmt.zero(), one, fmt.pos_inf()];
        for a in &specials {
            for b in &specials {
                for c in &anchors {
                    visit(case(a.clone(), b.clone(), c.clone()));
                }
            }
        }
        for i in 0..n {
            for j in 0..n {
                visit(case(
                    specials[i].clone(),
                    specials[j].clone(),
                    specials[(i + j) % n].clone(),
                ));
            }
        }
    }
    let mut gen = LimbCaseGen::new(fmt, derived_seed(seed, op, fmt, mode));
    for _ in 0..samples {
        if op.arity() == 2 {
            let (a, b) = gen.pair();
            visit(case(a, b, fmt.zero()));
        } else {
            let (a, b, c) = gen.triple();
            visit(case(a, b, c));
        }
    }
}

/// Run the wide-format differential sweep, sharded over
/// `config.threads` scoped workers at combination granularity.
pub fn run_limb_sweep(config: &LimbSweepConfig) -> LimbSweepReport {
    let mut combos: Vec<(Op, LimbFormat, RoundMode)> = Vec::new();
    for &op in &config.ops {
        if !LIMB_OPS.contains(&op) {
            continue;
        }
        for &fmt in &config.formats {
            for mode in MODES {
                combos.push((op, fmt, mode));
            }
        }
    }
    let reports = fpfpga_fpu::parallel_map_slice(config.threads, &combos, |_, &(op, fmt, mode)| {
        let mut r = LimbOpReport {
            op,
            fmt,
            mode,
            cases: 0,
            divergences: 0,
            examples: Vec::new(),
        };
        limb_cases_for(op, fmt, mode, config.samples, config.seed, |case| {
            r.cases += 1;
            if let Some(d) = check_limb_case(&case) {
                r.divergences += 1;
                if r.examples.len() < config.max_divergences {
                    r.examples.push(d);
                }
            }
        });
        r
    });
    LimbSweepReport { reports }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_lines_roundtrip() {
        let fmt = LimbFormat::F128;
        let case = LimbCase {
            op: Op::Fma,
            fmt,
            mode: RoundMode::Truncate,
            a: fmt.pack_parts(false, fmt.bias() as u64, &[1, 0]),
            b: fmt.neg_inf(),
            c: fmt.quiet_nan(),
        };
        let line = render_limb_case(&case);
        assert_eq!(parse_limb_case(&line), Some(case));

        let add = LimbCase {
            op: Op::Add,
            fmt: LimbFormat::F256,
            mode: RoundMode::NearestEven,
            a: LimbFormat::F256.min_denormal(),
            b: LimbFormat::F256.max_finite(),
            c: LimbFormat::F256.zero(),
        };
        assert_eq!(parse_limb_case(&render_limb_case(&add)), Some(add));

        assert_eq!(parse_limb_case("# comment"), None);
        assert_eq!(parse_limb_case("div f128 rne 0x0 0x0"), None);
        // Stray bits above total_bits are rejected.
        assert_eq!(parse_limb_case("add e2f2 rne 0x40 0x0"), None);
    }

    #[test]
    fn specials_are_canonical_and_plentiful() {
        for fmt in [LimbFormat::F128, LimbFormat::F256, LimbFormat::new(5, 70)] {
            let s = limb_special_values(fmt);
            assert!(
                s.len() >= 60,
                "{}: only {} specials",
                fmt.canonical_name(),
                s.len()
            );
            for v in &s {
                assert!(fmt.is_canonical(v));
            }
        }
    }

    #[test]
    fn minimizer_preserves_failure_and_simplifies() {
        // Synthetic oracle: "fails whenever a is NaN".
        let fmt = LimbFormat::F128;
        let noisy_nan = fmt.pack_parts(true, fmt.inf_biased_exp(), &[0xdead_beef_0123_4567, 0xabc]);
        let case = LimbCase {
            op: Op::Add,
            fmt,
            mode: RoundMode::NearestEven,
            a: noisy_nan.clone(),
            b: fmt.max_finite(),
            c: fmt.zero(),
        };
        let is_nan = |bits: &[u64]| {
            let (_, e, frac) = fmt.unpack_parts(bits);
            e == fmt.inf_biased_exp() && frac.iter().any(|&l| l != 0)
        };
        let min = minimize_limb_with(&case, |c| is_nan(&c.a));
        assert!(is_nan(&min.a), "must preserve the failure");
        assert_eq!(min.b, fmt.zero(), "side operand fully simplified");
        assert!(complexity(&min.a) < complexity(&noisy_nan));
    }

    #[test]
    fn tiny_wide_sweep_is_clean_and_thread_invariant() {
        let base = LimbSweepConfig {
            formats: vec![LimbFormat::F128],
            samples: 200,
            ..LimbSweepConfig::default()
        };
        let r1 = run_limb_sweep(&base);
        assert_eq!(r1.total_divergences(), 0, "kernel diverged from oracle");
        let r2 = run_limb_sweep(&LimbSweepConfig { threads: 3, ..base });
        assert_eq!(r1.total_cases(), r2.total_cases());
        let lines1: Vec<_> = r1.examples().map(|d| render_limb_case(&d.case)).collect();
        let lines2: Vec<_> = r2.examples().map(|d| render_limb_case(&d.case)).collect();
        assert_eq!(lines1, lines2);
    }
}
