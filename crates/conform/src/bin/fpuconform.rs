//! `fpuconform` — run the differential conformance sweeps from the
//! command line.
//!
//! ```text
//! fpuconform [--ops add,mul,...] [--formats f32,f64,f48,e6f17]
//!            [--samples N] [--seed S] [--sweeps ieee,ftz,fpu]
//!            [--max-divergences K] [--threads N] [--fastpath] [--json]
//! ```
//!
//! `--threads N` shards every sweep over `N` scoped worker threads
//! (0 = one per CPU); the output is byte-identical for every `N`.
//! `--fastpath` (or the `FPUCONFORM_FASTPATH` environment variable)
//! forces the softfp reference evaluation through the monomorphized
//! `fastpath` kernels for add/sub/mul/fma, so the sweeps conformance-
//! check the fast lane itself.
//!
//! Exit status is 0 when every sweep agrees and 1 when any divergence
//! was found (which is what the CI step keys off). Each stored
//! divergence is minimized and printed as a one-line reproducer ready to
//! paste into `tests/conform_corpus/`.

use fpfpga_conform::diff::{
    self, format_name, mode_name, parse_format, Divergence, Op, SweepConfig, SweepReport,
};
use fpfpga_conform::host;
use fpfpga_conform::shrink::{minimize, minimize_with, render_case};
use serde_json::{json, Value};
use std::process::ExitCode;

struct Args {
    config: SweepConfig,
    sweeps: Vec<String>,
    json: bool,
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: fpuconform [--ops add,sub,mul,div,sqrt,fma,convert,compare]\n\
         \x20                 [--formats f32,f64,f48,e<E>f<F>] [--samples N] [--seed S]\n\
         \x20                 [--sweeps ieee,ftz,fpu] [--max-divergences K]\n\
         \x20                 [--threads N] [--fastpath] [--json]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut config = SweepConfig::default();
    let mut sweeps = vec!["ieee".to_string(), "ftz".to_string(), "fpu".to_string()];
    let mut json = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = |it: &mut dyn Iterator<Item = String>| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--ops" => {
                config.ops = value(&mut it)
                    .split(',')
                    .map(|t| Op::parse(t).unwrap_or_else(|| usage(&format!("unknown op `{t}`"))))
                    .collect();
            }
            "--formats" => {
                config.formats = value(&mut it)
                    .split(',')
                    .map(|t| {
                        parse_format(t).unwrap_or_else(|| usage(&format!("unknown format `{t}`")))
                    })
                    .collect();
            }
            "--samples" => {
                config.samples = value(&mut it)
                    .parse()
                    .unwrap_or_else(|_| usage("--samples needs an integer"));
            }
            "--seed" => {
                config.seed = value(&mut it)
                    .parse()
                    .unwrap_or_else(|_| usage("--seed needs an integer"));
            }
            "--max-divergences" => {
                config.max_divergences = value(&mut it)
                    .parse()
                    .unwrap_or_else(|_| usage("--max-divergences needs an integer"));
            }
            "--sweeps" => {
                sweeps = value(&mut it).split(',').map(str::to_string).collect();
                for s in &sweeps {
                    if !matches!(s.as_str(), "ieee" | "ftz" | "fpu") {
                        usage(&format!("unknown sweep `{s}` (ieee, ftz, fpu)"));
                    }
                }
            }
            "--threads" => {
                config.threads = value(&mut it)
                    .parse()
                    .unwrap_or_else(|_| usage("--threads needs an integer (0 = auto)"));
            }
            "--fastpath" => diff::set_force_fastpath(true),
            "--json" => json = true,
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    Args {
        config,
        sweeps,
        json,
    }
}

/// Minimize a divergence with the oracle that found it.
fn minimized(d: &Divergence) -> String {
    let case = match d.against {
        "host" => minimize(&d.case),
        "host-ftz" => minimize_with(&d.case, |c| {
            let ours = diff::eval_ftz(c);
            let host = diff::eval_host(c);
            ours.0 != host.bits
        }),
        // fpu divergences depend on the pipeline depth, which the Case
        // does not carry; report them unminimized.
        _ => d.case,
    };
    render_case(&case)
}

fn report_json(name: &str, report: &SweepReport) -> Value {
    let combos: Vec<Value> = report
        .reports
        .iter()
        .map(|r| {
            let examples: Vec<Value> = r
                .examples
                .iter()
                .map(|d| {
                    json!({
                        "case": render_case(&d.case),
                        "ours": format!("{:#x} {:?}", d.ours.0, d.ours.1),
                        "reference": match d.reference.1 {
                            Some(f) => format!("{:#x} {:?}", d.reference.0, f),
                            None => format!("{:#x}", d.reference.0),
                        },
                        "minimized": minimized(d),
                    })
                })
                .collect();
            json!({
                "op": r.op.name(),
                "format": format_name(r.fmt),
                "mode": mode_name(r.mode),
                "cases": r.cases,
                "skipped": r.skipped,
                "divergences": r.divergences,
                "examples": Value::Array(examples),
            })
        })
        .collect();
    json!({
        "sweep": name,
        "cases": report.total_cases(),
        "divergences": report.total_divergences(),
        "combinations": Value::Array(combos),
    })
}

fn report_text(name: &str, report: &SweepReport) {
    println!(
        "sweep {name}: {} cases, {} divergences",
        report.total_cases(),
        report.total_divergences()
    );
    for r in &report.reports {
        if r.divergences > 0 {
            println!(
                "  FAIL {} {} {}: {} divergences in {} cases",
                r.op.name(),
                format_name(r.fmt),
                mode_name(r.mode),
                r.divergences,
                r.cases
            );
            for d in &r.examples {
                println!("    case      {}", render_case(&d.case));
                println!("    ours      {:#x} {:?}", d.ours.0, d.ours.1);
                match d.reference.1 {
                    Some(f) => println!("    reference {:#x} {:?}", d.reference.0, f),
                    None => println!("    reference {:#x}", d.reference.0),
                }
                println!("    minimized {}", minimized(d));
            }
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if !host::flags_supported() {
        eprintln!(
            "warning: host exception flags unavailable on this target; \
             comparing results only"
        );
    }

    let mut sections: Vec<(String, SweepReport)> = Vec::new();
    for sweep in &args.sweeps {
        let report = match sweep.as_str() {
            "ieee" => diff::run_ieee_sweep(&args.config),
            "ftz" => diff::run_ftz_sweep(&args.config),
            _ => diff::run_fpu_sweep(&args.config),
        };
        sections.push((sweep.clone(), report));
    }

    let total: u64 = sections.iter().map(|(_, r)| r.total_divergences()).sum();
    if args.json {
        let out: Vec<Value> = sections
            .iter()
            .map(|(name, r)| report_json(name, r))
            .collect();
        let doc = json!({
            "samples": args.config.samples,
            "seed": args.config.seed,
            "formats": Value::Array(
                args.config.formats.iter().map(|f| json!(format_name(*f))).collect()
            ),
            "total_divergences": total,
            "sweeps": Value::Array(out),
        });
        println!("{}", serde_json::to_string_pretty(&doc).unwrap());
    } else {
        for (name, r) in &sections {
            report_text(name, r);
        }
        println!(
            "total: {total} divergence(s) across {} case(s)",
            sections.iter().map(|(_, r)| r.total_cases()).sum::<u64>()
        );
    }
    if total == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
