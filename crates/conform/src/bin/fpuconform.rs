//! `fpuconform` — run the differential conformance sweeps from the
//! command line.
//!
//! ```text
//! fpuconform [--ops add,mul,...] [--formats f32,f64,f48,e6f17]
//!            [--samples N] [--seed S] [--sweeps ieee,ftz,fpu,limb]
//!            [--limb-formats f128,f256,e19f236]
//!            [--max-divergences K] [--threads N] [--fastpath]
//!            [--simd scalar|wide|auto] [--json]
//! ```
//!
//! The `limb` sweep checks the wide-format (multi-limb) kernels against
//! the exact `BigFloat` oracle instead of the host (no host hardware
//! exists past 64 bits); `--limb-formats` picks its formats.
//!
//! `--threads N` shards every sweep over `N` scoped worker threads
//! (0 = one per CPU); the output is byte-identical for every `N`.
//! `--fastpath` (or the `FPUCONFORM_FASTPATH` environment variable)
//! forces the softfp reference evaluation through the monomorphized
//! `fastpath` kernels for add/sub/mul/fma, so the sweeps conformance-
//! check the fast lane itself. `--simd scalar|wide|auto` (or
//! `FPUCONFORM_SIMD` plus `FPFPGA_SIMD`) goes one layer further and
//! routes those ops through the `softfp::simd` dispatchers under the
//! chosen policy — `wide` sweeps the vector engines case by case.
//!
//! Exit status is 0 when every sweep agrees and 1 when any divergence
//! was found (which is what the CI step keys off). Each stored
//! divergence is minimized and printed as a one-line reproducer ready to
//! paste into `tests/conform_corpus/`.

use fpfpga_conform::diff::{
    self, format_name, mode_name, parse_format, Divergence, Op, SweepConfig, SweepReport,
};
use fpfpga_conform::host;
use fpfpga_conform::limb::{
    minimize_limb, render_limb_case, run_limb_sweep, LimbDivergence, LimbSweepConfig,
    LimbSweepReport,
};
use fpfpga_conform::shrink::{minimize, minimize_with, render_case};
use fpfpga_softfp::limb::LimbFormat;
use fpfpga_softfp::simd::SimdPolicy;
use serde_json::{json, Value};
use std::process::ExitCode;

struct Args {
    config: SweepConfig,
    limb_formats: Vec<LimbFormat>,
    sweeps: Vec<String>,
    json: bool,
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: fpuconform [--ops add,sub,mul,div,sqrt,fma,convert,compare]\n\
         \x20                 [--formats f32,f64,f48,e<E>f<F>] [--samples N] [--seed S]\n\
         \x20                 [--sweeps ieee,ftz,fpu,limb] [--max-divergences K]\n\
         \x20                 [--limb-formats f128,f256,e<E>f<F>]\n\
         \x20                 [--threads N] [--fastpath] [--simd scalar|wide|auto] [--json]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut config = SweepConfig::default();
    let mut limb_formats = vec![LimbFormat::F128, LimbFormat::F256];
    let mut sweeps = vec!["ieee".to_string(), "ftz".to_string(), "fpu".to_string()];
    let mut json = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = |it: &mut dyn Iterator<Item = String>| {
            it.next()
                .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--ops" => {
                config.ops = value(&mut it)
                    .split(',')
                    .map(|t| Op::parse(t).unwrap_or_else(|| usage(&format!("unknown op `{t}`"))))
                    .collect();
            }
            "--formats" => {
                config.formats = value(&mut it)
                    .split(',')
                    .map(|t| {
                        parse_format(t).unwrap_or_else(|| usage(&format!("unknown format `{t}`")))
                    })
                    .collect();
            }
            "--samples" => {
                config.samples = value(&mut it)
                    .parse()
                    .unwrap_or_else(|_| usage("--samples needs an integer"));
            }
            "--seed" => {
                config.seed = value(&mut it)
                    .parse()
                    .unwrap_or_else(|_| usage("--seed needs an integer"));
            }
            "--max-divergences" => {
                config.max_divergences = value(&mut it)
                    .parse()
                    .unwrap_or_else(|_| usage("--max-divergences needs an integer"));
            }
            "--sweeps" => {
                sweeps = value(&mut it).split(',').map(str::to_string).collect();
                for s in &sweeps {
                    if !matches!(s.as_str(), "ieee" | "ftz" | "fpu" | "limb") {
                        usage(&format!("unknown sweep `{s}` (ieee, ftz, fpu, limb)"));
                    }
                }
            }
            "--limb-formats" => {
                limb_formats = value(&mut it)
                    .split(',')
                    .map(|t| {
                        t.parse()
                            .unwrap_or_else(|_| usage(&format!("unknown wide format `{t}`")))
                    })
                    .collect();
            }
            "--threads" => {
                config.threads = value(&mut it)
                    .parse()
                    .unwrap_or_else(|_| usage("--threads needs an integer (0 = auto)"));
            }
            "--fastpath" => diff::set_force_fastpath(true),
            "--simd" => {
                let policy = match value(&mut it).as_str() {
                    "scalar" => SimdPolicy::ForceScalar,
                    "wide" => SimdPolicy::ForceWide,
                    "auto" => SimdPolicy::Auto,
                    other => usage(&format!("unknown simd mode `{other}` (scalar, wide, auto)")),
                };
                fpfpga_softfp::simd::set_simd_policy(policy);
                diff::set_force_simd(true);
            }
            "--json" => json = true,
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }
    Args {
        config,
        limb_formats,
        sweeps,
        json,
    }
}

/// Minimize a divergence with the oracle that found it.
fn minimized(d: &Divergence) -> String {
    let case = match d.against {
        "host" => minimize(&d.case),
        "host-ftz" => minimize_with(&d.case, |c| {
            let ours = diff::eval_ftz(c);
            let host = diff::eval_host(c);
            ours.0 != host.bits
        }),
        // fpu divergences depend on the pipeline depth, which the Case
        // does not carry; report them unminimized.
        _ => d.case,
    };
    render_case(&case)
}

/// Minimized one-line reproducer for a wide-format divergence (the
/// oracle that found it is the oracle that shrinks it).
fn limb_minimized(d: &LimbDivergence) -> String {
    render_limb_case(&minimize_limb(&d.case))
}

fn limb_report_json(report: &LimbSweepReport) -> Value {
    let combos: Vec<Value> = report
        .reports
        .iter()
        .map(|r| {
            let examples: Vec<Value> = r
                .examples
                .iter()
                .map(|d| {
                    json!({
                        "case": render_limb_case(&d.case),
                        "ours": format!("{:x?} {:?}", d.ours.0, d.ours.1),
                        "reference": format!("{:x?} {:?}", d.reference.0, d.reference.1),
                        "minimized": limb_minimized(d),
                    })
                })
                .collect();
            json!({
                "op": r.op.name(),
                "format": r.fmt.canonical_name(),
                "mode": mode_name(r.mode),
                "cases": r.cases,
                "divergences": r.divergences,
                "examples": Value::Array(examples),
            })
        })
        .collect();
    json!({
        "sweep": "limb",
        "cases": report.total_cases(),
        "divergences": report.total_divergences(),
        "combinations": Value::Array(combos),
    })
}

fn limb_report_text(report: &LimbSweepReport) {
    println!(
        "sweep limb: {} cases, {} divergences",
        report.total_cases(),
        report.total_divergences()
    );
    for r in &report.reports {
        if r.divergences > 0 {
            println!(
                "  FAIL {} {} {}: {} divergences in {} cases",
                r.op.name(),
                r.fmt.canonical_name(),
                mode_name(r.mode),
                r.divergences,
                r.cases
            );
            for d in &r.examples {
                println!("    case      {}", render_limb_case(&d.case));
                println!("    ours      {:x?} {:?}", d.ours.0, d.ours.1);
                println!("    reference {:x?} {:?}", d.reference.0, d.reference.1);
                println!("    minimized {}", limb_minimized(d));
            }
        }
    }
}

fn report_json(name: &str, report: &SweepReport) -> Value {
    let combos: Vec<Value> = report
        .reports
        .iter()
        .map(|r| {
            let examples: Vec<Value> = r
                .examples
                .iter()
                .map(|d| {
                    json!({
                        "case": render_case(&d.case),
                        "ours": format!("{:#x} {:?}", d.ours.0, d.ours.1),
                        "reference": match d.reference.1 {
                            Some(f) => format!("{:#x} {:?}", d.reference.0, f),
                            None => format!("{:#x}", d.reference.0),
                        },
                        "minimized": minimized(d),
                    })
                })
                .collect();
            json!({
                "op": r.op.name(),
                "format": format_name(r.fmt),
                "mode": mode_name(r.mode),
                "cases": r.cases,
                "skipped": r.skipped,
                "divergences": r.divergences,
                "examples": Value::Array(examples),
            })
        })
        .collect();
    json!({
        "sweep": name,
        "cases": report.total_cases(),
        "divergences": report.total_divergences(),
        "combinations": Value::Array(combos),
    })
}

fn report_text(name: &str, report: &SweepReport) {
    println!(
        "sweep {name}: {} cases, {} divergences",
        report.total_cases(),
        report.total_divergences()
    );
    for r in &report.reports {
        if r.divergences > 0 {
            println!(
                "  FAIL {} {} {}: {} divergences in {} cases",
                r.op.name(),
                format_name(r.fmt),
                mode_name(r.mode),
                r.divergences,
                r.cases
            );
            for d in &r.examples {
                println!("    case      {}", render_case(&d.case));
                println!("    ours      {:#x} {:?}", d.ours.0, d.ours.1);
                match d.reference.1 {
                    Some(f) => println!("    reference {:#x} {:?}", d.reference.0, f),
                    None => println!("    reference {:#x}", d.reference.0),
                }
                println!("    minimized {}", minimized(d));
            }
        }
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if !host::flags_supported() {
        eprintln!(
            "warning: host exception flags unavailable on this target; \
             comparing results only"
        );
    }

    let mut sections: Vec<(String, SweepReport)> = Vec::new();
    let mut limb_section: Option<LimbSweepReport> = None;
    for sweep in &args.sweeps {
        let report = match sweep.as_str() {
            "ieee" => diff::run_ieee_sweep(&args.config),
            "ftz" => diff::run_ftz_sweep(&args.config),
            "limb" => {
                let limb_config = LimbSweepConfig {
                    ops: args.config.ops.clone(),
                    formats: args.limb_formats.clone(),
                    samples: args.config.samples,
                    seed: args.config.seed,
                    max_divergences: args.config.max_divergences,
                    threads: args.config.threads,
                };
                limb_section = Some(run_limb_sweep(&limb_config));
                continue;
            }
            _ => diff::run_fpu_sweep(&args.config),
        };
        sections.push((sweep.clone(), report));
    }

    let total: u64 = sections
        .iter()
        .map(|(_, r)| r.total_divergences())
        .sum::<u64>()
        + limb_section.as_ref().map_or(0, |r| r.total_divergences());
    if args.json {
        let mut out: Vec<Value> = sections
            .iter()
            .map(|(name, r)| report_json(name, r))
            .collect();
        if let Some(r) = &limb_section {
            out.push(limb_report_json(r));
        }
        let doc = json!({
            "samples": args.config.samples,
            "seed": args.config.seed,
            "formats": Value::Array(
                args.config.formats.iter().map(|f| json!(format_name(*f))).collect()
            ),
            "limb_formats": Value::Array(
                args.limb_formats.iter().map(|f| json!(f.canonical_name())).collect()
            ),
            "total_divergences": total,
            "sweeps": Value::Array(out),
        });
        println!("{}", serde_json::to_string_pretty(&doc).unwrap());
    } else {
        for (name, r) in &sections {
            report_text(name, r);
        }
        if let Some(r) = &limb_section {
            limb_report_text(r);
        }
        println!(
            "total: {total} divergence(s) across {} case(s)",
            sections.iter().map(|(_, r)| r.total_cases()).sum::<u64>()
                + limb_section.as_ref().map_or(0, |r| r.total_cases())
        );
    }
    if total == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
