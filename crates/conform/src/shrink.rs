//! Shrinking reducer and the one-line reproducer format.
//!
//! When a sweep finds a divergence, [`minimize`] greedily simplifies
//! each operand — toward zero, toward one, clearing fraction bits,
//! pulling the exponent toward the bias, clearing the sign — keeping a
//! candidate only while the divergence survives, until a fixpoint. The
//! minimized case renders through [`render_case`] as a single line
//!
//! ```text
//! mul f32 rne 0x3f7fffff 0x00800000
//! ```
//!
//! which is what gets appended to the checked-in regression corpus in
//! `tests/conform_corpus/` and replayed by the `regression_corpus`
//! integration test via [`parse_case`].

use crate::diff::{check_case, format_name, mode_name, parse_format, parse_mode, Case, Op};
use fpfpga_softfp::FpFormat;

/// Candidate simplifications for one operand, roughly ordered from most
/// to least aggressive.
fn candidates(fmt: FpFormat, bits: u64) -> Vec<u64> {
    let (sign, exp, frac) = fmt.unpack_fields(bits);
    let one = fmt.pack(false, fmt.bias() as u64, 0);
    let bias = fmt.bias() as u64;
    let mut out = vec![0, one, fmt.pack(sign, exp, 0)];
    // Clear trailing fraction bits (keep the top runs that usually carry
    // the failure).
    for keep in [1u32, 2, 4, 8] {
        if keep < fmt.frac_bits() {
            let mask = !((1u64 << (fmt.frac_bits() - keep)) - 1);
            out.push(fmt.pack(sign, exp, frac & mask));
        }
    }
    // Keep only the lowest fraction bits (denormal-ish payloads).
    out.push(fmt.pack(sign, exp, frac & 1));
    // Pull the exponent halfway toward the bias.
    if exp != bias && exp != 0 && exp != fmt.inf_biased_exp() {
        let towards = (exp + bias) / 2;
        if towards != exp {
            out.push(fmt.pack(sign, towards, frac));
        }
        out.push(fmt.pack(sign, bias, frac));
    }
    // Clear the sign.
    if sign {
        out.push(fmt.pack(false, exp, frac));
    }
    out.retain(|&c| c != bits);
    out
}

/// Complexity order for operand encodings: fewer set bits first, then
/// numerically smaller. Candidates are only accepted when they strictly
/// decrease this measure, which both keeps the result "simple-looking"
/// and guarantees the greedy loop terminates (the total complexity is a
/// strictly decreasing well-founded measure).
fn complexity(bits: u64) -> (u32, u64) {
    (bits.count_ones(), bits)
}

/// Greedily minimize a failing case, using `still_fails` as the oracle.
/// Each operand is shrunk in turn — a candidate replaces the operand only
/// when the failure survives **and** the candidate is strictly simpler
/// (fewer set bits, then numerically smaller) — until a fixpoint. The
/// oracle is called only
/// with candidate cases, never with the original, so `minimize` returns
/// a case for which `still_fails` is known true only if it was true for
/// `case` itself.
pub fn minimize_with(case: &Case, mut still_fails: impl FnMut(&Case) -> bool) -> Case {
    let mut best = *case;
    let arity = case.op.arity();
    loop {
        let mut improved = false;
        for slot in 0..arity {
            let bits = [best.a, best.b, best.c][slot];
            for cand in candidates(best.fmt, bits) {
                if complexity(cand) >= complexity(bits) {
                    continue;
                }
                let mut trial = best;
                match slot {
                    0 => trial.a = cand,
                    1 => trial.b = cand,
                    _ => trial.c = cand,
                }
                if still_fails(&trial) {
                    best = trial;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Minimize a divergence against the host oracle ([`check_case`]).
pub fn minimize(case: &Case) -> Case {
    minimize_with(case, |c| check_case(c).is_some())
}

/// Render a case as its one-line corpus form.
pub fn render_case(case: &Case) -> String {
    let mut line = format!(
        "{} {} {} {:#x}",
        case.op.name(),
        format_name(case.fmt),
        mode_name(case.mode),
        case.a
    );
    if case.op.arity() >= 2 {
        line.push_str(&format!(" {:#x}", case.b));
    }
    if case.op.arity() >= 3 {
        line.push_str(&format!(" {:#x}", case.c));
    }
    line
}

/// Parse a corpus line back into a case. Blank lines and `#` comments
/// yield `None`.
pub fn parse_case(line: &str) -> Option<Case> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let mut tok = line.split_whitespace();
    let op = Op::parse(tok.next()?)?;
    let fmt = parse_format(tok.next()?)?;
    let mode = parse_mode(tok.next()?)?;
    let mut operand = || -> Option<u64> {
        let t = tok.next()?;
        let t = t.strip_prefix("0x").unwrap_or(t);
        u64::from_str_radix(t, 16).ok()
    };
    let a = operand()?;
    let b = if op.arity() >= 2 { operand()? } else { 0 };
    let c = if op.arity() >= 3 { operand()? } else { 0 };
    Some(Case {
        op,
        fmt,
        mode,
        a,
        b,
        c,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpfpga_softfp::RoundMode;

    #[test]
    fn corpus_lines_roundtrip() {
        let cases = [
            Case {
                op: Op::Mul,
                fmt: FpFormat::SINGLE,
                mode: RoundMode::NearestEven,
                a: 0x3f7f_ffff,
                b: 0x0080_0000,
                c: 0,
            },
            Case {
                op: Op::Fma,
                fmt: FpFormat::DOUBLE,
                mode: RoundMode::Truncate,
                a: 0x3ff0_0000_0000_0001,
                b: 0xbff0_0000_0000_0000,
                c: 0x0000_0000_0000_0001,
            },
            Case {
                op: Op::Sqrt,
                fmt: FpFormat::SINGLE,
                mode: RoundMode::NearestEven,
                a: 0x7f7f_ffff,
                b: 0,
                c: 0,
            },
        ];
        for case in cases {
            assert_eq!(parse_case(&render_case(&case)), Some(case));
        }
        assert_eq!(parse_case("# comment"), None);
        assert_eq!(parse_case("   "), None);
        assert_eq!(parse_case("bogus f32 rne 0x0"), None);
    }

    #[test]
    fn minimizer_reaches_fixpoint_on_synthetic_oracle() {
        // Synthetic failure: "diverges whenever a is NaN" — the minimizer
        // must keep NaN-ness while simplifying everything else.
        let fmt = FpFormat::SINGLE;
        let case = Case {
            op: Op::Add,
            fmt,
            mode: RoundMode::NearestEven,
            a: 0xffff_abcd, // noisy -NaN
            b: 0x4049_0fdb, // pi
            c: 0,
        };
        let is_nan = |bits: u64| {
            let (_, e, m) = fmt.unpack_fields(bits);
            e == fmt.inf_biased_exp() && m != 0
        };
        let min = minimize_with(&case, |c| is_nan(c.a));
        assert!(is_nan(min.a), "must preserve the failure");
        assert_eq!(min.b, 0, "side operand fully simplified");
        // The NaN payload itself should have been simplified too.
        assert!(min.a.count_ones() < case.a.count_ones());
    }
}
