//! Structured conformance corpus: exhaustive special values plus seeded
//! biased random sampling.
//!
//! Uniform random bit patterns almost never land on the encodings where
//! FP bugs live (rounding cliffs, the denormal boundary, NaN payloads,
//! exact halfway cases), so the corpus is built the way hardware FP
//! validation suites build theirs: a hand-enumerated special-value set
//! whose cross product is checked exhaustively, and a random generator
//! whose exponent and fraction distributions are deliberately skewed
//! toward the boundaries.

use fpfpga_softfp::FpFormat;

/// The format's special-value set: every encoding class the IEEE
/// arithmetic dispatches on, both signs, plus the boundary neighborhoods
/// around the denormal/normal and normal/overflow cliffs and the
/// fraction patterns that stress rounding ties.
pub fn special_values(fmt: FpFormat) -> Vec<u64> {
    let f = fmt.frac_bits();
    let sign = 1u64 << fmt.sign_shift();
    // Zeros and the denormal range.
    let mut mags: Vec<u64> = vec![
        0,                    // +0
        1,                    // smallest denormal
        2,                    //
        fmt.frac_mask() >> 1, // mid denormal
        fmt.frac_mask() - 1,  //
        fmt.frac_mask(),      // largest denormal
        1u64 << (f - 1),      // denormal with only the top fraction bit
    ];

    // The denormal/normal cliff and the bottom of the normal range.
    mags.push(fmt.min_positive()); // smallest normal
    mags.push(fmt.min_positive() + 1);
    mags.push(fmt.min_positive() | fmt.frac_mask()); // last value of the first binade
    mags.push(fmt.pack(false, 2, 0)); // second binade

    // One and its rounding neighborhood (ulp cliffs around exponent 0).
    let one = fmt.pack(false, fmt.bias() as u64, 0);
    mags.push(one - 1); // largest value below 1
    mags.push(one);
    mags.push(one + 1); // 1 + ulp
    mags.push(fmt.pack(false, fmt.bias() as u64, 1u64 << (f - 1))); // 1.5
    mags.push(fmt.pack(false, fmt.bias() as u64 + 1, 0)); // 2.0
    mags.push(fmt.pack(false, fmt.bias() as u64, fmt.frac_mask())); // just under 2

    // Mid-range exponents with tie-prone fractions.
    let mid = fmt.bias() as u64;
    mags.push(fmt.pack(false, mid + f as u64, 0)); // 2^f (odd/even integer cliff)
    mags.push(fmt.pack(false, mid + f as u64, 1));
    mags.push(fmt.pack(false, mid + f as u64 + 1, 0)); // 2^(f+1)
    mags.push(fmt.pack(false, mid - f as u64, 0)); // 2^-f
    mags.push(fmt.pack(false, mid, 0b0101)); // sticky-tail pattern
    mags.push(fmt.pack(false, mid + 3, fmt.frac_mask() & !1)); // even lsb, all ones above

    // The overflow cliff.
    mags.push(fmt.max_finite() - 1);
    mags.push(fmt.max_finite());
    mags.push(fmt.pack(false, fmt.max_biased_exp(), 0)); // top binade start
    mags.push(fmt.pack(false, fmt.max_biased_exp() - 1, fmt.frac_mask()));

    // Infinity.
    mags.push(fmt.pos_inf());

    // NaNs: canonical quiet, quiet with payloads, signaling payloads.
    let quiet_bit = 1u64 << (f - 1);
    let inf = fmt.pos_inf();
    mags.push(inf | quiet_bit); // canonical qNaN
    mags.push(inf | quiet_bit | 1); // qNaN, payload 1
    mags.push(inf | fmt.frac_mask()); // qNaN, full payload
    mags.push(inf | 1); // sNaN, payload 1
    mags.push(inf | (quiet_bit - 1)); // sNaN, maximal payload
    mags.push(inf | (1u64 << (f / 2))); // sNaN, mid payload

    // Both signs of everything.
    let mut out = Vec::with_capacity(mags.len() * 2);
    for &m in &mags {
        out.push(m);
        out.push(m | sign);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Deterministic splitmix64 stream.
#[derive(Clone, Debug)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Seed the stream.
    pub fn new(seed: u64) -> Rng64 {
        Rng64 {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Seeded biased case generator for one format.
///
/// Roughly: a quarter of draws are uniform encodings, the rest are
/// boundary-biased — exponents clustered at the denormal and overflow
/// cliffs, fraction patterns skewed toward all-zeros / all-ones /
/// single-bit / low-entropy tails, and a slice of draws taken straight
/// from the special-value list.
#[derive(Clone, Debug)]
pub struct CaseGen {
    fmt: FpFormat,
    rng: Rng64,
    specials: Vec<u64>,
}

impl CaseGen {
    /// A generator for `fmt` seeded with `seed`.
    pub fn new(fmt: FpFormat, seed: u64) -> CaseGen {
        CaseGen {
            fmt,
            rng: Rng64::new(seed),
            specials: special_values(fmt),
        }
    }

    /// One biased operand encoding.
    pub fn value(&mut self) -> u64 {
        let fmt = self.fmt;
        match self.rng.below(8) {
            0 | 1 => self.rng.next_u64() & fmt.enc_mask(), // uniform bits
            2 => {
                let i = self.rng.below(self.specials.len() as u64) as usize;
                self.specials[i]
            }
            3 => {
                // Deep-bottom exponents: denormals and the first binades.
                let exp = self.rng.below(3);
                self.pack_biased(exp)
            }
            4 => {
                // Near-overflow exponents.
                let top = fmt.max_biased_exp();
                let exp = top - self.rng.below(3);
                self.pack_biased(exp)
            }
            5 => {
                // Exponents within ±(frac_bits+2) of the bias: the zone
                // where add/sub alignment and cancellation live.
                let w = (fmt.frac_bits() + 2) as u64;
                let exp = (fmt.bias() as u64 + self.rng.below(2 * w + 1)).saturating_sub(w);
                self.pack_biased(exp.clamp(0, fmt.max_biased_exp()))
            }
            _ => {
                // Any exponent, biased fraction.
                let exp = self.rng.below(fmt.max_biased_exp() + 1);
                self.pack_biased(exp)
            }
        }
    }

    fn pack_biased(&mut self, biased_exp: u64) -> u64 {
        let fmt = self.fmt;
        let f = fmt.frac_bits();
        let frac = match self.rng.below(6) {
            0 => 0,
            1 => fmt.frac_mask(),
            2 => 1u64 << self.rng.below(f as u64), // single bit
            3 => fmt.frac_mask() & !(1u64 << self.rng.below(f as u64)), // single hole
            4 => {
                // Low-entropy tail: mostly-zero with a short random suffix.
                self.rng.next_u64() & ((1u64 << self.rng.below(f as u64 + 1)) - 1)
            }
            _ => self.rng.next_u64() & fmt.frac_mask(),
        };
        let sign = self.rng.below(2) == 1;
        fmt.pack(sign, biased_exp, frac)
    }

    /// An operand pair; a slice of draws makes the second operand a
    /// near-neighbor of the first (the cancellation/tie regime that
    /// uniform pairs essentially never produce).
    pub fn pair(&mut self) -> (u64, u64) {
        let a = self.value();
        let b = match self.rng.below(4) {
            0 => {
                // b within a few ulps of ±a.
                let delta = self.rng.below(9) as i64 - 4;
                let flip = if self.rng.below(2) == 1 {
                    1u64 << self.fmt.sign_shift()
                } else {
                    0
                };
                (a.wrapping_add(delta as u64) & self.fmt.enc_mask()) ^ flip
            }
            _ => self.value(),
        };
        (a, b)
    }

    /// An operand triple for fused multiply-add; biased so the addend is
    /// frequently in the product's cancellation range.
    pub fn triple(&mut self) -> (u64, u64, u64) {
        let (a, b) = self.pair();
        let c = match self.rng.below(3) {
            0 => {
                // Aim c at ±(a·b): exponent of c ≈ exp(a)+exp(b)-bias.
                let fmt = self.fmt;
                let (_, ea, _) = fmt.unpack_fields(a);
                let (_, eb, _) = fmt.unpack_fields(b);
                let ec = (ea + eb)
                    .saturating_sub(fmt.bias() as u64)
                    .clamp(0, fmt.max_biased_exp());
                let frac = self.rng.next_u64() & fmt.frac_mask();
                fmt.pack(self.rng.below(2) == 1, ec, frac)
            }
            _ => self.value(),
        };
        (a, b, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_cover_all_classes() {
        for fmt in [FpFormat::SINGLE, FpFormat::FP48, FpFormat::DOUBLE] {
            let s = special_values(fmt);
            assert!(s.len() > 50, "{fmt:?}: {}", s.len());
            let has = |p: fn(FpFormat, u64) -> bool| s.iter().any(|&v| p(fmt, v));
            // zero, denormal, normal, inf, qNaN, sNaN — both signs.
            assert!(has(|f, v| v == 0 || v == 1u64 << f.sign_shift()));
            assert!(has(|f, v| {
                let (_, e, m) = f.unpack_fields(v);
                e == 0 && m != 0
            }));
            assert!(has(|f, v| {
                let (_, e, _) = f.unpack_fields(v);
                e == f.inf_biased_exp() && v & f.frac_mask() == 0
            }));
            assert!(has(|f, v| {
                let (_, e, m) = f.unpack_fields(v);
                let quiet = 1u64 << (f.frac_bits() - 1);
                e == f.inf_biased_exp() && m != 0 && m & quiet != 0
            }));
            assert!(has(|f, v| {
                let (_, e, m) = f.unpack_fields(v);
                let quiet = 1u64 << (f.frac_bits() - 1);
                e == f.inf_biased_exp() && m != 0 && m & quiet == 0
            }));
            // all encodings are in range
            assert!(s.iter().all(|&v| v & !fmt.enc_mask() == 0));
        }
    }

    #[test]
    fn casegen_is_deterministic() {
        let mut a = CaseGen::new(FpFormat::SINGLE, 42);
        let mut b = CaseGen::new(FpFormat::SINGLE, 42);
        for _ in 0..100 {
            assert_eq!(a.pair(), b.pair());
            assert_eq!(a.triple(), b.triple());
        }
    }

    #[test]
    fn casegen_hits_boundary_classes() {
        let fmt = FpFormat::SINGLE;
        let mut g = CaseGen::new(fmt, 7);
        let (mut denormal, mut nan, mut top) = (0, 0, 0);
        for _ in 0..4000 {
            let v = g.value();
            let (_, e, m) = fmt.unpack_fields(v);
            if e == 0 && m != 0 {
                denormal += 1;
            }
            if e == fmt.inf_biased_exp() && m != 0 {
                nan += 1;
            }
            if e == fmt.max_biased_exp() {
                top += 1;
            }
        }
        assert!(denormal > 50, "denormals: {denormal}");
        assert!(nan > 10, "nans: {nan}");
        assert!(top > 50, "top binade: {top}");
    }

    #[test]
    fn values_stay_in_encoding_range() {
        for fmt in [FpFormat::SINGLE, FpFormat::new(6, 17)] {
            let mut g = CaseGen::new(fmt, 3);
            for _ in 0..2000 {
                let (a, b, c) = g.triple();
                for v in [a, b, c] {
                    assert_eq!(v & !fmt.enc_mask(), 0, "{v:#x} out of range");
                }
            }
        }
    }
}
