//! # fpfpga-conform — differential IEEE 754 conformance harness
//!
//! The whole repository rests on one claim: the behavioural models in
//! `fpfpga-softfp` are bit-exact, and the cycle-accurate cores in
//! `fpfpga-fpu` are bit-identical to them. This crate is the standing
//! gate for that claim, in the tradition of differential FP validation
//! (TestFloat against SoftFloat; de Fine Licht et al. and Merchant et
//! al. validate their FPGA datapaths the same way):
//!
//! * **softfp (IEEE mode) vs host hardware** — every op (add/sub/mul/
//!   div/sqrt/fma, conversions, comparisons) compared bit for bit,
//!   result *and* exception flags, against the machine's own `f32`/`f64`
//!   arithmetic ([`host`]).
//! * **softfp (flush-to-zero mode) vs host hardware** — the paper-
//!   faithful cores compared on the common semantic domain (no NaNs, no
//!   denormals in or out).
//! * **fpu vs softfp** — the staged pipeline units replayed across every
//!   pipeline depth with softfp as oracle, for all paper formats.
//! * **softfp limb kernels vs exact oracle** — the wide-format
//!   (f128/f256) multi-limb datapath, where no host hardware exists,
//!   compared against a from-scratch exact-integer + explicit-round
//!   `BigFloat` oracle ([`limb`]).
//!
//! [`corpus`] generates the structured inputs (exhaustive special-value
//! cross products plus seeded random sampling), [`diff`] runs the
//! comparisons, and [`shrink`] minimizes any divergence to a one-line
//! reproducer for the checked-in regression corpus
//! (`tests/conform_corpus/` at the repository root).

pub mod corpus;
pub mod diff;
pub mod host;
pub mod limb;
pub mod shrink;

pub use corpus::{special_values, CaseGen};
pub use diff::{
    check_case, run_fpu_sweep, run_ftz_sweep, run_ieee_sweep, Case, Divergence, Op, OpReport,
    SweepConfig, SweepReport,
};
pub use limb::{
    check_limb_case, minimize_limb, minimize_limb_with, parse_limb_case, render_limb_case,
    run_limb_sweep, LimbCase, LimbDivergence, LimbSweepConfig, LimbSweepReport,
};
pub use shrink::{minimize, minimize_with, parse_case, render_case};
