//! Replay the checked-in regression corpus (`tests/conform_corpus/` at
//! the repository root) against the host. Every line is a minimized
//! reproducer of a divergence that was once real; agreement here is
//! what keeps each fixed bug fixed.

use fpfpga_conform::{check_case, parse_case};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/conform_corpus")
}

#[test]
fn every_corpus_case_agrees_with_the_host() {
    let dir = corpus_dir();
    let mut files = 0usize;
    let mut cases = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    entries.sort();
    for path in entries {
        files += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        for (ln, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let case = parse_case(line).unwrap_or_else(|| {
                panic!(
                    "{}:{}: unparseable corpus line `{line}`",
                    path.display(),
                    ln + 1
                )
            });
            cases += 1;
            if let Some(d) = check_case(&case) {
                panic!(
                    "{}:{}: regressed: {line}\n  ours      {:#x} {:?}\n  reference {:#x} {:?}",
                    path.display(),
                    ln + 1,
                    d.ours.0,
                    d.ours.1,
                    d.reference.0,
                    d.reference.1
                );
            }
        }
    }
    assert!(files >= 5, "corpus lost files? found {files}");
    assert!(cases >= 30, "corpus lost cases? found {cases}");
}
