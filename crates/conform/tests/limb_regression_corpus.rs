//! Replay the checked-in wide-format regression corpus
//! (`tests/conform_corpus/limb/` at the repository root) through the
//! limb kernels and the `BigFloat` oracle. Every line is a minimized
//! reproducer of a bug class hit while bringing the multi-limb
//! datapath up; kernel/oracle agreement here is what keeps each one
//! fixed.

use fpfpga_conform::limb::{check_limb_case, parse_limb_case};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/conform_corpus/limb")
}

#[test]
fn every_wide_corpus_case_agrees_with_the_oracle() {
    let dir = corpus_dir();
    let mut cases = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "wide corpus lost its files?");
    for path in entries {
        let text = std::fs::read_to_string(&path).unwrap();
        for (ln, line) in text.lines().enumerate() {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let case = parse_limb_case(line).unwrap_or_else(|| {
                panic!(
                    "{}:{}: unparseable wide corpus line `{line}`",
                    path.display(),
                    ln + 1
                )
            });
            cases += 1;
            if let Some(d) = check_limb_case(&case) {
                panic!(
                    "{}:{}: regressed: {line}\n  kernel {:x?} {:?}\n  oracle {:x?} {:?}",
                    path.display(),
                    ln + 1,
                    d.ours.0,
                    d.ours.1,
                    d.reference.0,
                    d.reference.1
                );
            }
        }
    }
    assert!(cases >= 15, "wide corpus lost cases? found {cases}");
}
