//! Property-based differential suites (satellite of the conformance
//! harness):
//!
//! * softfp IEEE-mode fma/div/sqrt against the host, over the FULL input
//!   domain — arbitrary bit patterns, NaNs and denormals included,
//!   results and exception flags both checked;
//! * the staged `fpfpga-fpu` pipeline units against softfp as oracle,
//!   across every legal pipeline depth.
#![recursion_limit = "256"]

use fpfpga_conform::diff::{check_case, eval_ftz, Case, Op};
use fpfpga_fpu::prelude::*;
use proptest::prelude::*;

fn modes() -> impl Strategy<Value = RoundMode> {
    prop_oneof![Just(RoundMode::NearestEven), Just(RoundMode::Truncate)]
}

fn native_formats() -> impl Strategy<Value = FpFormat> {
    prop_oneof![Just(FpFormat::SINGLE), Just(FpFormat::DOUBLE)]
}

fn all_formats() -> impl Strategy<Value = FpFormat> {
    prop_oneof![
        Just(FpFormat::SINGLE),
        Just(FpFormat::FP48),
        Just(FpFormat::DOUBLE),
        Just(FpFormat::new(6, 17)),
    ]
}

fn assert_agrees(case: Case) -> Result<(), TestCaseError> {
    if let Some(d) = check_case(&case) {
        return Err(format!(
            "diverged from host: {:?}\n  ours      {:#x} {:?}\n  reference {:#x} {:?}",
            d.case, d.ours.0, d.ours.1, d.reference.0, d.reference.1
        ));
    }
    Ok(())
}

fn run_once(unit: &mut PipelinedUnit, a: u64, b: u64) -> (u64, Flags) {
    let mut out = unit.clock(Some((a, b)));
    let mut guard = 0;
    while out.is_none() {
        out = unit.clock(None);
        guard += 1;
        assert!(guard <= unit.latency() + 1, "result never emerged");
    }
    out.unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn ieee_fma_matches_host(
        fmt in native_formats(),
        mode in modes(),
        ra in any::<u64>(),
        rb in any::<u64>(),
        rc in any::<u64>(),
    ) {
        let m = fmt.enc_mask();
        assert_agrees(Case { op: Op::Fma, fmt, mode, a: ra & m, b: rb & m, c: rc & m })?;
    }

    #[test]
    fn ieee_div_matches_host(
        fmt in native_formats(),
        mode in modes(),
        ra in any::<u64>(),
        rb in any::<u64>(),
    ) {
        let m = fmt.enc_mask();
        assert_agrees(Case { op: Op::Div, fmt, mode, a: ra & m, b: rb & m, c: 0 })?;
    }

    #[test]
    fn ieee_sqrt_matches_host(
        fmt in native_formats(),
        mode in modes(),
        ra in any::<u64>(),
    ) {
        let m = fmt.enc_mask();
        assert_agrees(Case { op: Op::Sqrt, fmt, mode, a: ra & m, b: 0, c: 0 })?;
    }
}

/// One differential shot at a given pipeline depth.
fn pipeline_agrees(
    op: Op,
    fmt: FpFormat,
    mode: RoundMode,
    stages: u32,
    a: u64,
    b: u64,
) -> Result<(), TestCaseError> {
    let mut unit = match op {
        Op::Add => AdderDesign {
            format: fmt,
            round: mode,
            force_priority_encoder: true,
        }
        .simulator(stages),
        Op::Sub => AdderDesign {
            format: fmt,
            round: mode,
            force_priority_encoder: true,
        }
        .simulator(stages)
        .with_subtract(true),
        Op::Mul => MultiplierDesign {
            format: fmt,
            round: mode,
        }
        .simulator(stages),
        Op::Div => DividerDesign {
            format: fmt,
            round: mode,
        }
        .simulator(stages),
        _ => SqrtDesign {
            format: fmt,
            round: mode,
        }
        .simulator(stages),
    };
    let (got, gf) = run_once(&mut unit, a, b);
    let case = Case {
        op,
        fmt,
        mode,
        a,
        b,
        c: 0,
    };
    let (want, wf) = eval_ftz(&case);
    prop_assert_eq!(got, want, "{:?} k={} a={:#x} b={:#x}", case, stages, a, b);
    prop_assert_eq!(gf, wf, "{:?} k={} flags", case, stages);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn staged_adder_matches_softfp_at_every_depth(
        fmt in all_formats(),
        mode in modes(),
        subtract in any::<bool>(),
        stages in 1u32..24,
        ra in any::<u64>(),
        rb in any::<u64>(),
    ) {
        let op = if subtract { Op::Sub } else { Op::Add };
        let m = fmt.enc_mask();
        pipeline_agrees(op, fmt, mode, stages, ra & m, rb & m)?;
    }

    #[test]
    fn staged_multiplier_matches_softfp_at_every_depth(
        fmt in all_formats(),
        mode in modes(),
        stages in 1u32..24,
        ra in any::<u64>(),
        rb in any::<u64>(),
    ) {
        let m = fmt.enc_mask();
        pipeline_agrees(Op::Mul, fmt, mode, stages, ra & m, rb & m)?;
    }

    #[test]
    fn staged_divider_matches_softfp_at_every_depth(
        fmt in all_formats(),
        mode in modes(),
        stages in 1u32..40,
        ra in any::<u64>(),
        rb in any::<u64>(),
    ) {
        let m = fmt.enc_mask();
        pipeline_agrees(Op::Div, fmt, mode, stages, ra & m, rb & m)?;
    }

    #[test]
    fn staged_sqrt_matches_softfp_at_every_depth(
        fmt in all_formats(),
        mode in modes(),
        stages in 1u32..30,
        ra in any::<u64>(),
    ) {
        let m = fmt.enc_mask();
        pipeline_agrees(Op::Sqrt, fmt, mode, stages, ra & m, 0)?;
    }
}
