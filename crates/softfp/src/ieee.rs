//! Full IEEE 754 mode: gradual underflow (denormals) and NaNs.
//!
//! The paper's cores deliberately omit this — "Denormal and NaN numbers
//! are generally considered rare and may not justify the usage of a lot
//! of hardware required for their handling." This module implements what
//! they omitted, so the repository can *quantify* that trade-off: the
//! numerical difference here, and the hardware cost in
//! `fpfpga-fpu::ieee_cost`.
//!
//! Semantics: IEEE 754 with round-to-nearest-even or round-toward-zero,
//! gradual underflow, quiet-NaN propagation (any NaN operand produces
//! the canonical quiet NaN of the format — payloads are not preserved;
//! tests against native floats therefore compare NaN-ness, not NaN
//! bits), and tininess detected after rounding.

use crate::exceptions::Flags;
use crate::format::FpFormat;
use crate::ops::add::{align_mantissa, swap_operands, GRS_BITS};
use crate::round::{shift_right_sticky_u128, RoundMode};
use crate::unpacked::Unpacked;

/// Operand classification with the two classes the flush-to-zero cores
/// erase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IeeeClass {
    /// ±0.
    Zero,
    /// A denormal (kept, not flushed).
    Denormal,
    /// A normal number.
    Normal,
    /// ±∞.
    Inf,
    /// Any NaN encoding.
    Nan,
}

/// An operand unpacked with full IEEE semantics. Denormals are
/// *pre-normalized*: the significand always has its leading one at the
/// hidden position and the (unbiased, unbounded) exponent absorbs the
/// shift, so the arithmetic core handles both classes uniformly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IeeeUnpacked {
    /// Sign bit.
    pub sign: bool,
    /// Unbiased exponent; for denormals this lies below `fmt.min_exp()`.
    pub exp: i32,
    /// Significand with the leading one at `fmt.frac_bits()` (zero for
    /// zeros/specials).
    pub sig: u64,
    /// Classification.
    pub class: IeeeClass,
}

impl IeeeUnpacked {
    /// Decode with gradual-underflow and NaN awareness.
    pub fn from_bits(fmt: FpFormat, bits: u64) -> IeeeUnpacked {
        let (sign, biased, frac) = fmt.unpack_fields(bits);
        if biased == fmt.inf_biased_exp() {
            if frac == 0 {
                IeeeUnpacked {
                    sign,
                    exp: 0,
                    sig: 0,
                    class: IeeeClass::Inf,
                }
            } else {
                IeeeUnpacked {
                    sign,
                    exp: 0,
                    sig: 0,
                    class: IeeeClass::Nan,
                }
            }
        } else if biased == 0 {
            if frac == 0 {
                IeeeUnpacked {
                    sign,
                    exp: 0,
                    sig: 0,
                    class: IeeeClass::Zero,
                }
            } else {
                // Denormal: value = frac · 2^(min_exp − frac_bits).
                // Normalize so the arithmetic sees a hidden-bit form.
                let shift = fmt.frac_bits() + 1 - (64 - frac.leading_zeros());
                IeeeUnpacked {
                    sign,
                    exp: fmt.min_exp() - shift as i32,
                    sig: frac << shift,
                    class: IeeeClass::Denormal,
                }
            }
        } else {
            IeeeUnpacked {
                sign,
                exp: biased as i32 - fmt.bias(),
                sig: frac | (1u64 << fmt.frac_bits()),
                class: IeeeClass::Normal,
            }
        }
    }

    /// True for zero.
    pub fn is_zero(&self) -> bool {
        self.class == IeeeClass::Zero
    }

    /// True for a finite non-zero number (normal or denormal).
    pub fn is_finite_nonzero(&self) -> bool {
        matches!(self.class, IeeeClass::Normal | IeeeClass::Denormal)
    }
}

/// The format's canonical quiet NaN (positive, MSB of the fraction set).
pub fn quiet_nan(fmt: FpFormat) -> u64 {
    fmt.pack(false, fmt.inf_biased_exp(), 1u64 << (fmt.frac_bits() - 1))
}

/// True if `bits` encodes any NaN.
pub fn is_nan(fmt: FpFormat, bits: u64) -> bool {
    let (_, biased, frac) = fmt.unpack_fields(bits);
    biased == fmt.inf_biased_exp() && frac != 0
}

/// IEEE addition with gradual underflow and NaN propagation.
pub fn ieee_add(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    let ua = IeeeUnpacked::from_bits(fmt, a);
    let ub = IeeeUnpacked::from_bits(fmt, b);
    use IeeeClass::*;
    match (ua.class, ub.class) {
        (Nan, _) | (_, Nan) => return (quiet_nan(fmt), Flags::NONE),
        (Inf, Inf) => {
            return if ua.sign == ub.sign {
                (fmt.pack(ua.sign, fmt.inf_biased_exp(), 0), Flags::NONE)
            } else {
                (quiet_nan(fmt), Flags::invalid())
            };
        }
        (Inf, _) => return (fmt.pack(ua.sign, fmt.inf_biased_exp(), 0), Flags::NONE),
        (_, Inf) => return (fmt.pack(ub.sign, fmt.inf_biased_exp(), 0), Flags::NONE),
        (Zero, Zero) => {
            return (fmt.pack(ua.sign && ub.sign, 0, 0), Flags::NONE);
        }
        (Zero, _) => return (b, Flags::NONE),
        (_, Zero) => return (a, Flags::NONE),
        _ => {}
    }

    // Reuse the flush-to-zero datapath helpers on the pre-normalized
    // forms; only the exponent range and the pack step differ.
    let (hi, lo) = swap_operands(
        Unpacked {
            sign: ua.sign,
            exp: ua.exp,
            sig: ua.sig,
            class: crate::Class::Normal,
        },
        Unpacked {
            sign: ub.sign,
            exp: ub.exp,
            sig: ub.sig,
            class: crate::Class::Normal,
        },
    );
    let diff = (hi.exp - lo.exp) as u32;
    let hi_sig = (hi.sig as u128) << GRS_BITS;
    let (lo_aligned, sticky) = align_mantissa(lo.sig, diff);
    let lo_full = (lo_aligned | sticky as u64) as u128;

    let (mag, sign, exp) = if ua.sign == ub.sign {
        (hi_sig + lo_full, hi.sign, hi.exp)
    } else {
        let d = hi_sig - lo_full;
        if d == 0 {
            // Exact cancellation: +0 under round-to-nearest and
            // round-toward-zero alike.
            return (fmt.pack(false, 0, 0), Flags::NONE);
        }
        (d, hi.sign, hi.exp)
    };

    // Pre-normalize carry-out, then bring the leading one up (the shift
    // may run below min_exp; the pack step pushes back down into the
    // denormal range with a sticky).
    let hidden = fmt.frac_bits() + GRS_BITS;
    let (mut mag, mut exp) = (mag, exp);
    if mag >> (hidden + 1) != 0 {
        let lsb = mag & 1;
        mag = (mag >> 1) | lsb;
        exp += 1;
    }
    let msb = 127 - mag.leading_zeros();
    if msb < hidden {
        let shift = hidden - msb;
        mag <<= shift;
        exp -= shift as i32;
    }
    ieee_round_pack(fmt, sign, exp, mag, GRS_BITS, mode)
}

/// IEEE subtraction.
pub fn ieee_sub(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    ieee_add(fmt, a, b ^ (1u64 << fmt.sign_shift()), mode)
}

/// IEEE multiplication with gradual underflow and NaN propagation.
pub fn ieee_mul(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    let ua = IeeeUnpacked::from_bits(fmt, a);
    let ub = IeeeUnpacked::from_bits(fmt, b);
    let sign = ua.sign ^ ub.sign;
    use IeeeClass::*;
    match (ua.class, ub.class) {
        (Nan, _) | (_, Nan) => return (quiet_nan(fmt), Flags::NONE),
        (Zero, Inf) | (Inf, Zero) => return (quiet_nan(fmt), Flags::invalid()),
        (Inf, _) | (_, Inf) => return (fmt.pack(sign, fmt.inf_biased_exp(), 0), Flags::NONE),
        (Zero, _) | (_, Zero) => return (fmt.pack(sign, 0, 0), Flags::NONE),
        _ => {}
    }

    let product = ua.sig as u128 * ub.sig as u128;
    let exp = ua.exp + ub.exp;
    let f = fmt.frac_bits();
    let (aligned, exp) = if product >> (2 * f + 1) != 0 {
        (product, exp + 1)
    } else {
        (product << 1, exp)
    };
    ieee_round_pack(fmt, sign, exp, aligned, f + 1, mode)
}

/// Round and pack with gradual underflow.
///
/// `mag` is non-zero and normalized (leading one at `frac_bits + grs`);
/// `exp` is unbounded. Handles overflow (→ ±∞ or ±max-finite by mode),
/// the denormal range (right-shift with sticky before rounding, biased
/// exponent 0 or promotion to the smallest normal), and the IEEE
/// underflow flag (tininess after rounding, raised only with inexact).
pub fn ieee_round_pack(
    fmt: FpFormat,
    sign: bool,
    exp: i32,
    mag: u128,
    grs: u32,
    mode: RoundMode,
) -> (u64, Flags) {
    debug_assert!(mag != 0);
    debug_assert_eq!(
        127 - mag.leading_zeros(),
        fmt.frac_bits() + grs,
        "not normalized"
    );

    if exp > fmt.max_exp() {
        let flags = Flags::overflow();
        let bits = match mode {
            RoundMode::NearestEven => fmt.pack(sign, fmt.inf_biased_exp(), 0),
            RoundMode::Truncate => fmt.pack(sign, fmt.max_biased_exp(), fmt.frac_mask()),
        };
        return (bits, flags);
    }

    // Push values below the normal range down into the denormal
    // representation: the hidden position stays fixed, the value shifts.
    let (mag, denormal_path) = if exp < fmt.min_exp() {
        let shift = (fmt.min_exp() - exp) as u32;
        let (m, lost) = shift_right_sticky_u128(mag, shift);
        (m | lost as u128, true)
    } else {
        (mag, false)
    };

    // Round at the fixed guard boundary. The kept part's hidden bit may
    // be clear on the denormal path.
    let tail_mask = (1u128 << grs) - 1;
    let tail = mag & tail_mask;
    let kept = (mag >> grs) as u64;
    let inexact = tail != 0;
    let round_up = match mode {
        RoundMode::Truncate => false,
        RoundMode::NearestEven => {
            let half = 1u128 << (grs - 1);
            tail > half || (tail == half && kept & 1 == 1)
        }
    };
    let mut rounded = kept + round_up as u64;
    let mut exp = exp;
    if !denormal_path && rounded >> fmt.sig_bits() != 0 {
        rounded >>= 1;
        exp += 1;
        if exp > fmt.max_exp() {
            let bits = match mode {
                RoundMode::NearestEven => fmt.pack(sign, fmt.inf_biased_exp(), 0),
                RoundMode::Truncate => fmt.pack(sign, fmt.max_biased_exp(), fmt.frac_mask()),
            };
            return (bits, Flags::overflow());
        }
    }

    let mut flags = Flags::NONE;
    flags.inexact = inexact;
    if denormal_path {
        // Tininess after rounding: if the round carried all the way up to
        // the smallest normal, the result is not tiny.
        let bits = if rounded >> fmt.frac_bits() != 0 {
            fmt.pack(sign, 1, rounded & fmt.frac_mask())
        } else {
            if inexact {
                flags.underflow = true;
            }
            fmt.pack(sign, 0, rounded)
        };
        (bits, flags)
    } else {
        debug_assert!(rounded >> fmt.frac_bits() == 1);
        (
            fmt.pack(sign, (exp + fmt.bias()) as u64, rounded & fmt.frac_mask()),
            flags,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F32: FpFormat = FpFormat::SINGLE;

    fn add32(a: f32, b: f32) -> (f32, Flags) {
        let (bits, f) = ieee_add(
            F32,
            a.to_bits() as u64,
            b.to_bits() as u64,
            RoundMode::NearestEven,
        );
        (f32::from_bits(bits as u32), f)
    }

    fn mul32(a: f32, b: f32) -> (f32, Flags) {
        let (bits, f) = ieee_mul(
            F32,
            a.to_bits() as u64,
            b.to_bits() as u64,
            RoundMode::NearestEven,
        );
        (f32::from_bits(bits as u32), f)
    }

    #[test]
    fn unpack_denormal_is_normalized() {
        let tiny = f32::from_bits(1); // smallest denormal = 2^-149
        let u = IeeeUnpacked::from_bits(F32, tiny.to_bits() as u64);
        assert_eq!(u.class, IeeeClass::Denormal);
        assert_eq!(u.sig, 1 << 23);
        assert_eq!(u.exp, -149);
    }

    #[test]
    fn unpack_nan_and_inf() {
        assert_eq!(
            IeeeUnpacked::from_bits(F32, 0x7fc0_0000).class,
            IeeeClass::Nan
        );
        assert_eq!(
            IeeeUnpacked::from_bits(F32, 0x7f80_0001).class,
            IeeeClass::Nan
        );
        assert_eq!(
            IeeeUnpacked::from_bits(F32, 0x7f80_0000).class,
            IeeeClass::Inf
        );
        assert!(is_nan(F32, quiet_nan(F32)));
    }

    #[test]
    fn denormal_addition_matches_native() {
        let d1 = f32::from_bits(0x0000_0123);
        let d2 = f32::from_bits(0x0040_5678);
        let (got, _) = add32(d1, d2);
        assert_eq!(got.to_bits(), (d1 + d2).to_bits());
    }

    #[test]
    fn gradual_underflow_on_subtract() {
        // Two nearby small normals whose difference is denormal — the
        // flush-to-zero cores return 0 here; full IEEE keeps precision.
        let a = f32::from_bits(0x0080_0010);
        let b = f32::from_bits(0x0080_0001);
        let (got, _) = add32(a, -b);
        assert_eq!(got.to_bits(), (a - b).to_bits());
        assert!(got != 0.0, "gradual underflow must preserve the difference");
        // ... and the flush-to-zero core indeed loses it:
        let (ftz, _) = crate::add_bits(
            F32,
            a.to_bits() as u64,
            (-b).to_bits() as u64,
            RoundMode::NearestEven,
        );
        assert_eq!(ftz, 0);
    }

    #[test]
    fn mul_into_denormal_range() {
        let a = f32::MIN_POSITIVE; // 2^-126
        let (got, f) = mul32(a, 0.5);
        assert_eq!(got.to_bits(), (a * 0.5).to_bits());
        assert!(got > 0.0);
        assert!(!f.underflow, "exact denormal result is not an underflow");
        // 2^-126 × 0.6f32 happens to be *exactly* representable as a
        // denormal (0.6f32 = 10066330·2^-24 and 10066330 is even), so use
        // a third that is genuinely inexact.
        let third = 1.0f32 / 3.0;
        let (got, f) = mul32(a, third);
        assert_eq!(got.to_bits(), (a * third).to_bits());
        assert!(f.underflow && f.inexact, "{f:?}");
    }

    #[test]
    fn nan_propagates() {
        let (r, f) = add32(f32::NAN, 1.0);
        assert!(r.is_nan());
        assert!(!f.invalid, "quiet NaN propagation raises nothing");
        let (r, _) = mul32(2.0, f32::NAN);
        assert!(r.is_nan());
    }

    #[test]
    fn invalid_ops_produce_nan() {
        let (r, f) = add32(f32::INFINITY, f32::NEG_INFINITY);
        assert!(r.is_nan());
        assert!(f.invalid);
        let (r, f) = mul32(0.0, f32::INFINITY);
        assert!(r.is_nan());
        assert!(f.invalid);
    }

    #[test]
    fn denormal_rounds_up_to_min_normal() {
        // A result just below 2^-126 can round up into the normal range
        // (then it is not tiny and not an underflow).
        let a = f32::from_bits(0x007f_ffff); // largest denormal
        let b = f32::from_bits(0x0000_0001); // smallest denormal
        let (got, f) = add32(a, b);
        assert_eq!(got, f32::MIN_POSITIVE);
        assert!(!f.underflow && !f.inexact);
    }

    #[test]
    fn zero_plus_denormal_is_identity() {
        let d = f32::from_bits(0x0012_3456);
        let (got, f) = add32(0.0, d);
        assert_eq!(got.to_bits(), d.to_bits());
        assert!(!f.any());
    }

    #[test]
    fn normals_still_match_ftz_mode() {
        // On normal-in/normal-out cases the two modes agree bit for bit.
        for &(x, y) in &[(1.5f32, 2.25f32), (-3.0, 7.5), (1e20, -2e19)] {
            let (ieee, _) = ieee_add(
                F32,
                x.to_bits() as u64,
                y.to_bits() as u64,
                RoundMode::NearestEven,
            );
            let (ftz, _) = crate::add_bits(
                F32,
                x.to_bits() as u64,
                y.to_bits() as u64,
                RoundMode::NearestEven,
            );
            assert_eq!(ieee, ftz, "{x} + {y}");
        }
    }

    #[test]
    fn overflow_paths() {
        let (r, f) = mul32(f32::MAX, 2.0);
        assert_eq!(r, f32::INFINITY);
        assert!(f.overflow);
        let (bits, f) = ieee_mul(
            F32,
            f32::MAX.to_bits() as u64,
            2.0f32.to_bits() as u64,
            RoundMode::Truncate,
        );
        assert_eq!(f32::from_bits(bits as u32), f32::MAX);
        assert!(f.overflow);
    }

    #[test]
    fn sub_via_sign_flip() {
        let (bits, _) = ieee_sub(
            F32,
            5.0f32.to_bits() as u64,
            3.0f32.to_bits() as u64,
            RoundMode::NearestEven,
        );
        assert_eq!(f32::from_bits(bits as u32), 2.0);
    }
}
