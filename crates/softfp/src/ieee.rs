//! Full IEEE 754 mode: gradual underflow (denormals) and NaNs.
//!
//! The paper's cores deliberately omit this — "Denormal and NaN numbers
//! are generally considered rare and may not justify the usage of a lot
//! of hardware required for their handling." This module implements what
//! they omitted, so the repository can *quantify* that trade-off: the
//! numerical difference here, and the hardware cost in
//! `fpfpga-fpu::ieee_cost`.
//!
//! Semantics: IEEE 754-2019 with round-to-nearest-even or
//! round-toward-zero, gradual underflow, NaN payload propagation per
//! §6.2 (the first NaN operand's sign and payload are preserved, the
//! quiet bit is set, and a signaling NaN raises `invalid` — NaN *bits*
//! are still ISA-specific, so differential tests against native floats
//! compare NaN-ness, while payload rules are pinned by this module's own
//! tests), and tininess detected **after rounding** in the x86-SSE
//! sense: a result is tiny iff, rounded to destination precision with an
//! unbounded exponent range, it stays below the smallest normal, and the
//! `underflow` flag is raised only when the result is both tiny and
//! inexact (see `exceptions`).

use crate::exceptions::Flags;
use crate::format::FpFormat;
use crate::ops::add::{align_mantissa, swap_operands, GRS_BITS};
use crate::ops::div::{quotient_recurrence, DIV_GRS_BITS};
use crate::ops::fma::{combine, FMA_GRS};
use crate::ops::sqrt::{root_recurrence, SQRT_GRS_BITS};
use crate::round::{round_overflow, shift_right_sticky_u128, RoundMode};
use crate::unpacked::Unpacked;
use core::cmp::Ordering;

/// Operand classification with the two classes the flush-to-zero cores
/// erase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IeeeClass {
    /// ±0.
    Zero,
    /// A denormal (kept, not flushed).
    Denormal,
    /// A normal number.
    Normal,
    /// ±∞.
    Inf,
    /// Any NaN encoding.
    Nan,
}

/// An operand unpacked with full IEEE semantics. Denormals are
/// *pre-normalized*: the significand always has its leading one at the
/// hidden position and the (unbiased, unbounded) exponent absorbs the
/// shift, so the arithmetic core handles both classes uniformly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IeeeUnpacked {
    /// Sign bit.
    pub sign: bool,
    /// Unbiased exponent; for denormals this lies below `fmt.min_exp()`.
    pub exp: i32,
    /// Significand with the leading one at `fmt.frac_bits()` (zero for
    /// zeros/specials).
    pub sig: u64,
    /// Classification.
    pub class: IeeeClass,
}

impl IeeeUnpacked {
    /// Decode with gradual-underflow and NaN awareness.
    pub fn from_bits(fmt: FpFormat, bits: u64) -> IeeeUnpacked {
        let (sign, biased, frac) = fmt.unpack_fields(bits);
        if biased == fmt.inf_biased_exp() {
            if frac == 0 {
                IeeeUnpacked {
                    sign,
                    exp: 0,
                    sig: 0,
                    class: IeeeClass::Inf,
                }
            } else {
                IeeeUnpacked {
                    sign,
                    exp: 0,
                    sig: 0,
                    class: IeeeClass::Nan,
                }
            }
        } else if biased == 0 {
            if frac == 0 {
                IeeeUnpacked {
                    sign,
                    exp: 0,
                    sig: 0,
                    class: IeeeClass::Zero,
                }
            } else {
                // Denormal: value = frac · 2^(min_exp − frac_bits).
                // Normalize so the arithmetic sees a hidden-bit form.
                let shift = fmt.frac_bits() + 1 - (64 - frac.leading_zeros());
                IeeeUnpacked {
                    sign,
                    exp: fmt.min_exp() - shift as i32,
                    sig: frac << shift,
                    class: IeeeClass::Denormal,
                }
            }
        } else {
            IeeeUnpacked {
                sign,
                exp: biased as i32 - fmt.bias(),
                sig: frac | (1u64 << fmt.frac_bits()),
                class: IeeeClass::Normal,
            }
        }
    }

    /// True for zero.
    pub fn is_zero(&self) -> bool {
        self.class == IeeeClass::Zero
    }

    /// True for a finite non-zero number (normal or denormal).
    pub fn is_finite_nonzero(&self) -> bool {
        matches!(self.class, IeeeClass::Normal | IeeeClass::Denormal)
    }
}

/// The format's canonical quiet NaN (positive, MSB of the fraction set).
pub fn quiet_nan(fmt: FpFormat) -> u64 {
    fmt.pack(false, fmt.inf_biased_exp(), 1u64 << (fmt.frac_bits() - 1))
}

/// True if `bits` encodes any NaN.
pub fn is_nan(fmt: FpFormat, bits: u64) -> bool {
    let (_, biased, frac) = fmt.unpack_fields(bits);
    biased == fmt.inf_biased_exp() && frac != 0
}

/// True if `bits` encodes a signaling NaN (NaN with the quiet bit — the
/// fraction MSB — clear).
pub fn is_signaling(fmt: FpFormat, bits: u64) -> bool {
    is_nan(fmt, bits) && bits & (1u64 << (fmt.frac_bits() - 1)) == 0
}

/// IEEE 754-2019 §6.2 NaN propagation: the result is the first NaN
/// operand (in argument order) with its quiet bit set, sign and payload
/// preserved; `invalid` is raised iff any operand is signaling.
///
/// Must be called with at least one NaN among `operands`.
pub fn propagate_nan(fmt: FpFormat, operands: &[u64]) -> (u64, Flags) {
    let mut flags = Flags::NONE;
    let mut first = None;
    for &x in operands {
        if is_nan(fmt, x) {
            if is_signaling(fmt, x) {
                flags.invalid = true;
            }
            if first.is_none() {
                first = Some(x);
            }
        }
    }
    let nan = first.expect("propagate_nan requires a NaN operand");
    (nan | (1u64 << (fmt.frac_bits() - 1)), flags)
}

/// IEEE addition with gradual underflow and NaN propagation.
pub fn ieee_add(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    let ua = IeeeUnpacked::from_bits(fmt, a);
    let ub = IeeeUnpacked::from_bits(fmt, b);
    use IeeeClass::*;
    match (ua.class, ub.class) {
        (Nan, _) | (_, Nan) => return propagate_nan(fmt, &[a, b]),
        (Inf, Inf) => {
            return if ua.sign == ub.sign {
                (fmt.pack(ua.sign, fmt.inf_biased_exp(), 0), Flags::NONE)
            } else {
                (quiet_nan(fmt), Flags::invalid())
            };
        }
        (Inf, _) => return (fmt.pack(ua.sign, fmt.inf_biased_exp(), 0), Flags::NONE),
        (_, Inf) => return (fmt.pack(ub.sign, fmt.inf_biased_exp(), 0), Flags::NONE),
        (Zero, Zero) => {
            return (fmt.pack(ua.sign && ub.sign, 0, 0), Flags::NONE);
        }
        (Zero, _) => return (b, Flags::NONE),
        (_, Zero) => return (a, Flags::NONE),
        _ => {}
    }

    // Reuse the flush-to-zero datapath helpers on the pre-normalized
    // forms; only the exponent range and the pack step differ.
    let (hi, lo) = swap_operands(
        Unpacked {
            sign: ua.sign,
            exp: ua.exp,
            sig: ua.sig,
            class: crate::Class::Normal,
        },
        Unpacked {
            sign: ub.sign,
            exp: ub.exp,
            sig: ub.sig,
            class: crate::Class::Normal,
        },
    );
    let diff = (hi.exp - lo.exp) as u32;
    let hi_sig = (hi.sig as u128) << GRS_BITS;
    let (lo_aligned, sticky) = align_mantissa(lo.sig, diff);
    let lo_full = (lo_aligned | sticky as u64) as u128;

    let (mag, sign, exp) = if ua.sign == ub.sign {
        (hi_sig + lo_full, hi.sign, hi.exp)
    } else {
        let d = hi_sig - lo_full;
        if d == 0 {
            // Exact cancellation: +0 under round-to-nearest and
            // round-toward-zero alike.
            return (fmt.pack(false, 0, 0), Flags::NONE);
        }
        (d, hi.sign, hi.exp)
    };

    // Pre-normalize carry-out, then bring the leading one up (the shift
    // may run below min_exp; the pack step pushes back down into the
    // denormal range with a sticky).
    let hidden = fmt.frac_bits() + GRS_BITS;
    let (mut mag, mut exp) = (mag, exp);
    if mag >> (hidden + 1) != 0 {
        let lsb = mag & 1;
        mag = (mag >> 1) | lsb;
        exp += 1;
    }
    let msb = 127 - mag.leading_zeros();
    if msb < hidden {
        let shift = hidden - msb;
        mag <<= shift;
        exp -= shift as i32;
    }
    ieee_round_pack(fmt, sign, exp, mag, GRS_BITS, mode)
}

/// IEEE subtraction.
pub fn ieee_sub(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    ieee_add(fmt, a, b ^ (1u64 << fmt.sign_shift()), mode)
}

/// IEEE multiplication with gradual underflow and NaN propagation.
pub fn ieee_mul(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    let ua = IeeeUnpacked::from_bits(fmt, a);
    let ub = IeeeUnpacked::from_bits(fmt, b);
    let sign = ua.sign ^ ub.sign;
    use IeeeClass::*;
    match (ua.class, ub.class) {
        (Nan, _) | (_, Nan) => return propagate_nan(fmt, &[a, b]),
        (Zero, Inf) | (Inf, Zero) => return (quiet_nan(fmt), Flags::invalid()),
        (Inf, _) | (_, Inf) => return (fmt.pack(sign, fmt.inf_biased_exp(), 0), Flags::NONE),
        (Zero, _) | (_, Zero) => return (fmt.pack(sign, 0, 0), Flags::NONE),
        _ => {}
    }

    let product = ua.sig as u128 * ub.sig as u128;
    let exp = ua.exp + ub.exp;
    let f = fmt.frac_bits();
    let (aligned, exp) = if product >> (2 * f + 1) != 0 {
        (product, exp + 1)
    } else {
        (product << 1, exp)
    };
    ieee_round_pack(fmt, sign, exp, aligned, f + 1, mode)
}

/// Round and pack with gradual underflow.
///
/// `mag` is non-zero and normalized (leading one at `frac_bits + grs`);
/// `exp` is unbounded. Handles overflow (→ ±∞ or ±max-finite by mode),
/// the denormal range (right-shift with sticky before rounding, biased
/// exponent 0 or promotion to the smallest normal), and the IEEE
/// underflow flag (tininess after rounding, raised only with inexact).
pub fn ieee_round_pack(
    fmt: FpFormat,
    sign: bool,
    exp: i32,
    mag: u128,
    grs: u32,
    mode: RoundMode,
) -> (u64, Flags) {
    debug_assert!(mag != 0);
    debug_assert_eq!(
        127 - mag.leading_zeros(),
        fmt.frac_bits() + grs,
        "not normalized"
    );

    if exp > fmt.max_exp() {
        return round_overflow(fmt, sign, mode);
    }

    let denormal_path = exp < fmt.min_exp();

    // Tininess after rounding, judged *before* denormalization: the
    // result is tiny iff rounding `mag` to destination precision with an
    // unbounded exponent range leaves it below the smallest normal. On
    // the denormal path that fails only when exp == min_exp − 1 and the
    // unbounded rounding carries 1.111…1 up to 2.0 — which is exactly
    // the window where the coarser denormalized rounding can promote the
    // result to the smallest normal while the value was never tiny.
    let tiny = denormal_path
        && !(exp == fmt.min_exp() - 1 && unbounded_round_carries(fmt, mag, grs, mode));

    // Push values below the normal range down into the denormal
    // representation: the hidden position stays fixed, the value shifts.
    let mag = if denormal_path {
        let shift = (fmt.min_exp() - exp) as u32;
        let (m, lost) = shift_right_sticky_u128(mag, shift);
        m | lost as u128
    } else {
        mag
    };

    // Round at the fixed guard boundary. The kept part's hidden bit may
    // be clear on the denormal path.
    let tail_mask = (1u128 << grs) - 1;
    let tail = mag & tail_mask;
    let kept = (mag >> grs) as u64;
    let inexact = tail != 0;
    let round_up = match mode {
        RoundMode::Truncate => false,
        RoundMode::NearestEven => {
            let half = 1u128 << (grs - 1);
            tail > half || (tail == half && kept & 1 == 1)
        }
    };
    let mut rounded = kept + round_up as u64;
    let mut exp = exp;
    if !denormal_path && rounded >> fmt.sig_bits() != 0 {
        rounded >>= 1;
        exp += 1;
        if exp > fmt.max_exp() {
            return round_overflow(fmt, sign, mode);
        }
    }

    let mut flags = Flags::NONE;
    flags.inexact = inexact;
    if denormal_path {
        flags.underflow = tiny && inexact;
        // The denormalized rounding can still promote the result to the
        // smallest normal (biased exponent 1); whether that counts as an
        // underflow was decided by `tiny` above, not by the promotion.
        let bits = if rounded >> fmt.frac_bits() != 0 {
            fmt.pack(sign, 1, rounded & fmt.frac_mask())
        } else {
            fmt.pack(sign, 0, rounded)
        };
        (bits, flags)
    } else {
        debug_assert!(rounded >> fmt.frac_bits() == 1);
        (
            fmt.pack(sign, (exp + fmt.bias()) as u64, rounded & fmt.frac_mask()),
            flags,
        )
    }
}

/// Would rounding `mag` (leading one at `frac_bits + grs`) at the guard
/// boundary carry out of the significand? Used by the tininess-after-
/// rounding check; round-toward-zero never carries.
fn unbounded_round_carries(fmt: FpFormat, mag: u128, grs: u32, mode: RoundMode) -> bool {
    match mode {
        RoundMode::Truncate => false,
        RoundMode::NearestEven => {
            let tail = mag & ((1u128 << grs) - 1);
            let kept = (mag >> grs) as u64;
            let half = 1u128 << (grs - 1);
            let up = tail > half || (tail == half && kept & 1 == 1);
            (kept + up as u64) >> fmt.sig_bits() != 0
        }
    }
}

/// IEEE division with gradual underflow and NaN propagation.
pub fn ieee_div(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    let ua = IeeeUnpacked::from_bits(fmt, a);
    let ub = IeeeUnpacked::from_bits(fmt, b);
    let sign = ua.sign ^ ub.sign;
    use IeeeClass::*;
    match (ua.class, ub.class) {
        (Nan, _) | (_, Nan) => return propagate_nan(fmt, &[a, b]),
        (Zero, Zero) | (Inf, Inf) => return (quiet_nan(fmt), Flags::invalid()),
        (Inf, _) => return (fmt.pack(sign, fmt.inf_biased_exp(), 0), Flags::NONE),
        (_, Inf) | (Zero, _) => return (fmt.pack(sign, 0, 0), Flags::NONE),
        (_, Zero) => {
            return (
                fmt.pack(sign, fmt.inf_biased_exp(), 0),
                Flags::div_by_zero(),
            )
        }
        _ => {}
    }
    // The pre-normalized significands satisfy the recurrence's hidden-bit
    // contract even for denormal operands; the unbounded exponent runs
    // through unchanged and the pack step restores the IEEE range.
    let (q, exp) = quotient_recurrence(fmt, ua.sig, ub.sig, ua.exp - ub.exp);
    ieee_round_pack(fmt, sign, exp, q, DIV_GRS_BITS, mode)
}

/// IEEE square root with gradual underflow and NaN propagation.
pub fn ieee_sqrt(fmt: FpFormat, a: u64, mode: RoundMode) -> (u64, Flags) {
    let ua = IeeeUnpacked::from_bits(fmt, a);
    use IeeeClass::*;
    match ua.class {
        Nan => return propagate_nan(fmt, &[a]),
        Zero => return (a, Flags::NONE), // √±0 = ±0
        Inf if !ua.sign => return (a, Flags::NONE),
        _ if ua.sign => return (quiet_nan(fmt), Flags::invalid()),
        _ => {}
    }
    // √ of any in-range positive value lands strictly inside the normal
    // range (the halved exponent of even the deepest denormal clears
    // min_exp), so the pack step never denormalizes here.
    let (root, exp) = root_recurrence(fmt, ua.sig, ua.exp);
    ieee_round_pack(fmt, false, exp, root, SQRT_GRS_BITS, mode)
}

/// IEEE fused multiply-add `a·b + c` with one rounding, gradual
/// underflow and NaN propagation.
///
/// NaN propagation takes precedence over the 0×∞ invalid check: `fma(0,
/// ∞, qNaN)` returns the quiet NaN *without* raising invalid, matching
/// the x86 FMA extension (IEEE 754-2019 makes the flag optional here).
pub fn ieee_fma(fmt: FpFormat, a: u64, b: u64, c: u64, mode: RoundMode) -> (u64, Flags) {
    let ua = IeeeUnpacked::from_bits(fmt, a);
    let ub = IeeeUnpacked::from_bits(fmt, b);
    let uc = IeeeUnpacked::from_bits(fmt, c);
    let psign = ua.sign ^ ub.sign;
    use IeeeClass::*;

    if ua.class == Nan || ub.class == Nan || uc.class == Nan {
        return propagate_nan(fmt, &[a, b, c]);
    }
    match (ua.class, ub.class) {
        (Zero, Inf) | (Inf, Zero) => return (quiet_nan(fmt), Flags::invalid()),
        (Inf, _) | (_, Inf) => {
            return match uc.class {
                Inf if uc.sign != psign => (quiet_nan(fmt), Flags::invalid()),
                _ => (fmt.pack(psign, fmt.inf_biased_exp(), 0), Flags::NONE),
            };
        }
        _ => {}
    }
    if uc.class == Inf {
        return (fmt.pack(uc.sign, fmt.inf_biased_exp(), 0), Flags::NONE);
    }
    if ua.is_zero() || ub.is_zero() {
        // Exact product zero: the result is c, with +0 on signed-zero
        // cancellation (both supported modes round such sums to +0).
        return if uc.is_zero() {
            let sign = psign == uc.sign && psign;
            (fmt.pack(sign, 0, 0), Flags::NONE)
        } else {
            (c, Flags::NONE)
        };
    }
    if uc.is_zero() {
        // Adding ±0 to the exact non-zero product changes nothing: this
        // is a plain multiplication, already rounded exactly once.
        return ieee_mul(fmt, a, b, mode);
    }

    // Same three-branch anchoring as the flush-to-zero fma, but on the
    // pre-normalized IeeeUnpacked forms with unbounded exponents.
    let f = fmt.frac_bits();
    let product = ua.sig as u128 * ub.sig as u128;
    let pexp = ua.exp + ub.exp;
    let shift = (uc.exp - pexp) + f as i32;
    let c_wide = (uc.sig as u128) << FMA_GRS;
    let prod_wide = product << FMA_GRS;

    let (mag, sign, e_lsb, is_zero) = if shift > (f + 2) as i32 {
        let (p_aligned, lost) = shift_right_sticky_u128(prod_wide, shift as u32);
        let (m, sg, z) = combine(c_wide, uc.sign, p_aligned | lost as u128, psign);
        (m, sg, uc.exp - (f + FMA_GRS) as i32, z)
    } else if shift >= 0 {
        let c_aligned = c_wide << shift;
        let (m, sg, z) = combine(prod_wide, psign, c_aligned, uc.sign);
        (m, sg, pexp - (2 * f + FMA_GRS) as i32, z)
    } else {
        let (c_aligned, lost) = shift_right_sticky_u128(c_wide, (-shift) as u32);
        let (m, sg, z) = combine(prod_wide, psign, c_aligned | lost as u128, uc.sign);
        (m, sg, pexp - (2 * f + FMA_GRS) as i32, z)
    };
    if is_zero {
        return (fmt.pack(false, 0, 0), Flags::NONE);
    }

    let msb = 127 - mag.leading_zeros();
    let exp_val = e_lsb + msb as i32;
    let (mag, grs) = if msb > f {
        (mag, msb - f)
    } else {
        // Deep cancellation (necessarily exact): lift the hidden bit.
        (mag << (f + 1 - msb), 1)
    };
    ieee_round_pack(fmt, sign, exp_val, mag, grs, mode)
}

/// IEEE format conversion `src → dst` with gradual underflow and NaN
/// payload mapping.
///
/// NaN payloads stay left-aligned in the fraction field (low bits are
/// zero-filled when widening and truncated when narrowing, as x86's
/// `cvtss2sd`/`cvtsd2ss` do), the quiet bit is set, and a signaling NaN
/// raises `invalid`.
pub fn ieee_convert(src: FpFormat, bits: u64, dst: FpFormat, mode: RoundMode) -> (u64, Flags) {
    let u = IeeeUnpacked::from_bits(src, bits);
    let sf = src.frac_bits();
    let df = dst.frac_bits();
    use IeeeClass::*;
    match u.class {
        Nan => {
            let frac = bits & src.frac_mask();
            let mapped = if df >= sf {
                frac << (df - sf)
            } else {
                frac >> (sf - df)
            };
            let mut flags = Flags::NONE;
            flags.invalid = is_signaling(src, bits);
            (
                dst.pack(u.sign, dst.inf_biased_exp(), mapped | (1u64 << (df - 1))),
                flags,
            )
        }
        Inf => (dst.pack(u.sign, dst.inf_biased_exp(), 0), Flags::NONE),
        Zero => (dst.pack(u.sign, 0, 0), Flags::NONE),
        Normal | Denormal => {
            // The pre-normalized significand (leading one at sf) moves to
            // the destination's hidden position with at least three guard
            // bits so ieee_round_pack can round and re-denormalize.
            let (mag, grs) = if df >= sf {
                ((u.sig as u128) << (df - sf + 3), 3)
            } else {
                ((u.sig as u128) << 3, sf - df + 3)
            };
            ieee_round_pack(dst, u.sign, u.exp, mag, grs, mode)
        }
    }
}

/// IEEE comparison: `None` for unordered (any NaN operand), with
/// `invalid` raised iff a NaN operand is signaling (the quiet-predicate
/// convention of `ucomiss`). ±0 compare equal; denormals order by
/// magnitude (unlike the flush-to-zero [`crate::compare`], which flushes
/// them).
pub fn ieee_compare(fmt: FpFormat, a: u64, b: u64) -> (Option<Ordering>, Flags) {
    let mut flags = Flags::NONE;
    flags.invalid = is_signaling(fmt, a) || is_signaling(fmt, b);
    if is_nan(fmt, a) || is_nan(fmt, b) {
        return (None, flags);
    }
    // Sign-magnitude encodings order directly: compare magnitudes as
    // integers (exponent field above fraction), reversed under a shared
    // negative sign.
    let mag_mask = fmt.enc_mask() >> 1;
    let (ma, mb) = (a & mag_mask, b & mag_mask);
    let (sa, sb) = (a & !mag_mask != 0, b & !mag_mask != 0);
    let ord = if ma == 0 && mb == 0 {
        Ordering::Equal
    } else if sa != sb {
        if sa {
            Ordering::Less
        } else {
            Ordering::Greater
        }
    } else if sa {
        mb.cmp(&ma)
    } else {
        ma.cmp(&mb)
    };
    (Some(ord), flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    const F32: FpFormat = FpFormat::SINGLE;

    fn add32(a: f32, b: f32) -> (f32, Flags) {
        let (bits, f) = ieee_add(
            F32,
            a.to_bits() as u64,
            b.to_bits() as u64,
            RoundMode::NearestEven,
        );
        (f32::from_bits(bits as u32), f)
    }

    fn mul32(a: f32, b: f32) -> (f32, Flags) {
        let (bits, f) = ieee_mul(
            F32,
            a.to_bits() as u64,
            b.to_bits() as u64,
            RoundMode::NearestEven,
        );
        (f32::from_bits(bits as u32), f)
    }

    #[test]
    fn unpack_denormal_is_normalized() {
        let tiny = f32::from_bits(1); // smallest denormal = 2^-149
        let u = IeeeUnpacked::from_bits(F32, tiny.to_bits() as u64);
        assert_eq!(u.class, IeeeClass::Denormal);
        assert_eq!(u.sig, 1 << 23);
        assert_eq!(u.exp, -149);
    }

    #[test]
    fn unpack_nan_and_inf() {
        assert_eq!(
            IeeeUnpacked::from_bits(F32, 0x7fc0_0000).class,
            IeeeClass::Nan
        );
        assert_eq!(
            IeeeUnpacked::from_bits(F32, 0x7f80_0001).class,
            IeeeClass::Nan
        );
        assert_eq!(
            IeeeUnpacked::from_bits(F32, 0x7f80_0000).class,
            IeeeClass::Inf
        );
        assert!(is_nan(F32, quiet_nan(F32)));
    }

    #[test]
    fn denormal_addition_matches_native() {
        let d1 = f32::from_bits(0x0000_0123);
        let d2 = f32::from_bits(0x0040_5678);
        let (got, _) = add32(d1, d2);
        assert_eq!(got.to_bits(), (d1 + d2).to_bits());
    }

    #[test]
    fn gradual_underflow_on_subtract() {
        // Two nearby small normals whose difference is denormal — the
        // flush-to-zero cores return 0 here; full IEEE keeps precision.
        let a = f32::from_bits(0x0080_0010);
        let b = f32::from_bits(0x0080_0001);
        let (got, _) = add32(a, -b);
        assert_eq!(got.to_bits(), (a - b).to_bits());
        assert!(got != 0.0, "gradual underflow must preserve the difference");
        // ... and the flush-to-zero core indeed loses it:
        let (ftz, _) = crate::add_bits(
            F32,
            a.to_bits() as u64,
            (-b).to_bits() as u64,
            RoundMode::NearestEven,
        );
        assert_eq!(ftz, 0);
    }

    #[test]
    fn mul_into_denormal_range() {
        let a = f32::MIN_POSITIVE; // 2^-126
        let (got, f) = mul32(a, 0.5);
        assert_eq!(got.to_bits(), (a * 0.5).to_bits());
        assert!(got > 0.0);
        assert!(!f.underflow, "exact denormal result is not an underflow");
        // 2^-126 × 0.6f32 happens to be *exactly* representable as a
        // denormal (0.6f32 = 10066330·2^-24 and 10066330 is even), so use
        // a third that is genuinely inexact.
        let third = 1.0f32 / 3.0;
        let (got, f) = mul32(a, third);
        assert_eq!(got.to_bits(), (a * third).to_bits());
        assert!(f.underflow && f.inexact, "{f:?}");
    }

    #[test]
    fn nan_propagates() {
        let (r, f) = add32(f32::NAN, 1.0);
        assert!(r.is_nan());
        assert!(!f.invalid, "quiet NaN propagation raises nothing");
        let (r, _) = mul32(2.0, f32::NAN);
        assert!(r.is_nan());
    }

    #[test]
    fn invalid_ops_produce_nan() {
        let (r, f) = add32(f32::INFINITY, f32::NEG_INFINITY);
        assert!(r.is_nan());
        assert!(f.invalid);
        let (r, f) = mul32(0.0, f32::INFINITY);
        assert!(r.is_nan());
        assert!(f.invalid);
    }

    #[test]
    fn denormal_rounds_up_to_min_normal() {
        // A result just below 2^-126 can round up into the normal range
        // (then it is not tiny and not an underflow).
        let a = f32::from_bits(0x007f_ffff); // largest denormal
        let b = f32::from_bits(0x0000_0001); // smallest denormal
        let (got, f) = add32(a, b);
        assert_eq!(got, f32::MIN_POSITIVE);
        assert!(!f.underflow && !f.inexact);
    }

    #[test]
    fn zero_plus_denormal_is_identity() {
        let d = f32::from_bits(0x0012_3456);
        let (got, f) = add32(0.0, d);
        assert_eq!(got.to_bits(), d.to_bits());
        assert!(!f.any());
    }

    #[test]
    fn normals_still_match_ftz_mode() {
        // On normal-in/normal-out cases the two modes agree bit for bit.
        for &(x, y) in &[(1.5f32, 2.25f32), (-3.0, 7.5), (1e20, -2e19)] {
            let (ieee, _) = ieee_add(
                F32,
                x.to_bits() as u64,
                y.to_bits() as u64,
                RoundMode::NearestEven,
            );
            let (ftz, _) = crate::add_bits(
                F32,
                x.to_bits() as u64,
                y.to_bits() as u64,
                RoundMode::NearestEven,
            );
            assert_eq!(ieee, ftz, "{x} + {y}");
        }
    }

    #[test]
    fn overflow_paths() {
        let (r, f) = mul32(f32::MAX, 2.0);
        assert_eq!(r, f32::INFINITY);
        assert!(f.overflow);
        let (bits, f) = ieee_mul(
            F32,
            f32::MAX.to_bits() as u64,
            2.0f32.to_bits() as u64,
            RoundMode::Truncate,
        );
        assert_eq!(f32::from_bits(bits as u32), f32::MAX);
        assert!(f.overflow);
    }

    #[test]
    fn sub_via_sign_flip() {
        let (bits, _) = ieee_sub(
            F32,
            5.0f32.to_bits() as u64,
            3.0f32.to_bits() as u64,
            RoundMode::NearestEven,
        );
        assert_eq!(f32::from_bits(bits as u32), 2.0);
    }

    // --- Named regressions for divergences found by fpfpga-conform. ---

    #[test]
    fn regress_snan_operand_raises_invalid_and_quiets_payload() {
        // Found by conform: sNaN operands returned the canonical qNaN
        // with no flags. §6.2: quiet the *operand's* payload, raise
        // invalid.
        let snan = 0x7f80_0012u64; // payload 0x12, quiet bit clear
        let quieted = snan | 0x0040_0000;
        let one = 1.0f32.to_bits() as u64;
        for (r, f) in [
            ieee_add(F32, snan, one, RoundMode::NearestEven),
            ieee_mul(F32, one, snan, RoundMode::NearestEven),
            ieee_div(F32, snan, one, RoundMode::NearestEven),
            ieee_sqrt(F32, snan, RoundMode::NearestEven),
            ieee_fma(F32, snan, one, one, RoundMode::NearestEven),
        ] {
            assert_eq!(r, quieted, "payload must survive quieting");
            assert!(f.invalid, "sNaN must raise invalid");
        }
    }

    #[test]
    fn regress_qnan_payload_and_sign_preserved() {
        // Found by conform: qNaN inputs were canonicalized, losing sign
        // and payload. §6.2: propagate the first NaN operand unchanged.
        let qnan = 0xffc0_0123u64; // negative, payload 0x123
        let (r, f) = ieee_mul(F32, qnan, 2.0f32.to_bits() as u64, RoundMode::NearestEven);
        assert_eq!(r, qnan);
        assert!(!f.any(), "quiet propagation raises nothing");
        // First NaN in argument order wins.
        let qnan2 = 0x7fc0_0456u64;
        let (r, _) = ieee_add(F32, qnan, qnan2, RoundMode::NearestEven);
        assert_eq!(r, qnan);
        let (r, _) = ieee_add(F32, qnan2, qnan, RoundMode::NearestEven);
        assert_eq!(r, qnan2);
    }

    #[test]
    fn regress_underflow_when_denormal_rounding_promotes_but_value_was_tiny() {
        // Found by conform: (1 − 2^-24)·2^-126 rounds up to MIN_POSITIVE
        // at denormal precision, so the old "promoted ⇒ not tiny" rule
        // suppressed underflow — but at unbounded 24-bit precision the
        // value is exactly 1.{23 ones}·2^-127 < min normal, so x86
        // raises underflow + inexact.
        let a = 0x3f7f_ffffu64; // 1 − 2^-24
        let b = 0x0080_0000u64; // 2^-126
        let (r, f) = ieee_mul(F32, a, b, RoundMode::NearestEven);
        assert_eq!(r, 0x0080_0000, "rounds up to the smallest normal");
        assert!(f.underflow && f.inexact, "{f:?}");
        // Host agreement (tininess after rounding).
        let native = f32::from_bits(a as u32) * f32::from_bits(b as u32);
        assert_eq!(native.to_bits() as u64, r);
    }

    #[test]
    fn regress_no_underflow_when_unbounded_rounding_escapes_tininess() {
        // Counterpart: (1 + 2^-23)(1 − 2^-23)·2^-126 = (1 − 2^-46)·2^-126
        // carries up to 2^-126 even at unbounded precision → never tiny →
        // inexact only.
        let a = 0x0080_0001u64; // (1 + 2^-23)·2^-126
        let b = (1.0f32 - f32::EPSILON).to_bits() as u64; // 1 − 2^-23
        let (r, f) = ieee_mul(F32, a, b, RoundMode::NearestEven);
        assert_eq!(r, 0x0080_0000, "rounds up to the smallest normal");
        assert!(!f.underflow && f.inexact, "{f:?}");
        let native = f32::from_bits(a as u32) * f32::from_bits(b as u32);
        assert_eq!(native.to_bits() as u64, r);
    }

    #[test]
    fn regress_truncate_overflow_saturates_at_max_finite() {
        // Found by audit: overflow packing is now centralized in
        // round::round_overflow; truncation must deliver ±max-finite
        // with overflow + inexact in every ieee op.
        let big = f32::MAX.to_bits() as u64;
        for (r, f) in [
            ieee_add(F32, big, big, RoundMode::Truncate),
            ieee_mul(F32, big, big, RoundMode::Truncate),
            ieee_div(F32, big, F32.min_positive(), RoundMode::Truncate),
            ieee_fma(F32, big, big, big, RoundMode::Truncate),
        ] {
            assert_eq!(r, F32.max_finite());
            assert!(f.overflow && f.inexact, "{f:?}");
        }
    }

    #[test]
    fn ieee_div_matches_native_with_denormals() {
        let cases: &[(u32, u32)] = &[
            (0x0000_0001, 0x3f80_0000), // denormal / 1
            (0x0080_0000, 0x4000_0000), // min normal / 2 → denormal
            (0x0000_0001, 0x0000_0001), // denormal / denormal
            (0x007f_ffff, 0x0000_0003),
            (0x3f80_0000, 0x7f7f_ffff), // 1 / MAX → denormal
            (0x0123_4567, 0x7654_3210),
        ];
        for &(a, b) in cases {
            let (r, _) = ieee_div(F32, a as u64, b as u64, RoundMode::NearestEven);
            let native = f32::from_bits(a) / f32::from_bits(b);
            assert_eq!(r, native.to_bits() as u64, "{a:#x}/{b:#x}");
        }
    }

    #[test]
    fn ieee_sqrt_matches_native_with_denormals() {
        for a in [
            0x0000_0001u32,
            0x0000_0002,
            0x007f_ffff,
            0x0080_0000,
            0x3f80_0000,
            0x4049_0fdb,
            0x7f7f_ffff,
        ] {
            let (r, _) = ieee_sqrt(F32, a as u64, RoundMode::NearestEven);
            assert_eq!(r, f32::from_bits(a).sqrt().to_bits() as u64, "sqrt({a:#x})");
        }
        // √(−0) = −0; √(negative) = qNaN + invalid.
        let (r, f) = ieee_sqrt(F32, 0x8000_0000, RoundMode::NearestEven);
        assert_eq!(r, 0x8000_0000);
        assert!(!f.any());
        let (r, f) = ieee_sqrt(F32, (-4.0f32).to_bits() as u64, RoundMode::NearestEven);
        assert!(is_nan(F32, r));
        assert!(f.invalid);
    }

    #[test]
    fn ieee_fma_matches_native_including_denormals() {
        let vals: &[u32] = &[
            0x3f80_0000, // 1.0
            0xbfc0_0000, // -1.5
            0x0000_0001, // smallest denormal
            0x0080_0000, // min normal
            0x7f7f_ffff, // max
            0x3edb_6db7,
            0x0040_0000, // mid denormal
        ];
        for &a in vals {
            for &b in vals {
                for &c in vals {
                    let native = f32::from_bits(a).mul_add(f32::from_bits(b), f32::from_bits(c));
                    let (r, _) =
                        ieee_fma(F32, a as u64, b as u64, c as u64, RoundMode::NearestEven);
                    assert_eq!(r, native.to_bits() as u64, "fma({a:#x},{b:#x},{c:#x})");
                }
            }
        }
    }

    #[test]
    fn ieee_fma_zero_times_inf_with_qnan_addend_is_quiet() {
        // x86 FMA does not raise invalid when the addend is a quiet NaN;
        // propagation wins over the 0×∞ check.
        let qnan = 0x7fc0_0001u64;
        let (r, f) = ieee_fma(F32, 0, F32.pos_inf(), qnan, RoundMode::NearestEven);
        assert_eq!(r, qnan);
        assert!(!f.invalid);
        // Without a NaN addend it is invalid.
        let (r, f) = ieee_fma(F32, 0, F32.pos_inf(), 0, RoundMode::NearestEven);
        assert!(is_nan(F32, r));
        assert!(f.invalid);
    }

    #[test]
    fn ieee_convert_narrowing_matches_native_with_denormals() {
        let f64s: &[f64] = &[
            1.0,
            0.1,
            1e-40, // denormal in f32
            1e-45, // below f32 denormal ulp
            1e-46, // rounds to zero
            -3.5e38,
            1e300,                                 // overflows f32
            f64::from_bits(0x36A0_0000_0000_0001), // just above a f32 denormal midpoint
        ];
        for &x in f64s {
            let (r, _) = ieee_convert(FpFormat::DOUBLE, x.to_bits(), F32, RoundMode::NearestEven);
            assert_eq!(r, (x as f32).to_bits() as u64, "{x:e}");
        }
    }

    #[test]
    fn ieee_convert_nan_payload_maps_left_aligned() {
        // f32 qNaN payload widens with zero-fill low bits (cvtss2sd).
        let (r, f) = ieee_convert(F32, 0x7fc0_0001, FpFormat::DOUBLE, RoundMode::NearestEven);
        assert_eq!(r, 0x7ff8_0000_2000_0000);
        assert!(!f.invalid);
        // Widening an sNaN quiets it and raises invalid.
        let (r, f) = ieee_convert(F32, 0x7f80_0001, FpFormat::DOUBLE, RoundMode::NearestEven);
        assert_eq!(r, 0x7ff8_0000_2000_0000);
        assert!(f.invalid);
        // Narrowing truncates the payload (cvtsd2ss keeps the top bits).
        let (r, _) = ieee_convert(
            FpFormat::DOUBLE,
            0x7ff8_0000_2000_0000,
            F32,
            RoundMode::NearestEven,
        );
        assert_eq!(r, 0x7fc0_0001);
    }

    #[test]
    fn ieee_compare_orders_denormals_and_rejects_nan() {
        use core::cmp::Ordering::*;
        let (ord, f) = ieee_compare(F32, 0x0000_0001, 0x0000_0002);
        assert_eq!(ord, Some(Less));
        assert!(!f.any());
        // The flush-to-zero compare cannot see this ordering.
        let (ord, _) = ieee_compare(F32, 0x8000_0000, 0x0000_0000); // −0 vs +0
        assert_eq!(ord, Some(Equal));
        let (ord, f) = ieee_compare(F32, 0x7fc0_0000, 0x3f80_0000);
        assert_eq!(ord, None);
        assert!(!f.invalid, "quiet predicate: qNaN raises nothing");
        let (ord, f) = ieee_compare(F32, 0x7f80_0001, 0x3f80_0000);
        assert_eq!(ord, None);
        assert!(f.invalid, "sNaN raises invalid even in quiet compare");
        // Mirror the native partial order on a mixed sample.
        let vals: &[u32] = &[
            0x0000_0000,
            0x8000_0000,
            0x0000_0001,
            0x8000_0001,
            0x0040_0000,
            0x3f80_0000,
            0xbf80_0000,
            0x7f80_0000,
            0xff80_0000,
            0x7f7f_ffff,
        ];
        for &a in vals {
            for &b in vals {
                let (ord, _) = ieee_compare(F32, a as u64, b as u64);
                assert_eq!(
                    ord,
                    f32::from_bits(a).partial_cmp(&f32::from_bits(b)),
                    "{a:#x} vs {b:#x}"
                );
            }
        }
    }
}
