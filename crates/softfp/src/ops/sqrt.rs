//! Floating-point square root, structured as a digit-recurrence datapath:
//!
//! 1. **Denormalize** + exception detection (√negative is invalid — the
//!    cores have no NaN, so it yields +0 with the flag; √±0 = ±0,
//!    √+∞ = +∞);
//! 2. **Root recurrence** — the significand root via exact integer
//!    square root (the fixed point of a radix-2 recurrence), with the
//!    remainder compressed into a sticky bit; the exponent is halved
//!    after an odd/even adjustment absorbed into the radicand;
//! 3. **Round** — the root of a `[1,4)` significand lies in `[1,2)`, so
//!    no normalization shift is ever needed before the shared rounding
//!    module.

use crate::exceptions::Flags;
use crate::format::FpFormat;
use crate::round::{pack_with_range_check, round_sig, RoundMode};
use crate::unpacked::{Class, Unpacked};

/// Guard bits kept below the root's hidden position before rounding.
pub const SQRT_GRS_BITS: u32 = 2;

/// `sqrt(a)` on a raw encoding.
pub fn sqrt(fmt: FpFormat, a: u64, mode: RoundMode) -> (u64, Flags) {
    sqrt_unpacked(fmt, Unpacked::from_bits(fmt, a), mode)
}

/// Square root on an already-unpacked operand.
pub fn sqrt_unpacked(fmt: FpFormat, a: Unpacked, mode: RoundMode) -> (u64, Flags) {
    match a.class {
        Class::Zero => return (a.to_bits(fmt), Flags::NONE), // √±0 = ±0
        Class::Inf => {
            return if a.sign {
                (Unpacked::zero(false).to_bits(fmt), Flags::invalid())
            } else {
                (Unpacked::inf(false).to_bits(fmt), Flags::NONE)
            };
        }
        Class::Normal => {
            if a.sign {
                // √(negative): no NaN encoding; +0 with invalid raised.
                return (Unpacked::zero(false).to_bits(fmt), Flags::invalid());
            }
        }
    }

    let (root, exp) = root_recurrence(fmt, a.sig, a.exp);
    let rounded = round_sig(fmt, root, SQRT_GRS_BITS, mode);
    // √ of an in-range number cannot overflow or underflow; the rounding
    // carry is still possible (1.111…1 rounding up to 2.0).
    let exp = exp + rounded.exp_carry as i32;
    pack_with_range_check(fmt, false, exp, rounded.sig, mode, rounded.inexact)
}

/// The significand root with its exponent.
///
/// Folds an odd exponent into the radicand (making it `[1,4)` with an
/// even exponent), computes the exact integer square root widened by
/// `SQRT_GRS_BITS` guard bits, and jams the remainder's sticky into the
/// low bit. The returned root has its leading one at
/// `frac_bits + SQRT_GRS_BITS`.
pub fn root_recurrence(fmt: FpFormat, sig: u64, exp: i32) -> (u128, i32) {
    debug_assert!(sig >> fmt.frac_bits() == 1, "radicand not normalized");
    let f = fmt.frac_bits();
    // value = sig · 2^(exp - f). Make the exponent even by folding one
    // factor of two into the significand.
    let (m, e_half) = if exp.rem_euclid(2) == 0 {
        (sig as u128, exp / 2)
    } else {
        ((sig as u128) << 1, (exp - 1) / 2)
    };
    // m ∈ [2^f, 2^(f+2)); widen so the integer root has f+1+GRS bits:
    // X = m << (f + 2·GRS) gives √X ∈ [2^(f+GRS), 2^(f+GRS+1)).
    let x = m << (f + 2 * SQRT_GRS_BITS);
    let r = isqrt_u128(x);
    debug_assert!(r >> (f + SQRT_GRS_BITS) == 1, "root not normalized: {r:#x}");
    let exact = r * r == x;
    (r | (!exact) as u128, e_half)
}

/// Exact integer square root of a `u128` (floor).
pub fn isqrt_u128(x: u128) -> u128 {
    if x < 2 {
        return x;
    }
    // Newton's method from an f64 seed (clamped so r² cannot overflow),
    // then corrective steps to the exact floor.
    let max_root = (1u128 << 64) - 1;
    let mut r = ((x as f64).sqrt() as u128).clamp(1, max_root);
    for _ in 0..4 {
        r = ((r + x / r) >> 1).clamp(1, max_root);
    }
    let sq_gt = |r: u128| r.checked_mul(r).is_none_or(|rr| rr > x);
    while sq_gt(r) {
        r -= 1;
    }
    while !sq_gt(r + 1) {
        r += 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    const F32: FpFormat = FpFormat::SINGLE;
    const F64: FpFormat = FpFormat::DOUBLE;

    fn sqrt_f32(a: f32) -> (f32, Flags) {
        let (bits, flags) = sqrt(F32, a.to_bits() as u64, RoundMode::NearestEven);
        (f32::from_bits(bits as u32), flags)
    }

    #[test]
    fn perfect_squares_are_exact() {
        for &x in &[1.0f32, 4.0, 9.0, 16.0, 0.25, 2.25, 144.0, 1e10] {
            let (r, f) = sqrt_f32(x);
            assert_eq!(r, x.sqrt(), "{x}");
            assert!(!f.any(), "{x} should be exact");
        }
    }

    #[test]
    fn isqrt_basics() {
        assert_eq!(isqrt_u128(0), 0);
        assert_eq!(isqrt_u128(1), 1);
        assert_eq!(isqrt_u128(2), 1);
        assert_eq!(isqrt_u128(3), 1);
        assert_eq!(isqrt_u128(4), 2);
        assert_eq!(isqrt_u128(99), 9);
        assert_eq!(isqrt_u128(100), 10);
        assert_eq!(isqrt_u128(u128::MAX), (1u128 << 64) - 1);
        let big = (1u128 << 100) + 12345;
        let r = isqrt_u128(big);
        assert!(r * r <= big && (r + 1) * (r + 1) > big);
    }

    #[test]
    fn specials() {
        assert_eq!(sqrt_f32(0.0).0.to_bits(), 0);
        assert_eq!(sqrt_f32(-0.0).0.to_bits(), 0x8000_0000); // √−0 = −0
        assert_eq!(sqrt_f32(f32::INFINITY).0, f32::INFINITY);
        let (r, f) = sqrt_f32(-4.0);
        assert_eq!(r.to_bits(), 0);
        assert!(f.invalid);
        let (r, f) = sqrt_f32(f32::NEG_INFINITY);
        assert_eq!(r.to_bits(), 0);
        assert!(f.invalid);
    }

    #[test]
    fn matches_native_f32_on_samples() {
        let samples = [
            2.0f32,
            3.0,
            0.5,
            std::f32::consts::PI,
            1e10,
            1e-10,
            123456.78,
            0.000123,
            99999.9,
            1.0000001,
            0.9999999,
            7.0,
            1.5e-38,
        ];
        for &x in &samples {
            let (got, _) = sqrt_f32(x);
            assert_eq!(got.to_bits(), x.sqrt().to_bits(), "sqrt({x})");
        }
    }

    #[test]
    fn matches_native_f64_on_samples() {
        let samples = [2.0f64, 3.0, 0.7, 1e300, 1e-300, 6.25, 987654321.123];
        for &x in &samples {
            let (bits, _) = sqrt(F64, x.to_bits(), RoundMode::NearestEven);
            assert_eq!(f64::from_bits(bits), x.sqrt(), "sqrt({x})");
        }
    }

    #[test]
    fn odd_and_even_exponents() {
        // 2.0 (exp 1, odd) and 4.0 (exp 2, even) exercise both paths.
        assert_eq!(sqrt_f32(2.0).0, std::f32::consts::SQRT_2);
        assert_eq!(sqrt_f32(4.0).0, 2.0);
        assert_eq!(sqrt_f32(0.5).0, 0.5f32.sqrt()); // negative odd exponent
        assert_eq!(sqrt_f32(0.25).0, 0.5);
    }

    #[test]
    fn truncate_mode() {
        let (t, ft) = sqrt(F32, 2.0f32.to_bits() as u64, RoundMode::Truncate);
        let t = f32::from_bits(t as u32);
        assert!(t <= std::f32::consts::SQRT_2);
        assert!(ft.inexact);
        assert!((t - std::f32::consts::SQRT_2).abs() <= f32::EPSILON);
    }

    #[test]
    fn result_never_overflows() {
        let (r, f) = sqrt_f32(f32::MAX);
        assert_eq!(r, f32::MAX.sqrt());
        assert!(!f.overflow);
    }
}
