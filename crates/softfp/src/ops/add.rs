//! Floating-point addition/subtraction, structured as the paper's
//! three-stage adder datapath:
//!
//! 1. **Denormalize / pre-shift** — make hidden bits explicit, compare
//!    exponents, swap mantissas, align the smaller mantissa by the
//!    exponent difference (collecting a sticky bit);
//! 2. **Mantissa add/subtract** — fixed-point add or subtract, then
//!    pre-normalize a carry-out by one position;
//! 3. **Normalize / round** — priority-encode the leading one, shift it to
//!    the MSB, adjust the exponent, round and range-check.
//!
//! Keeping the software reference in this exact shape lets the
//! cycle-accurate datapath in `fpfpga-fpu` share the arithmetic per
//! subunit and be checked for bit-identical results.

use crate::exceptions::Flags;
use crate::format::FpFormat;
use crate::round::{pack_with_range_check, round_sig, shift_right_sticky, RoundMode};
use crate::unpacked::{Class, Unpacked};

/// Number of extra low-order bits (guard, round, sticky) carried through
/// the adder datapath. Three suffice for correctly rounded add/sub when
/// the alignment shifter compresses everything below the round bit into
/// the sticky bit.
pub const GRS_BITS: u32 = 3;

/// `a + b` on raw encodings.
pub fn add(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    add_unpacked(
        fmt,
        Unpacked::from_bits(fmt, a),
        Unpacked::from_bits(fmt, b),
        mode,
    )
}

/// `a - b` on raw encodings. The hardware implements subtraction by
/// inverting the sign of the second operand in the denormalization stage.
pub fn sub(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    let mut ub = Unpacked::from_bits(fmt, b);
    ub.sign = !ub.sign;
    add_unpacked(fmt, Unpacked::from_bits(fmt, a), ub, mode)
}

/// Addition on already-unpacked operands.
pub fn add_unpacked(fmt: FpFormat, a: Unpacked, b: Unpacked, mode: RoundMode) -> (u64, Flags) {
    // --- Special-operand handling (resolved in stage 1, carried forward).
    match (a.class, b.class) {
        (Class::Inf, Class::Inf) => {
            return if a.sign == b.sign {
                (Unpacked::inf(a.sign).to_bits(fmt), Flags::NONE)
            } else {
                // ∞ − ∞: no NaN encoding exists; the cores emit +∞ with
                // the invalid flag raised.
                (Unpacked::inf(false).to_bits(fmt), Flags::invalid())
            };
        }
        (Class::Inf, _) => return (Unpacked::inf(a.sign).to_bits(fmt), Flags::NONE),
        (_, Class::Inf) => return (Unpacked::inf(b.sign).to_bits(fmt), Flags::NONE),
        (Class::Zero, Class::Zero) => {
            // (+0)+(+0)=+0, (-0)+(-0)=-0, mixed signs give +0 under
            // round-to-nearest (and truncation; we do not implement
            // round-toward-negative).
            let sign = a.sign && b.sign;
            return (Unpacked::zero(sign).to_bits(fmt), Flags::NONE);
        }
        (Class::Zero, Class::Normal) => return (b.to_bits(fmt), Flags::NONE),
        (Class::Normal, Class::Zero) => return (a.to_bits(fmt), Flags::NONE),
        (Class::Normal, Class::Normal) => {}
    }

    // --- Stage 1: swap so that `hi` has the larger magnitude exponent,
    // then align `lo` by the exponent difference.
    let (hi, lo) = swap_operands(a, b);
    let diff = (hi.exp - lo.exp) as u32;
    let hi_sig = hi.sig << GRS_BITS;
    let (lo_aligned, sticky) = align_mantissa(lo.sig, diff);

    // --- Stage 2: effective add or subtract of the aligned magnitudes.
    //
    // The sticky bit is *jammed* into the aligned operand's LSB before the
    // fixed-point add/sub (the classical guard/round/sticky construction,
    // as in Hauser's SoftFloat). Jamming makes the result odd whenever any
    // tail was lost, so a round-to-nearest tie pattern can never appear
    // with a hidden nonzero tail below it, and strict half-comparisons are
    // unaffected because the representation error is under one LSB of the
    // GRS extension. A nonzero sticky implies an alignment shift of at
    // least GRS_BITS + 1 >= 4, which bounds the post-subtraction
    // normalization shift to one position, keeping the jam below the round
    // bit afterwards.
    let lo_full = lo_aligned | sticky as u64;
    let effective_sub = a.sign != b.sign;
    let (mag, sign, exp) = if !effective_sub {
        let sum = hi_sig as u128 + lo_full as u128; // at most sig_bits+GRS+1 bits
        (sum, hi.sign, hi.exp)
    } else {
        // `hi` has the larger or equal magnitude (swap_operands breaks
        // exponent ties by significand, and any nonzero alignment shift
        // leaves lo_full strictly below the hidden bit), so the
        // subtraction never goes negative.
        let d = hi_sig - lo_full;
        if d == 0 {
            // Exact cancellation: +0 under both supported modes.
            return (Unpacked::zero(false).to_bits(fmt), Flags::NONE);
        }
        (d as u128, hi.sign, hi.exp)
    };

    normalize_round_pack(fmt, sign, exp, mag, mode)
}

/// Stage-1 swapper: order operands so the first has the larger exponent,
/// breaking ties with the significand so the subtract path never goes
/// negative. This mirrors the hardware's exponent comparator + mantissa
/// swapper (the mantissa comparison only matters when exponents are
/// equal, which is when the hardware's mantissa comparator output is
/// selected).
pub fn swap_operands(a: Unpacked, b: Unpacked) -> (Unpacked, Unpacked) {
    if (a.exp, a.sig) >= (b.exp, b.sig) {
        (a, b)
    } else {
        (b, a)
    }
}

/// Stage-1 alignment shifter: shift the smaller significand right by the
/// exponent difference, pre-extended with the GRS bits, compressing the
/// shifted-out tail into a sticky flag.
pub fn align_mantissa(sig: u64, diff: u32) -> (u64, bool) {
    let extended = sig << GRS_BITS;
    shift_right_sticky(extended, diff)
}

/// Stage 2b: pre-normalize — a carry out of the hidden position shifts
/// right by one (sticky-preserving jam) and increments the exponent.
pub fn prenormalize(fmt: FpFormat, mag: u128, exp: i32) -> (u128, i32) {
    let hidden_pos = fmt.frac_bits() + GRS_BITS;
    if mag >> (hidden_pos + 1) != 0 {
        debug_assert!(mag >> (hidden_pos + 2) == 0, "at most one carry bit");
        let lsb = mag & 1;
        ((mag >> 1) | lsb, exp + 1)
    } else {
        (mag, exp)
    }
}

/// Stage 3a: the priority encoder — position of the leading one.
pub fn leading_one_pos(mag: u128) -> u32 {
    debug_assert!(mag != 0);
    127 - mag.leading_zeros()
}

/// Stage 3b: the normalization shifter — bring the leading one (at `msb`)
/// up to the hidden position. A large cancellation can leave the leading
/// one far down, possibly inside the GRS bits.
pub fn normalize_left(fmt: FpFormat, mag: u128, exp: i32, msb: u32) -> (u128, i32) {
    let hidden_pos = fmt.frac_bits() + GRS_BITS;
    if msb < hidden_pos {
        let shift = hidden_pos - msb;
        (mag << shift, exp - shift as i32)
    } else {
        (mag, exp)
    }
}

/// Stages 2b/3: pre-normalize (carry-out), priority-encode and normalize,
/// round, range-check, pack. `mag` is the non-zero magnitude with GRS_BITS
/// fraction bits below the significand's binary point and possibly a
/// carry-out bit above the hidden position.
fn normalize_round_pack(
    fmt: FpFormat,
    sign: bool,
    exp: i32,
    mag: u128,
    mode: RoundMode,
) -> (u64, Flags) {
    debug_assert!(mag != 0);
    let (mag, exp) = prenormalize(fmt, mag, exp);
    let msb = leading_one_pos(mag);
    let (mag, exp) = normalize_left(fmt, mag, exp, msb);
    let rounded = round_sig(fmt, mag, GRS_BITS, mode);
    let exp = exp + rounded.exp_carry as i32;
    pack_with_range_check(fmt, sign, exp, rounded.sig, mode, rounded.inexact)
}

#[cfg(test)]
mod tests {
    use super::*;

    const F32: FpFormat = FpFormat::SINGLE;
    const F64: FpFormat = FpFormat::DOUBLE;

    fn f32_bits(x: f32) -> u64 {
        x.to_bits() as u64
    }

    fn add_f32(a: f32, b: f32) -> (f32, Flags) {
        let (bits, flags) = add(F32, f32_bits(a), f32_bits(b), RoundMode::NearestEven);
        (f32::from_bits(bits as u32), flags)
    }

    #[test]
    fn simple_sums() {
        assert_eq!(add_f32(1.0, 2.0).0, 3.0);
        assert_eq!(add_f32(1.5, 2.25).0, 3.75);
        assert_eq!(add_f32(-1.0, 1.0).0, 0.0);
        assert_eq!(add_f32(0.1, 0.2).0, 0.1f32 + 0.2f32);
    }

    #[test]
    fn subtraction_via_sign_flip() {
        let (bits, _) = sub(F32, f32_bits(5.0), f32_bits(3.0), RoundMode::NearestEven);
        assert_eq!(f32::from_bits(bits as u32), 2.0);
        let (bits, _) = sub(F32, f32_bits(3.0), f32_bits(5.0), RoundMode::NearestEven);
        assert_eq!(f32::from_bits(bits as u32), -2.0);
    }

    #[test]
    fn catastrophic_cancellation() {
        let a = 1.000_000_2f32;
        let b = 1.0f32;
        assert_eq!(add_f32(a, -b).0, a - b);
    }

    #[test]
    fn cancellation_to_zero_is_positive() {
        let (r, f) = add_f32(7.25, -7.25);
        assert_eq!(r.to_bits(), 0); // +0, not -0
        assert!(!f.any());
    }

    #[test]
    fn signed_zero_rules() {
        let nz = f32::from_bits(0x8000_0000);
        assert_eq!(add_f32(nz, nz).0.to_bits(), 0x8000_0000);
        assert_eq!(add_f32(0.0, nz).0.to_bits(), 0);
        assert_eq!(add_f32(nz, 3.5).0, 3.5);
    }

    #[test]
    fn inf_arithmetic() {
        let inf = f32::INFINITY;
        assert_eq!(add_f32(inf, 1.0).0, inf);
        assert_eq!(add_f32(1.0, -inf).0, -inf);
        assert_eq!(add_f32(inf, inf).0, inf);
        let (r, f) = add_f32(inf, -inf);
        assert_eq!(r, inf); // deterministic substitute for NaN
        assert!(f.invalid);
    }

    #[test]
    fn overflow_saturates() {
        let max = f32::MAX;
        let (r, f) = add_f32(max, max);
        assert_eq!(r, f32::INFINITY);
        assert!(f.overflow);
        // truncation saturates to max-finite instead
        let (bits, f) = add(F32, f32_bits(max), f32_bits(max), RoundMode::Truncate);
        assert_eq!(f32::from_bits(bits as u32), f32::MAX);
        assert!(f.overflow);
    }

    #[test]
    fn small_difference_rounds_to_nearest_even() {
        // A case exercising the sticky path: operands 2^25 apart.
        let a = 1.0f32 * (1u64 << 25) as f32;
        let b = 1.5f32;
        assert_eq!(add_f32(a, b).0, a + b);
    }

    #[test]
    fn matches_native_f32_on_samples() {
        let samples = [
            0.0f32,
            1.0,
            -1.0,
            0.5,
            std::f32::consts::PI,
            -std::f32::consts::E,
            1e10,
            -1e10,
            1e-10,
            123456.78,
            0.000123,
            -99999.9,
            1.0000001,
            0.9999999,
            8388608.0,
            16777216.0,
        ];
        for &x in &samples {
            for &y in &samples {
                let (got, _) = add_f32(x, y);
                let want = x + y;
                assert_eq!(got.to_bits(), want.to_bits(), "{x} + {y}");
            }
        }
    }

    #[test]
    fn matches_native_f64_on_samples() {
        let samples = [
            0.0f64,
            1.0,
            -1.0,
            0.5,
            std::f64::consts::PI,
            -std::f64::consts::E,
            1e100,
            -1e100,
            1e-100,
            123456.789012345,
            4503599627370496.0,
        ];
        for &x in &samples {
            for &y in &samples {
                let (bits, _) = add(F64, x.to_bits(), y.to_bits(), RoundMode::NearestEven);
                let want = x + y;
                assert_eq!(f64::from_bits(bits), want, "{x} + {y}");
            }
        }
    }

    #[test]
    fn truncate_mode_rounds_toward_zero() {
        // 1 + 2^-24 is not representable; truncation keeps 1.0.
        let a = 1.0f32;
        let b = f32::from_bits(0x3380_0000); // 2^-24
        let (bits, f) = add(F32, f32_bits(a), f32_bits(b), RoundMode::Truncate);
        assert_eq!(f32::from_bits(bits as u32), 1.0);
        assert!(f.inexact);
        // Same for a negative sum: -1 - 2^-24 truncates to -1 (toward zero).
        let (bits, _) = add(F32, f32_bits(-a), f32_bits(-b), RoundMode::Truncate);
        assert_eq!(f32::from_bits(bits as u32), -1.0);
    }

    #[test]
    fn swap_orders_by_exp_then_sig() {
        let big = Unpacked {
            sign: false,
            exp: 3,
            sig: 1 << 23,
            class: Class::Normal,
        };
        let small = Unpacked {
            sign: true,
            exp: 1,
            sig: (1 << 23) + 5,
            class: Class::Normal,
        };
        let (h, l) = swap_operands(small, big);
        assert_eq!(h.exp, 3);
        assert_eq!(l.exp, 1);
        let tie_a = Unpacked {
            sign: false,
            exp: 2,
            sig: (1 << 23) + 7,
            class: Class::Normal,
        };
        let tie_b = Unpacked {
            sign: true,
            exp: 2,
            sig: (1 << 23) + 9,
            class: Class::Normal,
        };
        let (h, _) = swap_operands(tie_a, tie_b);
        assert_eq!(h.sig, (1 << 23) + 9);
    }

    #[test]
    fn align_collects_sticky() {
        let (v, s) = align_mantissa(0b1001, 4);
        assert_eq!(v, 0b1001 << 3 >> 4);
        assert!(s);
    }
}
