//! Arithmetic operations, written as the hardware dataflow.

pub mod add;
pub mod div;
pub mod fma;
pub mod mul;
pub mod sqrt;
