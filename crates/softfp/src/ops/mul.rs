//! Floating-point multiplication, structured as the paper's three-stage
//! multiplier datapath:
//!
//! 1. **Denormalize** — make hidden bits explicit (same subunit as the
//!    adder's first stage);
//! 2. **Mantissa multiply + exponent add** — fixed-point multiply of the
//!    significands in parallel with an exponent adder and bias subtractor;
//!    the sign is an XOR;
//! 3. **Normalize / round** — the product of two `[1,2)` significands lies
//!    in `[1,4)`, so the normalizer shifts by at most two positions (the
//!    paper: "we shift the mantissa of the result at most by two bits" —
//!    one for the product's integer bit, one more for a rounding carry),
//!    then round and range-check.

use crate::exceptions::Flags;
use crate::format::FpFormat;
use crate::round::{pack_with_range_check, round_sig, RoundMode};
use crate::unpacked::{Class, Unpacked};

/// `a * b` on raw encodings.
pub fn mul(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    mul_unpacked(
        fmt,
        Unpacked::from_bits(fmt, a),
        Unpacked::from_bits(fmt, b),
        mode,
    )
}

/// Multiplication on already-unpacked operands.
pub fn mul_unpacked(fmt: FpFormat, a: Unpacked, b: Unpacked, mode: RoundMode) -> (u64, Flags) {
    let sign = a.sign ^ b.sign; // the XOR gate in Figure 1(b)

    // --- Special-operand handling.
    match (a.class, b.class) {
        (Class::Zero, Class::Inf) | (Class::Inf, Class::Zero) => {
            // 0 × ∞: no NaN encoding; the cores emit +0 with invalid.
            return (Unpacked::zero(false).to_bits(fmt), Flags::invalid());
        }
        (Class::Inf, _) | (_, Class::Inf) => {
            return (Unpacked::inf(sign).to_bits(fmt), Flags::NONE);
        }
        (Class::Zero, _) | (_, Class::Zero) => {
            return (Unpacked::zero(sign).to_bits(fmt), Flags::NONE);
        }
        (Class::Normal, Class::Normal) => {}
    }

    // --- Stage 2: fixed-point significand product and exponent sum.
    // Significands are (frac_bits+1)-bit values in [2^f, 2^(f+1)), so the
    // product is a (2f+1)- or (2f+2)-bit value in [2^2f, 2^(2f+2)).
    let product = a.sig as u128 * b.sig as u128;
    let exp = a.exp + b.exp; // biased add + bias subtract in hardware

    // --- Stage 3: small normalizer then round.
    let (aligned, exp) = product_normalize(fmt, product, exp);
    let rounded = round_sig(fmt, aligned, fmt.frac_bits() + 1, mode);
    let exp = exp + rounded.exp_carry as i32;
    pack_with_range_check(fmt, sign, exp, rounded.sig, mode, rounded.inexact)
}

/// Stage 3a: the multiplier's small normalizer. The hidden bit of the raw
/// product sits at position 2f or 2f+1; align it to 2f+1 so the
/// significand field is bits `[f+1 ..= 2f+1]` with an (f+1)-bit rounding
/// tail below it.
pub fn product_normalize(fmt: FpFormat, product: u128, exp: i32) -> (u128, i32) {
    let f = fmt.frac_bits();
    if product >> (2 * f + 1) != 0 {
        (product, exp + 1)
    } else {
        (product << 1, exp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F32: FpFormat = FpFormat::SINGLE;
    const F64: FpFormat = FpFormat::DOUBLE;

    fn mul_f32(a: f32, b: f32) -> (f32, Flags) {
        let (bits, flags) = mul(
            F32,
            a.to_bits() as u64,
            b.to_bits() as u64,
            RoundMode::NearestEven,
        );
        (f32::from_bits(bits as u32), flags)
    }

    #[test]
    fn simple_products() {
        assert_eq!(mul_f32(2.0, 3.0).0, 6.0);
        assert_eq!(mul_f32(1.5, 1.5).0, 2.25);
        assert_eq!(mul_f32(-2.0, 3.0).0, -6.0);
        assert_eq!(mul_f32(-2.0, -3.0).0, 6.0);
        assert_eq!(mul_f32(0.1, 0.2).0, 0.1f32 * 0.2f32);
    }

    #[test]
    fn sign_of_zero_products() {
        assert_eq!(mul_f32(0.0, 5.0).0.to_bits(), 0);
        assert_eq!(mul_f32(-0.0, 5.0).0.to_bits(), 0x8000_0000);
        assert_eq!(mul_f32(-0.0, -5.0).0.to_bits(), 0);
    }

    #[test]
    fn inf_products() {
        let inf = f32::INFINITY;
        assert_eq!(mul_f32(inf, 2.0).0, inf);
        assert_eq!(mul_f32(inf, -2.0).0, -inf);
        assert_eq!(mul_f32(-inf, -inf).0, inf);
        let (r, f) = mul_f32(inf, 0.0);
        assert_eq!(r.to_bits(), 0); // deterministic substitute for NaN
        assert!(f.invalid);
    }

    #[test]
    fn overflow_and_underflow() {
        let (r, f) = mul_f32(f32::MAX, 2.0);
        assert_eq!(r, f32::INFINITY);
        assert!(f.overflow);

        let (r, f) = mul_f32(f32::MIN_POSITIVE, 0.5);
        assert_eq!(r.to_bits(), 0); // flush to zero, no denormals
        assert!(f.underflow);

        let (bits, f) = mul(
            F32,
            f32::MAX.to_bits() as u64,
            2.0f32.to_bits() as u64,
            RoundMode::Truncate,
        );
        assert_eq!(f32::from_bits(bits as u32), f32::MAX);
        assert!(f.overflow);
    }

    #[test]
    fn rounding_carry_renormalizes() {
        // Choose operands whose product is 1.111…1xx requiring a rounding
        // carry: (1 + 2^-12)^2 style values exercise the "at most two
        // bits" normalizer path.
        let a = f32::from_bits(0x3fff_ffff); // just under 2.0
        let (got, _) = mul_f32(a, a);
        assert_eq!(got, a * a);
    }

    #[test]
    fn matches_native_f32_on_samples() {
        let samples = [
            0.0f32,
            1.0,
            -1.0,
            0.5,
            std::f32::consts::PI,
            -std::f32::consts::E,
            1e10,
            -1e10,
            1e-10,
            123456.78,
            0.000123,
            -99999.9,
            1.0000001,
            0.9999999,
            8388608.0,
        ];
        for &x in &samples {
            for &y in &samples {
                let (got, _) = mul_f32(x, y);
                let want = x * y;
                // Native may produce denormals; the cores flush to zero.
                let want = if want != 0.0 && want.abs() < f32::MIN_POSITIVE {
                    0.0 * want
                } else {
                    want
                };
                assert_eq!(got.to_bits(), want.to_bits(), "{x} * {y}");
            }
        }
    }

    #[test]
    fn matches_native_f64_on_samples() {
        let samples = [
            0.0f64,
            1.0,
            -1.0,
            0.5,
            std::f64::consts::PI,
            1e100,
            -1e100,
            1e-100,
            9.87654321e8,
        ];
        for &x in &samples {
            for &y in &samples {
                let (bits, _) = mul(F64, x.to_bits(), y.to_bits(), RoundMode::NearestEven);
                assert_eq!(f64::from_bits(bits), x * y, "{x} * {y}");
            }
        }
    }

    #[test]
    fn truncate_toward_zero() {
        // 3 * (1/3-ish) — inexact product truncates toward zero.
        let a = 0.333_333_34f32;
        let exact_ne = {
            let (bits, _) = mul(
                F32,
                a.to_bits() as u64,
                3.0f32.to_bits() as u64,
                RoundMode::NearestEven,
            );
            f32::from_bits(bits as u32)
        };
        let (bits, flags) = mul(
            F32,
            a.to_bits() as u64,
            3.0f32.to_bits() as u64,
            RoundMode::Truncate,
        );
        let trunc = f32::from_bits(bits as u32);
        assert!(trunc <= exact_ne);
        assert!(flags.inexact);
    }

    #[test]
    fn fp48_product_fits_and_roundtrips() {
        use crate::convert::convert;
        let f48 = FpFormat::FP48;
        let (a, _) = convert(F64, 1.234_567_89f64.to_bits(), f48, RoundMode::NearestEven);
        let (b, _) = convert(F64, 9.876_543_21f64.to_bits(), f48, RoundMode::NearestEven);
        let (p, _) = mul(f48, a, b, RoundMode::NearestEven);
        let (back, _) = convert(f48, p, F64, RoundMode::NearestEven);
        let got = f64::from_bits(back);
        assert!((got - 1.23456789 * 9.87654321).abs() < 1e-9, "got {got}");
    }
}
