//! Fused multiply-add: `a·b + c` with a **single** rounding.
//!
//! The paper's PEs compute multiply-accumulate as two chained units with
//! two roundings; a fused unit rounds once, halving the rounding error
//! and deleting the intermediate normalize/round hardware (priced in
//! `fpfpga-fpu::mac`). This reference implementation computes the exact
//! product, aligns the addend against it at full precision (sticky
//! compression beyond the window), adds, and rounds once — verifiable
//! bit-for-bit against native hardware FMA (`f32::mul_add`,
//! `f64::mul_add`) on normal operands.

use crate::exceptions::Flags;
use crate::format::FpFormat;
use crate::round::{pack_with_range_check, round_sig, shift_right_sticky_u128, RoundMode};
use crate::unpacked::{Class, Unpacked};

/// Guard bits below the product's binary alignment in the wide adder.
pub const FMA_GRS: u32 = 3;

/// `a·b + c` with one rounding, on raw encodings.
pub fn fma(fmt: FpFormat, a: u64, b: u64, c: u64, mode: RoundMode) -> (u64, Flags) {
    let ua = Unpacked::from_bits(fmt, a);
    let ub = Unpacked::from_bits(fmt, b);
    let uc = Unpacked::from_bits(fmt, c);
    let psign = ua.sign ^ ub.sign;

    // --- Specials: the product's rules first, then the addition's.
    match (ua.class, ub.class) {
        (Class::Zero, Class::Inf) | (Class::Inf, Class::Zero) => {
            // 0×∞ + c: invalid regardless of c (no NaN encoding: +0).
            return (Unpacked::zero(false).to_bits(fmt), Flags::invalid());
        }
        (Class::Inf, _) | (_, Class::Inf) => {
            // ±∞ + c: ∞ unless c is the opposite ∞.
            return match uc.class {
                Class::Inf if uc.sign != psign => {
                    (Unpacked::inf(false).to_bits(fmt), Flags::invalid())
                }
                _ => (Unpacked::inf(psign).to_bits(fmt), Flags::NONE),
            };
        }
        _ => {}
    }
    if uc.class == Class::Inf {
        return (Unpacked::inf(uc.sign).to_bits(fmt), Flags::NONE);
    }
    if ua.class == Class::Zero || ub.class == Class::Zero {
        // Exact product zero: result is c (with the +0 convention on
        // signed-zero cancellation).
        return if uc.class == Class::Zero {
            let sign = psign && uc.sign;
            (Unpacked::zero(sign).to_bits(fmt), Flags::NONE)
        } else {
            (uc.to_bits(fmt), Flags::NONE)
        };
    }
    if uc.class == Class::Zero {
        // c = 0: a plain multiplication (already correctly rounded once).
        return crate::ops::mul::mul_unpacked(fmt, ua, ub, mode);
    }

    // --- Exact product: 2f+1 or 2f+2 significant bits; value =
    // product · 2^(pexp − 2f).
    let f = fmt.frac_bits();
    let product = ua.sig as u128 * ub.sig as u128;
    let pexp = ua.exp + ub.exp;

    // Fixed-point frame anchored on whichever operand is larger, with
    // FMA_GRS guard bits at the bottom; the other operand shifts into it,
    // compressing anything below the guard bits into a jammed sticky.
    //
    // `shift` is the left-shift c needs in the product-anchored frame.
    let shift = (uc.exp - pexp) + f as i32;
    let c_wide = (uc.sig as u128) << FMA_GRS;
    let prod_wide = product << FMA_GRS;

    let (mag, sign, e_lsb, is_zero) = if shift > (f + 2) as i32 {
        // c dominates: anchor on c (LSB weight 2^(uc.exp − f − FMA_GRS))
        // and shift the product down with a sticky jam. The product's
        // value is < 2^(pexp+2) ≤ 2^(uc.exp − 1), so an effective
        // subtraction cancels at most one bit position.
        // prod_wide = P·2^GRS and Y = P·2^(GRS − shift), so the product
        // drops by exactly `shift` positions in the c-anchored frame.
        let (p_aligned, lost) = shift_right_sticky_u128(prod_wide, shift as u32);
        let (m, sg, z) = combine(c_wide, uc.sign, p_aligned | lost as u128, psign);
        (m, sg, uc.exp - (f + FMA_GRS) as i32, z)
    } else if shift >= 0 {
        // Overlap: c fits in the product-anchored frame after a left
        // shift of at most f+2 (total width ≤ 2f + FMA_GRS + 4 bits).
        let c_aligned = c_wide << shift;
        let (m, sg, z) = combine(prod_wide, psign, c_aligned, uc.sign);
        (m, sg, pexp - (2 * f + FMA_GRS) as i32, z)
    } else {
        // Product dominates: c shifts down with a sticky jam.
        let (c_aligned, lost) = shift_right_sticky_u128(c_wide, (-shift) as u32);
        let (m, sg, z) = combine(prod_wide, psign, c_aligned | lost as u128, uc.sign);
        (m, sg, pexp - (2 * f + FMA_GRS) as i32, z)
    };
    if is_zero {
        // Exact cancellation: +0 under both supported rounding modes.
        return (Unpacked::zero(false).to_bits(fmt), Flags::NONE);
    }

    // Normalize against the frame and round once.
    let msb = 127 - mag.leading_zeros();
    let exp_val = e_lsb + msb as i32; // unbiased exponent of the result
    let (mag, grs) = if msb > f {
        (mag, msb - f)
    } else {
        // Deep cancellation (necessarily exact): lift the hidden bit.
        (mag << (f + 1 - msb), 1)
    };
    let rounded = round_sig(fmt, mag, grs, mode);
    let exp = exp_val + rounded.exp_carry as i32;
    pack_with_range_check(fmt, sign, exp, rounded.sig, mode, rounded.inexact)
}

/// Signed combine of two magnitudes in the same frame: returns the
/// result magnitude, its sign, and whether an effective subtraction
/// cancelled exactly. Shared with the IEEE-mode fma.
pub fn combine(p: u128, ps: bool, c: u128, cs: bool) -> (u128, bool, bool) {
    if ps == cs {
        (p + c, ps, false)
    } else if p >= c {
        let d = p - c;
        (d, ps, d == 0)
    } else {
        (c - p, cs, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F32: FpFormat = FpFormat::SINGLE;
    const F64: FpFormat = FpFormat::DOUBLE;

    fn fma32(a: f32, b: f32, c: f32) -> f32 {
        let (bits, _) = fma(
            F32,
            a.to_bits() as u64,
            b.to_bits() as u64,
            c.to_bits() as u64,
            RoundMode::NearestEven,
        );
        f32::from_bits(bits as u32)
    }

    #[test]
    fn simple_cases() {
        assert_eq!(fma32(2.0, 3.0, 4.0), 10.0);
        assert_eq!(fma32(1.5, -2.0, 3.0), 0.0);
        assert_eq!(fma32(0.5, 0.5, 0.25), 0.5);
    }

    #[test]
    fn single_rounding_differs_from_two() {
        // The classic witness: a·b + c where the product's low bits are
        // killed by rounding in the two-step version but survive fusion.
        let a = 1.0f32 + f32::EPSILON; // 1 + 2^-23
        let b = 1.0f32 - f32::EPSILON / 2.0; // 1 - 2^-24
        let c = -1.0f32;
        let fused = fma32(a, b, c);
        let two_step = {
            let (p, _) = crate::mul_bits(
                F32,
                a.to_bits() as u64,
                b.to_bits() as u64,
                RoundMode::NearestEven,
            );
            let (s, _) = crate::add_bits(F32, p, c.to_bits() as u64, RoundMode::NearestEven);
            f32::from_bits(s as u32)
        };
        assert_eq!(fused, a.mul_add(b, c));
        assert_ne!(fused, two_step, "fusion must be observable");
    }

    #[test]
    fn matches_native_fma_samples() {
        let vals = [
            1.0f32, -1.5, 3.25, 0.1, 7e5, -2e-5, 123.456, 1e10, 1e-10, 0.333333,
        ];
        for &a in &vals {
            for &b in &vals {
                for &c in &vals {
                    let native = a.mul_add(b, c);
                    if native.is_nan() || (native != 0.0 && native.abs() <= f32::MIN_POSITIVE) {
                        continue;
                    }
                    assert_eq!(fma32(a, b, c).to_bits(), native.to_bits(), "{a}*{b}+{c}");
                }
            }
        }
    }

    #[test]
    fn matches_native_fma_f64_samples() {
        let vals = [
            1.0f64,
            -2.5,
            0.1,
            1e100,
            1e-100,
            std::f64::consts::PI,
            -7.25e8,
        ];
        for &a in &vals {
            for &b in &vals {
                for &c in &vals {
                    let native = a.mul_add(b, c);
                    if native.is_nan() || (native != 0.0 && native.abs() <= f64::MIN_POSITIVE) {
                        continue;
                    }
                    let (bits, _) = fma(
                        F64,
                        a.to_bits(),
                        b.to_bits(),
                        c.to_bits(),
                        RoundMode::NearestEven,
                    );
                    assert_eq!(f64::from_bits(bits), native, "{a}*{b}+{c}");
                }
            }
        }
    }

    #[test]
    fn specials() {
        let inf = f32::INFINITY;
        assert_eq!(fma32(inf, 2.0, 1.0), inf);
        assert_eq!(fma32(2.0, 2.0, inf), inf);
        assert_eq!(fma32(2.0, 2.0, -inf), -inf);
        let (r, f) = fma(
            F32,
            0.0f32.to_bits() as u64,
            inf.to_bits() as u64,
            1.0f32.to_bits() as u64,
            RoundMode::NearestEven,
        );
        assert_eq!(r, 0);
        assert!(f.invalid);
        // ∞ − ∞ via the addend
        let (r, f) = fma(
            F32,
            1.0f32.to_bits() as u64,
            inf.to_bits() as u64,
            (-inf).to_bits() as u64,
            RoundMode::NearestEven,
        );
        assert_eq!(r, F32.pos_inf());
        assert!(f.invalid);
    }

    #[test]
    fn zero_product_returns_addend() {
        assert_eq!(fma32(0.0, 5.0, 3.25), 3.25);
        assert_eq!(fma32(5.0, 0.0, -3.25), -3.25);
        assert_eq!(fma32(0.0, 5.0, 0.0), 0.0);
    }

    #[test]
    fn zero_addend_is_plain_mul() {
        for &(a, b) in &[(1.5f32, 2.5f32), (0.1, 0.2), (-7.0, 3.0)] {
            assert_eq!(fma32(a, b, 0.0).to_bits(), (a * b).to_bits());
        }
    }

    #[test]
    fn exact_cancellation_is_positive_zero() {
        let r = fma32(2.0, 3.0, -6.0);
        assert_eq!(r.to_bits(), 0);
    }

    #[test]
    fn huge_addend_dominates() {
        let r = fma32(1e-20, 1e-20, 1e20);
        assert_eq!(r, 1e20f32.mul_add(1.0, 0.0).max(1e20)); // = 1e20
                                                            // ...but the product's sign still perturbs ties correctly:
        assert_eq!(
            fma32(1e-20, 1e-20, 1e20).to_bits(),
            (1e-20f32).mul_add(1e-20, 1e20).to_bits()
        );
        assert_eq!(
            fma32(-1e-20, 1e-20, 1e20).to_bits(),
            (-1e-20f32).mul_add(1e-20, 1e20).to_bits()
        );
    }
}
