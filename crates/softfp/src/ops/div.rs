//! Floating-point division, structured as a digit-recurrence divider
//! datapath:
//!
//! 1. **Denormalize** (shared with the other cores) plus exception
//!    detection (0 ÷ 0, ∞ ÷ ∞ invalid; x ÷ 0 raises divide-by-zero);
//! 2. **Quotient recurrence** — the significand quotient, computed here
//!    with an exact integer division (the value a radix-2 SRT recurrence
//!    converges to), with the remainder compressed into a sticky bit;
//!    the exponent path subtracts exponents and re-biases, the sign is an
//!    XOR;
//! 3. **Normalize / round** — the quotient of two `[1,2)` significands
//!    lies in `(1/2, 2)`, so at most one normalization shift, then the
//!    same rounding module as the other cores.
//!
//! Division is not evaluated in the paper (its related work cites
//! divider-bearing core libraries); it is provided as the natural
//! extension and follows the exact same semantic rules: flush-to-zero,
//! no NaNs, round-to-nearest-even or truncate.

use crate::exceptions::Flags;
use crate::format::FpFormat;
use crate::round::{pack_with_range_check, round_sig, RoundMode};
use crate::unpacked::{Class, Unpacked};

/// Guard bits kept below the quotient's hidden position before rounding.
pub const DIV_GRS_BITS: u32 = 2;

/// `a / b` on raw encodings.
pub fn div(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    div_unpacked(
        fmt,
        Unpacked::from_bits(fmt, a),
        Unpacked::from_bits(fmt, b),
        mode,
    )
}

/// Division on already-unpacked operands.
pub fn div_unpacked(fmt: FpFormat, a: Unpacked, b: Unpacked, mode: RoundMode) -> (u64, Flags) {
    let sign = a.sign ^ b.sign;

    // --- Special-operand handling.
    match (a.class, b.class) {
        (Class::Zero, Class::Zero) | (Class::Inf, Class::Inf) => {
            // 0/0 and ∞/∞ have no NaN to produce: deterministic
            // substitutes (+0 and +∞ respectively) with invalid raised.
            return if a.class == Class::Zero {
                (Unpacked::zero(false).to_bits(fmt), Flags::invalid())
            } else {
                (Unpacked::inf(false).to_bits(fmt), Flags::invalid())
            };
        }
        (Class::Inf, _) => return (Unpacked::inf(sign).to_bits(fmt), Flags::NONE),
        (_, Class::Inf) => return (Unpacked::zero(sign).to_bits(fmt), Flags::NONE),
        (Class::Zero, _) => return (Unpacked::zero(sign).to_bits(fmt), Flags::NONE),
        (Class::Normal, Class::Zero) => {
            return (Unpacked::inf(sign).to_bits(fmt), Flags::div_by_zero());
        }
        (Class::Normal, Class::Normal) => {}
    }

    // --- Quotient recurrence (exact) + exponent subtract.
    let (q, exp) = quotient_recurrence(fmt, a.sig, b.sig, a.exp - b.exp);

    // --- Round and pack. `q` is normalized with the hidden bit at
    // frac_bits + DIV_GRS_BITS and a sticky-jammed tail.
    let rounded = round_sig(fmt, q, DIV_GRS_BITS, mode);
    let exp = exp + rounded.exp_carry as i32;
    pack_with_range_check(fmt, sign, exp, rounded.sig, mode, rounded.inexact)
}

/// The significand quotient with its exponent adjustment.
///
/// Returns `(q, exp)` where `q` has its leading one at bit
/// `frac_bits + DIV_GRS_BITS` and its low bit jammed with the remainder's
/// sticky. Both significands carry explicit hidden bits; the quotient of
/// two `[2^f, 2^(f+1))` values lies in `(1/2, 2)`, so a single
/// conditional pre-shift (folded into the exponent) normalizes it.
pub fn quotient_recurrence(fmt: FpFormat, sig_a: u64, sig_b: u64, exp: i32) -> (u128, i32) {
    debug_assert!(sig_a >> fmt.frac_bits() == 1, "numerator not normalized");
    debug_assert!(sig_b >> fmt.frac_bits() == 1, "denominator not normalized");
    let f = fmt.frac_bits();
    // Choose the numerator pre-shift so the integer quotient lands in
    // [2^(f+2), 2^(f+3)): f + 3 significant bits (hidden + f fraction +
    // 2 guard bits).
    let (num, exp) = if sig_a >= sig_b {
        (((sig_a as u128) << (f + DIV_GRS_BITS)), exp)
    } else {
        (((sig_a as u128) << (f + DIV_GRS_BITS + 1)), exp - 1)
    };
    let q = num / sig_b as u128;
    let r = num % sig_b as u128;
    debug_assert!(
        q >> (f + DIV_GRS_BITS) == 1,
        "quotient not normalized: {q:#x}"
    );
    // Jam the remainder's sticky into the low bit: the truncated quotient
    // is exact iff r == 0, and jamming keeps round-to-nearest ties honest
    // (same parity argument as the adder's alignment sticky).
    (q | (r != 0) as u128, exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    const F32: FpFormat = FpFormat::SINGLE;
    const F64: FpFormat = FpFormat::DOUBLE;

    fn div_f32(a: f32, b: f32) -> (f32, Flags) {
        let (bits, flags) = div(
            F32,
            a.to_bits() as u64,
            b.to_bits() as u64,
            RoundMode::NearestEven,
        );
        (f32::from_bits(bits as u32), flags)
    }

    #[test]
    fn simple_quotients() {
        assert_eq!(div_f32(6.0, 3.0).0, 2.0);
        assert_eq!(div_f32(1.0, 4.0).0, 0.25);
        assert_eq!(div_f32(-7.5, 2.5).0, -3.0);
        assert_eq!(div_f32(1.0, 3.0).0, 1.0f32 / 3.0);
        assert_eq!(div_f32(2.0, 3.0).0, 2.0f32 / 3.0);
    }

    #[test]
    fn exactness_flagging() {
        let (_, f) = div_f32(1.0, 2.0);
        assert!(!f.any());
        let (_, f) = div_f32(1.0, 3.0);
        assert!(f.inexact && !f.invalid);
    }

    #[test]
    fn zero_and_inf_rules() {
        let inf = f32::INFINITY;
        assert_eq!(div_f32(inf, 2.0).0, inf);
        assert_eq!(div_f32(2.0, inf).0, 0.0);
        assert_eq!(div_f32(-2.0, inf).0.to_bits(), 0x8000_0000); // -0
        assert_eq!(div_f32(0.0, 5.0).0, 0.0);
        let (r, f) = div_f32(5.0, 0.0);
        assert_eq!(r, inf);
        assert!(f.div_by_zero && !f.invalid);
        let (r, f) = div_f32(-5.0, 0.0);
        assert_eq!(r, -inf);
        assert!(f.div_by_zero);
    }

    #[test]
    fn invalid_cases() {
        let (r, f) = div_f32(0.0, 0.0);
        assert_eq!(r.to_bits(), 0);
        assert!(f.invalid && !f.div_by_zero);
        let (r, f) = div_f32(f32::INFINITY, f32::NEG_INFINITY);
        assert_eq!(r, f32::INFINITY);
        assert!(f.invalid);
    }

    #[test]
    fn overflow_and_underflow() {
        let (r, f) = div_f32(f32::MAX, f32::MIN_POSITIVE);
        assert_eq!(r, f32::INFINITY);
        assert!(f.overflow);
        let (r, f) = div_f32(f32::MIN_POSITIVE, f32::MAX);
        assert_eq!(r.to_bits(), 0);
        assert!(f.underflow);
    }

    #[test]
    fn matches_native_f32_on_samples() {
        let samples = [
            1.0f32,
            -1.0,
            0.5,
            std::f32::consts::PI,
            -std::f32::consts::E,
            1e10,
            1e-10,
            123456.78,
            0.000123,
            -99999.9,
            1.0000001,
            0.9999999,
            7.0,
            10.0,
            0.1,
        ];
        for &x in &samples {
            for &y in &samples {
                let (got, _) = div_f32(x, y);
                assert_eq!(got.to_bits(), (x / y).to_bits(), "{x} / {y}");
            }
        }
    }

    #[test]
    fn matches_native_f64_on_samples() {
        let samples = [
            1.0f64,
            3.0,
            -7.0,
            0.1,
            1e200,
            1e-200,
            std::f64::consts::E,
            1e8 + 0.5,
        ];
        for &x in &samples {
            for &y in &samples {
                let (bits, _) = div(F64, x.to_bits(), y.to_bits(), RoundMode::NearestEven);
                assert_eq!(f64::from_bits(bits), x / y, "{x} / {y}");
            }
        }
    }

    #[test]
    fn truncation_rounds_toward_zero() {
        let (t, _) = div(
            F32,
            1.0f32.to_bits() as u64,
            3.0f32.to_bits() as u64,
            RoundMode::Truncate,
        );
        let (n, _) = div(
            F32,
            1.0f32.to_bits() as u64,
            3.0f32.to_bits() as u64,
            RoundMode::NearestEven,
        );
        let (t, n) = (f32::from_bits(t as u32), f32::from_bits(n as u32));
        assert!(t <= n);
        assert!((n - t).abs() <= f32::EPSILON);
    }

    #[test]
    fn division_by_one_is_identity() {
        for &x in &[1.0f32, -2.5, std::f32::consts::PI, 1e-20, 1e20] {
            assert_eq!(div_f32(x, 1.0).0.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn fp48_division_refines_single() {
        use crate::convert::convert;
        let f48 = FpFormat::FP48;
        let (a, _) = convert(F32, 1.0f32.to_bits() as u64, f48, RoundMode::NearestEven);
        let (b, _) = convert(F32, 3.0f32.to_bits() as u64, f48, RoundMode::NearestEven);
        let (q, _) = div(f48, a, b, RoundMode::NearestEven);
        let got = crate::convert::to_f64(f48, q);
        assert!((got - 1.0 / 3.0).abs() < 1e-11, "{got}");
    }
}
