//! # fpfpga-softfp — parameterized, bit-exact software floating point
//!
//! This crate is the *numerical reference model* for the FPGA floating-point
//! cores described in Govindu, Zhuo, Choi and Prasanna, *"Analysis of
//! High-performance Floating-point Arithmetic on FPGAs"* (IPPS 2004).
//!
//! The paper's cores follow the IEEE 754 layout (sign, biased exponent,
//! fraction with a hidden leading one) for single (32-bit), 48-bit and
//! double (64-bit) precisions, with two deliberate deviations that this
//! crate reproduces exactly:
//!
//! * **No denormals.** Denormal inputs are flushed to zero; results that
//!   would be denormal are flushed to zero and flagged as underflow.
//! * **No NaNs.** All-ones exponent encodings denote infinity. Invalid
//!   operations (∞ − ∞, 0 × ∞) raise the `invalid` flag and return a
//!   deterministic value instead of a NaN payload.
//!
//! Only the two rounding modes the paper implemented are provided:
//! round-to-nearest(-even) and truncation (round toward zero).
//!
//! Every arithmetic routine is written as the same dataflow the hardware
//! uses (compare/swap → align → add → normalize → round for addition;
//! multiply → exponent add/bias subtract → small normalize → round for
//! multiplication) so that the cycle-accurate datapath in `fpfpga-fpu` can
//! be property-tested for bit-identical behaviour against this crate, and
//! this crate in turn is tested against native `f32`/`f64` where the
//! formats coincide.
//!
//! ## Quick example
//!
//! ```
//! use fpfpga_softfp::{FpFormat, SoftFloat, RoundMode};
//!
//! let fmt = FpFormat::SINGLE;
//! let a = SoftFloat::from_f64(fmt, 1.5);
//! let b = SoftFloat::from_f64(fmt, 2.25);
//! let (sum, flags) = a.add(&b, RoundMode::NearestEven);
//! assert_eq!(sum.to_f64(), 3.75);
//! assert!(!flags.any());
//! ```

pub mod compare;
pub mod convert;
pub mod exceptions;
pub mod fastpath;
pub mod format;
pub mod ieee;
pub mod intconv;
pub mod limb;
pub mod ops;
pub mod policy;
pub mod round;
pub mod simd;
pub mod unpacked;
pub mod value;

pub use exceptions::Flags;
pub use fastpath::{
    add_bits_batch, add_pairs_batch, fma_bits_batch, fma_triples_batch, mul_bcast_batch,
    mul_bits_batch, mul_pairs_batch, sub_bits_batch, sub_pairs_batch,
};
pub use format::{FpFormat, ParseFormatError};
pub use policy::{ParsePolicyError, PrecisionPolicy};
pub use round::RoundMode;
pub use simd::{set_simd_policy, simd_policy, SimdEngine, SimdPolicy};
pub use unpacked::{Class, Unpacked};
pub use value::SoftFloat;

/// Add two operands given as raw encodings in `fmt`.
///
/// Convenience free-function mirror of [`SoftFloat::add`], used by callers
/// (the FPU datapath, the matmul simulator) that keep raw bit streams.
pub fn add_bits(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    ops::add::add(fmt, a, b, mode)
}

/// Subtract `b` from `a` (raw encodings in `fmt`).
pub fn sub_bits(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    ops::add::sub(fmt, a, b, mode)
}

/// Multiply two operands given as raw encodings in `fmt`.
pub fn mul_bits(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    ops::mul::mul(fmt, a, b, mode)
}

/// Divide `a` by `b` (raw encodings in `fmt`).
pub fn div_bits(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    ops::div::div(fmt, a, b, mode)
}

/// Square root of `a` (raw encoding in `fmt`).
pub fn sqrt_bits(fmt: FpFormat, a: u64, mode: RoundMode) -> (u64, Flags) {
    ops::sqrt::sqrt(fmt, a, mode)
}

/// Fused multiply-add `a·b + c` with a single rounding (raw encodings).
pub fn fma_bits(fmt: FpFormat, a: u64, b: u64, c: u64, mode: RoundMode) -> (u64, Flags) {
    ops::fma::fma(fmt, a, b, c, mode)
}
