//! Integer and fixed-point conversions — the interface hardware between
//! the floating-point cores and the fixed-point world around them.
//!
//! The paper notes that commercial cores need "conversion to and from
//! the IEEE754 standard at interfaces to other resources in the system";
//! on a real FPGA those resources are fixed-point datapaths, ADC/DAC
//! streams and address generators. This module provides the bit-exact
//! semantics of those converters: float ↔ signed integer and float ↔
//! signed fixed-point (Qm.f), with the library's two rounding modes and
//! saturation + invalid on overflow.

use crate::exceptions::Flags;
use crate::format::FpFormat;
use crate::round::RoundMode;
use crate::unpacked::{Class, Unpacked};

/// Convert a float encoding to a signed 64-bit integer.
///
/// Out-of-range values (including ±∞) saturate and raise `invalid`;
/// fractional values round per `mode` (`Truncate` = toward zero,
/// `NearestEven` = ties to even) and raise `inexact`.
pub fn to_i64(fmt: FpFormat, bits: u64, mode: RoundMode) -> (i64, Flags) {
    let u = Unpacked::from_bits(fmt, bits);
    match u.class {
        Class::Zero => (0, Flags::NONE),
        Class::Inf => (if u.sign { i64::MIN } else { i64::MAX }, Flags::invalid()),
        Class::Normal => {
            let f = fmt.frac_bits() as i32;
            // value = sig · 2^(exp − f)
            let shift = u.exp - f;
            let (mag, inexact) = if shift >= 0 {
                if shift >= 64 || (u.sig as u128) << shift > i64::MAX as u128 + 1 {
                    return (if u.sign { i64::MIN } else { i64::MAX }, Flags::invalid());
                }
                ((u.sig as u128) << shift, false)
            } else {
                // Fractional: split sig into kept / guard / sticky at the
                // binary point and round.
                let s = (-shift) as u32;
                let (kept, guard, sticky) = if s > 64 {
                    (0u64, 0u64, u.sig != 0)
                } else if s == 64 {
                    (0u64, u.sig >> 63, u.sig & ((1u64 << 63) - 1) != 0)
                } else {
                    let kept = u.sig >> s;
                    let guard = (u.sig >> (s - 1)) & 1;
                    let below = if s >= 2 {
                        u.sig & ((1u64 << (s - 1)) - 1) != 0
                    } else {
                        false
                    };
                    (kept, guard, below)
                };
                let inexact = guard == 1 || sticky;
                let rounded = match mode {
                    RoundMode::Truncate => kept,
                    RoundMode::NearestEven => {
                        if guard == 1 && (sticky || kept & 1 == 1) {
                            kept + 1
                        } else {
                            kept
                        }
                    }
                };
                (rounded as u128, inexact)
            };
            let limit = if u.sign {
                1u128 << 63
            } else {
                (1u128 << 63) - 1
            };
            if mag > limit {
                return (if u.sign { i64::MIN } else { i64::MAX }, Flags::invalid());
            }
            let v = if u.sign { -(mag as i128) } else { mag as i128 };
            let mut flags = Flags::NONE;
            flags.inexact = inexact;
            (v as i64, flags)
        }
    }
}

/// Convert a signed 64-bit integer to a float encoding (rounded per
/// `mode` when the integer has more significant bits than the format).
pub fn from_i64(fmt: FpFormat, x: i64, mode: RoundMode) -> (u64, Flags) {
    if x == 0 {
        return (0, Flags::NONE);
    }
    let sign = x < 0;
    let mag = x.unsigned_abs() as u128;
    let msb = 127 - mag.leading_zeros();
    let f = fmt.frac_bits();
    // Normalize so round_sig sees the hidden bit at f + tail_bits.
    let (aligned, grs) = if msb > f {
        (mag, msb - f) // the low msb−f bits round away
    } else {
        (mag << (f - msb + 1), 1) // exact; a zero guard bit suffices
    };
    let rounded = crate::round::round_sig(fmt, aligned, grs, mode);
    let exp = msb as i32 + rounded.exp_carry as i32;
    crate::round::pack_with_range_check(fmt, sign, exp, rounded.sig, mode, rounded.inexact)
}

/// Convert a float to signed fixed-point Q(63−f).f — i.e. the integer
/// `round(value · 2^frac_bits_out)` — saturating with `invalid`.
pub fn to_fixed(fmt: FpFormat, bits: u64, frac_bits_out: u32, mode: RoundMode) -> (i64, Flags) {
    assert!(frac_bits_out < 63, "fixed-point fraction too wide");
    // value · 2^frac = the integer conversion of a scaled float: just add
    // to the exponent before converting.
    let u = Unpacked::from_bits(fmt, bits);
    match u.class {
        Class::Zero => (0, Flags::NONE),
        Class::Inf => (if u.sign { i64::MIN } else { i64::MAX }, Flags::invalid()),
        Class::Normal => {
            let scaled_exp = u.exp + frac_bits_out as i32;
            if scaled_exp + fmt.bias() < 1 {
                // Underflows the encodable exponent range: the value is
                // far below one fixed-point LSB.
                let flags = if u.sig != 0 {
                    Flags::inexact()
                } else {
                    Flags::NONE
                };
                return (0, flags);
            }
            if scaled_exp > fmt.max_exp() {
                // Cannot re-encode; convert via direct arithmetic.
                return saturate_wide(u, frac_bits_out);
            }
            let scaled = fmt.pack(
                u.sign,
                (scaled_exp + fmt.bias()) as u64,
                u.sig & fmt.frac_mask(),
            );
            to_i64(fmt, scaled, mode)
        }
    }
}

fn saturate_wide(u: Unpacked, frac_bits_out: u32) -> (i64, Flags) {
    // exp large: value·2^frac certainly exceeds i64.
    let _ = frac_bits_out;
    (if u.sign { i64::MIN } else { i64::MAX }, Flags::invalid())
}

/// Convert signed fixed-point Q.f to a float encoding.
pub fn from_fixed(fmt: FpFormat, x: i64, frac_bits_in: u32, mode: RoundMode) -> (u64, Flags) {
    assert!(frac_bits_in < 63);
    let (bits, flags) = from_i64(fmt, x, mode);
    // Divide by 2^frac by adjusting the exponent (exact unless it
    // underflows the format's range).
    let u = Unpacked::from_bits(fmt, bits);
    match u.class {
        Class::Zero => (bits, flags),
        Class::Inf => (bits, flags),
        Class::Normal => {
            let exp = u.exp - frac_bits_in as i32;
            crate::round::pack_with_range_check(fmt, u.sign, exp, u.sig, mode, flags.inexact)
                .0
                .pipe_with(flags)
        }
    }
}

trait PipeWith {
    fn pipe_with(self, flags: Flags) -> (u64, Flags);
}
impl PipeWith for u64 {
    fn pipe_with(self, flags: Flags) -> (u64, Flags) {
        (self, flags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F32: FpFormat = FpFormat::SINGLE;
    const F64: FpFormat = FpFormat::DOUBLE;

    fn f32b(x: f32) -> u64 {
        x.to_bits() as u64
    }

    #[test]
    fn to_int_basics() {
        assert_eq!(to_i64(F32, f32b(0.0), RoundMode::Truncate).0, 0);
        assert_eq!(to_i64(F32, f32b(42.0), RoundMode::Truncate).0, 42);
        assert_eq!(to_i64(F32, f32b(-42.0), RoundMode::Truncate).0, -42);
        assert_eq!(to_i64(F32, f32b(1e9), RoundMode::Truncate).0, 1_000_000_000);
    }

    #[test]
    fn to_int_rounding_modes() {
        assert_eq!(to_i64(F32, f32b(2.7), RoundMode::Truncate).0, 2);
        assert_eq!(to_i64(F32, f32b(-2.7), RoundMode::Truncate).0, -2);
        assert_eq!(to_i64(F32, f32b(2.7), RoundMode::NearestEven).0, 3);
        assert_eq!(to_i64(F32, f32b(2.5), RoundMode::NearestEven).0, 2); // tie → even
        assert_eq!(to_i64(F32, f32b(3.5), RoundMode::NearestEven).0, 4);
        assert!(to_i64(F32, f32b(2.7), RoundMode::Truncate).1.inexact);
        assert!(!to_i64(F32, f32b(2.0), RoundMode::Truncate).1.inexact);
    }

    #[test]
    fn to_int_saturates() {
        let (v, f) = to_i64(F32, f32b(1e30), RoundMode::Truncate);
        assert_eq!(v, i64::MAX);
        assert!(f.invalid);
        let (v, f) = to_i64(F32, f32b(f32::NEG_INFINITY), RoundMode::Truncate);
        assert_eq!(v, i64::MIN);
        assert!(f.invalid);
        // exactly representable boundary: -2^63 fits
        let (v, f) = to_i64(F64, (-(2f64.powi(63))).to_bits(), RoundMode::Truncate);
        assert_eq!(v, i64::MIN);
        assert!(!f.invalid);
    }

    #[test]
    fn from_int_exact_and_rounded() {
        for &x in &[0i64, 1, -1, 42, -123456, 1 << 40] {
            let (b, f) = from_i64(F64, x, RoundMode::NearestEven);
            assert_eq!(f64::from_bits(b), x as f64, "{x}");
            assert!(!f.any(), "{x}");
        }
        // 2^53 + 1 does not fit double's 53-bit significand
        let big = (1i64 << 53) + 1;
        let (b, f) = from_i64(F64, big, RoundMode::NearestEven);
        assert_eq!(f64::from_bits(b), big as f64);
        assert!(f.inexact);
        // and in single precision, 16777217 rounds
        let (b, f) = from_i64(F32, 16_777_217, RoundMode::NearestEven);
        assert_eq!(f32::from_bits(b as u32), 16_777_217i64 as f32);
        assert!(f.inexact);
    }

    #[test]
    fn int_roundtrip_where_exact() {
        for &x in &[0i64, 5, -7, 1023, -65536, (1 << 24) - 1] {
            let (b, _) = from_i64(F32, x, RoundMode::NearestEven);
            let (back, f) = to_i64(F32, b, RoundMode::Truncate);
            assert_eq!(back, x);
            assert!(!f.any());
        }
    }

    #[test]
    fn fixed_point_conversions() {
        // 3.25 in Q.8 = 832
        let (v, f) = to_fixed(F32, f32b(3.25), 8, RoundMode::NearestEven);
        assert_eq!(v, 832);
        assert!(!f.any());
        // back again
        let (b, f) = from_fixed(F32, 832, 8, RoundMode::NearestEven);
        assert_eq!(f32::from_bits(b as u32), 3.25);
        assert!(!f.any());
        // 0.1 in Q.16 rounds
        let (v, f) = to_fixed(F32, f32b(0.1), 16, RoundMode::NearestEven);
        assert_eq!(v, 6554); // round(0.1 * 65536) for the f32 nearest 0.1
        assert!(f.inexact);
    }

    #[test]
    fn fixed_point_saturation() {
        let (v, f) = to_fixed(F32, f32b(1e30), 16, RoundMode::Truncate);
        assert_eq!(v, i64::MAX);
        assert!(f.invalid);
        let (v, _) = to_fixed(F32, f32b(-1e30), 16, RoundMode::Truncate);
        assert_eq!(v, i64::MIN);
    }

    #[test]
    fn tiny_values_flush_in_fixed() {
        let (v, f) = to_fixed(F32, f32b(1e-30), 8, RoundMode::NearestEven);
        assert_eq!(v, 0);
        assert!(f.inexact);
    }

    #[test]
    fn matches_native_casts_on_samples() {
        for &x in &[0.0f64, 1.9, -1.9, 123456.789, -0.49, 0.5, 1.5, 2.5, 1e15] {
            let (v, _) = to_i64(F64, x.to_bits(), RoundMode::Truncate);
            assert_eq!(v, x as i64, "trunc({x})"); // Rust casts truncate
        }
    }
}
