//! Run-time precision policies.
//!
//! The paper treats precision as a design-time axis: a core is generated
//! for one format and the whole kernel runs in it. Follow-up work
//! (Arish & Sharma's run-time multi-precision IP core; Merchant et al.'s
//! mixed-precision BLAS) makes precision a *serving-time* knob instead —
//! multiply in a cheap narrow format, accumulate in a wider one, store in
//! whatever the caller's data layout uses. A [`PrecisionPolicy`] names that
//! triple and is carried per job (and per tenant) through the serving
//! layer.
//!
//! Policies have one canonical textual form shared by every CLI in the
//! workspace: slash-separated [`FpFormat`] tokens in
//! `compute/accumulate/storage` order, with trailing components elided
//! when redundant. `"f32"` is a uniform single-precision policy,
//! `"f32/f64"` multiplies in single and accumulates in double (storage =
//! compute), and `"f32/f64/f48"` spells out all three.

use core::fmt;
use core::str::FromStr;

use crate::format::{FpFormat, ParseFormatError};

/// The formats a kernel runs in: multiply in `compute`, accumulate in
/// `accumulate`, read inputs and write results in `storage`.
///
/// Uniform policies (all three equal) reproduce the paper's single-format
/// kernels bit for bit; mixed policies widen every product from `compute`
/// to `accumulate` (exact whenever `accumulate` covers `compute`'s field
/// widths) before adding it into the running sum, then round the final
/// value back to `storage`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PrecisionPolicy {
    /// Format products (and elementwise ops) are computed in.
    pub compute: FpFormat,
    /// Format running sums are kept in.
    pub accumulate: FpFormat,
    /// Format of inputs and results at rest.
    pub storage: FpFormat,
}

impl PrecisionPolicy {
    /// Policy with all three formats spelled out.
    pub const fn new(compute: FpFormat, accumulate: FpFormat, storage: FpFormat) -> Self {
        PrecisionPolicy {
            compute,
            accumulate,
            storage,
        }
    }

    /// Single-format policy: the paper's classic configuration.
    pub const fn uniform(fmt: FpFormat) -> Self {
        PrecisionPolicy {
            compute: fmt,
            accumulate: fmt,
            storage: fmt,
        }
    }

    /// Narrow multiply, wide accumulate, storage in the compute format —
    /// the Merchant-style mixed-precision BLAS configuration.
    pub const fn mixed(compute: FpFormat, accumulate: FpFormat) -> Self {
        PrecisionPolicy {
            compute,
            accumulate,
            storage: compute,
        }
    }

    /// True when all three formats coincide (the kernel can take the
    /// single-format fast path and stay bit-identical to the paper's
    /// cores).
    pub fn is_uniform(&self) -> bool {
        self.compute == self.accumulate && self.compute == self.storage
    }

    /// True when widening a product from `compute` to `accumulate` is
    /// exact, i.e. the accumulate format has at least as many exponent and
    /// fraction bits as the compute format.
    pub fn accumulate_covers_compute(&self) -> bool {
        self.accumulate.exp_bits() >= self.compute.exp_bits()
            && self.accumulate.frac_bits() >= self.compute.frac_bits()
    }

    /// Shortest canonical token for the policy: `"f32"`, `"f32/f64"` or
    /// `"f32/f64/f48"`. Round-trips through [`FromStr`].
    pub fn canonical_name(&self) -> String {
        if self.is_uniform() {
            self.compute.canonical_name()
        } else if self.storage == self.compute {
            format!(
                "{}/{}",
                self.compute.canonical_name(),
                self.accumulate.canonical_name()
            )
        } else {
            format!(
                "{}/{}/{}",
                self.compute.canonical_name(),
                self.accumulate.canonical_name(),
                self.storage.canonical_name()
            )
        }
    }
}

impl fmt::Display for PrecisionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical_name())
    }
}

/// Error returned when a policy string fails to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParsePolicyError {
    /// One of the slash-separated components was not a valid format token.
    Format(ParseFormatError),
    /// The string had zero or more than three components.
    Arity {
        /// Number of slash-separated components found.
        found: usize,
    },
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePolicyError::Format(e) => write!(f, "bad policy component: {e}"),
            ParsePolicyError::Arity { found } => write!(
                f,
                "policy must be 1-3 slash-separated formats \
                 (compute[/accumulate[/storage]]), got {found} components"
            ),
        }
    }
}

impl std::error::Error for ParsePolicyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParsePolicyError::Format(e) => Some(e),
            ParsePolicyError::Arity { .. } => None,
        }
    }
}

impl From<ParseFormatError> for ParsePolicyError {
    fn from(e: ParseFormatError) -> Self {
        ParsePolicyError::Format(e)
    }
}

impl FromStr for PrecisionPolicy {
    type Err = ParsePolicyError;

    /// Parse `compute[/accumulate[/storage]]` where each component is an
    /// [`FpFormat`] token. Omitted `accumulate` defaults to `compute`;
    /// omitted `storage` defaults to `compute`.
    fn from_str(s: &str) -> Result<PrecisionPolicy, ParsePolicyError> {
        let parts: Vec<&str> = s.split('/').collect();
        match parts.as_slice() {
            [c] => Ok(PrecisionPolicy::uniform(c.parse()?)),
            [c, a] => Ok(PrecisionPolicy::mixed(c.parse()?, a.parse()?)),
            [c, a, st] => Ok(PrecisionPolicy::new(c.parse()?, a.parse()?, st.parse()?)),
            other => Err(ParsePolicyError::Arity { found: other.len() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_uniformity() {
        let u = PrecisionPolicy::uniform(FpFormat::FP48);
        assert!(u.is_uniform());
        let m = PrecisionPolicy::mixed(FpFormat::SINGLE, FpFormat::DOUBLE);
        assert!(!m.is_uniform());
        assert_eq!(m.storage, FpFormat::SINGLE);
        assert!(m.accumulate_covers_compute());
        let bad = PrecisionPolicy::mixed(FpFormat::DOUBLE, FpFormat::SINGLE);
        assert!(!bad.accumulate_covers_compute());
    }

    #[test]
    fn canonical_name_elides_redundant_components() {
        let u = PrecisionPolicy::uniform(FpFormat::SINGLE);
        assert_eq!(u.canonical_name(), "f32");
        let m = PrecisionPolicy::mixed(FpFormat::SINGLE, FpFormat::DOUBLE);
        assert_eq!(m.canonical_name(), "f32/f64");
        let full = PrecisionPolicy::new(FpFormat::SINGLE, FpFormat::DOUBLE, FpFormat::FP48);
        assert_eq!(full.canonical_name(), "f32/f64/f48");
        // storage == accumulate != compute still needs all three spelled out
        let sa = PrecisionPolicy::new(FpFormat::SINGLE, FpFormat::DOUBLE, FpFormat::DOUBLE);
        assert_eq!(sa.canonical_name(), "f32/f64/f64");
    }

    #[test]
    fn parse_round_trips() {
        for s in ["f32", "f48/f64", "f32/f64/f48", "e6f9/f64", "f32/f64/f64"] {
            let p: PrecisionPolicy = s.parse().unwrap();
            assert_eq!(p.canonical_name(), s, "round trip of {s}");
            assert_eq!(p.canonical_name().parse::<PrecisionPolicy>().unwrap(), p);
        }
        // aliases normalize to the canonical tokens
        let p: PrecisionPolicy = "single/double".parse().unwrap();
        assert_eq!(p.canonical_name(), "f32/f64");
    }

    #[test]
    fn parse_rejects_bad_policies() {
        for bad in ["", "f32//f64", "f32/f64/f48/f32", "g32", "f32/", "/f64"] {
            assert!(bad.parse::<PrecisionPolicy>().is_err(), "{bad:?} must fail");
        }
        match "f32/f64/f48/f32".parse::<PrecisionPolicy>() {
            Err(ParsePolicyError::Arity { found: 4 }) => {}
            other => panic!("expected arity error, got {other:?}"),
        }
        match "g32".parse::<PrecisionPolicy>() {
            Err(ParsePolicyError::Format(e)) => assert_eq!(e.token(), "g32"),
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn display_matches_canonical_name() {
        let p = PrecisionPolicy::new(FpFormat::SINGLE, FpFormat::DOUBLE, FpFormat::FP48);
        assert_eq!(p.to_string(), p.canonical_name());
    }
}
