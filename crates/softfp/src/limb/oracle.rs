//! `BigFloat`: the exact reference oracle for the limb kernels.
//!
//! A finite non-zero value is held *exactly* as `(-1)^sign · mag · 2^exp2`
//! with an arbitrary-size integer magnitude — no hidden bits, no guard
//! bits, no sticky compression. Every operation computes the exact
//! integer result (full alignment shift for addition, full product for
//! multiplication, both for fma) and then performs **one explicit round
//! step** into the destination format.
//!
//! This is deliberately a different code path from the limb kernels in
//! [`crate::limb`]: the kernels mirror the hardware datapath (fixed guard
//! windows, sticky jams, pre-normalization), while the oracle never
//! approximates until the final round. The only shared code is raw
//! integer arithmetic and field packing. Differential sweeps
//! (`fpuconform --sweeps limb`, the exhaustive tiny-format suite) compare
//! the two bit-for-bit, flags included.

use crate::exceptions::Flags;
use crate::limb::big::Big;
use crate::limb::format::LimbFormat;
use crate::round::RoundMode;

/// An exact value decoded from a wide encoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BigFloat {
    /// ±0.
    Zero {
        /// Sign bit of the encoding.
        sign: bool,
    },
    /// A finite non-zero value `(-1)^sign · mag · 2^exp2`, exactly.
    Finite {
        /// Sign.
        sign: bool,
        /// Integer magnitude (non-zero, not necessarily normalized).
        mag: Big,
        /// Power-of-two scale of the magnitude's LSB.
        exp2: i64,
    },
    /// ±∞.
    Inf {
        /// Sign bit.
        sign: bool,
    },
    /// Any NaN encoding (payload kept in the original bits).
    Nan,
}

impl BigFloat {
    /// Decode an encoding exactly. Denormals decode with their true
    /// scale (`2^(min_exp − frac_bits)` per fraction ULP) — no
    /// pre-normalization, unlike the kernels.
    pub fn from_encoding(fmt: LimbFormat, bits: &[u64]) -> BigFloat {
        let (sign, biased, frac) = fmt.unpack_fields(bits);
        let f = fmt.frac_bits() as i64;
        if biased == fmt.inf_biased_exp() {
            if frac.is_zero() {
                BigFloat::Inf { sign }
            } else {
                BigFloat::Nan
            }
        } else if biased == 0 {
            if frac.is_zero() {
                BigFloat::Zero { sign }
            } else {
                BigFloat::Finite {
                    sign,
                    mag: frac,
                    exp2: fmt.min_exp() - f,
                }
            }
        } else {
            BigFloat::Finite {
                sign,
                mag: frac.or(&Big::from_u64(1).shl(fmt.frac_bits() as u64)),
                exp2: biased as i64 - fmt.bias() - f,
            }
        }
    }
}

/// Round the exact value `(-1)^sign · mag · 2^exp2` (mag non-zero) into
/// `fmt` — the oracle's single explicit round step. Returns the packed
/// encoding and the overflow/underflow/inexact flags, with tininess
/// judged after rounding (round once at full precision with an unbounded
/// exponent range; tiny iff that stays below the smallest normal).
pub(crate) fn round_exact(
    fmt: LimbFormat,
    sign: bool,
    mag: &Big,
    exp2: i64,
    mode: RoundMode,
) -> (Vec<u64>, Flags) {
    debug_assert!(!mag.is_zero());
    let p = fmt.sig_bits() as i64;
    let bl = mag.bit_len() as i64;
    let msb_exp = exp2 + bl - 1; // exponent of the leading bit

    if msb_exp >= fmt.min_exp() {
        // Normal-range rounding: keep the top p bits.
        let (kept, carried, inexact) = round_at(mag, bl - p, mode);
        let exp = msb_exp + carried as i64;
        if exp > fmt.max_exp() {
            return overflow_result(fmt, sign, mode);
        }
        let mut flags = Flags::NONE;
        flags.inexact = inexact;
        let frac = kept.mask_low(fmt.frac_bits() as u64);
        (fmt.pack(sign, (exp + fmt.bias()) as u64, &frac), flags)
    } else {
        // Subnormal-range rounding: quantize at the fraction-ULP weight
        // 2^(min_exp − frac_bits).
        let drop = (fmt.min_exp() - fmt.frac_bits() as i64) - exp2;
        let (kept, _, inexact) = round_at(mag, drop, mode);
        // Tininess after rounding, judged at unbounded exponent range.
        let (_, ucarry, _) = round_at(mag, bl - p, mode);
        let tiny = msb_exp + (ucarry as i64) < fmt.min_exp();
        let mut flags = Flags::NONE;
        flags.inexact = inexact;
        flags.underflow = tiny && inexact;
        let bits = if kept.bit(fmt.frac_bits() as u64) {
            // Promoted to the smallest normal by the coarser rounding.
            fmt.pack(sign, 1, &kept.mask_low(fmt.frac_bits() as u64))
        } else {
            fmt.pack(sign, 0, &kept)
        };
        (bits, flags)
    }
}

/// Round `mag` by dropping its low `drop` bits (half-even under
/// `NearestEven`, toward zero under `Truncate`); a negative `drop`
/// scales up exactly. Returns `(kept, carried_out_of_msb, inexact)`.
fn round_at(mag: &Big, drop: i64, mode: RoundMode) -> (Big, bool, bool) {
    if drop <= 0 {
        return (mag.shl((-drop) as u64), false, false);
    }
    let drop = drop as u64;
    let round_bit = mag.bit(drop - 1);
    let sticky = drop > 1 && mag.low_bits_any(drop - 1);
    let (kept, _) = mag.shr_sticky(drop);
    let inexact = round_bit || sticky;
    let up = match mode {
        RoundMode::Truncate => false,
        RoundMode::NearestEven => round_bit && (sticky || kept.is_odd()),
    };
    let rounded = if up { kept.add_u64(1) } else { kept };
    let carried = rounded.bit_len() > mag.bit_len().saturating_sub(drop);
    (rounded, carried, inexact)
}

fn overflow_result(fmt: LimbFormat, sign: bool, mode: RoundMode) -> (Vec<u64>, Flags) {
    let bits = match mode {
        RoundMode::NearestEven => {
            if sign {
                fmt.neg_inf()
            } else {
                fmt.pos_inf()
            }
        }
        RoundMode::Truncate => {
            let max = fmt.max_finite();
            if sign {
                let mut b = max;
                let top = fmt.total_bits() as u64 - 1;
                b[(top / 64) as usize] |= 1u64 << (top % 64);
                b
            } else {
                max
            }
        }
    };
    (bits, Flags::overflow())
}

/// §6.2 NaN handling, restated independently from the kernels: the first
/// NaN operand (argument order) propagates with its quiet bit (fraction
/// MSB) set, sign and payload preserved; `invalid` iff any operand's
/// quiet bit is clear.
fn nan_result(fmt: LimbFormat, operands: &[&[u64]]) -> Option<(Vec<u64>, Flags)> {
    let qbit = fmt.frac_bits() as u64 - 1;
    let mut invalid = false;
    let mut first = None;
    for &x in operands {
        let (_, biased, frac) = fmt.unpack_fields(x);
        if biased == fmt.inf_biased_exp() && !frac.is_zero() {
            if !frac.bit(qbit) {
                invalid = true;
            }
            if first.is_none() {
                first = Some(x);
            }
        }
    }
    first.map(|n| {
        let quieted = Big::from_limbs(n).or(&Big::from_u64(1).shl(qbit));
        let mut flags = Flags::NONE;
        flags.invalid = invalid;
        (quieted.to_limbs_fixed(fmt.limbs()), flags)
    })
}

fn inf_bits(fmt: LimbFormat, sign: bool) -> Vec<u64> {
    if sign {
        fmt.neg_inf()
    } else {
        fmt.pos_inf()
    }
}

fn zero_bits(fmt: LimbFormat, sign: bool) -> Vec<u64> {
    fmt.pack(sign, 0, &Big::zero())
}

/// Exact signed sum of two finite values; `None` encodes exact zero.
fn exact_add(sa: bool, ma: &Big, ea: i64, sb: bool, mb: &Big, eb: i64) -> Option<(bool, Big, i64)> {
    let e = ea.min(eb);
    let a = ma.shl((ea - e) as u64);
    let b = mb.shl((eb - e) as u64);
    if sa == sb {
        return Some((sa, a.add(&b), e));
    }
    match a.cmp(&b) {
        core::cmp::Ordering::Equal => None,
        core::cmp::Ordering::Greater => Some((sa, a.sub(&b), e)),
        core::cmp::Ordering::Less => Some((sb, b.sub(&a), e)),
    }
}

/// Oracle addition: exact sum, one round step.
pub fn oracle_add(fmt: LimbFormat, a: &[u64], b: &[u64], mode: RoundMode) -> (Vec<u64>, Flags) {
    if let Some(r) = nan_result(fmt, &[a, b]) {
        return r;
    }
    use BigFloat::*;
    let ua = BigFloat::from_encoding(fmt, a);
    let ub = BigFloat::from_encoding(fmt, b);
    match (&ua, &ub) {
        (Inf { sign: s1 }, Inf { sign: s2 }) => {
            return if s1 == s2 {
                (inf_bits(fmt, *s1), Flags::NONE)
            } else {
                (fmt.quiet_nan(), Flags::invalid())
            };
        }
        (Inf { sign }, _) | (_, Inf { sign }) => return (inf_bits(fmt, *sign), Flags::NONE),
        (Zero { sign: s1 }, Zero { sign: s2 }) => return (zero_bits(fmt, *s1 && *s2), Flags::NONE),
        (Zero { .. }, Finite { sign, mag, exp2 }) | (Finite { sign, mag, exp2 }, Zero { .. }) => {
            return round_exact(fmt, *sign, mag, *exp2, mode);
        }
        _ => {}
    }
    let (
        Finite {
            sign: sa,
            mag: ma,
            exp2: ea,
        },
        Finite {
            sign: sb,
            mag: mb,
            exp2: eb,
        },
    ) = (&ua, &ub)
    else {
        unreachable!("specials handled above");
    };
    match exact_add(*sa, ma, *ea, *sb, mb, *eb) {
        None => (zero_bits(fmt, false), Flags::NONE), // exact cancellation → +0
        Some((sign, mag, exp2)) => round_exact(fmt, sign, &mag, exp2, mode),
    }
}

/// Oracle subtraction (sign-flip of the second operand).
pub fn oracle_sub(fmt: LimbFormat, a: &[u64], b: &[u64], mode: RoundMode) -> (Vec<u64>, Flags) {
    let mut nb = b.to_vec();
    let top = fmt.total_bits() as u64 - 1;
    nb[(top / 64) as usize] ^= 1u64 << (top % 64);
    oracle_add(fmt, a, &nb, mode)
}

/// Oracle multiplication: exact product, one round step.
pub fn oracle_mul(fmt: LimbFormat, a: &[u64], b: &[u64], mode: RoundMode) -> (Vec<u64>, Flags) {
    if let Some(r) = nan_result(fmt, &[a, b]) {
        return r;
    }
    use BigFloat::*;
    let ua = BigFloat::from_encoding(fmt, a);
    let ub = BigFloat::from_encoding(fmt, b);
    let sign = match (&ua, &ub) {
        (
            Zero { sign: s1 } | Finite { sign: s1, .. } | Inf { sign: s1 },
            Zero { sign: s2 } | Finite { sign: s2, .. } | Inf { sign: s2 },
        ) => s1 ^ s2,
        _ => unreachable!("NaNs handled above"),
    };
    match (&ua, &ub) {
        (Zero { .. }, Inf { .. }) | (Inf { .. }, Zero { .. }) => {
            return (fmt.quiet_nan(), Flags::invalid())
        }
        (Inf { .. }, _) | (_, Inf { .. }) => return (inf_bits(fmt, sign), Flags::NONE),
        (Zero { .. }, _) | (_, Zero { .. }) => return (zero_bits(fmt, sign), Flags::NONE),
        _ => {}
    }
    let (
        Finite {
            mag: ma, exp2: ea, ..
        },
        Finite {
            mag: mb, exp2: eb, ..
        },
    ) = (&ua, &ub)
    else {
        unreachable!("specials handled above");
    };
    round_exact(fmt, sign, &ma.mul(mb), ea + eb, mode)
}

/// Oracle fused multiply-add: exact product, exact sum, one round step.
/// NaN propagation precedes the 0×∞ invalid check, as in the kernels.
pub fn oracle_fma(
    fmt: LimbFormat,
    a: &[u64],
    b: &[u64],
    c: &[u64],
    mode: RoundMode,
) -> (Vec<u64>, Flags) {
    if let Some(r) = nan_result(fmt, &[a, b, c]) {
        return r;
    }
    use BigFloat::*;
    let ua = BigFloat::from_encoding(fmt, a);
    let ub = BigFloat::from_encoding(fmt, b);
    let uc = BigFloat::from_encoding(fmt, c);
    let psign = match (&ua, &ub) {
        (
            Zero { sign: s1 } | Finite { sign: s1, .. } | Inf { sign: s1 },
            Zero { sign: s2 } | Finite { sign: s2, .. } | Inf { sign: s2 },
        ) => s1 ^ s2,
        _ => unreachable!("NaNs handled above"),
    };
    match (&ua, &ub) {
        (Zero { .. }, Inf { .. }) | (Inf { .. }, Zero { .. }) => {
            return (fmt.quiet_nan(), Flags::invalid())
        }
        (Inf { .. }, _) | (_, Inf { .. }) => {
            return match &uc {
                Inf { sign } if *sign != psign => (fmt.quiet_nan(), Flags::invalid()),
                _ => (inf_bits(fmt, psign), Flags::NONE),
            };
        }
        _ => {}
    }
    if let Inf { sign } = &uc {
        return (inf_bits(fmt, *sign), Flags::NONE);
    }

    // Exact product (possibly zero), exact sum, single round.
    let prod = match (&ua, &ub) {
        (
            Finite {
                mag: ma, exp2: ea, ..
            },
            Finite {
                mag: mb, exp2: eb, ..
            },
        ) => Some((ma.mul(mb), ea + eb)),
        _ => None,
    };
    match (prod, &uc) {
        (None, Zero { sign: cs }) => (zero_bits(fmt, psign && *cs), Flags::NONE),
        (None, Finite { sign, mag, exp2 }) => round_exact(fmt, *sign, mag, *exp2, mode),
        (Some((pm, pe)), Zero { .. }) => round_exact(fmt, psign, &pm, pe, mode),
        (
            Some((pm, pe)),
            Finite {
                sign: cs,
                mag: cm,
                exp2: ce,
            },
        ) => match exact_add(psign, &pm, pe, *cs, cm, *ce) {
            None => (zero_bits(fmt, false), Flags::NONE),
            Some((sign, mag, exp2)) => round_exact(fmt, sign, &mag, exp2, mode),
        },
        _ => unreachable!("specials handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F128: LimbFormat = LimbFormat::F128;

    #[test]
    fn round_exact_identity_on_representable_values() {
        // 1.5 = 3 × 2^-1 at any precision.
        let (bits, flags) = round_exact(F128, false, &Big::from_u64(3), -1, RoundMode::NearestEven);
        let (s, e, m) = F128.unpack_fields(&bits);
        assert!(!s);
        assert_eq!(e, F128.bias() as u64);
        assert_eq!(m, Big::from_u64(1).shl(111));
        assert!(!flags.any());
    }

    #[test]
    fn round_exact_half_even_at_the_ulp() {
        // A p+1-bit integer ending in …01|1 (tie) rounds to even.
        let p = F128.sig_bits() as u64;
        let mag = Big::from_u64(1).shl(p).or(&Big::from_u64(0b11));
        let (bits, flags) = round_exact(F128, false, &mag, 0, RoundMode::NearestEven);
        let (_, e, m) = F128.unpack_fields(&bits);
        assert_eq!(e, F128.bias() as u64 + p);
        assert_eq!(m, Big::from_u64(2), "…01 + tie → …10");
        assert!(flags.inexact);
    }

    #[test]
    fn overflow_and_subnormal_edges() {
        // 2 × max_finite overflows; half of min_positive is an exact
        // denormal.
        let two_pmax = Big::from_u64(1);
        let (bits, f) = round_exact(
            F128,
            false,
            &two_pmax,
            F128.max_exp() + 1,
            RoundMode::NearestEven,
        );
        assert_eq!(bits, F128.pos_inf());
        assert!(f.overflow);
        let (bits, f) = round_exact(
            F128,
            true,
            &two_pmax,
            F128.max_exp() + 1,
            RoundMode::Truncate,
        );
        let (s, e, _) = F128.unpack_fields(&bits);
        assert!(s);
        assert_eq!(e, F128.max_biased_exp());
        assert!(f.overflow);
        let (bits, f) = round_exact(
            F128,
            false,
            &Big::from_u64(1),
            F128.min_exp() - 1,
            RoundMode::NearestEven,
        );
        let (_, e, m) = F128.unpack_fields(&bits);
        assert_eq!(e, 0);
        assert_eq!(m, Big::from_u64(1).shl(111));
        assert!(!f.any(), "exact denormal raises nothing");
    }

    #[test]
    fn tiny_value_rounds_to_zero_with_underflow() {
        // 1 × 2^(min_exp − frac_bits − 2): a quarter of the smallest
        // denormal → ±0, underflow + inexact.
        let e = F128.min_exp() - F128.frac_bits() as i64 - 2;
        let (bits, f) = round_exact(F128, true, &Big::from_u64(1), e, RoundMode::NearestEven);
        assert_eq!(bits, zero_bits(F128, true));
        assert!(f.underflow && f.inexact);
    }

    #[test]
    fn oracle_add_exact_cancellation_is_positive_zero() {
        let one = F128.pack(false, F128.bias() as u64, &Big::zero());
        let neg_one = F128.pack(true, F128.bias() as u64, &Big::zero());
        let (bits, f) = oracle_add(F128, &one, &neg_one, RoundMode::NearestEven);
        assert_eq!(bits, F128.zero());
        assert!(!f.any());
        // −0 + −0 keeps the sign.
        let nz = zero_bits(F128, true);
        let (bits, _) = oracle_add(F128, &nz, &nz, RoundMode::NearestEven);
        assert_eq!(bits, nz);
    }

    #[test]
    fn oracle_fma_is_exact_to_the_last_bit() {
        // (1 + 2^-112)² = 1 + 2^-111 + 2^-224: the 2^-224 term is below
        // the ulp and must show up only as inexact (round-down keeps
        // 1 + 2^-111).
        let a = F128.pack(false, F128.bias() as u64, &Big::from_u64(1));
        let zero = F128.zero();
        let (bits, f) = oracle_fma(F128, &a, &a, &zero, RoundMode::NearestEven);
        let (_, e, m) = F128.unpack_fields(&bits);
        assert_eq!(e, F128.bias() as u64);
        assert_eq!(m, Big::from_u64(2));
        assert!(f.inexact);
        // With the −(1 + 2^-111) addend the residual 2^-224 is exact.
        let residual_addend = F128.pack(true, F128.bias() as u64, &Big::from_u64(2));
        let (bits, f) = oracle_fma(F128, &a, &a, &residual_addend, RoundMode::NearestEven);
        let (s, e, _) = F128.unpack_fields(&bits);
        assert!(!s);
        assert_eq!(e as i64 - F128.bias(), -224);
        assert!(!f.any());
    }
}
