//! # Arbitrary-precision limb-based floating point
//!
//! `FpFormat` caps encodings at 64 bits so every value travels in a
//! `u64`; this module lifts the cap with little-endian `u64` *limb*
//! encodings and a limb-based unpack → arithmetic → round/pack datapath
//! for formats with mantissas wider than 64 bits (f128, f256 and
//! arbitrary `e<E>f<F>` shapes up to 24 exponent and 4096 fraction
//! bits). It follows de Fine Licht et al.'s observation that the same
//! pipelined FPGA units extend to multi-limb mantissas streamed through
//! deeper pipelines — the fabric-cost side of that claim is modeled in
//! `fpfpga-fabric`'s `apfloat` module.
//!
//! The arithmetic mirrors the scalar full-IEEE layer in [`crate::ieee`]
//! stage for stage (same guard-bit counts, sticky jams and rounding
//! boundary; after-rounding tininess; §6.2 NaN propagation), with the
//! scalar `u64`/`u128` registers replaced by multi-limb integers:
//! schoolbook limb products for multiplication, a multi-limb lzcnt for
//! normalization, and sticky collapse across limbs in the alignment and
//! denormalization shifters. One-limb formats therefore reduce
//! **bit-identically** to the scalar path — property-tested in
//! `tests/limb_vs_scalar.rs` — and wide formats are checked
//! differentially against the exact [`oracle::BigFloat`] reference.
//!
//! ## Encoding layout
//!
//! A value of a format with `total_bits = 1 + exp_bits + frac_bits`
//! occupies `ceil(total_bits/64)` limbs, least-significant limb first:
//!
//! ```text
//! limb 0            limb 1                 top limb
//! [frac 63:0]       [frac 127:64]    …     [0-pad | sign | exp | frac hi]
//! ```
//!
//! Bits at and above `total_bits` in the top limb are zero in canonical
//! encodings ([`LimbFormat::is_canonical`]).
//!
//! ## Quick example
//!
//! ```
//! use fpfpga_softfp::limb::{limb_add, LimbFormat};
//! use fpfpga_softfp::RoundMode;
//!
//! let f128 = LimbFormat::F128;
//! // 1.0 and 2.0 in binary128.
//! let one = f128.pack_parts(false, f128.bias() as u64, &[0, 0]);
//! let two = f128.pack_parts(false, f128.bias() as u64 + 1, &[0, 0]);
//! let (sum, flags) = limb_add(f128, &one, &two, RoundMode::NearestEven);
//! // 3.0 = 1.1₂ × 2¹.
//! let three = f128.pack_parts(false, f128.bias() as u64 + 1, &[0, 1 << 47]);
//! assert_eq!(sum, three);
//! assert!(!flags.any());
//! ```

pub mod big;
pub mod format;
pub mod ops;
pub mod oracle;
pub mod round;
pub mod unpacked;

pub use big::Big;
pub use format::{LimbFormat, ParseLimbFormatError};
pub use ops::{limb_add, limb_fma, limb_mul, limb_sub};
pub use round::{limb_round_overflow, shift_right_sticky_limbs};
pub use unpacked::{limb_is_nan, limb_is_signaling, limb_propagate_nan, LimbClass, LimbUnpacked};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoundMode;

    #[test]
    fn narrow_formats_reduce_to_scalar_spot_check() {
        // A quick inline sanity check; the real proof is the
        // limb_vs_scalar proptest suite.
        let fp = crate::FpFormat::SINGLE;
        let lf = LimbFormat::from_fp(fp);
        for (a, b) in [
            (0x3f80_0000u64, 0x4010_0000u64),
            (0x0000_0001, 0x8000_0002),
            (0x7f7f_ffff, 0x7f7f_ffff),
            (0x0080_0001, 0x3f7f_ffff),
        ] {
            for mode in [RoundMode::NearestEven, RoundMode::Truncate] {
                let (want, wf) = crate::ieee::ieee_add(fp, a, b, mode);
                let (got, gf) = limb_add(lf, &[a], &[b], mode);
                assert_eq!((got, gf), (vec![want], wf), "add {a:#x} {b:#x}");
                let (want, wf) = crate::ieee::ieee_mul(fp, a, b, mode);
                let (got, gf) = limb_mul(lf, &[a], &[b], mode);
                assert_eq!((got, gf), (vec![want], wf), "mul {a:#x} {b:#x}");
            }
        }
    }

    #[test]
    fn wide_kernels_agree_with_oracle_spot_check() {
        let f = LimbFormat::F256;
        let a = f.pack_parts(false, f.bias() as u64 + 3, &[0xdead_beef, 0x1234, 0, 0]);
        let b = f.pack_parts(true, f.bias() as u64 - 7, &[1, 0, 0xffff_ffff, 0]);
        for mode in [RoundMode::NearestEven, RoundMode::Truncate] {
            assert_eq!(
                limb_add(f, &a, &b, mode),
                oracle::oracle_add(f, &a, &b, mode)
            );
            assert_eq!(
                limb_mul(f, &a, &b, mode),
                oracle::oracle_mul(f, &a, &b, mode)
            );
            assert_eq!(
                limb_fma(f, &a, &b, &a, mode),
                oracle::oracle_fma(f, &a, &b, &a, mode)
            );
        }
    }
}
