//! Wide floating-point format descriptions.
//!
//! [`crate::FpFormat`] is capped at 64 encoded bits so every value rides
//! in a `u64`; [`LimbFormat`] lifts that cap. A wide value is stored as
//! `ceil(total_bits/64)` little-endian `u64` limbs with the same
//! sign/exponent/fraction layout (sign at bit `total_bits − 1`, biased
//! exponent below it, fraction in the low bits); bits at and above
//! `total_bits` in the top limb must be zero. Every ≤64-bit `FpFormat`
//! embeds as a one-limb `LimbFormat`, and the limb kernels reduce
//! bit-identically to the scalar `ieee_*` path on those.

use crate::format::FpFormat;
use crate::limb::big::Big;
use core::fmt;

/// A parameterized floating-point format without the 64-bit packing cap.
///
/// Invariants (checked by [`LimbFormat::new`]):
/// * `2 <= exp_bits <= 24`
/// * `2 <= frac_bits <= 4096`
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LimbFormat {
    exp_bits: u32,
    frac_bits: u32,
}

impl LimbFormat {
    /// IEEE 754 quadruple precision layout (1 + 15 + 112).
    pub const F128: LimbFormat = LimbFormat {
        exp_bits: 15,
        frac_bits: 112,
    };
    /// IEEE 754 octuple precision layout (1 + 19 + 236).
    pub const F256: LimbFormat = LimbFormat {
        exp_bits: 19,
        frac_bits: 236,
    };

    /// Create a custom wide format.
    ///
    /// # Panics
    /// Panics if the field widths violate the invariants listed on the
    /// type.
    pub const fn new(exp_bits: u32, frac_bits: u32) -> LimbFormat {
        assert!(
            exp_bits >= 2 && exp_bits <= 24,
            "exponent width out of range"
        );
        assert!(
            frac_bits >= 2 && frac_bits <= 4096,
            "fraction width out of range"
        );
        LimbFormat {
            exp_bits,
            frac_bits,
        }
    }

    /// Checked constructor for use with untrusted widths.
    pub fn try_new(exp_bits: u32, frac_bits: u32) -> Option<LimbFormat> {
        if (2..=24).contains(&exp_bits) && (2..=4096).contains(&frac_bits) {
            Some(LimbFormat {
                exp_bits,
                frac_bits,
            })
        } else {
            None
        }
    }

    /// Embed a ≤64-bit scalar format (same field widths, one limb).
    pub const fn from_fp(fmt: FpFormat) -> LimbFormat {
        LimbFormat {
            exp_bits: fmt.exp_bits(),
            frac_bits: fmt.frac_bits(),
        }
    }

    /// The scalar format with the same field widths, when one exists
    /// (total width ≤ 64 bits).
    pub fn to_fp(self) -> Option<FpFormat> {
        FpFormat::try_new(self.exp_bits, self.frac_bits)
    }

    /// Width of the biased exponent field in bits.
    #[inline]
    pub const fn exp_bits(self) -> u32 {
        self.exp_bits
    }

    /// Width of the stored fraction field in bits.
    #[inline]
    pub const fn frac_bits(self) -> u32 {
        self.frac_bits
    }

    /// Total encoding width: `1 + exp_bits + frac_bits`.
    #[inline]
    pub const fn total_bits(self) -> u32 {
        1 + self.exp_bits + self.frac_bits
    }

    /// Width of the significand with the hidden bit made explicit.
    #[inline]
    pub const fn sig_bits(self) -> u32 {
        self.frac_bits + 1
    }

    /// Number of `u64` limbs in an encoding: `ceil(total_bits / 64)`.
    #[inline]
    pub const fn limbs(self) -> usize {
        self.total_bits().div_ceil(64) as usize
    }

    /// Exponent bias (`2^(exp_bits-1) − 1`).
    #[inline]
    pub const fn bias(self) -> i64 {
        (1i64 << (self.exp_bits - 1)) - 1
    }

    /// Largest biased exponent of a *normal* number (all-ones minus one).
    #[inline]
    pub const fn max_biased_exp(self) -> u64 {
        (1u64 << self.exp_bits) - 2
    }

    /// The all-ones biased exponent (infinities and NaNs).
    #[inline]
    pub const fn inf_biased_exp(self) -> u64 {
        (1u64 << self.exp_bits) - 1
    }

    /// Minimum (most negative) unbiased exponent of a normal number.
    #[inline]
    pub const fn min_exp(self) -> i64 {
        1 - self.bias()
    }

    /// Maximum unbiased exponent of a normal number.
    #[inline]
    pub const fn max_exp(self) -> i64 {
        self.max_biased_exp() as i64 - self.bias()
    }

    /// Encoding of +0 (all limbs zero).
    pub fn zero(self) -> Vec<u64> {
        vec![0; self.limbs()]
    }

    /// Encoding of +infinity.
    pub fn pos_inf(self) -> Vec<u64> {
        self.pack(false, self.inf_biased_exp(), &Big::zero())
    }

    /// Encoding of −infinity.
    pub fn neg_inf(self) -> Vec<u64> {
        self.pack(true, self.inf_biased_exp(), &Big::zero())
    }

    /// Encoding of the largest finite positive number.
    pub fn max_finite(self) -> Vec<u64> {
        let ones = Big::from_u64(1)
            .shl(self.frac_bits as u64)
            .sub(&Big::from_u64(1));
        self.pack(false, self.max_biased_exp(), &ones)
    }

    /// Encoding of the smallest positive normal number.
    pub fn min_positive(self) -> Vec<u64> {
        self.pack(false, 1, &Big::zero())
    }

    /// Encoding of the smallest positive denormal (fraction LSB).
    pub fn min_denormal(self) -> Vec<u64> {
        self.pack(false, 0, &Big::from_u64(1))
    }

    /// The format's canonical quiet NaN (positive, fraction MSB set).
    pub fn quiet_nan(self) -> Vec<u64> {
        let qbit = Big::from_u64(1).shl(self.frac_bits as u64 - 1);
        self.pack(false, self.inf_biased_exp(), &qbit)
    }

    /// Assemble an encoding from raw fields. The fraction must fit in
    /// `frac_bits` (debug-checked); the exponent is masked to width.
    pub(crate) fn pack(self, sign: bool, biased_exp: u64, frac: &Big) -> Vec<u64> {
        debug_assert!(frac.bit_len() <= self.frac_bits as u64, "fraction too wide");
        let exp_field =
            Big::from_u64(biased_exp & ((1u64 << self.exp_bits) - 1)).shl(self.frac_bits as u64);
        let mut out = frac.or(&exp_field);
        if sign {
            out = out.or(&Big::from_u64(1).shl(self.total_bits() as u64 - 1));
        }
        out.to_limbs_fixed(self.limbs())
    }

    /// Split an encoding into `(sign, biased_exp, frac)`.
    pub(crate) fn unpack_fields(self, bits: &[u64]) -> (bool, u64, Big) {
        debug_assert_eq!(bits.len(), self.limbs(), "wrong limb count");
        let v = Big::from_limbs(bits);
        let sign = v.bit(self.total_bits() as u64 - 1);
        let (shifted, _) = v.shr_sticky(self.frac_bits as u64);
        let biased = shifted.mask_low(self.exp_bits as u64).low_u64();
        let frac = v.mask_low(self.frac_bits as u64);
        (sign, biased, frac)
    }

    /// Assemble an encoding from raw fields with the fraction as
    /// little-endian limbs (public mirror of the internal `pack`; the
    /// fraction is masked to `frac_bits`, the exponent to `exp_bits`).
    pub fn pack_parts(self, sign: bool, biased_exp: u64, frac: &[u64]) -> Vec<u64> {
        let frac = Big::from_limbs(frac).mask_low(self.frac_bits as u64);
        self.pack(sign, biased_exp, &frac)
    }

    /// Split an encoding into `(sign, biased_exp, frac)` with the
    /// fraction as exactly `limbs()` little-endian limbs.
    pub fn unpack_parts(self, bits: &[u64]) -> (bool, u64, Vec<u64>) {
        let (sign, biased, frac) = self.unpack_fields(bits);
        (sign, biased, frac.to_limbs_fixed(self.limbs()))
    }

    /// True when `bits` has the right limb count and no stray bits at or
    /// above `total_bits` — the validity check the serving layer applies
    /// to untrusted payloads.
    pub fn is_canonical(self, bits: &[u64]) -> bool {
        bits.len() == self.limbs() && Big::from_limbs(bits).bit_len() <= self.total_bits() as u64
    }

    /// The canonical flag/config token for this format: `"f128"`,
    /// `"f256"`, or `"e<exp_bits>f<frac_bits>"`. Round-trips through
    /// [`LimbFormat::from_str`](core::str::FromStr).
    pub fn canonical_name(self) -> String {
        match self {
            LimbFormat::F128 => "f128".to_string(),
            LimbFormat::F256 => "f256".to_string(),
            other => format!("e{}f{}", other.exp_bits, other.frac_bits),
        }
    }
}

/// Error returned when a wide-format token fails to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseLimbFormatError {
    token: String,
}

impl ParseLimbFormatError {
    /// The token that failed to parse.
    pub fn token(&self) -> &str {
        &self.token
    }
}

impl fmt::Display for ParseLimbFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown wide format {:?} (expected f128, f256 or e<exp>f<frac> within \
             2..=24 exponent and 2..=4096 fraction bits)",
            self.token
        )
    }
}

impl std::error::Error for ParseLimbFormatError {}

impl core::str::FromStr for LimbFormat {
    type Err = ParseLimbFormatError;

    /// Parse the canonical token grammar emitted by
    /// [`LimbFormat::canonical_name`], plus the scalar shorthands
    /// (`"f32"`, `"f48"`, `"f64"`) as their one-limb embeddings.
    fn from_str(s: &str) -> Result<LimbFormat, ParseLimbFormatError> {
        let err = || ParseLimbFormatError {
            token: s.to_string(),
        };
        match s {
            "f128" => Ok(LimbFormat::F128),
            "f256" => Ok(LimbFormat::F256),
            _ => {
                if let Ok(fp) = s.parse::<FpFormat>() {
                    return Ok(LimbFormat::from_fp(fp));
                }
                let rest = s.strip_prefix('e').ok_or_else(err)?;
                let (e, f) = rest.split_once('f').ok_or_else(err)?;
                let exp: u32 = e.parse().map_err(|_| err())?;
                let frac: u32 = f.parse().map_err(|_| err())?;
                LimbFormat::try_new(exp, frac).ok_or_else(err)
            }
        }
    }
}

impl fmt::Debug for LimbFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LimbFormat({}-bit: 1+{}+{}, {} limbs)",
            self.total_bits(),
            self.exp_bits,
            self.frac_bits,
            self.limbs()
        )
    }
}

impl fmt::Display for LimbFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.total_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f128_matches_ieee754_quad() {
        let f = LimbFormat::F128;
        assert_eq!(f.total_bits(), 128);
        assert_eq!(f.limbs(), 2);
        assert_eq!(f.bias(), 16383);
        assert_eq!(f.min_exp(), -16382);
        assert_eq!(f.max_exp(), 16383);
        assert_eq!(f.pos_inf(), vec![0, 0x7fff_0000_0000_0000]);
        assert_eq!(f.max_finite(), vec![u64::MAX, 0x7ffe_ffff_ffff_ffff]);
        assert_eq!(f.quiet_nan(), vec![0, 0x7fff_8000_0000_0000]);
    }

    #[test]
    fn f256_matches_ieee754_octuple() {
        let f = LimbFormat::F256;
        assert_eq!(f.total_bits(), 256);
        assert_eq!(f.limbs(), 4);
        assert_eq!(f.bias(), 262143);
        assert_eq!(f.sig_bits(), 237);
    }

    #[test]
    fn pack_unpack_roundtrip_wide() {
        let f = LimbFormat::F128;
        let frac = Big::from_limbs(&[0x1234_5678_9abc_def0, 0xffff_8765_4321]);
        let bits = f.pack(true, 0x3fff, &frac);
        let (s, e, m) = f.unpack_fields(&bits);
        assert!(s);
        assert_eq!(e, 0x3fff);
        assert_eq!(m, frac);
    }

    #[test]
    fn narrow_embedding_matches_scalar_fields() {
        for fp in [FpFormat::SINGLE, FpFormat::FP48, FpFormat::DOUBLE] {
            let lf = LimbFormat::from_fp(fp);
            assert_eq!(lf.limbs(), 1);
            assert_eq!(lf.to_fp(), Some(fp));
            assert_eq!(lf.bias(), fp.bias() as i64);
            assert_eq!(lf.min_exp(), fp.min_exp() as i64);
            assert_eq!(lf.max_exp(), fp.max_exp() as i64);
            assert_eq!(lf.pos_inf(), vec![fp.pos_inf()]);
            assert_eq!(lf.max_finite(), vec![fp.max_finite()]);
            let bits = 0x3f80_1234u64 & fp.enc_mask();
            let (s, e, m) = lf.unpack_fields(&[bits]);
            let (s2, e2, m2) = fp.unpack_fields(bits);
            assert_eq!((s, e, m.low_u64()), (s2, e2, m2));
        }
    }

    #[test]
    fn canonical_name_round_trips() {
        for fmt in [
            LimbFormat::F128,
            LimbFormat::F256,
            LimbFormat::new(20, 1000),
            LimbFormat::new(5, 11),
        ] {
            let token = fmt.canonical_name();
            assert_eq!(token.parse::<LimbFormat>().unwrap(), fmt, "token {token}");
        }
        assert_eq!(LimbFormat::F128.canonical_name(), "f128");
        assert_eq!(LimbFormat::F256.canonical_name(), "f256");
        // Scalar shorthands embed as one-limb formats.
        assert_eq!(
            "f64".parse::<LimbFormat>().unwrap(),
            LimbFormat::from_fp(FpFormat::DOUBLE)
        );
    }

    #[test]
    fn parse_rejects_bad_tokens() {
        for bad in ["", "f", "f127", "e25f100", "e8f5000", "e8", "x128"] {
            let e = bad.parse::<LimbFormat>().unwrap_err();
            assert_eq!(e.token(), bad);
        }
    }

    #[test]
    fn is_canonical_checks_width_and_stray_bits() {
        let f = LimbFormat::F128;
        assert!(f.is_canonical(&[0, 0]));
        assert!(f.is_canonical(&f.max_finite()));
        assert!(!f.is_canonical(&[0]));
        assert!(!f.is_canonical(&[0, 0, 0]));
        // A 100-bit format leaves headroom in the top limb.
        let g = LimbFormat::new(15, 84);
        assert_eq!(g.total_bits(), 100);
        assert!(g.is_canonical(&[0, 1 << 35]));
        assert!(!g.is_canonical(&[0, 1 << 36]));
    }
}
