//! Fixed-purpose multi-limb unsigned integers for the wide-mantissa
//! datapath.
//!
//! `Big` is a little-endian vector of `u64` limbs with value semantics —
//! just enough arithmetic for the limb kernels (schoolbook multiply,
//! boundary-safe shifts with sticky collapse, compare/add/subtract) and
//! nothing more. It is deliberately not a general bignum library: no
//! signs, no division, no allocation-free fast paths. The serving-layer
//! kernels wrap it; the `BigFloat` oracle reuses it so the two sides
//! share only *integer* arithmetic, never rounding decisions.
//!
//! Invariant: the limb vector never ends in a zero limb (zero is the
//! empty vector), so `bit_len` and comparisons are O(1) at the top.

/// Little-endian multi-limb unsigned integer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Big {
    limbs: Vec<u64>,
}

impl Big {
    /// The value 0 (empty limb vector).
    pub fn zero() -> Big {
        Big { limbs: Vec::new() }
    }

    /// A single-limb value.
    pub fn from_u64(x: u64) -> Big {
        if x == 0 {
            Big::zero()
        } else {
            Big { limbs: vec![x] }
        }
    }

    /// From little-endian limbs (trailing zero limbs trimmed).
    pub fn from_limbs(limbs: &[u64]) -> Big {
        let mut v = limbs.to_vec();
        while v.last() == Some(&0) {
            v.pop();
        }
        Big { limbs: v }
    }

    /// Little-endian limbs, zero-padded or trimmed to exactly `n` limbs.
    /// The value must fit (checked by debug assertion).
    pub fn to_limbs_fixed(&self, n: usize) -> Vec<u64> {
        debug_assert!(self.limbs.len() <= n, "value wider than {n} limbs");
        let mut v = self.limbs.clone();
        v.resize(n, 0);
        v
    }

    /// True for the value 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Position of the most significant set bit plus one (0 for zero) —
    /// the multi-limb `lzcnt` complement the normalizer uses.
    pub fn bit_len(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64) * 64 - top.leading_zeros() as u64,
        }
    }

    /// Bit `i` (false beyond the top).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / 64) as usize;
        match self.limbs.get(limb) {
            Some(&w) => w >> (i % 64) & 1 == 1,
            None => false,
        }
    }

    /// True if any bit strictly below position `n` is set.
    pub fn low_bits_any(&self, n: u64) -> bool {
        let full = (n / 64) as usize;
        let rem = n % 64;
        for &w in self.limbs.iter().take(full) {
            if w != 0 {
                return true;
            }
        }
        if rem != 0 {
            if let Some(&w) = self.limbs.get(full) {
                if w & ((1u64 << rem) - 1) != 0 {
                    return true;
                }
            }
        }
        false
    }

    /// True when bit 0 is set.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|&w| w & 1 == 1)
    }

    /// Low 64 bits (0 for zero).
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: u64) -> Big {
        if self.is_zero() || n == 0 {
            return self.clone();
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = (n % 64) as u32;
        let mut out = vec![0u64; self.limbs.len() + limb_shift + 1];
        for (i, &w) in self.limbs.iter().enumerate() {
            out[i + limb_shift] |= w << bit_shift;
            if bit_shift != 0 {
                out[i + limb_shift + 1] |= w >> (64 - bit_shift);
            }
        }
        Big::from_limbs(&out)
    }

    /// Right shift by `n` bits, ORing every shifted-out bit into a sticky
    /// flag — the multi-limb mirror of
    /// [`crate::round::shift_right_sticky`]. Shift counts at or beyond
    /// the value's width return `(0, self != 0)`; `n` is a `u64` so even
    /// exponent-difference shifts near `2^32` cannot wrap.
    pub fn shr_sticky(&self, n: u64) -> (Big, bool) {
        if n == 0 {
            return (self.clone(), false);
        }
        if n >= self.bit_len() {
            return (Big::zero(), !self.is_zero());
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = (n % 64) as u32;
        let mut sticky = self.limbs[..limb_shift].iter().any(|&w| w != 0);
        if bit_shift != 0 {
            sticky |= self.limbs[limb_shift] & ((1u64 << bit_shift) - 1) != 0;
        }
        let mut out = vec![0u64; self.limbs.len() - limb_shift];
        for i in limb_shift..self.limbs.len() {
            let mut w = self.limbs[i] >> bit_shift;
            if bit_shift != 0 && i + 1 < self.limbs.len() {
                w |= self.limbs[i + 1] << (64 - bit_shift);
            }
            out[i - limb_shift] = w;
        }
        (Big::from_limbs(&out), sticky)
    }

    /// The low `n` bits as a value (the guard/round/sticky tail).
    pub fn mask_low(&self, n: u64) -> Big {
        let full = ((n / 64) as usize).min(self.limbs.len());
        let rem = n % 64;
        let mut out = self.limbs[..full].to_vec();
        if rem != 0 {
            if let Some(&w) = self.limbs.get(full) {
                out.push(w & ((1u64 << rem) - 1));
            }
        }
        Big::from_limbs(&out)
    }

    /// Set bit 0 when `jam` is true (the sticky jam of the alignment
    /// shifter).
    pub fn jam(&self, jam: bool) -> Big {
        if !jam {
            return self.clone();
        }
        let mut v = self.limbs.clone();
        if v.is_empty() {
            v.push(1);
        } else {
            v[0] |= 1;
        }
        Big { limbs: v }
    }

    /// `self + other`.
    pub fn add(&self, other: &Big) -> Big {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        Big::from_limbs(&out)
    }

    /// `self + small`.
    pub fn add_u64(&self, small: u64) -> Big {
        self.add(&Big::from_u64(small))
    }

    /// `self − other`; requires `self ≥ other` (checked by debug
    /// assertion, mirroring the adder's swap contract).
    pub fn sub(&self, other: &Big) -> Big {
        debug_assert!(
            self.cmp(other) != core::cmp::Ordering::Less,
            "sub underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        Big::from_limbs(&out)
    }

    /// Schoolbook limb product — each `u64 × u64` partial product lands
    /// in a `u128` accumulator column, exactly the BMULT partial-product
    /// array the fabric model prices.
    pub fn mul(&self, other: &Big) -> Big {
        if self.is_zero() || other.is_zero() {
            return Big::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let acc = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = acc as u64;
                carry = acc >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let acc = out[k] as u128 + carry;
                out[k] = acc as u64;
                carry = acc >> 64;
                k += 1;
            }
        }
        Big::from_limbs(&out)
    }

    /// Bitwise OR.
    pub fn or(&self, other: &Big) -> Big {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(
                self.limbs.get(i).copied().unwrap_or(0) | other.limbs.get(i).copied().unwrap_or(0),
            );
        }
        Big::from_limbs(&out)
    }
}

impl Ord for Big {
    /// Magnitude comparison; the trimmed-limbs invariant makes the
    /// length compare decisive before any limb is inspected.
    fn cmp(&self, other: &Big) -> core::cmp::Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for i in (0..self.limbs.len()).rev() {
            if self.limbs[i] != other.limbs[i] {
                return self.limbs[i].cmp(&other.limbs[i]);
            }
        }
        core::cmp::Ordering::Equal
    }
}

impl PartialOrd for Big {
    fn partial_cmp(&self, other: &Big) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_empty_and_bit_len_zero() {
        assert!(Big::zero().is_zero());
        assert_eq!(Big::zero().bit_len(), 0);
        assert_eq!(Big::from_limbs(&[0, 0, 0]), Big::zero());
    }

    #[test]
    fn bit_len_counts_across_limbs() {
        assert_eq!(Big::from_u64(1).bit_len(), 1);
        assert_eq!(Big::from_u64(u64::MAX).bit_len(), 64);
        assert_eq!(Big::from_limbs(&[0, 1]).bit_len(), 65);
        assert_eq!(Big::from_limbs(&[u64::MAX, 1 << 10]).bit_len(), 75);
    }

    #[test]
    fn shl_crosses_limb_boundaries() {
        let x = Big::from_u64(0b1011);
        assert_eq!(x.shl(62).to_limbs_fixed(2), vec![0b11 << 62, 0b10]);
        assert_eq!(x.shl(64).to_limbs_fixed(2), vec![0, 0b1011]);
        assert_eq!(x.shl(0), x);
    }

    #[test]
    fn mul_matches_u128() {
        let cases = [
            (0x1234_5678_9abc_def0u64, 0xfedc_ba98_7654_3210u64),
            (u64::MAX, u64::MAX),
            (1, u64::MAX),
            (0, 12345),
        ];
        for (a, b) in cases {
            let p = a as u128 * b as u128;
            let got = Big::from_u64(a).mul(&Big::from_u64(b));
            assert_eq!(got.to_limbs_fixed(2), vec![p as u64, (p >> 64) as u64]);
        }
    }

    #[test]
    fn add_sub_roundtrip_with_carries() {
        let a = Big::from_limbs(&[u64::MAX, u64::MAX, 1]);
        let b = Big::from_limbs(&[1, u64::MAX]);
        let s = a.add(&b);
        assert_eq!(s.sub(&b), a);
        assert_eq!(s.sub(&a), b);
        assert_eq!(Big::from_u64(u64::MAX).add_u64(1), Big::from_limbs(&[0, 1]));
    }

    #[test]
    fn mask_and_low_bits() {
        let x = Big::from_limbs(&[0xff00, 0b101]);
        assert!(x.low_bits_any(9));
        assert!(!x.low_bits_any(8));
        assert_eq!(x.mask_low(16), Big::from_u64(0xff00));
        assert_eq!(x.mask_low(65), Big::from_limbs(&[0xff00, 1]));
        assert!(x.bit(64) && !x.bit(65) && x.bit(66));
        assert!(!x.bit(1000));
    }
}
