//! Wide add/sub/mul/fma — the limb mirror of the full-IEEE scalar ops in
//! [`crate::ieee`], stage for stage:
//!
//! 1. **Denormalize / pre-shift** — unpack with pre-normalized denormals,
//!    swap on exponent, align the smaller significand with a sticky
//!    collapse across limbs;
//! 2. **Significand arithmetic** — multi-limb fixed-point add/sub, or the
//!    schoolbook limb-product array for multiplication;
//! 3. **Normalize / round** — multi-limb lzcnt, shift the leading one to
//!    the hidden position, round once in `limb_round_pack`.
//!
//! Because each stage performs the same exact computation as its scalar
//! counterpart (same guard-bit counts, same sticky jams, same rounding
//! boundary), one-limb formats produce bit-identical results and flags —
//! property-tested in `tests/limb_vs_scalar.rs` and swept exhaustively
//! against the `BigFloat` oracle for tiny formats.

use crate::exceptions::Flags;
use crate::limb::big::Big;
use crate::limb::format::LimbFormat;
use crate::limb::round::limb_round_pack;
use crate::limb::unpacked::{limb_propagate_nan, LimbClass, LimbUnpacked};
use crate::round::RoundMode;

/// Guard/round/sticky bits carried through the adder datapath (same
/// count as the scalar adder's [`crate::ops::add::GRS_BITS`]).
const GRS_BITS: u64 = 3;

/// Guard bits below the product frame in the fused multiply-add (same
/// count as the scalar [`crate::ops::fma::FMA_GRS`]).
const FMA_GRS: u64 = 3;

fn pack_inf(fmt: LimbFormat, sign: bool) -> Vec<u64> {
    if sign {
        fmt.neg_inf()
    } else {
        fmt.pos_inf()
    }
}

fn pack_zero(fmt: LimbFormat, sign: bool) -> Vec<u64> {
    fmt.pack(sign, 0, &Big::zero())
}

/// Wide IEEE addition with gradual underflow and NaN propagation.
pub fn limb_add(fmt: LimbFormat, a: &[u64], b: &[u64], mode: RoundMode) -> (Vec<u64>, Flags) {
    let ua = LimbUnpacked::from_bits(fmt, a);
    let ub = LimbUnpacked::from_bits(fmt, b);
    use LimbClass::*;
    match (ua.class, ub.class) {
        (Nan, _) | (_, Nan) => return limb_propagate_nan(fmt, &[a, b]),
        (Inf, Inf) => {
            return if ua.sign == ub.sign {
                (pack_inf(fmt, ua.sign), Flags::NONE)
            } else {
                (fmt.quiet_nan(), Flags::invalid())
            };
        }
        (Inf, _) => return (pack_inf(fmt, ua.sign), Flags::NONE),
        (_, Inf) => return (pack_inf(fmt, ub.sign), Flags::NONE),
        (Zero, Zero) => return (pack_zero(fmt, ua.sign && ub.sign), Flags::NONE),
        (Zero, _) => return (b.to_vec(), Flags::NONE),
        (_, Zero) => return (a.to_vec(), Flags::NONE),
        _ => {}
    }

    // Stage 1: swap so `hi` has the larger (exp, sig), then align `lo` by
    // the exponent difference with a sticky jam.
    let (hi, lo) = if (ua.exp, ua.sig.cmp(&ub.sig)) >= (ub.exp, core::cmp::Ordering::Equal) {
        (&ua, &ub)
    } else {
        (&ub, &ua)
    };
    let diff = (hi.exp - lo.exp) as u64;
    let hi_sig = hi.sig.shl(GRS_BITS);
    let (lo_aligned, sticky) = lo.sig.shl(GRS_BITS).shr_sticky(diff);
    let lo_full = lo_aligned.jam(sticky);

    let (mag, sign, exp) = if ua.sign == ub.sign {
        (hi_sig.add(&lo_full), hi.sign, hi.exp)
    } else {
        let d = hi_sig.sub(&lo_full);
        if d.is_zero() {
            // Exact cancellation: +0 under both supported modes.
            return (pack_zero(fmt, false), Flags::NONE);
        }
        (d, hi.sign, hi.exp)
    };

    // Stages 2b/3: pre-normalize a carry-out (sticky-preserving jam),
    // then bring the leading one up with the multi-limb lzcnt.
    let hidden = fmt.frac_bits() as u64 + GRS_BITS;
    let (mut mag, mut exp) = (mag, exp);
    if mag.bit_len() > hidden + 1 {
        let lsb = mag.is_odd();
        let (m, _) = mag.shr_sticky(1);
        mag = m.jam(lsb);
        exp += 1;
    }
    let msb = mag.bit_len() - 1;
    if msb < hidden {
        let shift = hidden - msb;
        mag = mag.shl(shift);
        exp -= shift as i64;
    }
    limb_round_pack(fmt, sign, exp, mag, GRS_BITS, mode)
}

/// Wide IEEE subtraction (sign-flip of the second operand).
pub fn limb_sub(fmt: LimbFormat, a: &[u64], b: &[u64], mode: RoundMode) -> (Vec<u64>, Flags) {
    let mut nb = b.to_vec();
    let top = fmt.total_bits() as u64 - 1;
    nb[(top / 64) as usize] ^= 1u64 << (top % 64);
    limb_add(fmt, a, &nb, mode)
}

/// Wide IEEE multiplication: schoolbook limb products, then one rounding.
pub fn limb_mul(fmt: LimbFormat, a: &[u64], b: &[u64], mode: RoundMode) -> (Vec<u64>, Flags) {
    let ua = LimbUnpacked::from_bits(fmt, a);
    let ub = LimbUnpacked::from_bits(fmt, b);
    let sign = ua.sign ^ ub.sign;
    use LimbClass::*;
    match (ua.class, ub.class) {
        (Nan, _) | (_, Nan) => return limb_propagate_nan(fmt, &[a, b]),
        (Zero, Inf) | (Inf, Zero) => return (fmt.quiet_nan(), Flags::invalid()),
        (Inf, _) | (_, Inf) => return (pack_inf(fmt, sign), Flags::NONE),
        (Zero, _) | (_, Zero) => return (pack_zero(fmt, sign), Flags::NONE),
        _ => {}
    }

    let product = ua.sig.mul(&ub.sig);
    let exp = ua.exp + ub.exp;
    let f = fmt.frac_bits() as u64;
    let (aligned, exp) = if product.bit_len() > 2 * f + 1 {
        (product, exp + 1)
    } else {
        (product.shl(1), exp)
    };
    limb_round_pack(fmt, sign, exp, aligned, f + 1, mode)
}

/// Wide IEEE fused multiply-add `a·b + c` with a single rounding.
///
/// NaN propagation takes precedence over the 0×∞ invalid check, matching
/// the scalar [`crate::ieee::ieee_fma`].
pub fn limb_fma(
    fmt: LimbFormat,
    a: &[u64],
    b: &[u64],
    c: &[u64],
    mode: RoundMode,
) -> (Vec<u64>, Flags) {
    let ua = LimbUnpacked::from_bits(fmt, a);
    let ub = LimbUnpacked::from_bits(fmt, b);
    let uc = LimbUnpacked::from_bits(fmt, c);
    let psign = ua.sign ^ ub.sign;
    use LimbClass::*;

    if ua.class == Nan || ub.class == Nan || uc.class == Nan {
        return limb_propagate_nan(fmt, &[a, b, c]);
    }
    match (ua.class, ub.class) {
        (Zero, Inf) | (Inf, Zero) => return (fmt.quiet_nan(), Flags::invalid()),
        (Inf, _) | (_, Inf) => {
            return match uc.class {
                Inf if uc.sign != psign => (fmt.quiet_nan(), Flags::invalid()),
                _ => (pack_inf(fmt, psign), Flags::NONE),
            };
        }
        _ => {}
    }
    if uc.class == Inf {
        return (pack_inf(fmt, uc.sign), Flags::NONE);
    }
    if ua.is_zero() || ub.is_zero() {
        // Exact product zero: the result is c, with +0 on signed-zero
        // cancellation.
        return if uc.is_zero() {
            (pack_zero(fmt, psign && uc.sign), Flags::NONE)
        } else {
            (c.to_vec(), Flags::NONE)
        };
    }
    if uc.is_zero() {
        // Adding ±0 to the exact non-zero product changes nothing.
        return limb_mul(fmt, a, b, mode);
    }

    // Same three-branch anchoring as the scalar fma, on arbitrary-width
    // frames.
    let f = fmt.frac_bits() as u64;
    let product = ua.sig.mul(&ub.sig);
    let pexp = ua.exp + ub.exp;
    let shift = (uc.exp - pexp) + f as i64;
    let c_wide = uc.sig.shl(FMA_GRS);
    let prod_wide = product.shl(FMA_GRS);

    let (mag, sign, e_lsb, is_zero) = if shift > (f + 2) as i64 {
        // c dominates: anchor on c and shift the product down with a
        // sticky jam.
        let (p_aligned, lost) = prod_wide.shr_sticky(shift as u64);
        let (m, sg, z) = combine(c_wide, uc.sign, p_aligned.jam(lost), psign);
        (m, sg, uc.exp - (f + FMA_GRS) as i64, z)
    } else if shift >= 0 {
        // Overlap: c fits in the product-anchored frame.
        let c_aligned = c_wide.shl(shift as u64);
        let (m, sg, z) = combine(prod_wide, psign, c_aligned, uc.sign);
        (m, sg, pexp - (2 * f + FMA_GRS) as i64, z)
    } else {
        // Product dominates: c shifts down with a sticky jam.
        let (c_aligned, lost) = c_wide.shr_sticky((-shift) as u64);
        let (m, sg, z) = combine(prod_wide, psign, c_aligned.jam(lost), uc.sign);
        (m, sg, pexp - (2 * f + FMA_GRS) as i64, z)
    };
    if is_zero {
        return (pack_zero(fmt, false), Flags::NONE);
    }

    let msb = mag.bit_len() - 1;
    let exp_val = e_lsb + msb as i64;
    let (mag, grs) = if msb > f {
        (mag, msb - f)
    } else {
        // Deep cancellation (necessarily exact): lift the hidden bit.
        (mag.shl(f + 1 - msb), 1)
    };
    limb_round_pack(fmt, sign, exp_val, mag, grs, mode)
}

/// Signed combine of two magnitudes in the same frame: the result
/// magnitude, its sign, and whether an effective subtraction cancelled
/// exactly.
fn combine(p: Big, ps: bool, c: Big, cs: bool) -> (Big, bool, bool) {
    if ps == cs {
        (p.add(&c), ps, false)
    } else {
        match p.cmp(&c) {
            core::cmp::Ordering::Less => (c.sub(&p), cs, false),
            _ => {
                let d = p.sub(&c);
                let z = d.is_zero();
                (d, ps, z)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limb::unpacked::limb_is_nan;

    const F128: LimbFormat = LimbFormat::F128;

    /// Encode a small integer value exactly in f128.
    fn enc_int(fmt: LimbFormat, n: i64) -> Vec<u64> {
        if n == 0 {
            return fmt.zero();
        }
        let sign = n < 0;
        let mag = n.unsigned_abs();
        let msb = 63 - mag.leading_zeros() as u64;
        let frac = Big::from_u64(mag)
            .shl(fmt.frac_bits() as u64)
            .shr_sticky(msb)
            .0
            .mask_low(fmt.frac_bits() as u64);
        fmt.pack(sign, (msb as i64 + fmt.bias()) as u64, &frac)
    }

    #[test]
    fn small_integer_arithmetic_is_exact() {
        for (a, b, sum, prod) in [(2i64, 3i64, 5i64, 6i64), (7, -5, 2, -35), (-4, -4, -8, 16)] {
            let (s, f) = limb_add(
                F128,
                &enc_int(F128, a),
                &enc_int(F128, b),
                RoundMode::NearestEven,
            );
            assert_eq!(s, enc_int(F128, sum), "{a}+{b}");
            assert!(!f.any());
            let (p, f) = limb_mul(
                F128,
                &enc_int(F128, a),
                &enc_int(F128, b),
                RoundMode::NearestEven,
            );
            assert_eq!(p, enc_int(F128, prod), "{a}*{b}");
            assert!(!f.any());
        }
        let (d, f) = limb_sub(
            F128,
            &enc_int(F128, 10),
            &enc_int(F128, 14),
            RoundMode::Truncate,
        );
        assert_eq!(d, enc_int(F128, -4));
        assert!(!f.any());
    }

    #[test]
    fn fma_fuses_a_single_rounding() {
        // (1 + 2^-112)·(1 − 2^-113) − 1 = 2^-113 − 2^-225: exactly
        // representable at f128, but a mul-then-add loses it entirely
        // (the product rounds to 1, the sum to 0).
        let a = F128.pack(false, F128.bias() as u64, &Big::from_u64(1)); // 1 + 2^-112
        let b = F128.pack(
            false,
            (F128.bias() - 1) as u64,
            &Big::from_limbs(&{
                // 1 − 2^-113 = 1.111…1 × 2^-1: all-ones fraction.
                let ones = Big::from_u64(1).shl(112).sub(&Big::from_u64(1));
                ones.to_limbs_fixed(2)
            }),
        );
        let neg_one = enc_int(F128, -1);
        let (fused, flags) = limb_fma(F128, &a, &b, &neg_one, RoundMode::NearestEven);
        let u = LimbUnpacked::from_bits(F128, &fused);
        assert!(!u.sign, "residual 2^-113 − 2^-225 is positive");
        assert_eq!(u.exp, -114, "leading bit at 2^-114 after normalization");
        assert!(!flags.any(), "the residual is exactly representable");
        // Two-step version loses it entirely: the product rounds to 1.
        let (p, _) = limb_mul(F128, &a, &b, RoundMode::NearestEven);
        let (two_step, _) = limb_add(F128, &p, &neg_one, RoundMode::NearestEven);
        assert_eq!(two_step, F128.zero(), "two roundings collapse to 0");
        assert_ne!(two_step, fused, "fusion must be observable");
    }

    #[test]
    fn specials_mirror_scalar_rules() {
        let inf = F128.pos_inf();
        let ninf = F128.neg_inf();
        let zero = F128.zero();
        let one = enc_int(F128, 1);
        let (r, f) = limb_add(F128, &inf, &ninf, RoundMode::NearestEven);
        assert!(limb_is_nan(F128, &r));
        assert!(f.invalid);
        let (r, f) = limb_mul(F128, &zero, &inf, RoundMode::NearestEven);
        assert!(limb_is_nan(F128, &r));
        assert!(f.invalid);
        let (r, f) = limb_fma(F128, &zero, &inf, &F128.quiet_nan(), RoundMode::NearestEven);
        assert!(limb_is_nan(F128, &r));
        assert!(!f.invalid, "NaN propagation precedes the 0×∞ check");
        let (r, f) = limb_fma(F128, &one, &inf, &ninf, RoundMode::NearestEven);
        assert!(limb_is_nan(F128, &r));
        assert!(f.invalid, "∞ − ∞ through fma is invalid");
    }

    #[test]
    fn overflow_and_gradual_underflow_paths() {
        let max = F128.max_finite();
        let two = enc_int(F128, 2);
        let (r, f) = limb_mul(F128, &max, &two, RoundMode::NearestEven);
        assert_eq!(r, F128.pos_inf());
        assert!(f.overflow && f.inexact);
        let (r, f) = limb_mul(F128, &max, &two, RoundMode::Truncate);
        assert_eq!(r, max, "truncate saturates at max-finite");
        assert!(f.overflow);
        // min_positive / 2 → the top denormal region, exact.
        let half = F128.pack(false, (F128.bias() - 1) as u64, &Big::zero());
        let (r, f) = limb_mul(F128, &F128.min_positive(), &half, RoundMode::NearestEven);
        let u = LimbUnpacked::from_bits(F128, &r);
        assert_eq!(u.class, LimbClass::Denormal);
        assert!(!f.any(), "exact denormal result raises nothing");
    }

    #[test]
    fn gradual_underflow_keeps_tiny_differences() {
        // Two adjacent small normals: the difference is a denormal the
        // flush-to-zero cores would lose.
        let a = F128.pack(false, 1, &Big::from_u64(0x10));
        let b = F128.pack(false, 1, &Big::from_u64(0x01));
        let (r, f) = limb_sub(F128, &a, &b, RoundMode::NearestEven);
        let u = LimbUnpacked::from_bits(F128, &r);
        assert_eq!(u.class, LimbClass::Denormal);
        assert_eq!(u.sig, Big::from_u64(0xf).shl(112 - 3)); // pre-normalized
        assert!(!f.any());
    }
}
