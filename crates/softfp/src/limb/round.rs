//! Rounding for wide significands — the limb mirror of [`crate::round`]
//! and [`crate::ieee::ieee_round_pack`].
//!
//! The scalar sticky shifters guard the `n ≥ 64` / `n ≥ 128` boundary
//! explicitly (`regress_shift_sticky_boundary_counts`); the multi-limb
//! equivalents here take the shift count as a `u64` and early-out at
//! `n ≥ bit width`, so alignment shifts derived from wide-exponent
//! differences (up to 2^24 for the largest supported exponent field)
//! can never wrap or index out of range.

use crate::exceptions::Flags;
use crate::limb::big::Big;
use crate::limb::format::LimbFormat;
use crate::round::RoundMode;

/// Shift a little-endian limb significand right by `n` bits, ORing all
/// shifted-out bits into a sticky bit — the multi-limb mirror of
/// [`crate::round::shift_right_sticky`]. Shifts at or beyond the total
/// limb width return `(zeros, sig != 0)`.
pub fn shift_right_sticky_limbs(sig: &[u64], n: u64) -> (Vec<u64>, bool) {
    let (shifted, sticky) = Big::from_limbs(sig).shr_sticky(n);
    (shifted.to_limbs_fixed(sig.len()), sticky)
}

/// Deliver an overflowed wide result under the IEEE default policy:
/// round-to-nearest rounds past max-finite to ±∞; round-toward-zero
/// saturates at ±max-finite. Overflow always implies inexact.
pub fn limb_round_overflow(fmt: LimbFormat, sign: bool, mode: RoundMode) -> (Vec<u64>, Flags) {
    let bits = match mode {
        RoundMode::NearestEven => {
            if sign {
                fmt.neg_inf()
            } else {
                fmt.pos_inf()
            }
        }
        RoundMode::Truncate => {
            let mut b = fmt.max_finite();
            if sign {
                let top = fmt.total_bits() as u64 - 1;
                b[(top / 64) as usize] |= 1u64 << (top % 64);
            }
            b
        }
    };
    (bits, Flags::overflow())
}

/// Round and pack a wide magnitude with gradual underflow — the limb
/// mirror of [`crate::ieee::ieee_round_pack`], bit-identical to it for
/// one-limb formats.
///
/// `mag` is non-zero and normalized (leading one at `frac_bits + grs`);
/// `exp` is unbounded. Handles overflow (→ ±∞ or ±max-finite by mode),
/// the denormal range (right-shift with sticky collapse before rounding)
/// and tininess detected after rounding.
pub(crate) fn limb_round_pack(
    fmt: LimbFormat,
    sign: bool,
    exp: i64,
    mag: Big,
    grs: u64,
    mode: RoundMode,
) -> (Vec<u64>, Flags) {
    debug_assert!(!mag.is_zero());
    debug_assert_eq!(
        mag.bit_len() - 1,
        fmt.frac_bits() as u64 + grs,
        "not normalized"
    );

    if exp > fmt.max_exp() {
        return limb_round_overflow(fmt, sign, mode);
    }

    let denormal_path = exp < fmt.min_exp();

    // Tininess after rounding, judged *before* denormalization (see
    // `ieee_round_pack`): the only escape window is exp == min_exp − 1
    // with the unbounded rounding carrying 1.111…1 up to 2.0.
    let tiny = denormal_path
        && !(exp == fmt.min_exp() - 1 && unbounded_round_carries(fmt, &mag, grs, mode));

    // Push values below the normal range down into the denormal
    // representation; the shift can exceed the magnitude's width for
    // deeply tiny results, which the sticky shifter collapses to
    // (0, sticky).
    let mag = if denormal_path {
        let shift = (fmt.min_exp() - exp) as u64;
        let (m, lost) = mag.shr_sticky(shift);
        m.jam(lost)
    } else {
        mag
    };

    // Round at the fixed guard boundary. The kept part's hidden bit may
    // be clear on the denormal path. `tail > half` ⇔ round bit set with
    // a non-empty lower tail; `tail == half` ⇔ round bit set, lower
    // tail empty.
    let round_bit = mag.bit(grs - 1);
    let sticky_low = grs > 1 && mag.low_bits_any(grs - 1);
    let (kept, _) = mag.shr_sticky(grs);
    let inexact = round_bit || sticky_low;
    let round_up = match mode {
        RoundMode::Truncate => false,
        RoundMode::NearestEven => round_bit && (sticky_low || kept.is_odd()),
    };
    let mut rounded = if round_up { kept.add_u64(1) } else { kept };
    let mut exp = exp;
    if !denormal_path && rounded.bit(fmt.sig_bits() as u64) {
        let (r, _) = rounded.shr_sticky(1);
        rounded = r;
        exp += 1;
        if exp > fmt.max_exp() {
            return limb_round_overflow(fmt, sign, mode);
        }
    }

    let mut flags = Flags::NONE;
    flags.inexact = inexact;
    if denormal_path {
        flags.underflow = tiny && inexact;
        // Denormalized rounding can still promote the result to the
        // smallest normal (biased exponent 1); whether that counts as
        // an underflow was decided by `tiny` above.
        let bits = if rounded.bit(fmt.frac_bits() as u64) {
            fmt.pack(sign, 1, &rounded.mask_low(fmt.frac_bits() as u64))
        } else {
            fmt.pack(sign, 0, &rounded)
        };
        (bits, flags)
    } else {
        debug_assert!(rounded.bit(fmt.frac_bits() as u64));
        (
            fmt.pack(
                sign,
                (exp + fmt.bias()) as u64,
                &rounded.mask_low(fmt.frac_bits() as u64),
            ),
            flags,
        )
    }
}

/// Would rounding `mag` (leading one at `frac_bits + grs`) at the guard
/// boundary carry out of the significand? Round-toward-zero never
/// carries.
fn unbounded_round_carries(fmt: LimbFormat, mag: &Big, grs: u64, mode: RoundMode) -> bool {
    match mode {
        RoundMode::Truncate => false,
        RoundMode::NearestEven => {
            let round_bit = mag.bit(grs - 1);
            let sticky_low = grs > 1 && mag.low_bits_any(grs - 1);
            let (kept, _) = mag.shr_sticky(grs);
            let up = round_bit && (sticky_low || kept.is_odd());
            if !up {
                return false;
            }
            kept.add_u64(1).bit(fmt.sig_bits() as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round::shift_right_sticky;

    #[test]
    fn sticky_shift_matches_scalar_within_one_limb() {
        for sig in [0u64, 1, 0b1011, 1 << 63, u64::MAX, 0xdead_beef_0123_4567] {
            for n in [0u32, 1, 2, 13, 62, 63, 64, 65, 127, 1000] {
                let (want, wsticky) = shift_right_sticky(sig, n);
                let (got, gsticky) = shift_right_sticky_limbs(&[sig], n as u64);
                assert_eq!((got, gsticky), (vec![want], wsticky), "sig={sig:#x} n={n}");
            }
        }
    }

    #[test]
    fn regress_limb_shift_sticky_at_and_beyond_total_width() {
        // The multi-limb mirror of `regress_shift_sticky_boundary_counts`:
        // shift counts at the limb boundary, at the total width, one past
        // it, and absurdly past it (including counts that would wrap a
        // u32 shifter) must neither panic nor lose the sticky.
        let x = vec![u64::MAX, u64::MAX, u64::MAX]; // 192 bits, all ones
        for n in [191u64, 192, 193, 256, u32::MAX as u64, u64::MAX / 2] {
            let (got, sticky) = shift_right_sticky_limbs(&x, n);
            if n >= 192 {
                assert_eq!(got, vec![0, 0, 0], "n={n}");
                assert!(sticky, "n={n}");
            } else {
                assert_eq!(got, vec![1, 0, 0], "n={n}");
                assert!(sticky, "n={n}");
            }
        }
        let (got, sticky) = shift_right_sticky_limbs(&[0, 0, 0], u64::MAX);
        assert_eq!(got, vec![0, 0, 0]);
        assert!(!sticky, "zero has nothing to lose");
        // Exactly one bit at the top: width−1 keeps it, width loses it.
        let top = vec![0u64, 0, 1 << 63];
        assert_eq!(shift_right_sticky_limbs(&top, 191), (vec![1, 0, 0], false));
        assert_eq!(shift_right_sticky_limbs(&top, 192), (vec![0, 0, 0], true));
        // Limb-boundary counts keep whole-limb moves exact.
        let two = vec![0b11u64, 0, 1];
        assert_eq!(
            shift_right_sticky_limbs(&two, 64),
            (vec![0, 1, 0], true),
            "low limb collapses to sticky"
        );
        assert_eq!(shift_right_sticky_limbs(&two, 128), (vec![1, 0, 0], true));
    }

    #[test]
    fn regress_limb_round_overflow_truncate_packs_max_finite() {
        // ±max-finite under truncation, ±∞ under nearest — for wide
        // formats whose sign bit sits mid-limb as well as at a limb edge.
        for fmt in [
            LimbFormat::F128,
            LimbFormat::F256,
            LimbFormat::new(15, 84), // 100 bits: sign at bit 35 of limb 1
        ] {
            for sign in [false, true] {
                let (bits, f) = limb_round_overflow(fmt, sign, RoundMode::Truncate);
                let (s, e, m) = fmt.unpack_fields(&bits);
                assert_eq!(s, sign, "{fmt:?}");
                assert_eq!(e, fmt.max_biased_exp());
                assert_eq!(m.bit_len(), fmt.frac_bits() as u64, "all-ones fraction");
                assert!(m.low_bits_any(fmt.frac_bits() as u64 - 1));
                assert!(f.overflow && f.inexact);

                let (bits, f) = limb_round_overflow(fmt, sign, RoundMode::NearestEven);
                let want = if sign { fmt.neg_inf() } else { fmt.pos_inf() };
                assert_eq!(bits, want);
                assert!(f.overflow && f.inexact);
            }
        }
    }

    #[test]
    fn deep_denormal_shift_collapses_to_sticky_zero() {
        // A result so far below the denormal range that the
        // denormalization shift exceeds the magnitude's entire width must
        // round to ±0 (Truncate) or the smallest denormal boundary rules
        // (NearestEven), with underflow + inexact — not panic.
        let fmt = LimbFormat::F128;
        let mag = Big::from_u64(1).shl(fmt.frac_bits() as u64 + 3); // 1.000… with grs=3
        let exp = fmt.min_exp() - 200_000; // far beyond min_exp − frac_bits
        let (bits, f) = limb_round_pack(fmt, false, exp, mag.clone(), 3, RoundMode::Truncate);
        assert_eq!(bits, fmt.zero());
        assert!(f.underflow && f.inexact);
        let (bits, f) = limb_round_pack(fmt, true, exp, mag, 3, RoundMode::NearestEven);
        assert_eq!(bits, fmt.pack(true, 0, &Big::zero()));
        assert!(f.underflow && f.inexact);
    }

    #[test]
    fn wide_tie_rounds_to_even() {
        let fmt = LimbFormat::F128;
        let f = fmt.frac_bits() as u64;
        // 1.000…01 (odd LSB) + exactly half an ulp → rounds up to even.
        let mag = Big::from_u64(1).shl(f + 3).or(&Big::from_u64(0b1100)); // sig…01 | tail=100
        let (bits, flags) = limb_round_pack(fmt, false, 0, mag, 3, RoundMode::NearestEven);
        let (_, e, m) = fmt.unpack_fields(&bits);
        assert_eq!(e, fmt.bias() as u64);
        assert_eq!(m, Big::from_u64(2));
        assert!(flags.inexact);
        // Even LSB + exactly half → stays.
        let mag = Big::from_u64(1).shl(f + 3).or(&Big::from_u64(0b10100));
        let (bits, _) = limb_round_pack(fmt, false, 0, mag, 3, RoundMode::NearestEven);
        let (_, _, m) = fmt.unpack_fields(&bits);
        assert_eq!(m, Big::from_u64(2));
    }

    #[test]
    fn carry_out_of_all_ones_significand_bumps_exponent() {
        let fmt = LimbFormat::F256;
        let f = fmt.frac_bits() as u64;
        // 1.111…1 with tail > half: rounds up to 10.000…0.
        let all_ones = Big::from_u64(1).shl(f + 1).sub(&Big::from_u64(1));
        let mag = all_ones.shl(3).or(&Big::from_u64(0b101));
        let (bits, flags) = limb_round_pack(fmt, false, 0, mag, 3, RoundMode::NearestEven);
        let (_, e, m) = fmt.unpack_fields(&bits);
        assert_eq!(e, fmt.bias() as u64 + 1);
        assert!(m.is_zero());
        assert!(flags.inexact && !flags.overflow);
    }
}
