//! Wide operands unpacked with full IEEE semantics.
//!
//! The limb mirror of [`crate::ieee::IeeeUnpacked`]: denormals are
//! *pre-normalized* (leading one lifted to the hidden position, the
//! unbounded exponent absorbing the shift via a multi-limb lzcnt) so the
//! arithmetic core handles normals and denormals uniformly.

use crate::exceptions::Flags;
use crate::limb::big::Big;
use crate::limb::format::LimbFormat;

/// Operand classification (same classes as [`crate::ieee::IeeeClass`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LimbClass {
    /// ±0.
    Zero,
    /// A denormal (kept, not flushed).
    Denormal,
    /// A normal number.
    Normal,
    /// ±∞.
    Inf,
    /// Any NaN encoding.
    Nan,
}

/// A wide operand unpacked with gradual-underflow and NaN awareness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LimbUnpacked {
    /// Sign bit.
    pub sign: bool,
    /// Unbiased exponent; for denormals this lies below `fmt.min_exp()`.
    pub exp: i64,
    /// Significand with the leading one at `fmt.frac_bits()` (zero for
    /// zeros/specials).
    pub sig: Big,
    /// Classification.
    pub class: LimbClass,
}

impl LimbUnpacked {
    /// Decode a limb encoding.
    pub fn from_bits(fmt: LimbFormat, bits: &[u64]) -> LimbUnpacked {
        let (sign, biased, frac) = fmt.unpack_fields(bits);
        if biased == fmt.inf_biased_exp() {
            let class = if frac.is_zero() {
                LimbClass::Inf
            } else {
                LimbClass::Nan
            };
            LimbUnpacked {
                sign,
                exp: 0,
                sig: Big::zero(),
                class,
            }
        } else if biased == 0 {
            if frac.is_zero() {
                LimbUnpacked {
                    sign,
                    exp: 0,
                    sig: Big::zero(),
                    class: LimbClass::Zero,
                }
            } else {
                // Denormal: value = frac · 2^(min_exp − frac_bits).
                // Normalize so the arithmetic sees a hidden-bit form.
                let shift = fmt.frac_bits() as u64 + 1 - frac.bit_len();
                LimbUnpacked {
                    sign,
                    exp: fmt.min_exp() - shift as i64,
                    sig: frac.shl(shift),
                    class: LimbClass::Denormal,
                }
            }
        } else {
            LimbUnpacked {
                sign,
                exp: biased as i64 - fmt.bias(),
                sig: frac.or(&Big::from_u64(1).shl(fmt.frac_bits() as u64)),
                class: LimbClass::Normal,
            }
        }
    }

    /// True for zero.
    pub fn is_zero(&self) -> bool {
        self.class == LimbClass::Zero
    }

    /// True for a finite non-zero number (normal or denormal).
    pub fn is_finite_nonzero(&self) -> bool {
        matches!(self.class, LimbClass::Normal | LimbClass::Denormal)
    }
}

/// True if `bits` encodes any NaN.
pub fn limb_is_nan(fmt: LimbFormat, bits: &[u64]) -> bool {
    let (_, biased, frac) = fmt.unpack_fields(bits);
    biased == fmt.inf_biased_exp() && !frac.is_zero()
}

/// True if `bits` encodes a signaling NaN (NaN with the quiet bit — the
/// fraction MSB — clear).
pub fn limb_is_signaling(fmt: LimbFormat, bits: &[u64]) -> bool {
    limb_is_nan(fmt, bits) && !Big::from_limbs(bits).bit(fmt.frac_bits() as u64 - 1)
}

/// IEEE 754-2019 §6.2 NaN propagation: the result is the first NaN
/// operand (in argument order) with its quiet bit set, sign and payload
/// preserved; `invalid` is raised iff any operand is signaling.
///
/// Must be called with at least one NaN among `operands`.
pub fn limb_propagate_nan(fmt: LimbFormat, operands: &[&[u64]]) -> (Vec<u64>, Flags) {
    let mut flags = Flags::NONE;
    let mut first = None;
    for &x in operands {
        if limb_is_nan(fmt, x) {
            if limb_is_signaling(fmt, x) {
                flags.invalid = true;
            }
            if first.is_none() {
                first = Some(x);
            }
        }
    }
    let nan = first.expect("limb_propagate_nan requires a NaN operand");
    let quieted = Big::from_limbs(nan).or(&Big::from_u64(1).shl(fmt.frac_bits() as u64 - 1));
    (quieted.to_limbs_fixed(fmt.limbs()), flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpack_wide_denormal_is_normalized() {
        let f = LimbFormat::F128;
        // Smallest f128 denormal = 2^(−16382 − 112).
        let u = LimbUnpacked::from_bits(f, &f.min_denormal());
        assert_eq!(u.class, LimbClass::Denormal);
        assert_eq!(u.exp, -16382 - 112);
        assert_eq!(u.sig, Big::from_u64(1).shl(112));
    }

    #[test]
    fn unpack_wide_normal_sets_hidden_bit() {
        let f = LimbFormat::F128;
        let one = f.pack(false, f.bias() as u64, &Big::zero());
        let u = LimbUnpacked::from_bits(f, &one);
        assert_eq!(u.class, LimbClass::Normal);
        assert_eq!(u.exp, 0);
        assert_eq!(u.sig, Big::from_u64(1).shl(112));
    }

    #[test]
    fn nan_classification_and_quieting() {
        let f = LimbFormat::F256;
        assert!(limb_is_nan(f, &f.quiet_nan()));
        assert!(!limb_is_signaling(f, &f.quiet_nan()));
        assert!(!limb_is_nan(f, &f.pos_inf()));
        // Signaling NaN: payload below the quiet bit.
        let snan = f.pack(true, f.inf_biased_exp(), &Big::from_u64(0x17));
        assert!(limb_is_signaling(f, &snan));
        let (q, flags) = limb_propagate_nan(f, &[&snan]);
        assert!(flags.invalid);
        assert!(limb_is_nan(f, &q) && !limb_is_signaling(f, &q));
        // Sign and payload survive quieting.
        let (sg, e, frac) = f.unpack_fields(&q);
        assert!(sg);
        assert_eq!(e, f.inf_biased_exp());
        assert_eq!(
            frac,
            Big::from_u64(0x17).or(&Big::from_u64(1).shl(f.frac_bits() as u64 - 1))
        );
    }

    #[test]
    fn first_nan_operand_wins() {
        let f = LimbFormat::F128;
        let qnan_a = f.pack(
            true,
            f.inf_biased_exp(),
            &Big::from_limbs(&[0x123, 1 << 47]),
        );
        let qnan_b = f.quiet_nan();
        let inf = f.pos_inf();
        let (r, flags) = limb_propagate_nan(f, &[&inf, &qnan_a, &qnan_b]);
        assert_eq!(r, qnan_a);
        assert!(!flags.any(), "quiet propagation raises nothing");
    }
}
