//! `SoftFloat` — an ergonomic (format, bits) pair.
//!
//! The raw-bits API in `ops` is what the datapath simulator uses; this
//! wrapper is for examples, tests and the matmul reference kernels, where
//! carrying the format alongside every value is worth two words.

use crate::compare;
use crate::convert;
use crate::exceptions::Flags;
use crate::format::FpFormat;
use crate::ops;
use crate::round::RoundMode;
use crate::unpacked::{Class, Unpacked};
use core::cmp::Ordering;
use core::fmt;

/// A floating-point value in an explicit format.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SoftFloat {
    fmt: FpFormat,
    bits: u64,
}

impl SoftFloat {
    /// Wrap raw bits (masked to the format's width).
    pub fn from_bits(fmt: FpFormat, bits: u64) -> SoftFloat {
        SoftFloat {
            fmt,
            bits: bits & fmt.enc_mask(),
        }
    }

    /// Convert from an `f64`, rounding to nearest. NaN becomes +∞ (the
    /// format has no NaN), denormals flush to zero.
    pub fn from_f64(fmt: FpFormat, x: f64) -> SoftFloat {
        let (bits, _) = convert::from_f64(fmt, x);
        SoftFloat { fmt, bits }
    }

    /// Convert from an `f32`, rounding to nearest.
    pub fn from_f32(fmt: FpFormat, x: f32) -> SoftFloat {
        let (bits, _) = convert::from_f32(fmt, x);
        SoftFloat { fmt, bits }
    }

    /// Positive zero in `fmt`.
    pub fn zero(fmt: FpFormat) -> SoftFloat {
        SoftFloat { fmt, bits: 0 }
    }

    /// One in `fmt`.
    pub fn one(fmt: FpFormat) -> SoftFloat {
        SoftFloat {
            fmt,
            bits: fmt.pack(false, fmt.bias() as u64, 0),
        }
    }

    /// The value's format.
    pub fn format(&self) -> FpFormat {
        self.fmt
    }

    /// Raw encoding.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Convert to `f64` (exact for all three paper formats).
    pub fn to_f64(&self) -> f64 {
        convert::to_f64(self.fmt, self.bits)
    }

    /// Convert to `f32`, rounding to nearest.
    pub fn to_f32(&self) -> f32 {
        convert::to_f32(self.fmt, self.bits)
    }

    /// Convert to another format.
    pub fn convert(&self, dst: FpFormat, mode: RoundMode) -> (SoftFloat, Flags) {
        let (bits, flags) = convert::convert(self.fmt, self.bits, dst, mode);
        (SoftFloat { fmt: dst, bits }, flags)
    }

    /// `self + rhs`. Panics if formats differ.
    pub fn add(&self, rhs: &SoftFloat, mode: RoundMode) -> (SoftFloat, Flags) {
        assert_eq!(self.fmt, rhs.fmt, "format mismatch");
        let (bits, flags) = ops::add::add(self.fmt, self.bits, rhs.bits, mode);
        (
            SoftFloat {
                fmt: self.fmt,
                bits,
            },
            flags,
        )
    }

    /// `self - rhs`. Panics if formats differ.
    pub fn sub(&self, rhs: &SoftFloat, mode: RoundMode) -> (SoftFloat, Flags) {
        assert_eq!(self.fmt, rhs.fmt, "format mismatch");
        let (bits, flags) = ops::add::sub(self.fmt, self.bits, rhs.bits, mode);
        (
            SoftFloat {
                fmt: self.fmt,
                bits,
            },
            flags,
        )
    }

    /// `self * rhs`. Panics if formats differ.
    pub fn mul(&self, rhs: &SoftFloat, mode: RoundMode) -> (SoftFloat, Flags) {
        assert_eq!(self.fmt, rhs.fmt, "format mismatch");
        let (bits, flags) = ops::mul::mul(self.fmt, self.bits, rhs.bits, mode);
        (
            SoftFloat {
                fmt: self.fmt,
                bits,
            },
            flags,
        )
    }

    /// `self / rhs`. Panics if formats differ.
    pub fn div(&self, rhs: &SoftFloat, mode: RoundMode) -> (SoftFloat, Flags) {
        assert_eq!(self.fmt, rhs.fmt, "format mismatch");
        let (bits, flags) = ops::div::div(self.fmt, self.bits, rhs.bits, mode);
        (
            SoftFloat {
                fmt: self.fmt,
                bits,
            },
            flags,
        )
    }

    /// `sqrt(self)`.
    pub fn sqrt(&self, mode: RoundMode) -> (SoftFloat, Flags) {
        let (bits, flags) = ops::sqrt::sqrt(self.fmt, self.bits, mode);
        (
            SoftFloat {
                fmt: self.fmt,
                bits,
            },
            flags,
        )
    }

    /// Fused-by-sequence multiply-accumulate `self + a*b` with both steps
    /// individually rounded — exactly what one PE of the matmul array
    /// computes per cycle (there is no fused rounding in the paper's PEs).
    pub fn mac(&self, a: &SoftFloat, b: &SoftFloat, mode: RoundMode) -> (SoftFloat, Flags) {
        let (p, f1) = a.mul(b, mode);
        let (s, f2) = self.add(&p, mode);
        (s, f1 | f2)
    }

    /// Negation (a sign-bit flip; always exact).
    pub fn neg(&self) -> SoftFloat {
        SoftFloat {
            fmt: self.fmt,
            bits: self.bits ^ (1u64 << self.fmt.sign_shift()),
        }
    }

    /// Absolute value (sign-bit clear; always exact).
    pub fn abs(&self) -> SoftFloat {
        SoftFloat {
            fmt: self.fmt,
            bits: self.bits & !(1u64 << self.fmt.sign_shift()),
        }
    }

    /// True for ±0.
    pub fn is_zero(&self) -> bool {
        Unpacked::from_bits(self.fmt, self.bits).class == Class::Zero
    }

    /// True for ±∞.
    pub fn is_inf(&self) -> bool {
        Unpacked::from_bits(self.fmt, self.bits).class == Class::Inf
    }

    /// True for negative values (including −0).
    pub fn is_sign_negative(&self) -> bool {
        self.bits >> self.fmt.sign_shift() & 1 == 1
    }

    /// Numeric comparison (+0 equals −0). Panics if formats differ.
    pub fn numeric_cmp(&self, rhs: &SoftFloat) -> Ordering {
        assert_eq!(self.fmt, rhs.fmt, "format mismatch");
        compare::compare(self.fmt, self.bits, rhs.bits)
    }
}

impl fmt::Debug for SoftFloat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SoftFloat<{}>({} = {:#x})",
            self.fmt,
            self.to_f64(),
            self.bits
        )
    }
}

impl fmt::Display for SoftFloat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F48: FpFormat = FpFormat::FP48;

    #[test]
    fn constructors() {
        assert_eq!(SoftFloat::zero(F48).to_f64(), 0.0);
        assert_eq!(SoftFloat::one(F48).to_f64(), 1.0);
        assert_eq!(SoftFloat::from_f64(F48, 2.5).to_f64(), 2.5);
        assert_eq!(SoftFloat::from_f32(F48, 2.5f32).to_f64(), 2.5);
    }

    #[test]
    fn arithmetic_in_fp48() {
        let a = SoftFloat::from_f64(F48, 1.5);
        let b = SoftFloat::from_f64(F48, 2.25);
        assert_eq!(a.add(&b, RoundMode::NearestEven).0.to_f64(), 3.75);
        assert_eq!(a.sub(&b, RoundMode::NearestEven).0.to_f64(), -0.75);
        assert_eq!(a.mul(&b, RoundMode::NearestEven).0.to_f64(), 3.375);
    }

    #[test]
    fn div_and_sqrt() {
        let a = SoftFloat::from_f64(F48, 7.5);
        let b = SoftFloat::from_f64(F48, 2.5);
        assert_eq!(a.div(&b, RoundMode::NearestEven).0.to_f64(), 3.0);
        let s = SoftFloat::from_f64(F48, 6.25);
        assert_eq!(s.sqrt(RoundMode::NearestEven).0.to_f64(), 2.5);
        let (_, f) = SoftFloat::from_f64(F48, -1.0).sqrt(RoundMode::NearestEven);
        assert!(f.invalid);
    }

    #[test]
    fn mac_is_mul_then_add() {
        let acc = SoftFloat::from_f64(F48, 10.0);
        let a = SoftFloat::from_f64(F48, 3.0);
        let b = SoftFloat::from_f64(F48, 4.0);
        let (r, f) = acc.mac(&a, &b, RoundMode::NearestEven);
        assert_eq!(r.to_f64(), 22.0);
        assert!(!f.any());
    }

    #[test]
    fn neg_abs_sign() {
        let a = SoftFloat::from_f64(F48, -4.0);
        assert!(a.is_sign_negative());
        assert_eq!(a.neg().to_f64(), 4.0);
        assert_eq!(a.abs().to_f64(), 4.0);
        assert!(!a.abs().is_sign_negative());
    }

    #[test]
    fn predicates() {
        assert!(SoftFloat::zero(F48).is_zero());
        assert!(SoftFloat::from_f64(F48, f64::INFINITY).is_inf());
        assert!(!SoftFloat::one(F48).is_zero());
    }

    #[test]
    fn cmp() {
        let a = SoftFloat::from_f64(F48, 1.0);
        let b = SoftFloat::from_f64(F48, 2.0);
        assert_eq!(a.numeric_cmp(&b), Ordering::Less);
        let z = SoftFloat::zero(F48);
        assert_eq!(z.numeric_cmp(&z.neg()), Ordering::Equal);
    }

    #[test]
    #[should_panic(expected = "format mismatch")]
    fn format_mismatch_panics() {
        let a = SoftFloat::one(FpFormat::SINGLE);
        let b = SoftFloat::one(FpFormat::DOUBLE);
        let _ = a.add(&b, RoundMode::NearestEven);
    }
}
