//! Format conversion.
//!
//! The commercial cores the paper compares against (Nallatech, Quixilica)
//! use *custom* formats and need conversion modules at their interfaces to
//! the rest of the system; this module is the software model of such a
//! conversion unit, and also provides the `f32`/`f64` bridges used by the
//! tests and examples.

use crate::exceptions::Flags;
use crate::format::FpFormat;
use crate::round::{pack_with_range_check, round_sig, RoundMode};
use crate::unpacked::{Class, Unpacked};

/// Convert `bits` from format `src` to format `dst` with rounding.
///
/// Widening conversions between the paper's formats (single → 48-bit →
/// double) are exact; narrowing conversions round and may overflow,
/// underflow or lose precision, raising the corresponding flags.
pub fn convert(src: FpFormat, bits: u64, dst: FpFormat, mode: RoundMode) -> (u64, Flags) {
    let u = Unpacked::from_bits(src, bits);
    match u.class {
        Class::Zero => (dst.pack(u.sign, 0, 0), Flags::NONE),
        Class::Inf => (dst.pack(u.sign, dst.inf_biased_exp(), 0), Flags::NONE),
        Class::Normal => {
            let sf = src.frac_bits();
            let df = dst.frac_bits();
            if df >= sf {
                // Widening the fraction is exact; only the exponent range
                // can overflow/underflow (e.g. double → a custom format
                // with a tiny exponent field).
                let sig = u.sig << (df - sf);
                pack_with_range_check(dst, u.sign, u.exp, sig, mode, false)
            } else {
                // Narrowing: position the significand with a (sf - df)-bit
                // rounding tail and round.
                let grs = sf - df;
                let rounded = round_sig(dst, u.sig as u128, grs, mode);
                let exp = u.exp + rounded.exp_carry as i32;
                pack_with_range_check(dst, u.sign, exp, rounded.sig, mode, rounded.inexact)
            }
        }
    }
}

/// Decode an IEEE 754 `f64` into format `fmt`.
///
/// NaN inputs map to +∞ with the invalid flag (the cores have no NaN
/// representation); denormal inputs flush to signed zero.
pub fn from_f64(fmt: FpFormat, x: f64) -> (u64, Flags) {
    if x.is_nan() {
        return (fmt.pack(false, fmt.inf_biased_exp(), 0), Flags::invalid());
    }
    convert(FpFormat::DOUBLE, x.to_bits(), fmt, RoundMode::NearestEven)
}

/// Decode an IEEE 754 `f32` into format `fmt`.
pub fn from_f32(fmt: FpFormat, x: f32) -> (u64, Flags) {
    if x.is_nan() {
        return (fmt.pack(false, fmt.inf_biased_exp(), 0), Flags::invalid());
    }
    convert(
        FpFormat::SINGLE,
        x.to_bits() as u64,
        fmt,
        RoundMode::NearestEven,
    )
}

/// Encode a value of format `fmt` as an `f64`.
///
/// Exact for every format whose exponent field is at most 11 bits and
/// fraction at most 52 bits — which includes all three paper precisions.
/// Wider custom exponents saturate to ±∞/±0 like any narrowing conversion.
pub fn to_f64(fmt: FpFormat, bits: u64) -> f64 {
    let (b, _) = convert(fmt, bits, FpFormat::DOUBLE, RoundMode::NearestEven);
    f64::from_bits(b)
}

/// Encode a value of format `fmt` as an `f32` (rounding to nearest).
pub fn to_f32(fmt: FpFormat, bits: u64) -> f32 {
    let (b, _) = convert(fmt, bits, FpFormat::SINGLE, RoundMode::NearestEven);
    f32::from_bits(b as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    const F32: FpFormat = FpFormat::SINGLE;
    const F48: FpFormat = FpFormat::FP48;
    const F64: FpFormat = FpFormat::DOUBLE;

    #[test]
    fn f64_roundtrip_is_exact_for_paper_formats() {
        for &x in &[0.0f64, 1.0, -1.5, std::f64::consts::PI, 1e-30, -1e30] {
            // double → double
            let (b, f) = from_f64(F64, x);
            assert_eq!(f64::from_bits(b), x);
            assert!(!f.any());
        }
    }

    #[test]
    fn widening_is_exact() {
        for &x in &[
            1.0f32,
            -2.5,
            std::f32::consts::PI,
            1e-20,
            1e20,
            f32::MAX,
            f32::MIN_POSITIVE,
        ] {
            let (b48, f) = from_f32(F48, x);
            assert!(!f.any(), "{x}");
            assert_eq!(to_f64(F48, b48), x as f64, "{x}");
        }
    }

    #[test]
    fn narrowing_rounds_like_native() {
        for &x in &[
            0.1f64,
            1.0 / 3.0,
            core::f64::consts::PI,
            1e10 + 0.123,
            -9.999999999e-5,
        ] {
            let (b, flags) = convert(F64, x.to_bits(), F32, RoundMode::NearestEven);
            assert_eq!(f32::from_bits(b as u32), x as f32, "{x}");
            assert!(flags.inexact);
        }
    }

    #[test]
    fn narrowing_overflow_saturates() {
        let (b, f) = convert(F64, 1e300f64.to_bits(), F32, RoundMode::NearestEven);
        assert_eq!(f32::from_bits(b as u32), f32::INFINITY);
        assert!(f.overflow);
        let (b, f) = convert(F64, 1e300f64.to_bits(), F32, RoundMode::Truncate);
        assert_eq!(f32::from_bits(b as u32), f32::MAX);
        assert!(f.overflow);
    }

    #[test]
    fn narrowing_underflow_flushes() {
        let (b, f) = convert(F64, 1e-300f64.to_bits(), F32, RoundMode::NearestEven);
        assert_eq!(b, 0);
        assert!(f.underflow);
    }

    #[test]
    fn nan_input_becomes_inf_with_invalid() {
        let (b, f) = from_f64(F32, f64::NAN);
        assert_eq!(b, F32.pos_inf());
        assert!(f.invalid);
    }

    #[test]
    fn denormal_input_flushes_to_signed_zero() {
        let tiny = f64::from_bits(1); // smallest positive denormal
        let (b, _) = from_f64(F64, tiny);
        assert_eq!(b, 0);
        let (b, _) = from_f64(F64, -tiny);
        assert_eq!(b, 1u64 << 63);
    }

    #[test]
    fn specials_convert() {
        let (b, _) = from_f64(F32, f64::INFINITY);
        assert_eq!(b, F32.pos_inf());
        let (b, _) = from_f64(F48, f64::NEG_INFINITY);
        assert_eq!(b, F48.neg_inf());
        assert!(to_f64(F48, F48.pos_inf()).is_infinite());
    }

    #[test]
    fn rounding_carry_in_narrowing() {
        // A double just below 2.0 narrows to exactly 2.0 in single.
        let x = f64::from_bits(0x3fff_ffff_ffff_ffff);
        let (b, _) = convert(F64, x.to_bits(), F32, RoundMode::NearestEven);
        assert_eq!(f32::from_bits(b as u32), 2.0);
    }
}
