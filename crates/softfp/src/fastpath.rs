//! Monomorphized fast-lane kernels.
//!
//! The generic ops in [`crate::ops`] read the field widths out of an
//! [`FpFormat`] value on every operation and route everything through the
//! [`crate::unpacked`] representation. That is the right shape for a
//! hardware reference model, but it leaves throughput on the floor: every
//! shift amount and mask is a runtime value and every operand pays the
//! classify/unpack cost even when it is an ordinary normal number — which
//! in the paper's workloads (matmul streams, sweeps) is almost always.
//!
//! This module adds a second lane with the *same* bit-exact semantics:
//!
//! * **Const-generic kernels** ([`add`], [`sub`], [`mul`], [`fma`]) take
//!   the exponent/fraction widths as compile-time constants `E`/`F`, so
//!   masks, shifts and the u64-vs-u128 datapath choice all constant-fold.
//!   [`FpFormat::SINGLE`], [`FpFormat::W48`] and [`FpFormat::DOUBLE`] get
//!   dedicated monomorphizations.
//! * **A both-operands-normal fast lane**: one branch-free normality test
//!   on the raw encodings selects either the inlined normal-path
//!   arithmetic or a fallback into the existing generic `unpacked` path
//!   (zeros, infinities, flush/overflow corner cases all land there).
//! * **Batch entry points** ([`add_bits_batch`], [`mul_bits_batch`],
//!   [`add_pairs_batch`], …) that dispatch on the format **once per
//!   slice** and append results to a caller-provided buffer instead of
//!   allocating per element.
//!
//! Equivalence with the generic path — results *and* exception flags — is
//! enforced by proptests over random formats (not just the three named
//! precisions) and by the `fpfpga-conform` differential harness, which CI
//! runs once with the fast lane force-enabled.

use crate::exceptions::Flags;
use crate::format::FpFormat;
use crate::ops;
use crate::ops::add::GRS_BITS;
use crate::ops::fma::FMA_GRS;
use crate::round::{shift_right_sticky, RoundMode};
use crate::simd;

/// Panic message used by every batch entry point on length mismatch.
pub const LEN_MISMATCH: &str = "batch operand slices must have equal lengths";

// ---------------------------------------------------------------------------
// Normality test
// ---------------------------------------------------------------------------

/// True when the biased exponent field of `bits` is neither all-zeros
/// (zero/flushed-denormal) nor all-ones (infinity): a *normal* operand.
#[inline(always)]
pub(crate) const fn is_normal(e: u32, f: u32, bits: u64) -> bool {
    let em = (1u64 << e) - 1;
    let biased = (bits >> f) & em;
    // `biased - 1 < em - 1` covers 1..=em-1 in one unsigned compare
    // (biased = 0 wraps to u64::MAX). Branch-free on both operands.
    biased.wrapping_sub(1) < em - 1
}

/// Branch-free check that both operands take the fast lane.
#[inline(always)]
pub(crate) const fn both_normal(e: u32, f: u32, a: u64, b: u64) -> bool {
    is_normal(e, f, a) & is_normal(e, f, b)
}

/// Branch-free sticky right shift for the fast lane's u64 datapath.
///
/// The significands here carry at most `f + 1 + GRS_BITS <= 60` bits, so
/// clamping the shift to 63 is exact: every bit that would shift out of a
/// wider register shifts out of bit 62..0 too. The sticky bit is jammed
/// into bit 0 of the result (the only place the callers want it).
#[inline(always)]
const fn align_sticky(sig: u64, n: u32) -> u64 {
    let sh = if n > 63 { 63 } else { n };
    let lost = sig & ((1u64 << sh) - 1);
    (sig >> sh) | (lost != 0) as u64
}

// ---------------------------------------------------------------------------
// Shared round + range-check tail (mirrors round::round_sig +
// round::pack_with_range_check bit-for-bit)
// ---------------------------------------------------------------------------

/// Pack a rounded significand, applying the cores' overflow/underflow
/// policy exactly as [`crate::round::pack_with_range_check`] does.
#[inline(always)]
fn finish_pack(
    e: u32,
    f: u32,
    sign: u64,
    exp: i32,
    sig: u64,
    inexact: bool,
    mode: RoundMode,
) -> (u64, Flags) {
    let bias = (1i32 << (e - 1)) - 1;
    let max_exp = ((1i32 << e) - 2) - bias;
    let min_exp = 1 - bias;
    let sign_shift = e + f;
    debug_assert!(sig >> f == 1);

    // Overflow and underflow fire on a quarter of random-exponent
    // products, so a three-way branch here mispredicts constantly on the
    // sweep/bench workloads. Compute all three payloads (a handful of ALU
    // ops) and let the selects become conditional moves:
    //   overflow  → ±∞ under round-to-nearest, ±max-finite under truncate
    //   underflow → flush to ±0 (no denormals)
    // Both imply inexact, matching Flags::overflow()/Flags::underflow().
    let over = exp > max_exp;
    let under = exp < min_exp;
    let over_mag = match mode {
        RoundMode::NearestEven => ((1u64 << e) - 1) << f,
        RoundMode::Truncate => (((1u64 << e) - 2) << f) | ((1u64 << f) - 1),
    };
    // Garbage when out of range (the cast wraps), but the select below
    // only keeps it in the in-range case.
    let norm_mag = (((exp + bias) as u64) << f) | (sig & ((1u64 << f) - 1));
    let mag = if over {
        over_mag
    } else if under {
        0
    } else {
        norm_mag
    };
    let flags = Flags {
        overflow: over,
        underflow: under,
        invalid: false,
        inexact: inexact | over | under,
        div_by_zero: false,
    };
    ((sign << sign_shift) | mag, flags)
}

/// Round a normalized `kept`+`tail` pair (the u64 twin of
/// [`crate::round::round_sig`]) and pack with range check.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn round_pack(
    e: u32,
    f: u32,
    sign: u64,
    mut exp: i32,
    kept: u64,
    tail: u64,
    grs: u32,
    mode: RoundMode,
) -> (u64, Flags) {
    debug_assert!(kept >> f == 1, "round_pack input not normalized");
    let inexact = tail != 0;
    // `|`/`&` instead of `||`/`&&`: the tail comparisons are data-random,
    // so short-circuit jumps would mispredict half the time.
    let round_up = match mode {
        RoundMode::Truncate => false,
        RoundMode::NearestEven => {
            let half = 1u64 << (grs - 1);
            (tail > half) | ((tail == half) & (kept & 1 == 1))
        }
    };
    let mut rounded = kept + round_up as u64;
    // Rounding carries out of the hidden position at most once; fold the
    // correction in branch-free (the carry is data-dependent).
    let carry = (rounded >> (f + 1)) as u32;
    rounded >>= carry;
    exp += carry as i32;
    finish_pack(e, f, sign, exp, rounded, inexact, mode)
}

// ---------------------------------------------------------------------------
// Normal-lane kernels (preconditions: operands normal)
// ---------------------------------------------------------------------------

/// Add/sub fast lane. Requires both operands normal. The whole datapath
/// fits in a `u64`: `f + 1 + GRS_BITS + 1 <= 61` bits.
#[inline(always)]
fn add_normal(e: u32, f: u32, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    let sign_shift = e + f;
    let frac_mask = (1u64 << f) - 1;
    let mag_mask = (1u64 << sign_shift) - 1;
    let hidden = 1u64 << f;
    let bias = (1i32 << (e - 1)) - 1;

    // The encoding of normal magnitudes is monotone, so comparing the
    // sign-stripped bits is the generic path's `(exp, sig)` swap. The
    // selects compile to conditional moves; an explicit swap branch would
    // mispredict half the time on random operands.
    let (ma, mb) = (a & mag_mask, b & mag_mask);
    let hi = if ma >= mb { ma } else { mb };
    let lo = if ma >= mb { mb } else { ma };
    let hi_sign = (if ma >= mb { a } else { b }) >> sign_shift & 1;

    // Stage 1: align the smaller significand, sticky-compressing the tail
    // (branch-free: the shift clamp in `align_sticky` is exact here).
    let diff = ((hi >> f) - (lo >> f)) as u32;
    let hi_sig = ((hi & frac_mask) | hidden) << GRS_BITS;
    let lo_full = align_sticky(((lo & frac_mask) | hidden) << GRS_BITS, diff);

    // Stage 2: effective add or subtract; `hi` has the larger magnitude so
    // the subtraction never goes negative. The sign pair is data-random,
    // so fold the subtract in as a branch-free conditional negate.
    let effective_sub = (a ^ b) >> sign_shift & 1;
    let mut exp = ((hi >> f) & ((1u64 << e) - 1)) as i32 - bias;
    let mut mag =
        hi_sig.wrapping_add((lo_full ^ effective_sub.wrapping_neg()).wrapping_add(effective_sub));
    if mag == 0 {
        // Exact cancellation: +0 under both supported modes.
        return (0, Flags::NONE);
    }

    // Stage 2b/3: pre-normalize a carry-out (sticky-preserving jam, at
    // most one position so the top bit *is* the carry count), then shift
    // the leading one up to the hidden position. After the jam
    // `msb <= hidden_pos`, so the left shift is unconditional.
    let hidden_pos = f + GRS_BITS;
    let carry = mag >> (hidden_pos + 1);
    mag = (mag >> carry) | (mag & carry);
    exp += carry as i32;
    let msb = 63 - mag.leading_zeros();
    let shift = hidden_pos - msb;
    mag <<= shift;
    exp -= shift as i32;
    round_pack(
        e,
        f,
        hi_sign,
        exp,
        mag >> GRS_BITS,
        mag & ((1u64 << GRS_BITS) - 1),
        GRS_BITS,
        mode,
    )
}

/// Multiply fast lane. Requires both operands normal. For `F <= 31` the
/// significand product fits a `u64` (constant-folded choice under the
/// const-generic wrappers, so `SINGLE` never touches `u128`).
#[inline(always)]
fn mul_normal(e: u32, f: u32, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    let sign_shift = e + f;
    let frac_mask = (1u64 << f) - 1;
    let hidden = 1u64 << f;
    let bias = (1i32 << (e - 1)) - 1;
    let em = (1u64 << e) - 1;

    let sign = (a ^ b) >> sign_shift & 1;
    let mut exp = (((a >> f) & em) as i32 - bias) + (((b >> f) & em) as i32 - bias);
    let sa = (a & frac_mask) | hidden;
    let sb = (b & frac_mask) | hidden;

    // The product's top bit (2f+2 vs 2f+1 significant bits) is a coin
    // flip on random significands; fold the normalization in branch-free.
    // The narrow datapath shifts the product up (one cheap u64 shift, so
    // the kept/tail split stays compile-time constant); the wide datapath
    // instead keeps the product in place and moves the split point — a
    // variable u128 shift is several instructions, and `round_pack`'s
    // rounding decision is invariant under the common scale.
    let (kept, tail, grs);
    if f <= 31 {
        let mut p = sa * sb;
        let top = ((p >> (2 * f + 1)) & 1) as u32;
        exp += top as i32;
        p <<= top ^ 1;
        grs = f + 1;
        kept = p >> grs;
        tail = p & ((1u64 << grs) - 1);
    } else {
        let p = sa as u128 * sb as u128;
        let top = (p >> (2 * f + 1)) as u32 & 1;
        exp += top as i32;
        grs = f + top;
        kept = (p >> grs) as u64;
        tail = (p as u64) & ((1u64 << grs) - 1);
    }
    round_pack(e, f, sign, exp, kept, tail, grs, mode)
}

/// Fused multiply-add fast lane. Requires all three operands normal.
/// Mirrors the exact-product path of [`crate::ops::fma::fma`].
///
/// Two datapaths, chosen by width (a compile-time constant under the
/// const-generic wrappers): when the widest aligned sum fits a `u64`
/// (`2f + FMA_GRS + 4 ≤ 64`, so `f ≤ 28` — SINGLE and anything
/// narrower), the whole kernel runs in 64-bit registers. Wider formats
/// (FP48, DOUBLE) run [`simd::fma_wide_scalar`], the `(hi, lo)` u64-pair
/// limb datapath: on x86-64 every `u128` operation the old wide path
/// leaned on — variable shifts, compares, `leading_zeros` — was a
/// multi-instruction sequence, the same throughput gap the narrow split
/// closed for f32 (BENCH_PR5: ~34 Mop/s for f32 fma before the fix).
#[inline(always)]
fn fma_normal(e: u32, f: u32, a: u64, b: u64, c: u64, mode: RoundMode) -> (u64, Flags) {
    if 2 * f + FMA_GRS + 4 <= 64 {
        fma_normal_narrow(e, f, a, b, c, mode)
    } else {
        simd::fma_wide_scalar(e, f, a, b, c, mode)
    }
}

/// Signed combine of two magnitudes in the same frame — the `u64` twin
/// of [`ops::fma::combine`]: result magnitude, its sign, and whether an
/// effective subtraction cancelled exactly.
#[inline(always)]
fn combine_u64(p: u64, ps: bool, c: u64, cs: bool) -> (u64, bool, bool) {
    if ps == cs {
        (p + c, ps, false)
    } else if p >= c {
        let d = p - c;
        (d, ps, d == 0)
    } else {
        (c - p, cs, false)
    }
}

/// The narrow (all-`u64`) fma datapath. Precondition:
/// `2f + FMA_GRS + 4 ≤ 64`, so the exact product (`2f+2` bits), the
/// guard window and the alignment carry all fit one register. Mirrors
/// [`fma_normal_wide`] case for case; only the integer width differs.
#[inline(always)]
fn fma_normal_narrow(e: u32, f: u32, a: u64, b: u64, c: u64, mode: RoundMode) -> (u64, Flags) {
    let sign_shift = e + f;
    let frac_mask = (1u64 << f) - 1;
    let hidden = 1u64 << f;
    let bias = (1i32 << (e - 1)) - 1;
    let em = (1u64 << e) - 1;

    let psign = (a ^ b) >> sign_shift & 1 == 1;
    let csign = c >> sign_shift & 1 == 1;
    let pexp = (((a >> f) & em) as i32 - bias) + (((b >> f) & em) as i32 - bias);
    let cexp = ((c >> f) & em) as i32 - bias;

    let product = ((a & frac_mask) | hidden) * ((b & frac_mask) | hidden);
    let shift = (cexp - pexp) + f as i32;
    let c_wide = ((c & frac_mask) | hidden) << FMA_GRS;
    let prod_wide = product << FMA_GRS;

    let (mag, sign, e_lsb, is_zero) = if shift > (f + 2) as i32 {
        // c dominates: sticky-shift the product into c's guard window.
        let (p_aligned, lost) = shift_right_sticky(prod_wide, shift as u32);
        let (m, sg, z) = combine_u64(c_wide, csign, p_aligned | lost as u64, psign);
        (m, sg, cexp - (f + FMA_GRS) as i32, z)
    } else if shift >= 0 {
        // Product dominates or ties: align c up by at most f+2, total
        // width ≤ 2f + FMA_GRS + 4 bits — in range by precondition.
        let c_aligned = c_wide << shift;
        let (m, sg, z) = combine_u64(prod_wide, psign, c_aligned, csign);
        (m, sg, pexp - (2 * f + FMA_GRS) as i32, z)
    } else {
        let (c_aligned, lost) = shift_right_sticky(c_wide, (-shift) as u32);
        let (m, sg, z) = combine_u64(prod_wide, psign, c_aligned | lost as u64, csign);
        (m, sg, pexp - (2 * f + FMA_GRS) as i32, z)
    };
    if is_zero {
        return (0, Flags::NONE);
    }

    let msb = 63 - mag.leading_zeros();
    let exp = e_lsb + msb as i32;
    let (mag, grs) = if msb > f {
        (mag, msb - f)
    } else {
        // Deep cancellation (necessarily exact): lift the hidden bit.
        (mag << (f + 1 - msb), 1)
    };
    round_pack(
        e,
        f,
        sign as u64,
        exp,
        mag >> grs,
        mag & ((1u64 << grs) - 1),
        grs,
        mode,
    )
}

// ---------------------------------------------------------------------------
// Const-generic public kernels
// ---------------------------------------------------------------------------

/// Monomorphized `a + b`; falls back to the generic path for specials.
///
/// `inline(always)`: under plain `#[inline]` LLVM leaves this outlined
/// and the batch loops pay a call + sret round-trip per element — about
/// a third of the whole add budget. The fallback call inside still
/// keeps the auto-vectorizer away from the loop (which is what the
/// add/sub datapath needs on baseline x86-64, see `dispatch_binary!`).
#[inline(always)]
pub fn add<const E: u32, const F: u32>(a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    if both_normal(E, F, a, b) {
        add_normal(E, F, a, b, mode)
    } else {
        ops::add::add(FpFormat::new(E, F), a, b, mode)
    }
}

/// Monomorphized `a - b` (sign-flip of `b` in the fast lane, generic
/// `sub` in the fallback so special-case semantics match exactly).
#[inline(always)]
pub fn sub<const E: u32, const F: u32>(a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    if both_normal(E, F, a, b) {
        add_normal(E, F, a, b ^ (1u64 << (E + F)), mode)
    } else {
        ops::add::sub(FpFormat::new(E, F), a, b, mode)
    }
}

/// Monomorphized `a * b`; falls back to the generic path for specials.
#[inline]
pub fn mul<const E: u32, const F: u32>(a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    if both_normal(E, F, a, b) {
        mul_normal(E, F, a, b, mode)
    } else {
        ops::mul::mul(FpFormat::new(E, F), a, b, mode)
    }
}

/// Monomorphized `a·b + c` with a single rounding; falls back to the
/// generic path when any operand is special.
#[inline(always)]
pub fn fma<const E: u32, const F: u32>(a: u64, b: u64, c: u64, mode: RoundMode) -> (u64, Flags) {
    if both_normal(E, F, a, b) & is_normal(E, F, c) {
        fma_normal(E, F, a, b, c, mode)
    } else {
        ops::fma::fma(FpFormat::new(E, F), a, b, c, mode)
    }
}

// ---------------------------------------------------------------------------
// Runtime-width scalar dispatchers
// ---------------------------------------------------------------------------

/// Which monomorphization a format maps to.
#[derive(Clone, Copy)]
pub(crate) enum Lane {
    Single,
    W48,
    Double,
    Dyn,
}

#[inline(always)]
pub(crate) fn lane_of(fmt: FpFormat) -> Lane {
    if fmt == FpFormat::SINGLE {
        Lane::Single
    } else if fmt == FpFormat::FP48 {
        Lane::W48
    } else if fmt == FpFormat::DOUBLE {
        Lane::Double
    } else {
        Lane::Dyn
    }
}

/// Fast scalar `a + b` for any format (named formats take the
/// monomorphized kernels; everything else runs the same fast lane with
/// runtime widths).
#[inline]
pub fn add_bits(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    match lane_of(fmt) {
        Lane::Single => add::<8, 23>(a, b, mode),
        Lane::W48 => add::<11, 36>(a, b, mode),
        Lane::Double => add::<11, 52>(a, b, mode),
        Lane::Dyn => add_dyn(fmt, a, b, mode),
    }
}

/// Fast scalar `a - b` for any format.
#[inline]
pub fn sub_bits(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    match lane_of(fmt) {
        Lane::Single => sub::<8, 23>(a, b, mode),
        Lane::W48 => sub::<11, 36>(a, b, mode),
        Lane::Double => sub::<11, 52>(a, b, mode),
        Lane::Dyn => sub_dyn(fmt, a, b, mode),
    }
}

/// Fast scalar `a * b` for any format.
#[inline]
pub fn mul_bits(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    match lane_of(fmt) {
        Lane::Single => mul::<8, 23>(a, b, mode),
        Lane::W48 => mul::<11, 36>(a, b, mode),
        Lane::Double => mul::<11, 52>(a, b, mode),
        Lane::Dyn => mul_dyn(fmt, a, b, mode),
    }
}

/// Fast scalar `a·b + c` for any format.
#[inline]
pub fn fma_bits(fmt: FpFormat, a: u64, b: u64, c: u64, mode: RoundMode) -> (u64, Flags) {
    match lane_of(fmt) {
        Lane::Single => fma::<8, 23>(a, b, c, mode),
        Lane::W48 => fma::<11, 36>(a, b, c, mode),
        Lane::Double => fma::<11, 52>(a, b, c, mode),
        Lane::Dyn => fma_dyn(fmt, a, b, c, mode),
    }
}

#[inline]
fn add_dyn(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    let (e, f) = (fmt.exp_bits(), fmt.frac_bits());
    if both_normal(e, f, a, b) {
        add_normal(e, f, a, b, mode)
    } else {
        ops::add::add(fmt, a, b, mode)
    }
}

#[inline]
fn sub_dyn(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    let (e, f) = (fmt.exp_bits(), fmt.frac_bits());
    if both_normal(e, f, a, b) {
        add_normal(e, f, a, b ^ (1u64 << (e + f)), mode)
    } else {
        ops::add::sub(fmt, a, b, mode)
    }
}

#[inline]
fn mul_dyn(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    let (e, f) = (fmt.exp_bits(), fmt.frac_bits());
    if both_normal(e, f, a, b) {
        mul_normal(e, f, a, b, mode)
    } else {
        ops::mul::mul(fmt, a, b, mode)
    }
}

#[inline]
fn fma_dyn(fmt: FpFormat, a: u64, b: u64, c: u64, mode: RoundMode) -> (u64, Flags) {
    let (e, f) = (fmt.exp_bits(), fmt.frac_bits());
    if both_normal(e, f, a, b) & is_normal(e, f, c) {
        fma_normal(e, f, a, b, c, mode)
    } else {
        ops::fma::fma(fmt, a, b, c, mode)
    }
}

// ---------------------------------------------------------------------------
// Batch entry points
// ---------------------------------------------------------------------------

/// Run one named-format binary batch in two passes: a call-free fast-lane
/// pass over every element, then a fixup scan that routes the rare
/// specials (a percent or two of random operands, none at all in most
/// kernel streams) through the generic path.
///
/// Keeping the non-inlined generic call out of the hot loop is worth more
/// than the second scan costs: with the call inside, the compiler must
/// keep ABI state live across every iteration, which blocks unrolling and
/// spills the datapath registers.
#[inline(always)]
fn bin_lane<const E: u32, const F: u32, I, N, G>(
    iter: I,
    out: &mut Vec<(u64, Flags)>,
    mode: RoundMode,
    normal: N,
    generic: G,
) where
    I: Iterator<Item = (u64, u64)> + Clone,
    N: Fn(u32, u32, u64, u64, RoundMode) -> (u64, Flags),
    G: Fn(FpFormat, u64, u64, RoundMode) -> (u64, Flags),
{
    let start = out.len();
    // `extend` over a `TrustedLen` iterator writes straight into the
    // reserved tail — no per-element capacity check like `push`.
    out.extend(iter.clone().map(|(x, y)| {
        if both_normal(E, F, x, y) {
            normal(E, F, x, y, mode)
        } else {
            (0, Flags::NONE) // placeholder, patched by the fixup pass
        }
    }));
    let fmt = FpFormat::new(E, F);
    for (i, (x, y)) in iter.enumerate() {
        if !both_normal(E, F, x, y) {
            out[start + i] = generic(fmt, x, y, mode);
        }
    }
}

/// Expand an iterator of operand tuples through a monomorphized lane,
/// dispatching on the format once for the whole batch. Each arm is a
/// distinct monomorphization, so the named formats get fully inlined
/// width-constant code. The first token picks the loop shape:
/// `two_pass` (call-free hot loop + rare-special fixup scan, for the mul
/// datapath the auto-vectorizer handles well) or `single_pass` (fallback
/// call kept in-loop — the add/sub datapath, which baseline x86-64 SIMD
/// can only vectorize by emulating per-lane variable shifts and
/// leading-zero counts at several times the scalar cost; measured A/B,
/// the in-loop call beats both the vectorized form and a
/// `black_box`-fenced scalar two-pass).
macro_rules! dispatch_binary {
    (two_pass, $fmt:expr, $mode:expr, $iter:expr, $out:expr, $normal:expr, $generic:expr,
     $dynk:ident) => {{
        let (fmt, mode) = ($fmt, $mode);
        match lane_of(fmt) {
            Lane::Single => bin_lane::<8, 23, _, _, _>($iter, $out, mode, $normal, $generic),
            Lane::W48 => bin_lane::<11, 36, _, _, _>($iter, $out, mode, $normal, $generic),
            Lane::Double => bin_lane::<11, 52, _, _, _>($iter, $out, mode, $normal, $generic),
            Lane::Dyn => $out.extend($iter.map(|(x, y)| $dynk(fmt, x, y, mode))),
        }
    }};
    (single_pass, $fmt:expr, $mode:expr, $iter:expr, $out:expr, $kernel:ident, $dynk:ident) => {{
        let (fmt, mode) = ($fmt, $mode);
        match lane_of(fmt) {
            Lane::Single => $out.extend($iter.map(|(x, y)| $kernel::<8, 23>(x, y, mode))),
            Lane::W48 => $out.extend($iter.map(|(x, y)| $kernel::<11, 36>(x, y, mode))),
            Lane::Double => $out.extend($iter.map(|(x, y)| $kernel::<11, 52>(x, y, mode))),
            Lane::Dyn => $out.extend($iter.map(|(x, y)| $dynk(fmt, x, y, mode))),
        }
    }};
}

macro_rules! dispatch_ternary {
    ($fmt:expr, $mode:expr, $iter:expr, $out:expr, $kernel:ident, $dynk:ident) => {{
        let (fmt, mode) = ($fmt, $mode);
        match lane_of(fmt) {
            Lane::Single => $out.extend($iter.map(|(x, y, z)| $kernel::<8, 23>(x, y, z, mode))),
            Lane::W48 => $out.extend($iter.map(|(x, y, z)| $kernel::<11, 36>(x, y, z, mode))),
            Lane::Double => $out.extend($iter.map(|(x, y, z)| $kernel::<11, 52>(x, y, z, mode))),
            Lane::Dyn => $out.extend($iter.map(|(x, y, z)| $dynk(fmt, x, y, z, mode))),
        }
    }};
}

/// Batched `a[i] + b[i]`, appended to `out`.
///
/// Dispatches on `fmt` once for the whole slice; `out` is reused across
/// calls by the batch consumers (clear it first if you want only this
/// batch's results).
///
/// # Panics
/// Panics if `a.len() != b.len()`.
pub fn add_bits_batch(
    fmt: FpFormat,
    a: &[u64],
    b: &[u64],
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) {
    assert_eq!(a.len(), b.len(), "{}", LEN_MISMATCH);
    out.reserve(a.len());
    if simd::try_add_bits_batch(fmt, a, b, mode, out) {
        return;
    }
    dispatch_binary!(
        single_pass,
        fmt,
        mode,
        a.iter().copied().zip(b.iter().copied()),
        out,
        add,
        add_dyn
    );
}

/// Batched `a[i] - b[i]`, appended to `out`.
///
/// # Panics
/// Panics if `a.len() != b.len()`.
pub fn sub_bits_batch(
    fmt: FpFormat,
    a: &[u64],
    b: &[u64],
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) {
    assert_eq!(a.len(), b.len(), "{}", LEN_MISMATCH);
    out.reserve(a.len());
    if simd::try_sub_bits_batch(fmt, a, b, mode, out) {
        return;
    }
    dispatch_binary!(
        single_pass,
        fmt,
        mode,
        a.iter().copied().zip(b.iter().copied()),
        out,
        sub,
        sub_dyn
    );
}

/// Batched `a[i] * b[i]`, appended to `out`.
///
/// # Panics
/// Panics if `a.len() != b.len()`.
pub fn mul_bits_batch(
    fmt: FpFormat,
    a: &[u64],
    b: &[u64],
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) {
    assert_eq!(a.len(), b.len(), "{}", LEN_MISMATCH);
    out.reserve(a.len());
    if simd::try_mul_bits_batch(fmt, a, b, mode, out) {
        return;
    }
    dispatch_binary!(
        two_pass,
        fmt,
        mode,
        a.iter().copied().zip(b.iter().copied()),
        out,
        mul_normal,
        ops::mul::mul,
        mul_dyn
    );
}

/// Batched `a[i]·b[i] + c[i]` with one rounding each, appended to `out`.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn fma_bits_batch(
    fmt: FpFormat,
    a: &[u64],
    b: &[u64],
    c: &[u64],
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) {
    assert_eq!(a.len(), b.len(), "{}", LEN_MISMATCH);
    assert_eq!(a.len(), c.len(), "{}", LEN_MISMATCH);
    out.reserve(a.len());
    if simd::try_fma_bits_batch(fmt, a, b, c, mode, out) {
        return;
    }
    let iter = a
        .iter()
        .zip(b.iter().zip(c.iter()))
        .map(|(&x, (&y, &z))| (x, y, z));
    dispatch_ternary!(fmt, mode, iter, out, fma, fma_dyn);
}

/// Batched `x + y` over `(x, y)` pairs — the shape the pipeline units'
/// `run_batch` feeds — appended to `out`.
pub fn add_pairs_batch(
    fmt: FpFormat,
    pairs: &[(u64, u64)],
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) {
    out.reserve(pairs.len());
    if simd::try_add_pairs_batch(fmt, pairs, mode, out) {
        return;
    }
    dispatch_binary!(
        single_pass,
        fmt,
        mode,
        pairs.iter().copied(),
        out,
        add,
        add_dyn
    );
}

/// Batched `x - y` over `(x, y)` pairs, appended to `out`.
pub fn sub_pairs_batch(
    fmt: FpFormat,
    pairs: &[(u64, u64)],
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) {
    out.reserve(pairs.len());
    if simd::try_sub_pairs_batch(fmt, pairs, mode, out) {
        return;
    }
    dispatch_binary!(
        single_pass,
        fmt,
        mode,
        pairs.iter().copied(),
        out,
        sub,
        sub_dyn
    );
}

/// Batched `x * y` over `(x, y)` pairs, appended to `out`.
pub fn mul_pairs_batch(
    fmt: FpFormat,
    pairs: &[(u64, u64)],
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) {
    out.reserve(pairs.len());
    if simd::try_mul_pairs_batch(fmt, pairs, mode, out) {
        return;
    }
    dispatch_binary!(
        two_pass,
        fmt,
        mode,
        pairs.iter().copied(),
        out,
        mul_normal,
        ops::mul::mul,
        mul_dyn
    );
}

/// Batched `x·y + z` over `(x, y, z)` triples, appended to `out`.
pub fn fma_triples_batch(
    fmt: FpFormat,
    triples: &[(u64, u64, u64)],
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) {
    out.reserve(triples.len());
    if simd::try_fma_triples_batch(fmt, triples, mode, out) {
        return;
    }
    dispatch_ternary!(fmt, mode, triples.iter().copied(), out, fma, fma_dyn);
}

/// Batched `a[i] * b` against one broadcast operand (a matmul column
/// against a stationary B element), appended to `out`.
pub fn mul_bcast_batch(
    fmt: FpFormat,
    a: &[u64],
    b: u64,
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) {
    out.reserve(a.len());
    if simd::try_mul_bcast_batch(fmt, a, b, mode, out) {
        return;
    }
    dispatch_binary!(
        two_pass,
        fmt,
        mode,
        a.iter().map(|&x| (x, b)),
        out,
        mul_normal,
        ops::mul::mul,
        mul_dyn
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODES: [RoundMode; 2] = [RoundMode::NearestEven, RoundMode::Truncate];

    /// A mix of specials and normals for each format.
    fn probe_values(fmt: FpFormat) -> Vec<u64> {
        let sign = 1u64 << fmt.sign_shift();
        let mut v = vec![
            0,
            sign,
            fmt.pos_inf(),
            fmt.neg_inf(),
            fmt.min_positive(),
            fmt.min_positive() | sign,
            fmt.max_finite(),
            fmt.max_finite() | sign,
            fmt.pack(false, fmt.bias() as u64, 0), // 1.0
            fmt.pack(true, fmt.bias() as u64, 1),  // just under -1
            fmt.pack(false, fmt.bias() as u64 + 1, fmt.frac_mask()), // just under 4
            fmt.pack(false, 1, fmt.frac_mask()),   // near the flush cliff
            fmt.pack(true, fmt.max_biased_exp(), fmt.frac_mask() >> 1),
            fmt.pack(false, 3, 5),              // denormal-ish tiny normal
            fmt.pack(false, 0, 7),              // denormal encoding (flushes)
            fmt.pack(true, 0, fmt.frac_mask()), // largest denormal encoding
            fmt.pack(false, fmt.inf_biased_exp(), 1), // NaN-pattern (classed Inf)
        ];
        // A deterministic scattering of random-ish normals.
        let mut s = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..64 {
            s = s
                .wrapping_mul(0xd129_42e2_96fe_94e3)
                .wrapping_add(0x2545_f491_4f6c_dd1d);
            v.push(s & fmt.enc_mask());
        }
        v
    }

    fn formats() -> Vec<FpFormat> {
        vec![
            FpFormat::SINGLE,
            FpFormat::FP48,
            FpFormat::DOUBLE,
            FpFormat::new(5, 10),
            FpFormat::new(2, 2),
            FpFormat::new(15, 48),
            FpFormat::new(4, 56),
        ]
    }

    #[test]
    fn scalar_fast_matches_generic_add_sub_mul() {
        for fmt in formats() {
            let vals = probe_values(fmt);
            for mode in MODES {
                for &a in &vals {
                    for &b in &vals {
                        assert_eq!(
                            add_bits(fmt, a, b, mode),
                            ops::add::add(fmt, a, b, mode),
                            "add {fmt:?} {a:#x} {b:#x} {mode:?}"
                        );
                        assert_eq!(
                            sub_bits(fmt, a, b, mode),
                            ops::add::sub(fmt, a, b, mode),
                            "sub {fmt:?} {a:#x} {b:#x} {mode:?}"
                        );
                        assert_eq!(
                            mul_bits(fmt, a, b, mode),
                            ops::mul::mul(fmt, a, b, mode),
                            "mul {fmt:?} {a:#x} {b:#x} {mode:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scalar_fast_matches_generic_fma() {
        for fmt in formats() {
            let vals = probe_values(fmt);
            // Cube over a thinned value set to keep runtime sane.
            let thin: Vec<u64> = vals.iter().step_by(3).copied().collect();
            for mode in MODES {
                for &a in &thin {
                    for &b in &thin {
                        for &c in &thin {
                            assert_eq!(
                                fma_bits(fmt, a, b, c, mode),
                                ops::fma::fma(fmt, a, b, c, mode),
                                "fma {fmt:?} {a:#x} {b:#x} {c:#x} {mode:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn batch_matches_scalar_and_appends() {
        let fmt = FpFormat::SINGLE;
        let vals = probe_values(fmt);
        let a: Vec<u64> = vals.to_vec();
        let b: Vec<u64> = vals.iter().rev().copied().collect();
        let mut out = vec![(0xdead, Flags::NONE)]; // pre-existing element survives
        add_bits_batch(fmt, &a, &b, RoundMode::NearestEven, &mut out);
        assert_eq!(out.len(), 1 + a.len());
        for i in 0..a.len() {
            assert_eq!(
                out[1 + i],
                add_bits(fmt, a[i], b[i], RoundMode::NearestEven)
            );
        }
    }

    #[test]
    fn batch_empty_slices_are_noops() {
        let fmt = FpFormat::FP48;
        let mut out = Vec::new();
        add_bits_batch(fmt, &[], &[], RoundMode::NearestEven, &mut out);
        sub_bits_batch(fmt, &[], &[], RoundMode::Truncate, &mut out);
        mul_bits_batch(fmt, &[], &[], RoundMode::NearestEven, &mut out);
        fma_bits_batch(fmt, &[], &[], &[], RoundMode::NearestEven, &mut out);
        add_pairs_batch(fmt, &[], RoundMode::NearestEven, &mut out);
        sub_pairs_batch(fmt, &[], RoundMode::NearestEven, &mut out);
        mul_pairs_batch(fmt, &[], RoundMode::NearestEven, &mut out);
        fma_triples_batch(fmt, &[], RoundMode::NearestEven, &mut out);
        mul_bcast_batch(fmt, &[], 0, RoundMode::NearestEven, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn add_batch_length_mismatch_panics() {
        let mut out = Vec::new();
        add_bits_batch(
            FpFormat::SINGLE,
            &[0],
            &[],
            RoundMode::NearestEven,
            &mut out,
        );
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn mul_batch_length_mismatch_panics() {
        let mut out = Vec::new();
        mul_bits_batch(
            FpFormat::SINGLE,
            &[0, 1],
            &[0],
            RoundMode::Truncate,
            &mut out,
        );
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn fma_batch_length_mismatch_panics() {
        let mut out = Vec::new();
        fma_bits_batch(
            FpFormat::DOUBLE,
            &[0],
            &[0],
            &[0, 1],
            RoundMode::NearestEven,
            &mut out,
        );
    }

    #[test]
    fn bcast_matches_pairs() {
        let fmt = FpFormat::DOUBLE;
        let a: Vec<u64> = probe_values(fmt);
        let b = 0x4008_0000_0000_0000u64; // 3.0
        let pairs: Vec<(u64, u64)> = a.iter().map(|&x| (x, b)).collect();
        let mut out1 = Vec::new();
        let mut out2 = Vec::new();
        mul_bcast_batch(fmt, &a, b, RoundMode::NearestEven, &mut out1);
        mul_pairs_batch(fmt, &pairs, RoundMode::NearestEven, &mut out2);
        assert_eq!(out1, out2);
    }
}
