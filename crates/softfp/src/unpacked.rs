//! Unpacked operand representation — the output of the hardware's
//! *denormalization* stage.
//!
//! The paper's first pipeline stage ("denormalizer") makes the hidden bit
//! explicit and classifies the operand by comparing the exponent against
//! zero. `Unpacked` is exactly that wire bundle: classification plus an
//! explicit-hidden-bit significand and an unbiased exponent.

use crate::format::FpFormat;

/// Operand classification after the denormalization stage.
///
/// There is no `NaN` class: the cores treat every all-ones-exponent
/// encoding as an infinity (the paper provides no NaN handling), and
/// denormal encodings are flushed to `Zero`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Class {
    /// ±0, including flushed denormal inputs.
    Zero,
    /// A normal number with the hidden bit set.
    Normal,
    /// ±∞ (any encoding with an all-ones exponent).
    Inf,
}

/// An operand with the hidden bit made explicit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Unpacked {
    /// Sign bit (true = negative).
    pub sign: bool,
    /// Unbiased exponent. Meaningful only for `Class::Normal`.
    pub exp: i32,
    /// Significand with the hidden bit at position `fmt.frac_bits()`.
    /// Zero for `Class::Zero`; ignored for `Class::Inf`.
    pub sig: u64,
    /// Classification.
    pub class: Class,
}

impl Unpacked {
    /// Decode an encoding, flushing denormals to zero — the behaviour of
    /// the paper's denormalization subunit.
    pub fn from_bits(fmt: FpFormat, bits: u64) -> Unpacked {
        let (sign, biased, frac) = fmt.unpack_fields(bits);
        if biased == fmt.inf_biased_exp() {
            // The cores reserve the all-ones exponent for infinity; any
            // fraction payload is ignored (no NaNs).
            Unpacked {
                sign,
                exp: 0,
                sig: 0,
                class: Class::Inf,
            }
        } else if biased == 0 {
            // True zero and denormals both flush to zero.
            Unpacked {
                sign,
                exp: 0,
                sig: 0,
                class: Class::Zero,
            }
        } else {
            Unpacked {
                sign,
                exp: biased as i32 - fmt.bias(),
                sig: frac | (1u64 << fmt.frac_bits()),
                class: Class::Normal,
            }
        }
    }

    /// Positive or negative zero.
    pub fn zero(sign: bool) -> Unpacked {
        Unpacked {
            sign,
            exp: 0,
            sig: 0,
            class: Class::Zero,
        }
    }

    /// Positive or negative infinity.
    pub fn inf(sign: bool) -> Unpacked {
        Unpacked {
            sign,
            exp: 0,
            sig: 0,
            class: Class::Inf,
        }
    }

    /// Re-encode. For `Normal`, the caller guarantees the significand is
    /// normalized (hidden bit set) and the exponent is in range; use the
    /// rounding module for anything that may overflow or underflow.
    pub fn to_bits(&self, fmt: FpFormat) -> u64 {
        match self.class {
            Class::Zero => fmt.pack(self.sign, 0, 0),
            Class::Inf => fmt.pack(self.sign, fmt.inf_biased_exp(), 0),
            Class::Normal => {
                debug_assert!(
                    self.sig >> fmt.frac_bits() == 1,
                    "significand not normalized"
                );
                let biased = (self.exp + fmt.bias()) as u64;
                debug_assert!(
                    biased >= 1 && biased <= fmt.max_biased_exp(),
                    "exponent out of range for pack"
                );
                fmt.pack(self.sign, biased, self.sig & fmt.frac_mask())
            }
        }
    }

    /// True if this operand is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.class == Class::Zero
    }

    /// True if this operand is an infinity.
    #[inline]
    pub fn is_inf(&self) -> bool {
        self.class == Class::Inf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F32: FpFormat = FpFormat::SINGLE;

    #[test]
    fn unpack_one() {
        let u = Unpacked::from_bits(F32, 0x3f80_0000); // 1.0f32
        assert_eq!(u.class, Class::Normal);
        assert_eq!(u.exp, 0);
        assert_eq!(u.sig, 1 << 23);
        assert!(!u.sign);
    }

    #[test]
    fn unpack_negative() {
        let u = Unpacked::from_bits(F32, 0xc000_0000); // -2.0f32
        assert!(u.sign);
        assert_eq!(u.exp, 1);
        assert_eq!(u.sig, 1 << 23);
    }

    #[test]
    fn denormals_flush() {
        let u = Unpacked::from_bits(F32, 0x0000_0001); // smallest denormal
        assert_eq!(u.class, Class::Zero);
        let u = Unpacked::from_bits(F32, 0x807f_ffff); // largest negative denormal
        assert_eq!(u.class, Class::Zero);
        assert!(u.sign);
    }

    #[test]
    fn nan_encodings_read_as_inf() {
        let u = Unpacked::from_bits(F32, 0x7fc0_0000); // a quiet NaN in IEEE
        assert_eq!(u.class, Class::Inf);
    }

    #[test]
    fn roundtrip_normals() {
        for bits in [
            0x3f80_0000u64,
            0x4049_0fdb,
            0x0080_0000,
            0x7f7f_ffff,
            0xbf00_0000,
        ] {
            let u = Unpacked::from_bits(F32, bits);
            assert_eq!(u.to_bits(F32), bits);
        }
    }

    #[test]
    fn roundtrip_specials() {
        assert_eq!(
            Unpacked::from_bits(F32, F32.pos_inf()).to_bits(F32),
            F32.pos_inf()
        );
        assert_eq!(
            Unpacked::from_bits(F32, F32.neg_inf()).to_bits(F32),
            F32.neg_inf()
        );
        let neg_zero = 1u64 << 31;
        assert_eq!(Unpacked::from_bits(F32, neg_zero).to_bits(F32), neg_zero);
    }
}
