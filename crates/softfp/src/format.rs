//! Floating-point format descriptions.
//!
//! A format is `1` sign bit, `exp_bits` of biased exponent and `frac_bits`
//! of fraction (the mantissa's hidden leading one is implicit for normal
//! numbers). The paper evaluates 32-, 48- and 64-bit precisions; the 48-bit
//! split is not spelled out there, so we use 1 + 11 + 36 (exponent sized
//! like double precision) which places the 48-bit units between single and
//! double in mantissa-datapath cost, matching the area ordering of the
//! paper's Tables 1 and 2.

use core::fmt;

/// A parameterized floating-point format.
///
/// Invariants (checked by [`FpFormat::new`]):
/// * `2 <= exp_bits <= 15`
/// * `2 <= frac_bits <= 56`
/// * `1 + exp_bits + frac_bits <= 64` so any value encodes in a `u64`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct FpFormat {
    exp_bits: u32,
    frac_bits: u32,
}

impl FpFormat {
    /// IEEE 754 single precision layout (1 + 8 + 23).
    pub const SINGLE: FpFormat = FpFormat {
        exp_bits: 8,
        frac_bits: 23,
    };
    /// The paper's intermediate 48-bit precision (1 + 11 + 36).
    pub const FP48: FpFormat = FpFormat {
        exp_bits: 11,
        frac_bits: 36,
    };
    /// IEEE 754 double precision layout (1 + 11 + 52).
    pub const DOUBLE: FpFormat = FpFormat {
        exp_bits: 11,
        frac_bits: 52,
    };
    /// Alias for [`FpFormat::FP48`] under the paper's "48-bit word" name.
    pub const W48: FpFormat = Self::FP48;

    /// The three precisions evaluated throughout the paper.
    pub const PAPER_PRECISIONS: [FpFormat; 3] = [Self::SINGLE, Self::FP48, Self::DOUBLE];

    /// Create a custom format.
    ///
    /// # Panics
    /// Panics if the field widths violate the invariants listed on the type.
    pub const fn new(exp_bits: u32, frac_bits: u32) -> FpFormat {
        assert!(
            exp_bits >= 2 && exp_bits <= 15,
            "exponent width out of range"
        );
        assert!(
            frac_bits >= 2 && frac_bits <= 56,
            "fraction width out of range"
        );
        assert!(1 + exp_bits + frac_bits <= 64, "format wider than 64 bits");
        FpFormat {
            exp_bits,
            frac_bits,
        }
    }

    /// Checked constructor for use with untrusted widths.
    pub fn try_new(exp_bits: u32, frac_bits: u32) -> Option<FpFormat> {
        if (2..=15).contains(&exp_bits)
            && (2..=56).contains(&frac_bits)
            && 1 + exp_bits + frac_bits <= 64
        {
            Some(FpFormat {
                exp_bits,
                frac_bits,
            })
        } else {
            None
        }
    }

    /// Width of the biased exponent field in bits.
    #[inline]
    pub const fn exp_bits(self) -> u32 {
        self.exp_bits
    }

    /// Width of the stored fraction field in bits (excludes the hidden one).
    #[inline]
    pub const fn frac_bits(self) -> u32 {
        self.frac_bits
    }

    /// Total encoding width: `1 + exp_bits + frac_bits`.
    #[inline]
    pub const fn total_bits(self) -> u32 {
        1 + self.exp_bits + self.frac_bits
    }

    /// Width of the significand with the hidden bit made explicit.
    #[inline]
    pub const fn sig_bits(self) -> u32 {
        self.frac_bits + 1
    }

    /// Exponent bias (`2^(exp_bits-1) - 1`).
    #[inline]
    pub const fn bias(self) -> i32 {
        (1i32 << (self.exp_bits - 1)) - 1
    }

    /// Largest biased exponent of a *normal* number (all-ones minus one).
    #[inline]
    pub const fn max_biased_exp(self) -> u64 {
        (1u64 << self.exp_bits) - 2
    }

    /// The all-ones biased exponent used for infinity in this library
    /// (the paper's cores do not produce NaNs).
    #[inline]
    pub const fn inf_biased_exp(self) -> u64 {
        (1u64 << self.exp_bits) - 1
    }

    /// Minimum (most negative) unbiased exponent of a normal number.
    #[inline]
    pub const fn min_exp(self) -> i32 {
        1 - self.bias()
    }

    /// Maximum unbiased exponent of a normal number.
    #[inline]
    pub const fn max_exp(self) -> i32 {
        self.max_biased_exp() as i32 - self.bias()
    }

    /// Mask covering the fraction field (in the low bits of the encoding).
    #[inline]
    pub const fn frac_mask(self) -> u64 {
        (1u64 << self.frac_bits) - 1
    }

    /// Mask covering the whole encoding.
    #[inline]
    pub const fn enc_mask(self) -> u64 {
        if self.total_bits() == 64 {
            u64::MAX
        } else {
            (1u64 << self.total_bits()) - 1
        }
    }

    /// Bit position of the sign bit within the encoding.
    #[inline]
    pub const fn sign_shift(self) -> u32 {
        self.exp_bits + self.frac_bits
    }

    /// Encoding of positive zero.
    #[inline]
    pub const fn zero(self) -> u64 {
        0
    }

    /// Encoding of +infinity (all-ones exponent, zero fraction).
    #[inline]
    pub const fn pos_inf(self) -> u64 {
        self.inf_biased_exp() << self.frac_bits
    }

    /// Encoding of -infinity.
    #[inline]
    pub const fn neg_inf(self) -> u64 {
        self.pos_inf() | (1u64 << self.sign_shift())
    }

    /// Encoding of the largest finite positive number.
    #[inline]
    pub const fn max_finite(self) -> u64 {
        (self.max_biased_exp() << self.frac_bits) | self.frac_mask()
    }

    /// Encoding of the smallest positive *normal* number (denormals do not
    /// exist in this library).
    #[inline]
    pub const fn min_positive(self) -> u64 {
        1u64 << self.frac_bits
    }

    /// Assemble an encoding from raw fields. Fields are masked to width.
    #[inline]
    pub const fn pack(self, sign: bool, biased_exp: u64, frac: u64) -> u64 {
        ((sign as u64) << self.sign_shift())
            | ((biased_exp & ((1u64 << self.exp_bits) - 1)) << self.frac_bits)
            | (frac & self.frac_mask())
    }

    /// Split an encoding into `(sign, biased_exp, frac)`.
    #[inline]
    pub const fn unpack_fields(self, bits: u64) -> (bool, u64, u64) {
        let sign = (bits >> self.sign_shift()) & 1 == 1;
        let exp = (bits >> self.frac_bits) & ((1u64 << self.exp_bits) - 1);
        let frac = bits & self.frac_mask();
        (sign, exp, frac)
    }
}

impl FpFormat {
    /// The canonical flag/config token for this format.
    ///
    /// The paper's three precisions get short names — `"f32"`, `"f48"`,
    /// `"f64"` — and any other format spells out its field widths as
    /// `"e<exp_bits>f<frac_bits>"`. The token round-trips through
    /// [`FpFormat::from_str`](core::str::FromStr), and every CLI flag in the
    /// workspace (`fpuserve --policy`, `fpugen --format`, `fpuconform
    /// --formats`) speaks exactly this grammar.
    pub fn canonical_name(self) -> String {
        match self {
            FpFormat::SINGLE => "f32".to_string(),
            FpFormat::FP48 => "f48".to_string(),
            FpFormat::DOUBLE => "f64".to_string(),
            other => format!("e{}f{}", other.exp_bits, other.frac_bits),
        }
    }
}

/// Error returned when a format token fails to parse.
///
/// Produced by the [`FromStr`](core::str::FromStr) impl on [`FpFormat`];
/// carries the offending token for diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseFormatError {
    token: String,
}

impl ParseFormatError {
    /// The token that failed to parse.
    pub fn token(&self) -> &str {
        &self.token
    }
}

impl fmt::Display for ParseFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown format {:?} (expected f32, f48, f64 or e<exp>f<frac> within \
             2..=15 exponent and 2..=56 fraction bits, total <= 64)",
            self.token
        )
    }
}

impl std::error::Error for ParseFormatError {}

impl core::str::FromStr for FpFormat {
    type Err = ParseFormatError;

    /// Parse the canonical token grammar emitted by
    /// [`FpFormat::canonical_name`]: `"f32"`, `"f48"`, `"f64"` (with the
    /// legacy aliases `"single"` and `"double"`), or `"e<exp>f<frac>"` for
    /// custom field widths.
    fn from_str(s: &str) -> Result<FpFormat, ParseFormatError> {
        let err = || ParseFormatError {
            token: s.to_string(),
        };
        match s {
            "f32" | "single" => Ok(FpFormat::SINGLE),
            "f48" | "w48" => Ok(FpFormat::FP48),
            "f64" | "double" => Ok(FpFormat::DOUBLE),
            _ => {
                let rest = s.strip_prefix('e').ok_or_else(err)?;
                let (e, f) = rest.split_once('f').ok_or_else(err)?;
                let exp: u32 = e.parse().map_err(|_| err())?;
                let frac: u32 = f.parse().map_err(|_| err())?;
                FpFormat::try_new(exp, frac).ok_or_else(err)
            }
        }
    }
}

impl fmt::Debug for FpFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FpFormat({}-bit: 1+{}+{})",
            self.total_bits(),
            self.exp_bits,
            self.frac_bits
        )
    }
}

impl fmt::Display for FpFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.total_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_matches_ieee754() {
        let f = FpFormat::SINGLE;
        assert_eq!(f.total_bits(), 32);
        assert_eq!(f.bias(), 127);
        assert_eq!(f.max_biased_exp(), 254);
        assert_eq!(f.inf_biased_exp(), 255);
        assert_eq!(f.pos_inf(), 0x7f80_0000);
        assert_eq!(f.neg_inf(), 0xff80_0000);
        assert_eq!(f.max_finite(), 0x7f7f_ffff);
        assert_eq!(f.min_positive(), 0x0080_0000);
    }

    #[test]
    fn double_matches_ieee754() {
        let f = FpFormat::DOUBLE;
        assert_eq!(f.total_bits(), 64);
        assert_eq!(f.bias(), 1023);
        assert_eq!(f.pos_inf(), 0x7ff0_0000_0000_0000);
        assert_eq!(f.enc_mask(), u64::MAX);
        assert_eq!(f.max_finite(), 0x7fef_ffff_ffff_ffff);
    }

    #[test]
    fn fp48_layout() {
        let f = FpFormat::FP48;
        assert_eq!(f.total_bits(), 48);
        assert_eq!(f.bias(), 1023);
        assert_eq!(f.sig_bits(), 37);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let f = FpFormat::FP48;
        let bits = f.pack(true, 0x3ff, 0x1_2345_6789);
        let (s, e, m) = f.unpack_fields(bits);
        assert!(s);
        assert_eq!(e, 0x3ff);
        assert_eq!(m, 0x1_2345_6789);
    }

    #[test]
    fn try_new_bounds() {
        assert!(FpFormat::try_new(8, 23).is_some());
        assert!(FpFormat::try_new(1, 23).is_none());
        assert!(FpFormat::try_new(16, 23).is_none());
        assert!(FpFormat::try_new(15, 56).is_none()); // 72 bits total
        assert!(FpFormat::try_new(8, 1).is_none());
        assert!(FpFormat::try_new(7, 56).is_some());
    }

    #[test]
    fn sign_shift_and_masks() {
        let f = FpFormat::SINGLE;
        assert_eq!(f.sign_shift(), 31);
        assert_eq!(f.frac_mask(), 0x007f_ffff);
        assert_eq!(f.enc_mask(), 0xffff_ffff);
    }

    #[test]
    fn canonical_name_round_trips() {
        for fmt in [
            FpFormat::SINGLE,
            FpFormat::FP48,
            FpFormat::DOUBLE,
            FpFormat::new(6, 9),
            FpFormat::new(7, 12),
            FpFormat::new(15, 48),
        ] {
            let token = fmt.canonical_name();
            assert_eq!(token.parse::<FpFormat>().unwrap(), fmt, "token {token}");
        }
        assert_eq!(FpFormat::SINGLE.canonical_name(), "f32");
        assert_eq!(FpFormat::FP48.canonical_name(), "f48");
        assert_eq!(FpFormat::DOUBLE.canonical_name(), "f64");
        assert_eq!(FpFormat::new(6, 9).canonical_name(), "e6f9");
    }

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!("single".parse::<FpFormat>().unwrap(), FpFormat::SINGLE);
        assert_eq!("double".parse::<FpFormat>().unwrap(), FpFormat::DOUBLE);
        assert_eq!("w48".parse::<FpFormat>().unwrap(), FpFormat::FP48);
    }

    #[test]
    fn parse_rejects_bad_tokens() {
        for bad in [
            "", "f", "f31", "fp32", "e8", "e8f", "ef23", "e1f23", "e16f23", "e8f1", "e15f56",
            "e8f23x", "F32", " f32", "f32 ", "e-8f23", "e8f-23",
        ] {
            let err = bad.parse::<FpFormat>().unwrap_err();
            assert_eq!(err.token(), bad);
            assert!(err.to_string().contains("unknown format"), "{bad}");
        }
    }
}
