//! Runtime-dispatched wide batch lanes over the fast-path kernels.
//!
//! The PR 5 fast lanes in [`crate::fastpath`] deliberately keep the
//! baseline-x86-64 auto-vectorizer away from the add/sub datapath: without
//! AVX2 a per-lane variable shift or leading-zero count is a multi-
//! instruction emulation that loses to good scalar code. But AVX2 has
//! native per-lane 64-bit variable shifts (`vpsllvq`/`vpsrlvq`) and a cheap
//! byte-LUT popcount, which is everything the normal-path datapath needs.
//! This module adds that third lane:
//!
//! * **Branchless block kernels** (`add_block`, `mul_block`, `fma_block`)
//!   written in vector-value form over a [`LANES`]-wide word type, so the
//!   both-operands-normal datapath is explicit vector arithmetic with
//!   lane-mask selects instead of branches. The blocks are total over
//!   arbitrary encodings (special operands produce garbage that the
//!   partition pass discards — never a panic or UB) and bit-exact twins
//!   of the scalar fast lane on normal operands. The wide-format multiply
//!   and fma run on `(hi, lo)` u64 pairs (32-bit limb splits) instead of
//!   `u128`, so every operation maps to a vector instruction.
//! * **Classify-then-partition batch drivers**: each [`LANES`]-sized chunk
//!   is classified branchlessly (a normality bitmask), computed
//!   unconditionally by the wide kernel, and the rare special lanes are
//!   then overwritten in-place by a sparse fixup pass through the generic
//!   [`crate::ops`] path. Dense-compute + sparse-fixup beats literally
//!   splitting the batch into runs: all-normal runs shorter than a chunk
//!   would fragment the vector loop on exactly the workloads that have
//!   occasional specials.
//! * **Explicit intrinsics engines** behind the `Words` trait: the
//!   block kernels are generic over a lane-word vocabulary (shifts,
//!   compares-to-mask, select, msb scan, 32×32 multiply), and each
//!   engine implements it with `#[target_feature]`-annotated methods —
//!   AVX-512 (`__m512i`, native `vplzcntq` and `__mmask8` compares),
//!   AVX2 (`__m256i` pairs, `vpsllvq`/`vpsrlvq` and a vpshufb-popcount
//!   msb emulation), and a portable `[u64; LANES]` twin for every other
//!   target. Explicit intrinsics, not autovectorization: LLVM refuses
//!   to vectorize the long select-chain bodies on its own (measured
//!   ~2.2× as scalarized code vs ≥5× with the intrinsics engines). The
//!   epilogue is vectorized too — packed flag words become [`Flags`]
//!   byte patterns via an in-register 8-entry LUT and are stored
//!   interleaved with the results, under compile-time layout checks.
//! * **Runtime dispatch**: a process-wide [`SimdPolicy`]
//!   (auto / force-scalar / force-wide, `FPFPGA_SIMD` environment
//!   override) resolves to an engine once per batch, by positive
//!   feature detection. Engines are bit-exact on every lane the
//!   partition pass keeps; garbage on discarded special lanes may
//!   differ (shifts ≥ 64 zero on AVX but wrap on the portable twin),
//!   which the drivers never observe.
//!
//! The batch entry points in [`crate::fastpath`] consult this module
//! first, so every existing consumer (the FPU pipeline's `run_batch`, the
//! batched matmul kernels, the serving eltwise path, the network
//! front-end) picks up the wide engine with zero call-site changes.

use crate::exceptions::Flags;
use crate::fastpath::{self, lane_of, Lane};
use crate::format::FpFormat;
use crate::ops;
use crate::ops::add::GRS_BITS;
use crate::ops::fma::FMA_GRS;
use crate::round::RoundMode;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Lanes per chunk. Eight u64 lanes = one 512-bit register (AVX-512) or
/// two 256-bit registers (AVX2) per operand stream; wide enough to keep
/// the vector units busy through the long select chains, narrow enough
/// that the per-chunk classify mask and tail handling stay cheap.
pub const LANES: usize = 8;

// ---------------------------------------------------------------------------
// Policy and engine resolution
// ---------------------------------------------------------------------------

/// Process-wide SIMD dispatch policy.
///
/// The default (`Auto`) uses the best wide engine the host supports
/// (AVX-512, then AVX2) and the scalar fast lane otherwise — the
/// portable twin of the wide kernel exists for conformance work, not
/// speed, so `Auto` never picks it.
/// `FPFPGA_SIMD=auto|scalar|wide|avx2|portable` overrides the default at
/// startup; [`set_simd_policy`] overrides both.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum SimdPolicy {
    /// Best detected wide engine, scalar otherwise.
    Auto = 0,
    /// Always the scalar fast lane (the PR 5 behaviour).
    ForceScalar = 1,
    /// The wide kernels: best detected engine, portable twin otherwise.
    ForceWide = 2,
    /// The portable twin of the wide kernels, even on AVX2 hosts.
    ForceWidePortable = 3,
    /// The AVX2 engine even when AVX-512 is available (portable twin
    /// when AVX2 is missing too).
    ForceWideAvx2 = 4,
}

/// The engine a batch actually runs on after policy resolution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimdEngine {
    /// Per-element scalar fast lane.
    Scalar,
    /// Wide kernels compiled under `#[target_feature(enable = "avx2")]`.
    WideAvx2,
    /// Wide kernels compiled under the AVX-512 feature set
    /// (`avx512f/cd/vl/dq/bw`): one 512-bit register per chunk stream and
    /// native `vplzcntq` for the normalization scans.
    WideAvx512,
    /// The same wide kernels compiled for the baseline target.
    WidePortable,
}

const POLICY_UNSET: u8 = 0xff;
static POLICY: AtomicU8 = AtomicU8::new(POLICY_UNSET);
static ENV_POLICY: OnceLock<SimdPolicy> = OnceLock::new();

/// Force the dispatch policy for the whole process (overrides the
/// `FPFPGA_SIMD` environment variable).
pub fn set_simd_policy(policy: SimdPolicy) {
    POLICY.store(policy as u8, Ordering::Relaxed);
}

/// The currently effective policy: an explicit [`set_simd_policy`] call
/// wins, then the `FPFPGA_SIMD` environment variable, then `Auto`.
/// Unrecognized environment values fall back to `Auto`.
pub fn simd_policy() -> SimdPolicy {
    match POLICY.load(Ordering::Relaxed) {
        0 => SimdPolicy::Auto,
        1 => SimdPolicy::ForceScalar,
        2 => SimdPolicy::ForceWide,
        3 => SimdPolicy::ForceWidePortable,
        4 => SimdPolicy::ForceWideAvx2,
        _ => *ENV_POLICY.get_or_init(|| match std::env::var("FPFPGA_SIMD").as_deref() {
            Ok("scalar") => SimdPolicy::ForceScalar,
            Ok("wide") => SimdPolicy::ForceWide,
            Ok("avx2") => SimdPolicy::ForceWideAvx2,
            Ok("portable") => SimdPolicy::ForceWidePortable,
            _ => SimdPolicy::Auto,
        }),
    }
}

/// Cached `is_x86_feature_detected!("avx2")`; always `false` off x86.
pub fn avx2_available() -> bool {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    {
        false
    }
}

/// Cached detection of the AVX-512 feature set the wide kernels compile
/// against (`avx512f/cd/vl/dq/bw`); always `false` off x86.
pub fn avx512_available() -> bool {
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    {
        static AVX512: OnceLock<bool> = OnceLock::new();
        *AVX512.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512cd")
                && std::arch::is_x86_feature_detected!("avx512vl")
                && std::arch::is_x86_feature_detected!("avx512dq")
                && std::arch::is_x86_feature_detected!("avx512bw")
        })
    }
    #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
    {
        false
    }
}

/// The best wide engine the host supports, or the portable twin.
fn best_wide_engine() -> SimdEngine {
    if avx512_available() {
        SimdEngine::WideAvx512
    } else if avx2_available() {
        SimdEngine::WideAvx2
    } else {
        SimdEngine::WidePortable
    }
}

/// Resolve the policy to the engine batches will run on.
pub fn active_engine() -> SimdEngine {
    match simd_policy() {
        SimdPolicy::ForceScalar => SimdEngine::Scalar,
        SimdPolicy::ForceWidePortable => SimdEngine::WidePortable,
        SimdPolicy::ForceWideAvx2 => {
            if avx2_available() {
                SimdEngine::WideAvx2
            } else {
                SimdEngine::WidePortable
            }
        }
        SimdPolicy::ForceWide => best_wide_engine(),
        SimdPolicy::Auto => match best_wide_engine() {
            SimdEngine::WidePortable => SimdEngine::Scalar,
            eng => eng,
        },
    }
}

/// The wide engine to use, or `None` when the scalar lane should run.
#[inline]
fn wide_engine() -> Option<SimdEngine> {
    match active_engine() {
        SimdEngine::Scalar => None,
        eng => Some(eng),
    }
}

// ---------------------------------------------------------------------------
// Branchless scalar building blocks
// ---------------------------------------------------------------------------

/// Select on u64 values with both arms pre-computed — compiles to a
/// conditional move scalarly and a blend in the vector loops.
#[inline(always)]
fn sel(c: bool, t: u64, f: u64) -> u64 {
    if c {
        t
    } else {
        f
    }
}

/// Select on i64 values.
#[inline(always)]
fn seli(c: bool, t: i64, f: i64) -> i64 {
    if c {
        t
    } else {
        f
    }
}

/// Index of the most significant set bit via bit-smear + popcount
/// (`-1` for zero). LLVM lowers the vector popcount with the `vpshufb`
/// nibble LUT under AVX2 — no scalar `lzcnt` emulation, no table gather.
#[inline(always)]
fn msb_index(x: u64) -> i64 {
    let mut s = x;
    s |= s >> 1;
    s |= s >> 2;
    s |= s >> 4;
    s |= s >> 8;
    s |= s >> 16;
    s |= s >> 32;
    s.count_ones() as i64 - 1
}

/// Full 64×64→128 multiply as `(hi, lo)` u64 words via 32-bit limb
/// splits. All four partial products are 32×32→64 (`vpmuludq` shape);
/// the carry chain is exact for every input pair.
#[inline(always)]
fn widening_mul(x: u64, y: u64) -> (u64, u64) {
    const M32: u64 = 0xffff_ffff;
    let (x0, x1) = (x & M32, x >> 32);
    let (y0, y1) = (y & M32, y >> 32);
    let m00 = x0.wrapping_mul(y0);
    let m01 = x0.wrapping_mul(y1);
    let m10 = x1.wrapping_mul(y0);
    let m11 = x1.wrapping_mul(y1);
    let mid = (m00 >> 32).wrapping_add(m01 & M32).wrapping_add(m10 & M32);
    let lo = (mid << 32) | (m00 & M32);
    let hi = m11
        .wrapping_add(m01 >> 32)
        .wrapping_add(m10 >> 32)
        .wrapping_add(mid >> 32);
    (hi, lo)
}

/// Sticky right shift of a `(hi, lo)` pair by `n` (any `n`; shifts of 128
/// or more are clamped to 127, which is exact for every value this module
/// builds — they all fit well under 127 bits). Returns the shifted pair
/// and a 0/1 sticky word. The `(x << (63 - m)) << 1` double shifts keep
/// every hardware shift amount strictly below 64.
#[inline(always)]
fn shr128_sticky(hi: u64, lo: u64, n: u64) -> (u64, u64, u64) {
    let n = sel(n > 127, 127, n);
    let ge64 = n >= 64;
    let m = (n & 63) as u32;
    // n < 64 frame.
    let a_hi = hi >> m;
    let a_lo = (lo >> m) | ((hi << (63 - m)) << 1);
    let a_lost = (lo << (63 - m)) << 1;
    // n >= 64 frame (shift the high word by n - 64).
    let b_lo = hi >> m;
    let b_lost = ((hi << (63 - m)) << 1) | (lo != 0) as u64;
    let r_hi = sel(ge64, 0, a_hi);
    let r_lo = sel(ge64, b_lo, a_lo);
    let lost = (sel(ge64, b_lost, a_lost) != 0) as u64;
    (r_hi, r_lo, lost)
}

const FL_OVERFLOW: u64 = 1;
const FL_UNDERFLOW: u64 = 2;
const FL_INEXACT: u64 = 4;

/// Expand a lane's packed flag word into [`Flags`]. The fast lane never
/// raises `invalid` or `div_by_zero` (those need a special operand, which
/// the partition pass routes to the generic path).
#[inline(always)]
pub(crate) fn unpack_flags(fl: u64) -> Flags {
    Flags {
        overflow: fl & FL_OVERFLOW != 0,
        underflow: fl & FL_UNDERFLOW != 0,
        invalid: false,
        inexact: fl & FL_INEXACT != 0,
        div_by_zero: false,
    }
}

/// Branchless round + range-checked pack: the select-based twin of
/// `fastpath::round_pack` + `finish_pack`. `kill` zeroes the result and
/// flags (exact cancellation, and a don't-care for special lanes).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn round_pack_lane(
    e: u32,
    f: u32,
    sign: u64,
    exp: i64,
    kept: u64,
    tail: u64,
    grs: u32,
    rtn: bool,
    kill: bool,
) -> (u64, u64) {
    let bias = (1i64 << (e - 1)) - 1;
    let max_exp = ((1i64 << e) - 2) - bias;
    let min_exp = 1 - bias;
    let inexact = tail != 0;
    let half = 1u64 << (grs - 1);
    let round_up = rtn & ((tail > half) | ((tail == half) & (kept & 1 == 1)));
    let rounded = kept.wrapping_add(round_up as u64);
    // Rounding carries out of the hidden position at most once on valid
    // lanes; `!= 0` instead of the raw high bits keeps the correction a
    // 0/1 shift even for the garbage a special lane produces.
    let carry = (rounded >> (f + 1) != 0) as u32;
    let rounded = rounded >> carry;
    let exp = exp + carry as i64;

    let over = exp > max_exp;
    let under = exp < min_exp;
    let over_mag = sel(
        rtn,
        ((1u64 << e) - 1) << f,
        (((1u64 << e) - 2) << f) | ((1u64 << f) - 1),
    );
    // Wraps when out of range; the selects only keep it in range.
    let norm_mag = (((exp + bias) as u64) << f) | (rounded & ((1u64 << f) - 1));
    let mag = sel(over, over_mag, sel(under, 0, norm_mag));
    let fl = ((over as u64) * FL_OVERFLOW)
        | ((under as u64) * FL_UNDERFLOW)
        | (((inexact | over | under) as u64) * FL_INEXACT);
    (sel(kill, 0, (sign << (e + f)) | mag), sel(kill, 0, fl))
}

// ---------------------------------------------------------------------------
// Scalar pair-datapath fma (the fast lane's wide-format kernel)
// ---------------------------------------------------------------------------
//
// The body is total: any bit pattern in, a defined (bits, flags) word
// pair out — no shift ever reaches the register width and no arithmetic
// garbage can overflow a checked operation. On operands that satisfy the
// fast-lane precondition (all normal) the result is bit-identical to the
// generic path; that is what the conformance sweeps and the
// `simd_vs_generic` proptests pin down. The vector block kernels below
// are lane-for-lane transcriptions of the same formulas.

/// `(hi, lo)`-pair fma datapath for formats whose aligned sum exceeds 64
/// bits (W48, DOUBLE, any dynamic format with `2f + FMA_GRS + 4 > 64`).
/// This is the limb-split replacement for the old `u128` wide path: the
/// exact product comes from [`widening_mul`], alignment from
/// [`shr128_sticky`], and the add/sub/compare chain runs on word pairs
/// with explicit carries — every step a native 64-bit (and AVX2-lane)
/// operation. Also used by the scalar fast lane via [`fma_wide_scalar`].
#[inline(always)]
fn fma_lane_wide(e: u32, f: u32, a: u64, b: u64, c: u64, rtn: bool) -> (u64, u64) {
    let sign_shift = e + f;
    let frac_mask = (1u64 << f) - 1;
    let hidden = 1u64 << f;
    let bias = (1i64 << (e - 1)) - 1;
    let em = (1u64 << e) - 1;

    let psign = (a ^ b) >> sign_shift & 1;
    let csign = c >> sign_shift & 1;
    let pexp = (((a >> f) & em) as i64 - bias) + (((b >> f) & em) as i64 - bias);
    let cexp = ((c >> f) & em) as i64 - bias;

    let (p_hi, p_lo) = widening_mul((a & frac_mask) | hidden, (b & frac_mask) | hidden);
    let pw_hi = (p_hi << FMA_GRS) | (p_lo >> (64 - FMA_GRS));
    let pw_lo = p_lo << FMA_GRS;
    let c_wide = ((c & frac_mask) | hidden) << FMA_GRS;

    let shift = cexp - pexp + f as i64;
    let cdom = shift > (f + 2) as i64;
    let cneg = shift < 0;
    let mid = !cdom & !cneg;

    // v: the operand that moves; u: the anchor.
    let v0_hi = sel(cdom, pw_hi, 0);
    let v0_lo = sel(cdom, pw_lo, c_wide);
    let ramt = sel(
        cdom,
        shift as u64,
        sel(cneg, shift.wrapping_neg() as u64, 0),
    );
    let (vr_hi, vr_lo, lost) = shr128_sticky(v0_hi, v0_lo, ramt);
    let lamt = sel(mid, shift as u64, 0) as u32; // mid: 0 <= shift <= f+2
    let v_hi = (vr_hi << lamt) | ((vr_lo >> 1) >> (63 - lamt));
    let v_lo = (vr_lo << lamt) | lost; // lost is 0 whenever lamt > 0

    let u_hi = sel(cdom, 0, pw_hi);
    let u_lo = sel(cdom, c_wide, pw_lo);
    let us = sel(cdom, csign, psign);
    let vs = sel(cdom, psign, csign);
    let e_lsb = seli(
        cdom,
        cexp - (f + FMA_GRS) as i64,
        pexp - (2 * f + FMA_GRS) as i64,
    );

    // Signed combine on pairs: add-with-carry / subtract-with-borrow via
    // wrapping ops and compares (the pair twin of `ops::fma::combine`).
    let ssame = us == vs;
    let s_lo = u_lo.wrapping_add(v_lo);
    let s_hi = u_hi.wrapping_add(v_hi).wrapping_add((s_lo < u_lo) as u64);
    let ubig = (u_hi > v_hi) | ((u_hi == v_hi) & (u_lo >= v_lo));
    let x_hi = sel(ubig, u_hi, v_hi);
    let x_lo = sel(ubig, u_lo, v_lo);
    let y_hi = sel(ubig, v_hi, u_hi);
    let y_lo = sel(ubig, v_lo, u_lo);
    let d_lo = x_lo.wrapping_sub(y_lo);
    let d_hi = x_hi.wrapping_sub(y_hi).wrapping_sub((x_lo < y_lo) as u64);
    let mag_hi = sel(ssame, s_hi, d_hi);
    let mut mag_lo = sel(ssame, s_lo, d_lo);
    let sign = sel(ssame, us, sel(ubig, us, vs));
    let kill = !ssame & (mag_hi == 0) & (mag_lo == 0);
    mag_lo |= kill as u64;

    // msb of the pair, then normalize exactly as the scalar path does.
    let hz = mag_hi == 0;
    let msb = msb_index(sel(hz, mag_lo, mag_hi)) + seli(hz, 0, 64);
    let exp0 = e_lsb + msb;
    let deep = msb <= f as i64;
    let lshift = sel(deep, (f as i64 + 1 - msb) as u64, 0) as u32; // <= f+1
    let m_hi = (mag_hi << lshift) | ((mag_lo >> 1) >> (63 - lshift));
    let m_lo = mag_lo << lshift;
    let grs_raw = seli(deep, 1, msb - f as i64) as u64;
    let grs = sel(grs_raw > 63, 63, grs_raw) as u32; // clamp only reachable on garbage lanes
    let kept = (m_lo >> grs) | ((m_hi << (63 - grs)) << 1);
    let tail = m_lo & ((1u64 << grs) - 1); // grs <= f+5 on valid lanes: tail is all in the low word
    round_pack_lane(e, f, sign, exp0, kept, tail, grs, rtn, kill)
}

/// The scalar fast lane's wide-format fma: the limb-split pair datapath
/// above, returning proper [`Flags`]. Replaces the old `u128` kernel.
#[inline(always)]
pub(crate) fn fma_wide_scalar(
    e: u32,
    f: u32,
    a: u64,
    b: u64,
    c: u64,
    mode: RoundMode,
) -> (u64, Flags) {
    let (bits, fl) = fma_lane_wide(e, f, a, b, c, mode == RoundMode::NearestEven);
    (bits, unpack_flags(fl))
}

// ---------------------------------------------------------------------------
// The SIMD word: one trait, three engines
// ---------------------------------------------------------------------------
//
// `Words` is a [`LANES`]-wide vector of u64 plus an engine-specific
// lane-mask type. The block kernels below are written once, generically,
// against this trait; the three impls pin the instruction selection:
//
// * `Wp` — the portable twin: plain u64 arrays and scalar loops, no
//   feature requirement. This is what conformance sweeps force to keep
//   the wide kernels honest on any host.
// * `W2` — two `__m256i` halves under `#[target_feature(enable =
//   "avx2")]`: native `vpsllvq`/`vpsrlvq` variable shifts, `vpmuludq`
//   32×32→64 products, byte-LUT popcount for the msb scan.
// * `W5` — one `__m512i` under the AVX-512 feature set, with `__mmask8`
//   lane masks, native unsigned compares and `vplzcntq`.
//
// Every method is an `unsafe fn`: the intrinsic impls must only be
// reached after positive runtime feature detection, which the dispatch
// layer guarantees (the portable impl has no requirement). Explicit
// intrinsics — rather than autovectorized lane loops — are the point:
// LLVM scalarizes the long select chains of the fast-path datapath when
// left to vectorize them itself.
//
// Semantics contract (what the equivalence tests pin down): on lanes
// whose shift amounts stay below 64 and whose `vmul32` operands have
// clear high halves — true for every value the kernels build from
// normal operands — all three engines are bit-identical. Garbage lanes
// (special operands) may diverge between engines in the out-of-range
// shift frames (`&63` masking vs `vpsllvq` zeroing); the partition pass
// overwrites every such lane from the generic path, so the divergence
// is never observable.

/// The engine-generic SIMD word: [`LANES`] u64 lanes.
trait Words: Copy {
    /// Lane-mask type (all-ones/all-zeros words, or a compact bitmask).
    type M: Copy;
    unsafe fn splat(x: u64) -> Self;
    unsafe fn load(src: &[u64; LANES]) -> Self;
    unsafe fn store(self, dst: &mut [u64; LANES]);
    unsafe fn vadd(self, o: Self) -> Self;
    unsafe fn vsub(self, o: Self) -> Self;
    /// Low-64 product; both operands must have clear high 32 bits
    /// (`vpmuludq` shape — every call site masks or shifts first).
    unsafe fn vmul32(self, o: Self) -> Self;
    unsafe fn vand(self, o: Self) -> Self;
    unsafe fn vor(self, o: Self) -> Self;
    unsafe fn vxor(self, o: Self) -> Self;
    /// Per-lane variable left shift; amounts are < 64 on every lane
    /// whose value is kept (see the semantics contract above).
    unsafe fn shl(self, n: Self) -> Self;
    /// Per-lane variable right shift (amounts < 64 on kept lanes).
    unsafe fn shr(self, n: Self) -> Self;
    /// Uniform left shift by a runtime-constant amount (< 64).
    unsafe fn shlc(self, n: u32) -> Self;
    /// Uniform right shift by a runtime-constant amount (< 64).
    unsafe fn shrc(self, n: u32) -> Self;
    /// Index of the most significant set bit (lanes must be nonzero).
    unsafe fn vmsb(self) -> Self;
    unsafe fn veq(self, o: Self) -> Self::M;
    unsafe fn vne(self, o: Self) -> Self::M;
    unsafe fn vgt_u(self, o: Self) -> Self::M;
    unsafe fn vge_u(self, o: Self) -> Self::M;
    unsafe fn vlt_u(self, o: Self) -> Self::M;
    /// Signed compare on lanes holding two's-complement i64 values.
    unsafe fn vgt_s(self, o: Self) -> Self::M;
    unsafe fn vlt_s(self, o: Self) -> Self::M;
    unsafe fn mand(a: Self::M, b: Self::M) -> Self::M;
    unsafe fn mor(a: Self::M, b: Self::M) -> Self::M;
    unsafe fn mnot(a: Self::M) -> Self::M;
    /// Uniform mask from a bool.
    unsafe fn mbool(b: bool) -> Self::M;
    /// Pick `t` where the mask is set, `f` elsewhere.
    unsafe fn sel(m: Self::M, t: Self, f: Self) -> Self;
    /// Mask → 0/1 word per lane.
    unsafe fn m01(m: Self::M) -> Self;
    /// True when every lane of the mask is set.
    unsafe fn mall(m: Self::M) -> bool;
    /// Lane bitmask (bit `l` = lane `l` set).
    unsafe fn mbits(m: Self::M) -> u32;
    /// Per-lane table lookup `lut[self]`; lanes must be < 8.
    unsafe fn lut8(self, lut: &[u64; 8]) -> Self;
    /// Store `(self, o)` as interleaved pairs: `dst[2l] = self[l]`,
    /// `dst[2l+1] = o[l]`. `dst` must be valid for `2 * LANES` words.
    unsafe fn store_interleaved(self, o: Self, dst: *mut u64);
}

/// All-ones/all-zeros lane mask from a bool.
#[inline(always)]
fn lmask(b: bool) -> u64 {
    (b as u64).wrapping_neg()
}

/// The portable twin: u64 arrays, masks as all-ones/all-zeros words.
#[derive(Clone, Copy)]
struct Wp([u64; LANES]);

impl Words for Wp {
    type M = Wp;
    #[inline(always)]
    unsafe fn splat(x: u64) -> Wp {
        Wp([x; LANES])
    }
    #[inline(always)]
    unsafe fn load(src: &[u64; LANES]) -> Wp {
        Wp(*src)
    }
    #[inline(always)]
    unsafe fn store(self, dst: &mut [u64; LANES]) {
        *dst = self.0;
    }
    #[inline(always)]
    unsafe fn vadd(self, o: Wp) -> Wp {
        Wp(std::array::from_fn(|l| self.0[l].wrapping_add(o.0[l])))
    }
    #[inline(always)]
    unsafe fn vsub(self, o: Wp) -> Wp {
        Wp(std::array::from_fn(|l| self.0[l].wrapping_sub(o.0[l])))
    }
    #[inline(always)]
    unsafe fn vmul32(self, o: Wp) -> Wp {
        Wp(std::array::from_fn(|l| self.0[l].wrapping_mul(o.0[l])))
    }
    #[inline(always)]
    unsafe fn vand(self, o: Wp) -> Wp {
        Wp(std::array::from_fn(|l| self.0[l] & o.0[l]))
    }
    #[inline(always)]
    unsafe fn vor(self, o: Wp) -> Wp {
        Wp(std::array::from_fn(|l| self.0[l] | o.0[l]))
    }
    #[inline(always)]
    unsafe fn vxor(self, o: Wp) -> Wp {
        Wp(std::array::from_fn(|l| self.0[l] ^ o.0[l]))
    }
    #[inline(always)]
    unsafe fn shl(self, n: Wp) -> Wp {
        Wp(std::array::from_fn(|l| self.0[l] << (n.0[l] & 63)))
    }
    #[inline(always)]
    unsafe fn shr(self, n: Wp) -> Wp {
        Wp(std::array::from_fn(|l| self.0[l] >> (n.0[l] & 63)))
    }
    #[inline(always)]
    unsafe fn shlc(self, n: u32) -> Wp {
        Wp(std::array::from_fn(|l| self.0[l] << n))
    }
    #[inline(always)]
    unsafe fn shrc(self, n: u32) -> Wp {
        Wp(std::array::from_fn(|l| self.0[l] >> n))
    }
    #[inline(always)]
    unsafe fn vmsb(self) -> Wp {
        Wp(std::array::from_fn(|l| {
            63 ^ self.0[l].leading_zeros() as u64
        }))
    }
    #[inline(always)]
    unsafe fn veq(self, o: Wp) -> Wp {
        Wp(std::array::from_fn(|l| lmask(self.0[l] == o.0[l])))
    }
    #[inline(always)]
    unsafe fn vne(self, o: Wp) -> Wp {
        Wp(std::array::from_fn(|l| lmask(self.0[l] != o.0[l])))
    }
    #[inline(always)]
    unsafe fn vgt_u(self, o: Wp) -> Wp {
        Wp(std::array::from_fn(|l| lmask(self.0[l] > o.0[l])))
    }
    #[inline(always)]
    unsafe fn vge_u(self, o: Wp) -> Wp {
        Wp(std::array::from_fn(|l| lmask(self.0[l] >= o.0[l])))
    }
    #[inline(always)]
    unsafe fn vlt_u(self, o: Wp) -> Wp {
        Wp(std::array::from_fn(|l| lmask(self.0[l] < o.0[l])))
    }
    #[inline(always)]
    unsafe fn vgt_s(self, o: Wp) -> Wp {
        Wp(std::array::from_fn(|l| {
            lmask((self.0[l] as i64) > (o.0[l] as i64))
        }))
    }
    #[inline(always)]
    unsafe fn vlt_s(self, o: Wp) -> Wp {
        Wp(std::array::from_fn(|l| {
            lmask((self.0[l] as i64) < (o.0[l] as i64))
        }))
    }
    #[inline(always)]
    unsafe fn mand(a: Wp, b: Wp) -> Wp {
        a.vand(b)
    }
    #[inline(always)]
    unsafe fn mor(a: Wp, b: Wp) -> Wp {
        a.vor(b)
    }
    #[inline(always)]
    unsafe fn mnot(a: Wp) -> Wp {
        Wp(std::array::from_fn(|l| !a.0[l]))
    }
    #[inline(always)]
    unsafe fn mbool(b: bool) -> Wp {
        Wp([lmask(b); LANES])
    }
    #[inline(always)]
    unsafe fn sel(m: Wp, t: Wp, f: Wp) -> Wp {
        Wp(std::array::from_fn(|l| {
            (t.0[l] & m.0[l]) | (f.0[l] & !m.0[l])
        }))
    }
    #[inline(always)]
    unsafe fn m01(m: Wp) -> Wp {
        Wp(std::array::from_fn(|l| m.0[l] & 1))
    }
    #[inline(always)]
    unsafe fn mall(m: Wp) -> bool {
        m.0.iter().all(|&x| x == u64::MAX)
    }
    #[inline(always)]
    unsafe fn mbits(m: Wp) -> u32 {
        let mut bits = 0u32;
        for l in 0..LANES {
            bits |= ((m.0[l] & 1) as u32) << l;
        }
        bits
    }
    #[inline(always)]
    unsafe fn lut8(self, lut: &[u64; 8]) -> Wp {
        Wp(std::array::from_fn(|l| lut[(self.0[l] & 7) as usize]))
    }
    #[inline(always)]
    unsafe fn store_interleaved(self, o: Wp, dst: *mut u64) {
        for l in 0..LANES {
            dst.add(2 * l).write(self.0[l]);
            dst.add(2 * l + 1).write(o.0[l]);
        }
    }
}

/// The AVX2 and AVX-512 engines: explicit intrinsics, x86-64 only. The
/// structs never escape this module except through the generic drivers,
/// which the dispatch layer only instantiates after positive feature
/// detection.
#[cfg(target_arch = "x86_64")]
mod engines_x86 {
    use super::{Words, LANES};
    use std::arch::x86_64::*;

    /// AVX2 engine: two 256-bit halves, masks as all-ones/zeros lanes.
    #[derive(Clone, Copy)]
    pub(super) struct W2(__m256i, __m256i);

    /// Per-lane u64 popcount: nibble-LUT `vpshufb` plus `vpsadbw`
    /// horizontal byte sum.
    #[target_feature(enable = "avx2")]
    unsafe fn popcnt64x4(v: __m256i) -> __m256i {
        #[rustfmt::skip]
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let nib = _mm256_set1_epi8(0x0f);
        let lo = _mm256_shuffle_epi8(lut, _mm256_and_si256(v, nib));
        let hi = _mm256_shuffle_epi8(lut, _mm256_and_si256(_mm256_srli_epi64::<4>(v), nib));
        _mm256_sad_epu8(_mm256_add_epi8(lo, hi), _mm256_setzero_si256())
    }

    impl Words for W2 {
        type M = W2;
        #[target_feature(enable = "avx2")]
        unsafe fn splat(x: u64) -> W2 {
            let v = _mm256_set1_epi64x(x as i64);
            W2(v, v)
        }
        #[target_feature(enable = "avx2")]
        unsafe fn load(src: &[u64; LANES]) -> W2 {
            W2(
                _mm256_loadu_si256(src.as_ptr().cast()),
                _mm256_loadu_si256(src.as_ptr().add(4).cast()),
            )
        }
        #[target_feature(enable = "avx2")]
        unsafe fn store(self, dst: &mut [u64; LANES]) {
            _mm256_storeu_si256(dst.as_mut_ptr().cast(), self.0);
            _mm256_storeu_si256(dst.as_mut_ptr().add(4).cast(), self.1);
        }
        #[target_feature(enable = "avx2")]
        unsafe fn vadd(self, o: W2) -> W2 {
            W2(_mm256_add_epi64(self.0, o.0), _mm256_add_epi64(self.1, o.1))
        }
        #[target_feature(enable = "avx2")]
        unsafe fn vsub(self, o: W2) -> W2 {
            W2(_mm256_sub_epi64(self.0, o.0), _mm256_sub_epi64(self.1, o.1))
        }
        #[target_feature(enable = "avx2")]
        unsafe fn vmul32(self, o: W2) -> W2 {
            W2(_mm256_mul_epu32(self.0, o.0), _mm256_mul_epu32(self.1, o.1))
        }
        #[target_feature(enable = "avx2")]
        unsafe fn vand(self, o: W2) -> W2 {
            W2(_mm256_and_si256(self.0, o.0), _mm256_and_si256(self.1, o.1))
        }
        #[target_feature(enable = "avx2")]
        unsafe fn vor(self, o: W2) -> W2 {
            W2(_mm256_or_si256(self.0, o.0), _mm256_or_si256(self.1, o.1))
        }
        #[target_feature(enable = "avx2")]
        unsafe fn vxor(self, o: W2) -> W2 {
            W2(_mm256_xor_si256(self.0, o.0), _mm256_xor_si256(self.1, o.1))
        }
        #[target_feature(enable = "avx2")]
        unsafe fn shl(self, n: W2) -> W2 {
            W2(
                _mm256_sllv_epi64(self.0, n.0),
                _mm256_sllv_epi64(self.1, n.1),
            )
        }
        #[target_feature(enable = "avx2")]
        unsafe fn shr(self, n: W2) -> W2 {
            W2(
                _mm256_srlv_epi64(self.0, n.0),
                _mm256_srlv_epi64(self.1, n.1),
            )
        }
        #[target_feature(enable = "avx2")]
        unsafe fn shlc(self, n: u32) -> W2 {
            let c = _mm_cvtsi32_si128(n as i32);
            W2(_mm256_sll_epi64(self.0, c), _mm256_sll_epi64(self.1, c))
        }
        #[target_feature(enable = "avx2")]
        unsafe fn shrc(self, n: u32) -> W2 {
            let c = _mm_cvtsi32_si128(n as i32);
            W2(_mm256_srl_epi64(self.0, c), _mm256_srl_epi64(self.1, c))
        }
        #[target_feature(enable = "avx2")]
        unsafe fn vmsb(self) -> W2 {
            // Bit-smear to a mask of width msb+1, then popcount − 1.
            let mut s = self;
            s = s.vor(s.shrc(1));
            s = s.vor(s.shrc(2));
            s = s.vor(s.shrc(4));
            s = s.vor(s.shrc(8));
            s = s.vor(s.shrc(16));
            s = s.vor(s.shrc(32));
            let one = _mm256_set1_epi64x(1);
            W2(
                _mm256_sub_epi64(popcnt64x4(s.0), one),
                _mm256_sub_epi64(popcnt64x4(s.1), one),
            )
        }
        #[target_feature(enable = "avx2")]
        unsafe fn veq(self, o: W2) -> W2 {
            W2(
                _mm256_cmpeq_epi64(self.0, o.0),
                _mm256_cmpeq_epi64(self.1, o.1),
            )
        }
        #[target_feature(enable = "avx2")]
        unsafe fn vne(self, o: W2) -> W2 {
            W2::mnot(self.veq(o))
        }
        #[target_feature(enable = "avx2")]
        unsafe fn vgt_u(self, o: W2) -> W2 {
            // Unsigned compare = signed compare with the sign bit flipped.
            let top = _mm256_set1_epi64x(i64::MIN);
            W2(
                _mm256_cmpgt_epi64(_mm256_xor_si256(self.0, top), _mm256_xor_si256(o.0, top)),
                _mm256_cmpgt_epi64(_mm256_xor_si256(self.1, top), _mm256_xor_si256(o.1, top)),
            )
        }
        #[target_feature(enable = "avx2")]
        unsafe fn vge_u(self, o: W2) -> W2 {
            W2::mnot(o.vgt_u(self))
        }
        #[target_feature(enable = "avx2")]
        unsafe fn vlt_u(self, o: W2) -> W2 {
            o.vgt_u(self)
        }
        #[target_feature(enable = "avx2")]
        unsafe fn vgt_s(self, o: W2) -> W2 {
            W2(
                _mm256_cmpgt_epi64(self.0, o.0),
                _mm256_cmpgt_epi64(self.1, o.1),
            )
        }
        #[target_feature(enable = "avx2")]
        unsafe fn vlt_s(self, o: W2) -> W2 {
            o.vgt_s(self)
        }
        #[target_feature(enable = "avx2")]
        unsafe fn mand(a: W2, b: W2) -> W2 {
            a.vand(b)
        }
        #[target_feature(enable = "avx2")]
        unsafe fn mor(a: W2, b: W2) -> W2 {
            a.vor(b)
        }
        #[target_feature(enable = "avx2")]
        unsafe fn mnot(a: W2) -> W2 {
            let ones = _mm256_set1_epi64x(-1);
            W2(_mm256_xor_si256(a.0, ones), _mm256_xor_si256(a.1, ones))
        }
        #[target_feature(enable = "avx2")]
        unsafe fn mbool(b: bool) -> W2 {
            let v = _mm256_set1_epi64x(-(b as i64));
            W2(v, v)
        }
        #[target_feature(enable = "avx2")]
        unsafe fn sel(m: W2, t: W2, f: W2) -> W2 {
            W2(
                _mm256_blendv_epi8(f.0, t.0, m.0),
                _mm256_blendv_epi8(f.1, t.1, m.1),
            )
        }
        #[target_feature(enable = "avx2")]
        unsafe fn m01(m: W2) -> W2 {
            m.vand(W2::splat(1))
        }
        #[target_feature(enable = "avx2")]
        unsafe fn mall(m: W2) -> bool {
            W2::mbits(m) == 0xff
        }
        #[target_feature(enable = "avx2")]
        unsafe fn mbits(m: W2) -> u32 {
            let lo = _mm256_movemask_pd(_mm256_castsi256_pd(m.0)) as u32;
            let hi = _mm256_movemask_pd(_mm256_castsi256_pd(m.1)) as u32;
            lo | (hi << 4)
        }
        #[target_feature(enable = "avx2")]
        unsafe fn lut8(self, lut: &[u64; 8]) -> W2 {
            W2(
                _mm256_i64gather_epi64::<8>(lut.as_ptr().cast(), self.0),
                _mm256_i64gather_epi64::<8>(lut.as_ptr().cast(), self.1),
            )
        }
        #[target_feature(enable = "avx2")]
        unsafe fn store_interleaved(self, o: W2, dst: *mut u64) {
            // unpack{lo,hi} interleave within 128-bit halves; the
            // permutes stitch them back into sequential pair order.
            let lo0 = _mm256_unpacklo_epi64(self.0, o.0);
            let hi0 = _mm256_unpackhi_epi64(self.0, o.0);
            _mm256_storeu_si256(dst.cast(), _mm256_permute2x128_si256::<0x20>(lo0, hi0));
            _mm256_storeu_si256(
                dst.add(4).cast(),
                _mm256_permute2x128_si256::<0x31>(lo0, hi0),
            );
            let lo1 = _mm256_unpacklo_epi64(self.1, o.1);
            let hi1 = _mm256_unpackhi_epi64(self.1, o.1);
            _mm256_storeu_si256(
                dst.add(8).cast(),
                _mm256_permute2x128_si256::<0x20>(lo1, hi1),
            );
            _mm256_storeu_si256(
                dst.add(12).cast(),
                _mm256_permute2x128_si256::<0x31>(lo1, hi1),
            );
        }
    }

    /// AVX-512 engine: one 512-bit register, compact `__mmask8` masks,
    /// native unsigned compares and `vplzcntq`.
    #[derive(Clone, Copy)]
    pub(super) struct W5(__m512i);

    impl Words for W5 {
        type M = __mmask8;
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn splat(x: u64) -> W5 {
            W5(_mm512_set1_epi64(x as i64))
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn load(src: &[u64; LANES]) -> W5 {
            W5(_mm512_loadu_si512(src.as_ptr().cast()))
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn store(self, dst: &mut [u64; LANES]) {
            _mm512_storeu_si512(dst.as_mut_ptr().cast(), self.0);
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn vadd(self, o: W5) -> W5 {
            W5(_mm512_add_epi64(self.0, o.0))
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn vsub(self, o: W5) -> W5 {
            W5(_mm512_sub_epi64(self.0, o.0))
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn vmul32(self, o: W5) -> W5 {
            W5(_mm512_mul_epu32(self.0, o.0))
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn vand(self, o: W5) -> W5 {
            W5(_mm512_and_si512(self.0, o.0))
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn vor(self, o: W5) -> W5 {
            W5(_mm512_or_si512(self.0, o.0))
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn vxor(self, o: W5) -> W5 {
            W5(_mm512_xor_si512(self.0, o.0))
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn shl(self, n: W5) -> W5 {
            W5(_mm512_sllv_epi64(self.0, n.0))
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn shr(self, n: W5) -> W5 {
            W5(_mm512_srlv_epi64(self.0, n.0))
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn shlc(self, n: u32) -> W5 {
            W5(_mm512_sll_epi64(self.0, _mm_cvtsi32_si128(n as i32)))
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn shrc(self, n: u32) -> W5 {
            W5(_mm512_srl_epi64(self.0, _mm_cvtsi32_si128(n as i32)))
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn vmsb(self) -> W5 {
            // 63 ^ clz (inputs are nonzero, so clz is in 0..=63 and the
            // xor is exactly 63 − clz).
            W5(_mm512_xor_si512(
                _mm512_lzcnt_epi64(self.0),
                _mm512_set1_epi64(63),
            ))
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn veq(self, o: W5) -> __mmask8 {
            _mm512_cmpeq_epi64_mask(self.0, o.0)
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn vne(self, o: W5) -> __mmask8 {
            _mm512_cmpneq_epi64_mask(self.0, o.0)
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn vgt_u(self, o: W5) -> __mmask8 {
            _mm512_cmpgt_epu64_mask(self.0, o.0)
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn vge_u(self, o: W5) -> __mmask8 {
            _mm512_cmpge_epu64_mask(self.0, o.0)
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn vlt_u(self, o: W5) -> __mmask8 {
            _mm512_cmplt_epu64_mask(self.0, o.0)
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn vgt_s(self, o: W5) -> __mmask8 {
            _mm512_cmpgt_epi64_mask(self.0, o.0)
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn vlt_s(self, o: W5) -> __mmask8 {
            _mm512_cmplt_epi64_mask(self.0, o.0)
        }
        #[inline(always)]
        unsafe fn mand(a: __mmask8, b: __mmask8) -> __mmask8 {
            a & b
        }
        #[inline(always)]
        unsafe fn mor(a: __mmask8, b: __mmask8) -> __mmask8 {
            a | b
        }
        #[inline(always)]
        unsafe fn mnot(a: __mmask8) -> __mmask8 {
            !a
        }
        #[inline(always)]
        unsafe fn mbool(b: bool) -> __mmask8 {
            if b {
                0xff
            } else {
                0
            }
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn sel(m: __mmask8, t: W5, f: W5) -> W5 {
            W5(_mm512_mask_blend_epi64(m, f.0, t.0))
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn m01(m: __mmask8) -> W5 {
            W5(_mm512_maskz_set1_epi64(m, 1))
        }
        #[inline(always)]
        unsafe fn mall(m: __mmask8) -> bool {
            m == 0xff
        }
        #[inline(always)]
        unsafe fn mbits(m: __mmask8) -> u32 {
            m as u32
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn lut8(self, lut: &[u64; 8]) -> W5 {
            let t = _mm512_loadu_si512(lut.as_ptr().cast());
            W5(_mm512_permutexvar_epi64(self.0, t))
        }
        #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
        unsafe fn store_interleaved(self, o: W5, dst: *mut u64) {
            let idx_lo = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
            let idx_hi = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);
            _mm512_storeu_si512(dst.cast(), _mm512_permutex2var_epi64(self.0, idx_lo, o.0));
            _mm512_storeu_si512(
                dst.add(8).cast(),
                _mm512_permutex2var_epi64(self.0, idx_hi, o.0),
            );
        }
    }
}
#[cfg(target_arch = "x86_64")]
use engines_x86::{W2, W5};

// ---------------------------------------------------------------------------
// Engine-generic block kernels
// ---------------------------------------------------------------------------
//
// Lane-for-lane transcriptions of the scalar fast-path formulas into the
// `Words` vocabulary: every branch becomes a mask select with both arms
// computed. The blocks are total over arbitrary encodings — variable
// shift amounts are clamped wherever a valid lane needs it, arithmetic
// wraps, and the `kill`/`|= 1` jams keep `vmsb` inputs nonzero — so a
// special lane's garbage can never fault; the partition pass discards it.

/// Vector twin of [`widening_mul`]: all four partial products are
/// 32×32→64 (`vmul32`), the carry chain exact for every input pair.
#[inline(always)]
unsafe fn vwidening_mul<W: Words>(x: W, y: W) -> (W, W) {
    let m32 = W::splat(0xffff_ffff);
    let x0 = x.vand(m32);
    let x1 = x.shrc(32);
    let y0 = y.vand(m32);
    let y1 = y.shrc(32);
    let m00 = x0.vmul32(y0);
    let m01 = x0.vmul32(y1);
    let m10 = x1.vmul32(y0);
    let m11 = x1.vmul32(y1);
    let mid = m00.shrc(32).vadd(m01.vand(m32)).vadd(m10.vand(m32));
    let lo = mid.shlc(32).vor(m00.vand(m32));
    let hi = m11.vadd(m01.shrc(32)).vadd(m10.shrc(32)).vadd(mid.shrc(32));
    (hi, lo)
}

/// Vector twin of [`shr128_sticky`].
#[inline(always)]
unsafe fn vshr128_sticky<W: Words>(hi: W, lo: W, n: W) -> (W, W, W) {
    let zero = W::splat(0);
    let c63 = W::splat(63);
    let n = W::sel(n.vgt_u(W::splat(127)), W::splat(127), n);
    let ge64 = n.vge_u(W::splat(64));
    let m = n.vand(c63);
    let inv = c63.vsub(m);
    let a_hi = hi.shr(m);
    let a_lo = lo.shr(m).vor(hi.shl(inv).shlc(1));
    let a_lost = lo.shl(inv).shlc(1);
    let b_lo = hi.shr(m);
    let b_lost = hi.shl(inv).shlc(1).vor(W::m01(lo.vne(zero)));
    let r_hi = W::sel(ge64, zero, a_hi);
    let r_lo = W::sel(ge64, b_lo, a_lo);
    let lost = W::m01(W::sel(ge64, b_lost, a_lost).vne(zero));
    (r_hi, r_lo, lost)
}

/// Lane mask of operands that take the fast lane (vector twin of
/// `fastpath::is_normal`: biased exponent in `1..=em-1`).
#[inline(always)]
unsafe fn vnormal<W: Words, const E: u32, const F: u32>(x: W) -> W::M {
    let em = (1u64 << E) - 1;
    x.shrc(F)
        .vand(W::splat(em))
        .vsub(W::splat(1))
        .vlt_u(W::splat(em - 1))
}

/// Vector twin of [`round_pack_lane`]; `kill` zeroes the result and
/// flags (exact cancellation, and a don't-care for special lanes).
#[inline(always)]
unsafe fn round_pack_block<W: Words, const E: u32, const F: u32>(
    sign: W,
    exp: W,
    kept: W,
    tail: W,
    grs: W,
    rtn: bool,
    kill: W::M,
) -> (W, W) {
    let bias = (1u64 << (E - 1)) - 1;
    let max_exp = ((1u64 << E) - 2).wrapping_sub(bias);
    let min_exp = 1u64.wrapping_sub(bias);
    let zero = W::splat(0);
    let one = W::splat(1);
    let frac_mask = W::splat((1u64 << F) - 1);

    let inexact = tail.vne(zero);
    let half = one.shl(grs.vsub(one));
    let round_up = W::m01(W::mand(
        W::mbool(rtn),
        W::mor(
            tail.vgt_u(half),
            W::mand(tail.veq(half), kept.vand(one).veq(one)),
        ),
    ));
    let rounded = kept.vadd(round_up);
    let carry = W::m01(rounded.shrc(F + 1).vne(zero));
    let rounded = rounded.shr(carry);
    let exp = exp.vadd(carry);

    let over = exp.vgt_s(W::splat(max_exp));
    let under = exp.vlt_s(W::splat(min_exp));
    let over_mag = W::splat(if rtn {
        ((1u64 << E) - 1) << F
    } else {
        (((1u64 << E) - 2) << F) | ((1u64 << F) - 1)
    });
    let norm_mag = exp
        .vadd(W::splat(bias))
        .shlc(F)
        .vor(rounded.vand(frac_mask));
    let mag = W::sel(over, over_mag, W::sel(under, zero, norm_mag));
    let fl = W::m01(over)
        .vor(W::m01(under).shlc(1))
        .vor(W::m01(W::mor(W::mor(inexact, over), under)).shlc(2));
    (
        W::sel(kill, zero, sign.shlc(E + F).vor(mag)),
        W::sel(kill, zero, fl),
    )
}

/// Vector add/sub block (`sub` is a sign flip at the call site): the
/// transcription of the scalar fast-path add datapath — compare/swap,
/// clamp-to-63 sticky align, conditional-negate effective subtract,
/// sticky carry jam, `vmsb` normalize, round/pack.
#[inline(always)]
unsafe fn add_block<W: Words, const E: u32, const F: u32>(a: W, b: W, rtn: bool) -> (W, W) {
    let sign_shift = E + F;
    let frac_mask = W::splat((1u64 << F) - 1);
    let mag_mask = W::splat((1u64 << sign_shift) - 1);
    let hidden = W::splat(1u64 << F);
    let bias = W::splat((1u64 << (E - 1)) - 1);
    let zero = W::splat(0);
    let one = W::splat(1);
    let c63 = W::splat(63);

    let ma = a.vand(mag_mask);
    let mb = b.vand(mag_mask);
    let a_hi = ma.vge_u(mb);
    let hi = W::sel(a_hi, ma, mb);
    let lo = W::sel(a_hi, mb, ma);
    let hi_sign = W::sel(a_hi, a, b).shrc(sign_shift).vand(one);

    // Align the smaller operand with a clamp-to-63 sticky shift.
    let diff = hi.shrc(F).vsub(lo.shrc(F));
    let sh = W::sel(diff.vgt_u(c63), c63, diff);
    let hi_sig = hi.vand(frac_mask).vor(hidden).shlc(GRS_BITS);
    let lo_raw = lo.vand(frac_mask).vor(hidden).shlc(GRS_BITS);
    let lo_lost = lo_raw.vand(one.shl(sh).vsub(one));
    let lo_full = lo_raw.shr(sh).vor(W::m01(lo_lost.vne(zero)));

    // Effective add or conditional-negate subtract.
    let esub = a.vxor(b).shrc(sign_shift).vand(one);
    let esub_m = zero.vsub(esub);
    let exp0 = hi.shrc(F).vsub(bias);
    let mag = hi_sig.vadd(lo_full.vxor(esub_m).vadd(esub));
    let kill = mag.veq(zero); // exact cancellation: +0 under both modes
    let mag = mag.vor(W::m01(kill)); // keep the msb scan defined

    // Sticky carry jam, then shift the leading one up to the hidden
    // position.
    let hidden_pos = F + GRS_BITS;
    let carry = mag.shrc(hidden_pos + 1);
    let mag = mag.shr(carry).vor(mag.vand(carry));
    let msb = mag.vmsb();
    let shift = W::splat(hidden_pos as u64).vsub(msb);
    let mag = mag.shl(shift);
    let exp = exp0.vadd(carry).vsub(shift);
    round_pack_block::<W, E, F>(
        hi_sign,
        exp,
        mag.shrc(GRS_BITS),
        mag.vand(W::splat((1u64 << GRS_BITS) - 1)),
        W::splat(GRS_BITS as u64),
        rtn,
        kill,
    )
}

/// Vector multiply block. `F <= 31` keeps the product in one word;
/// wider formats run the limb-split widening multiply.
#[inline(always)]
unsafe fn mul_block<W: Words, const E: u32, const F: u32>(a: W, b: W, rtn: bool) -> (W, W) {
    let sign_shift = E + F;
    let frac_mask = W::splat((1u64 << F) - 1);
    let hidden = W::splat(1u64 << F);
    let bias = W::splat((1u64 << (E - 1)) - 1);
    let em = W::splat((1u64 << E) - 1);
    let one = W::splat(1);

    let sign = a.vxor(b).shrc(sign_shift).vand(one);
    let mut exp = a
        .shrc(F)
        .vand(em)
        .vsub(bias)
        .vadd(b.shrc(F).vand(em).vsub(bias));
    let sa = a.vand(frac_mask).vor(hidden);
    let sb = b.vand(frac_mask).vor(hidden);

    let (kept, tail, grs);
    if F <= 31 {
        let p = sa.vmul32(sb);
        let top = p.shrc(2 * F + 1).vand(one);
        exp = exp.vadd(top);
        let p = p.shl(top.vxor(one));
        let g = F + 1;
        kept = p.shrc(g);
        tail = p.vand(W::splat((1u64 << g) - 1));
        grs = W::splat(g as u64);
    } else {
        let (p_hi, p_lo) = vwidening_mul(sa, sb);
        let top = p_hi.shrc((2 * F + 1).saturating_sub(64)).vand(one);
        exp = exp.vadd(top);
        let g = W::splat(F as u64).vadd(top); // 32 <= g <= 57
        kept = p_lo.shr(g).vor(p_hi.shl(W::splat(63).vsub(g)).shlc(1));
        tail = p_lo.vand(one.shl(g).vsub(one));
        grs = g;
    }
    round_pack_block::<W, E, F>(sign, exp, kept, tail, grs, rtn, W::mbool(false))
}

/// Vector fma block; picks the single-word or the `(hi, lo)`-pair
/// datapath by format width (constant-folded per monomorphization).
#[inline(always)]
unsafe fn fma_block<W: Words, const E: u32, const F: u32>(a: W, b: W, c: W, rtn: bool) -> (W, W) {
    if 2 * F + FMA_GRS + 4 <= 64 {
        fma_narrow_block::<W, E, F>(a, b, c, rtn)
    } else {
        fma_wide_block::<W, E, F>(a, b, c, rtn)
    }
}

/// Single-word vector fma (`2f + FMA_GRS + 4 <= 64`): the three
/// alignment frames folded into one select-driven shift network.
#[inline(always)]
unsafe fn fma_narrow_block<W: Words, const E: u32, const F: u32>(
    a: W,
    b: W,
    c: W,
    rtn: bool,
) -> (W, W) {
    let sign_shift = E + F;
    let frac_mask = W::splat((1u64 << F) - 1);
    let hidden = W::splat(1u64 << F);
    let bias = W::splat((1u64 << (E - 1)) - 1);
    let em = W::splat((1u64 << E) - 1);
    let zero = W::splat(0);
    let one = W::splat(1);
    let c63 = W::splat(63);

    let psign = a.vxor(b).shrc(sign_shift).vand(one);
    let csign = c.shrc(sign_shift).vand(one);
    let pexp = a
        .shrc(F)
        .vand(em)
        .vsub(bias)
        .vadd(b.shrc(F).vand(em).vsub(bias));
    let cexp = c.shrc(F).vand(em).vsub(bias);

    let product = a
        .vand(frac_mask)
        .vor(hidden)
        .vmul32(b.vand(frac_mask).vor(hidden));
    let shift = cexp.vsub(pexp).vadd(W::splat(F as u64));
    let c_wide = c.vand(frac_mask).vor(hidden).shlc(FMA_GRS);
    let prod_wide = product.shlc(FMA_GRS);

    let cdom = shift.vgt_s(W::splat((F + 2) as u64)); // c dominates
    let cneg = shift.vlt_s(zero); // c negligible
    let mid = W::mnot(W::mor(cdom, cneg)); // product anchored

    // One shift network: v is whichever operand moves, u the anchor.
    let v0 = W::sel(cdom, prod_wide, c_wide);
    let ramt = W::sel(cdom, shift, W::sel(cneg, zero.vsub(shift), zero));
    let rsh = W::sel(ramt.vgt_u(c63), c63, ramt);
    let lost = v0.vand(one.shl(rsh).vsub(one));
    let vr = v0.shr(rsh).vor(W::m01(lost.vne(zero)));
    let lamt = W::sel(mid, shift, zero); // mid: 0 <= shift <= f+2
    let v = vr.shl(lamt);

    let u = W::sel(cdom, c_wide, prod_wide);
    let us = W::sel(cdom, csign, psign);
    let vs = W::sel(cdom, psign, csign);
    let e_lsb = W::sel(
        cdom,
        cexp.vsub(W::splat((F + FMA_GRS) as u64)),
        pexp.vsub(W::splat((2 * F + FMA_GRS) as u64)),
    );

    // Signed combine (vector twin of `fastpath::combine_u64`).
    let ssame = us.veq(vs);
    let ubig = u.vge_u(v);
    let sum = u.vadd(v);
    let d = W::sel(ubig, u.vsub(v), v.vsub(u));
    let mag = W::sel(ssame, sum, d);
    let sign = W::sel(ssame, us, W::sel(ubig, us, vs));
    let kill = W::mand(W::mnot(ssame), mag.veq(zero));
    let mag = mag.vor(W::m01(kill));

    let msb = mag.vmsb();
    let exp0 = e_lsb.vadd(msb);
    // Deep cancellation (msb <= f) is necessarily exact: lift the hidden
    // bit and round with a single sticky position.
    let deep = W::mnot(msb.vgt_s(W::splat(F as u64)));
    let lshift = W::sel(deep, W::splat((F + 1) as u64).vsub(msb), zero);
    let m = mag.shl(lshift);
    let grs_raw = W::sel(deep, one, msb.vsub(W::splat(F as u64)));
    let grs = W::sel(grs_raw.vgt_u(c63), c63, grs_raw); // clamp only reachable on garbage lanes
    round_pack_block::<W, E, F>(
        sign,
        exp0,
        m.shr(grs),
        m.vand(one.shl(grs).vsub(one)),
        grs,
        rtn,
        kill,
    )
}

/// `(hi, lo)`-pair vector fma for formats whose aligned sum exceeds 64
/// bits: the vector transcription of [`fma_lane_wide`] — exact product
/// from [`vwidening_mul`], alignment via [`vshr128_sticky`], pair
/// add-with-carry / subtract-with-borrow combine.
#[inline(always)]
unsafe fn fma_wide_block<W: Words, const E: u32, const F: u32>(
    a: W,
    b: W,
    c: W,
    rtn: bool,
) -> (W, W) {
    let sign_shift = E + F;
    let frac_mask = W::splat((1u64 << F) - 1);
    let hidden = W::splat(1u64 << F);
    let bias = W::splat((1u64 << (E - 1)) - 1);
    let em = W::splat((1u64 << E) - 1);
    let zero = W::splat(0);
    let one = W::splat(1);
    let c63 = W::splat(63);

    let psign = a.vxor(b).shrc(sign_shift).vand(one);
    let csign = c.shrc(sign_shift).vand(one);
    let pexp = a
        .shrc(F)
        .vand(em)
        .vsub(bias)
        .vadd(b.shrc(F).vand(em).vsub(bias));
    let cexp = c.shrc(F).vand(em).vsub(bias);

    let (p_hi, p_lo) = vwidening_mul(a.vand(frac_mask).vor(hidden), b.vand(frac_mask).vor(hidden));
    let pw_hi = p_hi.shlc(FMA_GRS).vor(p_lo.shrc(64 - FMA_GRS));
    let pw_lo = p_lo.shlc(FMA_GRS);
    let c_wide = c.vand(frac_mask).vor(hidden).shlc(FMA_GRS);

    let shift = cexp.vsub(pexp).vadd(W::splat(F as u64));
    let cdom = shift.vgt_s(W::splat((F + 2) as u64));
    let cneg = shift.vlt_s(zero);
    let mid = W::mnot(W::mor(cdom, cneg));

    // v: the operand that moves; u: the anchor.
    let v0_hi = W::sel(cdom, pw_hi, zero);
    let v0_lo = W::sel(cdom, pw_lo, c_wide);
    let ramt = W::sel(cdom, shift, W::sel(cneg, zero.vsub(shift), zero));
    let (vr_hi, vr_lo, lost) = vshr128_sticky(v0_hi, v0_lo, ramt);
    let lamt = W::sel(mid, shift, zero); // mid: 0 <= shift <= f+2
    let v_hi = vr_hi.shl(lamt).vor(vr_lo.shrc(1).shr(c63.vsub(lamt)));
    let v_lo = vr_lo.shl(lamt).vor(lost); // lost is 0 whenever lamt > 0

    let u_hi = W::sel(cdom, zero, pw_hi);
    let u_lo = W::sel(cdom, c_wide, pw_lo);
    let us = W::sel(cdom, csign, psign);
    let vs = W::sel(cdom, psign, csign);
    let e_lsb = W::sel(
        cdom,
        cexp.vsub(W::splat((F + FMA_GRS) as u64)),
        pexp.vsub(W::splat((2 * F + FMA_GRS) as u64)),
    );

    // Signed combine on pairs: add-with-carry / subtract-with-borrow.
    let ssame = us.veq(vs);
    let s_lo = u_lo.vadd(v_lo);
    let s_hi = u_hi.vadd(v_hi).vadd(W::m01(s_lo.vlt_u(u_lo)));
    let ubig = W::mor(u_hi.vgt_u(v_hi), W::mand(u_hi.veq(v_hi), u_lo.vge_u(v_lo)));
    let x_hi = W::sel(ubig, u_hi, v_hi);
    let x_lo = W::sel(ubig, u_lo, v_lo);
    let y_hi = W::sel(ubig, v_hi, u_hi);
    let y_lo = W::sel(ubig, v_lo, u_lo);
    let d_lo = x_lo.vsub(y_lo);
    let d_hi = x_hi.vsub(y_hi).vsub(W::m01(x_lo.vlt_u(y_lo)));
    let mag_hi = W::sel(ssame, s_hi, d_hi);
    let mag_lo = W::sel(ssame, s_lo, d_lo);
    let sign = W::sel(ssame, us, W::sel(ubig, us, vs));
    let kill = W::mand(W::mand(W::mnot(ssame), mag_hi.veq(zero)), mag_lo.veq(zero));
    let mag_lo = mag_lo.vor(W::m01(kill));

    // msb of the pair, then normalize exactly as the scalar path does.
    let hz = mag_hi.veq(zero);
    let msb = W::sel(hz, mag_lo, mag_hi)
        .vmsb()
        .vadd(W::sel(hz, zero, W::splat(64)));
    let exp0 = e_lsb.vadd(msb);
    let deep = W::mnot(msb.vgt_s(W::splat(F as u64)));
    let lshift = W::sel(deep, W::splat((F + 1) as u64).vsub(msb), zero); // <= f+1
    let m_hi = mag_hi.shl(lshift).vor(mag_lo.shrc(1).shr(c63.vsub(lshift)));
    let m_lo = mag_lo.shl(lshift);
    let grs_raw = W::sel(deep, one, msb.vsub(W::splat(F as u64)));
    let grs = W::sel(grs_raw.vgt_u(c63), c63, grs_raw); // clamp only reachable on garbage lanes
    let kept = m_lo.shr(grs).vor(m_hi.shl(c63.vsub(grs)).shlc(1));
    let tail = m_lo.vand(one.shl(grs).vsub(one)); // grs <= f+5 on valid lanes
    round_pack_block::<W, E, F>(sign, exp0, kept, tail, grs, rtn, kill)
}

/// Precomputed [`Flags`] for every packed flag word the fast lane can
/// produce — one indexed load per element in the batch epilogue instead
/// of five bit tests.
const FLAG_LUT: [Flags; 8] = {
    let mut lut = [Flags {
        overflow: false,
        underflow: false,
        invalid: false,
        inexact: false,
        div_by_zero: false,
    }; 8];
    let mut i = 0;
    while i < 8 {
        lut[i] = Flags {
            overflow: i as u64 & FL_OVERFLOW != 0,
            underflow: i as u64 & FL_UNDERFLOW != 0,
            invalid: false,
            inexact: i as u64 & FL_INEXACT != 0,
            div_by_zero: false,
        };
        i += 1;
    }
    lut
};

/// The vectorized epilogue writes each `(u64, Flags)` pair as two raw
/// 64-bit words straight into the output Vec's spare capacity. That is
/// only sound when the pair is exactly `{ result word, flags word }`
/// with every `bool` field inside the second word — checked here at
/// compile time; any layout change falls back to the scalar epilogue.
const PAIR_LAYOUT_OK: bool = std::mem::size_of::<(u64, Flags)>() == 16
    && std::mem::align_of::<(u64, Flags)>() == 8
    && std::mem::offset_of!((u64, Flags), 0) == 0
    && std::mem::offset_of!((u64, Flags), 1) == 8
    && std::mem::size_of::<Flags>() <= 8;

/// [`FLAG_LUT`]`[i]` reinterpreted as the second word of a
/// `(u64, Flags)` pair: `true` is guaranteed to be the byte `1`, so
/// each set flag is a `0x01` byte at its field offset (padding zero).
const fn flag_word(i: u64) -> u64 {
    ((i & FL_OVERFLOW != 0) as u64) << (8 * std::mem::offset_of!(Flags, overflow) % 64)
        | ((i & FL_UNDERFLOW != 0) as u64) << (8 * std::mem::offset_of!(Flags, underflow) % 64)
        | ((i & FL_INEXACT != 0) as u64) << (8 * std::mem::offset_of!(Flags, inexact) % 64)
}

/// Word-form twin of [`FLAG_LUT`] for the in-register epilogue lookup.
const FLAG_WORDS: [u64; 8] = {
    let mut w = [0u64; 8];
    let mut i = 0;
    while i < 8 {
        w[i] = flag_word(i as u64);
        i += 1;
    }
    w
};

// ---------------------------------------------------------------------------
// Chunked batch drivers (classify-then-partition)
// ---------------------------------------------------------------------------

const OP_ADD: u8 = 0;
const OP_SUB: u8 = 1;
const OP_MUL: u8 = 2;

/// Binary-op batch driver: vector-compute every full chunk, record a
/// branchless normality bitmask per chunk, and push special indices for
/// the caller's fixup pass. The sub-chunk tail runs the scalar fast lane
/// (which handles its own specials).
#[inline(always)]
#[allow(clippy::needless_range_loop)]
fn bin_driver<W: Words, const E: u32, const F: u32, const OP: u8>(
    n: usize,
    load_chunk: impl Fn(usize, &mut [u64; LANES], &mut [u64; LANES]),
    load_one: impl Fn(usize) -> (u64, u64),
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
    specials: &mut Vec<u32>,
) {
    let rtn = mode == RoundMode::NearestEven;
    let full = n - n % LANES;
    out.reserve(n);
    let mut i = 0;
    while i < full {
        let mut xs = [0u64; LANES];
        let mut ys = [0u64; LANES];
        load_chunk(i, &mut xs, &mut ys);
        // SAFETY: `W`'s engine was selected by positive runtime feature
        // detection (the dispatch layer's invariant); the portable
        // engine has no requirement. The interleaved store targets
        // capacity reserved above, under the compile-time layout check.
        let (all, nbits) = unsafe {
            let va = W::load(&xs);
            let vb = W::load(&ys);
            let (r, f) = if OP == OP_ADD {
                add_block::<W, E, F>(va, vb, rtn)
            } else if OP == OP_SUB {
                add_block::<W, E, F>(va, vb.vxor(W::splat(1u64 << (E + F))), rtn)
            } else {
                mul_block::<W, E, F>(va, vb, rtn)
            };
            let normal = W::mand(vnormal::<W, E, F>(va), vnormal::<W, E, F>(vb));
            if PAIR_LAYOUT_OK {
                let dst = out.as_mut_ptr().add(out.len()).cast::<u64>();
                r.store_interleaved(f.vand(W::splat(7)).lut8(&FLAG_WORDS), dst);
                out.set_len(out.len() + LANES);
            } else {
                let mut res = [0u64; LANES];
                let mut fl = [0u64; LANES];
                r.store(&mut res);
                f.store(&mut fl);
                let mut chunk = [(0u64, FLAG_LUT[0]); LANES];
                for l in 0..LANES {
                    chunk[l] = (res[l], FLAG_LUT[(fl[l] & 7) as usize]);
                }
                out.extend_from_slice(&chunk);
            }
            (W::mall(normal), W::mbits(normal))
        };
        if !all {
            for l in 0..LANES {
                if nbits & (1 << l) == 0 {
                    specials.push((i + l) as u32);
                }
            }
        }
        i += LANES;
    }
    for j in full..n {
        let (x, y) = load_one(j);
        out.push(if OP == OP_ADD {
            fastpath::add::<E, F>(x, y, mode)
        } else if OP == OP_SUB {
            fastpath::sub::<E, F>(x, y, mode)
        } else {
            fastpath::mul::<E, F>(x, y, mode)
        });
    }
}

/// Ternary (fma) batch driver; same structure as [`bin_driver`].
#[inline(always)]
#[allow(clippy::needless_range_loop, clippy::type_complexity)]
fn fma_driver<W: Words, const E: u32, const F: u32>(
    n: usize,
    load_chunk: impl Fn(usize, &mut [u64; LANES], &mut [u64; LANES], &mut [u64; LANES]),
    load_one: impl Fn(usize) -> (u64, u64, u64),
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
    specials: &mut Vec<u32>,
) {
    let rtn = mode == RoundMode::NearestEven;
    let full = n - n % LANES;
    out.reserve(n);
    let mut i = 0;
    while i < full {
        let mut xs = [0u64; LANES];
        let mut ys = [0u64; LANES];
        let mut zs = [0u64; LANES];
        load_chunk(i, &mut xs, &mut ys, &mut zs);
        // SAFETY: as in `bin_driver` — the engine was runtime-detected
        // and the interleaved store targets reserved capacity.
        let (all, nbits) = unsafe {
            let va = W::load(&xs);
            let vb = W::load(&ys);
            let vc = W::load(&zs);
            let (r, f) = fma_block::<W, E, F>(va, vb, vc, rtn);
            let normal = W::mand(
                W::mand(vnormal::<W, E, F>(va), vnormal::<W, E, F>(vb)),
                vnormal::<W, E, F>(vc),
            );
            if PAIR_LAYOUT_OK {
                let dst = out.as_mut_ptr().add(out.len()).cast::<u64>();
                r.store_interleaved(f.vand(W::splat(7)).lut8(&FLAG_WORDS), dst);
                out.set_len(out.len() + LANES);
            } else {
                let mut res = [0u64; LANES];
                let mut fl = [0u64; LANES];
                r.store(&mut res);
                f.store(&mut fl);
                let mut chunk = [(0u64, FLAG_LUT[0]); LANES];
                for l in 0..LANES {
                    chunk[l] = (res[l], FLAG_LUT[(fl[l] & 7) as usize]);
                }
                out.extend_from_slice(&chunk);
            }
            (W::mall(normal), W::mbits(normal))
        };
        if !all {
            for l in 0..LANES {
                if nbits & (1 << l) == 0 {
                    specials.push((i + l) as u32);
                }
            }
        }
        i += LANES;
    }
    for j in full..n {
        let (x, y, z) = load_one(j);
        out.push(fastpath::fma::<E, F>(x, y, z, mode));
    }
}

// The intrinsics engines need monomorphizations of the generic drivers
// whose call contexts carry the matching `#[target_feature]` set, so the
// engine methods (and through them the intrinsics) inline into the chunk
// loop. On non-x86-64 targets the wrappers forward to the portable
// engine (the intrinsics engines are never selected there — feature
// detection reports false — but the symbols must exist).
#[cfg(target_arch = "x86_64")]
mod engine {
    use super::*;

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn bin_driver_tf<const E: u32, const F: u32, const OP: u8>(
        n: usize,
        load_chunk: impl Fn(usize, &mut [u64; LANES], &mut [u64; LANES]),
        load_one: impl Fn(usize) -> (u64, u64),
        mode: RoundMode,
        out: &mut Vec<(u64, Flags)>,
        specials: &mut Vec<u32>,
    ) {
        super::bin_driver::<W2, E, F, OP>(n, load_chunk, load_one, mode, out, specials)
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn fma_driver_tf<const E: u32, const F: u32>(
        n: usize,
        load_chunk: impl Fn(usize, &mut [u64; LANES], &mut [u64; LANES], &mut [u64; LANES]),
        load_one: impl Fn(usize) -> (u64, u64, u64),
        mode: RoundMode,
        out: &mut Vec<(u64, Flags)>,
        specials: &mut Vec<u32>,
    ) {
        super::fma_driver::<W2, E, F>(n, load_chunk, load_one, mode, out, specials)
    }

    #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn bin_driver_512<const E: u32, const F: u32, const OP: u8>(
        n: usize,
        load_chunk: impl Fn(usize, &mut [u64; LANES], &mut [u64; LANES]),
        load_one: impl Fn(usize) -> (u64, u64),
        mode: RoundMode,
        out: &mut Vec<(u64, Flags)>,
        specials: &mut Vec<u32>,
    ) {
        super::bin_driver::<W5, E, F, OP>(n, load_chunk, load_one, mode, out, specials)
    }

    #[target_feature(enable = "avx512f,avx512cd,avx512vl,avx512dq,avx512bw")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn fma_driver_512<const E: u32, const F: u32>(
        n: usize,
        load_chunk: impl Fn(usize, &mut [u64; LANES], &mut [u64; LANES], &mut [u64; LANES]),
        load_one: impl Fn(usize) -> (u64, u64, u64),
        mode: RoundMode,
        out: &mut Vec<(u64, Flags)>,
        specials: &mut Vec<u32>,
    ) {
        super::fma_driver::<W5, E, F>(n, load_chunk, load_one, mode, out, specials)
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod engine {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn bin_driver_tf<const E: u32, const F: u32, const OP: u8>(
        n: usize,
        load_chunk: impl Fn(usize, &mut [u64; LANES], &mut [u64; LANES]),
        load_one: impl Fn(usize) -> (u64, u64),
        mode: RoundMode,
        out: &mut Vec<(u64, Flags)>,
        specials: &mut Vec<u32>,
    ) {
        super::bin_driver::<Wp, E, F, OP>(n, load_chunk, load_one, mode, out, specials)
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn fma_driver_tf<const E: u32, const F: u32>(
        n: usize,
        load_chunk: impl Fn(usize, &mut [u64; LANES], &mut [u64; LANES], &mut [u64; LANES]),
        load_one: impl Fn(usize) -> (u64, u64, u64),
        mode: RoundMode,
        out: &mut Vec<(u64, Flags)>,
        specials: &mut Vec<u32>,
    ) {
        super::fma_driver::<Wp, E, F>(n, load_chunk, load_one, mode, out, specials)
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn bin_driver_512<const E: u32, const F: u32, const OP: u8>(
        n: usize,
        load_chunk: impl Fn(usize, &mut [u64; LANES], &mut [u64; LANES]),
        load_one: impl Fn(usize) -> (u64, u64),
        mode: RoundMode,
        out: &mut Vec<(u64, Flags)>,
        specials: &mut Vec<u32>,
    ) {
        super::bin_driver::<Wp, E, F, OP>(n, load_chunk, load_one, mode, out, specials)
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn fma_driver_512<const E: u32, const F: u32>(
        n: usize,
        load_chunk: impl Fn(usize, &mut [u64; LANES], &mut [u64; LANES], &mut [u64; LANES]),
        load_one: impl Fn(usize) -> (u64, u64, u64),
        mode: RoundMode,
        out: &mut Vec<(u64, Flags)>,
        specials: &mut Vec<u32>,
    ) {
        super::fma_driver::<Wp, E, F>(n, load_chunk, load_one, mode, out, specials)
    }
}

/// Dispatch a driver over (named lane × engine). The AVX2/AVX-512 arms
/// are sound: they are only reachable when engine resolution saw a
/// positive `is_x86_feature_detected!` for the matching feature set.
macro_rules! wide_dispatch {
    (bin, $eng:expr, $lane:expr, $op:expr, $($arg:expr),*) => {
        match ($lane, $eng) {
            (Lane::Single, SimdEngine::WideAvx512) => unsafe { engine::bin_driver_512::<8, 23, $op>($($arg),*) },
            (Lane::Single, SimdEngine::WideAvx2) => unsafe { engine::bin_driver_tf::<8, 23, $op>($($arg),*) },
            (Lane::Single, _) => bin_driver::<Wp, 8, 23, $op>($($arg),*),
            (Lane::W48, SimdEngine::WideAvx512) => unsafe { engine::bin_driver_512::<11, 36, $op>($($arg),*) },
            (Lane::W48, SimdEngine::WideAvx2) => unsafe { engine::bin_driver_tf::<11, 36, $op>($($arg),*) },
            (Lane::W48, _) => bin_driver::<Wp, 11, 36, $op>($($arg),*),
            (Lane::Double, SimdEngine::WideAvx512) => unsafe { engine::bin_driver_512::<11, 52, $op>($($arg),*) },
            (Lane::Double, SimdEngine::WideAvx2) => unsafe { engine::bin_driver_tf::<11, 52, $op>($($arg),*) },
            (Lane::Double, _) => bin_driver::<Wp, 11, 52, $op>($($arg),*),
            (Lane::Dyn, _) => unreachable!("wide dispatch requires a named lane"),
        }
    };
    (fma, $eng:expr, $lane:expr, $($arg:expr),*) => {
        match ($lane, $eng) {
            (Lane::Single, SimdEngine::WideAvx512) => unsafe { engine::fma_driver_512::<8, 23>($($arg),*) },
            (Lane::Single, SimdEngine::WideAvx2) => unsafe { engine::fma_driver_tf::<8, 23>($($arg),*) },
            (Lane::Single, _) => fma_driver::<Wp, 8, 23>($($arg),*),
            (Lane::W48, SimdEngine::WideAvx512) => unsafe { engine::fma_driver_512::<11, 36>($($arg),*) },
            (Lane::W48, SimdEngine::WideAvx2) => unsafe { engine::fma_driver_tf::<11, 36>($($arg),*) },
            (Lane::W48, _) => fma_driver::<Wp, 11, 36>($($arg),*),
            (Lane::Double, SimdEngine::WideAvx512) => unsafe { engine::fma_driver_512::<11, 52>($($arg),*) },
            (Lane::Double, SimdEngine::WideAvx2) => unsafe { engine::fma_driver_tf::<11, 52>($($arg),*) },
            (Lane::Double, _) => fma_driver::<Wp, 11, 52>($($arg),*),
            (Lane::Dyn, _) => unreachable!("wide dispatch requires a named lane"),
        }
    };
}

/// Run a binary batch on an explicit engine and fix up the special lanes
/// through the generic path, in index order.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn run_bin<const OP: u8>(
    eng: SimdEngine,
    lane: Lane,
    fmt: FpFormat,
    n: usize,
    load_chunk: impl Fn(usize, &mut [u64; LANES], &mut [u64; LANES]),
    load_one: impl Fn(usize) -> (u64, u64),
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) {
    let base = out.len();
    let mut specials: Vec<u32> = Vec::new();
    wide_dispatch!(
        bin,
        eng,
        lane,
        OP,
        n,
        &load_chunk,
        &load_one,
        mode,
        out,
        &mut specials
    );
    for &j in &specials {
        let (x, y) = load_one(j as usize);
        out[base + j as usize] = if OP == OP_ADD {
            ops::add::add(fmt, x, y, mode)
        } else if OP == OP_SUB {
            ops::add::sub(fmt, x, y, mode)
        } else {
            ops::mul::mul(fmt, x, y, mode)
        };
    }
}

/// Run an fma batch on an explicit engine with the generic fixup pass.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn run_fma(
    eng: SimdEngine,
    lane: Lane,
    fmt: FpFormat,
    n: usize,
    load_chunk: impl Fn(usize, &mut [u64; LANES], &mut [u64; LANES], &mut [u64; LANES]),
    load_one: impl Fn(usize) -> (u64, u64, u64),
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) {
    let base = out.len();
    let mut specials: Vec<u32> = Vec::new();
    wide_dispatch!(
        fma,
        eng,
        lane,
        n,
        &load_chunk,
        &load_one,
        mode,
        out,
        &mut specials
    );
    for &j in &specials {
        let (x, y, z) = load_one(j as usize);
        out[base + j as usize] = ops::fma::fma(fmt, x, y, z, mode);
    }
}

// ---------------------------------------------------------------------------
// Engine-explicit public batch API (benches, equivalence tests)
// ---------------------------------------------------------------------------

#[inline(always)]
fn slices_chunk<'s>(
    a: &'s [u64],
    b: &'s [u64],
) -> impl Fn(usize, &mut [u64; LANES], &mut [u64; LANES]) + 's {
    move |i, xs, ys| {
        xs.copy_from_slice(&a[i..i + LANES]);
        ys.copy_from_slice(&b[i..i + LANES]);
    }
}

#[inline(always)]
#[allow(clippy::needless_range_loop)]
fn pairs_chunk(pairs: &[(u64, u64)]) -> impl Fn(usize, &mut [u64; LANES], &mut [u64; LANES]) + '_ {
    move |i, xs, ys| {
        for l in 0..LANES {
            let (x, y) = pairs[i + l];
            xs[l] = x;
            ys[l] = y;
        }
    }
}

/// Batched `a[i] + b[i]` on an explicit engine (lengths must match; named
/// formats only fall back to the scalar lane when `fmt` is dynamic).
pub fn add_bits_batch_with(
    eng: SimdEngine,
    fmt: FpFormat,
    a: &[u64],
    b: &[u64],
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) {
    assert_eq!(a.len(), b.len(), "{}", fastpath::LEN_MISMATCH);
    out.reserve(a.len());
    let lane = lane_of(fmt);
    if eng == SimdEngine::Scalar || matches!(lane, Lane::Dyn) {
        out.extend(
            a.iter()
                .zip(b)
                .map(|(&x, &y)| fastpath::add_bits(fmt, x, y, mode)),
        );
        return;
    }
    run_bin::<OP_ADD>(
        eng,
        lane,
        fmt,
        a.len(),
        slices_chunk(a, b),
        |i| (a[i], b[i]),
        mode,
        out,
    );
}

/// Batched `a[i] - b[i]` on an explicit engine.
pub fn sub_bits_batch_with(
    eng: SimdEngine,
    fmt: FpFormat,
    a: &[u64],
    b: &[u64],
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) {
    assert_eq!(a.len(), b.len(), "{}", fastpath::LEN_MISMATCH);
    out.reserve(a.len());
    let lane = lane_of(fmt);
    if eng == SimdEngine::Scalar || matches!(lane, Lane::Dyn) {
        out.extend(
            a.iter()
                .zip(b)
                .map(|(&x, &y)| fastpath::sub_bits(fmt, x, y, mode)),
        );
        return;
    }
    run_bin::<OP_SUB>(
        eng,
        lane,
        fmt,
        a.len(),
        slices_chunk(a, b),
        |i| (a[i], b[i]),
        mode,
        out,
    );
}

/// Batched `a[i] * b[i]` on an explicit engine.
pub fn mul_bits_batch_with(
    eng: SimdEngine,
    fmt: FpFormat,
    a: &[u64],
    b: &[u64],
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) {
    assert_eq!(a.len(), b.len(), "{}", fastpath::LEN_MISMATCH);
    out.reserve(a.len());
    let lane = lane_of(fmt);
    if eng == SimdEngine::Scalar || matches!(lane, Lane::Dyn) {
        out.extend(
            a.iter()
                .zip(b)
                .map(|(&x, &y)| fastpath::mul_bits(fmt, x, y, mode)),
        );
        return;
    }
    run_bin::<OP_MUL>(
        eng,
        lane,
        fmt,
        a.len(),
        slices_chunk(a, b),
        |i| (a[i], b[i]),
        mode,
        out,
    );
}

/// Batched `a[i]·b[i] + c[i]` on an explicit engine.
pub fn fma_bits_batch_with(
    eng: SimdEngine,
    fmt: FpFormat,
    a: &[u64],
    b: &[u64],
    c: &[u64],
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) {
    assert_eq!(a.len(), b.len(), "{}", fastpath::LEN_MISMATCH);
    assert_eq!(a.len(), c.len(), "{}", fastpath::LEN_MISMATCH);
    out.reserve(a.len());
    let lane = lane_of(fmt);
    if eng == SimdEngine::Scalar || matches!(lane, Lane::Dyn) {
        out.extend(
            a.iter()
                .zip(b.iter().zip(c))
                .map(|(&x, (&y, &z))| fastpath::fma_bits(fmt, x, y, z, mode)),
        );
        return;
    }
    run_fma(
        eng,
        lane,
        fmt,
        a.len(),
        |i, xs, ys, zs| {
            xs.copy_from_slice(&a[i..i + LANES]);
            ys.copy_from_slice(&b[i..i + LANES]);
            zs.copy_from_slice(&c[i..i + LANES]);
        },
        |i| (a[i], b[i], c[i]),
        mode,
        out,
    );
}

// ---------------------------------------------------------------------------
// Policy-resolved hooks for the fastpath batch entry points
// ---------------------------------------------------------------------------
//
// Each returns `false` (leaving `out` untouched) when the scalar lane
// should run: scalar policy resolution or a dynamic format.

macro_rules! try_hook_pre {
    ($fmt:expr) => {{
        let Some(eng) = wide_engine() else {
            return false;
        };
        let lane = lane_of($fmt);
        if matches!(lane, Lane::Dyn) {
            return false;
        }
        (eng, lane)
    }};
}

pub(crate) fn try_add_bits_batch(
    fmt: FpFormat,
    a: &[u64],
    b: &[u64],
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) -> bool {
    let (eng, lane) = try_hook_pre!(fmt);
    run_bin::<OP_ADD>(
        eng,
        lane,
        fmt,
        a.len(),
        slices_chunk(a, b),
        |i| (a[i], b[i]),
        mode,
        out,
    );
    true
}

pub(crate) fn try_sub_bits_batch(
    fmt: FpFormat,
    a: &[u64],
    b: &[u64],
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) -> bool {
    let (eng, lane) = try_hook_pre!(fmt);
    run_bin::<OP_SUB>(
        eng,
        lane,
        fmt,
        a.len(),
        slices_chunk(a, b),
        |i| (a[i], b[i]),
        mode,
        out,
    );
    true
}

pub(crate) fn try_mul_bits_batch(
    fmt: FpFormat,
    a: &[u64],
    b: &[u64],
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) -> bool {
    let (eng, lane) = try_hook_pre!(fmt);
    run_bin::<OP_MUL>(
        eng,
        lane,
        fmt,
        a.len(),
        slices_chunk(a, b),
        |i| (a[i], b[i]),
        mode,
        out,
    );
    true
}

pub(crate) fn try_fma_bits_batch(
    fmt: FpFormat,
    a: &[u64],
    b: &[u64],
    c: &[u64],
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) -> bool {
    let (eng, lane) = try_hook_pre!(fmt);
    run_fma(
        eng,
        lane,
        fmt,
        a.len(),
        |i, xs, ys, zs| {
            xs.copy_from_slice(&a[i..i + LANES]);
            ys.copy_from_slice(&b[i..i + LANES]);
            zs.copy_from_slice(&c[i..i + LANES]);
        },
        |i| (a[i], b[i], c[i]),
        mode,
        out,
    );
    true
}

pub(crate) fn try_add_pairs_batch(
    fmt: FpFormat,
    pairs: &[(u64, u64)],
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) -> bool {
    let (eng, lane) = try_hook_pre!(fmt);
    run_bin::<OP_ADD>(
        eng,
        lane,
        fmt,
        pairs.len(),
        pairs_chunk(pairs),
        |i| pairs[i],
        mode,
        out,
    );
    true
}

pub(crate) fn try_sub_pairs_batch(
    fmt: FpFormat,
    pairs: &[(u64, u64)],
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) -> bool {
    let (eng, lane) = try_hook_pre!(fmt);
    run_bin::<OP_SUB>(
        eng,
        lane,
        fmt,
        pairs.len(),
        pairs_chunk(pairs),
        |i| pairs[i],
        mode,
        out,
    );
    true
}

pub(crate) fn try_mul_pairs_batch(
    fmt: FpFormat,
    pairs: &[(u64, u64)],
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) -> bool {
    let (eng, lane) = try_hook_pre!(fmt);
    run_bin::<OP_MUL>(
        eng,
        lane,
        fmt,
        pairs.len(),
        pairs_chunk(pairs),
        |i| pairs[i],
        mode,
        out,
    );
    true
}

pub(crate) fn try_fma_triples_batch(
    fmt: FpFormat,
    triples: &[(u64, u64, u64)],
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) -> bool {
    let (eng, lane) = try_hook_pre!(fmt);
    run_fma(
        eng,
        lane,
        fmt,
        triples.len(),
        |i, xs, ys, zs| {
            #[allow(clippy::needless_range_loop)]
            for l in 0..LANES {
                let (x, y, z) = triples[i + l];
                xs[l] = x;
                ys[l] = y;
                zs[l] = z;
            }
        },
        |i| triples[i],
        mode,
        out,
    );
    true
}

pub(crate) fn try_mul_bcast_batch(
    fmt: FpFormat,
    a: &[u64],
    b: u64,
    mode: RoundMode,
    out: &mut Vec<(u64, Flags)>,
) -> bool {
    let (eng, lane) = try_hook_pre!(fmt);
    run_bin::<OP_MUL>(
        eng,
        lane,
        fmt,
        a.len(),
        |i, xs, ys| {
            xs.copy_from_slice(&a[i..i + LANES]);
            *ys = [b; LANES];
        },
        |i| (a[i], b),
        mode,
        out,
    );
    true
}

// ---------------------------------------------------------------------------
// Single-case dispatchers (the conformance harness's eval hooks)
// ---------------------------------------------------------------------------
//
// These run one case through the *real* batch machinery (an 8-lane
// broadcast through the active engine, classify pass included), so a
// forced-wide conformance sweep checks the code production batches
// execute, not a scalar stand-in. The scalar engine and dynamic formats
// fall back to the fastpath scalar dispatchers directly.

thread_local! {
    static ONE_SHOT: std::cell::RefCell<Vec<(u64, Flags)>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

macro_rules! one_shot_bin {
    ($op:ident, $fast:ident, $fmt:expr, $a:expr, $b:expr, $mode:expr) => {{
        if wide_engine().is_none() || matches!(lane_of($fmt), Lane::Dyn) {
            return fastpath::$fast($fmt, $a, $b, $mode);
        }
        ONE_SHOT.with(|cell| {
            let mut out = cell.borrow_mut();
            out.clear();
            let aa = [$a; LANES];
            let bb = [$b; LANES];
            let ran = $op($fmt, &aa, &bb, $mode, &mut out);
            debug_assert!(ran);
            out[0]
        })
    }};
}

/// One `a + b` through the active engine (wide engines run the real
/// broadcast batch path; scalar runs the fast lane).
pub fn add_bits(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    one_shot_bin!(try_add_bits_batch, add_bits, fmt, a, b, mode)
}

/// One `a - b` through the active engine.
pub fn sub_bits(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    one_shot_bin!(try_sub_bits_batch, sub_bits, fmt, a, b, mode)
}

/// One `a * b` through the active engine.
pub fn mul_bits(fmt: FpFormat, a: u64, b: u64, mode: RoundMode) -> (u64, Flags) {
    one_shot_bin!(try_mul_bits_batch, mul_bits, fmt, a, b, mode)
}

/// One `a·b + c` through the active engine.
pub fn fma_bits(fmt: FpFormat, a: u64, b: u64, c: u64, mode: RoundMode) -> (u64, Flags) {
    if wide_engine().is_none() || matches!(lane_of(fmt), Lane::Dyn) {
        return fastpath::fma_bits(fmt, a, b, c, mode);
    }
    ONE_SHOT.with(|cell| {
        let mut out = cell.borrow_mut();
        out.clear();
        let aa = [a; LANES];
        let bb = [b; LANES];
        let cc = [c; LANES];
        let ran = try_fma_bits_batch(fmt, &aa, &bb, &cc, mode, &mut out);
        debug_assert!(ran);
        out[0]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODES: [RoundMode; 2] = [RoundMode::NearestEven, RoundMode::Truncate];
    const FORMATS: [FpFormat; 3] = [FpFormat::SINGLE, FpFormat::FP48, FpFormat::DOUBLE];

    fn engines() -> Vec<SimdEngine> {
        let mut v = vec![SimdEngine::Scalar, SimdEngine::WidePortable];
        if avx2_available() {
            v.push(SimdEngine::WideAvx2);
        }
        if avx512_available() {
            v.push(SimdEngine::WideAvx512);
        }
        v
    }

    /// A mix of specials and normals for each format.
    fn probe_values(fmt: FpFormat) -> Vec<u64> {
        let sign = 1u64 << fmt.sign_shift();
        let mut v = vec![
            0,
            sign,
            fmt.pos_inf(),
            fmt.neg_inf(),
            fmt.min_positive(),
            fmt.min_positive() | sign,
            fmt.max_finite(),
            fmt.max_finite() | sign,
            fmt.pack(false, fmt.bias() as u64, 0),
            fmt.pack(true, fmt.bias() as u64, 1),
            fmt.pack(false, fmt.bias() as u64 + 1, fmt.frac_mask()),
            fmt.pack(false, 1, fmt.frac_mask()),
            fmt.pack(true, fmt.max_biased_exp(), fmt.frac_mask() >> 1),
            fmt.pack(false, 0, 7),
            fmt.pack(false, fmt.inf_biased_exp(), 1),
        ];
        let mut s = 0x0123_4567_89ab_cdefu64;
        for _ in 0..49 {
            s = s
                .wrapping_mul(0xd129_42e2_96fe_94e3)
                .wrapping_add(0x2545_f491_4f6c_dd1d);
            v.push(s & fmt.enc_mask());
        }
        v
    }

    #[test]
    fn every_engine_matches_generic_binary() {
        for fmt in FORMATS {
            let vals = probe_values(fmt);
            let n = vals.len();
            let a: Vec<u64> = (0..n * n).map(|i| vals[i / n]).collect();
            let b: Vec<u64> = (0..n * n).map(|i| vals[i % n]).collect();
            for mode in MODES {
                let expect_add: Vec<_> = a
                    .iter()
                    .zip(&b)
                    .map(|(&x, &y)| ops::add::add(fmt, x, y, mode))
                    .collect();
                let expect_sub: Vec<_> = a
                    .iter()
                    .zip(&b)
                    .map(|(&x, &y)| ops::add::sub(fmt, x, y, mode))
                    .collect();
                let expect_mul: Vec<_> = a
                    .iter()
                    .zip(&b)
                    .map(|(&x, &y)| ops::mul::mul(fmt, x, y, mode))
                    .collect();
                for eng in engines() {
                    let mut got = Vec::new();
                    add_bits_batch_with(eng, fmt, &a, &b, mode, &mut got);
                    assert_eq!(got, expect_add, "add {fmt:?} {mode:?} {eng:?}");
                    got.clear();
                    sub_bits_batch_with(eng, fmt, &a, &b, mode, &mut got);
                    assert_eq!(got, expect_sub, "sub {fmt:?} {mode:?} {eng:?}");
                    got.clear();
                    mul_bits_batch_with(eng, fmt, &a, &b, mode, &mut got);
                    assert_eq!(got, expect_mul, "mul {fmt:?} {mode:?} {eng:?}");
                }
            }
        }
    }

    #[test]
    fn every_engine_matches_generic_fma() {
        for fmt in FORMATS {
            let vals = probe_values(fmt);
            let thin: Vec<u64> = vals.iter().step_by(4).copied().collect();
            let n = thin.len();
            let mut a = Vec::new();
            let mut b = Vec::new();
            let mut c = Vec::new();
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        a.push(thin[i]);
                        b.push(thin[j]);
                        c.push(thin[k]);
                    }
                }
            }
            for mode in MODES {
                let expect: Vec<_> = (0..a.len())
                    .map(|i| ops::fma::fma(fmt, a[i], b[i], c[i], mode))
                    .collect();
                for eng in engines() {
                    let mut got = Vec::new();
                    fma_bits_batch_with(eng, fmt, &a, &b, &c, mode, &mut got);
                    assert_eq!(got, expect, "fma {fmt:?} {mode:?} {eng:?}");
                }
            }
        }
    }

    #[test]
    fn fma_wide_scalar_matches_generic_on_dyn_formats() {
        // The pair-datapath replacement for the u128 kernel serves every
        // format with 2f + FMA_GRS + 4 > 64, including dynamic ones.
        for fmt in [
            FpFormat::new(15, 48),
            FpFormat::new(4, 56),
            FpFormat::new(2, 30),
        ] {
            let vals = probe_values(fmt);
            let thin: Vec<u64> = vals.iter().step_by(5).copied().collect();
            for mode in MODES {
                for &a in &thin {
                    for &b in &thin {
                        for &c in &thin {
                            assert_eq!(
                                fastpath::fma_bits(fmt, a, b, c, mode),
                                ops::fma::fma(fmt, a, b, c, mode),
                                "fma {fmt:?} {a:#x} {b:#x} {c:#x} {mode:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn widening_mul_is_exact() {
        let mut s = 1u64;
        for _ in 0..4096 {
            s = s.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(11);
            let x = s;
            s = s.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(11);
            let y = s;
            let (hi, lo) = widening_mul(x, y);
            let p = x as u128 * y as u128;
            assert_eq!(((p >> 64) as u64, p as u64), (hi, lo), "{x:#x} * {y:#x}");
        }
    }

    #[test]
    fn shr128_sticky_matches_u128() {
        let vals = [
            (0u64, 0u64),
            (0, 1),
            (1, 0),
            (0x8000_0000_0000_0000, 0x8000_0000_0000_0001),
            (0x0042_4242_1337_0000, 0xffff_ffff_ffff_ffff),
        ];
        for &(hi, lo) in &vals {
            let v = ((hi as u128) << 64) | lo as u128;
            for n in 0..200u64 {
                let (rh, rl, lost) = shr128_sticky(hi, lo, n);
                let nn = n.min(127) as u32;
                let want = v >> nn;
                let want_lost = (v & ((1u128 << nn) - 1) != 0) as u64;
                assert_eq!(
                    ((want >> 64) as u64, want as u64, want_lost),
                    (rh, rl, lost),
                    "({hi:#x},{lo:#x}) >> {n}"
                );
            }
        }
    }

    #[test]
    fn pairs_and_bcast_and_triples_match_slices() {
        let fmt = FpFormat::DOUBLE;
        let vals = probe_values(fmt);
        let a: Vec<u64> = vals.clone();
        let b: Vec<u64> = vals.iter().rev().copied().collect();
        let pairs: Vec<(u64, u64)> = a.iter().zip(&b).map(|(&x, &y)| (x, y)).collect();
        let triples: Vec<(u64, u64, u64)> =
            a.iter().zip(&b).map(|(&x, &y)| (x, y, x ^ 1)).collect();
        let c: Vec<u64> = a.iter().map(|&x| x ^ 1).collect();
        let mode = RoundMode::NearestEven;
        for eng in engines() {
            if eng == SimdEngine::Scalar {
                continue;
            }
            let (mut s1, mut s2) = (Vec::new(), Vec::new());
            add_bits_batch_with(eng, fmt, &a, &b, mode, &mut s1);
            let lane = lane_of(fmt);
            run_bin::<OP_ADD>(
                eng,
                lane,
                fmt,
                pairs.len(),
                pairs_chunk(&pairs),
                |i| pairs[i],
                mode,
                &mut s2,
            );
            assert_eq!(s1, s2, "pairs {eng:?}");

            let (mut m1, mut m2) = (Vec::new(), Vec::new());
            let bb: Vec<u64> = vec![b[3]; a.len()];
            mul_bits_batch_with(eng, fmt, &a, &bb, mode, &mut m1);
            run_bin::<OP_MUL>(
                eng,
                lane,
                fmt,
                a.len(),
                |i, xs, ys| {
                    xs.copy_from_slice(&a[i..i + LANES]);
                    *ys = [b[3]; LANES];
                },
                |i| (a[i], b[3]),
                mode,
                &mut m2,
            );
            assert_eq!(m1, m2, "bcast {eng:?}");

            let (mut f1, mut f2) = (Vec::new(), Vec::new());
            fma_bits_batch_with(eng, fmt, &a, &b, &c, mode, &mut f1);
            run_fma(
                eng,
                lane,
                fmt,
                triples.len(),
                |i, xs, ys, zs| {
                    #[allow(clippy::needless_range_loop)]
                    for l in 0..LANES {
                        let (x, y, z) = triples[i + l];
                        xs[l] = x;
                        ys[l] = y;
                        zs[l] = z;
                    }
                },
                |i| triples[i],
                mode,
                &mut f2,
            );
            assert_eq!(f1, f2, "triples {eng:?}");
        }
    }

    #[test]
    fn policy_round_trip_and_engine_resolution() {
        // Engine resolution is pure in the policy + detection result; the
        // global store/load round-trips every variant. (Leaves the policy
        // reset to Auto: other tests in this binary never set it.)
        for p in [
            SimdPolicy::ForceScalar,
            SimdPolicy::ForceWide,
            SimdPolicy::ForceWidePortable,
            SimdPolicy::ForceWideAvx2,
            SimdPolicy::Auto,
        ] {
            set_simd_policy(p);
            assert_eq!(simd_policy(), p);
            let eng = active_engine();
            match p {
                SimdPolicy::ForceScalar => assert_eq!(eng, SimdEngine::Scalar),
                SimdPolicy::ForceWidePortable => assert_eq!(eng, SimdEngine::WidePortable),
                SimdPolicy::ForceWideAvx2 => assert!(matches!(
                    eng,
                    SimdEngine::WideAvx2 | SimdEngine::WidePortable
                )),
                SimdPolicy::ForceWide => assert!(matches!(
                    eng,
                    SimdEngine::WideAvx512 | SimdEngine::WideAvx2 | SimdEngine::WidePortable
                )),
                SimdPolicy::Auto => assert!(matches!(
                    eng,
                    SimdEngine::WideAvx512 | SimdEngine::WideAvx2 | SimdEngine::Scalar
                )),
            }
        }
        set_simd_policy(SimdPolicy::Auto);
    }
}
