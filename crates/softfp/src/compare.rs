//! Ordered comparison of encodings.
//!
//! Floating-point encodings are sign-magnitude: for positive values the
//! encoding order equals the numeric order, for negative values it is
//! reversed. The hardware exploits this — the adder's swapper only needs
//! an unsigned comparator on `{exponent, mantissa}` — and so do we.

use crate::format::FpFormat;
use crate::unpacked::{Class, Unpacked};
use core::cmp::Ordering;

/// Numeric comparison of two encodings in `fmt`.
///
/// Because the library has no NaNs, this is a total order up to the
/// identification of +0 and −0 (which compare equal, as in IEEE).
pub fn compare(fmt: FpFormat, a: u64, b: u64) -> Ordering {
    let ua = Unpacked::from_bits(fmt, a);
    let ub = Unpacked::from_bits(fmt, b);

    // Zeros compare equal regardless of sign.
    if ua.class == Class::Zero && ub.class == Class::Zero {
        return Ordering::Equal;
    }
    // Different signs (with at least one non-zero): positive wins unless
    // both are zero (handled above) — note −0 < +x and −x < +0.
    let sa = effective_sign(&ua);
    let sb = effective_sign(&ub);
    match (sa, sb) {
        (false, true) => return Ordering::Greater,
        (true, false) => return Ordering::Less,
        _ => {}
    }
    let mag = magnitude_order(fmt, &ua, &ub);
    if sa {
        mag.reverse()
    } else {
        mag
    }
}

/// True numeric equality (+0 == −0).
pub fn eq(fmt: FpFormat, a: u64, b: u64) -> bool {
    compare(fmt, a, b) == Ordering::Equal
}

/// Strictly less-than.
pub fn lt(fmt: FpFormat, a: u64, b: u64) -> bool {
    compare(fmt, a, b) == Ordering::Less
}

fn effective_sign(u: &Unpacked) -> bool {
    // A zero takes the sign of "the smallest magnitude", so treat it as
    // positive for sign-class dispatch; magnitude comparison handles it.
    if u.class == Class::Zero {
        false
    } else {
        u.sign
    }
}

fn magnitude_order(_fmt: FpFormat, a: &Unpacked, b: &Unpacked) -> Ordering {
    use Class::*;
    match (a.class, b.class) {
        (Zero, Zero) => Ordering::Equal,
        (Zero, _) => {
            // |0| < |x| unless x is also 0; but sign dispatch above sent a
            // negative-x here only when both effective signs matched, so a
            // zero against a negative normal/inf means "0 > negative".
            if b.sign {
                Ordering::Greater
            } else {
                Ordering::Less
            }
        }
        (_, Zero) => {
            if a.sign {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        }
        (Inf, Inf) => Ordering::Equal,
        (Inf, _) => Ordering::Greater,
        (_, Inf) => Ordering::Less,
        (Normal, Normal) => (a.exp, a.sig).cmp(&(b.exp, b.sig)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F32: FpFormat = FpFormat::SINGLE;

    fn c(a: f32, b: f32) -> Ordering {
        compare(F32, a.to_bits() as u64, b.to_bits() as u64)
    }

    #[test]
    fn matches_native_partial_cmp() {
        let vals = [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            -0.5,
            f32::MAX,
            f32::MIN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            3.25,
            -3.25,
            1e-30,
        ];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(c(a, b), a.partial_cmp(&b).unwrap(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn zero_signs_equal() {
        assert!(eq(F32, 0, 1u64 << 31));
    }

    #[test]
    fn lt_works() {
        assert!(lt(
            F32,
            (-2.0f32).to_bits() as u64,
            (1.0f32).to_bits() as u64
        ));
        assert!(!lt(
            F32,
            (1.0f32).to_bits() as u64,
            (1.0f32).to_bits() as u64
        ));
    }

    #[test]
    fn zero_vs_negative() {
        assert_eq!(c(0.0, -1.0), Ordering::Greater);
        assert_eq!(c(-1.0, -0.0), Ordering::Less);
        assert_eq!(c(-0.0, 1.0), Ordering::Less);
    }
}
