//! Rounding — the paper's normalizer/rounding stage implements
//! round-to-nearest and truncation only.

use crate::exceptions::Flags;
use crate::format::FpFormat;

/// Rounding mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RoundMode {
    /// Round to nearest, ties to even — the IEEE 754 default and the
    /// "rounding-to-nearest" option of the paper's cores.
    NearestEven,
    /// Truncate toward zero (drop guard/round/sticky bits) — the paper's
    /// cheaper option that needs no constant adder in the rounding module.
    Truncate,
}

/// Shift `sig` right by `n`, ORing all shifted-out bits into a sticky bit.
///
/// This mirrors the hardware alignment shifter: the shifted-out tail is
/// reduced by a wide OR. Shifts of 64 or more return `(0, sig != 0)`.
#[inline]
pub fn shift_right_sticky(sig: u64, n: u32) -> (u64, bool) {
    if n == 0 {
        (sig, false)
    } else if n >= 64 {
        (0, sig != 0)
    } else {
        let kept = sig >> n;
        let lost = sig << (64 - n);
        (kept, lost != 0)
    }
}

/// Same as [`shift_right_sticky`] for 128-bit intermediates
/// (the multiplier's product register).
#[inline]
pub fn shift_right_sticky_u128(sig: u128, n: u32) -> (u128, bool) {
    if n == 0 {
        (sig, false)
    } else if n >= 128 {
        (0, sig != 0)
    } else {
        let kept = sig >> n;
        let lost = sig << (128 - n);
        (kept, lost != 0)
    }
}

/// Round a normalized significand-with-extra-bits to `fmt.sig_bits()`.
///
/// `sig` holds the exact (or sticky-compressed) magnitude with the binary
/// point such that bits `[grs_bits..]` are the significand and the low
/// `grs_bits` bits are the guard/round/sticky tail. The hidden bit of the
/// incoming significand must be set (i.e. `sig >> grs_bits` is in
/// `[2^frac_bits, 2^(frac_bits+1))`).
///
/// Returns the rounded `fmt.sig_bits()`-wide significand and a carry flag;
/// when rounding overflows the significand (e.g. `1.111… + ulp`), the
/// result is renormalized to `1.000…` and `carry` is true so the caller's
/// exponent-adjust constant adder fires — exactly the paper's rounding
/// module structure.
pub fn round_sig(fmt: FpFormat, sig: u128, grs_bits: u32, mode: RoundMode) -> RoundedSig {
    debug_assert!(grs_bits >= 1);
    let kept = (sig >> grs_bits) as u64;
    debug_assert!(
        kept >> fmt.frac_bits() == 1,
        "round_sig input not normalized: kept={kept:#x} frac_bits={}",
        fmt.frac_bits()
    );
    let tail_mask = (1u128 << grs_bits) - 1;
    let tail = sig & tail_mask;
    let inexact = tail != 0;

    let round_up = match mode {
        RoundMode::Truncate => false,
        RoundMode::NearestEven => {
            let half = 1u128 << (grs_bits - 1);
            if tail > half {
                true
            } else if tail == half {
                // tie: round to even
                kept & 1 == 1
            } else {
                false
            }
        }
    };

    let mut rounded = kept + round_up as u64;
    let mut carry = false;
    if rounded >> fmt.sig_bits() != 0 {
        // 1.111..1 rounded up to 10.000..0: shift back, bump exponent.
        rounded >>= 1;
        carry = true;
    }
    RoundedSig {
        sig: rounded,
        exp_carry: carry,
        inexact,
    }
}

/// Result of [`round_sig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundedSig {
    /// Rounded significand, hidden bit still explicit.
    pub sig: u64,
    /// True when rounding carried out of the significand; the exponent
    /// must be incremented by one.
    pub exp_carry: bool,
    /// True when any precision was lost.
    pub inexact: bool,
}

/// Deliver an overflowed result under the IEEE default policy for the two
/// supported modes.
///
/// Round-to-nearest rounds past max-finite to ±∞; round-toward-zero can
/// never cross the max-finite boundary, so it saturates there with the
/// all-ones fraction. Overflow always implies inexact — the delivered
/// value differs from the exact one in both modes — which
/// [`Flags::overflow`] encodes.
pub fn round_overflow(fmt: FpFormat, sign: bool, mode: RoundMode) -> (u64, Flags) {
    let bits = match mode {
        RoundMode::NearestEven => fmt.pack(sign, fmt.inf_biased_exp(), 0),
        RoundMode::Truncate => fmt.pack(sign, fmt.max_biased_exp(), fmt.frac_mask()),
    };
    (bits, Flags::overflow())
}

/// Final range check: pack a rounded `(sign, exp, sig)` into an encoding,
/// applying the cores' overflow/underflow policy.
///
/// * Overflow (exp > max): [`round_overflow`].
/// * Underflow (exp < min): flush to ±0 (no denormals).
pub fn pack_with_range_check(
    fmt: FpFormat,
    sign: bool,
    exp: i32,
    sig: u64,
    mode: RoundMode,
    inexact: bool,
) -> (u64, Flags) {
    if exp > fmt.max_exp() {
        round_overflow(fmt, sign, mode)
    } else if exp < fmt.min_exp() {
        (fmt.pack(sign, 0, 0), Flags::underflow())
    } else {
        let mut flags = Flags::NONE;
        flags.inexact = inexact;
        debug_assert!(sig >> fmt.frac_bits() == 1);
        (
            fmt.pack(sign, (exp + fmt.bias()) as u64, sig & fmt.frac_mask()),
            flags,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F32: FpFormat = FpFormat::SINGLE;

    #[test]
    fn sticky_shift_collects_lost_bits() {
        assert_eq!(shift_right_sticky(0b1011, 2), (0b10, true));
        assert_eq!(shift_right_sticky(0b1000, 2), (0b10, false));
        assert_eq!(shift_right_sticky(0b1000, 0), (0b1000, false));
        assert_eq!(shift_right_sticky(1, 64), (0, true));
        assert_eq!(shift_right_sticky(0, 64), (0, false));
        assert_eq!(shift_right_sticky(u64::MAX, 100), (0, true));
    }

    #[test]
    fn sticky_shift_u128() {
        assert_eq!(shift_right_sticky_u128(0b1011, 2), (0b10, true));
        assert_eq!(shift_right_sticky_u128(1u128 << 100, 128), (0, true));
        assert_eq!(shift_right_sticky_u128(0, 200), (0, false));
    }

    #[test]
    fn nearest_even_ties() {
        // significand 1.0…01 (odd lsb) + exactly half an ulp -> round to even (up)
        let sig = ((1u128 << 23) | 1) << 3 | 0b100;
        let r = round_sig(F32, sig, 3, RoundMode::NearestEven);
        assert_eq!(r.sig, (1 << 23) + 2);
        assert!(r.inexact && !r.exp_carry);

        // even lsb + exactly half -> stays (down)
        let sig = ((1u128 << 23) | 2) << 3 | 0b100;
        let r = round_sig(F32, sig, 3, RoundMode::NearestEven);
        assert_eq!(r.sig, (1 << 23) + 2);
    }

    #[test]
    fn truncate_never_rounds_up() {
        let sig = (((1u128 << 24) - 1) << 3) | 0b111;
        let r = round_sig(F32, sig, 3, RoundMode::Truncate);
        assert_eq!(r.sig, (1 << 24) - 1);
        assert!(r.inexact && !r.exp_carry);
    }

    #[test]
    fn round_up_carries_out() {
        // 1.111…1 + more than half an ulp -> 10.00…0, carry to exponent
        let sig = (((1u128 << 24) - 1) << 3) | 0b101;
        let r = round_sig(F32, sig, 3, RoundMode::NearestEven);
        assert_eq!(r.sig, 1 << 23);
        assert!(r.exp_carry);
    }

    #[test]
    fn exact_input_is_exact() {
        let sig = (1u128 << 23) << 3;
        let r = round_sig(F32, sig, 3, RoundMode::NearestEven);
        assert!(!r.inexact);
        assert_eq!(r.sig, 1 << 23);
    }

    #[test]
    fn overflow_policy_by_mode() {
        let (bits, f) =
            pack_with_range_check(F32, false, 200, 1 << 23, RoundMode::NearestEven, true);
        assert_eq!(bits, F32.pos_inf());
        assert!(f.overflow);
        let (bits, f) = pack_with_range_check(F32, true, 200, 1 << 23, RoundMode::Truncate, true);
        assert_eq!(bits, F32.max_finite() | (1 << 31));
        assert!(f.overflow);
    }

    #[test]
    fn regress_shift_sticky_boundary_counts() {
        // Shift counts at and beyond the register width must not wrap
        // (`x << (64 - n)` with n = 0 or n ≥ 64 would be UB-adjacent
        // shifts if the guards were off by one).
        for n in [63, 64, 65, 127, u32::MAX] {
            assert_eq!(shift_right_sticky(u64::MAX, n.min(63)), {
                let k = n.min(63);
                (u64::MAX >> k, true)
            });
            if n >= 64 {
                assert_eq!(shift_right_sticky(u64::MAX, n), (0, true));
                assert_eq!(shift_right_sticky(0, n), (0, false));
            }
        }
        assert_eq!(shift_right_sticky(1u64 << 63, 63), (1, false));
        assert_eq!(shift_right_sticky(1u64 << 63, 64), (0, true));
        for n in [127, 128, 129, u32::MAX] {
            if n >= 128 {
                assert_eq!(shift_right_sticky_u128(u128::MAX, n), (0, true));
                assert_eq!(shift_right_sticky_u128(0, n), (0, false));
            }
        }
        assert_eq!(shift_right_sticky_u128(1u128 << 127, 127), (1, false));
        assert_eq!(shift_right_sticky_u128(1u128 << 127, 128), (0, true));
        assert_eq!(shift_right_sticky_u128(3u128 << 126, 127), (1, true));
    }

    #[test]
    fn regress_round_overflow_truncate_packs_max_finite() {
        // Round-toward-zero overflow must deliver ±max-finite (all-ones
        // fraction, top normal exponent), not ±∞, and must raise both
        // overflow and inexact — for every format shape.
        for fmt in [
            FpFormat::SINGLE,
            FpFormat::FP48,
            FpFormat::DOUBLE,
            FpFormat::new(6, 17),
        ] {
            for sign in [false, true] {
                let (bits, f) = round_overflow(fmt, sign, RoundMode::Truncate);
                let (s, e, m) = fmt.unpack_fields(bits);
                assert_eq!(s, sign);
                assert_eq!(e, fmt.max_biased_exp(), "{fmt:?}");
                assert_eq!(m, fmt.frac_mask(), "{fmt:?}");
                assert!(f.overflow && f.inexact);

                let (bits, f) = round_overflow(fmt, sign, RoundMode::NearestEven);
                let (s, e, m) = fmt.unpack_fields(bits);
                assert_eq!(s, sign);
                assert_eq!(e, fmt.inf_biased_exp());
                assert_eq!(m, 0);
                assert!(f.overflow && f.inexact);
            }
        }
    }

    #[test]
    fn underflow_flushes() {
        let (bits, f) =
            pack_with_range_check(F32, true, -200, 1 << 23, RoundMode::NearestEven, true);
        assert_eq!(bits, 1u64 << 31);
        assert!(f.underflow);
    }
}
