//! Exception flags.
//!
//! The paper's cores detect exceptions at every pipeline stage and carry
//! them forward to the output alongside the `DONE` signal. This module is
//! the architectural definition of that side-band information.
//!
//! # Flag semantics (normative, checked by `fpfpga-conform`)
//!
//! These rules hold across **every** op in both the flush-to-zero layer
//! (`ops::*`) and the full-IEEE layer (`ieee`):
//!
//! * **Overflow implies inexact.** The delivered value (±∞ under
//!   round-to-nearest, ±max-finite under truncation) always differs from
//!   the exact result, so `overflow` is never raised without `inexact`.
//!   [`Flags::overflow`] encodes the pair.
//! * **Underflow** means *tininess with precision loss*:
//!   * In the flush-to-zero layer a result below the normal range is
//!     replaced by ±0 — always a precision loss, so `underflow` there
//!     also implies `inexact` ([`Flags::underflow`]).
//!   * In the IEEE layer tininess is detected **after rounding** (the
//!     x86-SSE convention the conformance harness compares against): a
//!     result is tiny iff, rounded to destination precision as though
//!     the exponent range were unbounded, it stays below the smallest
//!     normal. `underflow` is raised only when the result is tiny *and*
//!     the delivered (denormalized) result is inexact; an exactly
//!     representable denormal raises nothing.
//! * **Invalid** covers ∞−∞, 0×∞ (including inside fma), 0÷0, ∞÷∞,
//!   √(negative) and any *signaling* NaN operand. Quiet-NaN propagation
//!   raises nothing.
//! * **Divide-by-zero** is raised only for finite-nonzero ÷ 0; 0÷0 is
//!   invalid instead.

use core::fmt;
use core::ops::{BitOr, BitOrAssign};

/// Sticky exception flags produced by an operation.
///
/// `Flags` is a tiny value type; combine flags from successive operations
/// with `|`/`|=` exactly as the hardware ORs the per-stage exception wires.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Flags {
    /// Result magnitude exceeded the largest finite number; the result was
    /// replaced by ±∞ (round-to-nearest) or ±max-finite (truncate).
    pub overflow: bool,
    /// Result was too small for a normal number and was flushed to zero
    /// (the cores implement no denormals).
    pub underflow: bool,
    /// Invalid operation: ∞ − ∞, 0 × ∞, 0 ÷ 0, ∞ ÷ ∞ or √(negative).
    /// The cores have no NaN encoding, so the result is a deterministic
    /// substitute with this flag raised.
    pub invalid: bool,
    /// The rounded result differs from the exact result.
    pub inexact: bool,
    /// A finite non-zero operand was divided by zero; the result is ±∞.
    pub div_by_zero: bool,
}

impl Flags {
    /// No exceptions.
    pub const NONE: Flags = Flags {
        overflow: false,
        underflow: false,
        invalid: false,
        inexact: false,
        div_by_zero: false,
    };

    /// Construct the overflow flag (overflow implies inexact).
    pub const fn overflow() -> Flags {
        Flags {
            overflow: true,
            inexact: true,
            ..Self::NONE
        }
    }

    /// Construct the underflow flag (underflow-to-zero implies inexact).
    pub const fn underflow() -> Flags {
        Flags {
            underflow: true,
            inexact: true,
            ..Self::NONE
        }
    }

    /// Construct the invalid flag.
    pub const fn invalid() -> Flags {
        Flags {
            invalid: true,
            ..Self::NONE
        }
    }

    /// Construct the inexact flag.
    pub const fn inexact() -> Flags {
        Flags {
            inexact: true,
            ..Self::NONE
        }
    }

    /// Construct the divide-by-zero flag.
    pub const fn div_by_zero() -> Flags {
        Flags {
            div_by_zero: true,
            ..Self::NONE
        }
    }

    /// True if any flag is raised.
    pub const fn any(self) -> bool {
        self.overflow || self.underflow || self.invalid || self.inexact || self.div_by_zero
    }

    /// Pack into the 5-bit side-band bus carried through the pipeline
    /// (bit 0 = inexact, 1 = underflow, 2 = overflow, 3 = invalid,
    /// 4 = divide-by-zero).
    pub const fn to_bits(self) -> u8 {
        (self.inexact as u8)
            | ((self.underflow as u8) << 1)
            | ((self.overflow as u8) << 2)
            | ((self.invalid as u8) << 3)
            | ((self.div_by_zero as u8) << 4)
    }

    /// Unpack from the 5-bit side-band bus.
    pub const fn from_bits(bits: u8) -> Flags {
        Flags {
            inexact: bits & 1 != 0,
            underflow: bits & 2 != 0,
            overflow: bits & 4 != 0,
            invalid: bits & 8 != 0,
            div_by_zero: bits & 16 != 0,
        }
    }
}

impl BitOr for Flags {
    type Output = Flags;
    fn bitor(self, rhs: Flags) -> Flags {
        Flags {
            overflow: self.overflow || rhs.overflow,
            underflow: self.underflow || rhs.underflow,
            invalid: self.invalid || rhs.invalid,
            inexact: self.inexact || rhs.inexact,
            div_by_zero: self.div_by_zero || rhs.div_by_zero,
        }
    }
}

impl BitOrAssign for Flags {
    fn bitor_assign(&mut self, rhs: Flags) {
        *self = *self | rhs;
    }
}

impl fmt::Debug for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names = Vec::new();
        if self.overflow {
            names.push("overflow");
        }
        if self.underflow {
            names.push("underflow");
        }
        if self.invalid {
            names.push("invalid");
        }
        if self.inexact {
            names.push("inexact");
        }
        if self.div_by_zero {
            names.push("div_by_zero");
        }
        if names.is_empty() {
            write!(f, "Flags(none)")
        } else {
            write!(f, "Flags({})", names.join("|"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn or_combines() {
        let f = Flags::overflow() | Flags::invalid();
        assert!(f.overflow && f.invalid && f.inexact && !f.underflow);
    }

    #[test]
    fn bits_roundtrip() {
        for bits in 0..32u8 {
            assert_eq!(Flags::from_bits(bits).to_bits(), bits);
        }
    }

    #[test]
    fn div_by_zero_flag() {
        let f = Flags::div_by_zero();
        assert!(f.any() && !f.inexact && !f.invalid);
        assert_eq!(Flags::from_bits(f.to_bits()), f);
    }

    #[test]
    fn implied_inexact() {
        assert!(Flags::overflow().inexact);
        assert!(Flags::underflow().inexact);
        assert!(!Flags::invalid().inexact);
    }

    #[test]
    fn any_detects() {
        assert!(!Flags::NONE.any());
        assert!(Flags::inexact().any());
    }
}
