//! Exhaustive tiny-format sweeps of the limb kernels against the
//! `BigFloat` oracle (satellite of the `softfp::limb` tentpole).
//!
//! Every `(a, b)` encoding pair of a small format is pushed through
//! `limb_add` / `limb_mul` in both rounding modes and compared —
//! result bits AND exception flags — against the exact-integer oracle
//! in `softfp::limb::oracle`. Because the format is tiny the sweep
//! covers every special-value collision (NaN×∞, denormal cancellation,
//! overflow at every rounding boundary) with no sampling gaps.
//!
//! Scale tiers:
//!
//! * default run: exhaustive e4f3 (8-bit, 65 536 pairs) + a strided
//!   fma sweep — fast enough for the debug-mode tier-1 suite;
//! * `#[ignore]`d: exhaustive e5f6 (12-bit, ~16.8 M pairs) and a
//!   denser fma grid, run in release by the CI `limb-tests` job via
//!   `--include-ignored`.

use fpfpga_softfp::limb::oracle::{oracle_add, oracle_fma, oracle_mul, oracle_sub};
use fpfpga_softfp::limb::{limb_add, limb_fma, limb_mul, limb_sub, LimbFormat};
use fpfpga_softfp::RoundMode;

const MODES: [RoundMode; 2] = [RoundMode::NearestEven, RoundMode::Truncate];

fn mode_tag(mode: RoundMode) -> &'static str {
    match mode {
        RoundMode::NearestEven => "rne",
        RoundMode::Truncate => "rtz",
    }
}

/// A two-operand limb kernel or oracle entry point.
type BinFn = fn(LimbFormat, &[u64], &[u64], RoundMode) -> (Vec<u64>, fpfpga_softfp::Flags);

/// Compare one binary-op case: limb kernel vs oracle, bits and flags.
fn check_binary(
    name: &str,
    kernel: BinFn,
    oracle: BinFn,
    fmt: LimbFormat,
    a: u64,
    b: u64,
    mode: RoundMode,
) {
    let got = kernel(fmt, &[a], &[b], mode);
    let want = oracle(fmt, &[a], &[b], mode);
    assert_eq!(
        got,
        want,
        "{name} {} {} {a:#x} {b:#x}: limb kernel diverged from oracle",
        fmt.canonical_name(),
        mode_tag(mode),
    );
}

/// Every (a, b) pair of `fmt` through add/sub/mul, both modes.
fn exhaustive_pairs(fmt: LimbFormat) {
    assert!(fmt.total_bits() <= 16, "sweep would not terminate usefully");
    let n = 1u64 << fmt.total_bits();
    for a in 0..n {
        for b in 0..n {
            for mode in MODES {
                check_binary("add", limb_add, oracle_add, fmt, a, b, mode);
                check_binary("mul", limb_mul, oracle_mul, fmt, a, b, mode);
            }
        }
    }
}

/// Strided (a, b, c) fma triples: `a` walks the full encoding space,
/// `b`/`c` are derived by a splitmix-style hash so every region of the
/// space (specials, denormals, both signs) gets hit without the cubic
/// blowup of a true exhaustive triple sweep.
fn strided_fma(fmt: LimbFormat, per_a: u64) {
    let n = 1u64 << fmt.total_bits();
    let mask = n - 1;
    for a in 0..n {
        for k in 0..per_a {
            let mut z = a
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(k.wrapping_mul(0xbf58_476d_1ce4_e5b9));
            z ^= z >> 30;
            z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 27;
            let b = z & mask;
            let c = (z >> 32) & mask;
            for mode in MODES {
                let got = limb_fma(fmt, &[a], &[b], &[c], mode);
                let want = oracle_fma(fmt, &[a], &[b], &[c], mode);
                assert_eq!(
                    got,
                    want,
                    "fma {} {} {a:#x} {b:#x} {c:#x}: limb kernel diverged from oracle",
                    fmt.canonical_name(),
                    mode_tag(mode),
                );
            }
        }
    }
}

/// Exhaustive e4f3 (8-bit) add/sub/mul: all 65 536 pairs, both modes.
#[test]
fn exhaustive_e4f3_add_mul_vs_oracle() {
    exhaustive_pairs(LimbFormat::new(4, 3));
}

/// Sub is add with a flipped sign bit, but sweep it explicitly so the
/// wrapper (and the oracle's sub path) can never drift.
#[test]
fn exhaustive_e4f3_sub_vs_oracle() {
    let fmt = LimbFormat::new(4, 3);
    let n = 1u64 << fmt.total_bits();
    for a in 0..n {
        for b in 0..n {
            for mode in MODES {
                check_binary("sub", limb_sub, oracle_sub, fmt, a, b, mode);
            }
        }
    }
}

/// Strided fma at e4f3: every `a`, 32 derived (b, c) pairs each —
/// 8 192 triples, both modes.
#[test]
fn strided_e4f3_fma_vs_oracle() {
    strided_fma(LimbFormat::new(4, 3), 32);
}

/// A second tiny geometry (wider exponent, narrower fraction) so the
/// sweep is not blind to exp/frac split effects: exhaustive e6f2.
#[test]
fn exhaustive_e6f2_add_mul_vs_oracle() {
    exhaustive_pairs(LimbFormat::new(6, 2));
}

/// Exhaustive 12-bit e5f6 sweep — ~16.8 M pairs × 2 ops × 2 modes.
/// Too slow for the debug tier-1 run; the CI `limb-tests` job runs it
/// in release with `--include-ignored`.
#[test]
#[ignore = "release-mode CI sweep (~67M kernel evals); run via limb-tests job"]
fn exhaustive_e5f6_add_mul_vs_oracle() {
    exhaustive_pairs(LimbFormat::new(5, 6));
}

/// Dense fma grid at e5f6 for the CI release job: every `a`, 64
/// derived (b, c) pairs each — ~260 k triples, both modes.
#[test]
#[ignore = "release-mode CI sweep; run via limb-tests job"]
fn strided_e5f6_fma_vs_oracle() {
    strided_fma(LimbFormat::new(5, 6), 64);
}
