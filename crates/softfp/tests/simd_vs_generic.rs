//! Property tests: every SIMD batch engine must be bit-identical to the
//! generic `unpacked` dispatchers — result encodings *and* exception
//! flags — at special-operand densities of 0%, ~5% and 100%, on the
//! paper's three precisions. The suite pins the engine explicitly
//! through the `*_bits_batch_with` entry points (no global-policy
//! races between test threads) and checks partition-order stability:
//! the classify-then-partition driver must scatter special-lane results
//! back into their original batch positions.

use fpfpga_softfp::simd::{self, SimdEngine};
use fpfpga_softfp::{add_bits, fma_bits, mul_bits, sub_bits, Flags, FpFormat, RoundMode};
use proptest::prelude::*;

/// Every engine this host can run. The scalar lane and the portable
/// wide twin always exist; the intrinsics engines join when detected.
fn engines() -> Vec<SimdEngine> {
    let mut e = vec![SimdEngine::Scalar, SimdEngine::WidePortable];
    if simd::avx2_available() {
        e.push(SimdEngine::WideAvx2);
    }
    if simd::avx512_available() {
        e.push(SimdEngine::WideAvx512);
    }
    e
}

const FORMATS: [FpFormat; 3] = FpFormat::PAPER_PRECISIONS;

fn any_fmt() -> impl Strategy<Value = FpFormat> {
    prop_oneof![Just(FORMATS[0]), Just(FORMATS[1]), Just(FORMATS[2])]
}

fn any_mode() -> impl Strategy<Value = RoundMode> {
    prop_oneof![Just(RoundMode::NearestEven), Just(RoundMode::Truncate)]
}

/// Turn a raw draw into an operand with the requested percentage of
/// special encodings (`sel` is an independent uniform draw). Specials
/// cycle through zero, denormal-pattern, and all-ones-exponent
/// encodings; normals fold the exponent into the normal range.
fn encode(fmt: FpFormat, raw: u64, sel: u16, density_pct: u16) -> u64 {
    if u64::from(sel % 100) < u64::from(density_pct) {
        let (sign, _, frac) = fmt.unpack_fields(raw);
        match sel / 100 % 3 {
            0 => fmt.pack(sign, 0, 0),                       // signed zero
            1 => fmt.pack(sign, 0, frac | 1),                // denormal pattern
            _ => fmt.pack(sign, fmt.inf_biased_exp(), frac), // inf/NaN pattern
        }
    } else {
        let (sign, exp, frac) = fmt.unpack_fields(raw);
        let norm = 1 + exp % fmt.max_biased_exp();
        fmt.pack(sign, norm, frac)
    }
}

type RawBatch = Vec<(u64, u64, u64, u16)>;

fn raw_batch() -> impl Strategy<Value = RawBatch> {
    proptest::collection::vec(
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u16>()),
        0..80,
    )
}

/// Check one (engine, density) cell for every binary op plus fma:
/// the batch output must equal the generic scalar dispatchers,
/// element for element, in original input order.
fn check_density(fmt: FpFormat, mode: RoundMode, raw: &RawBatch, density_pct: u16) {
    let a: Vec<u64> = raw
        .iter()
        .map(|&(x, _, _, s)| encode(fmt, x, s, density_pct))
        .collect();
    let b: Vec<u64> = raw
        .iter()
        .map(|&(_, y, _, s)| encode(fmt, y, s.wrapping_add(7), density_pct))
        .collect();
    let c: Vec<u64> = raw
        .iter()
        .map(|&(_, _, z, s)| encode(fmt, z, s.wrapping_add(31), density_pct))
        .collect();

    let want_add: Vec<(u64, Flags)> = (0..a.len())
        .map(|i| add_bits(fmt, a[i], b[i], mode))
        .collect();
    let want_sub: Vec<(u64, Flags)> = (0..a.len())
        .map(|i| sub_bits(fmt, a[i], b[i], mode))
        .collect();
    let want_mul: Vec<(u64, Flags)> = (0..a.len())
        .map(|i| mul_bits(fmt, a[i], b[i], mode))
        .collect();
    let want_fma: Vec<(u64, Flags)> = (0..a.len())
        .map(|i| fma_bits(fmt, a[i], b[i], c[i], mode))
        .collect();

    for eng in engines() {
        let mut out = Vec::new();
        simd::add_bits_batch_with(eng, fmt, &a, &b, mode, &mut out);
        assert_eq!(out, want_add, "{eng:?} add {fmt:?} {density_pct}%");
        out.clear();
        simd::sub_bits_batch_with(eng, fmt, &a, &b, mode, &mut out);
        assert_eq!(out, want_sub, "{eng:?} sub {fmt:?} {density_pct}%");
        out.clear();
        simd::mul_bits_batch_with(eng, fmt, &a, &b, mode, &mut out);
        assert_eq!(out, want_mul, "{eng:?} mul {fmt:?} {density_pct}%");
        out.clear();
        simd::fma_bits_batch_with(eng, fmt, &a, &b, &c, mode, &mut out);
        assert_eq!(out, want_fma, "{eng:?} fma {fmt:?} {density_pct}%");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// 0% specials: the pure vector datapath, no partition fixup.
    #[test]
    fn all_normal_batches_match_generic(fmt in any_fmt(), mode in any_mode(),
                                        raw in raw_batch()) {
        check_density(fmt, mode, &raw, 0);
    }

    /// ~5% specials: mostly-vector chunks with sparse scattered fixups —
    /// the partition pass must place each special result back in order.
    #[test]
    fn sparse_special_batches_match_generic(fmt in any_fmt(), mode in any_mode(),
                                            raw in raw_batch()) {
        check_density(fmt, mode, &raw, 5);
    }

    /// 100% specials: every lane takes the generic path; the vector lane
    /// contributes nothing but must not corrupt order or flags.
    #[test]
    fn all_special_batches_match_generic(fmt in any_fmt(), mode in any_mode(),
                                         raw in raw_batch()) {
        check_density(fmt, mode, &raw, 100);
    }

    /// Engines also agree on arbitrary *raw* encodings (whatever mix of
    /// normal/special that implies), including the one-shot dispatchers.
    #[test]
    fn raw_encodings_match_generic(fmt in any_fmt(), mode in any_mode(),
                                   raw in raw_batch()) {
        let a: Vec<u64> = raw.iter().map(|&(x, ..)| x & fmt.enc_mask()).collect();
        let b: Vec<u64> = raw.iter().map(|&(_, y, ..)| y & fmt.enc_mask()).collect();
        for eng in engines() {
            let mut out = Vec::new();
            simd::add_bits_batch_with(eng, fmt, &a, &b, mode, &mut out);
            for i in 0..a.len() {
                prop_assert_eq!(out[i], add_bits(fmt, a[i], b[i], mode),
                                "{:?} add lane {}", eng, i);
            }
        }
        if let (Some(&x), Some(&y)) = (a.first(), b.first()) {
            prop_assert_eq!(simd::add_bits(fmt, x, y, mode), add_bits(fmt, x, y, mode));
            prop_assert_eq!(simd::mul_bits(fmt, x, y, mode), mul_bits(fmt, x, y, mode));
        }
    }
}
