//! Property tests: the parameterized soft-float implementation must agree
//! bit-for-bit with native IEEE 754 `f32`/`f64` arithmetic wherever the
//! semantics coincide — i.e. on normal operands, outside the
//! denormal-result boundary zone (the cores flush to zero where IEEE
//! produces denormals) and away from NaN-producing inputs.

use fpfpga_softfp::{add_bits, mul_bits, sub_bits, FpFormat, RoundMode};
use proptest::prelude::*;

/// Strategy: finite, non-denormal f32 (normal or zero).
fn normal_f32() -> impl Strategy<Value = f32> {
    any::<u32>()
        .prop_map(f32::from_bits)
        .prop_filter("normal or zero", |x| {
            x.is_finite() && (*x == 0.0 || x.is_normal())
        })
}

fn normal_f64() -> impl Strategy<Value = f64> {
    any::<u64>()
        .prop_map(f64::from_bits)
        .prop_filter("normal or zero", |x| {
            x.is_finite() && (*x == 0.0 || x.is_normal())
        })
}

/// Native result adjusted for flush-to-zero semantics, or `None` when the
/// case sits in the zone where our documented semantics legitimately
/// diverge from IEEE (results at or below the smallest normal, where IEEE
/// gradual underflow may round up into the normal range).
fn ftz_expect_f32(native: f32) -> Option<u32> {
    if native.is_nan() {
        return None; // our cores return a deterministic non-NaN + invalid
    }
    if native != 0.0 && native.abs() <= f32::MIN_POSITIVE {
        return None; // denormal boundary zone
    }
    Some(native.to_bits())
}

fn ftz_expect_f64(native: f64) -> Option<u64> {
    if native.is_nan() {
        return None;
    }
    if native != 0.0 && native.abs() <= f64::MIN_POSITIVE {
        return None;
    }
    Some(native.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn add_matches_native_f32(a in normal_f32(), b in normal_f32()) {
        if let Some(want) = ftz_expect_f32(a + b) {
            let (got, _) = add_bits(FpFormat::SINGLE, a.to_bits() as u64, b.to_bits() as u64,
                                    RoundMode::NearestEven);
            prop_assert_eq!(got as u32, want, "{} + {}", a, b);
        }
    }

    #[test]
    fn sub_matches_native_f32(a in normal_f32(), b in normal_f32()) {
        if let Some(want) = ftz_expect_f32(a - b) {
            let (got, _) = sub_bits(FpFormat::SINGLE, a.to_bits() as u64, b.to_bits() as u64,
                                    RoundMode::NearestEven);
            prop_assert_eq!(got as u32, want, "{} - {}", a, b);
        }
    }

    #[test]
    fn mul_matches_native_f32(a in normal_f32(), b in normal_f32()) {
        if let Some(want) = ftz_expect_f32(a * b) {
            let (got, _) = mul_bits(FpFormat::SINGLE, a.to_bits() as u64, b.to_bits() as u64,
                                    RoundMode::NearestEven);
            prop_assert_eq!(got as u32, want, "{} * {}", a, b);
        }
    }

    #[test]
    fn add_matches_native_f64(a in normal_f64(), b in normal_f64()) {
        if let Some(want) = ftz_expect_f64(a + b) {
            let (got, _) = add_bits(FpFormat::DOUBLE, a.to_bits(), b.to_bits(),
                                    RoundMode::NearestEven);
            prop_assert_eq!(got, want, "{} + {}", a, b);
        }
    }

    #[test]
    fn sub_matches_native_f64(a in normal_f64(), b in normal_f64()) {
        if let Some(want) = ftz_expect_f64(a - b) {
            let (got, _) = sub_bits(FpFormat::DOUBLE, a.to_bits(), b.to_bits(),
                                    RoundMode::NearestEven);
            prop_assert_eq!(got, want, "{} - {}", a, b);
        }
    }

    #[test]
    fn mul_matches_native_f64(a in normal_f64(), b in normal_f64()) {
        if let Some(want) = ftz_expect_f64(a * b) {
            let (got, _) = mul_bits(FpFormat::DOUBLE, a.to_bits(), b.to_bits(),
                                    RoundMode::NearestEven);
            prop_assert_eq!(got, want, "{} * {}", a, b);
        }
    }

    /// Close-magnitude subtraction stresses the cancellation/normalizer
    /// path far harder than uniform random operands.
    #[test]
    fn cancellation_matches_native_f32(a in normal_f32(), ulps in -8i32..8) {
        let b = f32::from_bits((a.to_bits() as i64 + ulps as i64).max(0) as u32);
        prop_assume!(b.is_finite() && (b == 0.0 || b.is_normal()));
        if let Some(want) = ftz_expect_f32(a - b) {
            let (got, _) = sub_bits(FpFormat::SINGLE, a.to_bits() as u64, b.to_bits() as u64,
                                    RoundMode::NearestEven);
            prop_assert_eq!(got as u32, want, "{} - {} ({} ulps)", a, b, ulps);
        }
    }

    /// Near-tie rounding: operands differing by about the significand
    /// width exercise the guard/round/sticky logic.
    #[test]
    fn sticky_zone_matches_native_f32(a in normal_f32(), shift in 20u32..30, frac in any::<u32>()) {
        let b_exp = (a.to_bits() >> 23 & 0xff) as i32 - shift as i32;
        prop_assume!((1..=254).contains(&b_exp));
        let b = f32::from_bits(((b_exp as u32) << 23) | (frac & 0x7f_ffff));
        if let Some(want) = ftz_expect_f32(a + b) {
            let (got, _) = add_bits(FpFormat::SINGLE, a.to_bits() as u64, b.to_bits() as u64,
                                    RoundMode::NearestEven);
            prop_assert_eq!(got as u32, want, "{} + {}", a, b);
        }
    }

    /// Truncation must round toward zero: |result| <= |exact| and within
    /// one ulp of the nearest-even result.
    #[test]
    fn truncate_bounds_f32(a in normal_f32(), b in normal_f32()) {
        let native = a * b;
        prop_assume!(!native.is_nan());
        prop_assume!(native == 0.0 || native.abs() > f32::MIN_POSITIVE);
        prop_assume!(native.is_finite());
        let (t, _) = mul_bits(FpFormat::SINGLE, a.to_bits() as u64, b.to_bits() as u64,
                              RoundMode::Truncate);
        let t = f32::from_bits(t as u32);
        prop_assert!(t.abs() <= native.abs(), "trunc {} vs exact-ish {}", t, native);
        // truncation differs from nearest by at most one ulp
        let diff = (t.to_bits() as i64 - native.to_bits() as i64).abs();
        prop_assert!(diff <= 1, "{} * {}: trunc {} native {}", a, b, t, native);
    }

    /// FP48 arithmetic must be *more* accurate than single precision:
    /// every single-precision operand pair computed in FP48 and rounded
    /// back to single equals the correctly rounded single result or is at
    /// most 1 ulp away (double rounding).
    #[test]
    fn fp48_refines_single(a in normal_f32(), b in normal_f32()) {
        use fpfpga_softfp::convert::convert;
        let f48 = FpFormat::FP48;
        let (a48, _) = convert(FpFormat::SINGLE, a.to_bits() as u64, f48, RoundMode::NearestEven);
        let (b48, _) = convert(FpFormat::SINGLE, b.to_bits() as u64, f48, RoundMode::NearestEven);
        let (p48, _) = mul_bits(f48, a48, b48, RoundMode::NearestEven);
        let (back, _) = convert(f48, p48, FpFormat::SINGLE, RoundMode::NearestEven);
        let native = a * b;
        prop_assume!(ftz_expect_f32(native).is_some());
        let diff = (back as i64 - native.to_bits() as i64).abs();
        prop_assert!(diff <= 1, "{} * {} -> fp48 {} vs native {}", a, b,
                     f32::from_bits(back as u32), native);
    }

    /// Commutativity of add and mul (bit-exact).
    #[test]
    fn add_commutes(a in normal_f32(), b in normal_f32()) {
        let (x, _) = add_bits(FpFormat::SINGLE, a.to_bits() as u64, b.to_bits() as u64,
                              RoundMode::NearestEven);
        let (y, _) = add_bits(FpFormat::SINGLE, b.to_bits() as u64, a.to_bits() as u64,
                              RoundMode::NearestEven);
        prop_assert_eq!(x, y);
    }

    #[test]
    fn mul_commutes(a in normal_f32(), b in normal_f32()) {
        let (x, _) = mul_bits(FpFormat::SINGLE, a.to_bits() as u64, b.to_bits() as u64,
                              RoundMode::NearestEven);
        let (y, _) = mul_bits(FpFormat::SINGLE, b.to_bits() as u64, a.to_bits() as u64,
                              RoundMode::NearestEven);
        prop_assert_eq!(x, y);
    }

    /// x + 0 == x, x * 1 == x (bit-exact on normals).
    #[test]
    fn identities(a in normal_f32()) {
        let one = 1.0f32.to_bits() as u64;
        let (s, _) = add_bits(FpFormat::SINGLE, a.to_bits() as u64, 0, RoundMode::NearestEven);
        prop_assert_eq!(s as u32, a.to_bits());
        let (p, _) = mul_bits(FpFormat::SINGLE, a.to_bits() as u64, one, RoundMode::NearestEven);
        prop_assert_eq!(p as u32, a.to_bits());
    }

    /// Conversion roundtrip single -> 48 -> single is the identity.
    #[test]
    fn widen_narrow_roundtrip(a in normal_f32()) {
        use fpfpga_softfp::convert::convert;
        let (w, f) = convert(FpFormat::SINGLE, a.to_bits() as u64, FpFormat::FP48,
                             RoundMode::NearestEven);
        prop_assert!(!f.any());
        let (n, f) = convert(FpFormat::FP48, w, FpFormat::SINGLE, RoundMode::NearestEven);
        prop_assert!(!f.any());
        prop_assert_eq!(n as u32, a.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn div_matches_native_f32(a in normal_f32(), b in normal_f32()) {
        prop_assume!(b != 0.0);
        if let Some(want) = ftz_expect_f32(a / b) {
            let (got, _) = fpfpga_softfp::div_bits(FpFormat::SINGLE, a.to_bits() as u64,
                                                   b.to_bits() as u64, RoundMode::NearestEven);
            prop_assert_eq!(got as u32, want, "{} / {}", a, b);
        }
    }

    #[test]
    fn div_matches_native_f64(a in normal_f64(), b in normal_f64()) {
        prop_assume!(b != 0.0);
        if let Some(want) = ftz_expect_f64(a / b) {
            let (got, _) = fpfpga_softfp::div_bits(FpFormat::DOUBLE, a.to_bits(), b.to_bits(),
                                                   RoundMode::NearestEven);
            prop_assert_eq!(got, want, "{} / {}", a, b);
        }
    }

    #[test]
    fn sqrt_matches_native_f32(a in normal_f32()) {
        let a = a.abs();
        let want = a.sqrt();
        // sqrt of a normal positive number is always normal
        let (got, _) = fpfpga_softfp::sqrt_bits(FpFormat::SINGLE, a.to_bits() as u64,
                                                RoundMode::NearestEven);
        prop_assert_eq!(got as u32, want.to_bits(), "sqrt({})", a);
    }

    #[test]
    fn sqrt_matches_native_f64(a in normal_f64()) {
        let a = a.abs();
        let (got, _) = fpfpga_softfp::sqrt_bits(FpFormat::DOUBLE, a.to_bits(),
                                                RoundMode::NearestEven);
        prop_assert_eq!(got, a.sqrt().to_bits(), "sqrt({})", a);
    }

    /// Division round-trip: (a/b)*b stays within 1 ulp of a (two rounded
    /// steps), and a/a == 1 exactly.
    #[test]
    fn div_self_is_one(a in normal_f32()) {
        prop_assume!(a != 0.0);
        let (got, f) = fpfpga_softfp::div_bits(FpFormat::SINGLE, a.to_bits() as u64,
                                               a.to_bits() as u64, RoundMode::NearestEven);
        prop_assert_eq!(f32::from_bits(got as u32), 1.0);
        prop_assert!(!f.any());
    }

    /// sqrt(x)² stays within 1 ulp of x.
    #[test]
    fn sqrt_squares_back(a in normal_f32()) {
        let a = a.abs();
        prop_assume!(a > 0.0);
        let fmt = FpFormat::SINGLE;
        let (r, _) = fpfpga_softfp::sqrt_bits(fmt, a.to_bits() as u64, RoundMode::NearestEven);
        let (sq, _) = fpfpga_softfp::mul_bits(fmt, r, r, RoundMode::NearestEven);
        if ftz_expect_f32(f32::from_bits(sq as u32)).is_some() {
            let diff = (sq as i64 - a.to_bits() as i64).abs();
            prop_assert!(diff <= 2, "sqrt({a})^2 = {} ({diff} ulps off)", f32::from_bits(sq as u32));
        }
    }
}

/// Full-IEEE mode: must match native floats on *every* bit pattern —
/// denormals included; NaN results compare by NaN-ness (payloads are
/// canonicalized).
mod ieee_mode {
    use fpfpga_softfp::ieee::{ieee_add, ieee_mul, ieee_sub, is_nan};
    use fpfpga_softfp::{FpFormat, RoundMode};
    use proptest::prelude::*;

    fn check_f32(got: u64, native: f32) -> Result<(), TestCaseError> {
        if native.is_nan() {
            prop_assert!(is_nan(FpFormat::SINGLE, got), "expected NaN, got {got:#x}");
        } else {
            prop_assert_eq!(got as u32, native.to_bits(), "native {}", native);
        }
        Ok(())
    }

    fn check_f64(got: u64, native: f64) -> Result<(), TestCaseError> {
        if native.is_nan() {
            prop_assert!(is_nan(FpFormat::DOUBLE, got), "expected NaN, got {got:#x}");
        } else {
            prop_assert_eq!(got, native.to_bits(), "native {}", native);
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8192))]

        #[test]
        fn ieee_add_matches_native_f32_everywhere(a in any::<u32>(), b in any::<u32>()) {
            let (x, y) = (f32::from_bits(a), f32::from_bits(b));
            let (got, _) = ieee_add(FpFormat::SINGLE, a as u64, b as u64, RoundMode::NearestEven);
            check_f32(got, x + y)?;
        }

        #[test]
        fn ieee_sub_matches_native_f32_everywhere(a in any::<u32>(), b in any::<u32>()) {
            let (x, y) = (f32::from_bits(a), f32::from_bits(b));
            let (got, _) = ieee_sub(FpFormat::SINGLE, a as u64, b as u64, RoundMode::NearestEven);
            check_f32(got, x - y)?;
        }

        #[test]
        fn ieee_mul_matches_native_f32_everywhere(a in any::<u32>(), b in any::<u32>()) {
            let (x, y) = (f32::from_bits(a), f32::from_bits(b));
            let (got, _) = ieee_mul(FpFormat::SINGLE, a as u64, b as u64, RoundMode::NearestEven);
            check_f32(got, x * y)?;
        }

        #[test]
        fn ieee_add_matches_native_f64_everywhere(a in any::<u64>(), b in any::<u64>()) {
            let (x, y) = (f64::from_bits(a), f64::from_bits(b));
            let (got, _) = ieee_add(FpFormat::DOUBLE, a, b, RoundMode::NearestEven);
            check_f64(got, x + y)?;
        }

        #[test]
        fn ieee_mul_matches_native_f64_everywhere(a in any::<u64>(), b in any::<u64>()) {
            let (x, y) = (f64::from_bits(a), f64::from_bits(b));
            let (got, _) = ieee_mul(FpFormat::DOUBLE, a, b, RoundMode::NearestEven);
            check_f64(got, x * y)?;
        }

        /// Stress the denormal range specifically: both operands tiny.
        #[test]
        fn ieee_denormal_heavy_add_f32(a in 0u32..0x0100_0000, b in 0u32..0x0100_0000,
                                       sa in any::<bool>(), sb in any::<bool>()) {
            let a = a | if sa { 0x8000_0000 } else { 0 };
            let b = b | if sb { 0x8000_0000 } else { 0 };
            let (x, y) = (f32::from_bits(a), f32::from_bits(b));
            let (got, _) = ieee_add(FpFormat::SINGLE, a as u64, b as u64, RoundMode::NearestEven);
            check_f32(got, x + y)?;
        }

        /// Products that straddle the denormal boundary.
        #[test]
        fn ieee_underflow_boundary_mul_f32(a in 0x0080_0000u32..0x2000_0000, b in 0x0080_0000u32..0x2000_0000) {
            let (x, y) = (f32::from_bits(a), f32::from_bits(b));
            let (got, _) = ieee_mul(FpFormat::SINGLE, a as u64, b as u64, RoundMode::NearestEven);
            check_f32(got, x * y)?;
        }
    }
}

/// Fused multiply-add against the platform's hardware FMA.
mod fma_mode {
    use fpfpga_softfp::{fma_bits, FpFormat, RoundMode};
    use proptest::prelude::*;

    fn normal_f32() -> impl Strategy<Value = f32> {
        any::<u32>()
            .prop_map(f32::from_bits)
            .prop_filter("normal or zero", |x| {
                x.is_finite() && (*x == 0.0 || x.is_normal())
            })
    }

    fn normal_f64() -> impl Strategy<Value = f64> {
        any::<u64>()
            .prop_map(f64::from_bits)
            .prop_filter("normal or zero", |x| {
                x.is_finite() && (*x == 0.0 || x.is_normal())
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4096))]

        #[test]
        fn fma_matches_native_f32(a in normal_f32(), b in normal_f32(), c in normal_f32()) {
            let native = a.mul_add(b, c);
            prop_assume!(!native.is_nan());
            prop_assume!(native == 0.0 || native.abs() > f32::MIN_POSITIVE);
            let (got, _) = fma_bits(FpFormat::SINGLE, a.to_bits() as u64, b.to_bits() as u64,
                                    c.to_bits() as u64, RoundMode::NearestEven);
            prop_assert_eq!(got as u32, native.to_bits(), "{}*{}+{}", a, b, c);
        }

        #[test]
        fn fma_matches_native_f64(a in normal_f64(), b in normal_f64(), c in normal_f64()) {
            let native = a.mul_add(b, c);
            prop_assume!(!native.is_nan());
            prop_assume!(native == 0.0 || native.abs() > f64::MIN_POSITIVE);
            let (got, _) = fma_bits(FpFormat::DOUBLE, a.to_bits(), b.to_bits(), c.to_bits(),
                                    RoundMode::NearestEven);
            prop_assert_eq!(got, native.to_bits(), "{}*{}+{}", a, b, c);
        }

        /// The adversarial regime: product and addend close in magnitude
        /// and opposite in sign (deep cancellation through the fused path).
        #[test]
        fn fma_cancellation_f32(frac in any::<u32>(), e in 80u32..175, ulps in -16i32..16) {
            // construct a with a mid-range exponent so a² is always normal
            let a = f32::from_bits((e << 23) | (frac & 0x7f_ffff));
            let p = a * a;
            prop_assume!(p.is_normal());
            let c = -f32::from_bits((p.to_bits() as i64 + ulps as i64).max(1) as u32);
            prop_assume!(c.is_normal());
            let native = a.mul_add(a, c);
            prop_assume!(!native.is_nan());
            prop_assume!(native == 0.0 || native.abs() > f32::MIN_POSITIVE);
            let (got, _) = fma_bits(FpFormat::SINGLE, a.to_bits() as u64, a.to_bits() as u64,
                                    c.to_bits() as u64, RoundMode::NearestEven);
            prop_assert_eq!(got as u32, native.to_bits(), "{}^2 + {}", a, c);
        }

        /// Far-separated operands exercise both anchor choices.
        #[test]
        fn fma_magnitude_separation_f64(frac in any::<u64>(), e in 700u32..1300, scale in -300i32..300) {
            // mid-range exponent keeps a², c and the result well inside
            // the normal range across the whole scale sweep
            let a = f64::from_bits(((e as u64) << 52) | (frac & ((1 << 52) - 1)));
            let c = a * 2f64.powi(scale);
            prop_assume!(c.is_normal());
            let native = a.mul_add(a, c);
            prop_assume!(!native.is_nan() && native.is_finite());
            prop_assume!(native == 0.0 || native.abs() > f64::MIN_POSITIVE);
            let (got, _) = fma_bits(FpFormat::DOUBLE, a.to_bits(), a.to_bits(), c.to_bits(),
                                    RoundMode::NearestEven);
            prop_assert_eq!(got, native.to_bits(), "{}^2 + {}", a, c);
        }
    }
}

/// Integer/fixed-point conversions vs native casts.
mod intconv_mode {
    use fpfpga_softfp::intconv::{from_i64, to_i64};
    use fpfpga_softfp::{FpFormat, RoundMode};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4096))]

        /// Rust's `as i64` truncates and saturates — exactly our
        /// Truncate-mode semantics (modulo the invalid flag).
        #[test]
        fn to_i64_matches_native_cast_f64(a in any::<u64>()) {
            let x = f64::from_bits(a);
            prop_assume!(x.is_finite() && (x == 0.0 || x.is_normal()));
            let (got, _) = to_i64(FpFormat::DOUBLE, a, RoundMode::Truncate);
            prop_assert_eq!(got, x as i64, "{}", x);
        }

        #[test]
        fn to_i64_matches_native_cast_f32(a in any::<u32>()) {
            let x = f32::from_bits(a);
            prop_assume!(x.is_finite() && (x == 0.0 || x.is_normal()));
            let (got, _) = to_i64(FpFormat::SINGLE, a as u64, RoundMode::Truncate);
            prop_assert_eq!(got, x as i64, "{}", x);
        }

        /// `i64 as f64` rounds to nearest-even — our NearestEven mode.
        #[test]
        fn from_i64_matches_native_cast(x in any::<i64>()) {
            let (got, _) = from_i64(FpFormat::DOUBLE, x, RoundMode::NearestEven);
            prop_assert_eq!(f64::from_bits(got), x as f64, "{}", x);
            let (got32, _) = from_i64(FpFormat::SINGLE, x, RoundMode::NearestEven);
            prop_assert_eq!(f32::from_bits(got32 as u32), x as f32, "{}", x);
        }

        /// Roundtrip int → float → int is the identity when exact.
        #[test]
        fn roundtrip_small_ints(x in -(1i64 << 23)..(1i64 << 23)) {
            let (b, f) = from_i64(FpFormat::SINGLE, x, RoundMode::NearestEven);
            prop_assert!(!f.any());
            let (back, f) = to_i64(FpFormat::SINGLE, b, RoundMode::Truncate);
            prop_assert_eq!(back, x);
            prop_assert!(!f.any());
        }
    }
}
