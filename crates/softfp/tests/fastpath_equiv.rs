//! Property tests: the monomorphized/runtime-width fast lane must be
//! bit-identical to the generic `unpacked` path — result encodings *and*
//! exception flags — on **random custom formats**, not just the three
//! named precisions. Operands are raw bit patterns, so zeros, denormal
//! encodings (which flush), infinities and NaN-pattern encodings all get
//! drawn alongside normals and exercise the fallback boundary.

use fpfpga_softfp::fastpath;
use fpfpga_softfp::{add_bits, fma_bits, mul_bits, sub_bits, FpFormat, RoundMode};
use proptest::prelude::*;

/// Any legal format: `exp_bits` 2..=15, `frac_bits` 2..=56, total <= 64.
fn any_format() -> impl Strategy<Value = FpFormat> {
    (2u32..=15, 2u32..=56)
        .prop_filter("fits in 64 bits", |&(e, f)| 1 + e + f <= 64)
        .prop_map(|(e, f)| FpFormat::new(e, f))
}

fn any_mode() -> impl Strategy<Value = RoundMode> {
    prop_oneof![Just(RoundMode::NearestEven), Just(RoundMode::Truncate)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8192))]

    #[test]
    fn fast_add_matches_generic(fmt in any_format(), a in any::<u64>(), b in any::<u64>(),
                                mode in any_mode()) {
        let (a, b) = (a & fmt.enc_mask(), b & fmt.enc_mask());
        prop_assert_eq!(
            fastpath::add_bits(fmt, a, b, mode),
            add_bits(fmt, a, b, mode),
            "{:?} {:#x} + {:#x} {:?}", fmt, a, b, mode
        );
    }

    #[test]
    fn fast_sub_matches_generic(fmt in any_format(), a in any::<u64>(), b in any::<u64>(),
                                mode in any_mode()) {
        let (a, b) = (a & fmt.enc_mask(), b & fmt.enc_mask());
        prop_assert_eq!(
            fastpath::sub_bits(fmt, a, b, mode),
            sub_bits(fmt, a, b, mode),
            "{:?} {:#x} - {:#x} {:?}", fmt, a, b, mode
        );
    }

    #[test]
    fn fast_mul_matches_generic(fmt in any_format(), a in any::<u64>(), b in any::<u64>(),
                                mode in any_mode()) {
        let (a, b) = (a & fmt.enc_mask(), b & fmt.enc_mask());
        prop_assert_eq!(
            fastpath::mul_bits(fmt, a, b, mode),
            mul_bits(fmt, a, b, mode),
            "{:?} {:#x} * {:#x} {:?}", fmt, a, b, mode
        );
    }

    #[test]
    fn fast_fma_matches_generic(fmt in any_format(), a in any::<u64>(), b in any::<u64>(),
                                c in any::<u64>(), mode in any_mode()) {
        let (a, b, c) = (a & fmt.enc_mask(), b & fmt.enc_mask(), c & fmt.enc_mask());
        prop_assert_eq!(
            fastpath::fma_bits(fmt, a, b, c, mode),
            fma_bits(fmt, a, b, c, mode),
            "{:?} {:#x}*{:#x}+{:#x} {:?}", fmt, a, b, c, mode
        );
    }

    /// Close-exponent operand pairs: stresses cancellation/normalization,
    /// the regime where the fast lane's inline shifter could diverge.
    #[test]
    fn fast_sub_cancellation_matches_generic(fmt in any_format(), frac_a in any::<u64>(),
                                             frac_b in any::<u64>(), e_off in 0u32..3,
                                             mode in any_mode()) {
        let mid = fmt.bias() as u64;
        let a = fmt.pack(false, mid, frac_a);
        let b = fmt.pack(false, mid + e_off as u64, frac_b);
        prop_assert_eq!(
            fastpath::sub_bits(fmt, a, b, mode),
            sub_bits(fmt, a, b, mode),
            "{:?} {:#x} - {:#x} {:?}", fmt, a, b, mode
        );
    }

    /// Products near the overflow/underflow cliffs: range-check parity.
    #[test]
    fn fast_mul_range_edges_match_generic(fmt in any_format(), frac_a in any::<u64>(),
                                          frac_b in any::<u64>(), hi in any::<bool>(),
                                          mode in any_mode()) {
        let exp = if hi { fmt.max_biased_exp() } else { 1 };
        let a = fmt.pack(false, exp, frac_a);
        let b = fmt.pack(true, exp, frac_b);
        prop_assert_eq!(
            fastpath::mul_bits(fmt, a, b, mode),
            mul_bits(fmt, a, b, mode),
            "{:?} {:#x} * {:#x} {:?}", fmt, a, b, mode
        );
    }

    /// Batch entry points agree element-wise with the scalar dispatchers
    /// on arbitrary formats.
    #[test]
    fn batch_matches_scalar(fmt in any_format(), raw in proptest::collection::vec(any::<u64>(), 0..64),
                            mode in any_mode()) {
        let vals: Vec<u64> = raw.iter().map(|&x| x & fmt.enc_mask()).collect();
        let rev: Vec<u64> = vals.iter().rev().copied().collect();
        let mut out = Vec::new();
        fastpath::add_bits_batch(fmt, &vals, &rev, mode, &mut out);
        fastpath::mul_bits_batch(fmt, &vals, &rev, mode, &mut out);
        prop_assert_eq!(out.len(), 2 * vals.len());
        for i in 0..vals.len() {
            prop_assert_eq!(out[i], fastpath::add_bits(fmt, vals[i], rev[i], mode));
            prop_assert_eq!(out[vals.len() + i], fastpath::mul_bits(fmt, vals[i], rev[i], mode));
        }
    }
}
